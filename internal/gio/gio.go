// Package gio implements a blocked binary particle file format in the
// spirit of HACC's GenericIO: fixed 36-byte particle records, one block per
// writing rank, per-block CRC32 checksums, and aggregation of many rank
// blocks into a single file.
//
// The record layout matches the paper's accounting — "each particle carries
// 36 bytes of information" (§3): three float32 positions, three float32
// velocities, one float32 potential slot, one int64 tag. The Q Continuum
// off-line pipeline aggregated "the results from 128 nodes from Titan ...
// in one file, resulting in 128 files containing 128 blocks each" (§4.1);
// the Aggregation helpers reproduce that grouping, and the workflow engine
// sizes Level 1/Level 2 I/O from these byte counts.
package gio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/nbody"
)

// Magic identifies a gio stream.
const Magic = "HACCGIO1"

// RecordSize is the size of one particle record in bytes.
const RecordSize = nbody.BytesPerParticle // 36

// Block is one rank's particle payload within a file.
type Block struct {
	// Rank identifies the writing rank.
	Rank int
	// Particles holds the block's particles.
	Particles *nbody.Particles
}

// BytesForParticles returns the payload size for n particles.
func BytesForParticles(n int) int64 { return int64(n) * RecordSize }

// header layout: magic[8] version uint32, blockCount uint32.
// block header: rank uint32, count uint64, crc uint32.

const version = 1

// Write streams blocks to w. Blocks are written in the order given.
func Write(w io.Writer, blocks []Block) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(version)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(blocks))); err != nil {
		return err
	}
	for _, b := range blocks {
		if err := writeBlock(bw, b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeBlock(w io.Writer, b Block) error {
	p := b.Particles
	if err := p.Validate(); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(b.Rank)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(p.N())); err != nil {
		return err
	}
	payload := encodeParticles(p)
	crc := crc32.ChecksumIEEE(payload)
	if err := binary.Write(w, binary.LittleEndian, crc); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func encodeParticles(p *nbody.Particles) []byte {
	buf := make([]byte, p.N()*RecordSize)
	off := 0
	put32 := func(v float64) {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(v)))
		off += 4
	}
	for i := 0; i < p.N(); i++ {
		put32(p.X[i])
		put32(p.Y[i])
		put32(p.Z[i])
		put32(p.VX[i])
		put32(p.VY[i])
		put32(p.VZ[i])
		put32(0) // potential slot, filled by analysis outputs
		binary.LittleEndian.PutUint64(buf[off:], uint64(p.Tag[i]))
		off += 8
	}
	return buf
}

func decodeParticles(buf []byte, n int) *nbody.Particles {
	p := nbody.NewParticles(n)
	off := 0
	get32 := func() float64 {
		v := math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		return float64(v)
	}
	for i := 0; i < n; i++ {
		p.X[i] = get32()
		p.Y[i] = get32()
		p.Z[i] = get32()
		p.VX[i] = get32()
		p.VY[i] = get32()
		p.VZ[i] = get32()
		_ = get32() // potential slot
		p.Tag[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return p
}

// Read parses a gio stream, verifying the magic, version and every block
// checksum.
func Read(r io.Reader) ([]Block, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("gio: reading magic: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("gio: bad magic %q", magic)
	}
	var ver, nBlocks uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, fmt.Errorf("gio: reading version: %w", err)
	}
	if ver != version {
		return nil, fmt.Errorf("gio: unsupported version %d", ver)
	}
	if err := binary.Read(br, binary.LittleEndian, &nBlocks); err != nil {
		return nil, fmt.Errorf("gio: reading block count: %w", err)
	}
	blocks := make([]Block, 0, nBlocks)
	for bi := uint32(0); bi < nBlocks; bi++ {
		var rank uint32
		var count uint64
		var crc uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return nil, fmt.Errorf("gio: block %d rank: %w", bi, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, fmt.Errorf("gio: block %d count: %w", bi, err)
		}
		if err := binary.Read(br, binary.LittleEndian, &crc); err != nil {
			return nil, fmt.Errorf("gio: block %d crc: %w", bi, err)
		}
		payload := make([]byte, int(count)*RecordSize)
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, fmt.Errorf("gio: block %d payload: %w", bi, err)
		}
		if got := crc32.ChecksumIEEE(payload); got != crc {
			return nil, fmt.Errorf("gio: block %d checksum mismatch: %08x != %08x", bi, got, crc)
		}
		blocks = append(blocks, Block{Rank: int(rank), Particles: decodeParticles(payload, int(count))})
	}
	return blocks, nil
}

// WriteFile writes blocks to a file path.
func WriteFile(path string, blocks []Block) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, blocks); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads all blocks from a file path.
func ReadFile(path string) ([]Block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Merge concatenates the particles of all blocks into a single container.
func Merge(blocks []Block) *nbody.Particles {
	out := nbody.NewParticles(0)
	for _, b := range blocks {
		for i := 0; i < b.Particles.N(); i++ {
			out.AppendFrom(b.Particles, i)
		}
	}
	return out
}

// AggregationPlan groups nRanks writer ranks into files of groupSize blocks
// each ("the results from 128 nodes ... aggregated in one file"). It
// returns, per file, the rank ids it contains, in rank order.
func AggregationPlan(nRanks, groupSize int) ([][]int, error) {
	if nRanks <= 0 || groupSize <= 0 {
		return nil, fmt.Errorf("gio: invalid aggregation %d ranks / %d per file", nRanks, groupSize)
	}
	var plan [][]int
	for start := 0; start < nRanks; start += groupSize {
		end := start + groupSize
		if end > nRanks {
			end = nRanks
		}
		group := make([]int, 0, end-start)
		for r := start; r < end; r++ {
			group = append(group, r)
		}
		plan = append(plan, group)
	}
	return plan, nil
}
