// Package gio implements a blocked binary particle file format in the
// spirit of HACC's GenericIO: fixed-size particle records, one block per
// writing rank, per-block CRC32 checksums, and aggregation of many rank
// blocks into a single file.
//
// Two record layouts share the container:
//
//   - Version 1 (analysis outputs): 36-byte records matching the paper's
//     accounting — "each particle carries 36 bytes of information" (§3):
//     three float32 positions, three float32 velocities, one float32
//     potential slot, one int64 tag.
//   - Version 2 (checkpoint streams): 56-byte full-precision records —
//     six float64 phase-space components plus the tag — so a restarted
//     simulation is bit-identical to an uninterrupted one. Written by
//     WriteWide; Read handles both.
//
// The Q Continuum off-line pipeline aggregated "the results from 128
// nodes from Titan ... in one file, resulting in 128 files containing 128
// blocks each" (§4.1); the Aggregation helpers reproduce that grouping,
// and the workflow engine sizes Level 1/Level 2 I/O from these byte
// counts.
//
// Real HPC jobs are killed at walltime limits mid-write, so torn gio
// files exist in practice. Read fails loudly with typed sentinels
// (ErrTruncated, ErrChecksum); ReadSalvage instead recovers the valid
// prefix of blocks, which is how a resuming campaign assesses a file
// whose write was interrupted.
package gio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/ckpt"
	"repro/internal/nbody"
)

// Magic identifies a gio stream.
const Magic = "HACCGIO1"

// RecordSize is the size of one version 1 particle record in bytes.
const RecordSize = nbody.BytesPerParticle // 36

// WideRecordSize is the size of one version 2 full-precision record:
// 6 float64 phase-space components + int64 tag.
const WideRecordSize = 56

// ErrTruncated reports a stream that ends mid-structure: a torn write.
// Matchable with errors.Is.
var ErrTruncated = errors.New("gio: truncated stream")

// ErrChecksum reports a block whose payload fails its CRC32. Matchable
// with errors.Is.
var ErrChecksum = errors.New("gio: block checksum mismatch")

// Block is one rank's particle payload within a file.
type Block struct {
	// Rank identifies the writing rank.
	Rank int
	// Particles holds the block's particles.
	Particles *nbody.Particles
}

// BytesForParticles returns the version 1 payload size for n particles.
func BytesForParticles(n int) int64 { return int64(n) * RecordSize }

// header layout: magic[8] version uint32, blockCount uint32.
// block header: rank uint32, count uint64, crc uint32.

const (
	version     = 1
	versionWide = 2
)

// Write streams blocks to w in the 36-byte analysis layout (version 1).
// Blocks are written in the order given.
func Write(w io.Writer, blocks []Block) error {
	return write(w, blocks, version)
}

// WriteWide streams blocks to w in the 56-byte full-precision layout
// (version 2) used by simulation checkpoints: float64 survives the round
// trip bit-for-bit, which the float32 analysis records cannot.
func WriteWide(w io.Writer, blocks []Block) error {
	return write(w, blocks, versionWide)
}

func write(w io.Writer, blocks []Block, ver uint32) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, ver); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(blocks))); err != nil {
		return err
	}
	for _, b := range blocks {
		if err := writeBlock(bw, b, ver); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func writeBlock(w io.Writer, b Block, ver uint32) error {
	p := b.Particles
	if err := p.Validate(); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint32(b.Rank)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(p.N())); err != nil {
		return err
	}
	var payload []byte
	if ver == versionWide {
		payload = encodeParticlesWide(p)
	} else {
		payload = encodeParticles(p)
	}
	crc := crc32.ChecksumIEEE(payload)
	if err := binary.Write(w, binary.LittleEndian, crc); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func encodeParticles(p *nbody.Particles) []byte {
	buf := make([]byte, p.N()*RecordSize)
	off := 0
	put32 := func(v float64) {
		binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(v)))
		off += 4
	}
	for i := 0; i < p.N(); i++ {
		put32(p.X[i])
		put32(p.Y[i])
		put32(p.Z[i])
		put32(p.VX[i])
		put32(p.VY[i])
		put32(p.VZ[i])
		put32(0) // potential slot, filled by analysis outputs
		binary.LittleEndian.PutUint64(buf[off:], uint64(p.Tag[i]))
		off += 8
	}
	return buf
}

func decodeParticles(buf []byte, n int) *nbody.Particles {
	p := nbody.NewParticles(n)
	off := 0
	get32 := func() float64 {
		v := math.Float32frombits(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		return float64(v)
	}
	for i := 0; i < n; i++ {
		p.X[i] = get32()
		p.Y[i] = get32()
		p.Z[i] = get32()
		p.VX[i] = get32()
		p.VY[i] = get32()
		p.VZ[i] = get32()
		_ = get32() // potential slot
		p.Tag[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return p
}

func encodeParticlesWide(p *nbody.Particles) []byte {
	buf := make([]byte, p.N()*WideRecordSize)
	off := 0
	put64 := func(v float64) {
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		off += 8
	}
	for i := 0; i < p.N(); i++ {
		put64(p.X[i])
		put64(p.Y[i])
		put64(p.Z[i])
		put64(p.VX[i])
		put64(p.VY[i])
		put64(p.VZ[i])
		binary.LittleEndian.PutUint64(buf[off:], uint64(p.Tag[i]))
		off += 8
	}
	return buf
}

func decodeParticlesWide(buf []byte, n int) *nbody.Particles {
	p := nbody.NewParticles(n)
	off := 0
	get64 := func() float64 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
		return v
	}
	for i := 0; i < n; i++ {
		p.X[i] = get64()
		p.Y[i] = get64()
		p.Z[i] = get64()
		p.VX[i] = get64()
		p.VY[i] = get64()
		p.VZ[i] = get64()
		p.Tag[i] = int64(binary.LittleEndian.Uint64(buf[off:]))
		off += 8
	}
	return p
}

// Read parses a gio stream (either record layout), verifying the magic,
// version and every block checksum. Torn streams fail with ErrTruncated,
// corrupt blocks with ErrChecksum; nothing is returned for a damaged
// file — use ReadSalvage to recover the valid prefix instead.
func Read(r io.Reader) ([]Block, error) {
	blocks, err := read(r, false)
	if err != nil {
		return nil, err
	}
	return blocks, nil
}

// ReadSalvage parses as much of a gio stream as is intact: every block
// that is complete and passes its checksum is returned, together with the
// first error encountered (nil when the whole stream was valid). Unlike
// the strict Read, a corrupt interior block — bit rot rather than a torn
// tail — is skipped and the scan continues, since each block frames its
// own payload length; only truncation stops the scan. This is the
// recovery path for damaged output — the resumable campaign uses it to
// report how much of an unjournaled file survived before redoing the step.
func ReadSalvage(r io.Reader) ([]Block, error) {
	return read(r, true)
}

// read parses blocks until the stream ends or tears, returning whatever
// was valid plus the terminating (or, when salvaging, first) error. In
// strict mode a corrupt block stops the scan; in salvage mode it is
// skipped.
func read(r io.Reader, salvage bool) ([]Block, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(Magic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("gio: reading magic: %w", tornErr(err))
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("gio: bad magic %q", magic)
	}
	var ver, nBlocks uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, fmt.Errorf("gio: reading version: %w", tornErr(err))
	}
	if ver != version && ver != versionWide {
		return nil, fmt.Errorf("gio: unsupported version %d", ver)
	}
	recSize := RecordSize
	if ver == versionWide {
		recSize = WideRecordSize
	}
	if err := binary.Read(br, binary.LittleEndian, &nBlocks); err != nil {
		return nil, fmt.Errorf("gio: reading block count: %w", tornErr(err))
	}
	blocks := make([]Block, 0, nBlocks)
	var firstErr error
	for bi := uint32(0); bi < nBlocks; bi++ {
		var rank uint32
		var count uint64
		var crc uint32
		if err := binary.Read(br, binary.LittleEndian, &rank); err != nil {
			return blocks, firstOf(firstErr, fmt.Errorf("gio: block %d rank: %w", bi, tornErr(err)))
		}
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return blocks, firstOf(firstErr, fmt.Errorf("gio: block %d count: %w", bi, tornErr(err)))
		}
		if err := binary.Read(br, binary.LittleEndian, &crc); err != nil {
			return blocks, firstOf(firstErr, fmt.Errorf("gio: block %d crc: %w", bi, tornErr(err)))
		}
		payload := make([]byte, int(count)*recSize)
		if _, err := io.ReadFull(br, payload); err != nil {
			return blocks, firstOf(firstErr, fmt.Errorf("gio: block %d payload: %w", bi, tornErr(err)))
		}
		if got := crc32.ChecksumIEEE(payload); got != crc {
			err := fmt.Errorf("gio: block %d: %w: %08x != %08x", bi, ErrChecksum, got, crc)
			if !salvage {
				return blocks, err
			}
			// The payload framed its own length, so the stream cursor is
			// already at the next block header: skip and keep scanning.
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		var p *nbody.Particles
		if ver == versionWide {
			p = decodeParticlesWide(payload, int(count))
		} else {
			p = decodeParticles(payload, int(count))
		}
		blocks = append(blocks, Block{Rank: int(rank), Particles: p})
	}
	return blocks, firstErr
}

// firstOf keeps the first error of a salvage scan when a later one ends it.
func firstOf(first, last error) error {
	if first != nil {
		return first
	}
	return last
}

// tornErr maps io-level end-of-stream errors onto the ErrTruncated
// sentinel so callers can errors.Is them uniformly.
func tornErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w (%v)", ErrTruncated, err)
	}
	return err
}

// WriteFile writes blocks to a file path (version 1 layout). The file is
// committed atomically (temp file, fsync, rename) so a crash mid-write
// never leaves a torn final file for a resuming campaign to trust.
func WriteFile(path string, blocks []Block) error {
	var buf bytes.Buffer
	if err := Write(&buf, blocks); err != nil {
		return err
	}
	return ckpt.WriteFileAtomic(path, buf.Bytes())
}

// ReadFile reads all blocks from a file path.
func ReadFile(path string) ([]Block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// ReadSalvageFile salvages the valid prefix of blocks from a file path.
func ReadSalvageFile(path string) ([]Block, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSalvage(f)
}

// Merge concatenates the particles of all blocks into a single container.
func Merge(blocks []Block) *nbody.Particles {
	out := nbody.NewParticles(0)
	for _, b := range blocks {
		for i := 0; i < b.Particles.N(); i++ {
			out.AppendFrom(b.Particles, i)
		}
	}
	return out
}

// AggregationPlan groups nRanks writer ranks into files of groupSize blocks
// each ("the results from 128 nodes ... aggregated in one file"). It
// returns, per file, the rank ids it contains, in rank order.
func AggregationPlan(nRanks, groupSize int) ([][]int, error) {
	if nRanks <= 0 || groupSize <= 0 {
		return nil, fmt.Errorf("gio: invalid aggregation %d ranks / %d per file", nRanks, groupSize)
	}
	var plan [][]int
	for start := 0; start < nRanks; start += groupSize {
		end := start + groupSize
		if end > nRanks {
			end = nRanks
		}
		group := make([]int, 0, end-start)
		for r := start; r < end; r++ {
			group = append(group, r)
		}
		plan = append(plan, group)
	}
	return plan, nil
}
