package gio

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/ckpt"
	"repro/internal/cosmo"
	"repro/internal/nbody"
)

// Checkpoint / restart support. The production runs the paper draws on
// treat checkpoint data as a separate stream from analysis outputs (the
// Outer Rim's "5 Pbytes of raw outputs (not including check-point restart
// files)", §1): checkpoints carry full-precision state so a restarted run
// is bit-identical, unlike the float32 Level 1 analysis records.
//
// Format (version 2): a "HACCCKPT" header — cosmology, box, grid,
// current scale factor, the pinned integration Schedule, the step index,
// and the IC seed — followed by the particle state as an embedded
// wide-record (version 2) gio stream, with a CRC32 trailer over
// everything. The particle payload being a plain gio stream means torn
// checkpoints are salvageable with the same ReadSalvage machinery as any
// other gio file.

const checkpointMagic = "HACCCKPT"
const checkpointVersion = 2

// WriteCheckpoint serializes the full simulation state with a CRC32
// trailer. The restart contract is bit-identity: LoadCheckpoint followed
// by Resume reproduces the uninterrupted run's particle arrays exactly.
func WriteCheckpoint(w io.Writer, s *nbody.Simulation) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	head := []any{
		uint32(checkpointVersion),
		uint32(s.NG),
		s.Box,
		s.A,
		s.Cosmo.OmegaM, s.Cosmo.OmegaL, s.Cosmo.OmegaB,
		s.Cosmo.H0, s.Cosmo.Sigma8, s.Cosmo.NS,
		s.Sched.A0, s.Sched.AEnd,
		uint32(s.Sched.TotalSteps), uint32(s.StepIndex),
		s.Seed,
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	// Particle state as an embedded wide-record gio stream.
	if err := WriteWide(bw, []Block{{Rank: 0, Particles: s.P}}); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailer: checksum of everything written so far (not itself).
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// ReadCheckpoint reconstructs a simulation from a checkpoint stream. The
// stream is read fully before parsing so the CRC trailer can be verified
// over the exact payload.
func ReadCheckpoint(r io.Reader) (*nbody.Simulation, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("gio: reading checkpoint: %w", err)
	}
	if len(data) < len(checkpointMagic)+4 {
		return nil, fmt.Errorf("gio: checkpoint too short (%d bytes): %w", len(data), ErrTruncated)
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("gio: checkpoint: %w: %08x != %08x", ErrChecksum, got, want)
	}
	br := bytes.NewReader(payload)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("gio: checkpoint magic: %w", tornErr(err))
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("gio: bad checkpoint magic %q", magic)
	}
	var ver, ng, totalSteps, stepIndex uint32
	if err := binary.Read(br, binary.LittleEndian, &ver); err != nil {
		return nil, err
	}
	if ver != checkpointVersion {
		return nil, fmt.Errorf("gio: unsupported checkpoint version %d", ver)
	}
	if err := binary.Read(br, binary.LittleEndian, &ng); err != nil {
		return nil, err
	}
	var box, a, a0, aEnd float64
	var seed int64
	var params cosmo.Params
	for _, step := range []any{
		&box, &a,
		&params.OmegaM, &params.OmegaL, &params.OmegaB,
		&params.H0, &params.Sigma8, &params.NS,
		&a0, &aEnd, &totalSteps, &stepIndex, &seed,
	} {
		if err := binary.Read(br, binary.LittleEndian, step); err != nil {
			return nil, fmt.Errorf("gio: checkpoint header: %w", tornErr(err))
		}
	}
	if totalSteps > math.MaxInt32 || stepIndex > totalSteps {
		return nil, fmt.Errorf("gio: checkpoint schedule %d/%d invalid", stepIndex, totalSteps)
	}
	blocks, err := read(br, false)
	if err != nil {
		return nil, fmt.Errorf("gio: checkpoint particles: %w", err)
	}
	s, err := nbody.NewSimulation(params, box, int(ng), Merge(blocks), a)
	if err != nil {
		return nil, err
	}
	s.Sched = nbody.Schedule{A0: a0, AEnd: aEnd, TotalSteps: int(totalSteps)}
	s.StepIndex = int(stepIndex)
	s.Seed = seed
	return s, nil
}

// SaveCheckpointFile commits a checkpoint to a path atomically (temp file
// + rename): a crash mid-save can never tear a previously good
// checkpoint, so the newest complete checkpoint on disk is always a safe
// restart point.
func SaveCheckpointFile(path string, s *nbody.Simulation) error {
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		return err
	}
	return ckpt.WriteFileAtomic(path, buf.Bytes())
}

// LoadCheckpointFile reads a checkpoint from a path.
func LoadCheckpointFile(path string) (*nbody.Simulation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCheckpoint(f)
}
