package gio

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/nbody"
)

func randomSim(t *testing.T, seed int64) *nbody.Simulation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := nbody.NewParticles(0)
	for i := 0; i < 200; i++ {
		p.Append(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20,
			rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), int64(i*3))
	}
	s, err := nbody.NewSimulation(cosmo.Default(), 20, 16, p, 0.37)
	if err != nil {
		t.Fatal(err)
	}
	s.Seed = seed
	return s
}

func TestCheckpointRoundTripExact(t *testing.T) {
	s := randomSim(t, 1)
	s.Sched = nbody.Schedule{A0: 0.37, AEnd: 1.0, TotalSteps: 9}
	s.StepIndex = 4
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.A != s.A || got.Box != s.Box || got.NG != s.NG {
		t.Errorf("header mismatch: %v/%v/%v", got.A, got.Box, got.NG)
	}
	if got.Cosmo != s.Cosmo {
		t.Errorf("cosmology mismatch: %+v", got.Cosmo)
	}
	if got.Sched != s.Sched || got.StepIndex != s.StepIndex || got.Seed != s.Seed {
		t.Errorf("schedule state mismatch: %+v step %d seed %d", got.Sched, got.StepIndex, got.Seed)
	}
	if got.P.N() != s.P.N() {
		t.Fatalf("N = %d", got.P.N())
	}
	for i := 0; i < s.P.N(); i++ {
		if got.P.X[i] != s.P.X[i] || got.P.VZ[i] != s.P.VZ[i] || got.P.Tag[i] != s.P.Tag[i] {
			t.Fatalf("particle %d not bit-identical", i)
		}
	}
}

// The tentpole property: run 0→N equals run 0→k + restart k→N,
// bit-for-bit. The schedule is pinned in the checkpoint, so the restarted
// run derives the exact same step size and lands on the same scale-factor
// boundaries.
func TestCheckpointRestartBitIdentical(t *testing.T) {
	const total = 8
	const ckptAt = 3

	// Uninterrupted run.
	full := randomSim(t, 2)
	if err := full.Run(0.9, total, nil); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: checkpoint at step ckptAt, then restart and resume.
	var buf bytes.Buffer
	first := randomSim(t, 2)
	err := first.Run(0.9, total, func(step int) error {
		if step == ckptAt {
			return WriteCheckpoint(&buf, first)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.StepIndex != ckptAt {
		t.Fatalf("restored step index %d, want %d", restored.StepIndex, ckptAt)
	}
	var resumedSteps []int
	if err := restored.Resume(func(step int) error {
		resumedSteps = append(resumedSteps, step)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Step numbering continues where the original left off.
	if len(resumedSteps) != total-ckptAt || resumedSteps[0] != ckptAt+1 || resumedSteps[len(resumedSteps)-1] != total {
		t.Fatalf("resumed steps %v", resumedSteps)
	}
	if restored.A != full.A {
		t.Fatalf("scale factor diverged: %v != %v", restored.A, full.A)
	}
	for i := 0; i < full.P.N(); i++ {
		if restored.P.X[i] != full.P.X[i] || restored.P.Y[i] != full.P.Y[i] || restored.P.Z[i] != full.P.Z[i] ||
			restored.P.VX[i] != full.P.VX[i] || restored.P.VY[i] != full.P.VY[i] || restored.P.VZ[i] != full.P.VZ[i] {
			t.Fatalf("restart not bit-identical at particle %d", i)
		}
	}

	// And the checkpoints the two runs would write at the end are
	// byte-identical too.
	var a, b bytes.Buffer
	if err := WriteCheckpoint(&a, full); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(&b, restored); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("final checkpoints differ between interrupted and uninterrupted runs")
	}
}

// Resume on a completed schedule is a no-op, not an error.
func TestResumeCompletedSchedule(t *testing.T) {
	s := randomSim(t, 6)
	if err := s.Run(0.5, 2, nil); err != nil {
		t.Fatal(err)
	}
	called := false
	if err := s.Resume(func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("resume of a finished schedule ran steps")
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	s := randomSim(t, 3)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-10] ^= 0x01
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Error("expected checksum error")
	}
}

func TestCheckpointRejectsBadMagic(t *testing.T) {
	if _, err := ReadCheckpoint(bytes.NewReader([]byte("NOTACKPT1234"))); err == nil {
		t.Error("expected magic error")
	}
}

func TestCheckpointTruncated(t *testing.T) {
	s := randomSim(t, 4)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadCheckpoint(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("expected truncation error")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	s := randomSim(t, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	if err := SaveCheckpointFile(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.P.N() != s.P.N() || got.A != s.A {
		t.Errorf("file round trip mismatch")
	}
	// Atomic save leaves no temp droppings.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("stray files after save: %v", entries)
	}
	if _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("expected missing-file error")
	}
}
