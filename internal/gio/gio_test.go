package gio

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/nbody"
)

func randParticles(n int, seed int64) *nbody.Particles {
	rng := rand.New(rand.NewSource(seed))
	p := nbody.NewParticles(n)
	for i := 0; i < n; i++ {
		p.X[i] = rng.Float64() * 100
		p.Y[i] = rng.Float64() * 100
		p.Z[i] = rng.Float64() * 100
		p.VX[i] = rng.NormFloat64()
		p.VY[i] = rng.NormFloat64()
		p.VZ[i] = rng.NormFloat64()
		p.Tag[i] = rng.Int63()
	}
	return p
}

func TestRecordSizeIs36(t *testing.T) {
	if RecordSize != 36 {
		t.Fatalf("record size = %d, want the paper's 36 bytes", RecordSize)
	}
	if BytesForParticles(1000) != 36000 {
		t.Errorf("BytesForParticles = %d", BytesForParticles(1000))
	}
}

func TestRoundTrip(t *testing.T) {
	blocks := []Block{
		{Rank: 0, Particles: randParticles(100, 1)},
		{Rank: 3, Particles: randParticles(50, 2)},
		{Rank: 7, Particles: nbody.NewParticles(0)},
	}
	var buf bytes.Buffer
	if err := Write(&buf, blocks); err != nil {
		t.Fatal(err)
	}
	wantLen := len(Magic) + 8 + 3*(4+8+4) + (100+50)*RecordSize
	if buf.Len() != wantLen {
		t.Errorf("stream length = %d, want %d", buf.Len(), wantLen)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("blocks = %d", len(got))
	}
	for bi, b := range got {
		want := blocks[bi]
		if b.Rank != want.Rank {
			t.Errorf("block %d rank = %d, want %d", bi, b.Rank, want.Rank)
		}
		if b.Particles.N() != want.Particles.N() {
			t.Fatalf("block %d count = %d, want %d", bi, b.Particles.N(), want.Particles.N())
		}
		for i := 0; i < b.Particles.N(); i++ {
			// float32 storage: compare at float32 precision.
			if float32(b.Particles.X[i]) != float32(want.Particles.X[i]) {
				t.Fatalf("block %d particle %d x mismatch", bi, i)
			}
			if b.Particles.Tag[i] != want.Particles.Tag[i] {
				t.Fatalf("block %d particle %d tag mismatch", bi, i)
			}
		}
	}
}

func TestReadRejectsBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTMAGIC\x01\x00\x00\x00\x00\x00\x00\x00"))); err == nil {
		t.Error("expected magic error")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Block{{Rank: 0, Particles: randParticles(10, 3)}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := Read(bytes.NewReader(data[:len(data)-5])); err == nil {
		t.Error("expected truncation error")
	}
}

func TestReadDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Block{{Rank: 0, Particles: randParticles(10, 4)}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] ^= 0xFF // flip a payload byte
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Error("expected checksum error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "step42.gio")
	blocks := []Block{{Rank: 5, Particles: randParticles(25, 5)}}
	if err := WriteFile(path, blocks); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Rank != 5 || got[0].Particles.N() != 25 {
		t.Errorf("got %+v", got)
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.gio")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestMerge(t *testing.T) {
	blocks := []Block{
		{Rank: 0, Particles: randParticles(10, 6)},
		{Rank: 1, Particles: randParticles(20, 7)},
	}
	merged := Merge(blocks)
	if merged.N() != 30 {
		t.Errorf("merged N = %d", merged.N())
	}
	if merged.Tag[0] != blocks[0].Particles.Tag[0] || merged.Tag[10] != blocks[1].Particles.Tag[0] {
		t.Error("merge order wrong")
	}
}

func TestAggregationPlanPaperShape(t *testing.T) {
	// Q Continuum: 16384 ranks in files of 128 -> 128 files of 128 blocks.
	plan, err := AggregationPlan(16384, 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 128 {
		t.Fatalf("files = %d, want 128", len(plan))
	}
	for fi, group := range plan {
		if len(group) != 128 {
			t.Fatalf("file %d has %d blocks", fi, len(group))
		}
		if group[0] != fi*128 {
			t.Fatalf("file %d starts at rank %d", fi, group[0])
		}
	}
}

func TestAggregationPlanUneven(t *testing.T) {
	plan, err := AggregationPlan(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 3 || len(plan[2]) != 2 {
		t.Errorf("plan = %v", plan)
	}
	if _, err := AggregationPlan(0, 4); err == nil {
		t.Error("expected error")
	}
}

func TestLevel1SizeMatchesTable1(t *testing.T) {
	// Table 1: 1024³ particles -> ~40 GB raw; 8192³ -> ~20 TB.
	gb := float64(BytesForParticles(1024*1024*1024)) / 1e9
	if gb < 35 || gb > 45 {
		t.Errorf("1024³ Level 1 = %.1f GB, paper says ~40 GB", gb)
	}
	tb := float64(BytesForParticles(8192*8192*8192)) / 1e12
	if tb < 18 || tb > 22 {
		t.Errorf("8192³ Level 1 = %.1f TB, paper says ~20 TB", tb)
	}

}

// failingWriter errors after n bytes, exercising gio's error paths.
type failingWriter struct{ remaining int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if len(p) > f.remaining {
		n := f.remaining
		f.remaining = 0
		return n, errShort
	}
	f.remaining -= len(p)
	return len(p), nil
}

var errShort = fmt.Errorf("writer full")

func TestWriteErrorPaths(t *testing.T) {
	blocks := []Block{{Rank: 0, Particles: randParticles(100, 9)}}
	// Fail at several depths: magic, header, block header, payload.
	for _, budget := range []int{0, 9, 14, 30, 200} {
		if err := Write(&failingWriter{remaining: budget}, blocks); err == nil {
			t.Errorf("budget %d: expected write error", budget)
		}
	}
	// Invalid particles are rejected before any bytes flow.
	bad := nbody.NewParticles(2)
	bad.VX = bad.VX[:1]
	var buf bytes.Buffer
	if err := Write(&buf, []Block{{Rank: 0, Particles: bad}}); err == nil {
		t.Error("expected validation error")
	}
}

func TestWriteFileCreateError(t *testing.T) {
	err := WriteFile("/nonexistent-dir/zzz/file.gio", []Block{{Rank: 0, Particles: nbody.NewParticles(0)}})
	if err == nil {
		t.Error("expected path error")
	}
}

func TestReadHeaderErrorPaths(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, []Block{{Rank: 1, Particles: randParticles(5, 10)}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Truncations at every header boundary.
	for _, cut := range []int{4, 9, 13, 17, 25, 29} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("cut %d: expected error", cut)
		}
	}
	// Unsupported version.
	bad := append([]byte(nil), data...)
	bad[8] = 99
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("expected version error")
	}
}

func TestWideRoundTripBitExact(t *testing.T) {
	blocks := []Block{
		{Rank: 0, Particles: randParticles(80, 11)},
		{Rank: 2, Particles: randParticles(17, 12)},
	}
	var buf bytes.Buffer
	if err := WriteWide(&buf, blocks); err != nil {
		t.Fatal(err)
	}
	wantLen := len(Magic) + 8 + 2*(4+8+4) + (80+17)*WideRecordSize
	if buf.Len() != wantLen {
		t.Errorf("wide stream length = %d, want %d", buf.Len(), wantLen)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for bi, b := range got {
		want := blocks[bi].Particles
		for i := 0; i < b.Particles.N(); i++ {
			// float64 storage: bit-exact round trip.
			if b.Particles.X[i] != want.X[i] || b.Particles.VX[i] != want.VX[i] ||
				b.Particles.VZ[i] != want.VZ[i] || b.Particles.Tag[i] != want.Tag[i] {
				t.Fatalf("wide block %d particle %d not bit-identical", bi, i)
			}
		}
	}
}

func TestTypedSentinelErrors(t *testing.T) {
	var buf bytes.Buffer
	blocks := []Block{{Rank: 0, Particles: randParticles(40, 21)}}
	if err := Write(&buf, blocks); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()

	// Torn file: drop the tail.
	_, err := Read(bytes.NewReader(data[:len(data)-30]))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("torn file error = %v, want ErrTruncated", err)
	}

	// Corrupt payload: flip a byte past the headers.
	bad := append([]byte(nil), data...)
	bad[len(bad)-1] ^= 0x40
	_, err = Read(bytes.NewReader(bad))
	if !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupt file error = %v, want ErrChecksum", err)
	}

	// Intact file: no error.
	if _, err := Read(bytes.NewReader(data)); err != nil {
		t.Errorf("intact file error = %v", err)
	}
}

func TestReadSalvage(t *testing.T) {
	blocks := []Block{
		{Rank: 0, Particles: randParticles(30, 31)},
		{Rank: 1, Particles: randParticles(30, 32)},
		{Rank: 2, Particles: randParticles(30, 33)},
	}
	var buf bytes.Buffer
	if err := Write(&buf, blocks); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	blockBytes := 4 + 8 + 4 + 30*RecordSize

	// Tear the file inside block 2: blocks 0 and 1 must be salvaged.
	torn := data[:len(data)-blockBytes/2]
	got, err := ReadSalvage(bytes.NewReader(torn))
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("salvage error = %v, want ErrTruncated", err)
	}
	if len(got) != 2 || got[0].Rank != 0 || got[1].Rank != 1 {
		t.Fatalf("salvaged %d blocks", len(got))
	}
	for i := 0; i < 30; i++ {
		if float32(got[1].Particles.X[i]) != float32(blocks[1].Particles.X[i]) {
			t.Fatalf("salvaged block data corrupt at %d", i)
		}
	}

	// Corrupt the middle block: bit rot, not a tear, so the blocks on
	// either side survive — salvage skips the bad block and keeps going.
	bad := append([]byte(nil), data...)
	bad[len(Magic)+8+blockBytes+blockBytes-3] ^= 0x10
	got, err = ReadSalvage(bytes.NewReader(bad))
	if !errors.Is(err, ErrChecksum) {
		t.Errorf("salvage corrupt error = %v, want ErrChecksum", err)
	}
	if len(got) != 2 || got[0].Rank != 0 || got[1].Rank != 2 {
		t.Fatalf("salvaged %d blocks from corrupt file, want ranks 0 and 2", len(got))
	}
	// Strict Read must still refuse the whole file.
	if _, err := Read(bytes.NewReader(bad)); !errors.Is(err, ErrChecksum) {
		t.Errorf("strict read of corrupt file = %v, want ErrChecksum", err)
	}

	// A clean file salvages everything with no error.
	got, err = ReadSalvage(bytes.NewReader(data))
	if err != nil || len(got) != 3 {
		t.Fatalf("clean salvage: %d blocks, %v", len(got), err)
	}

	// File variant.
	path := filepath.Join(t.TempDir(), "torn.gio")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = ReadSalvageFile(path)
	if !errors.Is(err, ErrTruncated) || len(got) != 2 {
		t.Fatalf("salvage file: %d blocks, %v", len(got), err)
	}
}

func TestReadSalvageMultipleCorruptBlocks(t *testing.T) {
	const nBlocks = 6
	blocks := make([]Block, nBlocks)
	for i := range blocks {
		blocks[i] = Block{Rank: i, Particles: randParticles(20, int64(40+i))}
	}
	var buf bytes.Buffer
	if err := Write(&buf, blocks); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	blockBytes := 4 + 8 + 4 + 20*RecordSize

	// Rot three non-adjacent interior blocks (1, 3, 4): flip one payload
	// bit in each, lengths untouched.
	bad := append([]byte(nil), data...)
	for _, bi := range []int{1, 3, 4} {
		bad[len(Magic)+8+bi*blockBytes+16+5] ^= 0x01
	}
	got, err := ReadSalvage(bytes.NewReader(bad))
	if !errors.Is(err, ErrChecksum) {
		t.Errorf("salvage error = %v, want ErrChecksum (first corrupt block)", err)
	}
	wantRanks := []int{0, 2, 5}
	if len(got) != len(wantRanks) {
		t.Fatalf("salvaged %d blocks, want %d", len(got), len(wantRanks))
	}
	for i, b := range got {
		if b.Rank != wantRanks[i] {
			t.Errorf("salvaged block %d has rank %d, want %d", i, b.Rank, wantRanks[i])
		}
		orig := blocks[wantRanks[i]].Particles
		for j := 0; j < orig.N(); j++ {
			if float32(b.Particles.X[j]) != float32(orig.X[j]) {
				t.Fatalf("salvaged rank %d data corrupt at %d", b.Rank, j)
			}
		}
	}

	// Corruption plus a torn tail: the tear still stops the scan, and the
	// reported error is the first one hit (the checksum, not the tear).
	tornBad := bad[:len(bad)-blockBytes/2]
	got, err = ReadSalvage(bytes.NewReader(tornBad))
	if !errors.Is(err, ErrChecksum) {
		t.Errorf("torn+corrupt error = %v, want first error (ErrChecksum)", err)
	}
	if len(got) != 2 || got[0].Rank != 0 || got[1].Rank != 2 {
		t.Fatalf("torn+corrupt salvaged %d blocks, want ranks 0 and 2", len(got))
	}
}
