// Package kdtree builds balanced k-d trees over particle positions.
//
// The paper's FOF halo finder works "using a serial algorithm which
// constructs and then recursively traverses a balanced k-d tree ... At
// higher levels of the tree, bounding boxes which define the space covered
// by the subtree rooted at a node are used to reduce the number of
// particle-to-particle distance comparisons" (§3.3.1). This tree provides
// the balanced median-split construction, per-node bounding boxes, and the
// (optionally periodic) fixed-radius neighbour queries the halo finder and
// the subhalo density estimator build on.
package kdtree

import (
	"fmt"
	"math"
	"sort"
)

// Tree is a balanced k-d tree over a fixed set of points. Points are
// addressed by their index in the X/Y/Z arrays handed to Build.
type Tree struct {
	x, y, z []float64
	// perm holds point indices; each node owns a contiguous span of perm.
	perm  []int
	nodes []node
	// Period > 0 enables minimum-image distances with that box side on all
	// axes; 0 means open (non-periodic) space — the mode used on rank-local
	// data whose overload regions already materialize the periodic copies.
	Period float64
	// LeafSize is the maximum number of points in a leaf.
	LeafSize int
}

// node is one k-d tree node covering perm[lo:hi].
type node struct {
	lo, hi      int // span in perm
	left, right int // child node indices, -1 for leaves
	// Bounding box of the points in the span.
	minB, maxB [3]float64
}

// Build constructs a balanced tree over the given coordinates. x, y and z
// must have equal length. period > 0 makes all distance queries periodic
// with that box side. leafSize <= 0 selects a default of 16.
func Build(x, y, z []float64, period float64, leafSize int) (*Tree, error) {
	n := len(x)
	if len(y) != n || len(z) != n {
		return nil, fmt.Errorf("kdtree: coordinate lengths differ: %d/%d/%d", n, len(y), len(z))
	}
	if period < 0 {
		return nil, fmt.Errorf("kdtree: period %g must be >= 0", period)
	}
	if leafSize <= 0 {
		leafSize = 16
	}
	t := &Tree{x: x, y: y, z: z, Period: period, LeafSize: leafSize}
	t.perm = make([]int, n)
	for i := range t.perm {
		t.perm[i] = i
	}
	if n > 0 {
		t.build(0, n, 0)
	}
	return t, nil
}

// N returns the number of points in the tree.
func (t *Tree) N() int { return len(t.x) }

// coord returns the position of point i along axis.
func (t *Tree) coord(i, axis int) float64 {
	switch axis {
	case 0:
		return t.x[i]
	case 1:
		return t.y[i]
	default:
		return t.z[i]
	}
}

// build creates the subtree over perm[lo:hi] splitting on axis, returning
// its node index.
func (t *Tree) build(lo, hi, axis int) int {
	idx := len(t.nodes)
	t.nodes = append(t.nodes, node{lo: lo, hi: hi, left: -1, right: -1})
	// Bounding box.
	nb := &t.nodes[idx]
	for a := 0; a < 3; a++ {
		nb.minB[a] = math.Inf(1)
		nb.maxB[a] = math.Inf(-1)
	}
	for _, p := range t.perm[lo:hi] {
		for a := 0; a < 3; a++ {
			c := t.coord(p, a)
			if c < nb.minB[a] {
				nb.minB[a] = c
			}
			if c > nb.maxB[a] {
				nb.maxB[a] = c
			}
		}
	}
	if hi-lo <= t.LeafSize {
		return idx
	}
	// Median split on the given axis (balanced construction).
	span := t.perm[lo:hi]
	mid := len(span) / 2
	nthElement(span, mid, func(a, b int) bool { return t.coord(a, axis) < t.coord(b, axis) })
	next := (axis + 1) % 3
	left := t.build(lo, lo+mid, next)
	right := t.build(lo+mid, hi, next)
	// t.nodes may have been reallocated by child appends.
	t.nodes[idx].left = left
	t.nodes[idx].right = right
	return idx
}

// nthElement partially sorts span so span[k] holds the element that would
// be at position k in sorted order (a quickselect).
func nthElement(span []int, k int, less func(a, b int) bool) {
	lo, hi := 0, len(span)-1
	for lo < hi {
		p := partition(span, lo, hi, less)
		switch {
		case p == k:
			return
		case p < k:
			lo = p + 1
		default:
			hi = p - 1
		}
	}
}

func partition(span []int, lo, hi int, less func(a, b int) bool) int {
	// Median-of-three pivot keeps the lattice-like inputs from degrading.
	mid := (lo + hi) / 2
	if less(span[mid], span[lo]) {
		span[mid], span[lo] = span[lo], span[mid]
	}
	if less(span[hi], span[lo]) {
		span[hi], span[lo] = span[lo], span[hi]
	}
	if less(span[hi], span[mid]) {
		span[hi], span[mid] = span[mid], span[hi]
	}
	span[mid], span[hi] = span[hi], span[mid]
	pivot := span[hi]
	i := lo
	for j := lo; j < hi; j++ {
		if less(span[j], pivot) {
			span[i], span[j] = span[j], span[i]
			i++
		}
	}
	span[i], span[hi] = span[hi], span[i]
	return i
}

// axisDist returns the distance from coordinate c to the interval
// [lo, hi] along one axis, honouring periodicity.
func (t *Tree) axisDist(c, lo, hi float64) float64 {
	d := axisDistOpen(c, lo, hi)
	if t.Period > 0 {
		if d2 := axisDistOpen(c+t.Period, lo, hi); d2 < d {
			d = d2
		}
		if d2 := axisDistOpen(c-t.Period, lo, hi); d2 < d {
			d = d2
		}
	}
	return d
}

func axisDistOpen(c, lo, hi float64) float64 {
	switch {
	case c < lo:
		return lo - c
	case c > hi:
		return c - hi
	default:
		return 0
	}
}

// Dist2 returns the squared (minimum-image when periodic) distance between
// point i and the coordinates (x, y, z).
func (t *Tree) Dist2(i int, x, y, z float64) float64 {
	dx := t.delta(t.x[i] - x)
	dy := t.delta(t.y[i] - y)
	dz := t.delta(t.z[i] - z)
	return dx*dx + dy*dy + dz*dz
}

func (t *Tree) delta(d float64) float64 {
	if t.Period > 0 {
		d -= t.Period * math.Round(d/t.Period)
	}
	return d
}

// boxDist2 returns the squared distance from (x,y,z) to node nb's bounding
// box (0 when inside).
func (t *Tree) boxDist2(nb *node, x, y, z float64) float64 {
	dx := t.axisDist(x, nb.minB[0], nb.maxB[0])
	dy := t.axisDist(y, nb.minB[1], nb.maxB[1])
	dz := t.axisDist(z, nb.minB[2], nb.maxB[2])
	return dx*dx + dy*dy + dz*dz
}

// VisitWithin calls visit(j) for every point j with distance <= r from
// (x, y, z), including the query point itself when it is in the tree.
// visit returning false stops the traversal early.
func (t *Tree) VisitWithin(x, y, z, r float64, visit func(j int) bool) {
	if len(t.nodes) == 0 {
		return
	}
	r2 := r * r
	t.visitWithin(0, x, y, z, r, r2, visit)
}

func (t *Tree) visitWithin(ni int, x, y, z, r, r2 float64, visit func(j int) bool) bool {
	nb := &t.nodes[ni]
	if t.boxDist2(nb, x, y, z) > r2 {
		return true
	}
	if nb.left < 0 {
		for _, j := range t.perm[nb.lo:nb.hi] {
			if t.Dist2(j, x, y, z) <= r2 {
				if !visit(j) {
					return false
				}
			}
		}
		return true
	}
	if !t.visitWithin(nb.left, x, y, z, r, r2, visit) {
		return false
	}
	return t.visitWithin(nb.right, x, y, z, r, r2, visit)
}

// boxMaxDist2 returns (an upper bound on) the squared distance from
// (x,y,z) to the farthest corner of node nb's bounding box, computed
// without periodic wrapping. Open-space distance upper-bounds the periodic
// minimum-image distance, so the bound remains valid for periodic trees.
func boxMaxDist2(nb *node, x, y, z float64) float64 {
	d2 := 0.0
	for a, c := range [3]float64{x, y, z} {
		lo := math.Abs(c - nb.minB[a])
		hi := math.Abs(c - nb.maxB[a])
		if hi > lo {
			lo = hi
		}
		d2 += lo * lo
	}
	return d2
}

// VisitWithinBulk is VisitWithin with the subtree shortcut of §3.3.1:
// "bounding boxes which define the space covered by the subtree rooted at
// a node are used to reduce the number of particle-to-particle distance
// comparisons, allowing whole subtrees to be merged into a halo or
// excluded from a halo at once." When an entire node's box provably lies
// within r of the query, bulk is called once with all member indices and
// no per-point distance tests; otherwise traversal refines as usual and
// in-range leaf points go to visit one by one. Either callback returning
// false stops the traversal.
func (t *Tree) VisitWithinBulk(x, y, z, r float64, bulk func(members []int) bool, visit func(j int) bool) {
	if len(t.nodes) == 0 {
		return
	}
	r2 := r * r
	t.visitWithinBulk(0, x, y, z, r2, bulk, visit)
}

func (t *Tree) visitWithinBulk(ni int, x, y, z, r2 float64, bulk func([]int) bool, visit func(int) bool) bool {
	nb := &t.nodes[ni]
	if t.boxDist2(nb, x, y, z) > r2 {
		return true
	}
	if boxMaxDist2(nb, x, y, z) <= r2 {
		return bulk(t.perm[nb.lo:nb.hi])
	}
	if nb.left < 0 {
		for _, j := range t.perm[nb.lo:nb.hi] {
			if t.Dist2(j, x, y, z) <= r2 {
				if !visit(j) {
					return false
				}
			}
		}
		return true
	}
	if !t.visitWithinBulk(nb.left, x, y, z, r2, bulk, visit) {
		return false
	}
	return t.visitWithinBulk(nb.right, x, y, z, r2, bulk, visit)
}

// Within returns the indices of all points with distance <= r from
// (x, y, z), sorted ascending.
func (t *Tree) Within(x, y, z, r float64) []int {
	var out []int
	t.VisitWithin(x, y, z, r, func(j int) bool {
		out = append(out, j)
		return true
	})
	sort.Ints(out)
	return out
}

// TraverseNodes walks the tree from the root. visit is called with each
// node's bounding box, its member index span (aliasing internal storage;
// do not modify), and whether the node is a leaf. Returning true descends
// into the node's children; leaves never descend. The A* center finder
// uses this to build Barnes-Hut-style admissible potential bounds.
func (t *Tree) TraverseNodes(visit func(minB, maxB [3]float64, members []int, isLeaf bool) bool) {
	if len(t.nodes) == 0 {
		return
	}
	t.traverseNodes(0, visit)
}

func (t *Tree) traverseNodes(ni int, visit func(minB, maxB [3]float64, members []int, isLeaf bool) bool) {
	nb := &t.nodes[ni]
	isLeaf := nb.left < 0
	if !visit(nb.minB, nb.maxB, t.perm[nb.lo:nb.hi], isLeaf) || isLeaf {
		return
	}
	t.traverseNodes(nb.left, visit)
	t.traverseNodes(nb.right, visit)
}

// Leaves returns the point indices of every leaf node, one slice per leaf.
// The returned slices alias the tree's internal permutation and must not be
// modified. Leaf grouping gives callers a spatially coherent O(n/LeafSize)
// partition — the A* center finder's optimistic heuristic aggregates mass
// over exactly these groups.
func (t *Tree) Leaves() [][]int {
	var out [][]int
	for ni := range t.nodes {
		nb := &t.nodes[ni]
		if nb.left < 0 {
			out = append(out, t.perm[nb.lo:nb.hi])
		}
	}
	return out
}

// neighbour is one candidate in a k-nearest-neighbour search.
type neighbour struct {
	idx   int
	dist2 float64
}

// KNearest returns the indices of the k nearest points to (x, y, z)
// together with their squared distances, ordered nearest first. The query
// point itself is included when present in the tree. If the tree holds
// fewer than k points, all are returned.
func (t *Tree) KNearest(x, y, z float64, k int) (idx []int, dist2 []float64) {
	if k <= 0 || len(t.nodes) == 0 {
		return nil, nil
	}
	h := &nbrHeap{}
	t.kNearest(0, x, y, z, k, h)
	// Heap is a max-heap on distance; unload and reverse.
	out := make([]neighbour, len(*h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.pop()
	}
	idx = make([]int, len(out))
	dist2 = make([]float64, len(out))
	for i, nb := range out {
		idx[i] = nb.idx
		dist2[i] = nb.dist2
	}
	return idx, dist2
}

func (t *Tree) kNearest(ni int, x, y, z float64, k int, h *nbrHeap) {
	nb := &t.nodes[ni]
	if len(*h) == k && t.boxDist2(nb, x, y, z) > (*h)[0].dist2 {
		return
	}
	if nb.left < 0 {
		for _, j := range t.perm[nb.lo:nb.hi] {
			d2 := t.Dist2(j, x, y, z)
			if len(*h) < k {
				h.push(neighbour{j, d2})
			} else if d2 < (*h)[0].dist2 {
				h.pop()
				h.push(neighbour{j, d2})
			}
		}
		return
	}
	// Visit the nearer child first for better pruning.
	l, r := nb.left, nb.right
	dl := t.boxDist2(&t.nodes[l], x, y, z)
	dr := t.boxDist2(&t.nodes[r], x, y, z)
	if dr < dl {
		l, r = r, l
	}
	t.kNearest(l, x, y, z, k, h)
	t.kNearest(r, x, y, z, k, h)
}

// nbrHeap is a max-heap of neighbours keyed on dist2.
type nbrHeap []neighbour

func (h *nbrHeap) push(n neighbour) {
	*h = append(*h, n)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist2 >= (*h)[i].dist2 {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *nbrHeap) pop() neighbour {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && (*h)[l].dist2 > (*h)[big].dist2 {
			big = l
		}
		if r < last && (*h)[r].dist2 > (*h)[big].dist2 {
			big = r
		}
		if big == i {
			break
		}
		(*h)[i], (*h)[big] = (*h)[big], (*h)[i]
		i = big
	}
	return top
}
