package kdtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomCloud(n int, box float64, seed int64) (x, y, z []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float64() * box
		y[i] = rng.Float64() * box
		z[i] = rng.Float64() * box
	}
	return
}

// naiveWithin is the brute-force reference.
func naiveWithin(x, y, z []float64, qx, qy, qz, r, period float64) []int {
	var out []int
	r2 := r * r
	for i := range x {
		dx := wrapDelta(x[i]-qx, period)
		dy := wrapDelta(y[i]-qy, period)
		dz := wrapDelta(z[i]-qz, period)
		if dx*dx+dy*dy+dz*dz <= r2 {
			out = append(out, i)
		}
	}
	return out
}

func wrapDelta(d, period float64) float64 {
	if period > 0 {
		d -= period * math.Round(d/period)
	}
	return d
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]float64{1}, []float64{1, 2}, []float64{1}, 0, 4); err == nil {
		t.Error("expected length mismatch error")
	}
	if _, err := Build(nil, nil, nil, -1, 4); err == nil {
		t.Error("expected negative period error")
	}
	tr, err := Build(nil, nil, nil, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 0 {
		t.Errorf("N = %d", tr.N())
	}
	tr.VisitWithin(0, 0, 0, 1, func(int) bool { t.Error("visited in empty tree"); return true })
}

func TestWithinMatchesBruteForceOpen(t *testing.T) {
	x, y, z := randomCloud(500, 10, 1)
	tr, err := Build(x, y, z, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 50; q++ {
		qx, qy, qz := rng.Float64()*10, rng.Float64()*10, rng.Float64()*10
		r := rng.Float64() * 3
		got := tr.Within(qx, qy, qz, r)
		want := naiveWithin(x, y, z, qx, qy, qz, r, 0)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d, want %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: mismatch at %d", q, i)
			}
		}
	}
}

func TestWithinMatchesBruteForcePeriodic(t *testing.T) {
	box := 10.0
	x, y, z := randomCloud(400, box, 3)
	tr, err := Build(x, y, z, box, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 50; q++ {
		// Queries near the boundary exercise wrapping.
		qx, qy, qz := rng.Float64()*0.5, rng.Float64()*box, box-rng.Float64()*0.5
		r := rng.Float64() * 2
		got := tr.Within(qx, qy, qz, r)
		want := naiveWithin(x, y, z, qx, qy, qz, r, box)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %v, want %v", q, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d: mismatch at %d", q, i)
			}
		}
	}
}

func TestVisitWithinEarlyStop(t *testing.T) {
	x, y, z := randomCloud(100, 5, 7)
	tr, _ := Build(x, y, z, 0, 4)
	count := 0
	tr.VisitWithin(2.5, 2.5, 2.5, 10, func(int) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Errorf("visited %d, want early stop at 5", count)
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	box := 10.0
	x, y, z := randomCloud(300, box, 9)
	for _, period := range []float64{0, box} {
		tr, err := Build(x, y, z, period, 8)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(11))
		for q := 0; q < 30; q++ {
			qx, qy, qz := rng.Float64()*box, rng.Float64()*box, rng.Float64()*box
			k := 1 + rng.Intn(20)
			idx, d2 := tr.KNearest(qx, qy, qz, k)
			if len(idx) != k {
				t.Fatalf("got %d results, want %d", len(idx), k)
			}
			// Brute force.
			type nd struct {
				i int
				d float64
			}
			all := make([]nd, len(x))
			for i := range x {
				dx := wrapDelta(x[i]-qx, period)
				dy := wrapDelta(y[i]-qy, period)
				dz := wrapDelta(z[i]-qz, period)
				all[i] = nd{i, dx*dx + dy*dy + dz*dz}
			}
			sort.Slice(all, func(a, b int) bool { return all[a].d < all[b].d })
			for i := 0; i < k; i++ {
				if math.Abs(d2[i]-all[i].d) > 1e-12 {
					t.Fatalf("period=%v q=%d: dist[%d] = %v, want %v", period, q, i, d2[i], all[i].d)
				}
			}
			// Distances must be non-decreasing.
			for i := 1; i < k; i++ {
				if d2[i] < d2[i-1] {
					t.Fatalf("kNN distances not sorted: %v", d2)
				}
			}
		}
	}
}

func TestKNearestFewerPointsThanK(t *testing.T) {
	x, y, z := randomCloud(5, 10, 13)
	tr, _ := Build(x, y, z, 0, 4)
	idx, _ := tr.KNearest(5, 5, 5, 10)
	if len(idx) != 5 {
		t.Errorf("got %d, want all 5", len(idx))
	}
}

func TestKNearestZeroK(t *testing.T) {
	x, y, z := randomCloud(5, 10, 13)
	tr, _ := Build(x, y, z, 0, 4)
	idx, d2 := tr.KNearest(5, 5, 5, 0)
	if idx != nil || d2 != nil {
		t.Error("expected nil results for k=0")
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Many identical points must not break construction or queries.
	n := 100
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i] = 1, 2, 3
	}
	tr, err := Build(x, y, z, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := tr.Within(1, 2, 3, 0.001)
	if len(got) != n {
		t.Errorf("found %d duplicates, want %d", len(got), n)
	}
}

// Property: Within results always match brute force for random clouds.
func TestPropertyWithinMatchesBruteForce(t *testing.T) {
	f := func(seed int64, rRaw uint8) bool {
		box := 8.0
		x, y, z := randomCloud(120, box, seed)
		r := float64(rRaw%40)/10 + 0.05
		tr, err := Build(x, y, z, box, 6)
		if err != nil {
			return false
		}
		got := tr.Within(4, 4, 4, r)
		want := naiveWithin(x, y, z, 4, 4, 4, r, box)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestNthElement(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		span := make([]int, n)
		for i := range span {
			span[i] = i
		}
		k := rng.Intn(n)
		nthElement(span, k, func(a, b int) bool { return vals[a] < vals[b] })
		pivot := vals[span[k]]
		for i := 0; i < k; i++ {
			if vals[span[i]] > pivot {
				t.Fatalf("trial %d: element %d above pivot", trial, i)
			}
		}
		for i := k + 1; i < n; i++ {
			if vals[span[i]] < pivot {
				t.Fatalf("trial %d: element %d below pivot", trial, i)
			}
		}
	}
}

// VisitWithinBulk must report exactly the same point set as VisitWithin,
// partitioned between bulk nodes and individual visits.
func TestVisitWithinBulkMatchesWithin(t *testing.T) {
	for _, period := range []float64{0, 10} {
		x, y, z := randomCloud(400, 10, 21)
		tr, err := Build(x, y, z, period, 8)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(22))
		for q := 0; q < 40; q++ {
			qx, qy, qz := rng.Float64()*10, rng.Float64()*10, rng.Float64()*10
			r := rng.Float64() * 4
			want := tr.Within(qx, qy, qz, r)
			var got []int
			bulkCalls := 0
			tr.VisitWithinBulk(qx, qy, qz, r,
				func(members []int) bool {
					bulkCalls++
					got = append(got, members...)
					return true
				},
				func(j int) bool {
					got = append(got, j)
					return true
				})
			sort.Ints(got)
			if len(got) != len(want) {
				t.Fatalf("period=%v q=%d: got %d, want %d (bulk calls %d)", period, q, len(got), len(want), bulkCalls)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("period=%v q=%d: mismatch at %d", period, q, i)
				}
			}
		}
	}
}

// Large radii must trigger the bulk path (the whole tree fits in range).
func TestVisitWithinBulkUsesBulkPath(t *testing.T) {
	x, y, z := randomCloud(200, 10, 23)
	tr, err := Build(x, y, z, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	bulkPoints := 0
	singles := 0
	tr.VisitWithinBulk(5, 5, 5, 100,
		func(members []int) bool { bulkPoints += len(members); return true },
		func(int) bool { singles++; return true })
	if bulkPoints != 200 || singles != 0 {
		t.Errorf("bulk=%d singles=%d; a huge radius should engulf the root", bulkPoints, singles)
	}
}

func TestVisitWithinBulkEarlyStop(t *testing.T) {
	x, y, z := randomCloud(100, 5, 24)
	tr, _ := Build(x, y, z, 0, 4)
	// Corner query with a radius that covers many points but not the whole
	// root box: traversal must mix bulk and single visits, and stopping
	// from the single-visit callback must halt it.
	inRange := len(tr.Within(0.5, 0.5, 0.5, 3))
	if inRange < 10 {
		t.Skip("cloud too sparse for this seed")
	}
	count := 0
	tr.VisitWithinBulk(0.5, 0.5, 0.5, 3,
		func(members []int) bool { count += len(members); return true },
		func(int) bool { count++; return false })
	if count >= inRange {
		t.Errorf("early stop ignored: visited %d of %d", count, inRange)
	}
}
