package bhtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func randomCloud(n int, seed int64) (x, y, z []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = rng.Float64() * 10
		y[i] = rng.Float64() * 10
		z[i] = rng.Float64() * 10
	}
	return
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build([]float64{1}, []float64{1, 2}, []float64{1}, 1, 8); err == nil {
		t.Error("expected length error")
	}
	if _, err := Build([]float64{1}, []float64{1}, []float64{1}, 0, 8); err == nil {
		t.Error("expected mass error")
	}
	tr, err := Build(nil, nil, nil, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 0 {
		t.Errorf("N = %d", tr.N())
	}
	if p := tr.ApproxPotential(0, 0, 0, -1, 0.5, 0.01); p != 0 {
		t.Errorf("empty tree potential = %v", p)
	}
}

func TestBuildCoincidentPoints(t *testing.T) {
	n := 50
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	tr, err := Build(x, y, z, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	idx, _ := tr.KNearest(0, 0, 0, 10)
	if len(idx) != 10 {
		t.Errorf("KNearest on coincident points returned %d", len(idx))
	}
}

func TestKNearestMatchesBruteForce(t *testing.T) {
	x, y, z := randomCloud(400, 1)
	tr, err := Build(x, y, z, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for q := 0; q < 30; q++ {
		px, py, pz := rng.Float64()*10, rng.Float64()*10, rng.Float64()*10
		k := 1 + rng.Intn(20)
		_, d2 := tr.KNearest(px, py, pz, k)
		// Brute force distances.
		all := make([]float64, len(x))
		for i := range x {
			dx, dy, dz := x[i]-px, y[i]-py, z[i]-pz
			all[i] = dx*dx + dy*dy + dz*dz
		}
		sort.Float64s(all)
		for i := 0; i < k; i++ {
			if math.Abs(d2[i]-all[i]) > 1e-12 {
				t.Fatalf("query %d: dist[%d] = %v, want %v", q, i, d2[i], all[i])
			}
		}
	}
}

func exactPotential(x, y, z []float64, i int, mass, soft float64) float64 {
	pot := 0.0
	for j := range x {
		if j == i {
			continue
		}
		dx, dy, dz := x[j]-x[i], y[j]-y[i], z[j]-z[i]
		pot -= mass / (math.Sqrt(dx*dx+dy*dy+dz*dz) + soft)
	}
	return pot
}

// The BH approximation must converge to the exact potential as theta -> 0
// and stay within a few percent at theta = 0.5.
func TestApproxPotentialAccuracy(t *testing.T) {
	x, y, z := randomCloud(500, 3)
	tr, err := Build(x, y, z, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	soft := 0.01
	for _, i := range []int{0, 100, 499} {
		exact := exactPotential(x, y, z, i, 2, soft)
		approx := tr.ApproxPotential(x[i], y[i], z[i], i, 0.5, soft)
		if relErr := math.Abs(approx-exact) / math.Abs(exact); relErr > 0.05 {
			t.Errorf("particle %d: theta=0.5 rel err %v (approx %v, exact %v)", i, relErr, approx, exact)
		}
		tight := tr.ApproxPotential(x[i], y[i], z[i], i, 0.05, soft)
		if relErr := math.Abs(tight-exact) / math.Abs(exact); relErr > 0.005 {
			t.Errorf("particle %d: theta=0.05 rel err %v", i, relErr)
		}
	}
}

func TestSPHKernelProperties(t *testing.T) {
	h := 2.0
	if SPHKernel(0, 0) != 0 {
		t.Error("zero h should give 0")
	}
	// Compact support.
	if SPHKernel(2.0, h) != 0 || SPHKernel(3, h) != 0 {
		t.Error("kernel should vanish at r >= h")
	}
	// Monotonically decreasing on [0, h).
	prev := math.Inf(1)
	for r := 0.0; r < h; r += 0.05 {
		w := SPHKernel(r, h)
		if w > prev+1e-12 {
			t.Fatalf("kernel increased at r=%v", r)
		}
		if w < 0 {
			t.Fatalf("negative kernel at r=%v", r)
		}
		prev = w
	}
	// Unit integral: 4π ∫ W r² dr = 1.
	sum := 0.0
	dr := h / 4000
	for r := dr / 2; r < h; r += dr {
		sum += SPHKernel(r, h) * r * r * dr
	}
	sum *= 4 * math.Pi
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("kernel integral = %v, want 1", sum)
	}
}

func TestDensityValidation(t *testing.T) {
	x, y, z := randomCloud(10, 4)
	tr, _ := Build(x, y, z, 1, 4)
	if _, err := tr.Density(DensityOptions{K: 1}); err == nil {
		t.Error("expected K error")
	}
	// K larger than n clamps.
	rho, err := tr.Density(DensityOptions{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(rho) != 10 {
		t.Errorf("len = %d", len(rho))
	}
}

// A uniform cloud should give roughly uniform densities near the true
// number density, and a dense clump should register higher density than
// the diffuse background around it.
func TestDensityContrast(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var x, y, z []float64
	// Diffuse background: 500 in a 10-cube.
	for i := 0; i < 500; i++ {
		x = append(x, rng.Float64()*10)
		y = append(y, rng.Float64()*10)
		z = append(z, rng.Float64()*10)
	}
	// Clump: 100 in a 0.5-cube at the centre.
	for i := 0; i < 100; i++ {
		x = append(x, 5+rng.Float64()*0.5)
		y = append(y, 5+rng.Float64()*0.5)
		z = append(z, 5+rng.Float64()*0.5)
	}
	for _, useKernel := range []bool{false, true} {
		tr, err := Build(x, y, z, 1, 8)
		if err != nil {
			t.Fatal(err)
		}
		rho, err := tr.Density(DensityOptions{K: 16, UseKernel: useKernel})
		if err != nil {
			t.Fatal(err)
		}
		bgMean, clumpMean := 0.0, 0.0
		for i := 0; i < 500; i++ {
			bgMean += rho[i]
		}
		for i := 500; i < 600; i++ {
			clumpMean += rho[i]
		}
		bgMean /= 500
		clumpMean /= 100
		if clumpMean < 20*bgMean {
			t.Errorf("useKernel=%v: clump density %v not ≫ background %v", useKernel, clumpMean, bgMean)
		}
	}
}

// Property: KNearest distances are sorted and counts correct.
func TestPropertyKNearestSorted(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		x, y, z := randomCloud(100, seed)
		tr, err := Build(x, y, z, 1, 8)
		if err != nil {
			return false
		}
		k := int(kRaw%50) + 1
		idx, d2 := tr.KNearest(5, 5, 5, k)
		if len(idx) != k || len(d2) != k {
			return false
		}
		for i := 1; i < len(d2); i++ {
			if d2[i] < d2[i-1] {
				return false
			}
		}
		seen := map[int]bool{}
		for _, i := range idx {
			if seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
