// Package bhtree implements the Barnes-Hut octree the subhalo finder's
// density estimation and unbinding passes build on.
//
// "A Barnes-Hut tree, similar to an octree but with support for more
// efficient traversals, is used for calculating the local densities using
// an SPH (Smoothed Particle Hydrodynamics) kernel" (§3.3.1). The tree here
// stores per-node total mass and center of mass, supports k-nearest-
// neighbour queries (for adaptive SPH smoothing lengths), SPH density
// estimates with the standard cubic-spline kernel, and the multipole
// (monopole) potential approximation used to make the unbinding pass
// O(n log n) instead of O(n²).
package bhtree

import (
	"fmt"
	"math"
)

// Tree is a Barnes-Hut octree over a fixed, non-periodic point set
// (subhalo analysis always runs on unwrapped halo members).
type Tree struct {
	x, y, z []float64
	mass    float64 // equal particle mass
	nodes   []node
	// perm holds particle indices; every node owns the contiguous span
	// perm[lo:hi].
	perm []int32
	// LeafSize bounds particles per leaf.
	LeafSize int
}

type node struct {
	// children[8], -1 when absent; leaf iff all absent.
	children [8]int32
	// members is the index span [lo, hi) into perm for leaves.
	lo, hi int32
	// center and half-width of the cubic cell.
	cx, cy, cz float64
	half       float64
	// Aggregates.
	comX, comY, comZ float64
	totalMass        float64
	count            int32
}

// perm-backed member storage.
type buildCtx struct {
	perm []int32
}

// Build constructs the octree. mass is the per-particle mass (> 0).
func Build(x, y, z []float64, mass float64, leafSize int) (*Tree, error) {
	n := len(x)
	if len(y) != n || len(z) != n {
		return nil, fmt.Errorf("bhtree: coordinate lengths differ: %d/%d/%d", n, len(y), len(z))
	}
	if mass <= 0 {
		return nil, fmt.Errorf("bhtree: particle mass %g must be positive", mass)
	}
	if leafSize <= 0 {
		leafSize = 8
	}
	t := &Tree{x: x, y: y, z: z, mass: mass, LeafSize: leafSize}
	if n == 0 {
		return t, nil
	}
	// Root cell: cube enclosing all points.
	minB := [3]float64{math.Inf(1), math.Inf(1), math.Inf(1)}
	maxB := [3]float64{math.Inf(-1), math.Inf(-1), math.Inf(-1)}
	for i := 0; i < n; i++ {
		p := [3]float64{x[i], y[i], z[i]}
		for a := 0; a < 3; a++ {
			if p[a] < minB[a] {
				minB[a] = p[a]
			}
			if p[a] > maxB[a] {
				maxB[a] = p[a]
			}
		}
	}
	half := 0.0
	for a := 0; a < 3; a++ {
		if w := (maxB[a] - minB[a]) / 2; w > half {
			half = w
		}
	}
	half *= 1.0001 // guard against points exactly on the boundary
	if half == 0 {
		half = 1e-12 // all points coincident
	}
	ctx := &buildCtx{perm: make([]int32, n)}
	for i := range ctx.perm {
		ctx.perm[i] = int32(i)
	}
	t.build(ctx, 0, int32(n),
		(minB[0]+maxB[0])/2, (minB[1]+maxB[1])/2, (minB[2]+maxB[2])/2, half, 0)
	t.perm = ctx.perm
	return t, nil
}

// N returns the number of particles in the tree.
func (t *Tree) N() int { return len(t.x) }

// build creates the subtree for perm[lo:hi] in the cell centred at
// (cx,cy,cz) with the given half-width, returning the node index.
func (t *Tree) build(ctx *buildCtx, lo, hi int32, cx, cy, cz, half float64, depth int) int32 {
	idx := int32(len(t.nodes))
	nd := node{lo: lo, hi: hi, cx: cx, cy: cy, cz: cz, half: half, count: hi - lo}
	for i := range nd.children {
		nd.children[i] = -1
	}
	// Aggregates.
	var sx, sy, sz float64
	for _, p := range ctx.perm[lo:hi] {
		sx += t.x[p]
		sy += t.y[p]
		sz += t.z[p]
	}
	cnt := float64(hi - lo)
	nd.totalMass = t.mass * cnt
	nd.comX, nd.comY, nd.comZ = sx/cnt, sy/cnt, sz/cnt
	t.nodes = append(t.nodes, nd)

	const maxDepth = 64
	if hi-lo <= int32(t.LeafSize) || depth >= maxDepth {
		return idx
	}
	// Partition the span into octants (three successive binary splits).
	span := ctx.perm[lo:hi]
	oct := func(p int32) int {
		o := 0
		if t.x[p] >= cx {
			o |= 4
		}
		if t.y[p] >= cy {
			o |= 2
		}
		if t.z[p] >= cz {
			o |= 1
		}
		return o
	}
	// Counting sort by octant.
	var counts [8]int32
	for _, p := range span {
		counts[oct(p)]++
	}
	var starts [9]int32
	for o := 0; o < 8; o++ {
		starts[o+1] = starts[o] + counts[o]
	}
	sorted := make([]int32, len(span))
	var fill [8]int32
	for _, p := range span {
		o := oct(p)
		sorted[starts[o]+fill[o]] = p
		fill[o]++
	}
	copy(span, sorted)
	q := half / 2
	for o := 0; o < 8; o++ {
		if counts[o] == 0 {
			continue
		}
		ox, oy, oz := cx-q, cy-q, cz-q
		if o&4 != 0 {
			ox = cx + q
		}
		if o&2 != 0 {
			oy = cy + q
		}
		if o&1 != 0 {
			oz = cz + q
		}
		child := t.build(ctx, lo+starts[o], lo+starts[o]+counts[o], ox, oy, oz, q, depth+1)
		t.nodes[idx].children[o] = child
	}
	return idx
}

// ApproxPotential returns the Barnes-Hut monopole approximation of the
// gravitational potential at (px,py,pz), excluding (when self >= 0) the
// particle with that index from the sum. theta is the standard opening
// angle (0.5-0.8 typical); softening the constant distance offset.
func (t *Tree) ApproxPotential(px, py, pz float64, self int, theta, softening float64) float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	return t.approxPot(0, px, py, pz, self, theta, softening)
}

func (t *Tree) approxPot(ni int32, px, py, pz float64, self int, theta, softening float64) float64 {
	nd := &t.nodes[ni]
	dx := nd.comX - px
	dy := nd.comY - py
	dz := nd.comZ - pz
	d := math.Sqrt(dx*dx + dy*dy + dz*dz)
	size := nd.half * 2
	if d > 0 && size/d < theta {
		pot := -nd.totalMass / (d + softening)
		if self >= 0 && t.contains(nd, int32(self)) {
			// Remove the self term approximately: subtracting the self
			// particle's contribution at the node distance keeps the
			// approximation consistent with the opening criterion.
			pot += t.mass / (d + softening)
		}
		return pot
	}
	if t.isLeaf(nd) {
		pot := 0.0
		for _, p := range t.perm[nd.lo:nd.hi] {
			if int(p) == self {
				continue
			}
			ddx := t.x[p] - px
			ddy := t.y[p] - py
			ddz := t.z[p] - pz
			r := math.Sqrt(ddx*ddx+ddy*ddy+ddz*ddz) + softening
			if r > 0 {
				pot -= t.mass / r
			}
		}
		return pot
	}
	pot := 0.0
	for _, c := range nd.children {
		if c >= 0 {
			pot += t.approxPot(c, px, py, pz, self, theta, softening)
		}
	}
	return pot
}

func (t *Tree) isLeaf(nd *node) bool {
	for _, c := range nd.children {
		if c >= 0 {
			return false
		}
	}
	return true
}

// contains reports whether particle index p falls in node nd's span.
// Node spans are contiguous in perm, so membership is a range check on
// the permuted position — resolved via a linear scan only for leaves and
// via span bounds otherwise.
func (t *Tree) contains(nd *node, p int32) bool {
	for _, q := range t.perm[nd.lo:nd.hi] {
		if q == p {
			return true
		}
	}
	return false
}

// nbr is one k-nearest-neighbour candidate.
type nbr struct {
	idx int
	d2  float64
}

// maxHeap is a max-heap of neighbours keyed on squared distance.
type maxHeap []nbr

func (h *maxHeap) push(n nbr) {
	*h = append(*h, n)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].d2 >= (*h)[i].d2 {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *maxHeap) pop() nbr {
	top := (*h)[0]
	last := len(*h) - 1
	(*h)[0] = (*h)[last]
	*h = (*h)[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < last && (*h)[l].d2 > (*h)[big].d2 {
			big = l
		}
		if r < last && (*h)[r].d2 > (*h)[big].d2 {
			big = r
		}
		if big == i {
			break
		}
		(*h)[i], (*h)[big] = (*h)[big], (*h)[i]
		i = big
	}
	return top
}

// KNearest returns the k nearest particle indices to (px,py,pz) and their
// squared distances, nearest first, using a best-first tree descent.
func (t *Tree) KNearest(px, py, pz float64, k int) (idx []int, dist2 []float64) {
	if k <= 0 || len(t.nodes) == 0 {
		return nil, nil
	}
	h := &maxHeap{}
	t.knn(0, px, py, pz, k, h)
	out := make([]nbr, len(*h))
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = h.pop()
	}
	idx = make([]int, len(out))
	dist2 = make([]float64, len(out))
	for i, nb := range out {
		idx[i] = nb.idx
		dist2[i] = nb.d2
	}
	return idx, dist2
}

func (t *Tree) knn(ni int32, px, py, pz float64, k int, h *maxHeap) {
	nd := &t.nodes[ni]
	if len(*h) == k && t.cellDist2(nd, px, py, pz) > (*h)[0].d2 {
		return
	}
	if t.isLeaf(nd) {
		for _, p := range t.perm[nd.lo:nd.hi] {
			dx := t.x[p] - px
			dy := t.y[p] - py
			dz := t.z[p] - pz
			d2 := dx*dx + dy*dy + dz*dz
			if len(*h) < k {
				h.push(nbr{int(p), d2})
			} else if d2 < (*h)[0].d2 {
				h.pop()
				h.push(nbr{int(p), d2})
			}
		}
		return
	}
	// Order children by distance for effective pruning.
	type cd struct {
		c int32
		d float64
	}
	var kids [8]cd
	nk := 0
	for _, c := range nd.children {
		if c >= 0 {
			kids[nk] = cd{c, t.cellDist2(&t.nodes[c], px, py, pz)}
			nk++
		}
	}
	for i := 1; i < nk; i++ {
		for j := i; j > 0 && kids[j].d < kids[j-1].d; j-- {
			kids[j], kids[j-1] = kids[j-1], kids[j]
		}
	}
	for i := 0; i < nk; i++ {
		t.knn(kids[i].c, px, py, pz, k, h)
	}
}

func (t *Tree) cellDist2(nd *node, px, py, pz float64) float64 {
	d2 := 0.0
	for _, ax := range [3][2]float64{{px, nd.cx}, {py, nd.cy}, {pz, nd.cz}} {
		d := math.Abs(ax[0]-ax[1]) - nd.half
		if d > 0 {
			d2 += d * d
		}
	}
	return d2
}

// SPHKernel evaluates the standard cubic-spline SPH kernel W(r, h),
// normalized in 3-D.
func SPHKernel(r, h float64) float64 {
	if h <= 0 {
		return 0
	}
	q := r / h
	sigma := 8 / (math.Pi * h * h * h)
	switch {
	case q < 0.5:
		return sigma * (1 - 6*q*q + 6*q*q*q)
	case q < 1:
		u := 1 - q
		return sigma * 2 * u * u * u
	default:
		return 0
	}
}

// DensityOptions configures SPH density estimation.
type DensityOptions struct {
	// K is the number of nearest neighbours (including the particle
	// itself); the paper's subhalo finder estimates "the local density for
	// each particle ... by finding a specified number of nearest neighbor
	// particles". Typical values 16-64.
	K int
	// UseKernel selects the cubic-spline SPH kernel estimate. When false,
	// the estimator is the paper's simpler statement — "a density based on
	// the total mass of these particles and the distance to the furthest of
	// these": rho = K·m / (4/3 π h³).
	UseKernel bool
}

// Density estimates the local density at every particle. Returns one value
// per particle in input order.
func (t *Tree) Density(o DensityOptions) ([]float64, error) {
	if o.K < 2 {
		return nil, fmt.Errorf("bhtree: density needs K >= 2, got %d", o.K)
	}
	n := t.N()
	if o.K > n {
		o.K = n
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		idx, d2 := t.KNearest(t.x[i], t.y[i], t.z[i], o.K)
		h := math.Sqrt(d2[len(d2)-1])
		if h == 0 {
			// Coincident points: declare a tiny smoothing length so the
			// density is large and finite rather than infinite.
			h = 1e-12
		}
		if o.UseKernel {
			rho := 0.0
			for _, j := range d2 {
				rho += t.mass * SPHKernel(math.Sqrt(j), h)
			}
			out[i] = rho
		} else {
			vol := 4.0 / 3.0 * math.Pi * h * h * h
			out[i] = t.mass * float64(len(idx)) / vol
		}
	}
	return out, nil
}
