package transit

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/fault"
	"repro/internal/integrity"
)

func TestPutFillsChecksumForByteSlices(t *testing.T) {
	s, err := NewStage(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("level 2 payload")
	if err := s.Put(Item{Key: "a", Bytes: int64(len(data)), Payload: data}); err != nil {
		t.Fatal(err)
	}
	item, err := s.Get()
	if err != nil {
		t.Fatal(err)
	}
	if item.Sum != integrity.Sum(data) {
		t.Errorf("delivered sum %q, want content address", item.Sum)
	}
	// Non-byte payloads pass through without a checksum.
	if err := s.Put(Item{Key: "b", Bytes: 4, Payload: 42}); err != nil {
		t.Fatal(err)
	}
	item, err = s.Get()
	if err != nil {
		t.Fatal(err)
	}
	if item.Sum != "" {
		t.Errorf("non-byte payload got sum %q", item.Sum)
	}
}

func TestTakeRejectsCorruptAtRestPayload(t *testing.T) {
	s, err := NewStage(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	// The staged copy itself is poisoned: its declared Sum never matches,
	// so retransfer cannot help and Take must give up with the sentinel.
	data := []byte("poisoned payload")
	if err := s.Put(Item{Key: "bad", Bytes: int64(len(data)), Payload: data,
		Sum: integrity.Sum([]byte("what the producer meant to stage"))}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Take(); !errors.Is(err, ErrItemChecksum) {
		t.Fatalf("Take = %v, want ErrItemChecksum", err)
	}
	if st := s.Stats(); st.CorruptCaught != maxChecksumDeliveries {
		t.Errorf("CorruptCaught = %d, want %d bounded attempts", st.CorruptCaught, maxChecksumDeliveries)
	}
}

// Transfer corruption injected at the device boundary is caught by the
// end-to-end checksum and healed by retransfer: every payload reaching a
// consumer is intact. Run under -race in CI's corruption soak.
func TestTransferCorruptionCaughtAndRetried(t *testing.T) {
	s, err := NewStage(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	s.SetFaults(fault.MustNew(fault.Profile{Seed: 21, TransitCorruptProb: 0.4}))
	const items = 60
	payloads := map[string][]byte{}
	for i := 0; i < items; i++ {
		key := string(rune('A'+i%26)) + string(rune('a'+i/26))
		data := []byte("payload " + key + " content payload content")
		payloads[key] = data
	}
	var mu sync.Mutex
	delivered := map[string]int{}
	done := make(chan error, 1)
	go func() {
		done <- Consume(s, 3, func(item Item) error {
			data, ok := item.Payload.([]byte)
			if !ok {
				return errors.New("payload type lost in transit")
			}
			if integrity.Sum(data) != item.Sum {
				return errors.New("corrupt payload reached the consumer")
			}
			mu.Lock()
			delivered[item.Key]++
			mu.Unlock()
			return nil
		})
	}()
	for key, data := range payloads {
		if err := s.Put(Item{Key: key, Bytes: int64(len(data)), Payload: data}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for key := range payloads {
		if delivered[key] != 1 {
			t.Errorf("item %s delivered %d times, want 1", key, delivered[key])
		}
	}
	if st := s.Stats(); st.CorruptCaught == 0 {
		t.Error("no transfer corruption caught at prob 0.4 — injection is not wired")
	}
}
