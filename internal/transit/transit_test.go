package transit

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNewStageValidation(t *testing.T) {
	if _, err := NewStage(0); err == nil {
		t.Error("expected capacity error")
	}
}

func TestPutGetFIFO(t *testing.T) {
	s, err := NewStage(1000)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := s.Put(Item{Key: fmt.Sprint(i), Bytes: 10, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		item, err := s.Get()
		if err != nil {
			t.Fatal(err)
		}
		if item.Payload.(int) != i {
			t.Errorf("got %v, want %d", item.Payload, i)
		}
	}
	st := s.Stats()
	if st.TotalItems != 5 || st.TotalBytes != 50 || st.Used != 0 || st.Queued != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPutRejectsOversized(t *testing.T) {
	s, _ := NewStage(100)
	if err := s.Put(Item{Key: "big", Bytes: 101}); err == nil {
		t.Error("expected oversize error")
	}
	if err := s.Put(Item{Key: "neg", Bytes: -1}); err == nil {
		t.Error("expected negative error")
	}
}

// A full device throttles the producer until a consumer drains — the
// in-transit backpressure behaviour.
func TestBackpressure(t *testing.T) {
	s, _ := NewStage(100)
	if err := s.Put(Item{Key: "a", Bytes: 80}); err != nil {
		t.Fatal(err)
	}
	var produced atomic.Bool
	done := make(chan error, 1)
	go func() {
		err := s.Put(Item{Key: "b", Bytes: 80}) // must wait
		produced.Store(true)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if produced.Load() {
		t.Fatal("producer did not block on full device")
	}
	if _, err := s.Get(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.StallCount != 1 {
		t.Errorf("stalls = %d", st.StallCount)
	}
	if st.PeakUsed != 80 {
		t.Errorf("peak = %d", st.PeakUsed)
	}
}

func TestCloseDrainsThenFails(t *testing.T) {
	s, _ := NewStage(100)
	if err := s.Put(Item{Key: "a", Bytes: 10, Payload: "x"}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	// Drain the remaining item.
	item, err := s.Get()
	if err != nil || item.Payload.(string) != "x" {
		t.Fatalf("drain failed: %v %v", item, err)
	}
	if _, err := s.Get(); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
	if err := s.Put(Item{Key: "late", Bytes: 1}); !errors.Is(err, ErrClosed) {
		t.Errorf("late put err = %v", err)
	}
	s.Close() // idempotent
}

func TestCloseUnblocksBlockedGet(t *testing.T) {
	s, _ := NewStage(10)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := s.Get(); !errors.Is(err, ErrClosed) {
			t.Errorf("blocked Get err = %v", err)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	s.Close()
	wg.Wait()
}

func TestCloseUnblocksBlockedPut(t *testing.T) {
	s, _ := NewStage(10)
	if err := s.Put(Item{Key: "a", Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := s.Put(Item{Key: "b", Bytes: 10}); !errors.Is(err, ErrClosed) {
			t.Errorf("blocked Put err = %v", err)
		}
	}()
	time.Sleep(30 * time.Millisecond)
	s.Close()
	wg.Wait()
}

// Producer/consumer pipeline: everything staged is consumed exactly once,
// across multiple workers, under capacity pressure.
func TestConsumeAllItemsOnce(t *testing.T) {
	s, _ := NewStage(50) // tight device: forces stalls
	const n = 200
	var seen sync.Map
	var count atomic.Int64
	var consumerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		consumerErr = Consume(s, 4, func(item Item) error {
			if _, dup := seen.LoadOrStore(item.Key, true); dup {
				return fmt.Errorf("duplicate %s", item.Key)
			}
			count.Add(1)
			return nil
		})
	}()
	for i := 0; i < n; i++ {
		if err := s.Put(Item{Key: fmt.Sprint(i), Bytes: 10}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	wg.Wait()
	if consumerErr != nil {
		t.Fatal(consumerErr)
	}
	if count.Load() != n {
		t.Errorf("consumed %d of %d", count.Load(), n)
	}
	if st := s.Stats(); st.StallCount == 0 {
		t.Error("expected stalls on the tight device")
	}
}

func TestConsumeValidation(t *testing.T) {
	s, _ := NewStage(10)
	if err := Consume(s, 0, func(Item) error { return nil }); err == nil {
		t.Error("expected workers error")
	}
}

func TestConsumePropagatesWorkerError(t *testing.T) {
	s, _ := NewStage(100)
	if err := s.Put(Item{Key: "a", Bytes: 1}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	sentinel := errors.New("analysis failed")
	err := Consume(s, 2, func(Item) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}
