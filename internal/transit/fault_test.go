package transit

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
)

// Satellite fix: a worker error must abort the stage so producers blocked
// on a full device unblock instead of hanging forever.
func TestWorkerErrorAbortsStageAndUnblocksProducer(t *testing.T) {
	s, _ := NewStage(100)
	if err := s.Put(Item{Key: "a", Bytes: 90}); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("analysis exploded")
	producerDone := make(chan error, 1)
	go func() {
		// Device is full: this Put blocks until the abort releases it.
		producerDone <- s.Put(Item{Key: "b", Bytes: 90})
	}()
	time.Sleep(20 * time.Millisecond)
	err := Consume(s, 2, func(Item) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("Consume err = %v", err)
	}
	select {
	case perr := <-producerDone:
		if !errors.Is(perr, sentinel) {
			t.Errorf("blocked Put err = %v, want the abort error", perr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("producer still blocked after worker error — the hang the abort path must prevent")
	}
	if s.Err() == nil {
		t.Error("stage not marked aborted")
	}
}

func TestAbortUnblocksBlockedGet(t *testing.T) {
	s, _ := NewStage(10)
	sentinel := errors.New("fatal")
	done := make(chan error, 1)
	go func() {
		_, err := s.Get()
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Abort(sentinel)
	if err := <-done; !errors.Is(err, sentinel) {
		t.Errorf("Get err = %v", err)
	}
	// Abort is first-wins and nil maps to ErrClosed.
	s.Abort(errors.New("other"))
	if !errors.Is(s.Err(), sentinel) {
		t.Errorf("Err = %v, want first abort to win", s.Err())
	}
}

// A consumer that dies mid-item redelivers the item: nothing is lost, the
// item reaches a surviving worker, and the stage records the redelivery.
func TestDyingConsumerRedeliversItem(t *testing.T) {
	s, _ := NewStage(1000)
	const n = 20
	for i := 0; i < n; i++ {
		if err := s.Put(Item{Key: fmt.Sprint(i), Bytes: 10}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	var processed sync.Map
	var count atomic.Int64
	died := atomic.Bool{}
	err := Consume(s, 3, func(item Item) error {
		// Exactly one worker dies, on the first delivery of item 5.
		if item.Key == "5" && item.Delivery == 0 && died.CompareAndSwap(false, true) {
			return ErrConsumerDied
		}
		if _, dup := processed.LoadOrStore(item.Key, true); dup {
			return fmt.Errorf("duplicate %s", item.Key)
		}
		count.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count.Load() != n {
		t.Errorf("processed %d of %d — the dying consumer's item was lost", count.Load(), n)
	}
	st := s.Stats()
	if st.Redelivered != 1 {
		t.Errorf("redelivered = %d, want 1", st.Redelivered)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("stage not drained: %+v", st)
	}
}

func TestAllWorkersDyingAbortsStage(t *testing.T) {
	s, _ := NewStage(1000)
	for i := 0; i < 5; i++ {
		if err := s.Put(Item{Key: fmt.Sprint(i), Bytes: 1}); err != nil {
			t.Fatal(err)
		}
	}
	producerDone := make(chan error, 1)
	go func() {
		// Keep producing; must not hang when every consumer is gone.
		for {
			if err := s.Put(Item{Key: "more", Bytes: 1}); err != nil {
				producerDone <- err
				return
			}
		}
	}()
	err := Consume(s, 2, func(Item) error { return ErrConsumerDied })
	if !errors.Is(err, ErrConsumerDied) {
		t.Errorf("Consume err = %v", err)
	}
	select {
	case perr := <-producerDone:
		if !errors.Is(perr, ErrConsumerDied) {
			t.Errorf("producer err = %v", perr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("producer hung after all workers died")
	}
}

// The fault-injected pipeline under -race: concurrent producers, consumers
// that die probabilistically (seeded, keyed by item+delivery), redelivery
// keeping every surviving item exactly-once.
func TestConsumeWithInjectedAbortsUnderLoad(t *testing.T) {
	// Deaths are deterministic: an item kills its consumer on delivery d
	// iff the (key, d) draw aborts, independent of scheduling. This seed
	// and rate yield exactly 4 deaths over the 200 keys, so 4 of the 8
	// workers survive to finish the drain.
	inj := fault.MustNew(fault.Profile{Seed: 11, ConsumerAbortProb: 0.02})
	s, _ := NewStage(64)
	const producers, itemsEach, workers = 4, 50, 8
	var processed sync.Map
	var count atomic.Int64
	consumerDone := make(chan error, 1)
	go func() {
		consumerDone <- Consume(s, workers, func(item Item) error {
			if inj.ConsumerAbort(item.Key, item.Delivery) {
				return ErrConsumerDied
			}
			if _, dup := processed.LoadOrStore(item.Key, true); dup {
				return fmt.Errorf("duplicate %s", item.Key)
			}
			count.Add(1)
			return nil
		})
	}()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < itemsEach; i++ {
				if err := s.Put(Item{Key: fmt.Sprintf("p%d/i%d", p, i), Bytes: 8}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	s.Close()
	if err := <-consumerDone; err != nil {
		t.Fatal(err)
	}
	// Every item must be processed exactly once: aborted deliveries are
	// redelivered with an incremented count and a fresh, independent draw.
	if count.Load() != producers*itemsEach {
		t.Errorf("processed %d of %d", count.Load(), producers*itemsEach)
	}
	if st := s.Stats(); st.Redelivered != 4 {
		t.Errorf("redelivered = %d, want the 4 deterministic deaths", st.Redelivered)
	}
}

func TestTakeBlocksOnInFlightUntilResolved(t *testing.T) {
	s, _ := NewStage(100)
	if err := s.Put(Item{Key: "a", Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	item, err := s.Take()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	// The stage is closed but "a" is in flight: a second Take must wait
	// (the item may yet be redelivered), not return ErrClosed.
	got := make(chan error, 1)
	go func() {
		it, err := s.Take()
		if err == nil {
			s.Ack(it.Key)
		}
		got <- err
	}()
	select {
	case err := <-got:
		t.Fatalf("Take returned early with %v while an item was in flight", err)
	case <-time.After(30 * time.Millisecond):
	}
	s.Redeliver(item.Key)
	if err := <-got; err != nil {
		t.Errorf("redelivered Take err = %v", err)
	}
	// Now fully drained: Take fails with ErrClosed.
	if _, err := s.Take(); !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed", err)
	}
}

func TestAckAfterCloseReleasesWaiters(t *testing.T) {
	s, _ := NewStage(100)
	if err := s.Put(Item{Key: "a", Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	item, err := s.Take()
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	got := make(chan error, 1)
	go func() {
		_, err := s.Take()
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	s.Ack(item.Key)
	if err := <-got; !errors.Is(err, ErrClosed) {
		t.Errorf("err = %v, want ErrClosed after final Ack", err)
	}
}
