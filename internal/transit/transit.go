// Package transit implements a shared-memory staging area between a
// running simulation and co-scheduled analysis consumers — a working
// realization of the paper's hypothetical third workflow variant:
// "Instead of writing out the Level 2 data that require further analysis
// to disk, the data is now stored on a separate memory device and the
// analysis is done in-transit. This could be either NVRAM or an external
// memory set-up that is connected to both the main HPC system as well as
// the analysis cluster" (§4.2). The paper could not test this ("We did not
// have access to any machines that would have allowed us to carry out this
// test"); here the staging device is process memory shared between
// producer and consumer goroutines.
//
// The staging area enforces a byte capacity: producers block when the
// device is full (the simulation stalls if analysis cannot drain fast
// enough — the real operational risk of in-transit designs), and consumers
// block until data arrives. Closing the stage drains remaining items.
//
// Failure semantics: items handed to a consumer via Take are tracked
// in-flight until Ack'd; a consumer that dies mid-item calls Redeliver and
// the item goes back to the head of the queue for another worker, so a
// crash loses no data. Abort marks the whole stage failed, unblocking
// every producer and consumer — the fatal-error path that prevents the
// simulation from hanging forever against a dead analysis side.
package transit

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/fault"
	"repro/internal/integrity"
	"repro/internal/obs"
)

// Item is one staged data product.
type Item struct {
	// Key identifies the product (e.g. "step030/halo42").
	Key string
	// Bytes is the accounted size.
	Bytes int64
	// Payload is the in-memory product, handed over zero-copy.
	Payload any
	// Sum is the content address (integrity.Sum) of a []byte payload. Put
	// fills it automatically; Take verifies the delivered bytes against it
	// and retries the transfer on mismatch, so a bit flipped on the staging
	// device or the interconnect never reaches analysis unnoticed.
	Sum string
	// Delivery is set by the stage: how many times this item was handed to
	// a consumer before (0 on first delivery, incremented on redelivery).
	Delivery int
}

// ErrClosed is returned by Put after Close and by Get once the stage is
// closed and drained.
var ErrClosed = errors.New("transit: stage closed")

// ErrConsumerDied is the error a Consume worker function returns to signal
// that its (simulated or real) analysis rank crashed mid-item: the item is
// redelivered to another worker and the dying worker retires.
var ErrConsumerDied = errors.New("transit: consumer died")

// ErrItemChecksum is returned by Take when an item's payload failed its
// content checksum on every delivery attempt — the staged copy itself is
// corrupt (not just the transfer), so retransfer cannot help.
var ErrItemChecksum = errors.New("transit: item payload fails its checksum")

// maxChecksumDeliveries bounds transfer retries for a checksum-failing
// item before Take gives up with ErrItemChecksum.
const maxChecksumDeliveries = 8

// inflightEntry tracks one handed-out item and when it left the queue
// (for ack-deadline reaping).
type inflightEntry struct {
	item    Item
	takenAt float64
}

// Stage is a bounded in-memory staging device.
type Stage struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	capacity int64
	used     int64
	queue    []Item
	inflight map[string]inflightEntry
	closed   bool
	abortErr error

	// Ack-deadline reaping (see SetAckDeadline/Reap).
	clock       func() float64
	ackDeadline float64

	// Transfer-corruption injection (see SetFaults).
	faults *fault.Injector

	// Stats.
	totalItems    int64
	totalBytes    int64
	peakUsed      int64
	stallCount    int64
	redelivered   int64
	reaped        int64
	corruptCaught int64

	// obs mirrors the stats into metric counters (see SetObs). Only
	// order-independent counters, never spans: deliveries run on real
	// goroutines, so span order would not be deterministic.
	obs *obs.Observer
}

// NewStage creates a staging area holding at most capacity bytes.
func NewStage(capacity int64) (*Stage, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("transit: capacity %d must be positive", capacity)
	}
	s := &Stage{capacity: capacity, inflight: map[string]inflightEntry{}}
	s.notFull = sync.NewCond(&s.mu)
	s.notEmpty = sync.NewCond(&s.mu)
	return s, nil
}

// Put stages an item, blocking while the device lacks room. Items larger
// than the whole device are rejected outright.
func (s *Stage) Put(item Item) error {
	if item.Bytes < 0 {
		return fmt.Errorf("transit: negative size %d", item.Bytes)
	}
	if item.Bytes > s.capacity {
		return fmt.Errorf("transit: item %q (%d bytes) exceeds device capacity %d", item.Key, item.Bytes, s.capacity)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	stalled := false
	for s.abortErr == nil && !s.closed && s.used+item.Bytes > s.capacity {
		if !stalled {
			s.stallCount++
			stalled = true
		}
		s.notFull.Wait()
	}
	if s.abortErr != nil {
		return s.abortErr
	}
	if s.closed {
		return ErrClosed
	}
	item.Delivery = 0
	if data, ok := item.Payload.([]byte); ok && item.Sum == "" {
		item.Sum = integrity.Sum(data)
	}
	s.queue = append(s.queue, item)
	s.used += item.Bytes
	s.totalItems++
	s.totalBytes += item.Bytes
	if s.used > s.peakUsed {
		s.peakUsed = s.used
	}
	if s.obs != nil {
		m := s.obs.Metrics()
		m.Counter("transit.items").Inc()
		m.Counter("transit.bytes").Add(float64(item.Bytes))
		if stalled {
			m.Counter("transit.stalls").Inc()
		}
	}
	s.notEmpty.Signal()
	return nil
}

// SetObs attaches a metrics observer. Per the determinism contract only
// order-independent counters are recorded here — Put/Take run on real
// goroutines, so spans (and last-writer-wins gauges) would record
// nondeterministically. Counter totals depend only on the *set* of
// events, not their interleaving.
func (s *Stage) SetObs(o *obs.Observer) {
	s.mu.Lock()
	s.obs = o
	s.mu.Unlock()
}

// drained reports (holding mu) whether nothing can ever arrive again: the
// stage is closed, the queue is empty, and no item is in flight (an
// in-flight item may yet be redelivered).
func (s *Stage) drained() bool {
	return s.closed && len(s.queue) == 0 && len(s.inflight) == 0
}

// Take removes the oldest staged item and records it in-flight until Ack
// or Redeliver resolves it — the consumer-crash protocol. It blocks until
// an item is available; after Close it drains remaining (and redelivered)
// items, then returns ErrClosed. After Abort it returns the abort error.
//
// A []byte payload is verified end-to-end against Item.Sum as it crosses
// the device boundary. A transfer corrupted in flight (injected via
// SetFaults) fails the check and is retransferred from the staged copy; a
// payload that fails on every attempt is corrupt at rest on the device,
// and Take returns ErrItemChecksum rather than hand poison to analysis.
func (s *Stage) Take() (Item, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		for len(s.queue) == 0 && !s.drained() && s.abortErr == nil {
			s.notEmpty.Wait()
		}
		if s.abortErr != nil {
			return Item{}, s.abortErr
		}
		if len(s.queue) == 0 {
			return Item{}, ErrClosed
		}
		item := s.queue[0]
		s.queue = s.queue[1:]
		s.used -= item.Bytes
		s.notFull.Broadcast()
		if data, ok := item.Payload.([]byte); ok && item.Sum != "" {
			delivered := data
			if s.faults != nil {
				if bitFrac, corrupt := s.faults.TransitCorrupt(item.Key, item.Delivery); corrupt {
					delivered = append([]byte(nil), data...)
					integrity.FlipBit(delivered, bitFrac)
				}
			}
			if integrity.Sum(delivered) != item.Sum {
				s.corruptCaught++
				if s.obs != nil {
					s.obs.Metrics().Counter("transit.corrupt_caught").Inc()
				}
				item.Delivery++
				if item.Delivery >= maxChecksumDeliveries {
					return Item{}, fmt.Errorf("transit: item %q: %w (%d transfer attempts)", item.Key, ErrItemChecksum, item.Delivery)
				}
				// Retransfer: the staged copy goes back to the head and the
				// next attempt re-reads it (a fresh delivery, fresh draw).
				s.queue = append([]Item{item}, s.queue...)
				s.used += item.Bytes
				continue
			}
			item.Payload = delivered
		}
		e := inflightEntry{item: item}
		if s.clock != nil {
			e.takenAt = s.clock()
		}
		s.inflight[item.Key] = e
		return item, nil
	}
}

// SetClock attaches a time source (virtual or wall) for ack-deadline
// reaping. The function is called with the stage lock held and must not
// call back into the stage. Set it before any Take.
func (s *Stage) SetClock(now func() float64) {
	s.mu.Lock()
	s.clock = now
	s.mu.Unlock()
}

// SetFaults attaches a seeded fault injector whose TransitCorrupt knob
// flips bits in delivered payload copies — the corruption lives in the
// transfer, not the staged original, so a retransfer can succeed. Set it
// before any Take.
func (s *Stage) SetFaults(inj *fault.Injector) {
	s.mu.Lock()
	s.faults = inj
	s.mu.Unlock()
}

// SetAckDeadline arms the reaper: an in-flight item older than d seconds
// (by the SetClock time source) is redelivered by the next Reap call. 0
// disables reaping.
func (s *Stage) SetAckDeadline(d float64) {
	s.mu.Lock()
	s.ackDeadline = d
	s.mu.Unlock()
}

// Reap redelivers every in-flight item whose ack deadline has expired —
// the consumer holding it is presumed hung (a gray failure: it may yet
// finish, which is why acks carry delivery tokens). Keys are reaped in
// sorted order so redelivery order is deterministic. Returns the number
// reaped. A no-op without a clock and deadline.
func (s *Stage) Reap() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ackDeadline <= 0 || s.clock == nil {
		return 0
	}
	now := s.clock()
	var stale []string
	for k, e := range s.inflight {
		if now-e.takenAt >= s.ackDeadline {
			stale = append(stale, k)
		}
	}
	sort.Strings(stale)
	for _, k := range stale {
		s.redeliverLocked(k)
		s.reaped++
		if s.obs != nil {
			s.obs.Metrics().Counter("transit.reaped").Inc()
		}
	}
	return len(stale)
}

// Ack marks an in-flight item fully processed regardless of delivery.
// Unknown keys are ignored. With ack-deadline reaping active, use
// AckDelivery so a reaped consumer cannot resolve its successor's
// delivery.
func (s *Stage) Ack(key string) {
	s.mu.Lock()
	delete(s.inflight, key)
	if s.drained() {
		// Last in-flight item resolved after Close: release consumers
		// blocked waiting for it in Take.
		s.notEmpty.Broadcast()
	}
	s.mu.Unlock()
}

// AckDelivery acks the in-flight item only if the given delivery is the
// one currently in flight, reporting whether it resolved the item. A
// consumer whose delivery was reaped and redelivered holds a stale token:
// its late ack returns false and leaves the live delivery untouched, so an
// item is finally acked exactly once.
func (s *Stage) AckDelivery(key string, delivery int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.inflight[key]
	if !ok || e.item.Delivery != delivery {
		return false
	}
	delete(s.inflight, key)
	if s.drained() {
		s.notEmpty.Broadcast()
	}
	return true
}

// Redeliver returns an in-flight item to the head of the queue — the
// consumer processing it died mid-item, and another worker must pick it
// up. The item's Delivery count is incremented. Unknown keys are ignored.
// Redelivery re-accounts the item's bytes (transiently exceeding capacity
// is allowed: the data was already resident).
func (s *Stage) Redeliver(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.redeliverLocked(key)
}

// RedeliverDelivery redelivers only if the given delivery is the one in
// flight (the dying consumer's token is still live), reporting whether it
// did. A stale token is a no-op: the reaper already redelivered the item.
func (s *Stage) RedeliverDelivery(key string, delivery int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.inflight[key]
	if !ok || e.item.Delivery != delivery {
		return false
	}
	s.redeliverLocked(key)
	return true
}

// redeliverLocked is Redeliver holding mu.
func (s *Stage) redeliverLocked(key string) {
	e, ok := s.inflight[key]
	if !ok {
		return
	}
	delete(s.inflight, key)
	item := e.item
	item.Delivery++
	s.queue = append([]Item{item}, s.queue...)
	s.used += item.Bytes
	if s.used > s.peakUsed {
		s.peakUsed = s.used
	}
	s.redelivered++
	if s.obs != nil {
		s.obs.Metrics().Counter("transit.redelivered").Inc()
	}
	s.notEmpty.Broadcast()
}

// Get removes the oldest staged item, blocking until one is available.
// After Close, remaining items drain; then Get returns ErrClosed. Get is
// Take with an immediate Ack — use Take/Ack/Redeliver for crash-safe
// consumption.
func (s *Stage) Get() (Item, error) {
	item, err := s.Take()
	if err != nil {
		return item, err
	}
	s.Ack(item.Key)
	return item, nil
}

// Close marks the stage finished: pending Puts fail, pending Gets drain
// then fail. Idempotent.
func (s *Stage) Close() {
	s.mu.Lock()
	s.closed = true
	s.notFull.Broadcast()
	s.notEmpty.Broadcast()
	s.mu.Unlock()
}

// Abort marks the stage failed with err: every pending and future Put,
// Take and Get returns err immediately. Staged and in-flight items are
// dropped. The first Abort wins; later calls are no-ops. A nil err aborts
// with ErrClosed.
func (s *Stage) Abort(err error) {
	if err == nil {
		err = ErrClosed
	}
	s.mu.Lock()
	if s.abortErr == nil {
		s.abortErr = err
		s.closed = true
		s.notFull.Broadcast()
		s.notEmpty.Broadcast()
	}
	s.mu.Unlock()
}

// Err returns the abort error, or nil if the stage was never aborted.
func (s *Stage) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.abortErr
}

// Stats reports staging counters.
type Stats struct {
	// TotalItems and TotalBytes passed through the device.
	TotalItems, TotalBytes int64
	// PeakUsed is the high-water byte mark.
	PeakUsed int64
	// StallCount counts Put calls that had to wait for space — nonzero
	// means the producer (the simulation) was throttled by analysis.
	StallCount int64
	// Redelivered counts items returned to the queue after a consumer
	// died mid-item or blew its ack deadline; Reaped counts the subset
	// redelivered by the ack-deadline reaper.
	Redelivered int64
	Reaped      int64
	// CorruptCaught counts payload deliveries rejected by the end-to-end
	// checksum at the Take boundary (each failed transfer attempt counts).
	CorruptCaught int64
	// Queued, InFlight and Used describe the current state.
	Queued   int
	InFlight int
	Used     int64
}

// Stats returns a snapshot of the device counters.
func (s *Stage) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		TotalItems:    s.totalItems,
		TotalBytes:    s.totalBytes,
		PeakUsed:      s.peakUsed,
		StallCount:    s.stallCount,
		Redelivered:   s.redelivered,
		Reaped:        s.reaped,
		CorruptCaught: s.corruptCaught,
		Queued:        len(s.queue),
		InFlight:      len(s.inflight),
		Used:          s.used,
	}
}

// Consume runs workers goroutines that drain the stage with fn until it
// closes, returning the first error (nil on clean drain). It is the
// analysis-side harness: each worker plays one co-scheduled analysis rank.
//
// Failure semantics: a worker whose fn returns (or wraps) ErrConsumerDied
// redelivers its item to the remaining workers and retires — the rank
// crashed but the data survives. Any other error is fatal: the stage is
// aborted so blocked producers and the other workers unblock immediately
// instead of hanging against a full device, and the error is returned. If
// every worker dies, Consume aborts the stage (items still staged would
// otherwise strand producers) and reports it.
func Consume(s *Stage, workers int, fn func(Item) error) error {
	if workers <= 0 {
		return fmt.Errorf("transit: workers %d must be positive", workers)
	}
	errs := make([]error, workers)
	var mu sync.Mutex
	live := workers
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				item, err := s.Take()
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					// Stage aborted (by another worker or externally).
					return
				}
				if err := fn(item); err != nil {
					if errors.Is(err, ErrConsumerDied) {
						// Delivery-checked: if the reaper already
						// redelivered this item, the dying worker's stale
						// token must not bounce the live delivery.
						s.RedeliverDelivery(item.Key, item.Delivery)
						mu.Lock()
						live--
						last := live == 0
						mu.Unlock()
						if last {
							dead := fmt.Errorf("transit: all %d workers died: %w", workers, ErrConsumerDied)
							errs[w] = dead
							s.Abort(dead)
						}
						return
					}
					errs[w] = err
					s.Abort(err)
					return
				}
				s.AckDelivery(item.Key, item.Delivery)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
