// Package transit implements a shared-memory staging area between a
// running simulation and co-scheduled analysis consumers — a working
// realization of the paper's hypothetical third workflow variant:
// "Instead of writing out the Level 2 data that require further analysis
// to disk, the data is now stored on a separate memory device and the
// analysis is done in-transit. This could be either NVRAM or an external
// memory set-up that is connected to both the main HPC system as well as
// the analysis cluster" (§4.2). The paper could not test this ("We did not
// have access to any machines that would have allowed us to carry out this
// test"); here the staging device is process memory shared between
// producer and consumer goroutines.
//
// The staging area enforces a byte capacity: producers block when the
// device is full (the simulation stalls if analysis cannot drain fast
// enough — the real operational risk of in-transit designs), and consumers
// block until data arrives. Closing the stage drains remaining items.
package transit

import (
	"errors"
	"fmt"
	"sync"
)

// Item is one staged data product.
type Item struct {
	// Key identifies the product (e.g. "step030/halo42").
	Key string
	// Bytes is the accounted size.
	Bytes int64
	// Payload is the in-memory product, handed over zero-copy.
	Payload any
}

// ErrClosed is returned by Put after Close and by Get once the stage is
// closed and drained.
var ErrClosed = errors.New("transit: stage closed")

// Stage is a bounded in-memory staging device.
type Stage struct {
	mu       sync.Mutex
	notFull  *sync.Cond
	notEmpty *sync.Cond
	capacity int64
	used     int64
	queue    []Item
	closed   bool

	// Stats.
	totalItems int64
	totalBytes int64
	peakUsed   int64
	stallCount int64
}

// NewStage creates a staging area holding at most capacity bytes.
func NewStage(capacity int64) (*Stage, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("transit: capacity %d must be positive", capacity)
	}
	s := &Stage{capacity: capacity}
	s.notFull = sync.NewCond(&s.mu)
	s.notEmpty = sync.NewCond(&s.mu)
	return s, nil
}

// Put stages an item, blocking while the device lacks room. Items larger
// than the whole device are rejected outright.
func (s *Stage) Put(item Item) error {
	if item.Bytes < 0 {
		return fmt.Errorf("transit: negative size %d", item.Bytes)
	}
	if item.Bytes > s.capacity {
		return fmt.Errorf("transit: item %q (%d bytes) exceeds device capacity %d", item.Key, item.Bytes, s.capacity)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	stalled := false
	for !s.closed && s.used+item.Bytes > s.capacity {
		if !stalled {
			s.stallCount++
			stalled = true
		}
		s.notFull.Wait()
	}
	if s.closed {
		return ErrClosed
	}
	s.queue = append(s.queue, item)
	s.used += item.Bytes
	s.totalItems++
	s.totalBytes += item.Bytes
	if s.used > s.peakUsed {
		s.peakUsed = s.used
	}
	s.notEmpty.Signal()
	return nil
}

// Get removes the oldest staged item, blocking until one is available.
// After Close, remaining items drain; then Get returns ErrClosed.
func (s *Stage) Get() (Item, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == 0 && !s.closed {
		s.notEmpty.Wait()
	}
	if len(s.queue) == 0 {
		return Item{}, ErrClosed
	}
	item := s.queue[0]
	s.queue = s.queue[1:]
	s.used -= item.Bytes
	s.notFull.Broadcast()
	return item, nil
}

// Close marks the stage finished: pending Puts fail, pending Gets drain
// then fail. Idempotent.
func (s *Stage) Close() {
	s.mu.Lock()
	s.closed = true
	s.notFull.Broadcast()
	s.notEmpty.Broadcast()
	s.mu.Unlock()
}

// Stats reports staging counters.
type Stats struct {
	// TotalItems and TotalBytes passed through the device.
	TotalItems, TotalBytes int64
	// PeakUsed is the high-water byte mark.
	PeakUsed int64
	// StallCount counts Put calls that had to wait for space — nonzero
	// means the producer (the simulation) was throttled by analysis.
	StallCount int64
	// Queued and Used describe the current state.
	Queued int
	Used   int64
}

// Stats returns a snapshot of the device counters.
func (s *Stage) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		TotalItems: s.totalItems,
		TotalBytes: s.totalBytes,
		PeakUsed:   s.peakUsed,
		StallCount: s.stallCount,
		Queued:     len(s.queue),
		Used:       s.used,
	}
}

// Consume runs workers goroutines that drain the stage with fn until it
// closes, returning the first error (nil on clean drain). It is the
// analysis-side harness: each worker plays one co-scheduled analysis rank.
func Consume(s *Stage, workers int, fn func(Item) error) error {
	if workers <= 0 {
		return fmt.Errorf("transit: workers %d must be positive", workers)
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for {
				item, err := s.Get()
				if errors.Is(err, ErrClosed) {
					return
				}
				if err != nil {
					errs[w] = err
					return
				}
				if err := fn(item); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
