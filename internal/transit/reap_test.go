package transit

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// Single-threaded protocol check: an in-flight item past its ack deadline
// is reaped and redelivered, and the original consumer's stale delivery
// token can neither ack nor bounce the live delivery.
func TestReapRedeliversAfterAckDeadline(t *testing.T) {
	s, _ := NewStage(100)
	clock := 0.0
	s.SetClock(func() float64 { return clock })
	s.SetAckDeadline(30)
	if err := s.Put(Item{Key: "a", Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	first, err := s.Take()
	if err != nil || first.Delivery != 0 {
		t.Fatalf("take: %v %+v", err, first)
	}
	// Deadline not yet blown: nothing reaped.
	clock = 29
	if n := s.Reap(); n != 0 {
		t.Fatalf("reaped %d before the deadline", n)
	}
	clock = 31
	if n := s.Reap(); n != 1 {
		t.Fatalf("reaped %d, want 1", n)
	}
	// The hung consumer finally answers with its stale token: both the ack
	// and a redeliver must be refused.
	if s.AckDelivery("a", first.Delivery) {
		t.Error("stale delivery token acked the live delivery")
	}
	if s.RedeliverDelivery("a", first.Delivery) {
		t.Error("stale delivery token redelivered the live delivery")
	}
	second, err := s.Take()
	if err != nil || second.Delivery != 1 {
		t.Fatalf("redelivered take: %v %+v", err, second)
	}
	if !s.AckDelivery("a", second.Delivery) {
		t.Error("live delivery token refused")
	}
	st := s.Stats()
	if st.Reaped != 1 || st.Redelivered != 1 || st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("stats = %+v", st)
	}
	// Nothing left to reap.
	clock = 1000
	if n := s.Reap(); n != 0 {
		t.Errorf("reaped %d from an empty stage", n)
	}
}

func TestReapIsNoOpWithoutClockOrDeadline(t *testing.T) {
	s, _ := NewStage(100)
	if err := s.Put(Item{Key: "a", Bytes: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Take(); err != nil {
		t.Fatal(err)
	}
	if n := s.Reap(); n != 0 {
		t.Errorf("reaped %d without clock/deadline", n)
	}
	s.SetClock(func() float64 { return 1e9 })
	if n := s.Reap(); n != 0 {
		t.Errorf("reaped %d without a deadline", n)
	}
}

// The gray-failure property test: concurrent producers and consumers,
// consumers that abort (seeded) or hang past the ack deadline (seeded
// transit lag), a reaper redelivering expired deliveries — every item is
// finally acked exactly once, stale tokens never double-resolve, and the
// stage fully drains. Run with -race.
func TestReaperInterleavedWithConsumerAborts(t *testing.T) {
	inj := fault.MustNew(fault.Profile{
		Seed:              31,
		ConsumerAbortProb: 0.08,
		TransitDelayProb:  0.12, // a lagging delivery sleeps past the deadline
	})
	s, _ := NewStage(1 << 20)
	start := time.Now()
	s.SetClock(func() float64 { return time.Since(start).Seconds() })
	const deadline = 0.03 // 30 ms
	s.SetAckDeadline(deadline)

	const producers, itemsEach, workers = 4, 40, 6
	total := producers * itemsEach

	// finalAcks[key] counts AckDelivery calls that returned true.
	var mu sync.Mutex
	finalAcks := map[string]int{}

	done := make(chan struct{})
	var reapWG sync.WaitGroup
	reapWG.Add(1)
	go func() {
		defer reapWG.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				s.Reap()
			}
		}
	}()

	var workWG sync.WaitGroup
	for w := 0; w < workers; w++ {
		workWG.Add(1)
		go func() {
			defer workWG.Done()
			for {
				item, err := s.Take()
				if err != nil {
					return // closed and drained
				}
				if inj.ConsumerAbort(item.Key, item.Delivery) {
					// Abort mid-item: delivery-checked redeliver races the
					// reaper; exactly one of them moves the item.
					s.RedeliverDelivery(item.Key, item.Delivery)
					continue
				}
				if inj.TransitDelay(item.Key, item.Delivery) > 0 {
					// Hang past the ack deadline: the reaper redelivers
					// while this worker still holds a (now stale) token.
					time.Sleep(time.Duration(2 * deadline * float64(time.Second)))
				}
				if s.AckDelivery(item.Key, item.Delivery) {
					mu.Lock()
					finalAcks[item.Key]++
					mu.Unlock()
				}
			}
		}()
	}

	var prodWG sync.WaitGroup
	for p := 0; p < producers; p++ {
		prodWG.Add(1)
		go func(p int) {
			defer prodWG.Done()
			for i := 0; i < itemsEach; i++ {
				if err := s.Put(Item{Key: fmt.Sprintf("p%d/i%d", p, i), Bytes: 64}); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(p)
	}
	prodWG.Wait()
	s.Close()
	workWG.Wait()
	close(done)
	reapWG.Wait()

	// Every item finally acked exactly once — a duplicate final ack means a
	// stale token resolved a live delivery.
	mu.Lock()
	defer mu.Unlock()
	if len(finalAcks) != total {
		t.Errorf("finally acked %d of %d items", len(finalAcks), total)
	}
	for key, n := range finalAcks {
		if n != 1 {
			t.Errorf("item %s finally acked %d times", key, n)
		}
	}
	st := s.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Errorf("stage not drained: %+v", st)
	}
	if st.TotalItems != int64(total) {
		t.Errorf("total items %d, want %d", st.TotalItems, total)
	}
	// Aborts are seeded and certain to occur at these rates; deliveries
	// past the first only exist via abort-redelivery or reaping.
	if st.Redelivered == 0 {
		t.Error("no redeliveries under abort+lag injection")
	}
}
