// Package halo implements friends-of-friends (FOF) halo identification and
// the halo catalog types shared by the analysis pipeline.
//
// "An FOF halo consists of all particles that are within the 'linking
// length' of at least one other particle in the halo ... Finding FOF halos
// is equivalent to finding the connected components of a graph in which
// each particle is a vertex, and there exists an edge between two vertices
// if and only if the distance between them is less than the specified
// linking length" (§3.3.1). The finder here materializes those components
// with a union-find structure fed by fixed-radius k-d tree queries, and a
// naive O(n²) variant is retained as the ablation baseline.
package halo

import "sort"

// DisjointSet is a union-find structure with path compression and union by
// size.
type DisjointSet struct {
	parent []int
	size   []int
}

// NewDisjointSet creates n singleton sets.
func NewDisjointSet(n int) *DisjointSet {
	d := &DisjointSet{parent: make([]int, n), size: make([]int, n)}
	for i := range d.parent {
		d.parent[i] = i
		d.size[i] = 1
	}
	return d
}

// Find returns the representative of i's set.
func (d *DisjointSet) Find(i int) int {
	root := i
	for d.parent[root] != root {
		root = d.parent[root]
	}
	for d.parent[i] != root {
		d.parent[i], i = root, d.parent[i]
	}
	return root
}

// Union merges the sets containing a and b, returning the new root.
func (d *DisjointSet) Union(a, b int) int {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return ra
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	return ra
}

// Same reports whether a and b are in the same set.
func (d *DisjointSet) Same(a, b int) bool { return d.Find(a) == d.Find(b) }

// SetSize returns the size of i's set.
func (d *DisjointSet) SetSize(i int) int { return d.size[d.Find(i)] }

// Groups returns the members of every set with at least minSize elements,
// each group sorted ascending, groups ordered by their smallest member.
func (d *DisjointSet) Groups(minSize int) [][]int {
	byRoot := map[int][]int{}
	for i := range d.parent {
		byRoot[d.Find(i)] = append(byRoot[d.Find(i)], i)
	}
	var out [][]int
	for _, g := range byRoot {
		if len(g) >= minSize {
			out = append(out, g) // members already ascending: i iterated in order
		}
	}
	// Deterministic order: by first member.
	sort.Slice(out, func(a, b int) bool { return out[a][0] < out[b][0] })
	return out
}
