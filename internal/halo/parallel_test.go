package halo

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/mpi"
	"repro/internal/nbody"
)

// makeTestBox builds a particle set with clusters scattered through the
// box, including one straddling a slab boundary and one straddling the
// periodic wrap.
func makeTestBox(seed int64) (*nbody.Particles, float64) {
	rng := rand.New(rand.NewSource(seed))
	box := 16.0
	p := nbody.NewParticles(0)
	tag := int64(0)
	add := func(n int, cx, cy, cz float64) {
		for i := 0; i < n; i++ {
			x := cx + (rng.Float64()-0.5)*0.2
			y := cy + (rng.Float64()-0.5)*0.2
			z := cz + (rng.Float64()-0.5)*0.2
			for _, v := range []*float64{&x, &y, &z} {
				if *v < 0 {
					*v += box
				}
				if *v >= box {
					*v -= box
				}
			}
			p.Append(x, y, z, 0, 0, 0, tag)
			tag++
		}
	}
	add(60, 2, 3, 4)     // interior of rank 0 (4 ranks)
	add(40, 4.0, 8, 8)   // straddles the rank0/rank1 boundary at x=4
	add(50, 10, 2, 14)   // interior of rank 2
	add(30, 15.95, 6, 6) // straddles the periodic wrap x=0/16
	// Background noise.
	for i := 0; i < 100; i++ {
		p.Append(rng.Float64()*box, rng.Float64()*box, rng.Float64()*box, 0, 0, 0, tag)
		tag++
	}
	return p, box
}

// distributeByOwner hands each rank the particles in its slab.
func distributeByOwner(all *nbody.Particles, rank, size int, box float64) *nbody.Particles {
	var idx []int
	for i := 0; i < all.N(); i++ {
		if nbody.SlabOwner(all.X[i], size, box) == rank {
			idx = append(idx, i)
		}
	}
	return all.Select(idx)
}

// ParallelFOF must produce the same halo multiset (tag, count) as a serial
// periodic FOF over the whole box, each halo exactly once.
func TestParallelFOFMatchesSerial(t *testing.T) {
	all, box := makeTestBox(5)
	o := Options{LinkingLength: 0.3, MinSize: 10}
	serialOpts := o
	serialOpts.Periodic = true
	want, err := FOF(all, box, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Halos) < 4 {
		t.Fatalf("test box only produced %d halos", len(want.Halos))
	}

	for _, ranks := range []int{1, 2, 4} {
		var mu sortableResults
		err := mpi.RunRanks(ranks, func(c *mpi.Comm) error {
			local := distributeByOwner(all, c.Rank(), c.Size(), box)
			res, err := ParallelFOF(c, local, box, 2.0, o)
			if err != nil {
				return err
			}
			for _, h := range res.Catalog.Halos {
				mu.add(fmt.Sprintf("%d:%d", h.Tag, h.Count()))
			}
			return nil
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		got := mu.sorted()
		var expect []string
		for _, h := range want.Halos {
			expect = append(expect, fmt.Sprintf("%d:%d", h.Tag, h.Count()))
		}
		sort.Strings(expect)
		if len(got) != len(expect) {
			t.Fatalf("ranks=%d: got %d halos %v, want %d %v", ranks, len(got), got, len(expect), expect)
		}
		for i := range got {
			if got[i] != expect[i] {
				t.Fatalf("ranks=%d: halo %d = %s, want %s", ranks, i, got[i], expect[i])
			}
		}
	}
}

func TestParallelFOFRejectsBadOverload(t *testing.T) {
	all, box := makeTestBox(6)
	err := mpi.RunRanks(2, func(c *mpi.Comm) error {
		local := distributeByOwner(all, c.Rank(), c.Size(), box)
		_, err := ParallelFOF(c, local, box, 0, Options{LinkingLength: 0.3, MinSize: 5})
		if err == nil {
			return fmt.Errorf("expected overload error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherCounts(t *testing.T) {
	all, box := makeTestBox(7)
	o := Options{LinkingLength: 0.3, MinSize: 10}
	serialOpts := o
	serialOpts.Periodic = true
	want, err := FOF(all, box, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := make([]int, len(want.Halos))
	for i := range want.Halos {
		wantCounts[i] = want.Halos[i].Count()
	}
	sort.Ints(wantCounts)
	err = mpi.RunRanks(4, func(c *mpi.Comm) error {
		local := distributeByOwner(all, c.Rank(), c.Size(), box)
		res, err := ParallelFOF(c, local, box, 2.0, o)
		if err != nil {
			//lint:allow mpicollective error path fires only on test failure, where the resulting stall surfaces as a test timeout
			return err
		}
		counts := GatherCounts(c, res.Catalog)
		sort.Ints(counts)
		if len(counts) != len(wantCounts) {
			return fmt.Errorf("rank %d: %v vs %v", c.Rank(), counts, wantCounts)
		}
		for i := range counts {
			if counts[i] != wantCounts[i] {
				return fmt.Errorf("rank %d: counts[%d] = %d want %d", c.Rank(), i, counts[i], wantCounts[i])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// sortableResults collects strings safely from rank goroutines.
type sortableResults struct {
	mu    sync.Mutex
	items []string
}

func (s *sortableResults) add(v string) {
	s.mu.Lock()
	s.items = append(s.items, v)
	s.mu.Unlock()
}

func (s *sortableResults) sorted() []string {
	sort.Strings(s.items)
	return s.items
}
