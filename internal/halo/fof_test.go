package halo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/nbody"
)

// cluster appends n particles in a tight ball around (cx, cy, cz).
func cluster(p *nbody.Particles, n int, cx, cy, cz, radius float64, rng *rand.Rand, tagBase int64) {
	for i := 0; i < n; i++ {
		p.Append(
			cx+(rng.Float64()-0.5)*radius,
			cy+(rng.Float64()-0.5)*radius,
			cz+(rng.Float64()-0.5)*radius,
			0, 0, 0, tagBase+int64(i))
	}
}

func TestDisjointSetBasics(t *testing.T) {
	d := NewDisjointSet(5)
	if d.Same(0, 1) {
		t.Error("fresh sets should differ")
	}
	d.Union(0, 1)
	d.Union(2, 3)
	if !d.Same(0, 1) || !d.Same(2, 3) || d.Same(1, 2) {
		t.Error("union results wrong")
	}
	d.Union(1, 3)
	if !d.Same(0, 3) {
		t.Error("transitive union failed")
	}
	if d.SetSize(0) != 4 {
		t.Errorf("size = %d", d.SetSize(0))
	}
	if d.SetSize(4) != 1 {
		t.Errorf("singleton size = %d", d.SetSize(4))
	}
}

func TestDisjointSetGroups(t *testing.T) {
	d := NewDisjointSet(6)
	d.Union(0, 2)
	d.Union(2, 4)
	d.Union(1, 5)
	groups := d.Groups(2)
	if len(groups) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if groups[0][0] != 0 || len(groups[0]) != 3 {
		t.Errorf("first group = %v", groups[0])
	}
	if groups[1][0] != 1 || len(groups[1]) != 2 {
		t.Errorf("second group = %v", groups[1])
	}
	if got := d.Groups(3); len(got) != 1 {
		t.Errorf("minSize=3 groups = %v", got)
	}
}

func TestFOFValidation(t *testing.T) {
	p := nbody.NewParticles(0)
	p.Append(1, 1, 1, 0, 0, 0, 0)
	if _, err := FOF(p, 10, Options{LinkingLength: 0, MinSize: 1}); err == nil {
		t.Error("expected linking-length error")
	}
	if _, err := FOF(p, 10, Options{LinkingLength: 0.2, MinSize: 0}); err == nil {
		t.Error("expected min-size error")
	}
}

func TestFOFFindsSeparatedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := nbody.NewParticles(0)
	cluster(p, 50, 2, 2, 2, 0.1, rng, 0)
	cluster(p, 30, 8, 8, 8, 0.1, rng, 1000)
	cluster(p, 10, 5, 2, 7, 0.1, rng, 2000)
	cat, err := FOF(p, 10, Options{LinkingLength: 0.2, MinSize: 5, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Halos) != 3 {
		t.Fatalf("found %d halos, want 3", len(cat.Halos))
	}
	// Sorted by size descending.
	if cat.Halos[0].Count() != 50 || cat.Halos[1].Count() != 30 || cat.Halos[2].Count() != 10 {
		t.Errorf("sizes = %d %d %d", cat.Halos[0].Count(), cat.Halos[1].Count(), cat.Halos[2].Count())
	}
	// Halo tags are the min member tags.
	if cat.Halos[0].Tag != 0 || cat.Halos[1].Tag != 1000 || cat.Halos[2].Tag != 2000 {
		t.Errorf("tags = %d %d %d", cat.Halos[0].Tag, cat.Halos[1].Tag, cat.Halos[2].Tag)
	}
	// Centers of mass near cluster centres.
	c := cat.Halos[0].Center
	if dist2(c, [3]float64{2, 2, 2}) > 0.01 {
		t.Errorf("largest halo center = %v", c)
	}
	if cat.LargestCount() != 50 {
		t.Errorf("LargestCount = %d", cat.LargestCount())
	}
	if cat.TotalParticlesInHalos() != 90 {
		t.Errorf("total in halos = %d", cat.TotalParticlesInHalos())
	}
}

func dist2(a, b [3]float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func TestFOFMinSizeDiscardsSmallHalos(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := nbody.NewParticles(0)
	cluster(p, 100, 5, 5, 5, 0.1, rng, 0)
	// Isolated singles.
	for i := 0; i < 20; i++ {
		p.Append(rng.Float64()*0.5, float64(i)*0.45+1, 9.5, 0, 0, 0, int64(5000+i))
	}
	cat, err := FOF(p, 10, Options{LinkingLength: 0.15, MinSize: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(cat.Halos) != 1 {
		t.Fatalf("found %d halos, want only the big one", len(cat.Halos))
	}
}

// A chain of particles spaced just under the linking length is one halo;
// spaced just over, it fragments.
func TestFOFChainLinking(t *testing.T) {
	link := 0.2
	for _, spacing := range []float64{0.19, 0.21} {
		p := nbody.NewParticles(0)
		for i := 0; i < 20; i++ {
			p.Append(1+float64(i)*spacing, 5, 5, 0, 0, 0, int64(i))
		}
		cat, err := FOF(p, 10, Options{LinkingLength: link, MinSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		if spacing < link && len(cat.Halos) != 1 {
			t.Errorf("spacing %v: %d halos, want 1 chain", spacing, len(cat.Halos))
		}
		if spacing > link && len(cat.Halos) != 20 {
			t.Errorf("spacing %v: %d halos, want 20 singletons", spacing, len(cat.Halos))
		}
	}
}

// A halo straddling the periodic boundary is found whole with
// Periodic=true and split with Periodic=false.
func TestFOFPeriodicBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	box := 10.0
	p := nbody.NewParticles(0)
	for i := 0; i < 40; i++ {
		x := 9.9 + rng.Float64()*0.2 // straddles x=0
		if x >= box {
			x -= box
		}
		p.Append(x, 5+(rng.Float64()-0.5)*0.1, 5+(rng.Float64()-0.5)*0.1, 0, 0, 0, int64(i))
	}
	catP, err := FOF(p, box, Options{LinkingLength: 0.3, MinSize: 2, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(catP.Halos) != 1 || catP.Halos[0].Count() != 40 {
		t.Errorf("periodic: %d halos largest %d, want 1 of 40", len(catP.Halos), catP.LargestCount())
	}
	catO, err := FOF(p, box, Options{LinkingLength: 0.3, MinSize: 2, Periodic: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(catO.Halos) < 2 {
		t.Errorf("open: %d halos, want the straddler split", len(catO.Halos))
	}
	// Periodic COM must sit at the boundary, not the box middle.
	cx := catP.Halos[0].Center[0]
	if cx > 1 && cx < 9 {
		t.Errorf("periodic COM x = %v, want near boundary", cx)
	}
}

// FOF and NaiveFOF must produce identical catalogs.
func TestFOFMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	box := 10.0
	p := nbody.NewParticles(0)
	for i := 0; i < 300; i++ {
		p.Append(rng.Float64()*box, rng.Float64()*box, rng.Float64()*box, 0, 0, 0, int64(i))
	}
	for _, periodic := range []bool{false, true} {
		o := Options{LinkingLength: 0.6, MinSize: 2, Periodic: periodic}
		fast, err := FOF(p, box, o)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := NaiveFOF(p, box, o)
		if err != nil {
			t.Fatal(err)
		}
		if len(fast.Halos) != len(slow.Halos) {
			t.Fatalf("periodic=%v: %d vs %d halos", periodic, len(fast.Halos), len(slow.Halos))
		}
		for i := range fast.Halos {
			if fast.Halos[i].Tag != slow.Halos[i].Tag || fast.Halos[i].Count() != slow.Halos[i].Count() {
				t.Fatalf("periodic=%v halo %d: (%d,%d) vs (%d,%d)", periodic, i,
					fast.Halos[i].Tag, fast.Halos[i].Count(), slow.Halos[i].Tag, slow.Halos[i].Count())
			}
		}
	}
}

// Property: random configurations give identical tree/naive catalogs.
func TestPropertyFOFMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		box := 5.0
		p := nbody.NewParticles(0)
		n := 60 + rng.Intn(60)
		for i := 0; i < n; i++ {
			p.Append(rng.Float64()*box, rng.Float64()*box, rng.Float64()*box, 0, 0, 0, int64(i))
		}
		o := Options{LinkingLength: 0.4, MinSize: 1, Periodic: true}
		fast, err1 := FOF(p, box, o)
		slow, err2 := NaiveFOF(p, box, o)
		if err1 != nil || err2 != nil || len(fast.Halos) != len(slow.Halos) {
			return false
		}
		for i := range fast.Halos {
			if fast.Halos[i].Tag != slow.Halos[i].Tag || fast.Halos[i].Count() != slow.Halos[i].Count() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every particle appears in at most one halo, and halo membership
// is closed under the linking relation (no member has an outside neighbour
// within the linking length — the defining FOF invariant).
func TestPropertyFOFPartitionAndClosure(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		box := 5.0
		p := nbody.NewParticles(0)
		for i := 0; i < 80; i++ {
			p.Append(rng.Float64()*box, rng.Float64()*box, rng.Float64()*box, 0, 0, 0, int64(i))
		}
		o := Options{LinkingLength: 0.5, MinSize: 1, Periodic: true}
		cat, err := FOF(p, box, o)
		if err != nil {
			return false
		}
		owner := make([]int, p.N())
		for i := range owner {
			owner[i] = -1
		}
		for hi := range cat.Halos {
			for _, i := range cat.Halos[hi].Indices {
				if owner[i] != -1 {
					return false // particle in two halos
				}
				owner[i] = hi
			}
		}
		b2 := o.LinkingLength * o.LinkingLength
		for i := 0; i < p.N(); i++ {
			for j := i + 1; j < p.N(); j++ {
				if p.Dist2(i, j, box) <= b2 && owner[i] != owner[j] {
					return false // linked pair split across halos
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
