package halo

import (
	"fmt"

	"repro/internal/mpi"
	"repro/internal/nbody"
)

// ParallelResult is one rank's share of a distributed FOF pass.
type ParallelResult struct {
	// Catalog holds the halos this rank owns after reconciliation.
	Catalog *Catalog
	// Local is the extended particle set (primary + overload copies) that
	// Catalog's halo indices reference.
	Local *nbody.Particles
	// PrimaryCount is the number of particles in the rank's primary zone
	// (the first PrimaryCount entries of Local).
	PrimaryCount int
}

// ParallelFOF runs the paper's distributed halo-finding procedure on the
// calling rank: exchange overload copies with the slab neighbours, run the
// serial k-d tree FOF over primary+ghost particles, then resolve halos
// "found in whole or in part by multiple processes" to a unique owner
// (§3.3.1). Ownership goes to the rank whose primary zone holds the halo's
// minimum-tag particle; with an overload width of at least the maximum
// feasible halo extent that rank is guaranteed to see the halo in its
// entirety, so each halo appears exactly once globally, complete.
//
// local must already be decomposed (every particle within the rank's
// slab). overload is the ghost-zone width.
func ParallelFOF(c *mpi.Comm, local *nbody.Particles, box, overload float64, o Options) (*ParallelResult, error) {
	ghosts, err := nbody.ExchangeOverload(c, local, box, overload)
	if err != nil {
		return nil, err
	}
	ext := local.Clone()
	for i := 0; i < ghosts.N(); i++ {
		ext.AppendFrom(ghosts, i)
	}
	o.Periodic = true // rank-local linking uses true periodic distances
	cat, err := FOF(ext, box, o)
	if err != nil {
		return nil, err
	}
	// Keep only halos whose min-tag particle is a primary particle. Local
	// particles occupy ext[0:local.N()), ghosts follow, so the primary test
	// is an index comparison.
	owned := cat.Halos[:0]
	for _, h := range cat.Halos {
		idx, ok := indexOfTag(ext, h.Indices, h.Tag)
		if !ok {
			return nil, fmt.Errorf("halo: tag %d not found among members", h.Tag)
		}
		if idx < local.N() {
			owned = append(owned, h)
		}
	}
	cat.Halos = owned
	c.Barrier()
	return &ParallelResult{Catalog: cat, Local: ext, PrimaryCount: local.N()}, nil
}

func indexOfTag(p *nbody.Particles, idx []int, tag int64) (int, bool) {
	for _, i := range idx {
		if p.Tag[i] == tag {
			return i, true
		}
	}
	return -1, false
}

// GatherCounts collects every rank's halo particle counts onto all ranks,
// concatenated in rank order — the inexpensive global view used for the
// workload split decision (§4.1's automated threshold discussion needs the
// global largest halo mass m_max_sim).
func GatherCounts(c *mpi.Comm, cat *Catalog) []int {
	counts := make([]int, len(cat.Halos))
	for i := range cat.Halos {
		counts[i] = cat.Halos[i].Count()
	}
	all := c.AllGather(counts)
	var out []int
	for _, payload := range all {
		out = append(out, payload.([]int)...)
	}
	return out
}
