package halo

import (
	"fmt"
	"sort"

	"repro/internal/kdtree"
	"repro/internal/nbody"
)

// Halo is one identified FOF halo. Indices reference the particle
// container the finder ran over; Tag is the minimum particle tag in the
// halo (HACC's convention for a stable global halo identifier).
type Halo struct {
	// Tag is the halo's global identifier: the minimum particle tag.
	Tag int64
	// Indices are the member particle indices, ascending.
	Indices []int
	// Center is the center of mass, computed with periodic unwrapping and
	// folded back into the box.
	Center [3]float64
	// MBP is the index (into the same container) of the most bound
	// particle once center finding has run; -1 before that.
	MBP int
	// MBPTag is the tag of the most bound particle, -1 before center
	// finding.
	MBPTag int64
}

// Count returns the number of member particles.
func (h *Halo) Count() int { return len(h.Indices) }

// Catalog is the result of a halo-finding pass over one particle set.
type Catalog struct {
	// Halos ordered by descending particle count, ties by ascending Tag.
	Halos []Halo
	// LinkingLength and MinSize record the FOF parameters used.
	LinkingLength float64
	MinSize       int
}

// TotalParticlesInHalos sums member counts over all halos.
func (c *Catalog) TotalParticlesInHalos() int {
	total := 0
	for i := range c.Halos {
		total += c.Halos[i].Count()
	}
	return total
}

// LargestCount returns the particle count of the largest halo, 0 if none.
func (c *Catalog) LargestCount() int {
	if len(c.Halos) == 0 {
		return 0
	}
	return c.Halos[0].Count()
}

// sortCatalog orders halos by descending size then ascending tag.
func sortCatalog(halos []Halo) {
	sort.Slice(halos, func(a, b int) bool {
		if len(halos[a].Indices) != len(halos[b].Indices) {
			return len(halos[a].Indices) > len(halos[b].Indices)
		}
		return halos[a].Tag < halos[b].Tag
	})
}

// Options configures FOF halo finding.
type Options struct {
	// LinkingLength is the FOF linking length in the same units as the
	// positions. Cosmology runs conventionally use b=0.2 times the mean
	// inter-particle spacing ("the choice of linking length is connected to
	// the choice of an isodensity surface", §3.3.1).
	LinkingLength float64
	// MinSize discards halos with fewer particles ("to avoid spurious
	// identifications, halos with fewer than a specified number of
	// particles are discarded", §3.3.1). HACC production runs and Fig. 3
	// use 40 as the floor; values < 1 are rejected.
	MinSize int
	// Periodic enables minimum-image linking across the box faces. The
	// parallel finder runs rank-local FOF with Periodic=true over primary
	// plus overload particles, which keeps true periodic neighbours linked
	// without coordinate shifting.
	Periodic bool
	// LeafSize tunes the k-d tree leaf size; <= 0 selects the default.
	LeafSize int
	// DisableSubtreeMerge turns off the §3.3.1 bulk shortcut (merging a
	// whole subtree when its bounding box provably lies within the linking
	// length) — kept as an ablation knob; the shortcut changes no results,
	// only the number of distance comparisons.
	DisableSubtreeMerge bool
}

func (o Options) validate() error {
	if o.LinkingLength <= 0 {
		return fmt.Errorf("halo: linking length %g must be positive", o.LinkingLength)
	}
	if o.MinSize < 1 {
		return fmt.Errorf("halo: min size %d must be >= 1", o.MinSize)
	}
	return nil
}

// FOF finds the friends-of-friends halos of the particle set using a k-d
// tree for the fixed-radius neighbour searches.
func FOF(p *nbody.Particles, box float64, o Options) (*Catalog, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	period := 0.0
	if o.Periodic {
		period = box
	}
	tree, err := kdtree.Build(p.X, p.Y, p.Z, period, o.LeafSize)
	if err != nil {
		return nil, err
	}
	ds := NewDisjointSet(p.N())
	for i := 0; i < p.N(); i++ {
		if o.DisableSubtreeMerge {
			tree.VisitWithin(p.X[i], p.Y[i], p.Z[i], o.LinkingLength, func(j int) bool {
				if j > i { // each pair once; the tree returns i itself too
					ds.Union(i, j)
				}
				return true
			})
			continue
		}
		tree.VisitWithinBulk(p.X[i], p.Y[i], p.Z[i], o.LinkingLength,
			func(members []int) bool {
				// Whole subtree within the linking length: merge without
				// per-particle distance tests (§3.3.1).
				for _, j := range members {
					ds.Union(i, j)
				}
				return true
			},
			func(j int) bool {
				ds.Union(i, j)
				return true
			})
	}
	return catalogFromGroups(p, box, ds.Groups(o.MinSize), o), nil
}

// NaiveFOF is the O(n²) pairwise reference implementation, retained for
// correctness testing and as the ablation baseline for the k-d tree finder
// (DESIGN.md §6).
func NaiveFOF(p *nbody.Particles, box float64, o Options) (*Catalog, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	b2 := o.LinkingLength * o.LinkingLength
	ds := NewDisjointSet(p.N())
	for i := 0; i < p.N(); i++ {
		for j := i + 1; j < p.N(); j++ {
			var d2 float64
			if o.Periodic {
				d2 = p.Dist2(i, j, box)
			} else {
				dx := p.X[i] - p.X[j]
				dy := p.Y[i] - p.Y[j]
				dz := p.Z[i] - p.Z[j]
				d2 = dx*dx + dy*dy + dz*dz
			}
			if d2 <= b2 {
				ds.Union(i, j)
			}
		}
	}
	return catalogFromGroups(p, box, ds.Groups(o.MinSize), o), nil
}

func catalogFromGroups(p *nbody.Particles, box float64, groups [][]int, o Options) *Catalog {
	cat := &Catalog{LinkingLength: o.LinkingLength, MinSize: o.MinSize}
	for _, g := range groups {
		h := Halo{Indices: g, MBP: -1, MBPTag: -1}
		h.Tag = minTag(p, g)
		h.Center = centerOfMass(p, g, box, o.Periodic)
		cat.Halos = append(cat.Halos, h)
	}
	sortCatalog(cat.Halos)
	return cat
}

func minTag(p *nbody.Particles, idx []int) int64 {
	mt := p.Tag[idx[0]]
	for _, i := range idx[1:] {
		if p.Tag[i] < mt {
			mt = p.Tag[i]
		}
	}
	return mt
}

func centerOfMass(p *nbody.Particles, idx []int, box float64, periodic bool) [3]float64 {
	// Unwrap member positions relative to the first member so halos
	// straddling the periodic boundary average correctly.
	ref := [3]float64{p.X[idx[0]], p.Y[idx[0]], p.Z[idx[0]]}
	var sum [3]float64
	for _, i := range idx {
		pos := [3]float64{p.X[i], p.Y[i], p.Z[i]}
		for a := 0; a < 3; a++ {
			d := pos[a] - ref[a]
			if periodic {
				d = nbody.MinImage(pos[a], ref[a], box)
			}
			sum[a] += ref[a] + d
		}
	}
	n := float64(len(idx))
	var out [3]float64
	for a := 0; a < 3; a++ {
		v := sum[a] / n
		if periodic {
			for v < 0 {
				v += box
			}
			for v >= box {
				v -= box
			}
		}
		out[a] = v
	}
	return out
}
