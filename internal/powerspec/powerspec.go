// Package powerspec measures the matter density fluctuation power spectrum
// of a particle distribution.
//
// This is the paper's canonical example of an analysis task that belongs
// in-situ (§1): "This calculation requires a density estimation on a
// regular grid via, e.g., a Cloud-In-Cell (CIC) algorithm and very large
// FFTs. Both of the algorithms are efficiently parallelizable ... the
// determination of the power spectrum takes only a few minutes, a small
// fraction of the computational time required for a single time step."
// The measurement here is the standard estimator: CIC density contrast,
// 3-D FFT, and |delta(k)|² · V / N⁶ averaged in spherical k-bins.
package powerspec

import (
	"fmt"
	"math"

	"repro/internal/fft"
	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/nbody"
)

// Result is a binned power spectrum: P(k) against the mean wave number of
// each bin, with the mode count per bin for error estimation.
type Result struct {
	K     []float64 // mean |k| per bin, h/Mpc
	P     []float64 // power, (Mpc/h)³
	Modes []int     // contributing Fourier modes per bin
}

// Measure computes the power spectrum of the particles on an ng³ grid
// (power of two) over nBins linear bins in |k| between the fundamental mode
// and the Nyquist frequency.
func Measure(p *nbody.Particles, box float64, ng, nBins int) (*Result, error) {
	if nBins <= 0 {
		return nil, fmt.Errorf("powerspec: nBins=%d must be positive", nBins)
	}
	g, err := grid.NewScalar(ng, box)
	if err != nil {
		return nil, err
	}
	for i := 0; i < p.N(); i++ {
		g.DepositCIC(p.X[i], p.Y[i], p.Z[i], 1)
	}
	if err := g.ToDensityContrast(); err != nil {
		return nil, err
	}
	return MeasureGrid(g, nBins)
}

// MeasureGrid computes the power spectrum of an existing density-contrast
// grid. The grid dimension must be a power of two.
func MeasureGrid(g *grid.Scalar, nBins int) (*Result, error) {
	ng := g.N
	cube, err := fft.NewCube(ng)
	if err != nil {
		return nil, err
	}
	for i, v := range g.Data {
		cube.Data[i] = complex(v, 0)
	}
	if err := cube.Forward3D(); err != nil {
		return nil, err
	}
	box := g.BoxSize
	vol := box * box * box
	n3 := float64(ng * ng * ng)
	norm := vol / (n3 * n3)

	kFund := 2 * math.Pi / box
	kNyq := kFund * float64(ng) / 2
	binW := (kNyq - kFund) / float64(nBins)

	res := &Result{K: make([]float64, nBins), P: make([]float64, nBins), Modes: make([]int, nBins)}
	kSum := make([]float64, nBins)
	for i := 0; i < ng; i++ {
		kx := fft.WaveNumber(i, ng, box)
		for j := 0; j < ng; j++ {
			ky := fft.WaveNumber(j, ng, box)
			for k := 0; k < ng; k++ {
				kz := fft.WaveNumber(k, ng, box)
				kk := math.Sqrt(kx*kx + ky*ky + kz*kz)
				if kk < kFund || kk >= kNyq {
					continue
				}
				bin := int((kk - kFund) / binW)
				if bin >= nBins {
					bin = nBins - 1
				}
				c := cube.At(i, j, k)
				res.P[bin] += (real(c)*real(c) + imag(c)*imag(c)) * norm
				kSum[bin] += kk
				res.Modes[bin]++
			}
		}
	}
	for b := 0; b < nBins; b++ {
		if res.Modes[b] > 0 {
			res.P[b] /= float64(res.Modes[b])
			res.K[b] = kSum[b] / float64(res.Modes[b])
		}
	}
	return res, nil
}

// MeasureParallel computes the power spectrum of a distributed particle
// set: each rank deposits its local particles onto a private grid, the
// grids are summed with an all-reduce, and every rank then evaluates the
// same FFT and binning — the structure of the paper's in-situ power
// spectrum, which ran across the full Titan partition at every analysis
// step (§1). All ranks return the identical result.
func MeasureParallel(c *mpi.Comm, local *nbody.Particles, box float64, ng, nBins int) (*Result, error) {
	if nBins <= 0 {
		return nil, fmt.Errorf("powerspec: nBins=%d must be positive", nBins)
	}
	g, err := grid.NewScalar(ng, box)
	if err != nil {
		return nil, err
	}
	for i := 0; i < local.N(); i++ {
		g.DepositCIC(local.X[i], local.Y[i], local.Z[i], 1)
	}
	// Sum the per-rank grids; every rank receives the global density.
	all := c.AllGather(g.Data)
	global, err := grid.NewScalar(ng, box)
	if err != nil {
		return nil, err
	}
	for _, payload := range all {
		for i, v := range payload.([]float64) {
			global.Data[i] += v
		}
	}
	if err := global.ToDensityContrast(); err != nil {
		return nil, err
	}
	return MeasureGrid(global, nBins)
}
