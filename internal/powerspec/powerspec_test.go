package powerspec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/grid"
	"repro/internal/mpi"
	"repro/internal/nbody"
)

func TestMeasureValidation(t *testing.T) {
	p := nbody.NewParticles(0)
	p.Append(1, 1, 1, 0, 0, 0, 0)
	if _, err := Measure(p, 10, 16, 0); err == nil {
		t.Error("expected error for nBins=0")
	}
	if _, err := Measure(p, 10, 7, 4); err == nil {
		t.Error("expected error for non-pow2 grid")
	}
	if _, err := Measure(nbody.NewParticles(0), 10, 16, 4); err == nil {
		t.Error("expected error for empty particle set")
	}
}

// A pure plane-wave density perturbation should put all its power in the
// bin containing its wave number.
func TestMeasureGridPlaneWave(t *testing.T) {
	ng := 32
	box := 64.0
	g, err := grid.NewScalar(ng, box)
	if err != nil {
		t.Fatal(err)
	}
	m := 4 // mode number along x
	amp := 0.1
	for i := 0; i < ng; i++ {
		v := amp * math.Cos(2*math.Pi*float64(m)*float64(i)/float64(ng))
		for j := 0; j < ng; j++ {
			for k := 0; k < ng; k++ {
				g.Set(i, j, k, v)
			}
		}
	}
	res, err := MeasureGrid(g, 15)
	if err != nil {
		t.Fatal(err)
	}
	kTarget := 2 * math.Pi * float64(m) / box
	// Find the bin holding kTarget and check it dominates.
	peakBin, peakP := -1, 0.0
	for b := range res.P {
		if res.P[b] > peakP {
			peakBin, peakP = b, res.P[b]
		}
	}
	if peakBin < 0 {
		t.Fatal("no power measured")
	}
	if math.Abs(res.K[peakBin]-kTarget) > 0.3*kTarget {
		t.Errorf("peak at k=%v, want %v", res.K[peakBin], kTarget)
	}
	// Total power in all other bins should be negligible.
	other := 0.0
	for b := range res.P {
		if b != peakBin {
			other += res.P[b] * float64(res.Modes[b])
		}
	}
	if other > 1e-9*peakP {
		t.Errorf("power leaked to other bins: %v vs peak %v", other, peakP)
	}
	// Analytic check: delta_k for cos has |delta_k|² = (amp/2)² N⁶ at ±k.
	wantP := amp * amp / 4 * box * box * box
	if math.Abs(res.P[peakBin]*float64(res.Modes[peakBin])-2*wantP) > 1e-6*wantP {
		t.Errorf("bin power = %v, want %v (2 modes of %v)", res.P[peakBin]*float64(res.Modes[peakBin]), 2*wantP, wantP)
	}
}

// Random (Poisson) particles have shot-noise power ~ V/N, flat in k.
func TestMeasureShotNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 20000
	box := 100.0
	p := nbody.NewParticles(n)
	for i := 0; i < n; i++ {
		p.X[i] = rng.Float64() * box
		p.Y[i] = rng.Float64() * box
		p.Z[i] = rng.Float64() * box
	}
	res, err := Measure(p, box, 32, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := box * box * box / float64(n)
	// Large-scale bins: CIC suppression is mild there.
	for b := 0; b < 3; b++ {
		if res.Modes[b] == 0 {
			continue
		}
		ratio := res.P[b] / want
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("bin %d: shot noise ratio = %v (P=%v, want~%v)", b, ratio, res.P[b], want)
		}
	}
}

func TestMeasureBinsAreOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := nbody.NewParticles(1000)
	for i := 0; i < 1000; i++ {
		p.X[i] = rng.Float64() * 50
		p.Y[i] = rng.Float64() * 50
		p.Z[i] = rng.Float64() * 50
	}
	res, err := Measure(p, 50, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for b, k := range res.K {
		if res.Modes[b] == 0 {
			continue
		}
		if k <= prev {
			t.Errorf("bin %d mean k %v not increasing", b, k)
		}
		prev = k
	}
}

// The distributed measurement must equal the serial one exactly, for any
// rank count.
func TestMeasureParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	box := 50.0
	all := nbody.NewParticles(2000)
	for i := 0; i < all.N(); i++ {
		all.X[i] = rng.Float64() * box
		all.Y[i] = rng.Float64() * box
		all.Z[i] = rng.Float64() * box
	}
	want, err := Measure(all, box, 16, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, ranks := range []int{1, 3, 4} {
		results := make([]*Result, ranks)
		err := mpi.RunRanks(ranks, func(c *mpi.Comm) error {
			var idx []int
			for i := 0; i < all.N(); i++ {
				if nbody.SlabOwner(all.X[i], c.Size(), box) == c.Rank() {
					idx = append(idx, i)
				}
			}
			res, err := MeasureParallel(c, all.Select(idx), box, 16, 6)
			if err != nil {
				return err
			}
			results[c.Rank()] = res
			return nil
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		for rank, res := range results {
			for b := range want.P {
				if math.Abs(res.P[b]-want.P[b]) > 1e-9*(1+math.Abs(want.P[b])) {
					t.Fatalf("ranks=%d rank=%d bin %d: %v vs %v", ranks, rank, b, res.P[b], want.P[b])
				}
				if res.Modes[b] != want.Modes[b] {
					t.Fatalf("ranks=%d: mode count differs in bin %d", ranks, b)
				}
			}
		}
	}
}

func TestMeasureParallelValidation(t *testing.T) {
	err := mpi.RunRanks(2, func(c *mpi.Comm) error {
		_, err := MeasureParallel(c, nbody.NewParticles(0), 10, 16, 0)
		if err == nil {
			return fmt.Errorf("expected nBins error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
