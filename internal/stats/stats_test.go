package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("expected bin count error")
	}
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("expected empty range error")
	}
	if _, err := NewLogHistogram(0, 10, 4); err == nil {
		t.Error("expected log range error")
	}
	if _, err := NewLogHistogram(10, 1, 4); err == nil {
		t.Error("expected inverted range error")
	}
}

func TestHistogramLinearBinning(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{0, 1.9, 2, 5, 9.99})
	if h.Counts[0] != 2 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[4] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	h.Add(-1)
	h.Add(10)
	if h.Underflow != 1 || h.Overflow != 1 {
		t.Errorf("under/over = %d/%d", h.Underflow, h.Overflow)
	}
	if h.Total() != 5 {
		t.Errorf("total = %d", h.Total())
	}
}

func TestHistogramLogBinning(t *testing.T) {
	h, err := NewLogHistogram(1, 10000, 4) // decades
	if err != nil {
		t.Fatal(err)
	}
	h.AddAll([]float64{2, 20, 200, 2000})
	for i, c := range h.Counts {
		if c != 1 {
			t.Errorf("bin %d = %d", i, c)
		}
	}
	h.Add(0)
	h.Add(-5)
	if h.Underflow != 2 {
		t.Errorf("underflow = %d", h.Underflow)
	}
	edges := h.BinEdges()
	want := []float64{1, 10, 100, 1000, 10000}
	for i := range want {
		if math.Abs(edges[i]-want[i]) > 1e-9*want[i] {
			t.Errorf("edge %d = %v, want %v", i, edges[i], want[i])
		}
	}
	centers := h.BinCenters()
	if math.Abs(centers[0]-math.Sqrt(10)) > 1e-9 {
		t.Errorf("center 0 = %v", centers[0])
	}
}

func TestHistogramEdgeRoundUp(t *testing.T) {
	h, _ := NewHistogram(0, 1, 3)
	// A value infinitesimally below max must land in the last bin.
	h.Add(math.Nextafter(1, 0))
	if h.Counts[2] != 1 || h.Overflow != 0 {
		t.Errorf("counts = %v over = %d", h.Counts, h.Overflow)
	}
}

func TestRender(t *testing.T) {
	h, _ := NewHistogram(0, 4, 2)
	h.AddAll([]float64{1, 1, 1, 3})
	out := h.Render(10, false)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[0], "##########") {
		t.Errorf("first bar not full width: %q", lines[0])
	}
	if !strings.HasSuffix(lines[0], " 3") || !strings.HasSuffix(lines[1], " 1") {
		t.Errorf("counts missing: %q %q", lines[0], lines[1])
	}
	// Log-count rendering must not blow up on zeros.
	h2, _ := NewHistogram(0, 2, 2)
	h2.Add(0.5)
	_ = h2.Render(10, true)
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("expected empty error")
	}
	s, err := Summarize([]float64{4, 1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 4 || s.Min != 1 || s.Max != 4 || s.Sum != 10 {
		t.Errorf("summary = %+v", s)
	}
	if math.Abs(s.Mean-2.5) > 1e-12 || math.Abs(s.Median-2.5) > 1e-12 {
		t.Errorf("mean/median = %v/%v", s.Mean, s.Median)
	}
	if math.Abs(s.MaxOverMin-4) > 1e-12 {
		t.Errorf("imbalance = %v", s.MaxOverMin)
	}
	z, err := Summarize([]float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(z.MaxOverMin, 1) {
		t.Errorf("zero-min imbalance = %v", z.MaxOverMin)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s, err := Summarize([]float64{7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Median != 7 || s.P90 != 7 || s.StdDev != 0 {
		t.Errorf("summary = %+v", s)
	}
}

// Property: Total + Underflow + Overflow equals the number of samples.
func TestPropertyHistogramConservesSamples(t *testing.T) {
	f := func(raw []float64) bool {
		h, _ := NewHistogram(-5, 5, 7)
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) {
				continue
			}
			h.Add(v)
			n++
		}
		return h.Total()+h.Underflow+h.Overflow == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Summary respects Min <= Median <= Max and Min <= Mean <= Max.
func TestPropertySummaryOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]float64, len(raw))
		for i, v := range raw {
			vs[i] = float64(v)
		}
		s, err := Summarize(vs)
		if err != nil {
			return false
		}
		return s.Min <= s.Median && s.Median <= s.Max && s.Min <= s.Mean && s.Mean <= s.Max+1e-9 && s.P90 <= s.P99+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
