// Package stats provides the histogram and summary-statistic helpers the
// benchmark harness uses to regenerate the paper's figures: the log-log
// halo mass function of Figure 3 and the node-time distribution of
// Figure 4.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a set of uniform bins over [Min, Max) in linear or
// logarithmic coordinates.
type Histogram struct {
	// Min and Max bound the binned range (in log10 space when Log is set).
	Min, Max float64
	// Log bins in log10 of the value.
	Log bool
	// Counts per bin.
	Counts []int
	// Underflow and Overflow count out-of-range samples.
	Underflow, Overflow int
}

// NewHistogram creates a histogram with n bins spanning [min, max) in
// linear space.
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: bin count %d must be positive", n)
	}
	if !(max > min) {
		return nil, fmt.Errorf("stats: range [%g, %g) is empty", min, max)
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, n)}, nil
}

// NewLogHistogram creates a histogram with n bins uniform in log10 between
// min and max (both > 0) — the binning of the paper's Figure 3 mass
// function.
func NewLogHistogram(min, max float64, n int) (*Histogram, error) {
	if min <= 0 || max <= min {
		return nil, fmt.Errorf("stats: log range (%g, %g) invalid", min, max)
	}
	h, err := NewHistogram(math.Log10(min), math.Log10(max), n)
	if err != nil {
		return nil, err
	}
	h.Log = true
	return h, nil
}

// Add accumulates one sample.
func (h *Histogram) Add(v float64) {
	x := v
	if h.Log {
		if v <= 0 {
			h.Underflow++
			return
		}
		x = math.Log10(v)
	}
	if x < h.Min {
		h.Underflow++
		return
	}
	if x >= h.Max {
		h.Overflow++
		return
	}
	bin := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
	if bin == len(h.Counts) { // guard against round-up at the edge
		bin--
	}
	h.Counts[bin]++
}

// AddAll accumulates every sample.
func (h *Histogram) AddAll(vs []float64) {
	for _, v := range vs {
		h.Add(v)
	}
}

// Total returns the in-range sample count.
func (h *Histogram) Total() int {
	t := 0
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// BinEdges returns the n+1 edges in value space (delogged when Log).
func (h *Histogram) BinEdges() []float64 {
	n := len(h.Counts)
	edges := make([]float64, n+1)
	for i := 0; i <= n; i++ {
		e := h.Min + (h.Max-h.Min)*float64(i)/float64(n)
		if h.Log {
			e = math.Pow(10, e)
		}
		edges[i] = e
	}
	return edges
}

// BinCenters returns the n bin centres in value space (geometric centres
// when Log).
func (h *Histogram) BinCenters() []float64 {
	n := len(h.Counts)
	centers := make([]float64, n)
	for i := 0; i < n; i++ {
		c := h.Min + (h.Max-h.Min)*(float64(i)+0.5)/float64(n)
		if h.Log {
			c = math.Pow(10, c)
		}
		centers[i] = c
	}
	return centers
}

// Render draws a fixed-width ASCII bar chart, with log-scaled bar lengths
// when logCounts is set (Figure 4 "showing node counts on a log scale").
func (h *Histogram) Render(width int, logCounts bool) string {
	if width <= 0 {
		width = 50
	}
	maxC := 0
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	var b strings.Builder
	edges := h.BinEdges()
	for i, c := range h.Counts {
		bar := 0
		if maxC > 0 && c > 0 {
			if logCounts {
				bar = int(math.Round(float64(width) * math.Log10(float64(c)+1) / math.Log10(float64(maxC)+1)))
			} else {
				bar = int(math.Round(float64(width) * float64(c) / float64(maxC)))
			}
			if bar == 0 {
				bar = 1
			}
		}
		fmt.Fprintf(&b, "%12.4g-%-12.4g |%s %d\n", edges[i], edges[i+1], strings.Repeat("#", bar), c)
	}
	return b.String()
}

// Summary holds order statistics of a sample.
type Summary struct {
	N                int
	Min, Max         float64
	Mean, Median     float64
	P90, P99         float64
	Sum              float64
	MaxOverMin       float64 // load-imbalance ratio (Inf if Min == 0)
	StdDev           float64
	TotalOverPerfect float64 // Sum / (N * Min): how far from perfectly balanced
}

// Summarize computes order statistics; it returns an error for empty
// input.
func Summarize(vs []float64) (Summary, error) {
	if len(vs) == 0 {
		return Summary{}, fmt.Errorf("stats: empty sample")
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	var sum, sum2 float64
	for _, v := range s {
		sum += v
		sum2 += v * v
	}
	n := float64(len(s))
	mean := sum / n
	variance := sum2/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	out := Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Mean:   mean,
		Median: quantile(s, 0.5),
		P90:    quantile(s, 0.9),
		P99:    quantile(s, 0.99),
		Sum:    sum,
		StdDev: math.Sqrt(variance),
	}
	if out.Min > 0 {
		out.MaxOverMin = out.Max / out.Min
		out.TotalOverPerfect = sum / (n * out.Min)
	} else {
		out.MaxOverMin = math.Inf(1)
		out.TotalOverPerfect = math.Inf(1)
	}
	return out, nil
}

// quantile interpolates the q-quantile of sorted data.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
