package render

import (
	"bytes"
	"image/png"
	"math"
	"math/rand"
	"testing"

	"repro/internal/nbody"
)

func testParticles(n int, box float64, seed int64) *nbody.Particles {
	rng := rand.New(rand.NewSource(seed))
	p := nbody.NewParticles(n)
	for i := 0; i < n; i++ {
		p.X[i] = rng.Float64() * box
		p.Y[i] = rng.Float64() * box
		p.Z[i] = rng.Float64() * box
	}
	return p
}

func TestOptionsValidation(t *testing.T) {
	p := testParticles(10, 10, 1)
	if _, err := Project(p, 10, Options{Pixels: 0}); err == nil {
		t.Error("expected pixels error")
	}
	if _, err := Project(p, 10, Options{Pixels: 8, Axis: 3}); err == nil {
		t.Error("expected axis error")
	}
}

// Projection conserves particle count (mass).
func TestProjectConservesMass(t *testing.T) {
	p := testParticles(500, 10, 2)
	for axis := 0; axis < 3; axis++ {
		density, err := Project(p, 10, Options{Pixels: 16, Axis: axis})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, v := range density {
			total += v
		}
		if math.Abs(total-500) > 1e-9 {
			t.Errorf("axis %d: projected mass %v, want 500", axis, total)
		}
	}
}

// A slice range projects only the particles within it.
func TestProjectSliceRange(t *testing.T) {
	p := nbody.NewParticles(0)
	p.Append(2, 5, 5, 0, 0, 0, 0) // depth (x) = 2: inside [0, 4)
	p.Append(8, 5, 5, 0, 0, 0, 1) // depth 8: outside
	density, err := Project(p, 10, Options{Pixels: 8, Axis: 0, SliceMin: 0, SliceMax: 4})
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, v := range density {
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("slice mass = %v, want 1", total)
	}
}

// A clustered distribution produces a dynamic-range image: the clump pixel
// must be much brighter than the median pixel.
func TestImageDynamicRange(t *testing.T) {
	box := 10.0
	p := testParticles(200, box, 3)
	// Dense clump.
	for i := 0; i < 300; i++ {
		p.Append(5, 5, 5, 0, 0, 0, int64(1000+i))
	}
	density, err := Project(p, box, Options{Pixels: 16, Axis: 2})
	if err != nil {
		t.Fatal(err)
	}
	img, err := Image(density, 16, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The clump's pixel (col 8, row inverted) should be near-white;
	// corners near-dark.
	bright := img.RGBAAt(8, 16-1-8)
	dark := img.RGBAAt(0, 0)
	if int(bright.R)+int(bright.G)+int(bright.B) < 2*(int(dark.R)+int(dark.G)+int(dark.B)) {
		t.Errorf("no dynamic range: clump %v vs corner %v", bright, dark)
	}
}

func TestImageValidation(t *testing.T) {
	if _, err := Image(make([]float64, 10), 4, 1); err == nil {
		t.Error("expected size mismatch error")
	}
}

func TestWritePNGProducesValidImage(t *testing.T) {
	p := testParticles(300, 10, 4)
	var buf bytes.Buffer
	if err := WritePNG(&buf, p, 10, Options{Pixels: 32, Axis: 2, Gamma: 0.8}); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatalf("invalid PNG: %v", err)
	}
	if img.Bounds().Dx() != 32 || img.Bounds().Dy() != 32 {
		t.Errorf("bounds = %v", img.Bounds())
	}
}

func TestEmptyFieldRenders(t *testing.T) {
	density := make([]float64, 64)
	if _, err := Image(density, 8, 1); err != nil {
		t.Fatal(err)
	}
}
