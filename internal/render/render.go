// Package render produces density-projection images of the particle
// distribution — the reproduction of the paper's Figure 2 ("Visualization
// of the Q Continuum simulation's particle distribution ... showing the
// halos that have formed in this region at the final time step").
//
// The renderer projects the 3-D CIC density field along one axis,
// log-scales the column density, and maps it through a dark-to-bright
// colormap, which is the standard presentation for cosmic-web imagery.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"repro/internal/nbody"
)

// Options configures a projection render.
type Options struct {
	// Pixels is the image side length (the projection grid resolution).
	Pixels int
	// Axis selects the projection direction: 0=x, 1=y, 2=z.
	Axis int
	// SliceMin and SliceMax optionally bound the projected depth range in
	// box units; Max <= Min means the full depth (zoomed sub-regions like
	// Figure 2's single-node volume use a narrow slice).
	SliceMin, SliceMax float64
	// Gamma compresses the log-density ramp; <= 0 selects 1.
	Gamma float64
}

func (o Options) validate() error {
	if o.Pixels <= 0 {
		return fmt.Errorf("render: pixels %d must be positive", o.Pixels)
	}
	if o.Axis < 0 || o.Axis > 2 {
		return fmt.Errorf("render: axis %d out of range", o.Axis)
	}
	return nil
}

// Project deposits the particles onto a Pixels×Pixels grid, integrating
// along the chosen axis over the slice range, and returns the column
// density map (row-major, [row*Pixels + col]).
func Project(p *nbody.Particles, box float64, o Options) ([]float64, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	lo, hi := o.SliceMin, o.SliceMax
	if hi <= lo {
		lo, hi = 0, box
	}
	out := make([]float64, o.Pixels*o.Pixels)
	scale := float64(o.Pixels) / box
	for i := 0; i < p.N(); i++ {
		var depth, u, v float64
		switch o.Axis {
		case 0:
			depth, u, v = p.X[i], p.Y[i], p.Z[i]
		case 1:
			depth, u, v = p.Y[i], p.X[i], p.Z[i]
		default:
			depth, u, v = p.Z[i], p.X[i], p.Y[i]
		}
		if depth < lo || depth >= hi {
			continue
		}
		// Bilinear (2-D CIC) deposit for smooth imagery.
		fu := u*scale - 0.5
		fv := v*scale - 0.5
		iu := int(math.Floor(fu))
		iv := int(math.Floor(fv))
		du := fu - float64(iu)
		dv := fv - float64(iv)
		for _, c := range [4]struct {
			pu, pv int
			w      float64
		}{
			{iu, iv, (1 - du) * (1 - dv)},
			{iu + 1, iv, du * (1 - dv)},
			{iu, iv + 1, (1 - du) * dv},
			{iu + 1, iv + 1, du * dv},
		} {
			pu := wrapIdx(c.pu, o.Pixels)
			pv := wrapIdx(c.pv, o.Pixels)
			out[pv*o.Pixels+pu] += c.w
		}
	}
	return out, nil
}

func wrapIdx(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Image converts a column-density map into a log-scaled image with the
// cosmic-web colormap.
func Image(density []float64, pixels int, gamma float64) (*image.RGBA, error) {
	if pixels*pixels != len(density) {
		return nil, fmt.Errorf("render: %d values for %d pixels", len(density), pixels)
	}
	if gamma <= 0 {
		gamma = 1
	}
	maxV := 0.0
	for _, v := range density {
		if v > maxV {
			maxV = v
		}
	}
	img := image.NewRGBA(image.Rect(0, 0, pixels, pixels))
	logMax := math.Log1p(maxV)
	for row := 0; row < pixels; row++ {
		for col := 0; col < pixels; col++ {
			v := density[row*pixels+col]
			t := 0.0
			if logMax > 0 {
				t = math.Pow(math.Log1p(v)/logMax, gamma)
			}
			img.Set(col, pixels-1-row, colormap(t))
		}
	}
	return img, nil
}

// colormap maps t in [0,1] to a dark-blue -> violet -> orange -> white
// ramp reminiscent of cosmological visualization palettes.
func colormap(t float64) color.RGBA {
	clamp := func(v float64) uint8 {
		if v < 0 {
			return 0
		}
		if v > 255 {
			return 255
		}
		return uint8(v)
	}
	r := clamp(340*t*t + 60*t)
	g := clamp(280*t*t*t*t + 40*t*t)
	b := clamp(90*math.Sqrt(t) + 180*t*t*t)
	return color.RGBA{R: r, G: g, B: b, A: 255}
}

// WritePNG renders the particles and writes the image.
func WritePNG(w io.Writer, p *nbody.Particles, box float64, o Options) error {
	density, err := Project(p, box, o)
	if err != nil {
		return err
	}
	img, err := Image(density, o.Pixels, o.Gamma)
	if err != nil {
		return err
	}
	return png.Encode(w, img)
}
