package nbody

import (
	"fmt"

	"repro/internal/mpi"
)

// Slab decomposition: the box is cut along x into equal slabs, one per
// rank. The paper distributes particles "across the processors according to
// a domain decomposition" with "overload regions ... defined at the
// boundaries of the processors, with each of the neighboring processors
// receiving a copy of the particles in this region" sized so that "each
// halo is assured of being found in its entirety by at least one processor"
// (§3.3.1). A 1-D slab cut keeps the exchange logic transparent while
// exercising the same ghost-copy pattern as HACC's 3-D decomposition.

// SlabBounds returns the [lo, hi) x-extent of rank's slab for a box of
// side box split over size ranks.
func SlabBounds(rank, size int, box float64) (lo, hi float64) {
	w := box / float64(size)
	lo = float64(rank) * w
	hi = lo + w
	if rank == size-1 {
		hi = box // absorb rounding
	}
	return lo, hi
}

// SlabOwner returns the rank whose slab contains coordinate x (wrapped
// into [0, box)).
func SlabOwner(x float64, size int, box float64) int {
	x = wrapPos(x, box)
	r := int(x / (box / float64(size)))
	if r >= size {
		r = size - 1
	}
	return r
}

// Distribute redistributes particles so every rank ends with exactly the
// particles whose x lies in its slab. Each rank contributes its current
// local set; the exchange is a single AllToAll. This is the
// "redistribution" phase the off-line workflow pays for after reading
// Level 1 data back from disk (Table 4).
func Distribute(c *mpi.Comm, local *Particles, box float64) (*Particles, error) {
	if err := local.Validate(); err != nil {
		return nil, err
	}
	size := c.Size()
	buckets := make([][]int, size)
	for i := 0; i < local.N(); i++ {
		r := SlabOwner(local.X[i], size, box)
		buckets[r] = append(buckets[r], i)
	}
	out := make([]any, size)
	for r := 0; r < size; r++ {
		out[r] = local.Select(buckets[r])
	}
	in := c.AllToAll(out)
	merged := NewParticles(0)
	for _, payload := range in {
		part := payload.(*Particles)
		for i := 0; i < part.N(); i++ {
			merged.AppendFrom(part, i)
		}
	}
	return merged, nil
}

// ExchangeOverload returns the ghost particles for a rank: copies of
// neighbour particles within overload distance of the rank's slab
// boundaries (periodic across the box ends). local must already be
// decomposed (every particle inside the caller's slab).
func ExchangeOverload(c *mpi.Comm, local *Particles, box, overload float64) (*Particles, error) {
	size := c.Size()
	rank := c.Rank()
	if overload <= 0 {
		return nil, fmt.Errorf("nbody: overload width %g must be positive", overload)
	}
	slabW := box / float64(size)
	if size > 1 && overload > slabW {
		return nil, fmt.Errorf("nbody: overload %g exceeds slab width %g", overload, slabW)
	}
	if size == 1 {
		// Single rank sees the whole box; no ghosts needed (periodic FOF
		// handles wrapping directly).
		return NewParticles(0), nil
	}
	lo, hi := SlabBounds(rank, size, box)
	left := (rank - 1 + size) % size
	right := (rank + 1) % size
	// Particles near my low edge go to the left neighbour, near my high
	// edge to the right neighbour.
	var toLeft, toRight []int
	for i := 0; i < local.N(); i++ {
		if local.X[i] < lo+overload {
			toLeft = append(toLeft, i)
		}
		if local.X[i] >= hi-overload {
			toRight = append(toRight, i)
		}
	}
	out := make([]any, size)
	for r := range out {
		out[r] = NewParticles(0)
	}
	out[left] = local.Select(toLeft)
	out[right] = local.Select(toRight)
	// When size == 2, left == right: both edge sets go to the same rank.
	if left == right {
		both := local.Select(toLeft)
		sel := local.Select(toRight)
		for i := 0; i < sel.N(); i++ {
			both.AppendFrom(sel, i)
		}
		out[left] = both
	}
	in := c.AllToAll(out)
	ghosts := NewParticles(0)
	for r, payload := range in {
		if r == rank {
			continue
		}
		part := payload.(*Particles)
		for i := 0; i < part.N(); i++ {
			ghosts.AppendFrom(part, i)
		}
	}
	return ghosts, nil
}
