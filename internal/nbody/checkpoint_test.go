package nbody

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/cosmo"
)

func randomSim(t *testing.T, seed int64) *Simulation {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	p := NewParticles(0)
	for i := 0; i < 200; i++ {
		p.Append(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20,
			rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), int64(i*3))
	}
	s, err := NewSimulation(cosmo.Default(), 20, 16, p, 0.37)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCheckpointRoundTripExact(t *testing.T) {
	s := randomSim(t, 1)
	var buf bytes.Buffer
	if err := s.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.A != s.A || got.Box != s.Box || got.NG != s.NG {
		t.Errorf("header mismatch: %v/%v/%v", got.A, got.Box, got.NG)
	}
	if got.Cosmo != s.Cosmo {
		t.Errorf("cosmology mismatch: %+v", got.Cosmo)
	}
	if got.P.N() != s.P.N() {
		t.Fatalf("N = %d", got.P.N())
	}
	for i := 0; i < s.P.N(); i++ {
		if got.P.X[i] != s.P.X[i] || got.P.VZ[i] != s.P.VZ[i] || got.P.Tag[i] != s.P.Tag[i] {
			t.Fatalf("particle %d not bit-identical", i)
		}
	}
}

// A restarted simulation must evolve identically to the original.
func TestCheckpointRestartIsDeterministic(t *testing.T) {
	s := randomSim(t, 2)
	var buf bytes.Buffer
	if err := s.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 3; step++ {
		if err := s.Step(0.01); err != nil {
			t.Fatal(err)
		}
		if err := restored.Step(0.01); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < s.P.N(); i++ {
		if s.P.X[i] != restored.P.X[i] || s.P.VX[i] != restored.P.VX[i] {
			t.Fatalf("restart diverged at particle %d", i)
		}
	}
}

func TestCheckpointDetectsCorruption(t *testing.T) {
	s := randomSim(t, 3)
	var buf bytes.Buffer
	if err := s.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-10] ^= 0x01
	if _, err := LoadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Error("expected checksum error")
	}
}

func TestCheckpointRejectsBadMagic(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("NOTACKPT1234"))); err == nil {
		t.Error("expected magic error")
	}
}

func TestCheckpointTruncated(t *testing.T) {
	s := randomSim(t, 4)
	var buf bytes.Buffer
	if err := s.SaveCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := LoadCheckpoint(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("expected truncation error")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	s := randomSim(t, 5)
	path := filepath.Join(t.TempDir(), "ckpt.bin")
	if err := s.SaveCheckpointFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.P.N() != s.P.N() || got.A != s.A {
		t.Errorf("file round trip mismatch")
	}
	if _, err := LoadCheckpointFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("expected missing-file error")
	}
}
