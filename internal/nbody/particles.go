// Package nbody implements the particle-mesh N-body cosmology simulation
// that stands in for HACC (see DESIGN.md §2).
//
// The simulation evolves cold-dark-matter particles in a periodic comoving
// box from Zel'dovich initial conditions to z=0 with a Cloud-In-Cell /
// FFT-Poisson long-range force (the same PM structure as HACC's long-range
// solver) and a kick-drift-kick leapfrog in the scale factor. Its role in
// this reproduction is to produce genuinely clustered particle
// distributions whose halo mass function has the paper's critical property:
// billions of tiny halos and a handful of rare, enormous ones, which is
// what breaks the load balance of center finding and motivates the
// combined in-situ/co-scheduling workflow.
package nbody

import (
	"fmt"
	"math"
	"math/rand"
)

// BytesPerParticle is the size of one raw Level 1 particle record: three
// float32 positions, three float32 velocities, a float32 potential/phi
// placeholder, an int64 tag — 36 bytes, matching the paper's statement that
// "each particle carries 36 bytes of information" (§3).
const BytesPerParticle = 36

// Particles is a structure-of-arrays particle container. Positions are
// comoving, in Mpc/h, inside [0, Box). Velocities are the code momenta
// p = a² dx/dt in units of H0=1 (see Simulation). Tags identify particles
// globally and survive redistribution, matching HACC's particle tags.
type Particles struct {
	X, Y, Z    []float64
	VX, VY, VZ []float64
	Tag        []int64
}

// NewParticles allocates a container for n particles.
func NewParticles(n int) *Particles {
	return &Particles{
		X: make([]float64, n), Y: make([]float64, n), Z: make([]float64, n),
		VX: make([]float64, n), VY: make([]float64, n), VZ: make([]float64, n),
		Tag: make([]int64, n),
	}
}

// N returns the particle count.
func (p *Particles) N() int { return len(p.X) }

// Append adds one particle.
func (p *Particles) Append(x, y, z, vx, vy, vz float64, tag int64) {
	p.X = append(p.X, x)
	p.Y = append(p.Y, y)
	p.Z = append(p.Z, z)
	p.VX = append(p.VX, vx)
	p.VY = append(p.VY, vy)
	p.VZ = append(p.VZ, vz)
	p.Tag = append(p.Tag, tag)
}

// AppendFrom copies particle i of src onto the end of p.
func (p *Particles) AppendFrom(src *Particles, i int) {
	p.Append(src.X[i], src.Y[i], src.Z[i], src.VX[i], src.VY[i], src.VZ[i], src.Tag[i])
}

// Clone returns a deep copy.
func (p *Particles) Clone() *Particles {
	q := NewParticles(p.N())
	copy(q.X, p.X)
	copy(q.Y, p.Y)
	copy(q.Z, p.Z)
	copy(q.VX, p.VX)
	copy(q.VY, p.VY)
	copy(q.VZ, p.VZ)
	copy(q.Tag, p.Tag)
	return q
}

// Select returns a new container holding the particles at the given indices.
func (p *Particles) Select(idx []int) *Particles {
	q := NewParticles(len(idx))
	for out, i := range idx {
		q.X[out], q.Y[out], q.Z[out] = p.X[i], p.Y[i], p.Z[i]
		q.VX[out], q.VY[out], q.VZ[out] = p.VX[i], p.VY[i], p.VZ[i]
		q.Tag[out] = p.Tag[i]
	}
	return q
}

// Validate checks the container's arrays are consistent.
func (p *Particles) Validate() error {
	n := len(p.X)
	if len(p.Y) != n || len(p.Z) != n || len(p.VX) != n || len(p.VY) != n || len(p.VZ) != n || len(p.Tag) != n {
		return fmt.Errorf("nbody: inconsistent particle arrays: %d/%d/%d/%d/%d/%d/%d",
			len(p.X), len(p.Y), len(p.Z), len(p.VX), len(p.VY), len(p.VZ), len(p.Tag))
	}
	return nil
}

// WrapPeriodic folds all positions into [0, box).
func (p *Particles) WrapPeriodic(box float64) {
	for i := range p.X {
		p.X[i] = wrapPos(p.X[i], box)
		p.Y[i] = wrapPos(p.Y[i], box)
		p.Z[i] = wrapPos(p.Z[i], box)
	}
}

func wrapPos(x, l float64) float64 {
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	return x
}

// MinImage returns the minimum-image separation d = a-b in a periodic box
// of side l, in (-l/2, l/2].
func MinImage(a, b, l float64) float64 {
	d := a - b
	d -= l * math.Round(d/l)
	return d
}

// Dist2 returns the squared minimum-image distance between particles i and
// j in a periodic box of side l.
func (p *Particles) Dist2(i, j int, l float64) float64 {
	dx := MinImage(p.X[i], p.X[j], l)
	dy := MinImage(p.Y[i], p.Y[j], l)
	dz := MinImage(p.Z[i], p.Z[j], l)
	return dx*dx + dy*dy + dz*dz
}

// Subsample returns a uniformly random fraction of the particles (without
// replacement, order-preserving, deterministic for a given seed). Particle
// subsamples are one of the paper's Level 2 data products (Table 1 lists
// "subsamples of particles" beside halo particles and density fields).
func (p *Particles) Subsample(fraction float64, seed int64) (*Particles, error) {
	if fraction < 0 || fraction > 1 {
		return nil, fmt.Errorf("nbody: subsample fraction %g out of [0, 1]", fraction)
	}
	rng := rand.New(rand.NewSource(seed))
	target := int(math.Round(fraction * float64(p.N())))
	// Reservoir-free selection: walk once, keeping each particle with the
	// exact remaining-quota probability (classic sequential sampling).
	out := NewParticles(0)
	remaining := p.N()
	need := target
	for i := 0; i < p.N() && need > 0; i++ {
		if rng.Float64() < float64(need)/float64(remaining) {
			out.AppendFrom(p, i)
			need--
		}
		remaining--
	}
	return out, nil
}
