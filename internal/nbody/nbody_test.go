package nbody

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cosmo"
)

func lattice(np int, box float64) *Particles {
	p := NewParticles(np * np * np)
	dq := box / float64(np)
	idx := 0
	for i := 0; i < np; i++ {
		for j := 0; j < np; j++ {
			for k := 0; k < np; k++ {
				p.X[idx] = (float64(i) + 0.5) * dq
				p.Y[idx] = (float64(j) + 0.5) * dq
				p.Z[idx] = (float64(k) + 0.5) * dq
				p.Tag[idx] = int64(idx)
				idx++
			}
		}
	}
	return p
}

func TestParticlesAppendSelectClone(t *testing.T) {
	p := NewParticles(0)
	p.Append(1, 2, 3, 4, 5, 6, 7)
	p.Append(10, 20, 30, 40, 50, 60, 70)
	if p.N() != 2 {
		t.Fatalf("N = %d", p.N())
	}
	q := p.Select([]int{1})
	if q.N() != 1 || q.X[0] != 10 || q.Tag[0] != 70 {
		t.Errorf("select = %+v", q)
	}
	c := p.Clone()
	c.X[0] = 99
	if p.X[0] == 99 {
		t.Error("clone aliases original")
	}
	r := NewParticles(0)
	r.AppendFrom(p, 0)
	if r.X[0] != 1 || r.Tag[0] != 7 {
		t.Errorf("AppendFrom = %+v", r)
	}
}

func TestParticlesValidate(t *testing.T) {
	p := NewParticles(2)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.VX = p.VX[:1]
	if err := p.Validate(); err == nil {
		t.Error("expected error for ragged arrays")
	}
}

func TestWrapPeriodic(t *testing.T) {
	p := NewParticles(0)
	p.Append(-1, 11, 5, 0, 0, 0, 0)
	p.WrapPeriodic(10)
	if p.X[0] != 9 || p.Y[0] != 1 || p.Z[0] != 5 {
		t.Errorf("wrapped = (%v, %v, %v)", p.X[0], p.Y[0], p.Z[0])
	}
}

func TestMinImage(t *testing.T) {
	if d := MinImage(9.5, 0.5, 10); math.Abs(d+1) > 1e-12 {
		t.Errorf("MinImage(9.5, 0.5, 10) = %v, want -1", d)
	}
	if d := MinImage(1, 2, 10); d != -1 {
		t.Errorf("MinImage(1,2,10) = %v", d)
	}
}

func TestPropertyMinImageBounded(t *testing.T) {
	f := func(a, b uint16) bool {
		l := 10.0
		d := MinImage(float64(a%1000)/100, float64(b%1000)/100, l)
		return d > -l/2-1e-9 && d <= l/2+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDist2Periodic(t *testing.T) {
	p := NewParticles(0)
	p.Append(0.5, 5, 5, 0, 0, 0, 0)
	p.Append(9.5, 5, 5, 0, 0, 0, 1)
	if d := p.Dist2(0, 1, 10); math.Abs(d-1) > 1e-12 {
		t.Errorf("Dist2 = %v, want 1 (periodic)", d)
	}
}

func TestNewSimulationValidation(t *testing.T) {
	c := cosmo.Default()
	p := lattice(4, 10)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"bad box", func() error { _, err := NewSimulation(c, -1, 8, p, 0.1); return err }},
		{"bad grid", func() error { _, err := NewSimulation(c, 10, 7, p, 0.1); return err }},
		{"bad a0", func() error { _, err := NewSimulation(c, 10, 8, p, 0); return err }},
		{"bad cosmo", func() error { _, err := NewSimulation(cosmo.Params{}, 10, 8, p, 0.1); return err }},
	}
	for _, tc := range cases {
		if tc.fn() == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	s, err := NewSimulation(c, 10, 8, p, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Redshift()-9) > 1e-12 {
		t.Errorf("redshift = %v", s.Redshift())
	}
}

// A uniform lattice exerts no net PM force: after stepping, velocities stay
// (numerically) tiny and the lattice barely moves.
func TestUniformLatticeIsEquilibrium(t *testing.T) {
	c := cosmo.Default()
	np := 8
	box := 20.0
	p := lattice(np, box)
	s, err := NewSimulation(c, box, np, p, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(0.01); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.N(); i++ {
		v := math.Abs(p.VX[i]) + math.Abs(p.VY[i]) + math.Abs(p.VZ[i])
		if v > 1e-8 {
			t.Fatalf("lattice particle %d acquired velocity %v", i, v)
		}
	}
}

// An overdense point cluster should attract a nearby test particle.
func TestOverdensityAttracts(t *testing.T) {
	c := cosmo.Default()
	np := 8
	box := 20.0
	p := lattice(np, box)
	// Stack extra particles at the box centre to create an overdensity.
	for i := 0; i < 200; i++ {
		p.Append(10, 10, 10, 0, 0, 0, int64(100000+i))
	}
	// Test particle offset along +x from the clump.
	p.Append(13, 10, 10, 0, 0, 0, 999999)
	ti := p.N() - 1
	s, err := NewSimulation(c, box, np, p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(0.01); err != nil {
		t.Fatal(err)
	}
	if p.VX[ti] >= 0 {
		t.Errorf("test particle vx = %v, want negative (attraction toward clump)", p.VX[ti])
	}
	if math.Abs(p.VY[ti]) > math.Abs(p.VX[ti])/2 {
		t.Errorf("transverse velocity %v too large vs %v", p.VY[ti], p.VX[ti])
	}
}

func TestStepRejectsNonPositiveDa(t *testing.T) {
	c := cosmo.Default()
	p := lattice(4, 10)
	s, _ := NewSimulation(c, 10, 8, p, 0.1)
	if err := s.Step(0); err == nil {
		t.Error("expected error")
	}
	if err := s.Step(-0.1); err == nil {
		t.Error("expected error")
	}
}

func TestRunInvokesCallbackEachStep(t *testing.T) {
	c := cosmo.Default()
	p := lattice(4, 10)
	s, _ := NewSimulation(c, 10, 8, p, 0.2)
	var steps []int
	err := s.Run(0.3, 5, func(step int) error {
		steps = append(steps, step)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != 5 || steps[0] != 1 || steps[4] != 5 {
		t.Errorf("steps = %v", steps)
	}
	if math.Abs(s.A-0.3) > 1e-12 {
		t.Errorf("final a = %v", s.A)
	}
}

func TestRunValidation(t *testing.T) {
	c := cosmo.Default()
	p := lattice(4, 10)
	s, _ := NewSimulation(c, 10, 8, p, 0.5)
	if err := s.Run(0.4, 2, nil); err == nil {
		t.Error("expected error for aEnd < a")
	}
	if err := s.Run(0.6, 0, nil); err == nil {
		t.Error("expected error for zero steps")
	}
}

func TestDensityContrastMeanZero(t *testing.T) {
	c := cosmo.Default()
	p := lattice(8, 10)
	s, _ := NewSimulation(c, 10, 8, p, 0.5)
	g, err := s.DensityContrast()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mean()) > 1e-10 {
		t.Errorf("mean delta = %v", g.Mean())
	}
}

// The simulation must track linear growth: starting from small
// fluctuations, the density contrast should grow proportionally to D(a)
// while still linear, and exceed linear growth in the collapsed regime.
// This is the regression test for the kick/drift scale-factor equations.
func TestGrowthTracksLinearTheory(t *testing.T) {
	if testing.Short() {
		t.Skip("evolution test")
	}
	c := cosmo.Default()
	// Small sinusoidal perturbation on a lattice: exactly linear physics.
	np := 16
	box := 32.0
	p := lattice(np, box)
	amp := 0.05 // displacement amplitude, Mpc/h
	a0 := 0.1
	f0 := c.GrowthRate(a0)
	e0 := c.E(a0)
	k := 2 * math.Pi / box
	for i := 0; i < p.N(); i++ {
		psi := amp * math.Sin(k*p.X[i])
		p.X[i] += psi // displacement already includes D(a0)
		p.VX[i] = f0 * psi * a0 * a0 * e0
	}
	p.WrapPeriodic(box)
	s, err := NewSimulation(c, box, np, p, a0)
	if err != nil {
		t.Fatal(err)
	}
	rms := func() float64 {
		g, err := s.DensityContrast()
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, v := range g.Data {
			sum += v * v
		}
		return math.Sqrt(sum / float64(len(g.Data)))
	}
	rms0 := rms()
	if err := s.Run(0.2, 50, nil); err != nil {
		t.Fatal(err)
	}
	got := rms() / rms0
	want := c.GrowthFactor(0.2) / c.GrowthFactor(a0)
	if math.Abs(got-want)/want > 0.15 {
		t.Errorf("growth a=0.1->0.2: rms grew %vx, linear theory says %vx", got, want)
	}
}

func TestSubsample(t *testing.T) {
	p := lattice(8, 10)
	if _, err := p.Subsample(-0.1, 1); err == nil {
		t.Error("expected fraction error")
	}
	if _, err := p.Subsample(1.1, 1); err == nil {
		t.Error("expected fraction error")
	}
	sub, err := p.Subsample(0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := p.N() / 4
	if sub.N() != want {
		t.Errorf("subsample N = %d, want %d", sub.N(), want)
	}
	// Deterministic for the same seed.
	sub2, err := p.Subsample(0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sub.N(); i++ {
		if sub.Tag[i] != sub2.Tag[i] {
			t.Fatal("same seed gave a different sample")
		}
	}
	// No duplicates, order preserved.
	for i := 1; i < sub.N(); i++ {
		if sub.Tag[i] <= sub.Tag[i-1] {
			t.Fatalf("subsample not order-preserving without duplicates at %d", i)
		}
	}
	// Edge fractions.
	all, err := p.Subsample(1, 2)
	if err != nil || all.N() != p.N() {
		t.Errorf("fraction 1: N=%d err=%v", all.N(), err)
	}
	none, err := p.Subsample(0, 2)
	if err != nil || none.N() != 0 {
		t.Errorf("fraction 0: N=%d err=%v", none.N(), err)
	}
}

// Momentum conservation: gravity is internal, so one KDK step must not
// change the total momentum beyond discretization noise. CIC deposit and
// CIC force interpolation share the same kernel, which is what makes the
// PM scheme momentum-conserving.
func TestStepConservesMomentum(t *testing.T) {
	c := cosmo.Default()
	np := 16
	box := 32.0
	p := lattice(np, box)
	// Perturb the lattice so forces are nonzero.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < p.N(); i++ {
		p.X[i] += rng.NormFloat64() * 0.3
		p.Y[i] += rng.NormFloat64() * 0.3
		p.Z[i] += rng.NormFloat64() * 0.3
	}
	p.WrapPeriodic(box)
	s, err := NewSimulation(c, box, np, p, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	sumMomentum := func() (float64, float64, float64) {
		var px, py, pz float64
		for i := 0; i < p.N(); i++ {
			px += p.VX[i]
			py += p.VY[i]
			pz += p.VZ[i]
		}
		return px, py, pz
	}
	// Scale of the individual kicks, for a meaningful tolerance.
	if err := s.Step(0.01); err != nil {
		t.Fatal(err)
	}
	kickScale := 0.0
	for i := 0; i < p.N(); i++ {
		kickScale += math.Abs(p.VX[i]) + math.Abs(p.VY[i]) + math.Abs(p.VZ[i])
	}
	px, py, pz := sumMomentum()
	drift := math.Abs(px) + math.Abs(py) + math.Abs(pz)
	if drift > 1e-6*kickScale {
		t.Errorf("net momentum %.3g vs kick scale %.3g", drift, kickScale)
	}
}
