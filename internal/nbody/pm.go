package nbody

import (
	"fmt"

	"repro/internal/cosmo"
	"repro/internal/fft"
	"repro/internal/grid"
)

// Simulation is a particle-mesh N-body run in a periodic comoving box.
//
// Code units: lengths in Mpc/h, H0 = 1, and velocities are the canonical
// momenta p = a² dx/dt. With those choices the equations of motion are
//
//	dx/da = p / (a³ E(a))
//	dp/da = -∇φ / (a E(a))
//	∇²φ   = (3/2) Ωm δ / a
//
// which the KDK (kick-drift-kick) leapfrog integrates in equal steps of the
// scale factor a, the same time variable HACC production runs report
// snapshots in (the paper labels outputs by redshift).
type Simulation struct {
	Cosmo cosmo.Params
	// Box is the comoving box side in Mpc/h.
	Box float64
	// NG is the PM grid dimension (cells per side); must be a power of two
	// for the FFT.
	NG int
	// P holds the particles.
	P *Particles
	// A is the current scale factor.
	A float64

	// Sched pins the integration plan of the current Run and StepIndex the
	// progress through it, so a checkpointed simulation resumes on exactly
	// the same step boundaries (see Schedule). Seed records the RNG seed
	// the initial conditions were drawn from: the generator's state is
	// fully consumed into the particle data by IC generation, so the seed
	// plus the particle arrays are the complete random state a restart
	// needs (checkpoints carry both).
	Sched     Schedule
	StepIndex int
	Seed      int64

	// scratch
	rho          *grid.Scalar
	phi          *grid.Scalar
	gx, gy, gz   *grid.Scalar
	cube         *fft.Cube
	forcesACache float64
	forcesValid  bool
}

// NewSimulation prepares a simulation over the given particles starting at
// scale factor a0.
func NewSimulation(p cosmo.Params, box float64, ng int, particles *Particles, a0 float64) (*Simulation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if box <= 0 {
		return nil, fmt.Errorf("nbody: box size %g must be positive", box)
	}
	if !fft.IsPow2(ng) {
		return nil, fmt.Errorf("nbody: grid dimension %d must be a power of two", ng)
	}
	// Allow a hair past a=1: accumulated floating-point drift of a full
	// run's steps can land at 1+ulp, and restarts from such a state are
	// legitimate.
	if a0 <= 0 || a0 > 1.001 {
		return nil, fmt.Errorf("nbody: initial scale factor %g out of (0, 1]", a0)
	}
	if err := particles.Validate(); err != nil {
		return nil, err
	}
	s := &Simulation{Cosmo: p, Box: box, NG: ng, P: particles, A: a0}
	var err error
	for _, g := range []**grid.Scalar{&s.rho, &s.phi, &s.gx, &s.gy, &s.gz} {
		if *g, err = grid.NewScalar(ng, box); err != nil {
			return nil, err
		}
	}
	if s.cube, err = fft.NewCube(ng); err != nil {
		return nil, err
	}
	return s, nil
}

// Redshift returns the current redshift.
func (s *Simulation) Redshift() float64 { return cosmo.Redshift(s.A) }

// computeForces lays the particles onto the grid with CIC, solves the
// Poisson equation in k-space, differentiates the potential, and leaves the
// acceleration components on gx/gy/gz ready for CIC interpolation back to
// the particles. This is the HACC long-range (PM) force path.
func (s *Simulation) computeForces() error {
	if s.forcesValid && s.forcesACache == s.A {
		return nil
	}
	// Density contrast.
	s.rho.Fill(0)
	for i := 0; i < s.P.N(); i++ {
		s.rho.DepositCIC(s.P.X[i], s.P.Y[i], s.P.Z[i], 1)
	}
	if err := s.rho.ToDensityContrast(); err != nil {
		return err
	}
	// Poisson solve: phi(k) = -(3/2 Ωm/a) delta(k) / k².
	for i, v := range s.rho.Data {
		s.cube.Data[i] = complex(v, 0)
	}
	if err := s.cube.Forward3D(); err != nil {
		return err
	}
	prefactor := 1.5 * s.Cosmo.OmegaM / s.A
	s.cube.SolvePoisson(s.Box, prefactor)
	if err := s.cube.Inverse3D(); err != nil {
		return err
	}
	for i := range s.phi.Data {
		s.phi.Data[i] = real(s.cube.Data[i])
	}
	// Acceleration = -grad phi.
	if err := s.phi.Gradient(0, s.gx); err != nil {
		return err
	}
	if err := s.phi.Gradient(1, s.gy); err != nil {
		return err
	}
	if err := s.phi.Gradient(2, s.gz); err != nil {
		return err
	}
	for i := range s.gx.Data {
		s.gx.Data[i] = -s.gx.Data[i]
		s.gy.Data[i] = -s.gy.Data[i]
		s.gz.Data[i] = -s.gz.Data[i]
	}
	s.forcesValid = true
	s.forcesACache = s.A
	return nil
}

// AccelAt interpolates the current acceleration field to a position. The
// force field must be current (Step keeps it so); callers outside Step
// should not rely on it.
func (s *Simulation) AccelAt(x, y, z float64) (ax, ay, az float64) {
	return s.gx.InterpolateCIC(x, y, z), s.gy.InterpolateCIC(x, y, z), s.gz.InterpolateCIC(x, y, z)
}

// Step advances the simulation by da with one KDK leapfrog step.
func (s *Simulation) Step(da float64) error {
	if da <= 0 {
		return fmt.Errorf("nbody: step da=%g must be positive", da)
	}
	if err := s.computeForces(); err != nil {
		return err
	}
	half := da / 2
	// Kick (half step) at current a.
	kick := half / (s.A * s.Cosmo.E(s.A))
	p := s.P
	for i := 0; i < p.N(); i++ {
		ax, ay, az := s.AccelAt(p.X[i], p.Y[i], p.Z[i])
		p.VX[i] += ax * kick
		p.VY[i] += ay * kick
		p.VZ[i] += az * kick
	}
	// Drift (full step) at midpoint a.
	am := s.A + half
	drift := da / (am * am * am * s.Cosmo.E(am))
	for i := 0; i < p.N(); i++ {
		p.X[i] = wrapPos(p.X[i]+p.VX[i]*drift, s.Box)
		p.Y[i] = wrapPos(p.Y[i]+p.VY[i]*drift, s.Box)
		p.Z[i] = wrapPos(p.Z[i]+p.VZ[i]*drift, s.Box)
	}
	// Kick (half step) at new a with fresh forces.
	s.A += da
	s.forcesValid = false
	if err := s.computeForces(); err != nil {
		return err
	}
	kick = half / (s.A * s.Cosmo.E(s.A))
	for i := 0; i < p.N(); i++ {
		ax, ay, az := s.AccelAt(p.X[i], p.Y[i], p.Z[i])
		p.VX[i] += ax * kick
		p.VY[i] += ay * kick
		p.VZ[i] += az * kick
	}
	return nil
}

// Schedule is the integration plan of one Run: the scale-factor interval
// and total step count. The step size is always derived as
// (AEnd-A0)/TotalSteps from these pinned endpoints — never from the
// current scale factor — so a run restarted from a checkpoint takes
// bit-identical steps to the uninterrupted original: run 0→N equals
// run 0→k plus restart k→N exactly, down to the last ulp.
type Schedule struct {
	// A0 and AEnd bound the integration in scale factor.
	A0, AEnd float64
	// TotalSteps is the number of equal steps covering [A0, AEnd].
	TotalSteps int
}

// Validate reports schedule construction errors.
func (sc Schedule) Validate() error {
	if sc.TotalSteps <= 0 {
		return fmt.Errorf("nbody: schedule steps %d must be positive", sc.TotalSteps)
	}
	if sc.AEnd <= sc.A0 {
		return fmt.Errorf("nbody: schedule aEnd=%g must exceed a0=%g", sc.AEnd, sc.A0)
	}
	return nil
}

// Run advances from the current scale factor to aEnd in nSteps equal steps,
// invoking cb (if non-nil) after every step with the 1-based step number.
// cb is the hook CosmoTools attaches to: it is called inside the main
// physics loop exactly as the paper's in-situ framework is (§3.1). Run
// pins the schedule and resets step progress; a simulation loaded from a
// checkpoint continues its original schedule with Resume instead.
func (s *Simulation) Run(aEnd float64, nSteps int, cb func(step int) error) error {
	s.Sched = Schedule{A0: s.A, AEnd: aEnd, TotalSteps: nSteps}
	s.StepIndex = 0
	return s.resume(cb)
}

// Resume continues the pinned schedule from the current StepIndex — the
// restart path for checkpointed runs. cb receives absolute step numbers
// (StepIndex+1 .. TotalSteps), so per-step output naming continues where
// the original run left off.
func (s *Simulation) Resume(cb func(step int) error) error {
	if err := s.Sched.Validate(); err != nil {
		return err
	}
	if s.StepIndex >= s.Sched.TotalSteps {
		return nil // schedule already complete
	}
	return s.resume(cb)
}

func (s *Simulation) resume(cb func(step int) error) error {
	if err := s.Sched.Validate(); err != nil {
		return err
	}
	da := (s.Sched.AEnd - s.Sched.A0) / float64(s.Sched.TotalSteps)
	for s.StepIndex < s.Sched.TotalSteps {
		if err := s.Step(da); err != nil {
			return err
		}
		s.StepIndex++
		if cb != nil {
			if err := cb(s.StepIndex); err != nil {
				return err
			}
		}
	}
	return nil
}

// DensityContrast deposits the current particles and returns the density
// contrast grid (a copy, safe to retain).
func (s *Simulation) DensityContrast() (*grid.Scalar, error) {
	g, err := grid.NewScalar(s.NG, s.Box)
	if err != nil {
		return nil, err
	}
	for i := 0; i < s.P.N(); i++ {
		g.DepositCIC(s.P.X[i], s.P.Y[i], s.P.Z[i], 1)
	}
	if err := g.ToDensityContrast(); err != nil {
		return nil, err
	}
	return g, nil
}
