package nbody

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/mpi"
)

func TestSlabBounds(t *testing.T) {
	lo, hi := SlabBounds(0, 4, 16)
	if lo != 0 || hi != 4 {
		t.Errorf("rank 0: [%v, %v)", lo, hi)
	}
	lo, hi = SlabBounds(3, 4, 16)
	if lo != 12 || hi != 16 {
		t.Errorf("rank 3: [%v, %v)", lo, hi)
	}
	// Non-dividing sizes: the last rank absorbs rounding.
	lo, hi = SlabBounds(2, 3, 10)
	if math.Abs(lo-20.0/3) > 1e-12 || hi != 10 {
		t.Errorf("rank 2/3: [%v, %v)", lo, hi)
	}
}

func TestSlabOwner(t *testing.T) {
	if SlabOwner(0, 4, 16) != 0 || SlabOwner(15.9, 4, 16) != 3 {
		t.Error("edge owners wrong")
	}
	if SlabOwner(4.0, 4, 16) != 1 {
		t.Error("boundary should belong to the upper slab")
	}
	// Wrapped coordinates.
	if SlabOwner(-0.5, 4, 16) != 3 || SlabOwner(16.5, 4, 16) != 0 {
		t.Error("periodic wrapping wrong")
	}
	// Rounding at the very top edge cannot produce an invalid rank.
	if r := SlabOwner(15.999999999999998, 4, 16); r != 3 {
		t.Errorf("top edge owner = %d", r)
	}
}

// Distribute must deliver every particle to exactly its owner rank.
func TestDistribute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	box := 16.0
	all := NewParticles(0)
	for i := 0; i < 300; i++ {
		all.Append(rng.Float64()*box, rng.Float64()*box, rng.Float64()*box, 0, 0, 0, int64(i))
	}
	var mu sync.Mutex
	gotTags := map[int64]int{} // tag -> rank
	total := 0
	err := mpi.RunRanks(4, func(c *mpi.Comm) error {
		// Start with a round-robin (wrong) distribution.
		local := NewParticles(0)
		for i := c.Rank(); i < all.N(); i += c.Size() {
			local.AppendFrom(all, i)
		}
		mine, err := Distribute(c, local, box)
		if err != nil {
			return err
		}
		for i := 0; i < mine.N(); i++ {
			if SlabOwner(mine.X[i], c.Size(), box) != c.Rank() {
				return fmt.Errorf("rank %d holds foreign particle x=%v", c.Rank(), mine.X[i])
			}
		}
		mu.Lock()
		for i := 0; i < mine.N(); i++ {
			if prev, dup := gotTags[mine.Tag[i]]; dup {
				mu.Unlock()
				return fmt.Errorf("tag %d on ranks %d and %d", mine.Tag[i], prev, c.Rank())
			}
			gotTags[mine.Tag[i]] = c.Rank()
		}
		total += mine.N()
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != all.N() {
		t.Errorf("distributed %d of %d", total, all.N())
	}
}

func TestDistributeRejectsInvalidParticles(t *testing.T) {
	err := mpi.RunRanks(2, func(c *mpi.Comm) error {
		bad := NewParticles(2)
		bad.VX = bad.VX[:1]
		if _, err := Distribute(c, bad, 10); err == nil {
			return fmt.Errorf("expected validation error")
		}
		// Both ranks must still converge: run a valid exchange after.
		_, err := Distribute(c, NewParticles(0), 10)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ExchangeOverload must hand each rank exactly the neighbour particles
// within the overload distance of its slab, including across the periodic
// wrap.
func TestExchangeOverload(t *testing.T) {
	box := 16.0
	ow := 1.0
	// One particle per interesting location.
	all := NewParticles(0)
	positions := []float64{0.5, 3.5, 4.5, 7.5, 8.5, 11.5, 12.5, 15.5}
	for i, x := range positions {
		all.Append(x, 8, 8, 0, 0, 0, int64(i))
	}
	var mu sync.Mutex
	ghostsByRank := map[int][]int64{}
	err := mpi.RunRanks(4, func(c *mpi.Comm) error {
		var idx []int
		for i := 0; i < all.N(); i++ {
			if SlabOwner(all.X[i], c.Size(), box) == c.Rank() {
				idx = append(idx, i)
			}
		}
		ghosts, err := ExchangeOverload(c, all.Select(idx), box, ow)
		if err != nil {
			return err
		}
		mu.Lock()
		for i := 0; i < ghosts.N(); i++ {
			ghostsByRank[c.Rank()] = append(ghostsByRank[c.Rank()], ghosts.Tag[i])
		}
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 0 owns [0,4): ghosts are x=15.5 (tag 7, across the wrap) and
	// x=4.5 (tag 2).
	want := map[int][]int64{
		0: {2, 7},
		1: {1, 4}, // x=3.5 and x=8.5
		2: {3, 6}, // x=7.5 and x=12.5
		3: {0, 5}, // x=0.5 (wrap) and x=11.5
	}
	for rank, tags := range want {
		got := append([]int64(nil), ghostsByRank[rank]...)
		sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
		if len(got) != len(tags) {
			t.Fatalf("rank %d ghosts = %v, want %v", rank, got, tags)
		}
		for i := range tags {
			if got[i] != tags[i] {
				t.Fatalf("rank %d ghosts = %v, want %v", rank, got, tags)
			}
		}
	}
}

func TestExchangeOverloadValidation(t *testing.T) {
	err := mpi.RunRanks(2, func(c *mpi.Comm) error {
		if _, err := ExchangeOverload(c, NewParticles(0), 16, 0); err == nil {
			return fmt.Errorf("expected overload error")
		}
		if _, err := ExchangeOverload(c, NewParticles(0), 16, 9); err == nil {
			return fmt.Errorf("expected slab-width error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestExchangeOverloadSingleRank(t *testing.T) {
	err := mpi.RunRanks(1, func(c *mpi.Comm) error {
		p := NewParticles(0)
		p.Append(1, 1, 1, 0, 0, 0, 0)
		ghosts, err := ExchangeOverload(c, p, 16, 1)
		if err != nil {
			return err
		}
		if ghosts.N() != 0 {
			return fmt.Errorf("single rank should get no ghosts")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Two ranks: left and right neighbours coincide; both edges' particles
// must arrive exactly once each.
func TestExchangeOverloadTwoRanks(t *testing.T) {
	box := 8.0
	all := NewParticles(0)
	all.Append(0.5, 1, 1, 0, 0, 0, 0) // rank 0 low edge
	all.Append(3.5, 1, 1, 0, 0, 0, 1) // rank 0 high edge
	all.Append(2.0, 1, 1, 0, 0, 0, 2) // rank 0 interior
	all.Append(4.5, 1, 1, 0, 0, 0, 3) // rank 1 low edge
	all.Append(7.5, 1, 1, 0, 0, 0, 4) // rank 1 high edge
	all.Append(6.0, 1, 1, 0, 0, 0, 5) // rank 1 interior
	var mu sync.Mutex
	got := map[int][]int64{}
	err := mpi.RunRanks(2, func(c *mpi.Comm) error {
		var idx []int
		for i := 0; i < all.N(); i++ {
			if SlabOwner(all.X[i], 2, box) == c.Rank() {
				idx = append(idx, i)
			}
		}
		ghosts, err := ExchangeOverload(c, all.Select(idx), box, 1)
		if err != nil {
			return err
		}
		mu.Lock()
		got[c.Rank()] = append([]int64(nil), ghosts.Tag...)
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, tags := range got {
		sort.Slice(tags, func(a, b int) bool { return tags[a] < tags[b] })
		var want []int64
		if rank == 0 {
			want = []int64{3, 4}
		} else {
			want = []int64{0, 1}
		}
		if len(tags) != 2 || tags[0] != want[0] || tags[1] != want[1] {
			t.Errorf("rank %d ghosts = %v, want %v", rank, tags, want)
		}
	}
}
