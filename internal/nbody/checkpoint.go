package nbody

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/cosmo"
)

// Checkpoint / restart support. The production runs the paper draws on
// treat checkpoint data as a separate stream from analysis outputs (the
// Outer Rim's "5 Pbytes of raw outputs (not including check-point restart
// files)", §1): checkpoints carry full-precision state so a restarted run
// is bit-identical, unlike the float32 Level 1 analysis records of
// internal/gio.

const checkpointMagic = "HACCCKPT"
const checkpointVersion = 1

// SaveCheckpoint serializes the full simulation state (parameters, box,
// grid size, scale factor, and float64 particle data) with a CRC32
// trailer.
func (s *Simulation) SaveCheckpoint(w io.Writer) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriter(io.MultiWriter(w, crc))
	if _, err := bw.WriteString(checkpointMagic); err != nil {
		return err
	}
	head := []any{
		uint32(checkpointVersion),
		uint64(s.P.N()),
		uint32(s.NG),
		s.Box,
		s.A,
		s.Cosmo.OmegaM, s.Cosmo.OmegaL, s.Cosmo.OmegaB,
		s.Cosmo.H0, s.Cosmo.Sigma8, s.Cosmo.NS,
	}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	for _, arr := range [][]float64{s.P.X, s.P.Y, s.P.Z, s.P.VX, s.P.VY, s.P.VZ} {
		if err := binary.Write(bw, binary.LittleEndian, arr); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, s.P.Tag); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// Trailer: checksum of everything written so far (not itself).
	return binary.Write(w, binary.LittleEndian, crc.Sum32())
}

// LoadCheckpoint reconstructs a simulation from a checkpoint stream. The
// stream is read fully before parsing so the CRC trailer can be verified
// over the exact payload.
func LoadCheckpoint(r io.Reader) (*Simulation, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("nbody: reading checkpoint: %w", err)
	}
	if len(data) < len(checkpointMagic)+4 {
		return nil, fmt.Errorf("nbody: checkpoint too short (%d bytes)", len(data))
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("nbody: checkpoint checksum mismatch: %08x != %08x", got, want)
	}
	br := bytes.NewReader(payload)
	magic := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nbody: checkpoint magic: %w", err)
	}
	if string(magic) != checkpointMagic {
		return nil, fmt.Errorf("nbody: bad checkpoint magic %q", magic)
	}
	var version uint32
	var n uint64
	var ng uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("nbody: unsupported checkpoint version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &ng); err != nil {
		return nil, err
	}
	var box, a float64
	var params cosmo.Params
	for _, dst := range []*float64{&box, &a, &params.OmegaM, &params.OmegaL, &params.OmegaB, &params.H0, &params.Sigma8, &params.NS} {
		if err := binary.Read(br, binary.LittleEndian, dst); err != nil {
			return nil, err
		}
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("nbody: unreasonable particle count %d", n)
	}
	p := NewParticles(int(n))
	for _, arr := range [][]float64{p.X, p.Y, p.Z, p.VX, p.VY, p.VZ} {
		if err := binary.Read(br, binary.LittleEndian, arr); err != nil {
			return nil, fmt.Errorf("nbody: checkpoint particles: %w", err)
		}
	}
	if err := binary.Read(br, binary.LittleEndian, p.Tag); err != nil {
		return nil, fmt.Errorf("nbody: checkpoint tags: %w", err)
	}
	return NewSimulation(params, box, int(ng), p, a)
}

// SaveCheckpointFile writes a checkpoint to a path.
func (s *Simulation) SaveCheckpointFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.SaveCheckpoint(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadCheckpointFile reads a checkpoint from a path.
func LoadCheckpointFile(path string) (*Simulation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadCheckpoint(f)
}
