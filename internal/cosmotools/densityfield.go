package cosmotools

import (
	"repro/internal/grid"
)

// DensityField emits the CIC density-contrast grid as a Level 2 data
// product — Table 1 lists "density fields" among the Level 2 examples.
// The grid can be coarser than the force mesh (Resolution), trading
// fidelity for output volume exactly as production runs do.
type DensityField struct {
	sched EverySchedule
	// Resolution is the output mesh dimension.
	Resolution int
}

// NewDensityField returns the algorithm with a 32³ default mesh.
func NewDensityField() *DensityField {
	return &DensityField{sched: EverySchedule{Every: 1}, Resolution: 32}
}

// Name implements Algorithm.
func (d *DensityField) Name() string { return "densityfield" }

// SetParameters implements Algorithm. Keys: every, steps, resolution.
func (d *DensityField) SetParameters(params map[string]string) error {
	sched, err := MaybeParseSchedule(params, d.sched)
	if err != nil {
		return err
	}
	d.sched = sched
	if d.Resolution, err = IntParam(params, "resolution", d.Resolution); err != nil {
		return err
	}
	return nil
}

// ShouldExecute implements Algorithm.
func (d *DensityField) ShouldExecute(ctx *Context) bool { return d.sched.ShouldRun(ctx.Step) }

// Execute implements Algorithm, storing "densityfield/delta" (a
// *grid.Scalar density contrast, serializable via its WriteField method).
func (d *DensityField) Execute(ctx *Context) error {
	g, err := grid.NewScalar(d.Resolution, ctx.Box)
	if err != nil {
		return err
	}
	p := ctx.Particles
	for i := 0; i < p.N(); i++ {
		g.DepositCIC(p.X[i], p.Y[i], p.Z[i], 1)
	}
	if err := g.ToDensityContrast(); err != nil {
		return err
	}
	ctx.Outputs["densityfield/delta"] = g
	return nil
}
