package cosmotools

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/grid"

	"repro/internal/halo"
	"repro/internal/nbody"
	"repro/internal/powerspec"
)

// testParticles builds a box with two clusters (one large, one small) and
// background noise.
func testParticles(seed int64) (*nbody.Particles, float64) {
	rng := rand.New(rand.NewSource(seed))
	box := 16.0
	p := nbody.NewParticles(0)
	tag := int64(0)
	add := func(n int, cx, cy, cz, r float64) {
		for i := 0; i < n; i++ {
			p.Append(cx+(rng.Float64()-0.5)*r, cy+(rng.Float64()-0.5)*r, cz+(rng.Float64()-0.5)*r,
				rng.NormFloat64()*0.01, rng.NormFloat64()*0.01, rng.NormFloat64()*0.01, tag)
			tag++
		}
	}
	add(400, 4, 4, 4, 0.4)
	add(100, 12, 12, 12, 0.3)
	for i := 0; i < 200; i++ {
		p.Append(rng.Float64()*box, rng.Float64()*box, rng.Float64()*box, 0, 0, 0, tag)
		tag++
	}
	return p, box
}

// --- Config parsing ---

func TestParseConfig(t *testing.T) {
	input := `
# comment
global_key = 1

[powerspectrum]
every = 5
grid = 64

[halofinder]
linking_length = 0.2
steps = 10, 20, 30
`
	cfg, err := ParseConfig(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.SectionNames(); len(got) != 2 || got[0] != "powerspectrum" || got[1] != "halofinder" {
		t.Errorf("sections = %v", got)
	}
	if v, ok := cfg.Lookup("powerspectrum", "every"); !ok || v != "5" {
		t.Errorf("every = %q %v", v, ok)
	}
	if v := cfg.Global()["global_key"]; v != "1" {
		t.Errorf("global = %q", v)
	}
	if keys := cfg.Keys("halofinder"); len(keys) != 2 || keys[0] != "linking_length" {
		t.Errorf("keys = %v", keys)
	}
	if _, ok := cfg.Lookup("missing", "x"); ok {
		t.Error("missing section lookup should fail")
	}
}

func TestParseConfigErrors(t *testing.T) {
	bad := []string{
		"[unclosed\nkey=1",
		"[]\n",
		"keywithoutvalue\n",
		"= novalue\n",
	}
	for i, s := range bad {
		if _, err := ParseConfig(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule(map[string]string{"every": "5", "steps": "3, 7"})
	if err != nil {
		t.Fatal(err)
	}
	if !s.ShouldRun(5) || !s.ShouldRun(10) || !s.ShouldRun(3) || !s.ShouldRun(7) {
		t.Error("schedule misses expected steps")
	}
	if s.ShouldRun(4) {
		t.Error("schedule fired at step 4")
	}
	if _, err := ParseSchedule(map[string]string{"every": "x"}); err == nil {
		t.Error("expected error for bad every")
	}
	if _, err := ParseSchedule(map[string]string{"steps": "1,a"}); err == nil {
		t.Error("expected error for bad steps")
	}
	// every=0 with no steps: never runs.
	s2, _ := ParseSchedule(map[string]string{"every": "0"})
	if s2.ShouldRun(1) || s2.ShouldRun(100) {
		t.Error("disabled schedule fired")
	}
}

func TestParamHelpers(t *testing.T) {
	params := map[string]string{"f": "2.5", "i": "7", "b": "true", "bad": "zzz"}
	if v, err := FloatParam(params, "f", 0); err != nil || v != 2.5 {
		t.Errorf("float = %v %v", v, err)
	}
	if v, err := FloatParam(params, "missing", 9); err != nil || v != 9 {
		t.Errorf("float default = %v %v", v, err)
	}
	if _, err := FloatParam(params, "bad", 0); err == nil {
		t.Error("expected float error")
	}
	if v, err := IntParam(params, "i", 0); err != nil || v != 7 {
		t.Errorf("int = %v %v", v, err)
	}
	if _, err := IntParam(params, "bad", 0); err == nil {
		t.Error("expected int error")
	}
	if v, err := BoolParam(params, "b", false); err != nil || !v {
		t.Errorf("bool = %v %v", v, err)
	}
	if _, err := BoolParam(params, "bad", false); err == nil {
		t.Error("expected bool error")
	}
}

// --- Manager ---

type fakeAlgo struct {
	name     string
	ran      []int
	params   map[string]string
	runEvery int
}

func (f *fakeAlgo) Name() string { return f.name }
func (f *fakeAlgo) SetParameters(p map[string]string) error {
	f.params = p
	return nil
}
func (f *fakeAlgo) ShouldExecute(ctx *Context) bool {
	return f.runEvery > 0 && ctx.Step%f.runEvery == 0
}
func (f *fakeAlgo) Execute(ctx *Context) error {
	f.ran = append(f.ran, ctx.Step)
	ctx.Outputs[f.name+"/out"] = ctx.Step
	return nil
}

func TestManagerRegisterRejectsDuplicates(t *testing.T) {
	var m Manager
	if err := m.Register(&fakeAlgo{name: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(&fakeAlgo{name: "a"}); err == nil {
		t.Error("expected duplicate error")
	}
	if got := m.Algorithms(); len(got) != 1 || got[0] != "a" {
		t.Errorf("algorithms = %v", got)
	}
}

func TestManagerExecuteHonoursShouldExecute(t *testing.T) {
	var m Manager
	a := &fakeAlgo{name: "a", runEvery: 2}
	b := &fakeAlgo{name: "b", runEvery: 3}
	if err := m.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Register(b); err != nil {
		t.Fatal(err)
	}
	p := nbody.NewParticles(0)
	for step := 1; step <= 6; step++ {
		ctx := NewContext(step, 0.5, 10, 1, p)
		if err := m.Execute(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if fmt.Sprint(a.ran) != "[2 4 6]" {
		t.Errorf("a ran %v", a.ran)
	}
	if fmt.Sprint(b.ran) != "[3 6]" {
		t.Errorf("b ran %v", b.ran)
	}
}

func TestManagerConfigure(t *testing.T) {
	var m Manager
	a := &fakeAlgo{name: "a"}
	if err := m.Register(a); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfig(strings.NewReader("[a]\nkey = val\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	if a.params["key"] != "val" {
		t.Errorf("params = %v", a.params)
	}
	bad, _ := ParseConfig(strings.NewReader("[nosuch]\nk=1\n"))
	if err := m.Configure(bad); err == nil {
		t.Error("expected error for unknown section")
	}
}

func TestContextRecordsTimings(t *testing.T) {
	// A fake clock advancing one second per reading: timing comes from the
	// injected source, never the wall.
	var m Manager
	tick := 0
	m.Clock = func() time.Time {
		tick++
		return time.Unix(int64(tick), 0)
	}
	a := &fakeAlgo{name: "a", runEvery: 1}
	if err := m.Register(a); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1, 0.5, 10, 1, nbody.NewParticles(0))
	if err := m.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Timings["a"]; got != time.Second {
		t.Errorf("timing = %v, want 1s from the fake clock", got)
	}
	if keys := ctx.SortedOutputKeys(); len(keys) != 1 || keys[0] != "a/out" {
		t.Errorf("keys = %v", keys)
	}
}

func TestExecuteWithoutClockRecordsNoTimings(t *testing.T) {
	var m Manager
	if err := m.Register(&fakeAlgo{name: "a", runEvery: 1}); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1, 0.5, 10, 1, nbody.NewParticles(0))
	if err := m.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if len(ctx.Timings) != 0 {
		t.Errorf("timings = %v, want none without a clock", ctx.Timings)
	}
}

func TestNewContextDerivesRedshift(t *testing.T) {
	ctx := NewContext(1, 0.25, 10, 1, nil)
	if ctx.Redshift != 3 {
		t.Errorf("z = %v", ctx.Redshift)
	}
}

// --- Real algorithms end-to-end ---

func TestPowerSpectrumAlgorithm(t *testing.T) {
	p, box := testParticles(1)
	ps := NewPowerSpectrum()
	if err := ps.SetParameters(map[string]string{"grid": "16", "bins": "8", "every": "2"}); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(2, 1, box, 1, p)
	if !ps.ShouldExecute(ctx) {
		t.Fatal("should execute at step 2")
	}
	if err := ps.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	res := ctx.Outputs["powerspectrum/pk"].(*powerspec.Result)
	if len(res.P) != 8 {
		t.Errorf("bins = %d", len(res.P))
	}
	ctx3 := NewContext(3, 1, box, 1, p)
	if ps.ShouldExecute(ctx3) {
		t.Error("should not execute at step 3")
	}
}

func TestHaloFinderWithoutSplit(t *testing.T) {
	p, box := testParticles(2)
	hf := NewHaloFinder()
	if err := hf.SetParameters(map[string]string{
		"linking_length": "0.3", "min_size": "50", "split_threshold": "0",
	}); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1, 1, box, 1, p)
	if err := hf.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	cat := ctx.Outputs["halofinder/catalog"].(*halo.Catalog)
	if len(cat.Halos) < 2 {
		t.Fatalf("halos = %d", len(cat.Halos))
	}
	centers := ctx.Outputs["halofinder/centers"].([]CenterRecord)
	if len(centers) != len(cat.Halos) {
		t.Errorf("centers = %d, halos = %d", len(centers), len(cat.Halos))
	}
	l2 := ctx.Outputs["halofinder/level2"].(*Level2)
	if l2.Particles.N() != 0 {
		t.Errorf("level2 should be empty without split, got %d", l2.Particles.N())
	}
	// Catalog entries updated with MBP info.
	for i := range cat.Halos {
		if cat.Halos[i].MBPTag < 0 {
			t.Errorf("halo %d missing MBP tag", i)
		}
	}
}

func TestHaloFinderSplitExtractsLevel2(t *testing.T) {
	p, box := testParticles(3)
	hf := NewHaloFinder()
	if err := hf.SetParameters(map[string]string{
		"linking_length": "0.3", "min_size": "50", "split_threshold": "200",
	}); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1, 1, box, 1, p)
	if err := hf.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	cat := ctx.Outputs["halofinder/catalog"].(*halo.Catalog)
	centers := ctx.Outputs["halofinder/centers"].([]CenterRecord)
	l2 := ctx.Outputs["halofinder/level2"].(*Level2)
	// The 400-particle cluster exceeds the 200 threshold -> Level 2.
	if len(l2.Spans) != 1 {
		t.Fatalf("level2 spans = %d", len(l2.Spans))
	}
	span := l2.Spans[0]
	if span.End-span.Start != cat.Halos[0].Count() {
		t.Errorf("span size = %d, largest halo = %d", span.End-span.Start, cat.Halos[0].Count())
	}
	// Centers were found only for the small halo(s).
	for _, c := range centers {
		if c.Count > 200 {
			t.Errorf("center computed in-situ for halo of %d > threshold", c.Count)
		}
	}
	// The large halo's catalog entry has no MBP yet.
	if cat.Halos[0].MBP != -1 {
		t.Error("large halo should not have an in-situ MBP")
	}
}

func TestSOMassRequiresHaloFinder(t *testing.T) {
	p, box := testParticles(4)
	s := NewSOMass()
	ctx := NewContext(1, 1, box, 1, p)
	if err := s.Execute(ctx); err == nil {
		t.Error("expected dependency error")
	}
}

func TestSOMassAfterHaloFinder(t *testing.T) {
	p, box := testParticles(5)
	hf := NewHaloFinder()
	if err := hf.SetParameters(map[string]string{"linking_length": "0.3", "min_size": "50"}); err != nil {
		t.Fatal(err)
	}
	s := NewSOMass()
	// Reference density = mean particle density of the test box.
	rhoMean := float64(p.N()) / (box * box * box)
	if err := s.SetParameters(map[string]string{
		"delta": "20", "rho_ref": fmt.Sprint(rhoMean), "max_radius": "2", "min_particles": "20",
	}); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1, 1, box, 1, p)
	if err := hf.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if err := s.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	records := ctx.Outputs["somass/records"].([]SORecord)
	if len(records) == 0 {
		t.Fatal("no SO records")
	}
	for _, r := range records {
		if r.Mass <= 0 || r.Radius <= 0 || r.N < 20 {
			t.Errorf("bad record %+v", r)
		}
	}
}

func TestSubhaloFinderAfterHaloFinder(t *testing.T) {
	p, box := testParticles(6)
	hf := NewHaloFinder()
	if err := hf.SetParameters(map[string]string{"linking_length": "0.3", "min_size": "50"}); err != nil {
		t.Fatal(err)
	}
	sf := NewSubhaloFinder()
	if err := sf.SetParameters(map[string]string{"min_halo_size": "300", "k": "16", "min_size": "30"}); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1, 1, box, 1, p)
	if err := hf.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if err := sf.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	records := ctx.Outputs["subhalofinder/records"].([]SubhaloRecord)
	// Only the 400-particle halo exceeds min_halo_size 300.
	if len(records) != 1 {
		t.Fatalf("records = %d", len(records))
	}
	if records[0].ParentCount < 300 {
		t.Errorf("parent = %d", records[0].ParentCount)
	}
	if err := ctxDependencyError(sf); err != nil {
		t.Error(err)
	}
}

func ctxDependencyError(sf *SubhaloFinder) error {
	ctx := NewContext(1, 1, 10, 1, nbody.NewParticles(0))
	if err := sf.Execute(ctx); err == nil {
		return fmt.Errorf("expected dependency error without halofinder")
	}
	return nil
}

// Full pipeline through the manager with config-driven setup.
func TestManagerFullPipeline(t *testing.T) {
	p, box := testParticles(7)
	rhoMean := float64(p.N()) / (box * box * box)
	cfgText := fmt.Sprintf(`
[powerspectrum]
every = 1
grid = 16
bins = 8

[halofinder]
every = 1
linking_length = 0.3
min_size = 50
split_threshold = 300

[somass]
every = 1
delta = 20
rho_ref = %g
max_radius = 2

[subhalofinder]
every = 1
min_halo_size = 300
min_size = 30
`, rhoMean)
	cfg, err := ParseConfig(strings.NewReader(cfgText))
	if err != nil {
		t.Fatal(err)
	}
	var m Manager
	for _, a := range []Algorithm{NewPowerSpectrum(), NewHaloFinder(), NewSOMass(), NewSubhaloFinder()} {
		if err := m.Register(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Configure(cfg); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1, 1, box, 1, p)
	if err := m.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"powerspectrum/pk", "halofinder/catalog", "halofinder/centers", "halofinder/level2", "somass/records", "subhalofinder/records"} {
		if _, ok := ctx.Outputs[key]; !ok {
			t.Errorf("missing output %s (have %v)", key, ctx.SortedOutputKeys())
		}
	}
	for _, name := range m.Algorithms() {
		if ctx.Timings[name] < 0 {
			t.Errorf("no timing for %s", name)
		}
	}
}

func TestHaloPropertiesRequiresHaloFinder(t *testing.T) {
	p, box := testParticles(8)
	hp := NewHaloProperties()
	ctx := NewContext(1, 1, box, 1, p)
	if err := hp.Execute(ctx); err == nil {
		t.Error("expected dependency error")
	}
}

func TestHaloPropertiesRecords(t *testing.T) {
	p, box := testParticles(9)
	hf := NewHaloFinder()
	if err := hf.SetParameters(map[string]string{"linking_length": "0.3", "min_size": "50"}); err != nil {
		t.Fatal(err)
	}
	hp := NewHaloProperties()
	if err := hp.SetParameters(map[string]string{"min_halo_size": "80", "bins": "10"}); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1, 1, box, 1, p)
	if err := hf.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	if err := hp.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	records := ctx.Outputs["haloproperties/records"].([]PropertyRecord)
	if len(records) < 1 {
		t.Fatal("no property records")
	}
	for _, r := range records {
		if r.Count < 80 {
			t.Errorf("record below min size: %+v", r)
		}
		if r.BA <= 0 || r.BA > 1 || r.CA <= 0 || r.CA > r.BA+1e-9 {
			t.Errorf("bad axis ratios: %+v", r)
		}
		if r.SigmaV < 0 {
			t.Errorf("negative dispersion: %+v", r)
		}
	}
}

// The §3.3.2 claim at the workflow level: measuring the same halo's
// concentration around its MBP versus around a degraded (COM) center must
// not increase it.
func TestPropertiesCenterSensitivity(t *testing.T) {
	p, box := testParticles(10)
	hf := NewHaloFinder()
	if err := hf.SetParameters(map[string]string{"linking_length": "0.3", "min_size": "200"}); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1, 1, box, 1, p)
	if err := hf.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	cat := ctx.Outputs["halofinder/catalog"].(*halo.Catalog)
	if len(cat.Halos) == 0 {
		t.Skip("no big halo in this realization")
	}
	hl := &cat.Halos[0]
	withMBP, err := MeasureProperties(p, box, hl, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	noCenter := *hl
	noCenter.MBP = -1 // degrade to center of mass
	withCOM, err := MeasureProperties(p, box, &noCenter, 10, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if withMBP.Concentration == 0 || withCOM.Concentration == 0 {
		t.Skip("NFW fit unavailable for this halo")
	}
	// COM of a random test clump is close to the density peak, so allow
	// equality within noise; what must not happen is a big increase.
	if withCOM.Concentration > withMBP.Concentration*1.5 {
		t.Errorf("COM center concentration %v ≫ MBP %v", withCOM.Concentration, withMBP.Concentration)
	}
}

func TestHaloTrackerStateAcrossSteps(t *testing.T) {
	p1, box := testParticles(11)
	ht := NewHaloTracker()
	hf := NewHaloFinder()
	if err := hf.SetParameters(map[string]string{"linking_length": "0.3", "min_size": "50"}); err != nil {
		t.Fatal(err)
	}
	// Step 1: no links yet (no previous snapshot).
	ctx1 := NewContext(1, 0.9, box, 1, p1)
	if err := hf.Execute(ctx1); err != nil {
		t.Fatal(err)
	}
	if err := ht.Execute(ctx1); err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx1.Outputs["halotracker/links"]; ok {
		t.Error("first step should not emit links")
	}
	// Step 2: same particles slightly drifted -> persistent links.
	p2 := p1.Clone()
	for i := range p2.X {
		p2.X[i] += 0.01
	}
	p2.WrapPeriodic(box)
	ctx2 := NewContext(2, 1.0, box, 1, p2)
	if err := hf.Execute(ctx2); err != nil {
		t.Fatal(err)
	}
	if err := ht.Execute(ctx2); err != nil {
		t.Fatal(err)
	}
	out, ok := ctx2.Outputs["halotracker/links"].(TrackerOutput)
	if !ok {
		t.Fatal("no tracker output at step 2")
	}
	if out.FromStep != 1 || out.ToStep != 2 {
		t.Errorf("steps = %d -> %d", out.FromStep, out.ToStep)
	}
	if len(out.Matches.Links) == 0 {
		t.Error("no links between nearly identical snapshots")
	}
	for _, l := range out.Matches.Links {
		if l.ProgenitorTag != l.DescendantTag {
			t.Errorf("drifted halo changed identity: %+v", l)
		}
	}
}

func TestHaloTrackerRequiresHaloFinder(t *testing.T) {
	p, box := testParticles(12)
	ht := NewHaloTracker()
	ctx := NewContext(1, 1, box, 1, p)
	if err := ht.Execute(ctx); err == nil {
		t.Error("expected dependency error")
	}
}

func TestParticleSampler(t *testing.T) {
	p, box := testParticles(13)
	ps := NewParticleSampler()
	if err := ps.SetParameters(map[string]string{"fraction": "0.1", "seed": "7"}); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1, 1, box, 1, p)
	if err := ps.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	sub := ctx.Outputs["particlesampler/subsample"].(*nbody.Particles)
	want := p.N() / 10
	if sub.N() < want-2 || sub.N() > want+2 {
		t.Errorf("subsample N = %d, want ~%d", sub.N(), want)
	}
	// Different steps draw different samples.
	ctx2 := NewContext(2, 1, box, 1, p)
	if err := ps.Execute(ctx2); err != nil {
		t.Fatal(err)
	}
	sub2 := ctx2.Outputs["particlesampler/subsample"].(*nbody.Particles)
	same := sub.N() == sub2.N()
	if same {
		for i := 0; i < sub.N(); i++ {
			if sub.Tag[i] != sub2.Tag[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different steps drew identical samples")
	}
	if err := ps.SetParameters(map[string]string{"fraction": "1.5"}); err == nil {
		t.Error("expected fraction error")
	}
}

func TestDensityFieldAlgorithm(t *testing.T) {
	p, box := testParticles(14)
	df := NewDensityField()
	if err := df.SetParameters(map[string]string{"resolution": "16"}); err != nil {
		t.Fatal(err)
	}
	ctx := NewContext(1, 1, box, 1, p)
	if err := df.Execute(ctx); err != nil {
		t.Fatal(err)
	}
	g := ctx.Outputs["densityfield/delta"].(*grid.Scalar)
	if g.N != 16 || g.BoxSize != box {
		t.Errorf("grid = %d/%v", g.N, g.BoxSize)
	}
	// Density contrast has zero mean; the cluster cell is overdense.
	if math.Abs(g.Mean()) > 1e-9 {
		t.Errorf("mean delta = %v", g.Mean())
	}
	if g.At(4, 4, 4) < 1 { // the 400-particle cluster sits at (4,4,4)
		t.Errorf("cluster cell delta = %v, want overdense", g.At(4, 4, 4))
	}
	// Round-trip through the Level 2 serialization.
	var buf bytes.Buffer
	if err := g.WriteField(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := grid.ReadScalar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.At(4, 4, 4) != g.At(4, 4, 4) {
		t.Error("serialization round trip changed values")
	}
}

// SetParameters error paths and schedule handling for every algorithm,
// plus the interface identity methods the manager relies on.
func TestAllAlgorithmsParameterErrors(t *testing.T) {
	algos := map[string]Algorithm{
		"powerspectrum":   NewPowerSpectrum(),
		"halofinder":      NewHaloFinder(),
		"somass":          NewSOMass(),
		"subhalofinder":   NewSubhaloFinder(),
		"haloproperties":  NewHaloProperties(),
		"halotracker":     NewHaloTracker(),
		"particlesampler": NewParticleSampler(),
		"densityfield":    NewDensityField(),
	}
	numericKeys := map[string][]string{
		"powerspectrum":   {"grid", "bins"},
		"halofinder":      {"linking_length", "min_size", "split_threshold", "softening"},
		"somass":          {"delta", "rho_ref", "max_radius", "min_particles"},
		"subhalofinder":   {"min_halo_size", "k", "min_size", "softening"},
		"haloproperties":  {"min_halo_size", "bins", "rmin_fraction"},
		"halotracker":     {"min_shared"},
		"particlesampler": {"fraction", "seed"},
		"densityfield":    {"resolution"},
	}
	for name, a := range algos {
		if a.Name() != name {
			t.Errorf("%s: Name() = %q", name, a.Name())
		}
		// Bad schedule rejected everywhere.
		if err := a.SetParameters(map[string]string{"every": "zzz"}); err == nil {
			t.Errorf("%s: bad schedule accepted", name)
		}
		// Each numeric key rejects garbage.
		for _, key := range numericKeys[name] {
			if err := a.SetParameters(map[string]string{key: "not-a-number"}); err == nil {
				t.Errorf("%s: bad %s accepted", name, key)
			}
		}
		// Explicit schedule override works.
		if err := a.SetParameters(map[string]string{"every": "3"}); err != nil {
			t.Errorf("%s: valid schedule rejected: %v", name, err)
		}
		ctx := NewContext(3, 1, 10, 1, nbody.NewParticles(0))
		if !a.ShouldExecute(ctx) {
			t.Errorf("%s: should execute at step 3 with every=3", name)
		}
		ctx4 := NewContext(4, 1, 10, 1, nbody.NewParticles(0))
		if a.ShouldExecute(ctx4) {
			t.Errorf("%s: should not execute at step 4 with every=3", name)
		}
	}
}

func TestParseConfigFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/c.ini"
	if err := os.WriteFile(path, []byte("[s]\nk = v\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfigFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := cfg.Lookup("s", "k"); v != "v" {
		t.Errorf("k = %q", v)
	}
	if _, err := ParseConfigFile(dir + "/missing.ini"); err == nil {
		t.Error("expected missing-file error")
	}
}
