package cosmotools

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/center"
	"repro/internal/halo"
	"repro/internal/mpi"
	"repro/internal/nbody"
)

// clusteredBox builds a box with halos of several sizes, including one
// above the split threshold used in the tests (300).
func clusteredBox(seed int64) (*nbody.Particles, float64) {
	rng := rand.New(rand.NewSource(seed))
	box := 16.0
	p := nbody.NewParticles(0)
	tag := int64(0)
	add := func(n int, cx, cy, cz float64) {
		for i := 0; i < n; i++ {
			p.Append(
				wrap(cx+(rng.Float64()-0.5)*0.3, box),
				wrap(cy+(rng.Float64()-0.5)*0.3, box),
				wrap(cz+(rng.Float64()-0.5)*0.3, box),
				0, 0, 0, tag)
			tag++
		}
	}
	add(500, 3, 3, 3)   // above threshold
	add(120, 9, 9, 9)   // below
	add(80, 13, 4, 12)  // below
	add(60, 15.9, 8, 8) // below, straddles the wrap
	for i := 0; i < 150; i++ {
		p.Append(rng.Float64()*box, rng.Float64()*box, rng.Float64()*box, 0, 0, 0, tag)
		tag++
	}
	return p, box
}

func distribute(all *nbody.Particles, rank, size int, box float64) *nbody.Particles {
	var idx []int
	for i := 0; i < all.N(); i++ {
		if nbody.SlabOwner(all.X[i], size, box) == rank {
			idx = append(idx, i)
		}
	}
	return all.Select(idx)
}

// The distributed pipeline must reproduce the serial pipeline's complete
// center catalog exactly (same tags, counts and MBP tags).
func TestParallelAnalysisMatchesSerial(t *testing.T) {
	all, box := clusteredBox(1)
	fofOpts := halo.Options{LinkingLength: 0.35, MinSize: 20}
	threshold := 300
	co := center.Options{Mass: 1, Softening: 1e-3}

	// Serial reference.
	serialOpts := fofOpts
	serialOpts.Periodic = true
	refCat, err := halo.FOF(all, box, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	refCenters, refL2, err := SplitCenterFinding(all, box, refCat, threshold, co)
	if err != nil {
		t.Fatal(err)
	}
	refOffline, err := CentersForLevel2(refL2, box, co)
	if err != nil {
		t.Fatal(err)
	}
	refAll, err := MergeCenters(refCenters, refOffline)
	if err != nil {
		t.Fatal(err)
	}
	if len(refL2.Spans) == 0 {
		t.Fatal("test box has no halo above the threshold")
	}

	for _, ranks := range []int{1, 2, 4} {
		var mu sync.Mutex
		var gathered []CenterRecord
		var l2OnZero *Level2
		err := mpi.RunRanks(ranks, func(c *mpi.Comm) error {
			local := distribute(all, c.Rank(), c.Size(), box)
			prod, err := ParallelAnalysis(c, local, box, 2.0, fofOpts, threshold, co)
			if err != nil {
				//lint:allow mpicollective error path fires only on test failure, where the resulting stall surfaces as a test timeout
				return err
			}
			centers := GatherCenters(c, prod.Centers)
			l2 := GatherLevel2(c, prod.Level2)
			if c.Rank() == 0 {
				mu.Lock()
				gathered = centers
				l2OnZero = l2
				mu.Unlock()
			}
			return nil
		})
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		offline, err := CentersForLevel2(l2OnZero, box, co)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		merged, err := MergeCenters(gathered, offline)
		if err != nil {
			t.Fatalf("ranks=%d: %v", ranks, err)
		}
		if len(merged) != len(refAll) {
			t.Fatalf("ranks=%d: %d centers, want %d", ranks, len(merged), len(refAll))
		}
		for i := range merged {
			if merged[i].HaloTag != refAll[i].HaloTag ||
				merged[i].Count != refAll[i].Count ||
				merged[i].MBPTag != refAll[i].MBPTag {
				t.Fatalf("ranks=%d: center %d = %+v, want %+v", ranks, i, merged[i], refAll[i])
			}
		}
	}
}

func TestMergeCentersOfflineWins(t *testing.T) {
	inSitu := []CenterRecord{
		{HaloTag: 1, Count: 100, MBPTag: 11},
		{HaloTag: 5, Count: 50, MBPTag: 55},
	}
	offline := []CenterRecord{
		{HaloTag: 5, Count: 50, MBPTag: 99}, // supersedes
		{HaloTag: 9, Count: 500, MBPTag: 91},
	}
	merged, err := MergeCenters(inSitu, offline)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 {
		t.Fatalf("merged = %+v", merged)
	}
	if merged[0].HaloTag != 1 || merged[1].HaloTag != 5 || merged[2].HaloTag != 9 {
		t.Errorf("order = %+v", merged)
	}
	if merged[1].MBPTag != 99 {
		t.Errorf("off-line record should win: %+v", merged[1])
	}
}

func TestMergeCentersRejectsDuplicateInSitu(t *testing.T) {
	dup := []CenterRecord{{HaloTag: 1}, {HaloTag: 1}}
	if _, err := MergeCenters(dup, nil); err == nil {
		t.Error("expected duplicate error")
	}
}

func TestCentersForLevel2EmptySpan(t *testing.T) {
	l2 := &Level2{Particles: nbody.NewParticles(0), Spans: []Level2Span{{Tag: 3, Start: 0, End: 0}}}
	if _, err := CentersForLevel2(l2, 10, center.Options{}); err == nil {
		t.Error("expected empty-span error")
	}
}

func TestGatherLevel2RebasesSpans(t *testing.T) {
	err := mpi.RunRanks(3, func(c *mpi.Comm) error {
		// Each rank contributes one 2-particle halo.
		l2 := &Level2{Particles: nbody.NewParticles(0)}
		base := int64(c.Rank() * 10)
		l2.Particles.Append(float64(c.Rank()), 0, 0, 0, 0, 0, base)
		l2.Particles.Append(float64(c.Rank()), 1, 0, 0, 0, 0, base+1)
		l2.Spans = []Level2Span{{Tag: base, Start: 0, End: 2}}
		got := GatherLevel2(c, l2)
		if c.Rank() != 0 {
			if got.Particles.N() != 0 {
				return fmt.Errorf("rank %d should get empty product", c.Rank())
			}
			return nil
		}
		if got.Particles.N() != 6 || len(got.Spans) != 3 {
			return fmt.Errorf("gathered %d particles / %d spans", got.Particles.N(), len(got.Spans))
		}
		for _, span := range got.Spans {
			if span.End-span.Start != 2 {
				return fmt.Errorf("span %+v", span)
			}
			// The span's first particle must carry the span tag.
			if got.Particles.Tag[span.Start] != span.Tag {
				return fmt.Errorf("span %d points at tag %d", span.Tag, got.Particles.Tag[span.Start])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func wrap(x, l float64) float64 {
	for x < 0 {
		x += l
	}
	for x >= l {
		x -= l
	}
	return x
}
