package cosmotools

import (
	"fmt"

	"repro/internal/halo"
	"repro/internal/nbody"
	"repro/internal/tracking"
)

// HaloTracker links each analysis step's halo catalog to the previous
// one, building the evolution record the paper's introduction calls for
// ("track their evolution to the end of the simulation. Over time, halos
// merge and accrete mass", §3). It is the framework's example of a
// *stateful* in-situ algorithm: it retains the previous step's catalog and
// particle snapshot between invocations.
type HaloTracker struct {
	sched EverySchedule
	// MinShared is the match threshold in shared particles.
	MinShared int

	prevParticles *nbody.Particles
	prevCatalog   *halo.Catalog
	prevStep      int
}

// NewHaloTracker returns a tracker with defaults (track at every analysis
// step, 5 shared particles minimum).
func NewHaloTracker() *HaloTracker {
	return &HaloTracker{sched: EverySchedule{Every: 1}, MinShared: 5}
}

// Name implements Algorithm.
func (ht *HaloTracker) Name() string { return "halotracker" }

// SetParameters implements Algorithm. Keys: every, steps, min_shared.
func (ht *HaloTracker) SetParameters(params map[string]string) error {
	sched, err := MaybeParseSchedule(params, ht.sched)
	if err != nil {
		return err
	}
	ht.sched = sched
	if ht.MinShared, err = IntParam(params, "min_shared", ht.MinShared); err != nil {
		return err
	}
	return nil
}

// ShouldExecute implements Algorithm.
func (ht *HaloTracker) ShouldExecute(ctx *Context) bool { return ht.sched.ShouldRun(ctx.Step) }

// TrackerOutput is the per-step tracking product.
type TrackerOutput struct {
	// FromStep and ToStep identify the linked snapshots.
	FromStep, ToStep int
	// Matches holds the links, mergers and orphans.
	Matches *tracking.Matches
}

// Execute implements Algorithm, reading "halofinder/catalog" and — from
// the second invocation on — storing "halotracker/links". The previous
// snapshot is retained via a cloned particle set: the zero-copy rule
// applies to the live Level 1 data, while history state is the
// algorithm's own.
func (ht *HaloTracker) Execute(ctx *Context) error {
	catAny, ok := ctx.Outputs["halofinder/catalog"]
	if !ok {
		return fmt.Errorf("cosmotools: halotracker requires halofinder to run first")
	}
	cat := catAny.(*halo.Catalog)
	if ht.prevCatalog != nil {
		m, err := tracking.Match(ht.prevParticles, ht.prevCatalog, ctx.Particles, cat,
			tracking.Options{MinShared: ht.MinShared})
		if err != nil {
			return err
		}
		ctx.Outputs["halotracker/links"] = TrackerOutput{
			FromStep: ht.prevStep,
			ToStep:   ctx.Step,
			Matches:  m,
		}
	}
	ht.prevParticles = ctx.Particles.Clone()
	ht.prevCatalog = cat
	ht.prevStep = ctx.Step
	return nil
}

// ParticleSampler emits a uniform random subsample of the Level 1
// particles — the "subsamples of particles" Level 2 product of Table 1,
// used downstream for visualization and density-field studies without the
// full raw dump.
type ParticleSampler struct {
	sched EverySchedule
	// Fraction kept.
	Fraction float64
	// Seed for deterministic sampling; the step number is mixed in so each
	// step gets an independent sample.
	Seed int64
}

// NewParticleSampler returns a sampler with a 1% default fraction.
func NewParticleSampler() *ParticleSampler {
	return &ParticleSampler{sched: EverySchedule{Every: 1}, Fraction: 0.01, Seed: 42}
}

// Name implements Algorithm.
func (ps *ParticleSampler) Name() string { return "particlesampler" }

// SetParameters implements Algorithm. Keys: every, steps, fraction, seed.
func (ps *ParticleSampler) SetParameters(params map[string]string) error {
	sched, err := MaybeParseSchedule(params, ps.sched)
	if err != nil {
		return err
	}
	ps.sched = sched
	if ps.Fraction, err = FloatParam(params, "fraction", ps.Fraction); err != nil {
		return err
	}
	seed, err := IntParam(params, "seed", int(ps.Seed))
	if err != nil {
		return err
	}
	ps.Seed = int64(seed)
	if ps.Fraction < 0 || ps.Fraction > 1 {
		return fmt.Errorf("cosmotools: sampler fraction %g out of [0, 1]", ps.Fraction)
	}
	return nil
}

// ShouldExecute implements Algorithm.
func (ps *ParticleSampler) ShouldExecute(ctx *Context) bool { return ps.sched.ShouldRun(ctx.Step) }

// Execute implements Algorithm, storing "particlesampler/subsample".
func (ps *ParticleSampler) Execute(ctx *Context) error {
	sub, err := ctx.Particles.Subsample(ps.Fraction, ps.Seed+int64(ctx.Step))
	if err != nil {
		return err
	}
	ctx.Outputs["particlesampler/subsample"] = sub
	return nil
}
