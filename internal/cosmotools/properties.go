package cosmotools

import (
	"fmt"
	"math"

	"repro/internal/center"
	"repro/internal/halo"
	"repro/internal/nbody"
	"repro/internal/profile"
)

// PropertyRecord is the full Level 3 property set for one halo — the
// products the paper's workflow ultimately exists to deliver: "properties
// of halos, including halo centers, shapes, and subhalo populations ...
// summary statistics such as mass functions and halo concentrations" (§3).
type PropertyRecord struct {
	HaloTag int64
	Count   int
	// Concentration = R_outer / r_s from an NFW fit about the MBP center;
	// 0 when the fit was not possible (too few populated bins).
	Concentration float64
	// BA and CA are the shape axis ratios b/a and c/a.
	BA, CA float64
	// SigmaV is the 1-D velocity dispersion in code velocity units.
	SigmaV float64
}

// HaloProperties computes per-halo concentrations, shapes and velocity
// dispersions for halos above MinHaloSize, seeded at the MBP centers the
// halo finder produced. It must run after HaloFinder — the dependency
// chain §4.1 describes ("the over density mass estimator is very fast, it
// relies on information obtained by the center finder").
type HaloProperties struct {
	sched EverySchedule
	// MinHaloSize is the smallest halo profiled (profiles of tiny halos
	// are noise).
	MinHaloSize int
	// Bins is the radial bin count for the profile fit.
	Bins int
	// RMinFraction sets the innermost profile radius as a fraction of the
	// outermost member radius.
	RMinFraction float64
}

// NewHaloProperties returns the algorithm with sensible defaults.
func NewHaloProperties() *HaloProperties {
	return &HaloProperties{sched: EverySchedule{Every: 1}, MinHaloSize: 100, Bins: 12, RMinFraction: 0.05}
}

// Name implements Algorithm.
func (hp *HaloProperties) Name() string { return "haloproperties" }

// SetParameters implements Algorithm. Keys: every, steps, min_halo_size,
// bins, rmin_fraction.
func (hp *HaloProperties) SetParameters(params map[string]string) error {
	sched, err := MaybeParseSchedule(params, hp.sched)
	if err != nil {
		return err
	}
	hp.sched = sched
	if hp.MinHaloSize, err = IntParam(params, "min_halo_size", hp.MinHaloSize); err != nil {
		return err
	}
	if hp.Bins, err = IntParam(params, "bins", hp.Bins); err != nil {
		return err
	}
	if hp.RMinFraction, err = FloatParam(params, "rmin_fraction", hp.RMinFraction); err != nil {
		return err
	}
	return nil
}

// ShouldExecute implements Algorithm.
func (hp *HaloProperties) ShouldExecute(ctx *Context) bool { return hp.sched.ShouldRun(ctx.Step) }

// Execute implements Algorithm, reading "halofinder/catalog" and storing
// "haloproperties/records".
func (hp *HaloProperties) Execute(ctx *Context) error {
	catAny, ok := ctx.Outputs["halofinder/catalog"]
	if !ok {
		return fmt.Errorf("cosmotools: haloproperties requires halofinder to run first")
	}
	cat := catAny.(*halo.Catalog)
	p := ctx.Particles
	var out []PropertyRecord
	for hi := range cat.Halos {
		hl := &cat.Halos[hi]
		if hl.Count() < hp.MinHaloSize {
			continue
		}
		rec, err := MeasureProperties(p, ctx.Box, hl, hp.Bins, hp.RMinFraction)
		if err != nil {
			return fmt.Errorf("cosmotools: properties of halo %d: %w", hl.Tag, err)
		}
		out = append(out, rec)
	}
	ctx.Outputs["haloproperties/records"] = out
	return nil
}

// MeasureProperties computes one halo's property record. The profile is
// centred on the halo's MBP when center finding has run, otherwise on the
// center of mass — so comparing the two reproduces the paper's claim that
// an inexact center underestimates the concentration (§3.3.2).
func MeasureProperties(p *nbody.Particles, box float64, hl *halo.Halo, bins int, rMinFraction float64) (PropertyRecord, error) {
	ux, uy, uz := center.Unwrap(p.X, p.Y, p.Z, hl.Indices, box)
	// Center: unwrapped MBP position, or unwrapped COM.
	var cx, cy, cz float64
	if hl.MBP >= 0 {
		for k, gi := range hl.Indices {
			if gi == hl.MBP {
				cx, cy, cz = ux[k], uy[k], uz[k]
				break
			}
		}
	} else {
		for k := range ux {
			cx += ux[k]
			cy += uy[k]
			cz += uz[k]
		}
		n := float64(len(ux))
		cx /= n
		cy /= n
		cz /= n
	}
	// Outermost member radius bounds the profile.
	rMax := 0.0
	for k := range ux {
		dx, dy, dz := ux[k]-cx, uy[k]-cy, uz[k]-cz
		if r := dx*dx + dy*dy + dz*dz; r > rMax {
			rMax = r
		}
	}
	rMax = mathSqrt(rMax)
	rec := PropertyRecord{HaloTag: hl.Tag, Count: hl.Count()}
	if rMax > 0 && rMinFraction > 0 && rMinFraction < 1 {
		prof, err := profile.Measure(ux, uy, uz, cx, cy, cz, profile.Options{
			ParticleMass: 1, RMin: rMax * rMinFraction, RMax: rMax, Bins: bins,
		})
		if err == nil {
			if _, rs, _, err := prof.FitNFW(); err == nil {
				if c, err := profile.Concentration(rMax, rs); err == nil {
					rec.Concentration = c
				}
			}
		}
	}
	shape, err := profile.MeasureShape(ux, uy, uz, cx, cy, cz)
	if err != nil {
		return rec, err
	}
	rec.BA, rec.CA = shape.BA, shape.CA
	vx := make([]float64, hl.Count())
	vy := make([]float64, hl.Count())
	vz := make([]float64, hl.Count())
	for k, gi := range hl.Indices {
		vx[k], vy[k], vz[k] = p.VX[gi], p.VY[gi], p.VZ[gi]
	}
	sigma, err := profile.VelocityDispersion(vx, vy, vz)
	if err != nil {
		return rec, err
	}
	rec.SigmaV = sigma
	return rec, nil
}

func mathSqrt(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}
