package cosmotools

import (
	"fmt"

	"repro/internal/center"
	"repro/internal/dparallel"
	"repro/internal/halo"
	"repro/internal/kdtree"
	"repro/internal/nbody"
	"repro/internal/powerspec"
	"repro/internal/so"
	"repro/internal/subhalo"
)

// CenterRecord is one halo-center result (a Level 3 product).
type CenterRecord struct {
	// HaloTag identifies the halo (min particle tag).
	HaloTag int64
	// MBPTag is the most bound particle's tag.
	MBPTag int64
	// Pos is the MBP position.
	Pos [3]float64
	// Potential is the MBP potential.
	Potential float64
	// Count is the halo's particle count.
	Count int
}

// Level2Span locates one large halo inside a Level 2 particle payload.
type Level2Span struct {
	Tag        int64
	Start, End int // [Start, End) in the Level 2 particle container
}

// Level2 is the reduced data product handed to off-line analysis: only the
// particles of halos above the split threshold ("We printed out all the
// particles that reside in halos with more than 300,000 particles to the
// file system — the resulting data (Level 2) was a factor of 5 less than
// the raw data at Level 1", §4.1).
type Level2 struct {
	Particles *nbody.Particles
	Spans     []Level2Span
}

// --- Power spectrum ---

// PowerSpectrum computes the density fluctuation power spectrum, the
// paper's example of an analysis that belongs fully in-situ.
type PowerSpectrum struct {
	sched EverySchedule
	// Grid is the FFT mesh dimension; Bins the number of k bins.
	Grid, Bins int
}

// NewPowerSpectrum returns the algorithm with sensible defaults (run every
// step, grid chosen by the caller's config).
func NewPowerSpectrum() *PowerSpectrum {
	return &PowerSpectrum{sched: EverySchedule{Every: 1}, Grid: 32, Bins: 16}
}

// Name implements Algorithm.
func (p *PowerSpectrum) Name() string { return "powerspectrum" }

// SetParameters implements Algorithm. Keys: every, steps, grid, bins.
func (p *PowerSpectrum) SetParameters(params map[string]string) error {
	sched, err := MaybeParseSchedule(params, p.sched)
	if err != nil {
		return err
	}
	p.sched = sched
	if p.Grid, err = IntParam(params, "grid", p.Grid); err != nil {
		return err
	}
	if p.Bins, err = IntParam(params, "bins", p.Bins); err != nil {
		return err
	}
	return nil
}

// ShouldExecute implements Algorithm.
func (p *PowerSpectrum) ShouldExecute(ctx *Context) bool { return p.sched.ShouldRun(ctx.Step) }

// Execute implements Algorithm, storing "powerspectrum/pk".
func (p *PowerSpectrum) Execute(ctx *Context) error {
	res, err := powerspec.Measure(ctx.Particles, ctx.Box, p.Grid, p.Bins)
	if err != nil {
		return err
	}
	ctx.Outputs["powerspectrum/pk"] = res
	return nil
}

// --- Halo finding with the combined-workflow split ---

// HaloFinder runs FOF halo identification and the in-situ half of the
// center-finding split: centers for halos at or below SplitThreshold are
// computed immediately (on the configured backend); particles of larger
// halos are extracted as Level 2 data for off-line/co-scheduled analysis.
// A SplitThreshold of 0 disables the split (everything in-situ), matching
// the paper's pure in-situ workflow.
type HaloFinder struct {
	sched EverySchedule
	// LinkingLength, MinSize: FOF parameters.
	LinkingLength float64
	MinSize       int
	// SplitThreshold is the particle-count cut (the paper's 300,000).
	// Halos strictly above it are deferred to Level 2.
	SplitThreshold int
	// Softening for MBP potentials.
	Softening float64
	// Backend for the data-parallel center finder.
	Backend dparallel.Backend
}

// NewHaloFinder returns a halo finder with paper-like defaults.
func NewHaloFinder() *HaloFinder {
	return &HaloFinder{
		sched:          EverySchedule{Every: 1},
		LinkingLength:  0.2,
		MinSize:        40,
		SplitThreshold: 0,
		Softening:      1e-3,
	}
}

// Name implements Algorithm.
func (h *HaloFinder) Name() string { return "halofinder" }

// SetParameters implements Algorithm. Keys: every, steps, linking_length,
// min_size, split_threshold, softening.
func (h *HaloFinder) SetParameters(params map[string]string) error {
	sched, err := MaybeParseSchedule(params, h.sched)
	if err != nil {
		return err
	}
	h.sched = sched
	if h.LinkingLength, err = FloatParam(params, "linking_length", h.LinkingLength); err != nil {
		return err
	}
	if h.MinSize, err = IntParam(params, "min_size", h.MinSize); err != nil {
		return err
	}
	if h.SplitThreshold, err = IntParam(params, "split_threshold", h.SplitThreshold); err != nil {
		return err
	}
	if h.Softening, err = FloatParam(params, "softening", h.Softening); err != nil {
		return err
	}
	return nil
}

// ShouldExecute implements Algorithm.
func (h *HaloFinder) ShouldExecute(ctx *Context) bool { return h.sched.ShouldRun(ctx.Step) }

// Execute implements Algorithm. Outputs:
//
//	halofinder/catalog  *halo.Catalog — all identified halos
//	halofinder/centers  []CenterRecord — centers found in-situ
//	halofinder/level2   *Level2 — particles of halos above the threshold
func (h *HaloFinder) Execute(ctx *Context) error {
	cat, err := halo.FOF(ctx.Particles, ctx.Box, halo.Options{
		LinkingLength: h.LinkingLength,
		MinSize:       h.MinSize,
		Periodic:      true,
	})
	if err != nil {
		return err
	}
	ctx.Outputs["halofinder/catalog"] = cat
	centers, level2, err := SplitCenterFinding(ctx.Particles, ctx.Box, cat, h.SplitThreshold, center.Options{
		Mass:      ctx.ParticleMass,
		Softening: h.Softening,
		Backend:   h.Backend,
	})
	if err != nil {
		return err
	}
	ctx.Outputs["halofinder/centers"] = centers
	ctx.Outputs["halofinder/level2"] = level2
	return nil
}

// SplitCenterFinding performs the combined workflow's division of labour:
// MBP centers for halos with Count <= threshold (or all, when threshold
// <= 0), and a Level 2 extraction of the rest. It is shared by the in-situ
// algorithm above and the stand-alone off-line driver.
func SplitCenterFinding(p *nbody.Particles, box float64, cat *halo.Catalog, threshold int, o center.Options) ([]CenterRecord, *Level2, error) {
	var centers []CenterRecord
	l2 := &Level2{Particles: nbody.NewParticles(0)}
	for hi := range cat.Halos {
		hl := &cat.Halos[hi]
		if threshold > 0 && hl.Count() > threshold {
			start := l2.Particles.N()
			for _, i := range hl.Indices {
				l2.Particles.AppendFrom(p, i)
			}
			l2.Spans = append(l2.Spans, Level2Span{Tag: hl.Tag, Start: start, End: l2.Particles.N()})
			continue
		}
		rec, err := FindCenter(p, box, hl, o)
		if err != nil {
			return nil, nil, err
		}
		hl.MBP = hl.Indices[rec.memberPos]
		hl.MBPTag = rec.MBPTag
		centers = append(centers, rec.CenterRecord)
	}
	return centers, l2, nil
}

// centerResult augments a CenterRecord with the member position used to
// update catalog entries.
type centerResult struct {
	CenterRecord
	memberPos int
}

// FindCenter computes one halo's MBP with the data-parallel brute-force
// finder after periodic unwrapping.
func FindCenter(p *nbody.Particles, box float64, hl *halo.Halo, o center.Options) (centerResult, error) {
	ux, uy, uz := center.Unwrap(p.X, p.Y, p.Z, hl.Indices, box)
	res, err := center.BruteForce(ux, uy, uz, o)
	if err != nil {
		return centerResult{}, fmt.Errorf("cosmotools: center for halo %d: %w", hl.Tag, err)
	}
	gi := hl.Indices[res.Index]
	return centerResult{
		CenterRecord: CenterRecord{
			HaloTag:   hl.Tag,
			MBPTag:    p.Tag[gi],
			Pos:       [3]float64{p.X[gi], p.Y[gi], p.Z[gi]},
			Potential: res.Potential,
			Count:     hl.Count(),
		},
		memberPos: res.Index,
	}, nil
}

// --- Spherical overdensity masses ---

// SOMass measures spherical-overdensity masses seeded at the halo centers
// found by the halo finder; it therefore must be registered after
// HaloFinder ("the three halo analysis steps have to be carried out in
// sequence", §4.1).
type SOMass struct {
	sched EverySchedule
	// Delta is the overdensity threshold; RhoRef the reference density.
	Delta, RhoRef float64
	// MaxRadius bounds the search sphere.
	MaxRadius float64
	// MinParticles for a valid measurement.
	MinParticles int
}

// NewSOMass returns an SO measurer with Δ=200 defaults; RhoRef must be set
// via parameters or field assignment before use.
func NewSOMass() *SOMass {
	return &SOMass{sched: EverySchedule{Every: 1}, Delta: 200, MaxRadius: 3, MinParticles: 20}
}

// Name implements Algorithm.
func (s *SOMass) Name() string { return "somass" }

// SetParameters implements Algorithm. Keys: every, steps, delta, rho_ref,
// max_radius, min_particles.
func (s *SOMass) SetParameters(params map[string]string) error {
	sched, err := MaybeParseSchedule(params, s.sched)
	if err != nil {
		return err
	}
	s.sched = sched
	if s.Delta, err = FloatParam(params, "delta", s.Delta); err != nil {
		return err
	}
	if s.RhoRef, err = FloatParam(params, "rho_ref", s.RhoRef); err != nil {
		return err
	}
	if s.MaxRadius, err = FloatParam(params, "max_radius", s.MaxRadius); err != nil {
		return err
	}
	if s.MinParticles, err = IntParam(params, "min_particles", s.MinParticles); err != nil {
		return err
	}
	return nil
}

// ShouldExecute implements Algorithm.
func (s *SOMass) ShouldExecute(ctx *Context) bool { return s.sched.ShouldRun(ctx.Step) }

// SORecord is one SO measurement keyed by halo tag.
type SORecord struct {
	HaloTag int64
	Mass    float64
	Radius  float64
	N       int
}

// Execute implements Algorithm, reading "halofinder/centers" and storing
// "somass/records". Halos whose SO sphere is invalid (too few particles)
// are skipped, not fatal.
func (s *SOMass) Execute(ctx *Context) error {
	centersAny, ok := ctx.Outputs["halofinder/centers"]
	if !ok {
		return fmt.Errorf("cosmotools: somass requires halofinder to run first")
	}
	centers := centersAny.([]CenterRecord)
	tree, err := kdtree.Build(ctx.Particles.X, ctx.Particles.Y, ctx.Particles.Z, ctx.Box, 16)
	if err != nil {
		return err
	}
	var out []SORecord
	for _, c := range centers {
		res, err := so.Measure(tree, c.Pos[0], c.Pos[1], c.Pos[2], so.Options{
			ParticleMass: ctx.ParticleMass,
			Delta:        s.Delta,
			RhoRef:       s.RhoRef,
			MaxRadius:    s.MaxRadius,
			MinParticles: s.MinParticles,
		})
		if err != nil {
			continue
		}
		out = append(out, SORecord{HaloTag: c.HaloTag, Mass: res.Mass, Radius: res.Radius, N: res.N})
	}
	ctx.Outputs["somass/records"] = out
	return nil
}

// --- Subhalo finding ---

// SubhaloFinder identifies substructure in halos above MinHaloSize
// ("subhalos were found for halos with more than 5000 particles", §4.2).
type SubhaloFinder struct {
	sched EverySchedule
	// MinHaloSize is the smallest parent halo analyzed.
	MinHaloSize int
	// K neighbours for the density estimate; MinSize for surviving
	// subhalos.
	K, MinSize int
	// Softening for unbinding potentials.
	Softening float64
}

// NewSubhaloFinder returns a finder with paper-like defaults.
func NewSubhaloFinder() *SubhaloFinder {
	return &SubhaloFinder{sched: EverySchedule{Every: 1}, MinHaloSize: 5000, K: 16, MinSize: 20, Softening: 1e-3}
}

// Name implements Algorithm.
func (s *SubhaloFinder) Name() string { return "subhalofinder" }

// SetParameters implements Algorithm. Keys: every, steps, min_halo_size,
// k, min_size, softening.
func (s *SubhaloFinder) SetParameters(params map[string]string) error {
	sched, err := MaybeParseSchedule(params, s.sched)
	if err != nil {
		return err
	}
	s.sched = sched
	if s.MinHaloSize, err = IntParam(params, "min_halo_size", s.MinHaloSize); err != nil {
		return err
	}
	if s.K, err = IntParam(params, "k", s.K); err != nil {
		return err
	}
	if s.MinSize, err = IntParam(params, "min_size", s.MinSize); err != nil {
		return err
	}
	if s.Softening, err = FloatParam(params, "softening", s.Softening); err != nil {
		return err
	}
	return nil
}

// ShouldExecute implements Algorithm.
func (s *SubhaloFinder) ShouldExecute(ctx *Context) bool { return s.sched.ShouldRun(ctx.Step) }

// SubhaloRecord summarizes the substructure of one parent halo.
type SubhaloRecord struct {
	HaloTag       int64
	ParentCount   int
	SubhaloCounts []int
}

// Execute implements Algorithm, reading "halofinder/catalog" and storing
// "subhalofinder/records".
func (s *SubhaloFinder) Execute(ctx *Context) error {
	catAny, ok := ctx.Outputs["halofinder/catalog"]
	if !ok {
		return fmt.Errorf("cosmotools: subhalofinder requires halofinder to run first")
	}
	cat := catAny.(*halo.Catalog)
	p := ctx.Particles
	var out []SubhaloRecord
	for hi := range cat.Halos {
		hl := &cat.Halos[hi]
		if hl.Count() < s.MinHaloSize {
			continue
		}
		ux, uy, uz := center.Unwrap(p.X, p.Y, p.Z, hl.Indices, ctx.Box)
		vx := make([]float64, hl.Count())
		vy := make([]float64, hl.Count())
		vz := make([]float64, hl.Count())
		for k, i := range hl.Indices {
			vx[k], vy[k], vz[k] = p.VX[i], p.VY[i], p.VZ[i]
		}
		res, err := subhalo.Find(ux, uy, uz, vx, vy, vz, subhalo.Options{
			Mass:      ctx.ParticleMass,
			K:         s.K,
			MinSize:   s.MinSize,
			Softening: s.Softening,
		})
		if err != nil {
			return err
		}
		rec := SubhaloRecord{HaloTag: hl.Tag, ParentCount: hl.Count()}
		for _, sh := range res.Subhalos {
			rec.SubhaloCounts = append(rec.SubhaloCounts, sh.Count())
		}
		out = append(out, rec)
	}
	ctx.Outputs["subhalofinder/records"] = out
	return nil
}
