// Package cosmotools is the in-situ analysis framework embedded in the
// simulation — the reproduction of HACC's CosmoTools (§3.1).
//
// The design mirrors the paper's description point for point: a pure
// abstract base (here the Algorithm interface) with SetParameters /
// ShouldExecute / Execute; a manager holding "a list of references to
// concrete InSituAlgorithm instances" that "serves as the primary object
// interacting with the simulation code"; configuration through the
// simulation input deck, which carries "a trigger for CosmoTools and a
// pointer to the CosmoTools configuration file" naming each tool, the time
// steps at which to run it, and its parameters; zero-copy operation
// directly on the distributed Level 1 particle data; and a stand-alone
// driver (cmd/cosmotools) that invokes the same algorithms off-line for the
// co-scheduled workflow.
package cosmotools

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/nbody"
)

// Context carries the simulation state an algorithm sees at an analysis
// step. Particles are the live Level 1 data, shared zero-copy — algorithms
// must not mutate them.
type Context struct {
	// Step is the simulation step number (1-based).
	Step int
	// ScaleFactor and Redshift give the cosmic time of the data.
	ScaleFactor float64
	Redshift    float64
	// Box is the comoving box side.
	Box float64
	// ParticleMass is the equal particle mass in Msun/h.
	ParticleMass float64
	// Particles is the (zero-copy) Level 1 particle data.
	Particles *nbody.Particles
	// Outputs collects analysis products by "<algorithm>/<key>"; the
	// workflow layer decides which are Level 2 (data handed to off-line
	// analysis) and which are Level 3 (final catalogs).
	Outputs map[string]any
	// Timings records wall-clock per algorithm name.
	Timings map[string]time.Duration
}

// NewContext prepares an analysis context.
func NewContext(step int, a, box, particleMass float64, p *nbody.Particles) *Context {
	return &Context{
		Step:         step,
		ScaleFactor:  a,
		Redshift:     1/a - 1,
		Box:          box,
		ParticleMass: particleMass,
		Particles:    p,
		Outputs:      map[string]any{},
		Timings:      map[string]time.Duration{},
	}
}

// Algorithm is the in-situ analysis contract; concrete analyses implement
// it (the paper's InSituAlgorithm pure abstract base with its three
// virtual functions).
type Algorithm interface {
	// Name identifies the algorithm in configs, outputs and timings.
	Name() string
	// SetParameters configures the algorithm from its config section.
	SetParameters(params map[string]string) error
	// ShouldExecute decides whether to run at this step.
	ShouldExecute(ctx *Context) bool
	// Execute performs the analysis, writing products into ctx.Outputs.
	Execute(ctx *Context) error
}

// Manager holds the registered algorithms and drives them from the
// simulation loop — the paper's InSituAnalysisManager.
type Manager struct {
	algorithms []Algorithm
	// Clock supplies the time source for per-algorithm timings (drivers
	// set it to time.Now). When nil, Execute records no timings — analysis
	// results stay a pure function of their inputs, which the determinism
	// lint and the reproducibility property tests rely on.
	Clock func() time.Time
}

// Register appends an algorithm. Registering two algorithms with the same
// name is rejected so outputs cannot collide.
func (m *Manager) Register(a Algorithm) error {
	for _, existing := range m.algorithms {
		if existing.Name() == a.Name() {
			return fmt.Errorf("cosmotools: algorithm %q already registered", a.Name())
		}
	}
	m.algorithms = append(m.algorithms, a)
	return nil
}

// Algorithms returns the registered algorithm names in registration order.
func (m *Manager) Algorithms() []string {
	names := make([]string, len(m.algorithms))
	for i, a := range m.algorithms {
		names[i] = a.Name()
	}
	return names
}

// Configure applies a parsed CosmoTools config: each section configures
// the algorithm of the same name. Sections without a registered algorithm
// are an error (a misspelled tool must not silently no-op).
func (m *Manager) Configure(cfg *Config) error {
	for _, section := range cfg.SectionNames() {
		found := false
		for _, a := range m.algorithms {
			if a.Name() == section {
				if err := a.SetParameters(cfg.Section(section)); err != nil {
					return fmt.Errorf("cosmotools: configuring %q: %w", section, err)
				}
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("cosmotools: config section %q matches no registered algorithm", section)
		}
	}
	return nil
}

// Execute runs every algorithm whose ShouldExecute returns true, in
// registration order, recording wall-clock timings. It is called from
// within the main physics loop ("minimally intrusive ... a simple
// interface that can be invoked within the main physics loop").
func (m *Manager) Execute(ctx *Context) error {
	for _, a := range m.algorithms {
		if !a.ShouldExecute(ctx) {
			continue
		}
		var start time.Time
		if m.Clock != nil {
			start = m.Clock()
		}
		if err := a.Execute(ctx); err != nil {
			return fmt.Errorf("cosmotools: %s at step %d: %w", a.Name(), ctx.Step, err)
		}
		if m.Clock != nil {
			ctx.Timings[a.Name()] += m.Clock().Sub(start)
		}
	}
	return nil
}

// SortedOutputKeys lists ctx.Outputs keys deterministically.
func (ctx *Context) SortedOutputKeys() []string {
	keys := make([]string, 0, len(ctx.Outputs))
	for k := range ctx.Outputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EverySchedule is the common cadence rule: run when step % Every == 0, or
// at the explicitly listed steps.
type EverySchedule struct {
	// Every runs the algorithm each time step divides evenly; 0 disables
	// cadence-based triggering.
	Every int
	// Steps lists explicit trigger steps.
	Steps map[int]bool
}

// ShouldRun evaluates the schedule.
func (s EverySchedule) ShouldRun(step int) bool {
	if s.Every > 0 && step%s.Every == 0 {
		return true
	}
	return s.Steps[step]
}

// MaybeParseSchedule returns the schedule from params when either the
// "every" or "steps" key is present; otherwise it returns current
// unchanged, so an algorithm's default cadence survives a config section
// that only sets analysis parameters.
func MaybeParseSchedule(params map[string]string, current EverySchedule) (EverySchedule, error) {
	_, hasEvery := params["every"]
	_, hasSteps := params["steps"]
	if !hasEvery && !hasSteps {
		return current, nil
	}
	return ParseSchedule(params)
}

// ParseSchedule reads "every" and "steps" keys from params.
func ParseSchedule(params map[string]string) (EverySchedule, error) {
	out := EverySchedule{Steps: map[int]bool{}}
	if v, ok := params["every"]; ok {
		n, err := parseInt(v)
		if err != nil || n < 0 {
			return out, fmt.Errorf("cosmotools: bad every=%q", v)
		}
		out.Every = n
	}
	if v, ok := params["steps"]; ok {
		for _, f := range splitList(v) {
			n, err := parseInt(f)
			if err != nil {
				return out, fmt.Errorf("cosmotools: bad steps entry %q", f)
			}
			out.Steps[n] = true
		}
	}
	return out, nil
}
