package cosmotools

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Config is a parsed INI-style configuration: named sections of key=value
// pairs. The simulation input deck and the CosmoTools configuration file
// both use this format ("That file has all the details about the separate
// analysis tools, at which time steps to run them, and which parameters to
// use for each", §3).
type Config struct {
	sections map[string]map[string]string
	order    []string
}

// ParseConfig reads an INI-style stream:
//
//	# comment
//	[section]
//	key = value
//
// Keys before any section header go into the section "" (global).
func ParseConfig(r io.Reader) (*Config, error) {
	cfg := &Config{sections: map[string]map[string]string{}}
	current := ""
	cfg.sections[current] = map[string]string{}
	cfg.order = append(cfg.order, current)
	scanner := bufio.NewScanner(r)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, ";") {
			continue
		}
		if strings.HasPrefix(line, "[") {
			if !strings.HasSuffix(line, "]") {
				return nil, fmt.Errorf("config line %d: malformed section header %q", lineNo, line)
			}
			current = strings.TrimSpace(line[1 : len(line)-1])
			if current == "" {
				return nil, fmt.Errorf("config line %d: empty section name", lineNo)
			}
			if _, ok := cfg.sections[current]; !ok {
				cfg.sections[current] = map[string]string{}
				cfg.order = append(cfg.order, current)
			}
			continue
		}
		eq := strings.Index(line, "=")
		if eq < 0 {
			return nil, fmt.Errorf("config line %d: expected key=value, got %q", lineNo, line)
		}
		key := strings.TrimSpace(line[:eq])
		val := strings.TrimSpace(line[eq+1:])
		if key == "" {
			return nil, fmt.Errorf("config line %d: empty key", lineNo)
		}
		cfg.sections[current][key] = val
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return cfg, nil
}

// ParseConfigFile reads a config from a path.
func ParseConfigFile(path string) (*Config, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseConfig(f)
}

// SectionNames returns the non-empty section names in file order.
func (c *Config) SectionNames() []string {
	var out []string
	for _, name := range c.order {
		if name != "" {
			out = append(out, name)
		}
	}
	return out
}

// Section returns a copy of the named section's key-value pairs (nil-safe:
// missing sections return an empty map).
func (c *Config) Section(name string) map[string]string {
	out := map[string]string{}
	for k, v := range c.sections[name] {
		out[k] = v
	}
	return out
}

// Global returns the section-less key-value pairs.
func (c *Config) Global() map[string]string { return c.Section("") }

// Lookup fetches section/key, reporting presence.
func (c *Config) Lookup(section, key string) (string, bool) {
	s, ok := c.sections[section]
	if !ok {
		return "", false
	}
	v, ok := s[key]
	return v, ok
}

// Keys lists a section's keys sorted.
func (c *Config) Keys(section string) []string {
	var out []string
	for k := range c.sections[section] {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- typed parameter helpers shared by the algorithm adapters ---

func parseInt(s string) (int, error) { return strconv.Atoi(strings.TrimSpace(s)) }

func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(strings.TrimSpace(s), 64)
}

func parseBool(s string) (bool, error) { return strconv.ParseBool(strings.TrimSpace(s)) }

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f != "" {
			out = append(out, f)
		}
	}
	return out
}

// FloatParam reads a float key with a default.
func FloatParam(params map[string]string, key string, def float64) (float64, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	f, err := parseFloat(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q: %w", key, v, err)
	}
	return f, nil
}

// IntParam reads an int key with a default.
func IntParam(params map[string]string, key string, def int) (int, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	n, err := parseInt(v)
	if err != nil {
		return 0, fmt.Errorf("parameter %s=%q: %w", key, v, err)
	}
	return n, nil
}

// BoolParam reads a bool key with a default.
func BoolParam(params map[string]string, key string, def bool) (bool, error) {
	v, ok := params[key]
	if !ok {
		return def, nil
	}
	b, err := parseBool(v)
	if err != nil {
		return false, fmt.Errorf("parameter %s=%q: %w", key, v, err)
	}
	return b, nil
}
