package cosmotools

import (
	"fmt"
	"sort"

	"repro/internal/center"
	"repro/internal/halo"
	"repro/internal/mpi"
	"repro/internal/nbody"
)

// ParallelProducts is one rank's share of a distributed in-situ analysis
// pass: the halos this rank owns, the centers it computed for halos at or
// below the split, and the Level 2 extraction of its larger halos.
type ParallelProducts struct {
	Catalog *halo.Catalog
	Centers []CenterRecord
	Level2  *Level2
}

// ParallelAnalysis runs the paper's distributed in-situ halo analysis on
// the calling rank: parallel FOF with overload exchange and ownership
// reconciliation (§3.3.1), then — per owned halo — either immediate MBP
// center finding (halos ≤ threshold) or Level 2 extraction (the combined
// workflow's off-load path). local must already be decomposed to the
// rank's slab.
func ParallelAnalysis(c *mpi.Comm, local *nbody.Particles, box, overload float64, fofOpts halo.Options, threshold int, co center.Options) (*ParallelProducts, error) {
	res, err := halo.ParallelFOF(c, local, box, overload, fofOpts)
	if err != nil {
		return nil, err
	}
	centers, level2, err := SplitCenterFinding(res.Local, box, res.Catalog, threshold, co)
	if err != nil {
		return nil, err
	}
	return &ParallelProducts{Catalog: res.Catalog, Centers: centers, Level2: level2}, nil
}

// GatherCenters collects every rank's center records onto all ranks,
// sorted by halo tag — the catalog-assembly step before Level 3 output.
func GatherCenters(c *mpi.Comm, centers []CenterRecord) []CenterRecord {
	all := c.AllGather(centers)
	var out []CenterRecord
	for _, payload := range all {
		out = append(out, payload.([]CenterRecord)...)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].HaloTag < out[b].HaloTag })
	return out
}

// GatherLevel2 concatenates every rank's Level 2 extraction onto rank 0
// (other ranks receive an empty product). Spans are re-based onto the
// concatenated particle container.
func GatherLevel2(c *mpi.Comm, l2 *Level2) *Level2 {
	all := c.AllGather(l2)
	if c.Rank() != 0 {
		return &Level2{Particles: nbody.NewParticles(0)}
	}
	out := &Level2{Particles: nbody.NewParticles(0)}
	for _, payload := range all {
		part := payload.(*Level2)
		base := out.Particles.N()
		for i := 0; i < part.Particles.N(); i++ {
			out.Particles.AppendFrom(part.Particles, i)
		}
		for _, span := range part.Spans {
			out.Spans = append(out.Spans, Level2Span{
				Tag:   span.Tag,
				Start: base + span.Start,
				End:   base + span.End,
			})
		}
	}
	sort.Slice(out.Spans, func(a, b int) bool { return out.Spans[a].Tag < out.Spans[b].Tag })
	return out
}

// MergeCenters reconciles the in-situ and off-line center sets into one
// complete catalog — the paper's final step: "the two files from the Titan
// and Moonlight analysis were merged to provide a complete set of halo
// centers and properties" (§4.1). Records are deduplicated by halo tag
// (off-line wins, since it supersedes any in-situ placeholder) and sorted.
func MergeCenters(inSitu, offline []CenterRecord) ([]CenterRecord, error) {
	byTag := make(map[int64]CenterRecord, len(inSitu)+len(offline))
	for _, r := range inSitu {
		if prev, dup := byTag[r.HaloTag]; dup {
			return nil, fmt.Errorf("cosmotools: duplicate in-situ center for halo %d (%d and %d particles)",
				r.HaloTag, prev.Count, r.Count)
		}
		byTag[r.HaloTag] = r
	}
	for _, r := range offline {
		byTag[r.HaloTag] = r
	}
	out := make([]CenterRecord, 0, len(byTag))
	for _, r := range byTag {
		out = append(out, r)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].HaloTag < out[b].HaloTag })
	return out, nil
}

// CentersForLevel2 runs the off-line half of the combined workflow over a
// gathered Level 2 product: one brute-force MBP search per span. This is
// what the co-scheduled analysis jobs execute.
func CentersForLevel2(l2 *Level2, box float64, o center.Options) ([]CenterRecord, error) {
	var out []CenterRecord
	p := l2.Particles
	for _, span := range l2.Spans {
		n := span.End - span.Start
		if n <= 0 {
			return nil, fmt.Errorf("cosmotools: empty Level 2 span for halo %d", span.Tag)
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = span.Start + i
		}
		ux, uy, uz := center.Unwrap(p.X, p.Y, p.Z, idx, box)
		res, err := center.BruteForce(ux, uy, uz, o)
		if err != nil {
			return nil, fmt.Errorf("cosmotools: Level 2 centers for halo %d: %w", span.Tag, err)
		}
		gi := idx[res.Index]
		out = append(out, CenterRecord{
			HaloTag:   span.Tag,
			MBPTag:    p.Tag[gi],
			Pos:       [3]float64{p.X[gi], p.Y[gi], p.Z[gi]},
			Potential: res.Potential,
			Count:     n,
		})
	}
	return out, nil
}
