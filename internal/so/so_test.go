package so

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kdtree"
)

// uniformBall places n particles uniformly in a ball of the given radius.
func uniformBall(n int, cx, cy, cz, radius float64, seed int64) (x, y, z []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	for i := 0; i < n; i++ {
		r := radius * math.Cbrt(rng.Float64())
		theta := math.Acos(2*rng.Float64() - 1)
		phi := 2 * math.Pi * rng.Float64()
		x[i] = cx + r*math.Sin(theta)*math.Cos(phi)
		y[i] = cy + r*math.Sin(theta)*math.Sin(phi)
		z[i] = cz + r*math.Cos(theta)
	}
	return
}

func TestOptionsValidation(t *testing.T) {
	x, y, z := uniformBall(50, 5, 5, 5, 1, 1)
	tree, _ := kdtree.Build(x, y, z, 0, 8)
	bad := []Options{
		{ParticleMass: 0, Delta: 200, RhoRef: 1, MaxRadius: 5},
		{ParticleMass: 1, Delta: 0, RhoRef: 1, MaxRadius: 5},
		{ParticleMass: 1, Delta: 200, RhoRef: 0, MaxRadius: 5},
		{ParticleMass: 1, Delta: 200, RhoRef: 1, MaxRadius: 0},
	}
	for i, o := range bad {
		if _, err := Measure(tree, 5, 5, 5, o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// A uniform ball of known density: R_Δ is where enclosed density crosses
// Δ·ρ_ref. With ρ_ball = q·Δ·ρ_ref for q > 1, the whole ball qualifies and
// R equals the ball radius (density inside a uniform ball is flat).
func TestUniformBallFullyEnclosed(t *testing.T) {
	n := 5000
	radius := 1.0
	x, y, z := uniformBall(n, 0, 0, 0, radius, 2)
	tree, _ := kdtree.Build(x, y, z, 0, 16)
	ballVol := 4.0 / 3.0 * math.Pi * radius * radius * radius
	rhoBall := float64(n) / ballVol // mass 1 per particle
	o := Options{
		ParticleMass: 1,
		Delta:        200,
		RhoRef:       rhoBall / 200 / 3, // ball is 3x over the threshold
		MaxRadius:    5,
	}
	res, err := Measure(tree, 0, 0, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Radius-radius) > 0.05*radius {
		t.Errorf("R = %v, want ~%v", res.Radius, radius)
	}
	if res.N < n*95/100 {
		t.Errorf("enclosed %d of %d", res.N, n)
	}
	if res.Mass != float64(res.N) {
		t.Errorf("mass %v != count %d", res.Mass, res.N)
	}
}

// With the threshold set above the ball's own density, the crossing happens
// inside the ball: R_Δ < ball radius and the mass scales accordingly.
func TestThresholdInsideBall(t *testing.T) {
	n := 8000
	radius := 1.0
	x, y, z := uniformBall(n, 0, 0, 0, radius, 3)
	tree, _ := kdtree.Build(x, y, z, 0, 16)
	ballVol := 4.0 / 3.0 * math.Pi
	rhoBall := float64(n) / ballVol
	// Threshold = 8x ball density => for a uniform ball the enclosed
	// density never reaches it except via small-n noise at tiny radii.
	o := Options{ParticleMass: 1, Delta: 8, RhoRef: rhoBall, MaxRadius: 3, MinParticles: 10}
	res, err := Measure(tree, 0, 0, 0, o)
	// Either an error (no crossing with enough particles) or a small-R
	// result is acceptable physics; what must not happen is a crossing near
	// the full ball radius.
	if err == nil && res.Radius > 0.7*radius {
		t.Errorf("uniform ball measured R=%v at 8x threshold", res.Radius)
	}
}

// An isothermal-ish concentrated cluster: R200 grows with the threshold
// density decreasing.
func TestRadiusGrowsAsThresholdDrops(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 6000
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		r := math.Pow(rng.Float64(), 1.5) * 2 // centrally concentrated
		theta := math.Acos(2*rng.Float64() - 1)
		phi := 2 * math.Pi * rng.Float64()
		x[i] = r * math.Sin(theta) * math.Cos(phi)
		y[i] = r * math.Sin(theta) * math.Sin(phi)
		z[i] = r * math.Cos(theta)
	}
	tree, _ := kdtree.Build(x, y, z, 0, 16)
	base := Options{ParticleMass: 1, Delta: 200, RhoRef: 1, MaxRadius: 10}
	r200, err := Measure(tree, 0, 0, 0, base)
	if err != nil {
		t.Fatal(err)
	}
	low := base
	low.Delta = 50
	r50, err := Measure(tree, 0, 0, 0, low)
	if err != nil {
		t.Fatal(err)
	}
	if r50.Radius <= r200.Radius {
		t.Errorf("R50 %v should exceed R200 %v", r50.Radius, r200.Radius)
	}
	if r50.Mass <= r200.Mass {
		t.Errorf("M50 %v should exceed M200 %v", r50.Mass, r200.Mass)
	}
}

func TestTooFewParticlesIsError(t *testing.T) {
	x, y, z := uniformBall(10, 0, 0, 0, 1, 5)
	tree, _ := kdtree.Build(x, y, z, 0, 8)
	o := Options{ParticleMass: 1, Delta: 200, RhoRef: 1e-9, MaxRadius: 2, MinParticles: 50}
	if _, err := Measure(tree, 0, 0, 0, o); err == nil {
		t.Error("expected error for too few particles")
	}
}

// Periodic tree: a ball straddling the wrap measures the same as one in
// the middle.
func TestPeriodicCenter(t *testing.T) {
	box := 10.0
	n := 3000
	// Ball at the origin corner, so members wrap.
	x, y, z := uniformBall(n, 0, 0, 0, 1, 6)
	for i := range x {
		if x[i] < 0 {
			x[i] += box
		}
		if y[i] < 0 {
			y[i] += box
		}
		if z[i] < 0 {
			z[i] += box
		}
	}
	tree, _ := kdtree.Build(x, y, z, box, 16)
	ballVol := 4.0 / 3.0 * math.Pi
	rhoBall := float64(n) / ballVol
	o := Options{ParticleMass: 1, Delta: 200, RhoRef: rhoBall / 600, MaxRadius: 3}
	res, err := Measure(tree, 0, 0, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.N < n*95/100 {
		t.Errorf("periodic ball enclosed %d of %d", res.N, n)
	}
}
