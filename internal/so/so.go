// Package so measures spherical overdensity (SO) halo masses.
//
// The paper lists "halo mass estimation based on a spherical overdensity
// definition" among the analysis tasks, notes it "lends itself well to
// efficient parallel implementation", and that it "relies on information
// obtained by the center finder" (§4.1) — SO spheres are "seeded at FOF
// halo centers" (§3.3.2). The estimator grows a sphere around the given
// center until the mean enclosed density falls to Δ times the reference
// density, and reports the enclosed mass M_Δ and radius R_Δ.
package so

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/kdtree"
)

// Result is one SO measurement.
type Result struct {
	// Mass is the enclosed mass M_Δ.
	Mass float64
	// Radius is R_Δ.
	Radius float64
	// N is the number of particles enclosed.
	N int
}

// Options configures the SO measurement.
type Options struct {
	// ParticleMass is the equal particle mass (> 0).
	ParticleMass float64
	// Delta is the overdensity threshold (conventionally 200).
	Delta float64
	// RhoRef is the reference density (mean matter or critical) in the
	// same units as ParticleMass per volume.
	RhoRef float64
	// MaxRadius bounds the search; also protects against unbound growth
	// when the center sits in a diffuse region.
	MaxRadius float64
	// MinParticles is the fewest enclosed particles for a valid
	// measurement; below this the result is an error. <= 0 selects 20.
	MinParticles int
}

func (o Options) validate() error {
	switch {
	case o.ParticleMass <= 0:
		return fmt.Errorf("so: particle mass %g must be positive", o.ParticleMass)
	case o.Delta <= 0:
		return fmt.Errorf("so: delta %g must be positive", o.Delta)
	case o.RhoRef <= 0:
		return fmt.Errorf("so: rhoRef %g must be positive", o.RhoRef)
	case o.MaxRadius <= 0:
		return fmt.Errorf("so: maxRadius %g must be positive", o.MaxRadius)
	}
	return nil
}

// Measure computes the SO mass around (cx, cy, cz) using the prebuilt
// spatial tree over all candidate particles (usually the whole rank-local
// snapshot, periodic). It returns an error when fewer than MinParticles
// fall inside the threshold radius.
func Measure(tree *kdtree.Tree, cx, cy, cz float64, o Options) (Result, error) {
	if err := o.validate(); err != nil {
		return Result{}, err
	}
	minP := o.MinParticles
	if minP <= 0 {
		minP = 20
	}
	// Collect all members within MaxRadius once, then scan the sorted
	// radii for the outermost crossing of the density threshold.
	var d2s []float64
	tree.VisitWithin(cx, cy, cz, o.MaxRadius, func(j int) bool {
		d2s = append(d2s, tree.Dist2(j, cx, cy, cz))
		return true
	})
	if len(d2s) < minP {
		return Result{}, fmt.Errorf("so: only %d particles within max radius %g (need %d)", len(d2s), o.MaxRadius, minP)
	}
	sort.Float64s(d2s)
	threshold := o.Delta * o.RhoRef
	best := -1
	for k, d2 := range d2s {
		r := math.Sqrt(d2)
		if r == 0 {
			continue
		}
		vol := 4.0 / 3.0 * math.Pi * r * r * r
		rho := o.ParticleMass * float64(k+1) / vol
		if rho >= threshold {
			best = k
		}
	}
	if best < 0 || best+1 < minP {
		return Result{}, fmt.Errorf("so: no valid overdensity crossing with >= %d particles", minP)
	}
	return Result{
		Mass:   o.ParticleMass * float64(best+1),
		Radius: math.Sqrt(d2s[best]),
		N:      best + 1,
	}, nil
}
