// Package fault is a seeded, deterministic fault injector for the
// discrete-event workflow models. Real co-scheduling deployments are
// dominated by failures the paper's idealized comparison never sees: batch
// jobs die mid-run, Lustre writes fail or land silently truncated, the
// Bellerophon-style listener drops polls during outages, and in-transit
// consumers abort mid-item. A Profile declares rates and windows for each
// fault class; an Injector answers per-event "does this fail?" queries.
//
// Determinism: every draw is keyed by a stable identity (job name +
// attempt, file path + write sequence, item key + delivery count) hashed
// together with the profile seed into its own substream. The same seed
// therefore produces the same faults regardless of call order or goroutine
// interleaving — a property the repeatability tests assert by requiring
// byte-identical reports across runs.
//
// All Injector methods are nil-receiver safe and report "no fault", so
// callers thread a possibly-nil *Injector without guarding every site; a
// nil injector (or a zero Profile) reproduces the failure-free world
// exactly.
package fault

import (
	"fmt"
	"hash/fnv"
	"math/rand"
)

// Window is a half-open interval [Start, End) of virtual seconds.
type Window struct {
	Start, End float64
}

// Contains reports whether t falls inside the window.
func (w Window) Contains(t float64) bool { return t >= w.Start && t < w.End }

// Crash kills the whole campaign process — the recovery problem PR 1's
// per-operation faults cannot express: a batch job hits its walltime limit
// or a node dies, and everything in flight (the engine, its listener, a
// half-written product) vanishes at once. Exactly one trigger is set:
//
//   - AtTime kills the run when the virtual clock reaches that second;
//     events scheduled later never execute.
//   - AtStep kills the run at the instant step AtStep's Level 2 commit
//     begins, leaving a torn file at the final path (the worst case a
//     non-atomic writer can produce) with no journal record.
type Crash struct {
	AtTime float64
	AtStep int
}

// Armed reports whether the crash has a trigger.
func (c Crash) Armed() bool { return c.AtTime > 0 || c.AtStep > 0 }

// Drain marks a window during which Nodes nodes of a cluster are held out
// of service (drained for maintenance or down after a hardware fault).
// Jobs already running on drained nodes keep running — the capacity is
// withheld from new starts, as a real scheduler reservation would.
type Drain struct {
	Window
	Nodes int
}

// Degraded marks a window during which the machine is sick but not down —
// a failing fabric link, a thermally throttled rack — the canonical gray
// failure: everything still "works", just slower. Jobs that *start* inside
// the window run Factor times longer than nominal (Factor >= 1).
type Degraded struct {
	Window
	Factor float64
}

// Profile declares the fault classes and their rates. The zero value
// injects nothing; every workflow run under a zero Profile is identical to
// a run with no injector at all.
type Profile struct {
	// Seed keys every random draw. Two runs with equal Profiles produce
	// identical fault sequences.
	Seed int64

	// JobFailureProb is the probability that one job attempt dies mid-run.
	// The failure point is drawn uniformly from JobFailureFrac of the
	// attempt's duration (default [0.05, 0.95] when both are zero).
	JobFailureProb                       float64
	JobFailureFracMin, JobFailureFracMax float64

	// WriteFailProb is the probability a file-system write errors outright
	// (nothing lands). WriteTruncateProb is the probability it lands
	// silently truncated to a TruncateFrac fraction of its bytes (default
	// [0.1, 0.9] when both are zero); only a reader that verifies the
	// expected size notices.
	WriteFailProb                    float64
	WriteTruncateProb                float64
	TruncateFracMin, TruncateFracMax float64

	// ListenerOutages are windows during which the co-scheduling listener
	// is down: polls that fall inside are lost (files are only picked up
	// by a later poll or the final sweep).
	ListenerOutages []Window

	// ConsumerAbortProb is the probability an in-transit consumer dies
	// while processing one item delivery (the item must be redelivered).
	ConsumerAbortProb float64

	// NodeDrains withhold cluster capacity during windows.
	NodeDrains []Drain

	// Crashes schedules one process death per campaign generation: the
	// g-th execution of a resumable campaign (0-based, counted across
	// resumes) dies at Crashes[g]; generations past the end of the list
	// run to completion. A crash/resume/crash/resume torn-run schedule is
	// simply a list of two crashes.
	Crashes []Crash

	// --- gray failures: nothing dies, everything limps ---

	// JobSlowdownProb is the probability one job attempt runs slow (a sick
	// node, contended I/O). The factor is drawn uniformly from
	// [JobSlowdownFactorMin, JobSlowdownFactorMax] (default [1.5, 4] when
	// both are zero); factors below 1 are rejected by Validate.
	JobSlowdownProb                            float64
	JobSlowdownFactorMin, JobSlowdownFactorMax float64

	// JobStallProb is the probability one job attempt hangs mid-run — it
	// holds its nodes, emits no further progress, and never completes. The
	// stall point is drawn uniformly from JobStallFrac of the attempt's
	// duration (default [0.05, 0.95] when both are zero). Only deadline or
	// heartbeat supervision can recover a stalled attempt.
	JobStallProb                     float64
	JobStallFracMin, JobStallFracMax float64

	// DegradedNodes are machine-sickness windows: jobs starting inside run
	// Factor times slower.
	DegradedNodes []Degraded

	// InSituSlowdownProb is the probability one timestep's in-situ analysis
	// runs slow (halo-population pathologies, §4.2's subhalo imbalance);
	// the factor is drawn from [InSituSlowdownFactorMin, Max] (default
	// [1.5, 4]). This is the gray failure the DegradePolicy escape hatch
	// answers: blow the step budget and the work spills off-line.
	InSituSlowdownProb                               float64
	InSituSlowdownFactorMin, InSituSlowdownFactorMax float64

	// SubmitFailProb is the probability one listener submission attempt is
	// refused transiently (batch front-end overloaded); the listener's
	// circuit breaker turns repeated refusals into backoff.
	SubmitFailProb float64

	// TransitDelayProb is the probability one in-transit delivery lags by a
	// delay drawn uniformly from [TransitDelaySecMin, TransitDelaySecMax]
	// seconds (default [1, 30]); an ack-deadline reaper redelivers items
	// stuck past the deadline.
	TransitDelayProb                       float64
	TransitDelaySecMin, TransitDelaySecMax float64

	// --- silent data corruption: nothing fails, the bytes lie ---

	// BitRotProb is the probability one committed product file suffers a
	// single flipped bit at rest, landing a delay drawn uniformly from
	// [BitRotDelaySecMin, BitRotDelaySecMax] seconds after the commit
	// (default [5, 900]). The flip preserves the file's length, so size
	// checks pass and only checksum verification notices.
	BitRotProb                           float64
	BitRotDelaySecMin, BitRotDelaySecMax float64

	// TransitCorruptProb is the probability one in-transit delivery hands
	// the consumer a payload with a flipped bit (the staged copy stays
	// good — the corruption is in the transfer). A checksum-verifying
	// Take catches it and redelivers.
	TransitCorruptProb float64
}

// Enabled reports whether the profile can inject any fault at all.
func (p Profile) Enabled() bool {
	return p.JobFailureProb > 0 || p.WriteFailProb > 0 || p.WriteTruncateProb > 0 ||
		p.ConsumerAbortProb > 0 || len(p.ListenerOutages) > 0 || len(p.NodeDrains) > 0 ||
		len(p.Crashes) > 0 || p.GrayEnabled() || p.CorruptionEnabled()
}

// CorruptionEnabled reports whether the profile can inject any silent
// data corruption — the class no failure machinery sees; only end-to-end
// checksum verification (and the scrubber built on it) catches these.
func (p Profile) CorruptionEnabled() bool {
	return p.BitRotProb > 0 || p.TransitCorruptProb > 0
}

// GrayEnabled reports whether the profile can inject any gray failure —
// the classes that stall or slow work without killing it, which only
// deadline/heartbeat supervision can recover.
func (p Profile) GrayEnabled() bool {
	return p.JobSlowdownProb > 0 || p.JobStallProb > 0 || len(p.DegradedNodes) > 0 ||
		p.InSituSlowdownProb > 0 || p.SubmitFailProb > 0 || p.TransitDelayProb > 0
}

// Validate rejects malformed profiles with descriptive errors instead of
// letting them silently clamp or misbehave: probabilities outside [0, 1],
// inverted or empty windows, slowdown factors below 1 (a "slowdown" that
// speeds work up), inverted fraction ranges, and negative drain sizes or
// transit delays.
func (p Profile) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"JobFailureProb", p.JobFailureProb},
		{"WriteFailProb", p.WriteFailProb},
		{"WriteTruncateProb", p.WriteTruncateProb},
		{"ConsumerAbortProb", p.ConsumerAbortProb},
		{"JobSlowdownProb", p.JobSlowdownProb},
		{"JobStallProb", p.JobStallProb},
		{"InSituSlowdownProb", p.InSituSlowdownProb},
		{"SubmitFailProb", p.SubmitFailProb},
		{"TransitDelayProb", p.TransitDelayProb},
		{"BitRotProb", p.BitRotProb},
		{"TransitCorruptProb", p.TransitCorruptProb},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s = %g is not a probability (want [0, 1])", pr.name, pr.v)
		}
	}
	fracs := []struct {
		name   string
		lo, hi float64
	}{
		{"JobFailureFrac", p.JobFailureFracMin, p.JobFailureFracMax},
		{"TruncateFrac", p.TruncateFracMin, p.TruncateFracMax},
		{"JobStallFrac", p.JobStallFracMin, p.JobStallFracMax},
	}
	for _, f := range fracs {
		if f.lo == 0 && f.hi == 0 {
			continue // unset: defaults apply
		}
		if f.lo < 0 || f.hi > 1 || f.hi < f.lo {
			return fmt.Errorf("fault: %sMin/Max = [%g, %g] is not an ordered sub-range of [0, 1]", f.name, f.lo, f.hi)
		}
	}
	factors := []struct {
		name   string
		lo, hi float64
	}{
		{"JobSlowdownFactor", p.JobSlowdownFactorMin, p.JobSlowdownFactorMax},
		{"InSituSlowdownFactor", p.InSituSlowdownFactorMin, p.InSituSlowdownFactorMax},
	}
	for _, f := range factors {
		if f.lo == 0 && f.hi == 0 {
			continue // unset: defaults apply
		}
		if f.lo < 1 {
			return fmt.Errorf("fault: %sMin = %g would speed work up; slowdown factors must be >= 1", f.name, f.lo)
		}
		if f.hi < f.lo {
			return fmt.Errorf("fault: %sMin/Max = [%g, %g] inverted", f.name, f.lo, f.hi)
		}
	}
	for i, w := range p.ListenerOutages {
		if w.End <= w.Start {
			return fmt.Errorf("fault: ListenerOutages[%d] = [%g, %g) is inverted or empty", i, w.Start, w.End)
		}
	}
	for i, d := range p.NodeDrains {
		if d.End <= d.Start {
			return fmt.Errorf("fault: NodeDrains[%d] window [%g, %g) is inverted or empty", i, d.Start, d.End)
		}
		if d.Nodes < 0 {
			return fmt.Errorf("fault: NodeDrains[%d] drains %d nodes (negative)", i, d.Nodes)
		}
	}
	for i, d := range p.DegradedNodes {
		if d.End <= d.Start {
			return fmt.Errorf("fault: DegradedNodes[%d] window [%g, %g) is inverted or empty", i, d.Start, d.End)
		}
		if d.Factor != 0 && d.Factor < 1 {
			return fmt.Errorf("fault: DegradedNodes[%d] factor %g would speed work up; degraded-window factors must be >= 1", i, d.Factor)
		}
	}
	if p.TransitDelaySecMin != 0 || p.TransitDelaySecMax != 0 {
		if p.TransitDelaySecMin < 0 || p.TransitDelaySecMax < p.TransitDelaySecMin {
			return fmt.Errorf("fault: TransitDelaySecMin/Max = [%g, %g] negative or inverted",
				p.TransitDelaySecMin, p.TransitDelaySecMax)
		}
	}
	if p.BitRotDelaySecMin != 0 || p.BitRotDelaySecMax != 0 {
		if p.BitRotDelaySecMin < 0 || p.BitRotDelaySecMax < p.BitRotDelaySecMin {
			return fmt.Errorf("fault: BitRotDelaySecMin/Max = [%g, %g] negative or inverted",
				p.BitRotDelaySecMin, p.BitRotDelaySecMax)
		}
	}
	return nil
}

// WriteOutcome classifies one file-system write attempt.
type WriteOutcome int

const (
	// WriteOK lands the file intact.
	WriteOK WriteOutcome = iota
	// WriteFail errors the write; no file lands.
	WriteFail
	// WriteTruncate lands the file silently short.
	WriteTruncate
)

// Injector answers fault queries for one Profile. The zero-value pointer
// (nil) injects nothing.
type Injector struct {
	p Profile
}

// New builds an injector for the profile, rejecting malformed profiles
// (see Profile.Validate). A zero profile yields a valid injector that
// never injects.
func New(p Profile) (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Injector{p: p}, nil
}

// MustNew is New for profiles known valid (tests, literals); it panics on
// a validation error.
func MustNew(p Profile) *Injector {
	in, err := New(p)
	if err != nil {
		panic(err)
	}
	return in
}

// Profile returns the injector's profile (zero when the injector is nil).
func (in *Injector) Profile() Profile {
	if in == nil {
		return Profile{}
	}
	return in.p
}

// rng derives an independent substream from the seed and a stable key, so
// draws are order- and interleaving-independent.
func (in *Injector) rng(kind, key string, n int) *rand.Rand {
	h := fnv.New64a()
	var b [8]byte
	s := uint64(in.p.Seed)
	for i := range b {
		b[i] = byte(s >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(key))
	for i := range b {
		b[i] = byte(uint64(n) >> (8 * i))
	}
	h.Write(b[:])
	return rand.New(rand.NewSource(int64(h.Sum64())))
}

func fracRange(lo, hi, defLo, defHi float64) (float64, float64) {
	if lo == 0 && hi == 0 {
		return defLo, defHi
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// JobAttempt decides whether the named job's attempt (0-based) dies
// mid-run, and if so at which fraction of its duration.
func (in *Injector) JobAttempt(name string, attempt int) (failFrac float64, fail bool) {
	if in == nil || in.p.JobFailureProb <= 0 {
		return 0, false
	}
	r := in.rng("job", name, attempt)
	if r.Float64() >= in.p.JobFailureProb {
		return 0, false
	}
	lo, hi := fracRange(in.p.JobFailureFracMin, in.p.JobFailureFracMax, 0.05, 0.95)
	return lo + r.Float64()*(hi-lo), true
}

// RetryJitter returns a deterministic jitter factor in [0, 1) for the
// named job's retry backoff.
func (in *Injector) RetryJitter(name string, attempt int) float64 {
	if in == nil {
		return 0
	}
	return in.rng("retry", name, attempt).Float64()
}

// Write decides the outcome of the attempt-th write (0-based) of the given
// path, returning the surviving byte fraction for truncations.
func (in *Injector) Write(path string, attempt int) (WriteOutcome, float64) {
	if in == nil || (in.p.WriteFailProb <= 0 && in.p.WriteTruncateProb <= 0) {
		return WriteOK, 1
	}
	r := in.rng("write", path, attempt)
	u := r.Float64()
	switch {
	case u < in.p.WriteFailProb:
		return WriteFail, 0
	case u < in.p.WriteFailProb+in.p.WriteTruncateProb:
		lo, hi := fracRange(in.p.TruncateFracMin, in.p.TruncateFracMax, 0.1, 0.9)
		return WriteTruncate, lo + r.Float64()*(hi-lo)
	default:
		return WriteOK, 1
	}
}

// ListenerDown reports whether the listener is inside an outage window at
// virtual time t.
func (in *Injector) ListenerDown(t float64) bool {
	if in == nil {
		return false
	}
	for _, w := range in.p.ListenerOutages {
		if w.Contains(t) {
			return true
		}
	}
	return false
}

// ConsumerAbort decides whether the consumer processing the delivery-th
// hand-out (0-based) of the keyed item dies mid-item.
func (in *Injector) ConsumerAbort(key string, delivery int) bool {
	if in == nil || in.p.ConsumerAbortProb <= 0 {
		return false
	}
	return in.rng("consume", key, delivery).Float64() < in.p.ConsumerAbortProb
}

// CrashFor returns the process-crash scheduled for the given campaign
// generation (0-based), if any. Crashes are positional, not random: the
// torn-run property tests need exact, repeatable kill points.
func (in *Injector) CrashFor(generation int) (Crash, bool) {
	if in == nil || generation < 0 || generation >= len(in.p.Crashes) {
		return Crash{}, false
	}
	c := in.p.Crashes[generation]
	return c, c.Armed()
}

// NodeDrains returns the profile's drain windows (nil for a nil injector).
func (in *Injector) NodeDrains() []Drain {
	if in == nil {
		return nil
	}
	return in.p.NodeDrains
}

// JobSlowdown returns the slowdown factor (>= 1) for the named job's
// attempt; 1 means the attempt runs at nominal speed.
func (in *Injector) JobSlowdown(name string, attempt int) float64 {
	if in == nil || in.p.JobSlowdownProb <= 0 {
		return 1
	}
	r := in.rng("slow", name, attempt)
	if r.Float64() >= in.p.JobSlowdownProb {
		return 1
	}
	lo, hi := factorRange(in.p.JobSlowdownFactorMin, in.p.JobSlowdownFactorMax)
	return lo + r.Float64()*(hi-lo)
}

// JobStall decides whether the named job's attempt hangs mid-run, and if
// so at which fraction of its (slowed) duration progress stops.
func (in *Injector) JobStall(name string, attempt int) (stallFrac float64, stall bool) {
	if in == nil || in.p.JobStallProb <= 0 {
		return 0, false
	}
	r := in.rng("stall", name, attempt)
	if r.Float64() >= in.p.JobStallProb {
		return 0, false
	}
	lo, hi := fracRange(in.p.JobStallFracMin, in.p.JobStallFracMax, 0.05, 0.95)
	return lo + r.Float64()*(hi-lo), true
}

// DegradeFactorAt returns the degraded-node slowdown factor for work
// starting at virtual time t (1 outside every window; overlapping windows
// compound).
func (in *Injector) DegradeFactorAt(t float64) float64 {
	if in == nil {
		return 1
	}
	f := 1.0
	for _, d := range in.p.DegradedNodes {
		if d.Contains(t) {
			df := d.Factor
			if df < 1 {
				df = 2 // unset factor on a declared window: default 2x
			}
			f *= df
		}
	}
	return f
}

// StepSlowdown returns the in-situ analysis slowdown factor (>= 1) for the
// given timestep.
func (in *Injector) StepSlowdown(step int) float64 {
	if in == nil || in.p.InSituSlowdownProb <= 0 {
		return 1
	}
	r := in.rng("insitu", "step", step)
	if r.Float64() >= in.p.InSituSlowdownProb {
		return 1
	}
	lo, hi := factorRange(in.p.InSituSlowdownFactorMin, in.p.InSituSlowdownFactorMax)
	return lo + r.Float64()*(hi-lo)
}

// SubmitFail decides whether the attempt-th submission (0-based) of an
// analysis job for the given path is refused transiently.
func (in *Injector) SubmitFail(path string, attempt int) bool {
	if in == nil || in.p.SubmitFailProb <= 0 {
		return false
	}
	return in.rng("submit", path, attempt).Float64() < in.p.SubmitFailProb
}

// TransitDelay returns the delivery lag in seconds for the delivery-th
// hand-out (0-based) of the keyed in-transit item; 0 means on time.
func (in *Injector) TransitDelay(key string, delivery int) float64 {
	if in == nil || in.p.TransitDelayProb <= 0 {
		return 0
	}
	r := in.rng("lag", key, delivery)
	if r.Float64() >= in.p.TransitDelayProb {
		return 0
	}
	lo, hi := in.p.TransitDelaySecMin, in.p.TransitDelaySecMax
	if lo == 0 && hi == 0 {
		lo, hi = 1, 30
	}
	return lo + r.Float64()*(hi-lo)
}

// BitRot decides whether the epoch-th committed incarnation of the
// product at path rots at rest (epoch distinguishes re-commits of the
// same path across campaign generations), returning the delay in seconds
// after the commit at which the flip lands and the flipped bit's position
// as a fraction of the file's bits.
func (in *Injector) BitRot(path string, epoch int) (delaySec, bitFrac float64, rot bool) {
	if in == nil || in.p.BitRotProb <= 0 {
		return 0, 0, false
	}
	r := in.rng("rot", path, epoch)
	if r.Float64() >= in.p.BitRotProb {
		return 0, 0, false
	}
	lo, hi := in.p.BitRotDelaySecMin, in.p.BitRotDelaySecMax
	if lo == 0 && hi == 0 {
		lo, hi = 5, 900
	}
	return lo + r.Float64()*(hi-lo), r.Float64(), true
}

// TransitCorrupt decides whether the delivery-th hand-out (0-based) of
// the keyed in-transit item is corrupted in transfer, returning the
// flipped bit's position as a fraction of the payload's bits.
func (in *Injector) TransitCorrupt(key string, delivery int) (bitFrac float64, corrupt bool) {
	if in == nil || in.p.TransitCorruptProb <= 0 {
		return 0, false
	}
	r := in.rng("xfer", key, delivery)
	if r.Float64() >= in.p.TransitCorruptProb {
		return 0, false
	}
	return r.Float64(), true
}

// factorRange resolves a slowdown-factor range, defaulting to [1.5, 4]
// when unset.
func factorRange(lo, hi float64) (float64, float64) {
	if lo == 0 && hi == 0 {
		return 1.5, 4
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}
