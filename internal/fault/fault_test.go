package fault

import "testing"

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if _, fail := in.JobAttempt("j", 0); fail {
		t.Error("nil injector failed a job")
	}
	if out, frac := in.Write("p", 0); out != WriteOK || frac != 1 {
		t.Errorf("nil injector write = %v %v", out, frac)
	}
	if in.ListenerDown(0) || in.ConsumerAbort("k", 0) {
		t.Error("nil injector reported an outage/abort")
	}
	if in.RetryJitter("j", 0) != 0 || in.NodeDrains() != nil {
		t.Error("nil injector jitter/drains nonzero")
	}
	if in.Profile().Enabled() {
		t.Error("nil injector profile enabled")
	}
}

func TestZeroProfileInjectsNothing(t *testing.T) {
	in := New(Profile{Seed: 42})
	if in.Profile().Enabled() {
		t.Error("zero profile enabled")
	}
	for i := 0; i < 100; i++ {
		if _, fail := in.JobAttempt("job", i); fail {
			t.Fatal("zero profile failed a job")
		}
		if out, _ := in.Write("path", i); out != WriteOK {
			t.Fatal("zero profile failed a write")
		}
		if in.ConsumerAbort("item", i) {
			t.Fatal("zero profile aborted a consumer")
		}
	}
}

// The core determinism property: identical profiles give identical draws,
// independent of query order.
func TestDrawsAreSeededAndOrderIndependent(t *testing.T) {
	p := Profile{Seed: 7, JobFailureProb: 0.5, WriteFailProb: 0.2, WriteTruncateProb: 0.2, ConsumerAbortProb: 0.3}
	a, b := New(p), New(p)

	// Query b in reverse order; answers must still match a's.
	type jobDraw struct {
		frac float64
		fail bool
	}
	var fwd []jobDraw
	for i := 0; i < 50; i++ {
		frac, fail := a.JobAttempt("sim", i)
		fwd = append(fwd, jobDraw{frac, fail})
	}
	for i := 49; i >= 0; i-- {
		frac, fail := b.JobAttempt("sim", i)
		if frac != fwd[i].frac || fail != fwd[i].fail {
			t.Fatalf("attempt %d: (%v,%v) != (%v,%v)", i, frac, fail, fwd[i].frac, fwd[i].fail)
		}
	}
	for i := 0; i < 50; i++ {
		oa, fa := a.Write("l2/step001.gio", i)
		ob, fb := b.Write("l2/step001.gio", i)
		if oa != ob || fa != fb {
			t.Fatalf("write %d: (%v,%v) != (%v,%v)", i, oa, fa, ob, fb)
		}
		if a.ConsumerAbort("item", i) != b.ConsumerAbort("item", i) {
			t.Fatalf("consumer draw %d differs", i)
		}
		if a.RetryJitter("sim", i) != b.RetryJitter("sim", i) {
			t.Fatalf("jitter draw %d differs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	pa := Profile{Seed: 1, JobFailureProb: 0.5}
	pb := Profile{Seed: 2, JobFailureProb: 0.5}
	a, b := New(pa), New(pb)
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		_, fa := a.JobAttempt("j", i)
		_, fb := b.JobAttempt("j", i)
		if fa == fb {
			same++
		}
	}
	if same == n {
		t.Error("seeds 1 and 2 produced identical fault sequences")
	}
}

func TestRatesAreRoughlyHonored(t *testing.T) {
	in := New(Profile{Seed: 3, JobFailureProb: 0.25})
	fails := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if frac, fail := in.JobAttempt("j", i); fail {
			fails++
			if frac < 0.05 || frac > 0.95 {
				t.Fatalf("failure fraction %v outside default range", frac)
			}
		}
	}
	got := float64(fails) / n
	if got < 0.2 || got > 0.3 {
		t.Errorf("failure rate %v, want ~0.25", got)
	}
}

func TestWriteOutcomeSplit(t *testing.T) {
	in := New(Profile{Seed: 4, WriteFailProb: 0.3, WriteTruncateProb: 0.3})
	var fail, trunc, ok int
	const n = 3000
	for i := 0; i < n; i++ {
		switch out, frac := in.Write("p", i); out {
		case WriteFail:
			fail++
		case WriteTruncate:
			trunc++
			if frac <= 0 || frac >= 1 {
				t.Fatalf("truncate frac %v", frac)
			}
		default:
			ok++
		}
	}
	for name, c := range map[string]int{"fail": fail, "trunc": trunc, "ok": ok} {
		frac := float64(c) / n
		lo, hi := 0.25, 0.35
		if name == "ok" {
			lo, hi = 0.35, 0.45
		}
		if frac < lo || frac > hi {
			t.Errorf("%s fraction %v outside [%v,%v]", name, frac, lo, hi)
		}
	}
}

func TestWindowsAndDrains(t *testing.T) {
	in := New(Profile{
		ListenerOutages: []Window{{Start: 100, End: 200}},
		NodeDrains:      []Drain{{Window: Window{Start: 50, End: 60}, Nodes: 4}},
	})
	if !in.Profile().Enabled() {
		t.Error("windowed profile not enabled")
	}
	for _, tc := range []struct {
		t    float64
		down bool
	}{{99, false}, {100, true}, {199, true}, {200, false}} {
		if got := in.ListenerDown(tc.t); got != tc.down {
			t.Errorf("ListenerDown(%v) = %v", tc.t, got)
		}
	}
	if d := in.NodeDrains(); len(d) != 1 || d[0].Nodes != 4 {
		t.Errorf("drains = %v", d)
	}
}

func TestCrashSchedule(t *testing.T) {
	in := New(Profile{Crashes: []Crash{{AtTime: 500}, {AtStep: 3}, {}}})
	if !in.Profile().Enabled() {
		t.Error("crash-only profile not enabled")
	}
	c, ok := in.CrashFor(0)
	if !ok || c.AtTime != 500 {
		t.Errorf("generation 0: %+v, %v", c, ok)
	}
	c, ok = in.CrashFor(1)
	if !ok || c.AtStep != 3 {
		t.Errorf("generation 1: %+v, %v", c, ok)
	}
	// An unarmed entry and generations past the list run to completion.
	if _, ok := in.CrashFor(2); ok {
		t.Error("unarmed crash reported armed")
	}
	if _, ok := in.CrashFor(3); ok {
		t.Error("generation past schedule crashes")
	}
	if _, ok := (*Injector)(nil).CrashFor(0); ok {
		t.Error("nil injector crashes")
	}
}
