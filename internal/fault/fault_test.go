package fault

import (
	"strings"
	"testing"
)

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	if _, fail := in.JobAttempt("j", 0); fail {
		t.Error("nil injector failed a job")
	}
	if out, frac := in.Write("p", 0); out != WriteOK || frac != 1 {
		t.Errorf("nil injector write = %v %v", out, frac)
	}
	if in.ListenerDown(0) || in.ConsumerAbort("k", 0) {
		t.Error("nil injector reported an outage/abort")
	}
	if in.RetryJitter("j", 0) != 0 || in.NodeDrains() != nil {
		t.Error("nil injector jitter/drains nonzero")
	}
	if in.Profile().Enabled() {
		t.Error("nil injector profile enabled")
	}
}

func TestZeroProfileInjectsNothing(t *testing.T) {
	in := MustNew(Profile{Seed: 42})
	if in.Profile().Enabled() {
		t.Error("zero profile enabled")
	}
	for i := 0; i < 100; i++ {
		if _, fail := in.JobAttempt("job", i); fail {
			t.Fatal("zero profile failed a job")
		}
		if out, _ := in.Write("path", i); out != WriteOK {
			t.Fatal("zero profile failed a write")
		}
		if in.ConsumerAbort("item", i) {
			t.Fatal("zero profile aborted a consumer")
		}
	}
}

// The core determinism property: identical profiles give identical draws,
// independent of query order.
func TestDrawsAreSeededAndOrderIndependent(t *testing.T) {
	p := Profile{Seed: 7, JobFailureProb: 0.5, WriteFailProb: 0.2, WriteTruncateProb: 0.2, ConsumerAbortProb: 0.3}
	a, b := MustNew(p), MustNew(p)

	// Query b in reverse order; answers must still match a's.
	type jobDraw struct {
		frac float64
		fail bool
	}
	var fwd []jobDraw
	for i := 0; i < 50; i++ {
		frac, fail := a.JobAttempt("sim", i)
		fwd = append(fwd, jobDraw{frac, fail})
	}
	for i := 49; i >= 0; i-- {
		frac, fail := b.JobAttempt("sim", i)
		if frac != fwd[i].frac || fail != fwd[i].fail {
			t.Fatalf("attempt %d: (%v,%v) != (%v,%v)", i, frac, fail, fwd[i].frac, fwd[i].fail)
		}
	}
	for i := 0; i < 50; i++ {
		oa, fa := a.Write("l2/step001.gio", i)
		ob, fb := b.Write("l2/step001.gio", i)
		if oa != ob || fa != fb {
			t.Fatalf("write %d: (%v,%v) != (%v,%v)", i, oa, fa, ob, fb)
		}
		if a.ConsumerAbort("item", i) != b.ConsumerAbort("item", i) {
			t.Fatalf("consumer draw %d differs", i)
		}
		if a.RetryJitter("sim", i) != b.RetryJitter("sim", i) {
			t.Fatalf("jitter draw %d differs", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	pa := Profile{Seed: 1, JobFailureProb: 0.5}
	pb := Profile{Seed: 2, JobFailureProb: 0.5}
	a, b := MustNew(pa), MustNew(pb)
	same := 0
	const n = 200
	for i := 0; i < n; i++ {
		_, fa := a.JobAttempt("j", i)
		_, fb := b.JobAttempt("j", i)
		if fa == fb {
			same++
		}
	}
	if same == n {
		t.Error("seeds 1 and 2 produced identical fault sequences")
	}
}

func TestRatesAreRoughlyHonored(t *testing.T) {
	in := MustNew(Profile{Seed: 3, JobFailureProb: 0.25})
	fails := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if frac, fail := in.JobAttempt("j", i); fail {
			fails++
			if frac < 0.05 || frac > 0.95 {
				t.Fatalf("failure fraction %v outside default range", frac)
			}
		}
	}
	got := float64(fails) / n
	if got < 0.2 || got > 0.3 {
		t.Errorf("failure rate %v, want ~0.25", got)
	}
}

func TestWriteOutcomeSplit(t *testing.T) {
	in := MustNew(Profile{Seed: 4, WriteFailProb: 0.3, WriteTruncateProb: 0.3})
	var fail, trunc, ok int
	const n = 3000
	for i := 0; i < n; i++ {
		switch out, frac := in.Write("p", i); out {
		case WriteFail:
			fail++
		case WriteTruncate:
			trunc++
			if frac <= 0 || frac >= 1 {
				t.Fatalf("truncate frac %v", frac)
			}
		default:
			ok++
		}
	}
	for name, c := range map[string]int{"fail": fail, "trunc": trunc, "ok": ok} {
		frac := float64(c) / n
		lo, hi := 0.25, 0.35
		if name == "ok" {
			lo, hi = 0.35, 0.45
		}
		if frac < lo || frac > hi {
			t.Errorf("%s fraction %v outside [%v,%v]", name, frac, lo, hi)
		}
	}
}

func TestWindowsAndDrains(t *testing.T) {
	in := MustNew(Profile{
		ListenerOutages: []Window{{Start: 100, End: 200}},
		NodeDrains:      []Drain{{Window: Window{Start: 50, End: 60}, Nodes: 4}},
	})
	if !in.Profile().Enabled() {
		t.Error("windowed profile not enabled")
	}
	for _, tc := range []struct {
		t    float64
		down bool
	}{{99, false}, {100, true}, {199, true}, {200, false}} {
		if got := in.ListenerDown(tc.t); got != tc.down {
			t.Errorf("ListenerDown(%v) = %v", tc.t, got)
		}
	}
	if d := in.NodeDrains(); len(d) != 1 || d[0].Nodes != 4 {
		t.Errorf("drains = %v", d)
	}
}

func TestCrashSchedule(t *testing.T) {
	in := MustNew(Profile{Crashes: []Crash{{AtTime: 500}, {AtStep: 3}, {}}})
	if !in.Profile().Enabled() {
		t.Error("crash-only profile not enabled")
	}
	c, ok := in.CrashFor(0)
	if !ok || c.AtTime != 500 {
		t.Errorf("generation 0: %+v, %v", c, ok)
	}
	c, ok = in.CrashFor(1)
	if !ok || c.AtStep != 3 {
		t.Errorf("generation 1: %+v, %v", c, ok)
	}
	// An unarmed entry and generations past the list run to completion.
	if _, ok := in.CrashFor(2); ok {
		t.Error("unarmed crash reported armed")
	}
	if _, ok := in.CrashFor(3); ok {
		t.Error("generation past schedule crashes")
	}
	if _, ok := (*Injector)(nil).CrashFor(0); ok {
		t.Error("nil injector crashes")
	}
}

func TestValidateRejectsMalformedProfiles(t *testing.T) {
	cases := []struct {
		name string
		p    Profile
		want string
	}{
		{"negative probability", Profile{JobFailureProb: -0.1}, "not a probability"},
		{"probability above one", Profile{JobSlowdownProb: 1.5}, "not a probability"},
		{"negative gray probability", Profile{SubmitFailProb: -1}, "not a probability"},
		{"inverted outage window", Profile{ListenerOutages: []Window{{Start: 200, End: 100}}}, "inverted or empty"},
		{"empty drain window", Profile{NodeDrains: []Drain{{Window: Window{Start: 50, End: 50}, Nodes: 1}}}, "inverted or empty"},
		{"negative drain", Profile{NodeDrains: []Drain{{Window: Window{Start: 0, End: 10}, Nodes: -2}}}, "negative"},
		{"inverted degraded window", Profile{DegradedNodes: []Degraded{{Window: Window{Start: 9, End: 3}}}}, "inverted or empty"},
		{"degraded factor below one", Profile{DegradedNodes: []Degraded{{Window: Window{Start: 0, End: 10}, Factor: 0.5}}}, "must be >= 1"},
		{"slowdown factor below one", Profile{JobSlowdownProb: 0.1, JobSlowdownFactorMin: 0.5, JobSlowdownFactorMax: 2}, "must be >= 1"},
		{"inverted slowdown factors", Profile{JobSlowdownFactorMin: 4, JobSlowdownFactorMax: 2}, "inverted"},
		{"inverted stall fracs", Profile{JobStallFracMin: 0.9, JobStallFracMax: 0.1}, "ordered sub-range"},
		{"stall frac above one", Profile{JobStallFracMin: 0.5, JobStallFracMax: 1.5}, "ordered sub-range"},
		{"negative transit delay", Profile{TransitDelaySecMin: -5, TransitDelaySecMax: 10}, "negative or inverted"},
		{"bit-rot probability above one", Profile{BitRotProb: 1.2}, "not a probability"},
		{"negative transit-corrupt probability", Profile{TransitCorruptProb: -0.2}, "not a probability"},
		{"inverted bit-rot delay", Profile{BitRotDelaySecMin: 900, BitRotDelaySecMax: 30}, "negative or inverted"},
		{"negative bit-rot delay", Profile{BitRotDelaySecMin: -1, BitRotDelaySecMax: 10}, "negative or inverted"},
	}
	for _, tc := range cases {
		err := tc.p.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.p)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
		if _, nerr := New(tc.p); nerr == nil {
			t.Errorf("%s: New accepted the profile Validate rejected", tc.name)
		}
	}
	// Valid profiles — including unset (all-zero) ranges — pass.
	for _, p := range []Profile{
		{},
		{Seed: 1, JobSlowdownProb: 0.3, JobStallProb: 0.1, InSituSlowdownProb: 0.2,
			SubmitFailProb: 0.1, TransitDelayProb: 0.2,
			DegradedNodes: []Degraded{{Window: Window{Start: 10, End: 20}, Factor: 3}}},
	} {
		if err := p.Validate(); err != nil {
			t.Errorf("Validate rejected valid profile: %v", err)
		}
	}
}

func TestNilInjectorInjectsNoGrayFailures(t *testing.T) {
	var in *Injector
	if f := in.JobSlowdown("j", 0); f != 1 {
		t.Errorf("nil JobSlowdown = %v", f)
	}
	if _, stall := in.JobStall("j", 0); stall {
		t.Error("nil injector stalled a job")
	}
	if f := in.DegradeFactorAt(100); f != 1 {
		t.Errorf("nil DegradeFactorAt = %v", f)
	}
	if f := in.StepSlowdown(3); f != 1 {
		t.Errorf("nil StepSlowdown = %v", f)
	}
	if in.SubmitFail("p", 0) {
		t.Error("nil injector refused a submit")
	}
	if d := in.TransitDelay("k", 0); d != 0 {
		t.Errorf("nil TransitDelay = %v", d)
	}
}

func TestGrayDrawsAreSeededAndOrderIndependent(t *testing.T) {
	p := Profile{Seed: 17, JobSlowdownProb: 0.4, JobStallProb: 0.3,
		InSituSlowdownProb: 0.5, SubmitFailProb: 0.3, TransitDelayProb: 0.4}
	a, b := MustNew(p), MustNew(p)
	// Query b in reverse; every gray draw must match a's.
	type draw struct {
		slow, stallFrac, step, lag float64
		stall, submit              bool
	}
	var fwd []draw
	for i := 0; i < 60; i++ {
		var d draw
		d.slow = a.JobSlowdown("sim", i)
		d.stallFrac, d.stall = a.JobStall("sim", i)
		d.step = a.StepSlowdown(i)
		d.submit = a.SubmitFail("l2/step001.gio", i)
		d.lag = a.TransitDelay("item", i)
		fwd = append(fwd, d)
	}
	for i := 59; i >= 0; i-- {
		var d draw
		d.slow = b.JobSlowdown("sim", i)
		d.stallFrac, d.stall = b.JobStall("sim", i)
		d.step = b.StepSlowdown(i)
		d.submit = b.SubmitFail("l2/step001.gio", i)
		d.lag = b.TransitDelay("item", i)
		if d != fwd[i] {
			t.Fatalf("draw %d: %+v != %+v", i, d, fwd[i])
		}
	}
}

func TestGraySlowdownRangesHonored(t *testing.T) {
	in := MustNew(Profile{Seed: 5, JobSlowdownProb: 1,
		JobSlowdownFactorMin: 2, JobSlowdownFactorMax: 3})
	for i := 0; i < 500; i++ {
		if f := in.JobSlowdown("j", i); f < 2 || f > 3 {
			t.Fatalf("slowdown %v outside [2, 3]", f)
		}
	}
	// Default factor range is [1.5, 4].
	din := MustNew(Profile{Seed: 5, InSituSlowdownProb: 1})
	for i := 0; i < 500; i++ {
		if f := din.StepSlowdown(i); f < 1.5 || f > 4 {
			t.Fatalf("step slowdown %v outside default [1.5, 4]", f)
		}
	}
	// Default transit lag range is [1, 30] seconds.
	tin := MustNew(Profile{Seed: 5, TransitDelayProb: 1})
	for i := 0; i < 500; i++ {
		if d := tin.TransitDelay("k", i); d < 1 || d > 30 {
			t.Fatalf("transit delay %v outside default [1, 30]", d)
		}
	}
}

func TestDegradedWindowsCompound(t *testing.T) {
	in := MustNew(Profile{DegradedNodes: []Degraded{
		{Window: Window{Start: 100, End: 300}, Factor: 2},
		{Window: Window{Start: 200, End: 400}, Factor: 1.5},
		{Window: Window{Start: 500, End: 600}}, // unset factor: default 2x
	}})
	if !in.Profile().GrayEnabled() || !in.Profile().Enabled() {
		t.Error("degraded-window profile not gray-enabled")
	}
	for _, tc := range []struct {
		t, want float64
	}{{50, 1}, {150, 2}, {250, 3}, {350, 1.5}, {450, 1}, {550, 2}} {
		if got := in.DegradeFactorAt(tc.t); got != tc.want {
			t.Errorf("DegradeFactorAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestCorruptionDrawsAreSeededAndOrderIndependent(t *testing.T) {
	p := Profile{Seed: 9, BitRotProb: 0.5, BitRotDelaySecMin: 10, BitRotDelaySecMax: 500,
		TransitCorruptProb: 0.5}
	a, b := MustNew(p), MustNew(p)
	// Interleave draws differently between the two injectors: keyed
	// substreams must make the order irrelevant.
	type rot struct {
		delay, frac float64
		hit         bool
	}
	got := map[string]rot{}
	for i := 0; i < 20; i++ {
		key := "l2/step" + string(rune('a'+i)) + ".gio"
		d, f, hit := a.BitRot(key, 1)
		got[key] = rot{d, f, hit}
	}
	for i := 19; i >= 0; i-- {
		key := "l2/step" + string(rune('a'+i)) + ".gio"
		b.TransitCorrupt(key, 0) // extra unrelated draws must not shift bit-rot draws
		d, f, hit := b.BitRot(key, 1)
		if w := got[key]; d != w.delay || f != w.frac || hit != w.hit {
			t.Fatalf("draw for %s differs across injectors/orders", key)
		}
	}
	hits := 0
	for _, r := range got {
		if !r.hit {
			continue
		}
		hits++
		if r.delay < 10 || r.delay > 500 {
			t.Errorf("rot delay %g outside [10,500]", r.delay)
		}
		if r.frac < 0 || r.frac >= 1 {
			t.Errorf("rot bit fraction %g outside [0,1)", r.frac)
		}
	}
	if hits == 0 || hits == 20 {
		t.Errorf("%d/20 rot hits at prob 0.5 — draws look degenerate", hits)
	}
	// Different epochs re-draw.
	same := true
	for i := 0; i < 20; i++ {
		key := "l2/step" + string(rune('a'+i)) + ".gio"
		_, _, hit1 := a.BitRot(key, 1)
		_, _, hit2 := a.BitRot(key, 2)
		if hit1 != hit2 {
			same = false
		}
	}
	if same {
		t.Error("epoch is not part of the bit-rot draw key")
	}
}

func TestTransitCorruptDraws(t *testing.T) {
	in := MustNew(Profile{Seed: 4, TransitCorruptProb: 0.4})
	hits := 0
	for i := 0; i < 200; i++ {
		frac, corrupt := in.TransitCorrupt("item", i)
		if !corrupt {
			continue
		}
		hits++
		if frac < 0 || frac >= 1 {
			t.Fatalf("corrupt bit fraction %g outside [0,1)", frac)
		}
	}
	if hits < 40 || hits > 140 {
		t.Errorf("%d/200 transit corruptions at prob 0.4", hits)
	}
	var nilIn *Injector
	if _, corrupt := nilIn.TransitCorrupt("item", 0); corrupt {
		t.Error("nil injector corrupted a transfer")
	}
	if _, _, rot := nilIn.BitRot("p", 0); rot {
		t.Error("nil injector rotted a file")
	}
}

func TestCorruptionEnabledWiring(t *testing.T) {
	if (Profile{}).CorruptionEnabled() {
		t.Error("zero profile reports corruption enabled")
	}
	for _, p := range []Profile{{BitRotProb: 0.1}, {TransitCorruptProb: 0.1}} {
		if !p.CorruptionEnabled() || !p.Enabled() {
			t.Errorf("%+v not reported enabled", p)
		}
	}
}
