// Package center finds halo centers with the Most Bound Particle (MBP)
// definition: the member particle minimizing the gravitational potential
//
//	Φ(i) = Σ_{j≠i} -m / (d_ij + ε)
//
// where ε is "a small constant offset term ... added to the distance to
// avoid numerical issues caused by extremely close particles" (§3.3.2).
//
// Two finders are provided, mirroring the paper:
//
//   - BruteForce — the PISTON/data-parallel algorithm: "computes the
//     potentials for all particles and finds the minimum. The algorithm is
//     easily parallelizable, since the potential for each particle can be
//     computed in parallel" (§3.3.2). It runs on any dparallel backend; on
//     the modelled GPUs it is the paper's factor-~50 winner.
//
//   - AStar — the serial best-first search that "uses an optimistic
//     heuristic to estimate the potential for each particle, allowing it to
//     locate the particle with minimum potential without having to
//     explicitly compute the potentials for all particles", reported
//     "faster than a brute force approach ... by a problem-dependent factor
//     of roughly eight, but ... still a serial O(n²) algorithm" (§3.3.2).
//
// Both operate on plain coordinate slices; halos that straddle a periodic
// boundary must be unwrapped first (see Unwrap).
package center

import (
	"container/heap"
	"fmt"
	"math"

	"repro/internal/dparallel"
	"repro/internal/kdtree"
)

// Options configures center finding.
type Options struct {
	// Mass is the (equal) particle mass; only scales the potential, not the
	// argmin, but is kept so reported potentials are physical.
	Mass float64
	// Softening is the constant distance offset ε. Zero is valid: the
	// potential sum simply skips the self term.
	Softening float64
	// Backend executes the brute-force potential map; nil selects
	// dparallel.Default.
	Backend dparallel.Backend
	// GroupLeaf tunes the A* heuristic's particle grouping (leaf size of
	// the bounding k-d tree); <= 0 selects 64.
	GroupLeaf int
}

func (o Options) backend() dparallel.Backend {
	if o.Backend != nil {
		return o.Backend
	}
	return dparallel.Default
}

func (o Options) mass() float64 {
	if o.Mass > 0 {
		return o.Mass
	}
	return 1
}

// Result reports a center-finding outcome.
type Result struct {
	// Index of the most bound particle within the input slices.
	Index int
	// Potential is the MBP's potential.
	Potential float64
	// Evaluated counts exact O(n) potential evaluations performed; the
	// brute force always evaluates all n, A* usually far fewer.
	Evaluated int
}

// Potential computes the exact potential of particle i.
func Potential(x, y, z []float64, i int, mass, softening float64) float64 {
	pot := 0.0
	xi, yi, zi := x[i], y[i], z[i]
	for j := range x {
		if j == i {
			continue
		}
		dx := x[j] - xi
		dy := y[j] - yi
		dz := z[j] - zi
		d := math.Sqrt(dx*dx+dy*dy+dz*dz) + softening
		pot -= mass / d
	}
	return pot
}

// BruteForce computes the potential of every particle in parallel on the
// configured backend and returns the minimum. This is the single data-
// parallel implementation that targets CPUs and accelerators alike.
func BruteForce(x, y, z []float64, o Options) (Result, error) {
	n := len(x)
	if n == 0 {
		return Result{}, fmt.Errorf("center: empty particle set")
	}
	if len(y) != n || len(z) != n {
		return Result{}, fmt.Errorf("center: coordinate lengths differ: %d/%d/%d", n, len(y), len(z))
	}
	m := o.mass()
	idx, pot := dparallel.MinIndex(o.backend(), n, func(i int) float64 {
		return Potential(x, y, z, i, m, o.Softening)
	})
	return Result{Index: idx, Potential: pot, Evaluated: n}, nil
}

// astarItem is one particle in the A* frontier, keyed by its optimistic
// potential bound.
type astarItem struct {
	idx   int
	bound float64
}

type astarHeap []astarItem

func (h astarHeap) Len() int            { return len(h) }
func (h astarHeap) Less(i, j int) bool  { return h[i].bound < h[j].bound }
func (h astarHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *astarHeap) Push(v interface{}) { *h = append(*h, v.(astarItem)) }
func (h *astarHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// AStar locates the most bound particle by best-first search. An admissible
// (optimistic, never above the true potential) per-particle bound is built
// by grouping particles into k-d tree leaves and attributing each group's
// whole mass at its nearest bounding-box distance. Particles are then
// expanded in bound order, evaluating exact potentials lazily; the search
// stops as soon as the best exact potential is at or below the smallest
// outstanding bound, which proves the minimum without touching the
// remaining particles.
func AStar(x, y, z []float64, o Options) (Result, error) {
	n := len(x)
	if n == 0 {
		return Result{}, fmt.Errorf("center: empty particle set")
	}
	if len(y) != n || len(z) != n {
		return Result{}, fmt.Errorf("center: coordinate lengths differ: %d/%d/%d", n, len(y), len(z))
	}
	leaf := o.GroupLeaf
	if leaf <= 0 {
		leaf = 16
	}
	m := o.mass()
	tree, err := kdtree.Build(x, y, z, 0, leaf)
	if err != nil {
		return Result{}, err
	}
	// Optimistic bound for every particle via a Barnes-Hut-style walk:
	// distant nodes contribute their whole mass at the nearest point of
	// their bounding box (an underestimate of distance, hence an optimistic
	// potential); near nodes are opened, and leaves are summed exactly.
	// Every approximation only lowers the potential, so the bound is
	// admissible: bound(i) <= Φ(i).
	h := make(astarHeap, 0, n)
	for i := 0; i < n; i++ {
		xi, yi, zi := x[i], y[i], z[i]
		bound := 0.0
		tree.TraverseNodes(func(minB, maxB [3]float64, members []int, isLeaf bool) bool {
			dmin2 := boxDist2(xi, yi, zi, minB, maxB)
			diam2 := 0.0
			for a := 0; a < 3; a++ {
				w := maxB[a] - minB[a]
				diam2 += w * w
			}
			// Opening criterion: treat the node as a point mass only when
			// it is farther away than its own diameter.
			if dmin2 > diam2 && dmin2 > 0 {
				bound -= m * float64(len(members)) / (math.Sqrt(dmin2) + o.Softening)
				return false
			}
			if isLeaf {
				for _, j := range members {
					if j == i {
						continue
					}
					dx := x[j] - xi
					dy := y[j] - yi
					dz := z[j] - zi
					bound -= m / (math.Sqrt(dx*dx+dy*dy+dz*dz) + o.Softening)
				}
				return false
			}
			return true
		})
		h = append(h, astarItem{i, bound})
	}
	heap.Init(&h)
	best := Result{Index: -1, Potential: math.Inf(1)}
	for h.Len() > 0 {
		top := heap.Pop(&h).(astarItem)
		if best.Index >= 0 && best.Potential <= top.bound {
			break // proven: nothing left can beat the best exact value
		}
		pot := Potential(x, y, z, top.idx, m, o.Softening)
		best.Evaluated++
		if pot < best.Potential {
			best.Potential = pot
			best.Index = top.idx
		}
	}
	return best, nil
}

// BatchItem is one halo in a batched center-finding request: the member
// coordinates, already unwrapped.
type BatchItem struct {
	X, Y, Z []float64
}

// BruteForceBatch finds the MBP of many halos, parallelizing across halos
// rather than within one — the efficient shape for the in-situ phase of
// the combined workflow, where millions of small halos each carry little
// internal parallelism. Results are returned in input order. o.Backend
// supplies the worker pool; per-halo potentials are computed serially
// inside each worker (for the rare huge halo, use BruteForce directly,
// which parallelizes the inner loop instead).
func BruteForceBatch(items []BatchItem, o Options) ([]Result, error) {
	for i := range items {
		n := len(items[i].X)
		if n == 0 {
			return nil, fmt.Errorf("center: batch item %d is empty", i)
		}
		if len(items[i].Y) != n || len(items[i].Z) != n {
			return nil, fmt.Errorf("center: batch item %d coordinate lengths differ", i)
		}
	}
	out := make([]Result, len(items))
	errs := make([]error, len(items))
	serial := Options{Mass: o.Mass, Softening: o.Softening, Backend: dparallel.Serial{}}
	pool := o.Backend
	if pool == nil {
		// Batch items are heavyweight: spread them across workers even for
		// small batches (the default pool's chunking floor assumes cheap
		// per-index work).
		pool = dparallel.Parallel{MinChunk: 1}
	}
	dparallel.MapChunks(pool, len(items), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i], errs[i] = BruteForce(items[i].X, items[i].Y, items[i].Z, serial)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Unwrap returns copies of the member coordinates (selected by idx from
// the full arrays) unwrapped relative to the first member in a periodic
// box, so that compact objects straddling the wrap become contiguous.
func Unwrap(x, y, z []float64, idx []int, box float64) (ux, uy, uz []float64) {
	n := len(idx)
	ux = make([]float64, n)
	uy = make([]float64, n)
	uz = make([]float64, n)
	if n == 0 {
		return
	}
	rx, ry, rz := x[idx[0]], y[idx[0]], z[idx[0]]
	for out, i := range idx {
		ux[out] = rx + minImage(x[i], rx, box)
		uy[out] = ry + minImage(y[i], ry, box)
		uz[out] = rz + minImage(z[i], rz, box)
	}
	return
}

func minImage(a, b, l float64) float64 {
	d := a - b
	d -= l * math.Round(d/l)
	return d
}

// boxDist2 returns the squared distance from (x,y,z) to the axis-aligned
// box [minB, maxB]; 0 when inside.
func boxDist2(x, y, z float64, minB, maxB [3]float64) float64 {
	p := [3]float64{x, y, z}
	d2 := 0.0
	for a := 0; a < 3; a++ {
		switch {
		case p[a] < minB[a]:
			d := minB[a] - p[a]
			d2 += d * d
		case p[a] > maxB[a]:
			d := p[a] - maxB[a]
			d2 += d * d
		}
	}
	return d2
}
