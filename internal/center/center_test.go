package center

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dparallel"
)

// plummerish generates a centrally concentrated cluster: the density peak
// (and hence the potential minimum) sits near the origin.
func plummerish(n int, seed int64) (x, y, z []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	for i := 0; i < n; i++ {
		r := math.Pow(rng.Float64(), 2) * 3 // concentrated toward r=0
		theta := math.Acos(2*rng.Float64() - 1)
		phi := 2 * math.Pi * rng.Float64()
		x[i] = r * math.Sin(theta) * math.Cos(phi)
		y[i] = r * math.Sin(theta) * math.Sin(phi)
		z[i] = r * math.Cos(theta)
	}
	return
}

func TestPotentialPairSymmetryAndValue(t *testing.T) {
	x := []float64{0, 3}
	y := []float64{0, 4}
	z := []float64{0, 0}
	// Distance 5, mass 2, softening 1 -> pot = -2/6.
	p0 := Potential(x, y, z, 0, 2, 1)
	p1 := Potential(x, y, z, 1, 2, 1)
	want := -2.0 / 6.0
	if math.Abs(p0-want) > 1e-12 || math.Abs(p1-want) > 1e-12 {
		t.Errorf("pot = %v, %v, want %v", p0, p1, want)
	}
}

func TestPotentialSkipsSelf(t *testing.T) {
	x := []float64{1}
	y := []float64{2}
	z := []float64{3}
	if p := Potential(x, y, z, 0, 1, 0); p != 0 {
		t.Errorf("single particle potential = %v, want 0", p)
	}
}

func TestBruteForceValidation(t *testing.T) {
	if _, err := BruteForce(nil, nil, nil, Options{}); err == nil {
		t.Error("expected error for empty set")
	}
	if _, err := BruteForce([]float64{1}, []float64{1, 2}, []float64{1}, Options{}); err == nil {
		t.Error("expected length error")
	}
}

func TestAStarValidation(t *testing.T) {
	if _, err := AStar(nil, nil, nil, Options{}); err == nil {
		t.Error("expected error for empty set")
	}
	if _, err := AStar([]float64{1}, []float64{1, 2}, []float64{1}, Options{}); err == nil {
		t.Error("expected length error")
	}
}

// The MBP of a dense clump plus distant outliers must be inside the clump.
func TestBruteForceFindsClumpCenter(t *testing.T) {
	x, y, z := plummerish(200, 1)
	// Add isolated far particles.
	x = append(x, 100, -100)
	y = append(y, 100, -100)
	z = append(z, 100, -100)
	res, err := BruteForce(x, y, z, Options{Softening: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	r := math.Sqrt(x[res.Index]*x[res.Index] + y[res.Index]*y[res.Index] + z[res.Index]*z[res.Index])
	if r > 1.5 {
		t.Errorf("MBP at radius %v, want inside the clump", r)
	}
	if res.Evaluated != len(x) {
		t.Errorf("brute force evaluated %d, want all %d", res.Evaluated, len(x))
	}
}

// A* and brute force must agree exactly on the argmin.
func TestAStarMatchesBruteForce(t *testing.T) {
	for _, n := range []int{10, 100, 500} {
		x, y, z := plummerish(n, int64(n))
		o := Options{Softening: 1e-3, GroupLeaf: 16}
		bf, err := BruteForce(x, y, z, o)
		if err != nil {
			t.Fatal(err)
		}
		as, err := AStar(x, y, z, o)
		if err != nil {
			t.Fatal(err)
		}
		if as.Index != bf.Index {
			t.Errorf("n=%d: A* index %d (pot %v), brute %d (pot %v)",
				n, as.Index, as.Potential, bf.Index, bf.Potential)
		}
		if math.Abs(as.Potential-bf.Potential) > 1e-9 {
			t.Errorf("n=%d: potentials differ: %v vs %v", n, as.Potential, bf.Potential)
		}
	}
}

// A* should evaluate far fewer exact potentials than n on concentrated
// configurations — that is its entire reason for existing.
func TestAStarPrunes(t *testing.T) {
	n := 2000
	x, y, z := plummerish(n, 7)
	res, err := AStar(x, y, z, Options{Softening: 1e-3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated >= n/2 {
		t.Errorf("A* evaluated %d of %d, expected substantial pruning", res.Evaluated, n)
	}
	t.Logf("A* evaluated %d of %d (%.1f%%)", res.Evaluated, n, 100*float64(res.Evaluated)/float64(n))
}

// All backends must return the same MBP.
func TestBruteForceBackendsAgree(t *testing.T) {
	x, y, z := plummerish(300, 3)
	var first Result
	for bi, b := range []dparallel.Backend{
		dparallel.Serial{},
		dparallel.Parallel{NumWorkers: 4, MinChunk: 16},
		dparallel.Device{Speedup: 50, Label: "K20X"},
	} {
		res, err := BruteForce(x, y, z, Options{Softening: 1e-3, Backend: b})
		if err != nil {
			t.Fatal(err)
		}
		if bi == 0 {
			first = res
			continue
		}
		if res.Index != first.Index {
			t.Errorf("backend %s: index %d != %d", b.Name(), res.Index, first.Index)
		}
	}
}

func TestZeroSofteningCoincidentParticles(t *testing.T) {
	// Two coincident particles with zero softening: infinite binding. The
	// finders must not panic and must pick one of the pair.
	x := []float64{1, 1, 5}
	y := []float64{1, 1, 5}
	z := []float64{1, 1, 5}
	bf, err := BruteForce(x, y, z, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Index != 0 && bf.Index != 1 {
		t.Errorf("brute index = %d", bf.Index)
	}
	as, err := AStar(x, y, z, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if as.Index != 0 && as.Index != 1 {
		t.Errorf("A* index = %d", as.Index)
	}
}

func TestUnwrapStraddlingHalo(t *testing.T) {
	box := 10.0
	x := []float64{9.8, 0.1, 9.9}
	y := []float64{5, 5, 5}
	z := []float64{5, 5, 5}
	ux, uy, uz := Unwrap(x, y, z, []int{0, 1, 2}, box)
	// All unwrapped x must be within ~0.5 of the reference 9.8.
	for i, v := range ux {
		if math.Abs(v-9.8) > 0.5 {
			t.Errorf("ux[%d] = %v", i, v)
		}
	}
	if uy[1] != 5 || uz[2] != 5 {
		t.Error("y/z should be unchanged")
	}
	// Empty selection.
	ex, ey, ez := Unwrap(x, y, z, nil, box)
	if len(ex) != 0 || len(ey) != 0 || len(ez) != 0 {
		t.Error("expected empty output")
	}
}

// Property: A* equals brute force on random configurations.
func TestPropertyAStarMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := range x {
			x[i] = rng.Float64() * 10
			y[i] = rng.Float64() * 10
			z[i] = rng.Float64() * 10
		}
		o := Options{Softening: 1e-2, GroupLeaf: 8}
		bf, err1 := BruteForce(x, y, z, o)
		as, err2 := AStar(x, y, z, o)
		if err1 != nil || err2 != nil {
			return false
		}
		// Argmin may legitimately differ only when potentials tie.
		return as.Index == bf.Index || math.Abs(as.Potential-bf.Potential) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestBruteForceBatchMatchesIndividual(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var items []BatchItem
	for h := 0; h < 20; h++ {
		n := 10 + rng.Intn(80)
		x, y, z := plummerish(n, int64(h))
		items = append(items, BatchItem{X: x, Y: y, Z: z})
	}
	o := Options{Softening: 1e-3}
	batch, err := BruteForceBatch(items, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(items) {
		t.Fatalf("results = %d", len(batch))
	}
	for i, item := range items {
		single, err := BruteForce(item.X, item.Y, item.Z, o)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Index != single.Index {
			t.Errorf("item %d: batch %d vs single %d", i, batch[i].Index, single.Index)
		}
	}
}

func TestBruteForceBatchValidation(t *testing.T) {
	if _, err := BruteForceBatch([]BatchItem{{}}, Options{}); err == nil {
		t.Error("expected empty-item error")
	}
	if _, err := BruteForceBatch([]BatchItem{{X: []float64{1}, Y: []float64{1, 2}, Z: []float64{1}}}, Options{}); err == nil {
		t.Error("expected length error")
	}
	// Empty batch is fine.
	out, err := BruteForceBatch(nil, Options{})
	if err != nil || len(out) != 0 {
		t.Errorf("empty batch: %v %v", out, err)
	}
}
