// Package tracking matches halos between successive simulation snapshots
// by shared particle tags, building the time-evolution links the paper's
// introduction frames as a core analysis goal: "Once the first bound
// objects (halos) form, analysis tasks are carried out to not only capture
// these structures within one time snapshot but also to track their
// evolution to the end of the simulation. Over time, halos merge and
// accrete mass" (§3).
//
// Matching uses the standard maximum-shared-membership criterion: halo B
// at the later step is the descendant of halo A at the earlier step if B
// contains more of A's particles than any other later halo does. Several
// progenitors mapping to one descendant is a merger; the progenitor
// contributing the most particles is the main progenitor.
package tracking

import (
	"fmt"
	"sort"

	"repro/internal/halo"
	"repro/internal/nbody"
)

// Link connects a progenitor halo to its descendant.
type Link struct {
	// ProgenitorTag and DescendantTag are the halo tags (min member tag).
	ProgenitorTag, DescendantTag int64
	// Shared counts particles in both.
	Shared int
	// ProgenitorCount and DescendantCount are the halo sizes.
	ProgenitorCount, DescendantCount int
	// MainProgenitor marks the largest contributor to the descendant.
	MainProgenitor bool
}

// Matches is the result of matching one snapshot pair.
type Matches struct {
	// Links, ordered by descendant tag then descending shared count.
	Links []Link
	// Mergers maps descendant tags with >= 2 progenitors to the count.
	Mergers map[int64]int
	// Orphans lists progenitor tags with no descendant (halos whose
	// particles dispersed below the match threshold).
	Orphans []int64
}

// Options configures matching.
type Options struct {
	// MinShared is the minimum shared-particle count for a link (>= 1).
	MinShared int
	// MinSharedFraction additionally requires shared/progenitor size to
	// reach this fraction (0 disables).
	MinSharedFraction float64
}

func (o Options) validate() error {
	if o.MinShared < 1 {
		return fmt.Errorf("tracking: MinShared %d must be >= 1", o.MinShared)
	}
	if o.MinSharedFraction < 0 || o.MinSharedFraction > 1 {
		return fmt.Errorf("tracking: MinSharedFraction %g out of [0, 1]", o.MinSharedFraction)
	}
	return nil
}

// Match links halos of the earlier catalog (over particle set pA) to
// halos of the later catalog (over particle set pB) via shared tags.
func Match(pA *nbody.Particles, catA *halo.Catalog, pB *nbody.Particles, catB *halo.Catalog, o Options) (*Matches, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	// Map: particle tag -> descendant halo index.
	tagToB := make(map[int64]int)
	for hi := range catB.Halos {
		for _, i := range catB.Halos[hi].Indices {
			tagToB[pB.Tag[i]] = hi
		}
	}
	out := &Matches{Mergers: map[int64]int{}}
	// sharedWith[descIdx] per progenitor.
	type cand struct {
		descIdx int
		shared  int
	}
	bestSharedIntoDesc := map[int]int{} // descendant idx -> best shared so far
	bestProgOfDesc := map[int]int{}     // descendant idx -> link index in out.Links
	for ai := range catA.Halos {
		prog := &catA.Halos[ai]
		counts := map[int]int{}
		for _, i := range prog.Indices {
			if bi, ok := tagToB[pA.Tag[i]]; ok {
				counts[bi]++
			}
		}
		// Descendant = the later halo holding the most of this halo.
		best := cand{-1, 0}
		for bi, c := range counts {
			if c > best.shared || (c == best.shared && best.descIdx >= 0 && catB.Halos[bi].Tag < catB.Halos[best.descIdx].Tag) {
				best = cand{bi, c}
			}
		}
		if best.descIdx < 0 || best.shared < o.MinShared ||
			float64(best.shared) < o.MinSharedFraction*float64(prog.Count()) {
			out.Orphans = append(out.Orphans, prog.Tag)
			continue
		}
		desc := &catB.Halos[best.descIdx]
		out.Links = append(out.Links, Link{
			ProgenitorTag:   prog.Tag,
			DescendantTag:   desc.Tag,
			Shared:          best.shared,
			ProgenitorCount: prog.Count(),
			DescendantCount: desc.Count(),
		})
		out.Mergers[desc.Tag]++
		li := len(out.Links) - 1
		if best.shared > bestSharedIntoDesc[best.descIdx] {
			if prev, ok := bestProgOfDesc[best.descIdx]; ok {
				out.Links[prev].MainProgenitor = false
			}
			bestSharedIntoDesc[best.descIdx] = best.shared
			bestProgOfDesc[best.descIdx] = li
			out.Links[li].MainProgenitor = true
		}
	}
	// Keep only true mergers (>= 2 progenitors).
	for tag, n := range out.Mergers {
		if n < 2 {
			delete(out.Mergers, tag)
		}
	}
	sort.Slice(out.Links, func(a, b int) bool {
		if out.Links[a].DescendantTag != out.Links[b].DescendantTag {
			return out.Links[a].DescendantTag < out.Links[b].DescendantTag
		}
		return out.Links[a].Shared > out.Links[b].Shared
	})
	sort.Slice(out.Orphans, func(a, b int) bool { return out.Orphans[a] < out.Orphans[b] })
	return out, nil
}

// History is a halo's main-progenitor line across many snapshots.
type History struct {
	// Tags per step, earliest first (the halo's identity can change as
	// min-tag members are accreted; the track follows main-progenitor
	// links).
	Tags []int64
}

// Track follows the main-progenitor line of the final catalog's halo with
// the given tag backwards through the per-step match results (matches[i]
// links step i to step i+1; len(matches) = len(steps)-1).
func Track(finalTag int64, matches []*Matches) (*History, error) {
	h := &History{}
	tag := finalTag
	// Walk backwards: find the main progenitor of tag at each earlier step.
	var reversedTags []int64
	reversedTags = append(reversedTags, tag)
	for step := len(matches) - 1; step >= 0; step-- {
		found := false
		for _, l := range matches[step].Links {
			if l.DescendantTag == tag && l.MainProgenitor {
				tag = l.ProgenitorTag
				reversedTags = append(reversedTags, tag)
				found = true
				break
			}
		}
		if !found {
			break // halo formed after this step
		}
	}
	for i := len(reversedTags) - 1; i >= 0; i-- {
		h.Tags = append(h.Tags, reversedTags[i])
	}
	if len(h.Tags) == 0 {
		return nil, fmt.Errorf("tracking: no history for halo %d", finalTag)
	}
	return h, nil
}
