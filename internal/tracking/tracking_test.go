package tracking

import (
	"math/rand"
	"testing"

	"repro/internal/halo"
	"repro/internal/nbody"
)

// makeSnapshot builds a particle set and finds its halos.
func makeSnapshot(t *testing.T, build func(p *nbody.Particles)) (*nbody.Particles, *halo.Catalog) {
	t.Helper()
	p := nbody.NewParticles(0)
	build(p)
	cat, err := halo.FOF(p, 20, halo.Options{LinkingLength: 0.3, MinSize: 5, Periodic: true})
	if err != nil {
		t.Fatal(err)
	}
	return p, cat
}

// clump appends n particles with consecutive tags near a point.
func clump(p *nbody.Particles, n int, cx, cy, cz float64, tagBase int64, rng *rand.Rand) {
	for i := 0; i < n; i++ {
		p.Append(cx+rng.Float64()*0.2, cy+rng.Float64()*0.2, cz+rng.Float64()*0.2,
			0, 0, 0, tagBase+int64(i))
	}
}

func TestOptionsValidation(t *testing.T) {
	pa := nbody.NewParticles(0)
	ca := &halo.Catalog{}
	if _, err := Match(pa, ca, pa, ca, Options{MinShared: 0}); err == nil {
		t.Error("expected MinShared error")
	}
	if _, err := Match(pa, ca, pa, ca, Options{MinShared: 1, MinSharedFraction: 2}); err == nil {
		t.Error("expected fraction error")
	}
}

// A halo that persists (same particles, moved) must link to itself with
// MainProgenitor set.
func TestPersistentHaloLinks(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pa, ca := makeSnapshot(t, func(p *nbody.Particles) {
		clump(p, 30, 5, 5, 5, 0, rng)
		clump(p, 20, 12, 12, 12, 1000, rng)
	})
	pb, cb := makeSnapshot(t, func(p *nbody.Particles) {
		clump(p, 30, 6, 5, 5, 0, rng)       // same tags, drifted
		clump(p, 20, 12, 13, 12, 1000, rng) // same tags, drifted
	})
	m, err := Match(pa, ca, pb, cb, Options{MinShared: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Links) != 2 {
		t.Fatalf("links = %+v", m.Links)
	}
	for _, l := range m.Links {
		if l.ProgenitorTag != l.DescendantTag {
			t.Errorf("halo changed identity: %+v", l)
		}
		if !l.MainProgenitor {
			t.Errorf("persistent halo not main progenitor: %+v", l)
		}
		if l.Shared != l.ProgenitorCount {
			t.Errorf("shared %d != progenitor size %d", l.Shared, l.ProgenitorCount)
		}
	}
	if len(m.Mergers) != 0 || len(m.Orphans) != 0 {
		t.Errorf("mergers=%v orphans=%v", m.Mergers, m.Orphans)
	}
}

// Two progenitors merging into one descendant: a merger with the larger
// progenitor as main.
func TestMergerDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pa, ca := makeSnapshot(t, func(p *nbody.Particles) {
		clump(p, 40, 4, 4, 4, 0, rng)
		clump(p, 15, 10, 10, 10, 500, rng)
	})
	// Later: both clumps at the same place -> one halo.
	pb, cb := makeSnapshot(t, func(p *nbody.Particles) {
		clump(p, 40, 7, 7, 7, 0, rng)
		clump(p, 15, 7.1, 7.1, 7.1, 500, rng)
	})
	if len(cb.Halos) != 1 {
		t.Fatalf("later snapshot should have one merged halo, got %d", len(cb.Halos))
	}
	m, err := Match(pa, ca, pb, cb, Options{MinShared: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Links) != 2 {
		t.Fatalf("links = %+v", m.Links)
	}
	if n := m.Mergers[cb.Halos[0].Tag]; n != 2 {
		t.Errorf("merger count = %d", n)
	}
	mains := 0
	for _, l := range m.Links {
		if l.MainProgenitor {
			mains++
			if l.ProgenitorCount != 40 {
				t.Errorf("main progenitor should be the 40-particle halo, got %d", l.ProgenitorCount)
			}
		}
	}
	if mains != 1 {
		t.Errorf("main progenitors = %d", mains)
	}
}

// A halo whose particles disperse has no descendant: an orphan.
func TestOrphanDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pa, ca := makeSnapshot(t, func(p *nbody.Particles) {
		clump(p, 20, 5, 5, 5, 0, rng)
	})
	// Later: the same tags scattered uniformly (no halo).
	pb, cb := makeSnapshot(t, func(p *nbody.Particles) {
		for i := 0; i < 20; i++ {
			p.Append(rng.Float64()*20, rng.Float64()*20, rng.Float64()*20, 0, 0, 0, int64(i))
		}
	})
	if len(cb.Halos) != 0 {
		t.Fatalf("scattered snapshot should have no halos, got %d", len(cb.Halos))
	}
	m, err := Match(pa, ca, pb, cb, Options{MinShared: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Orphans) != 1 || m.Orphans[0] != ca.Halos[0].Tag {
		t.Errorf("orphans = %v", m.Orphans)
	}
}

func TestMinSharedFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pa, ca := makeSnapshot(t, func(p *nbody.Particles) {
		clump(p, 40, 5, 5, 5, 0, rng)
	})
	// Later halo keeps only 8 of the 40 particles (plus 30 new ones).
	pb, cb := makeSnapshot(t, func(p *nbody.Particles) {
		clump(p, 8, 10, 10, 10, 0, rng)
		clump(p, 30, 10.1, 10.1, 10.1, 9000, rng)
	})
	strict := Options{MinShared: 1, MinSharedFraction: 0.5}
	m, err := Match(pa, ca, pb, cb, strict)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Links) != 0 || len(m.Orphans) != 1 {
		t.Errorf("strict matching: links=%v orphans=%v", m.Links, m.Orphans)
	}
	loose := Options{MinShared: 1}
	m2, err := Match(pa, ca, pb, cb, loose)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Links) != 1 {
		t.Errorf("loose matching: links=%v", m2.Links)
	}
}

// Track follows the main-progenitor line through multiple steps.
func TestTrackMainProgenitorLine(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Step 0: two halos. Step 1: still two. Step 2: merged.
	p0, c0 := makeSnapshot(t, func(p *nbody.Particles) {
		clump(p, 30, 4, 4, 4, 0, rng)
		clump(p, 10, 12, 12, 12, 700, rng)
	})
	p1, c1 := makeSnapshot(t, func(p *nbody.Particles) {
		clump(p, 30, 6, 6, 6, 0, rng)
		clump(p, 10, 10, 10, 10, 700, rng)
	})
	p2, c2 := makeSnapshot(t, func(p *nbody.Particles) {
		clump(p, 30, 8, 8, 8, 0, rng)
		clump(p, 10, 8.1, 8.1, 8.1, 700, rng)
	})
	m01, err := Match(p0, c0, p1, c1, Options{MinShared: 3})
	if err != nil {
		t.Fatal(err)
	}
	m12, err := Match(p1, c1, p2, c2, Options{MinShared: 3})
	if err != nil {
		t.Fatal(err)
	}
	finalTag := c2.Halos[0].Tag
	h, err := Track(finalTag, []*Matches{m01, m12})
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Tags) != 3 {
		t.Fatalf("history = %+v", h)
	}
	// The main line is the 30-particle halo (tag 0) throughout.
	for i, tag := range h.Tags {
		if tag != 0 {
			t.Errorf("step %d: tag %d, want 0", i, tag)
		}
	}
}

func TestTrackUnknownHalo(t *testing.T) {
	h, err := Track(999, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Tags) != 1 || h.Tags[0] != 999 {
		t.Errorf("history = %+v", h)
	}
}
