package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Charge-policy cost accounting.
//
// The paper prices campaigns under the Titan allocation policy: holding
// one node for an hour charges 30 core-hours, regardless of how many of
// the node's cores the job uses (Table 3's footnote). A ChargePolicy
// generalizes that: a per-machine core-hours-per-node-hour factor, and
// the CostReport folds every charged span (Nodes > 0) into a per-
// category line of wall seconds, node-hours, and core-hours. Spans with
// Nodes == 0 (queue waits, transit deliveries) still report wall
// seconds — visible time, zero charge — which is exactly the paper's
// distinction between queueing delay and billed analysis time.

// ChargePolicy maps machine names to core-hours charged per node-hour.
type ChargePolicy struct {
	Name string
	// Factors maps Machine.Name → charge factor. Machines not listed
	// fall back to Default.
	Factors map[string]float64
	Default float64
}

// TitanChargePolicy is the paper's policy: Titan charges 30 core-hours
// per node-hour; the smaller analysis machines (Moonlight, Rhea) charge
// 16, their cores-per-node.
func TitanChargePolicy() ChargePolicy {
	return ChargePolicy{
		Name:    "titan",
		Factors: map[string]float64{"Titan": 30, "Moonlight": 16, "Rhea": 16},
		Default: 16,
	}
}

// Factor returns the charge factor for a machine name.
func (p ChargePolicy) Factor(machine string) float64 {
	if f, ok := p.Factors[machine]; ok {
		return f
	}
	return p.Default
}

// CostLine is one span category's rollup.
type CostLine struct {
	Category  string
	Spans     int
	Seconds   float64 // summed span durations (wall, virtual time)
	NodeHours float64 // Σ nodes × duration / 3600 over charged spans
	CoreHours float64 // node-hours × per-machine charge factor
}

// CostReport prices one observer's spans under a policy.
type CostReport struct {
	Name   string // observer name
	Policy string // policy name
	Lines  []CostLine
	Total  CostLine // Category "total"
}

// Cost rolls the observer's spans up by category under the policy.
// Categories sort lexically, so the report is deterministic.
func Cost(o *Observer, p ChargePolicy) CostReport {
	r := CostReport{Name: o.Name(), Policy: p.Name}
	byCat := map[string]*CostLine{}
	for _, sp := range o.Spans() {
		l := byCat[sp.Cat]
		if l == nil {
			l = &CostLine{Category: sp.Cat}
			byCat[sp.Cat] = l
		}
		l.Spans++
		l.Seconds += sp.Duration()
		if sp.Nodes > 0 {
			nh := float64(sp.Nodes) * sp.Duration() / 3600
			l.NodeHours += nh
			l.CoreHours += nh * p.Factor(sp.Machine)
		}
	}
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	for _, c := range cats {
		l := *byCat[c]
		r.Lines = append(r.Lines, l)
		r.Total.Spans += l.Spans
		r.Total.Seconds += l.Seconds
		r.Total.NodeHours += l.NodeHours
		r.Total.CoreHours += l.CoreHours
	}
	r.Total.Category = "total"
	return r
}

// CoreHours returns the report's total charged core-hours.
func (r CostReport) CoreHours() float64 { return r.Total.CoreHours }

// WriteTable renders the report as a fixed-width text table (the
// `workflow-sim -cost` artifact; deterministic bytes).
func (r CostReport) WriteTable(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "cost report: %s (policy %s)\n", r.Name, r.Policy)
	fmt.Fprintf(&b, "  %-22s %6s %14s %12s %12s\n", "category", "spans", "seconds", "node-hours", "core-hours")
	row := func(l CostLine) {
		fmt.Fprintf(&b, "  %-22s %6d %14.2f %12.4f %12.2f\n", l.Category, l.Spans, l.Seconds, l.NodeHours, l.CoreHours)
	}
	for _, l := range r.Lines {
		row(l)
	}
	row(r.Total)
	_, err := io.WriteString(w, b.String())
	return err
}
