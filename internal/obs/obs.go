// Package obs is the deterministic observability layer of the workflow
// stack: spans, metrics, and charge-policy cost accounting, all stamped
// with *simulated* time.
//
// The paper's central evaluation is cost accounting — it compares
// workflow variants by measured I/O, redistribution, queueing and
// analysis times priced under the Titan charge policy ("an hour per node
// leads to a charge of 30 core hours", Table 3). This package makes that
// accounting a first-class artifact of every run: the campaign engine,
// scheduler, supervisor, staging area and scrubber record spans
// (campaign → step → job → delivery → scrub) and metrics (counters,
// gauges, fixed-bucket histograms) against the discrete-event clock, and
// a CostReport prices the span categories in node-hours and core-hours
// under a pluggable ChargePolicy.
//
// Determinism contract: every timestamp comes from the injected Clock —
// the same injectable-clock pattern cosmotools and integrity use — never
// from the wall (workflowlint's dettaint analyzer enforces this: a
// wall-clock value reaching a span timestamp is a build error). Spans are
// recorded in Begin order, which on a discrete-event simulator is the
// deterministic event order; metrics encode in sorted-name order; trace
// JSON, span trees, metrics dumps and cost reports are therefore
// byte-identical across two runs of the same seed, the property CI pins
// with cmp, exactly like the supervision and scrub decision logs.
//
// No-op contract: a nil *Observer (and every nil handle it returns) is
// valid and inert, so instrumented code paths cost a nil check when
// observability is off. The root BenchmarkCampaignObserved pins the
// no-op overhead under 2% (EXPERIMENTS.md).
//
// All Observer methods are safe for concurrent use: the staging area
// (internal/transit) feeds counters from consumer goroutines. Span
// *ordering* stays deterministic only for single-threaded (DES-driven)
// recording; concurrent recorders should restrict themselves to
// counters, whose totals are order-independent.
package obs

import (
	"fmt"
	"sync"
)

// Clock supplies the current virtual time in seconds. It is the ONLY
// sanctioned time source for spans and metrics: drivers inject the
// discrete-event simulator's Now (or any other deterministic clock).
type Clock func() float64

// Span is one timed operation. Fields are exported for export/report
// code; mutate only through the methods, which are nil-receiver safe.
type Span struct {
	// ID is the span's index in recording order; Parent is the enclosing
	// span's ID, or -1 for a root.
	ID, Parent int
	// Cat is the span taxonomy category (see DESIGN.md §13): "campaign",
	// "step", "job", "phase", "transit", "scrub", ...
	Cat string
	// Name identifies the operation within its category.
	Name string
	// Start and End are virtual seconds. open marks a span not yet ended;
	// finalize stamps it with the tracer's last known time.
	Start, End float64
	// Args are key=value annotations in append order (callers append in
	// deterministic order, so no sorting is needed or wanted).
	Args [][2]string
	// Machine and Nodes are the cost dimensions: a span holding Nodes
	// nodes on Machine for its duration is priced by ChargePolicy. Zero
	// Nodes (queue waits, transit deliveries) contributes wall time but
	// no charge.
	Machine string
	Nodes   int

	open bool
	obs  *Observer
}

// Observer records spans and metrics against an injected clock. The zero
// value is not usable; build one with New. A nil *Observer is valid and
// inert everywhere.
type Observer struct {
	mu    sync.Mutex
	name  string
	clock Clock
	spans []*Span
	reg   *Registry
}

// New builds an observer. name labels the trace (the Chrome trace
// process name). clock may be nil if SetClock is called before the first
// span — the campaign engine injects its DES clock at setup time.
func New(name string, clock Clock) *Observer {
	return &Observer{name: name, clock: clock, reg: NewRegistry()}
}

// Name returns the observer's label ("" when nil).
func (o *Observer) Name() string {
	if o == nil {
		return ""
	}
	return o.name
}

// SetClock injects the virtual time source (the engine's sim.Now). It is
// how the campaign engine hands its clock to an observer created before
// the simulator exists. Nil-safe.
func (o *Observer) SetClock(c Clock) {
	if o == nil {
		return
	}
	o.mu.Lock()
	o.clock = c
	o.mu.Unlock()
}

// now reads the clock under the lock (0 before any clock is set).
func (o *Observer) now() float64 {
	if o.clock == nil {
		return 0
	}
	return o.clock()
}

// Metrics returns the observer's registry (nil when the observer is nil,
// and a nil *Registry is itself inert).
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Begin opens a root span at the current virtual time.
func (o *Observer) Begin(cat, name string) *Span { return o.beginAt(nil, cat, name, -1, true) }

// BeginAt opens a root span at an explicit virtual time t (useful when
// the span logically started before the callback observing it ran).
func (o *Observer) BeginAt(cat, name string, t float64) *Span {
	return o.beginAt(nil, cat, name, t, false)
}

// BeginUnder opens a span nested under parent at the current virtual
// time. A nil parent makes a root span.
func (o *Observer) BeginUnder(parent *Span, cat, name string) *Span {
	return o.beginAt(parent, cat, name, -1, true)
}

// SpanAt records a complete retroactive span [start, end] under parent
// (nil parent: root). The workflow runners use it to lay down phase
// spans whose durations come from the calibrated cost model rather than
// from bracketing live code.
func (o *Observer) SpanAt(parent *Span, cat, name string, start, end float64) *Span {
	sp := o.beginAt(parent, cat, name, start, false)
	sp.EndAt(end)
	return sp
}

func (o *Observer) beginAt(parent *Span, cat, name string, t float64, useClock bool) *Span {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	if useClock {
		t = o.now()
	}
	pid := -1
	if parent != nil {
		pid = parent.ID
	}
	sp := &Span{ID: len(o.spans), Parent: pid, Cat: cat, Name: name, Start: t, End: t, open: true, obs: o}
	o.spans = append(o.spans, sp)
	return sp
}

// Done closes the span at the current virtual time. Nil-safe; ending a
// closed span is a no-op.
func (sp *Span) Done() {
	if sp == nil {
		return
	}
	sp.obs.mu.Lock()
	defer sp.obs.mu.Unlock()
	if !sp.open {
		return
	}
	sp.open = false
	sp.endLocked(sp.obs.now())
}

// EndAt closes the span at an explicit virtual time.
func (sp *Span) EndAt(t float64) {
	if sp == nil {
		return
	}
	sp.obs.mu.Lock()
	defer sp.obs.mu.Unlock()
	if !sp.open {
		return
	}
	sp.open = false
	sp.endLocked(t)
}

// endLocked stamps the end time, clamped so spans never run backwards.
// Caller holds the observer lock.
func (sp *Span) endLocked(t float64) {
	if t < sp.Start {
		t = sp.Start
	}
	sp.End = t
}

// Arg annotates the span with a key=value pair. Append order is the
// caller's (deterministic) order.
func (sp *Span) Arg(key, value string) *Span {
	if sp == nil {
		return nil
	}
	sp.obs.mu.Lock()
	sp.Args = append(sp.Args, [2]string{key, value})
	sp.obs.mu.Unlock()
	return sp
}

// ArgF annotates the span with a float value (formatted %g, which is
// deterministic for a given float64).
func (sp *Span) ArgF(key string, v float64) *Span { return sp.Arg(key, fmt.Sprintf("%g", v)) }

// Charge sets the span's cost dimensions: nodes held on machine for the
// span's duration. The CostReport prices duration × nodes under the
// policy's per-machine factor.
func (sp *Span) Charge(machine string, nodes int) *Span {
	if sp == nil {
		return nil
	}
	sp.obs.mu.Lock()
	sp.Machine, sp.Nodes = machine, nodes
	sp.obs.mu.Unlock()
	return sp
}

// Duration returns End-Start (0 for nil).
func (sp *Span) Duration() float64 {
	if sp == nil {
		return 0
	}
	return sp.End - sp.Start
}

// Spans returns the recorded spans in recording order, first closing any
// still-open span at the current virtual time. The returned slice is the
// observer's own (callers must not mutate).
func (o *Observer) Spans() []*Span {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	now := o.now()
	for _, sp := range o.spans {
		if sp.open {
			sp.open = false
			sp.endLocked(now)
		}
	}
	return o.spans
}
