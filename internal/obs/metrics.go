package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Registry holds named metrics. Get-or-create accessors are idempotent,
// so instrumentation sites just ask for the metric by name. A nil
// *Registry is valid and inert (every accessor returns a nil handle
// whose methods no-op), which is the no-op observability path.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter is a monotonically increasing count. Safe for concurrent use —
// the staging area increments from consumer goroutines.
type Counter struct {
	mu sync.Mutex
	v  float64
}

// Inc adds 1. Nil-safe.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta. Nil-safe.
func (c *Counter) Add(delta float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.v += delta
	c.mu.Unlock()
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.v
}

// Gauge is a last-written value with a high-water mark.
type Gauge struct {
	mu   sync.Mutex
	v    float64
	max  float64
	seen bool
}

// Set records v (and updates the high-water mark). Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.mu.Lock()
	g.v = v
	if !g.seen || v > g.max {
		g.max = v
	}
	g.seen = true
	g.mu.Unlock()
}

// Value returns the last set value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

// Max returns the high-water mark (0 for nil or never-set).
func (g *Gauge) Max() float64 {
	if g == nil {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.max
}

// Histogram buckets observations against fixed ascending upper bounds.
// counts[i] tallies observations ≤ Bounds[i]; counts[len(Bounds)] is the
// overflow bucket. Fixed bounds make Merge associative and the encode
// deterministic; pick bounds at registration time and never mutate them.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
}

// NewHistogram builds a standalone histogram (registry-less use, e.g. in
// tests). bounds must be ascending.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// Observe records v into its bucket. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.counts[i]++
	h.sum += v
	h.n++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.n
}

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Bounds returns a copy of the bucket upper bounds.
func (h *Histogram) Bounds() []float64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]float64(nil), h.bounds...)
}

// Counts returns a copy of the bucket counts (len(Bounds)+1, last is
// overflow).
func (h *Histogram) Counts() []uint64 {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]uint64(nil), h.counts...)
}

// Merge folds other into h. Both histograms must share identical bounds
// — with fixed bounds the merge is associative and commutative (bucket
// counts and sums just add), the property the shard-merge tests pin.
func (h *Histogram) Merge(other *Histogram) error {
	if h == nil || other == nil {
		return nil
	}
	// Lock ordering: always h then other; callers never Merge in both
	// directions concurrently on the same pair.
	h.mu.Lock()
	defer h.mu.Unlock()
	other.mu.Lock()
	defer other.mu.Unlock()
	if len(h.bounds) != len(other.bounds) {
		return fmt.Errorf("obs: merge of histograms with different bucket layouts (%d vs %d bounds)", len(h.bounds), len(other.bounds))
	}
	for i, b := range h.bounds {
		if other.bounds[i] != b {
			return fmt.Errorf("obs: merge of histograms with different bucket layouts (bound[%d] %g vs %g)", i, b, other.bounds[i])
		}
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.sum += other.sum
	h.n += other.n
	return nil
}

// Counter returns the named counter, creating it on first use. Nil-safe
// (returns a nil handle).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls ignore bounds (first registration
// wins), so instrumentation sites can share one set of bounds constants.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.histograms[name]
	if h == nil {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// WriteText encodes the registry as plain text, metrics sorted by name
// within kind — the deterministic order the CI two-run gate compares.
// Floats render with strconv 'g'/-1, the shortest exact form.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "counter %s %s\n", n, ftoa(r.counters[n].Value()))
	}
	names = names[:0]
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := r.gauges[n]
		fmt.Fprintf(&b, "gauge %s %s max=%s\n", n, ftoa(g.Value()), ftoa(g.Max()))
	}
	names = names[:0]
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := r.histograms[n]
		fmt.Fprintf(&b, "histogram %s count=%d sum=%s", n, h.Count(), ftoa(h.Sum()))
		bounds, counts := h.Bounds(), h.Counts()
		for i, c := range counts {
			if c == 0 {
				continue
			}
			if i < len(bounds) {
				fmt.Fprintf(&b, " le%s=%d", ftoa(bounds[i]), c)
			} else {
				fmt.Fprintf(&b, " inf=%d", c)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ftoa is the package's one float formatter: shortest round-trip form,
// identical across runs and platforms for a given float64.
func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
