package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

// fakeClock is a settable deterministic clock.
type fakeClock struct{ t float64 }

func (c *fakeClock) now() float64 { return c.t }

func TestNilObserverInert(t *testing.T) {
	var o *Observer
	o.SetClock(func() float64 { return 1 })
	sp := o.Begin("cat", "x")
	if sp != nil {
		t.Fatalf("nil observer Begin = %v, want nil", sp)
	}
	// Every span method must tolerate nil.
	sp.Done()
	sp.EndAt(5)
	sp.Arg("k", "v").ArgF("f", 1.5).Charge("Titan", 4)
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration = %g", d)
	}
	if got := o.Spans(); got != nil {
		t.Fatalf("nil observer Spans = %v", got)
	}
	reg := o.Metrics()
	reg.Counter("c").Inc()
	reg.Gauge("g").Set(3)
	reg.Histogram("h", []float64{1}).Observe(2)
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil registry WriteText = %q, %v", buf.String(), err)
	}
	if err := WriteTrace(&buf, o, nil); err != nil {
		t.Fatalf("WriteTrace(nil observers): %v", err)
	}
	if err := WriteSpanTree(&buf, o); err != nil {
		t.Fatalf("WriteSpanTree(nil): %v", err)
	}
}

func TestSpanTreeAndClock(t *testing.T) {
	clk := &fakeClock{}
	o := New("test", nil)
	o.SetClock(clk.now)
	root := o.Begin("campaign", "c8")
	clk.t = 10
	step := o.BeginUnder(root, "step", "step-000")
	clk.t = 25
	job := o.BeginUnder(step, "job", "post-000#1").Charge("Moonlight", 4)
	clk.t = 40
	job.Done()
	step.EndAt(50)
	clk.t = 60
	// Retroactive span under root.
	o.SpanAt(root, "phase", "sim", 0, 55).Charge("Titan", 32)
	root.Done()

	spans := o.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	if spans[2].Start != 25 || spans[2].End != 40 || spans[2].Parent != spans[1].ID {
		t.Fatalf("job span = %+v", *spans[2])
	}
	if spans[0].End != 60 {
		t.Fatalf("root end = %g, want 60", spans[0].End)
	}
	var tree bytes.Buffer
	if err := WriteSpanTree(&tree, o); err != nil {
		t.Fatal(err)
	}
	out := tree.String()
	for _, want := range []string{
		"campaign/c8 [0, 60] dur=60",
		"  step/step-000 [10, 50] dur=40",
		"    job/post-000#1 [25, 40] dur=15 Moonlight×4",
		"  phase/sim [0, 55] dur=55 Titan×32",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("span tree missing %q:\n%s", want, out)
		}
	}
}

func TestEndIsIdempotentAndClamped(t *testing.T) {
	clk := &fakeClock{t: 5}
	o := New("t", clk.now)
	sp := o.Begin("c", "n")
	clk.t = 9
	sp.Done()
	clk.t = 100
	sp.Done() // second End must not move the stamp
	if sp.Duration() != 4 {
		t.Fatalf("duration = %g, want 4", sp.Duration())
	}
	early := o.BeginAt("c", "back", 50)
	early.EndAt(10) // clamped: spans never run backwards
	if early.End != 50 {
		t.Fatalf("clamped end = %g, want 50", early.End)
	}
}

func TestTraceDeterministicBytes(t *testing.T) {
	build := func() *Observer {
		clk := &fakeClock{}
		o := New("det", clk.now)
		r := o.Begin("campaign", "c")
		for i := 0; i < 3; i++ {
			clk.t = float64(i * 10)
			s := o.BeginUnder(r, "step", "s").ArgF("i", float64(i))
			clk.t += 5
			s.Done()
		}
		clk.t = 100
		r.Done()
		o.Metrics().Counter("sched.jobs_submitted").Add(3)
		o.Metrics().Histogram("sched.queue_wait_seconds", []float64{1, 10, 100}).Observe(7)
		return o
	}
	var t1, t2, m1, m2, s1, s2 bytes.Buffer
	a, b := build(), build()
	if err := WriteTrace(&t1, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteTrace(&t2, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(t1.Bytes(), t2.Bytes()) {
		t.Fatalf("trace JSON differs across identical runs:\n%s\n---\n%s", t1.String(), t2.String())
	}
	if err := a.Metrics().WriteText(&m1); err != nil {
		t.Fatal(err)
	}
	if err := b.Metrics().WriteText(&m2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m1.Bytes(), m2.Bytes()) {
		t.Fatalf("metrics text differs:\n%s\n---\n%s", m1.String(), m2.String())
	}
	if err := WriteSpanTree(&s1, a); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpanTree(&s2, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatalf("span tree differs")
	}
	// Sanity on the JSON surface: metadata + fixed field order.
	for _, want := range []string{
		`"ph":"M"`, `"process_name"`, `{"ph":"X","pid":1,"tid":1,"ts":0,"dur":100000000,"name":"c","cat":"campaign"`,
	} {
		if !strings.Contains(t1.String(), want) {
			t.Fatalf("trace missing %q:\n%s", want, t1.String())
		}
	}
}

func TestRegistryEncodeOrderAndValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(2)
	r.Counter("a.first").Inc()
	r.Gauge("mid").Set(7)
	r.Gauge("mid").Set(3) // max stays 7
	h := r.Histogram("lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	want := "counter a.first 1\n" +
		"counter z.last 2\n" +
		"gauge mid 3 max=7\n" +
		"histogram lat count=3 sum=55.5 le1=1 le10=1 inf=1\n"
	if buf.String() != want {
		t.Fatalf("registry encode:\n%s\nwant:\n%s", buf.String(), want)
	}
}

func TestHistogramMergeAssociative(t *testing.T) {
	bounds := []float64{1, 10, 100, 1000}
	fill := func(obs []float64) *Histogram {
		h := NewHistogram(bounds)
		for _, v := range obs {
			// Fold quick's arbitrary float64s into a workload-shaped
			// range; bucket counts must still merge exactly.
			h.Observe(math.Abs(math.Mod(v, 2000)))
		}
		return h
	}
	eq := func(a, b *Histogram) bool {
		ca, cb := a.Counts(), b.Counts()
		if len(ca) != len(cb) || a.Count() != b.Count() {
			return false
		}
		// Bucket counts are integers: merge order must not change them
		// at all. The float sum is associative only up to rounding.
		for i := range ca {
			if ca[i] != cb[i] {
				return false
			}
		}
		diff := math.Abs(a.Sum() - b.Sum())
		scale := math.Max(math.Abs(a.Sum()), 1)
		return diff <= 1e-9*scale
	}
	// (A⊕B)⊕C == A⊕(B⊕C) for arbitrary observation sets.
	prop := func(xs, ys, zs []float64) bool {
		left := fill(xs)
		if err := left.Merge(fill(ys)); err != nil {
			return false
		}
		if err := left.Merge(fill(zs)); err != nil {
			return false
		}
		bc := fill(ys)
		if err := bc.Merge(fill(zs)); err != nil {
			return false
		}
		right := fill(xs)
		if err := right.Merge(bc); err != nil {
			return false
		}
		return eq(left, right)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeRejectsMismatchedBounds(t *testing.T) {
	a := NewHistogram([]float64{1, 2})
	b := NewHistogram([]float64{1, 3})
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched bounds succeeded")
	}
	c := NewHistogram([]float64{1})
	if err := a.Merge(c); err == nil {
		t.Fatal("merge of different bound counts succeeded")
	}
}

func TestCostReportMath(t *testing.T) {
	clk := &fakeClock{}
	o := New("costy", clk.now)
	// 32 Titan nodes for 3600 s → 32 node-hours → 960 core-hours at 30×.
	o.SpanAt(nil, "phase", "sim", 0, 3600).Charge("Titan", 32)
	// 4 Moonlight nodes for 1800 s → 2 node-hours → 32 core-hours at 16×.
	o.SpanAt(nil, "phase", "post-analysis", 3600, 5400).Charge("Moonlight", 4)
	// Queue wait: wall time but zero nodes → zero charge.
	o.SpanAt(nil, "queue", "post-queue", 3600, 4000)
	r := Cost(o, TitanChargePolicy())
	if len(r.Lines) != 2 {
		t.Fatalf("got %d lines, want 2 (phase, queue)", len(r.Lines))
	}
	phase := r.Lines[0]
	if phase.Category != "phase" || phase.Spans != 2 {
		t.Fatalf("phase line = %+v", phase)
	}
	if phase.NodeHours != 34 || phase.CoreHours != 992 {
		t.Fatalf("phase cost = %g nh / %g ch, want 34 / 992", phase.NodeHours, phase.CoreHours)
	}
	q := r.Lines[1]
	if q.Seconds != 400 || q.CoreHours != 0 {
		t.Fatalf("queue line = %+v", q)
	}
	if r.CoreHours() != 992 {
		t.Fatalf("total core-hours = %g", r.CoreHours())
	}
	var buf bytes.Buffer
	if err := r.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "policy titan") || !strings.Contains(buf.String(), "total") {
		t.Fatalf("cost table:\n%s", buf.String())
	}
}

func TestChargePolicyFallback(t *testing.T) {
	p := TitanChargePolicy()
	if p.Factor("Titan") != 30 || p.Factor("Rhea") != 16 {
		t.Fatal("known machine factors wrong")
	}
	if p.Factor("unknown-cluster") != 16 {
		t.Fatal("default factor not applied")
	}
}
