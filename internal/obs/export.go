package obs

import (
	"fmt"
	"io"
	"strings"
)

// Chrome trace-event export.
//
// The format is the chrome://tracing / Perfetto "JSON Array Format":
// complete events (ph:"X") with microsecond ts/dur, grouped by pid
// (observer) and tid (span category), plus process_name / thread_name
// metadata events so the viewer labels lanes. The encoder is hand-
// rolled with a fixed field order and strconv float formatting —
// encoding/json map iteration would randomize field order and break the
// byte-identical-artifacts CI gate.

// WriteTrace writes the observers' spans as one Chrome trace-event JSON
// document. Each observer becomes a trace "process" (pid = index+1,
// process_name = observer name); each span category becomes a "thread"
// lane in first-seen order. Nil observers are skipped.
func WriteTrace(w io.Writer, observers ...*Observer) error {
	var b strings.Builder
	b.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			b.WriteByte(',')
		}
		first = false
		b.WriteString(s)
	}
	pid := 0
	for _, o := range observers {
		if o == nil {
			continue
		}
		pid++
		name := o.Name()
		if name == "" {
			name = fmt.Sprintf("observer-%d", pid)
		}
		emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":%s}}", pid, quote(name)))
		// tid per category, allocated in first-seen (deterministic) order.
		tids := map[string]int{}
		for _, sp := range o.Spans() {
			tid, ok := tids[sp.Cat]
			if !ok {
				tid = len(tids) + 1
				tids[sp.Cat] = tid
				emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":%s}}", pid, tid, quote(sp.Cat)))
			}
			emit(completeEvent(pid, tid, sp))
		}
	}
	b.WriteString("],\"displayTimeUnit\":\"ms\"}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// completeEvent renders one ph:"X" event. Virtual seconds → integer
// microseconds (exact for the cost model's millisecond-granularity
// times, and deterministic regardless).
func completeEvent(pid, tid int, sp *Span) string {
	var b strings.Builder
	b.WriteString("{\"ph\":\"X\",\"pid\":")
	fmt.Fprintf(&b, "%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"name\":%s,\"cat\":%s",
		pid, tid, usec(sp.Start), usec(sp.Duration()), quote(sp.Name), quote(sp.Cat))
	b.WriteString(",\"args\":{")
	fmt.Fprintf(&b, "\"id\":%d,\"parent\":%d", sp.ID, sp.Parent)
	if sp.Machine != "" || sp.Nodes != 0 {
		fmt.Fprintf(&b, ",\"machine\":%s,\"nodes\":%d", quote(sp.Machine), sp.Nodes)
	}
	for _, kv := range sp.Args {
		fmt.Fprintf(&b, ",%s:%s", quote(kv[0]), quote(kv[1]))
	}
	b.WriteString("}}")
	return b.String()
}

func usec(sec float64) int64 {
	return int64(sec*1e6 + 0.5)
}

// quote JSON-escapes a string. Span names and args are ASCII by
// construction, but escape defensively.
func quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&b, `\u%04x`, r)
			} else {
				b.WriteRune(r)
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

// WriteSpanTree writes a plain-text indented rendering of an observer's
// span forest — the human-readable twin of the trace JSON, and the
// easier artifact to cmp or grep in CI.
func WriteSpanTree(w io.Writer, o *Observer) error {
	if o == nil {
		return nil
	}
	spans := o.Spans()
	children := make(map[int][]*Span, len(spans))
	var roots []*Span
	for _, sp := range spans {
		if sp.Parent < 0 {
			roots = append(roots, sp)
		} else {
			children[sp.Parent] = append(children[sp.Parent], sp)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# span tree: %s (%d spans)\n", o.Name(), len(spans))
	var walk func(sp *Span, depth int)
	walk = func(sp *Span, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s/%s [%s, %s] dur=%s", sp.Cat, sp.Name, ftoa(sp.Start), ftoa(sp.End), ftoa(sp.Duration()))
		if sp.Nodes > 0 {
			fmt.Fprintf(&b, " %s×%d", sp.Machine, sp.Nodes)
		}
		for _, kv := range sp.Args {
			fmt.Fprintf(&b, " %s=%s", kv[0], kv[1])
		}
		b.WriteByte('\n')
		for _, c := range children[sp.ID] {
			walk(c, depth+1)
		}
	}
	for _, sp := range roots {
		walk(sp, 0)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
