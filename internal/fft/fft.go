// Package fft implements the fast Fourier transforms the particle-mesh
// gravity solver and the power-spectrum analysis depend on.
//
// HACC's long-range force solver and the paper's in-situ power-spectrum
// calculation both rest on very large 3-D FFTs of the density field laid
// down on a uniform grid (§1: "a density estimation on a regular grid via,
// e.g., a Cloud-In-Cell (CIC) algorithm and very large FFTs"). This package
// provides an iterative radix-2 complex FFT, 3-D forward/inverse transforms
// over a flattened cube, and the k-space Poisson solve that converts a
// density contrast field into a gravitational potential.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// Forward computes the in-place forward DFT of data, whose length must be a
// power of two. The sign convention is X[k] = sum_n x[n] exp(-2πi kn/N).
func Forward(data []complex128) error { return transform(data, -1) }

// Inverse computes the in-place inverse DFT including the 1/N
// normalization, so Inverse(Forward(x)) == x up to rounding.
func Inverse(data []complex128) error {
	if err := transform(data, +1); err != nil {
		return err
	}
	n := float64(len(data))
	for i := range data {
		data[i] /= complex(n, 0)
	}
	return nil
}

// transform runs the iterative Cooley-Tukey radix-2 algorithm.
// sign is -1 for the forward transform, +1 for the (unnormalized) inverse.
func transform(data []complex128, sign float64) error {
	n := len(data)
	if !IsPow2(n) {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			data[i], data[j] = data[j], data[i]
		}
	}
	// Butterflies.
	for length := 2; length <= n; length <<= 1 {
		ang := sign * 2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for start := 0; start < n; start += length {
			w := complex(1, 0)
			half := length / 2
			for k := 0; k < half; k++ {
				u := data[start+k]
				v := data[start+k+half] * w
				data[start+k] = u + v
				data[start+k+half] = u - v
				w *= wl
			}
		}
	}
	return nil
}

// Cube is a flattened n×n×n complex field with index (i,j,k) at
// i*n*n + j*n + k. It is the in-memory layout shared by the PM solver and
// the power-spectrum analysis.
type Cube struct {
	N    int
	Data []complex128
}

// NewCube allocates an n³ cube; n must be a power of two.
func NewCube(n int) (*Cube, error) {
	if !IsPow2(n) {
		return nil, fmt.Errorf("fft: cube dimension %d is not a power of two", n)
	}
	return &Cube{N: n, Data: make([]complex128, n*n*n)}, nil
}

// Index returns the flat index of (i, j, k).
func (c *Cube) Index(i, j, k int) int { return (i*c.N+j)*c.N + k }

// At returns the value at (i, j, k).
func (c *Cube) At(i, j, k int) complex128 { return c.Data[c.Index(i, j, k)] }

// Set stores v at (i, j, k).
func (c *Cube) Set(i, j, k int, v complex128) { c.Data[c.Index(i, j, k)] = v }

// Forward3D transforms the cube along all three axes (forward convention).
func (c *Cube) Forward3D() error { return c.transform3D(Forward) }

// Inverse3D applies the normalized inverse transform along all three axes.
func (c *Cube) Inverse3D() error { return c.transform3D(Inverse) }

func (c *Cube) transform3D(f func([]complex128) error) error {
	n := c.N
	line := make([]complex128, n)
	// Axis k (contiguous).
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			base := (i*n + j) * n
			if err := f(c.Data[base : base+n]); err != nil {
				return err
			}
		}
	}
	// Axis j.
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			for j := 0; j < n; j++ {
				line[j] = c.Data[(i*n+j)*n+k]
			}
			if err := f(line); err != nil {
				return err
			}
			for j := 0; j < n; j++ {
				c.Data[(i*n+j)*n+k] = line[j]
			}
		}
	}
	// Axis i.
	for j := 0; j < n; j++ {
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				line[i] = c.Data[(i*n+j)*n+k]
			}
			if err := f(line); err != nil {
				return err
			}
			for i := 0; i < n; i++ {
				c.Data[(i*n+j)*n+k] = line[i]
			}
		}
	}
	return nil
}

// FreqIndex maps grid index i on an axis of length n to its signed integer
// frequency: 0, 1, ..., n/2, -(n/2-1), ..., -1.
func FreqIndex(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// WaveNumber returns the physical wave number 2π·m/L for grid index i on an
// axis of n cells spanning a box of side L.
func WaveNumber(i, n int, boxSize float64) float64 {
	return 2 * math.Pi * float64(FreqIndex(i, n)) / boxSize
}

// SolvePoisson replaces the Fourier-space density contrast delta(k) in the
// cube (which must already be forward-transformed) with the potential
// phi(k) = -4πG · prefactor · delta(k) / k², zeroing the k=0 mode (the mean
// density sources no force in a periodic universe). prefactor folds in the
// cosmological constants (3/2 Ωm H₀² / a in comoving PM units); pass 1 for
// a plain unit-strength Poisson solve.
func (c *Cube) SolvePoisson(boxSize, prefactor float64) {
	n := c.N
	for i := 0; i < n; i++ {
		kx := WaveNumber(i, n, boxSize)
		for j := 0; j < n; j++ {
			ky := WaveNumber(j, n, boxSize)
			for k := 0; k < n; k++ {
				kz := WaveNumber(k, n, boxSize)
				k2 := kx*kx + ky*ky + kz*kz
				idx := c.Index(i, j, k)
				if k2 == 0 {
					c.Data[idx] = 0
					continue
				}
				c.Data[idx] *= complex(-prefactor/k2, 0)
			}
		}
	}
}
