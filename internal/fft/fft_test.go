package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIsPow2(t *testing.T) {
	cases := map[int]bool{1: true, 2: true, 4: true, 1024: true, 0: false, -4: false, 3: false, 6: false, 1023: false}
	for n, want := range cases {
		if got := IsPow2(n); got != want {
			t.Errorf("IsPow2(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestForwardRejectsNonPow2(t *testing.T) {
	if err := Forward(make([]complex128, 3)); err == nil {
		t.Error("expected error for length 3")
	}
	if err := Inverse(make([]complex128, 6)); err == nil {
		t.Error("expected error for length 6")
	}
}

func TestForwardLength1IsIdentity(t *testing.T) {
	d := []complex128{complex(3, 4)}
	if err := Forward(d); err != nil {
		t.Fatal(err)
	}
	if d[0] != complex(3, 4) {
		t.Errorf("got %v", d[0])
	}
}

// Compare against the direct O(n²) DFT.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			acc += x[j] * cmplx.Exp(complex(0, ang))
		}
		out[k] = acc
	}
	return out
}

func TestForwardMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{2, 4, 8, 32, 128} {
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatal(err)
		}
		for i := range got {
			if cmplx.Abs(got[i]-want[i]) > 1e-9*float64(n) {
				t.Fatalf("n=%d: bin %d = %v, want %v", n, i, got[i], want[i])
			}
		}
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	y := append([]complex128(nil), x...)
	if err := Forward(y); err != nil {
		t.Fatal(err)
	}
	if err := Inverse(y); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(y[i]-x[i]) > 1e-10 {
			t.Fatalf("round trip diverged at %d: %v vs %v", i, y[i], x[i])
		}
	}
}

// Property: Parseval's theorem — sum |x|² == (1/N) sum |X|².
func TestPropertyParseval(t *testing.T) {
	f := func(re, im [16]float64) bool {
		x := make([]complex128, 16)
		for i := range x {
			r := math.Mod(re[i], 100)
			m := math.Mod(im[i], 100)
			if math.IsNaN(r) || math.IsNaN(m) {
				r, m = 0, 0
			}
			x[i] = complex(r, m)
		}
		var timeE float64
		for _, v := range x {
			timeE += real(v)*real(v) + imag(v)*imag(v)
		}
		if err := Forward(x); err != nil {
			return false
		}
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		freqE /= 16
		return math.Abs(timeE-freqE) <= 1e-9*(1+timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFreqIndex(t *testing.T) {
	n := 8
	want := []int{0, 1, 2, 3, 4, -3, -2, -1}
	for i, w := range want {
		if got := FreqIndex(i, n); got != w {
			t.Errorf("FreqIndex(%d, 8) = %d, want %d", i, got, w)
		}
	}
}

func TestWaveNumber(t *testing.T) {
	// Index 1 on a box of size 2π should give k = 1.
	if got := WaveNumber(1, 8, 2*math.Pi); math.Abs(got-1) > 1e-12 {
		t.Errorf("WaveNumber = %v, want 1", got)
	}
	if got := WaveNumber(7, 8, 2*math.Pi); math.Abs(got+1) > 1e-12 {
		t.Errorf("WaveNumber(7) = %v, want -1", got)
	}
}

func TestNewCubeRejectsNonPow2(t *testing.T) {
	if _, err := NewCube(5); err == nil {
		t.Error("expected error")
	}
}

func TestCubeIndexing(t *testing.T) {
	c, err := NewCube(4)
	if err != nil {
		t.Fatal(err)
	}
	c.Set(1, 2, 3, complex(9, 0))
	if c.At(1, 2, 3) != complex(9, 0) {
		t.Error("Set/At mismatch")
	}
	if c.Index(1, 2, 3) != 1*16+2*4+3 {
		t.Errorf("Index = %d", c.Index(1, 2, 3))
	}
}

func TestCube3DRoundTrip(t *testing.T) {
	c, err := NewCube(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	orig := make([]complex128, len(c.Data))
	for i := range c.Data {
		c.Data[i] = complex(rng.NormFloat64(), 0)
		orig[i] = c.Data[i]
	}
	if err := c.Forward3D(); err != nil {
		t.Fatal(err)
	}
	if err := c.Inverse3D(); err != nil {
		t.Fatal(err)
	}
	for i := range c.Data {
		if cmplx.Abs(c.Data[i]-orig[i]) > 1e-9 {
			t.Fatalf("3D round trip diverged at %d", i)
		}
	}
}

// A single plane wave should transform to a single non-zero bin.
func TestCubePlaneWave(t *testing.T) {
	n := 8
	c, err := NewCube(n)
	if err != nil {
		t.Fatal(err)
	}
	// x-direction mode m=2: exp(2πi·2·i/n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				ang := 2 * math.Pi * 2 * float64(i) / float64(n)
				c.Set(i, j, k, cmplx.Exp(complex(0, ang)))
			}
		}
	}
	if err := c.Forward3D(); err != nil {
		t.Fatal(err)
	}
	total := float64(n * n * n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				v := cmplx.Abs(c.At(i, j, k))
				if i == 2 && j == 0 && k == 0 {
					if math.Abs(v-total) > 1e-6 {
						t.Errorf("mode bin magnitude = %v, want %v", v, total)
					}
				} else if v > 1e-6 {
					t.Errorf("leak at (%d,%d,%d): %v", i, j, k, v)
				}
			}
		}
	}
}

// SolvePoisson on a plane-wave density should yield phi = prefactor/k² · delta.
func TestSolvePoissonPlaneWave(t *testing.T) {
	n := 16
	L := 2 * math.Pi * 4 // so mode m has k = m/4
	c, err := NewCube(n)
	if err != nil {
		t.Fatal(err)
	}
	// delta(x) = cos(k1 x) with m=1 => k = 0.25.
	for i := 0; i < n; i++ {
		v := math.Cos(2 * math.Pi * float64(i) / float64(n))
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				c.Set(i, j, k, complex(v, 0))
			}
		}
	}
	if err := c.Forward3D(); err != nil {
		t.Fatal(err)
	}
	c.SolvePoisson(L, 1)
	if err := c.Inverse3D(); err != nil {
		t.Fatal(err)
	}
	k1 := 2 * math.Pi / L
	for i := 0; i < n; i++ {
		want := -math.Cos(2*math.Pi*float64(i)/float64(n)) / (k1 * k1)
		got := real(c.At(i, 3, 5))
		if math.Abs(got-want) > 1e-8*(1+math.Abs(want)) {
			t.Fatalf("phi[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestSolvePoissonZeroesMeanMode(t *testing.T) {
	c, _ := NewCube(4)
	for i := range c.Data {
		c.Data[i] = 1
	}
	if err := c.Forward3D(); err != nil {
		t.Fatal(err)
	}
	c.SolvePoisson(1, 1)
	if c.At(0, 0, 0) != 0 {
		t.Errorf("k=0 mode = %v, want 0", c.At(0, 0, 0))
	}
}
