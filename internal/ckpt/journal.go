// Package ckpt is the crash-consistency layer of the workflow stack: a
// write-ahead journal of completed work plus atomic file commits. Long
// campaigns — "the runs were carried out over a period of days" (§4.1) —
// outlive any single batch job, so every process in the stack (the
// simulation, the workflow engine, the co-scheduling listener) must be
// able to die at an arbitrary instruction and restart without redoing
// finished work or trusting half-written output.
//
// The design is the classic WAL-plus-manifest pair:
//
//   - Product files are committed atomically (temp file in the same
//     directory, fsync, rename, directory fsync). A crash mid-commit
//     leaves at worst a stale *.tmp file, never a torn final file.
//   - After a product lands, a journal record (kind, step, path, size,
//     CRC32) is appended and fsync'd. The journal is the sole authority:
//     a file without a record is untrusted — a crash may have struck
//     between write and rename — and is redone on resume.
//   - Each journal record carries its own CRC32 frame, so a crash
//     mid-append leaves a torn tail that replay detects and truncates
//     instead of failing wholesale.
//
// Replay therefore converges: any prefix of the journal is a valid
// recovery point, and re-running from it produces byte-identical
// products (the work generators are deterministic in the step index).
package ckpt

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strconv"
	"strings"
)

// Record kinds written by the campaign engine and the listener. Packages
// are free to journal their own kinds; the manifest only interprets these.
const (
	// KindMeta identifies the campaign (scenario name, timesteps, seeds);
	// resuming under different parameters is refused.
	KindMeta = "meta"
	// KindRun marks one process incarnation; the count of run records is
	// the campaign's generation (how many times it has been started).
	KindRun = "run"
	// KindStep records a committed per-step simulation product (the
	// Level 2 file): the step is durably done.
	KindStep = "step"
	// KindPost records a completed per-step analysis job and its catalog.
	KindPost = "post"
	// KindMerge records a committed merged catalog.
	KindMerge = "merge"
	// KindSeen records a path the listener has already submitted for
	// analysis (cmd/listener -state).
	KindSeen = "seen"
)

// Record is one journal entry. Fields beyond Kind are optional and
// kind-dependent.
type Record struct {
	Kind string `json:"kind"`
	// Step is the 1-based timestep a step/post record covers.
	Step int `json:"step,omitempty"`
	// Name carries free-form identity (job name, scenario name).
	Name string `json:"name,omitempty"`
	// Path, Bytes and CRC describe a committed file (path relative to the
	// journal's directory).
	Path  string `json:"path,omitempty"`
	Bytes int64  `json:"bytes,omitempty"`
	CRC   uint32 `json:"crc,omitempty"`
	// Timesteps, Seed and FaultSeed pin campaign parameters (meta records).
	Timesteps int   `json:"timesteps,omitempty"`
	Seed      int64 `json:"seed,omitempty"`
	FaultSeed int64 `json:"fault_seed,omitempty"`
}

// Journal is an append-only, fsync'd record log. It is not safe for
// concurrent use; the workflow engine appends from a single goroutine.
type Journal struct {
	f    *os.File
	path string
}

// Frame serializes any JSON-marshalable value as one self-checking
// journal line:
//
//	<json payload> <crc32-of-payload-hex>\n
//
// It is exported so sibling journals (the integrity ledger's lineage
// records) share the exact crash semantics of the main journal: a torn
// append is detectable and truncatable, never silently half-parsed.
func Frame(v any) ([]byte, error) {
	payload, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("ckpt: marshal record: %w", err)
	}
	line := fmt.Sprintf("%s %08x\n", payload, crc32.ChecksumIEEE(payload))
	return []byte(line), nil
}

// ParseFrame validates one framed line (without its trailing newline) and
// unmarshals the payload into v, reporting ok=false for a torn or corrupt
// frame.
func ParseFrame(line string, v any) bool {
	i := strings.LastIndexByte(line, ' ')
	if i < 0 {
		return false
	}
	payload, crcHex := line[:i], line[i+1:]
	want, err := strconv.ParseUint(crcHex, 16, 32)
	if err != nil || len(crcHex) != 8 {
		return false
	}
	if crc32.ChecksumIEEE([]byte(payload)) != uint32(want) {
		return false
	}
	return json.Unmarshal([]byte(payload), v) == nil
}

// frame serializes a record as one self-checking line.
func frame(r Record) ([]byte, error) { return Frame(r) }

// parseLine validates one framed line, returning ok=false for a torn or
// corrupt frame.
func parseLine(line string) (Record, bool) {
	var r Record
	if !ParseFrame(line, &r) {
		return Record{}, false
	}
	return r, true
}

// Open replays the journal at path (creating it if absent) and reopens it
// for appending. The returned records are the valid prefix; a torn or
// corrupt tail — the signature of a crash mid-append — is truncated away
// so subsequent appends start from a consistent point.
func Open(path string) (*Journal, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("ckpt: open journal: %w", err)
	}
	var records []Record
	valid := int64(0)
	br := bufio.NewReader(f)
	for {
		line, err := br.ReadString('\n')
		if errors.Is(err, io.EOF) {
			// A final line without newline is a torn append: drop it.
			break
		}
		if err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("ckpt: read journal: %w", err)
		}
		r, ok := parseLine(strings.TrimSuffix(line, "\n"))
		if !ok {
			break // torn/corrupt record: everything after is untrusted
		}
		records = append(records, r)
		valid += int64(len(line))
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ckpt: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("ckpt: seek journal: %w", err)
	}
	return &Journal{f: f, path: path}, records, nil
}

// Append durably writes one record: the entry is fsync'd before Append
// returns, so a record that was observed written survives any later crash.
func (j *Journal) Append(r Record) error {
	line, err := frame(r)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("ckpt: append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ckpt: sync: %w", err)
	}
	return nil
}

// Path returns the journal's file path.
func (j *Journal) Path() string { return j.path }

// Close releases the journal file.
func (j *Journal) Close() error { return j.f.Close() }
