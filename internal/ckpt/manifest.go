package ckpt

import "fmt"

// Manifest is the state a journal replay converges to: which steps have
// committed products, which analyses are done, whether a merged catalog
// exists, and how many times the campaign process has started.
type Manifest struct {
	// Meta is the campaign identity record (nil before the first run).
	Meta *Record
	// Generation counts prior process incarnations (run records).
	Generation int
	// Steps maps a 1-based timestep to its committed Level 2 record.
	Steps map[int]Record
	// Posts maps a 1-based timestep to its completed analysis record.
	Posts map[int]Record
	// Merge is the last committed merged-catalog record (nil if none).
	Merge *Record
	// Seen holds listener-state paths already submitted for analysis.
	Seen map[string]bool
}

// Replay folds journal records into a manifest. Later records supersede
// earlier ones for the same step, so re-committing after a partial redo
// is harmless.
func Replay(records []Record) *Manifest {
	m := &Manifest{
		Steps: map[int]Record{},
		Posts: map[int]Record{},
		Seen:  map[string]bool{},
	}
	for _, r := range records {
		switch r.Kind {
		case KindMeta:
			rc := r
			m.Meta = &rc
		case KindRun:
			m.Generation++
		case KindStep:
			m.Steps[r.Step] = r
		case KindPost:
			m.Posts[r.Step] = r
		case KindMerge:
			rc := r
			m.Merge = &rc
		case KindSeen:
			m.Seen[r.Path] = true
		}
	}
	return m
}

// CompletedSteps returns the highest step k such that steps 1..k all have
// committed products — the point the simulation restarts from. The
// engine commits steps in order, so gaps only arise from journal damage;
// restarting from the contiguous prefix stays correct either way.
func (m *Manifest) CompletedSteps() int {
	k := 0
	for m.Steps[k+1].Kind != "" {
		k++
	}
	return k
}

// CheckMeta validates that the journal belongs to the same campaign the
// caller is about to run: same scenario, horizon, and seeds. Resuming a
// journal under different parameters would silently mix incompatible
// products, so it is an error.
func (m *Manifest) CheckMeta(name string, timesteps int, seed, faultSeed int64) error {
	if m.Meta == nil {
		return nil // fresh journal
	}
	w := m.Meta
	if w.Name != name || w.Timesteps != timesteps || w.Seed != seed || w.FaultSeed != faultSeed {
		return fmt.Errorf("ckpt: journal is for campaign %q (%d steps, seed %d, fault seed %d); refusing to resume as %q (%d steps, seed %d, fault seed %d)",
			w.Name, w.Timesteps, w.Seed, w.FaultSeed, name, timesteps, seed, faultSeed)
	}
	return nil
}
