package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal has %d records", len(recs))
	}
	want := []Record{
		{Kind: KindMeta, Name: "camp", Timesteps: 8, Seed: 1, FaultSeed: 2},
		{Kind: KindRun},
		{Kind: KindStep, Step: 1, Path: "step001.l2.gio", Bytes: 100, CRC: 0xdead},
		{Kind: KindPost, Step: 1, Path: "step001.centers", Bytes: 40, CRC: 0xbeef},
	}
	for _, r := range want {
		if err := j.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
}

// A crash mid-append leaves a torn last line; replay must keep the valid
// prefix and truncate the tail so appends resume cleanly.
func TestJournalTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: KindStep, Step: 1}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(Record{Kind: KindStep, Step: 2}); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Tear the tail: drop the last 5 bytes of the file.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Step != 1 {
		t.Fatalf("want only step 1 to survive, got %+v", recs)
	}
	// Appends after recovery land after the truncated point.
	if err := j2.Append(Record{Kind: KindStep, Step: 3}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	_, recs, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1].Step != 3 {
		t.Fatalf("after recovery append: %+v", recs)
	}
}

// A corrupt record in the middle invalidates everything after it.
func TestJournalStopsAtCorruptRecord(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.wal")
	j, _, _ := Open(path)
	for s := 1; s <= 3; s++ {
		if err := j.Append(Record{Kind: KindStep, Step: s}); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	data, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(data), "\n")
	lines[1] = strings.Replace(lines[1], `"step":2`, `"step":9`, 1) // payload no longer matches CRC
	if err := os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644); err != nil {
		t.Fatal(err)
	}
	_, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 {
		t.Fatalf("want 1 surviving record, got %d", len(recs))
	}
}

func TestManifestReplay(t *testing.T) {
	m := Replay([]Record{
		{Kind: KindMeta, Name: "c", Timesteps: 4, Seed: 7, FaultSeed: 3},
		{Kind: KindRun},
		{Kind: KindStep, Step: 1, Path: "a"},
		{Kind: KindStep, Step: 2, Path: "b"},
		{Kind: KindPost, Step: 1, Path: "p"},
		{Kind: KindRun},
		{Kind: KindStep, Step: 4, Path: "d"}, // gap: step 3 missing
		{Kind: KindSeen, Path: "x.l2.gio"},
	})
	if m.Generation != 2 {
		t.Errorf("generation = %d", m.Generation)
	}
	if got := m.CompletedSteps(); got != 2 {
		t.Errorf("contiguous completed steps = %d, want 2", got)
	}
	if !m.Seen["x.l2.gio"] {
		t.Error("seen path lost")
	}
	if err := m.CheckMeta("c", 4, 7, 3); err != nil {
		t.Errorf("matching meta rejected: %v", err)
	}
	if err := m.CheckMeta("c", 5, 7, 3); err == nil {
		t.Error("mismatched timesteps accepted")
	}
}

func TestWriteFileAtomicAndVerify(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := WriteFileAtomic(path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("world!")); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "world!" {
		t.Fatalf("atomic overwrite: %q, %v", data, err)
	}
	// No temp droppings remain after successful commits.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("stray files: %v", entries)
	}

	j, _, err := Open(filepath.Join(dir, "j.wal"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := j.Commit(Record{Kind: KindStep, Step: 1, Path: "prod.dat"}, dir, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(dir, rec); err != nil {
		t.Errorf("fresh commit fails verify: %v", err)
	}
	// Tamper with the product: verification must notice.
	if err := os.WriteFile(filepath.Join(dir, "prod.dat"), []byte("payl0ad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(dir, rec); err == nil {
		t.Error("tampered product passed verification")
	}
	j.Close()
}

func TestRemoveStaleTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"keep.gio", "a.gio.tmp123", "b.tmp9"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	RemoveStaleTemps(dir)
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != "keep.gio" {
		t.Fatalf("after cleanup: %v", entries)
	}
}

func TestVerifyFileTypedChecksumError(t *testing.T) {
	dir := t.TempDir()
	j, _, err := Open(filepath.Join(dir, "j.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	rec, err := j.Commit(Record{Kind: KindStep, Step: 1, Path: "prod.dat"}, dir, []byte("payload"))
	if err != nil {
		t.Fatal(err)
	}
	// Same length, different bytes: the CRC mismatch is ErrManifestChecksum.
	if err := os.WriteFile(filepath.Join(dir, "prod.dat"), []byte("payl0ad"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(dir, rec); !errors.Is(err, ErrManifestChecksum) {
		t.Errorf("CRC mismatch error %v is not ErrManifestChecksum", err)
	}
	// Different length: also ErrManifestChecksum.
	if err := os.WriteFile(filepath.Join(dir, "prod.dat"), []byte("pay"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(dir, rec); !errors.Is(err, ErrManifestChecksum) {
		t.Errorf("size mismatch error %v is not ErrManifestChecksum", err)
	}
	// A missing file is a different failure (crash artifact, not rot).
	if err := os.Remove(filepath.Join(dir, "prod.dat")); err != nil {
		t.Fatal(err)
	}
	if err := VerifyFile(dir, rec); err == nil || errors.Is(err, ErrManifestChecksum) {
		t.Errorf("missing-file error %v must not be ErrManifestChecksum", err)
	}
}

func TestRemoveStaleTempsSweepsQuarantine(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"keep.gio", "rotted.gio.quarantine", "old.centers.quarantine", "c.tmp1"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	RemoveStaleTemps(dir)
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 || entries[0].Name() != "keep.gio" {
		t.Fatalf("after cleanup: %v", entries)
	}
}

func TestFrameParseFrameRoundTrip(t *testing.T) {
	type payload struct {
		Name string `json:"name"`
		N    int    `json:"n"`
	}
	line, err := Frame(payload{Name: "x", N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if line[len(line)-1] != '\n' {
		t.Fatal("frame is not newline-terminated")
	}
	var got payload
	if !ParseFrame(strings.TrimSuffix(string(line), "\n"), &got) {
		t.Fatal("round trip failed")
	}
	if got.Name != "x" || got.N != 7 {
		t.Fatalf("round trip = %+v", got)
	}
	// A flipped payload byte fails the CRC.
	bad := []byte(strings.TrimSuffix(string(line), "\n"))
	bad[2] ^= 0x01
	if ParseFrame(string(bad), &got) {
		t.Error("corrupt frame parsed")
	}
	// A torn line fails.
	if ParseFrame(string(line[:len(line)/2]), &got) {
		t.Error("torn frame parsed")
	}
}
