package ckpt

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// ErrManifestChecksum reports a journaled file whose on-disk bytes no
// longer match the journal record (size or CRC32) — the signature of
// silent corruption behind the journal's back. Matchable with errors.Is;
// the integrity layer keys its quarantine-and-repair path off it.
var ErrManifestChecksum = errors.New("ckpt: journaled file fails its manifest checksum")

// WriteFileAtomic commits data to path with the temp-file-and-rename
// protocol: the bytes are written to a temporary file in the same
// directory, fsync'd, renamed over the destination, and the directory is
// fsync'd so the rename itself is durable. A crash at any point leaves
// either the old file (or nothing) or the complete new file — never a
// torn final file.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("ckpt: temp file: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return fmt.Errorf("ckpt: write %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("ckpt: sync %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: close %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("ckpt: rename %s: %w", path, err)
	}
	// Durable rename: fsync the containing directory (best-effort on
	// platforms where directories cannot be opened for sync).
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Commit atomically writes a product file and journals it in one motion:
// first the file (atomic rename), then the fsync'd record carrying its
// size and CRC32. Write-ahead in the only direction that matters — a
// crash between the two leaves a complete file without a record, which
// replay treats as not-done and redoes (the redo overwrites atomically,
// so the retry is idempotent).
func (j *Journal) Commit(r Record, dir string, data []byte) (Record, error) {
	if r.Path == "" {
		return r, fmt.Errorf("ckpt: commit record needs a Path")
	}
	if err := WriteFileAtomic(filepath.Join(dir, r.Path), data); err != nil {
		return r, err
	}
	r.Bytes = int64(len(data))
	r.CRC = crc32.ChecksumIEEE(data)
	if err := j.Append(r); err != nil {
		return r, err
	}
	return r, nil
}

// VerifyFile checks that a journaled file still matches its record (size
// and CRC32) on disk — the guard against products mutated or truncated
// behind the journal's back.
func VerifyFile(dir string, r Record) error {
	data, err := os.ReadFile(filepath.Join(dir, r.Path))
	if err != nil {
		return fmt.Errorf("ckpt: journaled file missing: %w", err)
	}
	if int64(len(data)) != r.Bytes {
		return fmt.Errorf("%w: %s is %d bytes, journal says %d", ErrManifestChecksum, r.Path, len(data), r.Bytes)
	}
	if got := crc32.ChecksumIEEE(data); got != r.CRC {
		return fmt.Errorf("%w: %s checksum %08x, journal says %08x", ErrManifestChecksum, r.Path, got, r.CRC)
	}
	return nil
}

// RemoveStaleTemps deletes leftover *.tmp* files from commits interrupted
// mid-write, and *.quarantine* files parked by an integrity scrub whose
// repair never completed (the quarantined bytes are corrupt by
// definition; the journal and lineage ledger hold everything needed to
// re-derive the product). Safe to call on every resume.
func RemoveStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) != "" &&
			(containsMarker(e.Name(), ".tmp") || containsMarker(e.Name(), ".quarantine")) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}

func containsMarker(name, marker string) bool {
	for i := 0; i+len(marker) <= len(name); i++ {
		if name[i:i+len(marker)] == marker {
			return true
		}
	}
	return false
}
