package core

import (
	"math"
)

// SplitDecision is the outcome of the paper's automated in-situ/off-line
// division rule (§4.1): "First, one would estimate the time the code will
// spend in I/O, t_io, if the analysis were off-line. ... The mass of the
// largest halo, m_max_io, that could be analyzed in time less than t_io,
// would then be estimated. ... If m_max_sim < m_max_io, the centers for
// all halos can be computed in-situ. If m_max_sim > m_max_io, then all
// particles in halos with mass greater than m_max_io should be saved out
// for off-line center-finding."
type SplitDecision struct {
	// TIOSeconds is the estimated off-line I/O + redistribution cost the
	// split amortizes against.
	TIOSeconds float64
	// MaxInSituSize is m_max_io expressed in particles: the largest halo
	// whose center finding costs less than TIOSeconds.
	MaxInSituSize int
	// LargestSimSize is m_max_sim in particles.
	LargestSimSize int
	// OffloadNeeded reports m_max_sim > m_max_io.
	OffloadNeeded bool
	// Threshold is the recommended split (equals MaxInSituSize when
	// off-loading is needed; 0 otherwise).
	Threshold int
	// CoScheduleRanks sizes the off-line job: "The number of ranks for the
	// co-scheduling task should be set equal to T/t_max" where T is the
	// total off-loaded analysis time and t_max the largest halo's time.
	CoScheduleRanks int
	// TotalOffloadSeconds (T) and LargestHaloSeconds (t_max) back the rank
	// computation.
	TotalOffloadSeconds float64
	LargestHaloSeconds  float64
}

// AutoSplit applies the rule to a scenario.
func AutoSplit(s *Scenario) (*SplitDecision, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	lv, err := ComputeDataLevels(s.TotalParticles(), s.Population, 0)
	if err != nil {
		return nil, err
	}
	d := &SplitDecision{}
	// Off-line analysis would pay a Level 1 read plus redistribution.
	d.TIOSeconds = s.Machine.IOSeconds(lv.Level1Bytes, s.SimNodes) +
		s.Machine.RedistributeSeconds(lv.Level1Bytes, s.SimNodes)
	pairCost := s.Costs.CenterPairSeconds * s.Machine.KernelFactor(true)
	d.MaxInSituSize = int(math.Sqrt(d.TIOSeconds / pairCost))
	d.LargestSimSize = s.Population.LargestSize()
	d.OffloadNeeded = d.LargestSimSize > d.MaxInSituSize
	if !d.OffloadNeeded {
		return d, nil
	}
	d.Threshold = d.MaxInSituSize
	postPairCost := s.Costs.CenterPairSeconds * s.PostMachine.KernelFactor(true)
	d.TotalOffloadSeconds = s.Population.PairSum(d.Threshold, 0) * postPairCost
	largest := float64(d.LargestSimSize)
	d.LargestHaloSeconds = largest * largest * postPairCost
	if d.LargestHaloSeconds > 0 {
		d.CoScheduleRanks = int(math.Ceil(d.TotalOffloadSeconds / d.LargestHaloSeconds))
	}
	if d.CoScheduleRanks < 1 {
		d.CoScheduleRanks = 1
	}
	return d, nil
}
