package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/catalog"
	"repro/internal/ckpt"
	"repro/internal/cosmotools"
	"repro/internal/des"
	"repro/internal/fs"
	"repro/internal/gio"
	"repro/internal/integrity"
	"repro/internal/nbody"
)

// ErrCampaignCrashed reports that a ResumableCampaign run was killed by an
// injected process crash (fault.Crash). The journal under the campaign
// directory holds every product committed before the kill; calling
// ResumableCampaign again on the same directory resumes from it.
var ErrCampaignCrashed = errors.New("core: campaign crashed mid-run (run again to resume)")

// ResumeStats accounts one incarnation's checkpoint/restart activity. All
// fields are zero on a fresh run, keeping the report DeepEqual-comparable
// to a plain Campaign.
type ResumeStats struct {
	// Generation is how many prior incarnations the journal recorded (0 on
	// a fresh run).
	Generation int
	// StepsSkipped and PostsSkipped count journaled work units this
	// incarnation did not redo.
	StepsSkipped, PostsSkipped int
	// TornFiles counts on-disk files found without a journal record — the
	// signature of a crash between write and commit; they are removed and
	// their work redone. SalvagedBlocks counts intact gio blocks recovered
	// from torn Level 2 files before removal (diagnostics only; the redo
	// regenerates them bit-identically).
	TornFiles, SalvagedBlocks int
}

// campaignCrash is the panic payload that unwinds the discrete-event stack
// when an injected crash (or a persistence failure) strikes inside an
// engine callback. err == nil means the injected kill.
type campaignCrash struct{ err error }

const (
	journalFile = "journal.wal"
	ledgerFile  = "lineage.wal"
)

// campaign product layout under the output directory.
func l2RelPath(step int) string      { return "l2/" + fmt.Sprintf("step%03d.gio", step) }
func centersRelPath(step int) string { return "centers/" + fmt.Sprintf("step%03d.centers", step) }

// ResumableCampaign runs Campaign with crash-consistent persistence: every
// delivered product (per-step Level 2 particle files, per-step center
// catalogs, the final merged catalog) is committed atomically under outDir
// and journaled in outDir/journal.wal. If the process dies — for real, or
// through a fault.Crash in the scenario's profile — re-running with the
// same arguments replays the journal, reconciles the directory (stale
// temps removed, torn unjournaled files salvage-counted and redone,
// journaled files verified by size and CRC32), restores surviving files
// into the modelled storage, requeues analyses that never completed, and
// continues from the first unfinished step.
//
// Product content is a pure function of (seed, step), so a campaign that
// crashed and resumed any number of times converges to byte-identical
// products vs an uninterrupted run. seed is recorded in the journal's meta
// record alongside the scenario name, horizon and fault seed; resuming
// under different parameters is refused.
func ResumableCampaign(s *Scenario, timesteps int, outDir string, seed int64) (rep *CampaignReport, err error) {
	if timesteps <= 0 {
		return nil, fmt.Errorf("core: campaign needs timesteps > 0")
	}
	for _, d := range []string{outDir, filepath.Join(outDir, "l2"), filepath.Join(outDir, "centers")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, err
		}
	}
	j, records, err := ckpt.Open(filepath.Join(outDir, journalFile))
	if err != nil {
		return nil, err
	}
	defer func() {
		// A close failure after fsync'd appends cannot lose records, but a
		// silently dropped error would mask a sick filesystem mid-campaign.
		if cerr := j.Close(); cerr != nil && err == nil {
			rep, err = nil, cerr
		}
	}()
	m := ckpt.Replay(records)
	var faultSeed int64
	if s.Faults != nil {
		faultSeed = s.Faults.Seed
	}
	if err := m.CheckMeta(s.Name, timesteps, seed, faultSeed); err != nil {
		return nil, err
	}
	if m.Meta == nil {
		if err := j.Append(ckpt.Record{Kind: ckpt.KindMeta, Name: s.Name,
			Timesteps: timesteps, Seed: seed, FaultSeed: faultSeed}); err != nil {
			return nil, err
		}
	}
	// The integrity layer: a content-addressed lineage ledger beside the
	// journal, plus a scrubber that repairs checksum mismatches by
	// re-running only the producing step. Active when the profile injects
	// bit rot or the scenario co-schedules scrubbing.
	rotOn := s.Faults != nil && s.Faults.BitRotProb > 0
	integrityOn := rotOn || s.Scrub != nil
	var led *integrity.Ledger
	var scr *integrity.Scrubber
	if integrityOn {
		led, err = integrity.OpenLedger(filepath.Join(outDir, ledgerFile))
		if err != nil {
			return nil, err
		}
		defer func() {
			if cerr := led.Close(); cerr != nil && err == nil {
				rep, err = nil, cerr
			}
		}()
		if err := backfillLedger(led, m, seed); err != nil {
			return nil, err
		}
		scr = &integrity.Scrubber{Dir: outDir, Ledger: led,
			Rederive: func(p integrity.Product) ([]byte, error) { return rederiveProduct(outDir, seed, p) }}
	}

	stats := ResumeStats{Generation: m.Generation}
	if err := reconcileDir(outDir, m, &stats, scr); err != nil {
		return nil, err
	}

	done := m.CompletedSteps()
	if done > timesteps {
		done = timesteps
	}
	hooks := campaignHooks{startStep: done + 1}
	for step := 1; step <= done; step++ {
		hooks.preloadSteps = append(hooks.preloadSteps, step)
		if _, ok := m.Posts[step]; ok {
			hooks.preSeenSteps = append(hooks.preSeenSteps, step)
		}
	}
	stats.StepsSkipped = done
	stats.PostsSkipped = len(hooks.preSeenSteps)

	// This incarnation's injected kill, drawn positionally by generation,
	// then the incarnation itself goes on record.
	crash, crashArmed := s.injector().CrashFor(m.Generation)
	if err := j.Append(ckpt.Record{Kind: ckpt.KindRun, Name: fmt.Sprintf("gen-%d", m.Generation)}); err != nil {
		return nil, err
	}
	if crashArmed && crash.AtTime > 0 {
		hooks.runUntil = crash.AtTime
	}

	// Integrity wiring into the engine: the clock timestamps scrub
	// decisions, bit-rot events fire on the virtual timeline against the
	// real product files, and every commit gains a lineage record.
	var engineSim *des.Sim
	var engineFS *fs.System
	scheduleRot := func(rel string) {
		if !rotOn || engineSim == nil {
			return
		}
		delay, frac, rot := s.injector().BitRot(rel, m.Generation)
		if !rot {
			return
		}
		engineSim.After(delay, func() {
			if integrity.CorruptFile(filepath.Join(outDir, rel), frac) == nil {
				engineFS.Corrupt(rel)
			}
		})
	}
	hooks.onSetup = func(sim *des.Sim, storage *fs.System) {
		engineSim, engineFS = sim, storage
		if scr != nil {
			scr.Now = sim.Now
			scr.Obs = s.Obs
		}
		// Products surviving from earlier incarnations rot too: each
		// generation draws fresh, (path, generation)-keyed rot for them.
		for _, p := range led.Products() {
			scheduleRot(p.Path)
		}
	}
	if !integrityOn {
		hooks.onSetup = nil
	}
	commitLineage := func(p integrity.Product) {
		if led == nil {
			return
		}
		p.Params = fmt.Sprintf("seed=%d", seed)
		if e := led.Append(p); e != nil {
			panic(campaignCrash{err: e})
		}
		scheduleRot(p.Path)
	}
	if s.Scrub != nil {
		hooks.scrub = &scrubDriver{scr: scr, pol: s.Scrub.withDefaults()}
	}

	hooks.onStepLanded = func(step int) {
		data := l2Product(seed, step)
		if crashArmed && crash.AtStep == step {
			// The kill strikes mid-write: a torn prefix lands non-atomically
			// and no journal record is written — the worst case the
			// reconcile pass must clean up.
			//lint:allow atomicwrite deliberate torn write: fault injection exercising the reconcile path
			_ = os.WriteFile(filepath.Join(outDir, l2RelPath(step)), data[:len(data)*3/5], 0o644)
			panic(campaignCrash{})
		}
		if _, e := j.Commit(ckpt.Record{Kind: ckpt.KindStep, Step: step, Path: l2RelPath(step)}, outDir, data); e != nil {
			panic(campaignCrash{err: e})
		}
		commitLineage(integrity.Product{Path: l2RelPath(step), Bytes: int64(len(data)),
			Sum: integrity.Sum(data), Step: step, Producer: "sim-step"})
	}
	hooks.onPostDone = func(step int) {
		data := centersProduct(seed, step)
		if _, e := j.Commit(ckpt.Record{Kind: ckpt.KindPost, Step: step, Path: centersRelPath(step)}, outDir, data); e != nil {
			panic(campaignCrash{err: e})
		}
		commitLineage(integrity.Product{Path: centersRelPath(step), Bytes: int64(len(data)),
			Sum: integrity.Sum(data), Step: step, Producer: "post-step",
			Inputs: []string{l2RelPath(step)}})
	}
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(campaignCrash)
			if !ok {
				panic(r)
			}
			rep, err = nil, ErrCampaignCrashed
			if c.err != nil {
				err = c.err
			}
		}
	}()
	rep, crashed, err := runCampaign(s, timesteps, hooks)
	if err != nil {
		return nil, err
	}
	if crashed {
		return nil, ErrCampaignCrashed
	}

	// Every analysis landed: commit the merged catalog ("the two files ...
	// were merged to provide a complete set of halo centers", §4.1). The
	// merge inputs may have rotted since their commit, so under the
	// integrity layer each one is verified (and repaired) first — a merge
	// must never bake corruption into the Level 3 product.
	centerInputs := make([]string, 0, timesteps)
	for step := 1; step <= timesteps; step++ {
		centerInputs = append(centerInputs, centersRelPath(step))
	}
	if m.Merge == nil {
		if scr != nil {
			for _, rel := range centerInputs {
				if p, ok := led.Lookup(rel); ok {
					scr.CheckRepair(p)
				}
			}
		}
		paths := make([]string, 0, timesteps)
		for _, rel := range centerInputs {
			paths = append(paths, filepath.Join(outDir, rel))
		}
		merged, err := catalog.MergeFiles(paths)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := catalog.Write(&buf, merged); err != nil {
			return nil, err
		}
		if _, err := j.Commit(ckpt.Record{Kind: ckpt.KindMerge, Path: "catalog.txt"}, outDir, buf.Bytes()); err != nil {
			return nil, err
		}
		if led != nil {
			data := buf.Bytes()
			if err := led.Append(integrity.Product{Path: "catalog.txt", Bytes: int64(len(data)),
				Sum: integrity.Sum(data), Producer: "merge", Inputs: centerInputs,
				Params: fmt.Sprintf("seed=%d", seed)}); err != nil {
				return nil, err
			}
			// At-rest rot can strike the merged catalog too; the virtual
			// clock has stopped, so an armed rot fires immediately and the
			// final sweep below repairs it.
			if rotOn {
				if _, frac, rot := s.injector().BitRot("catalog.txt", m.Generation); rot {
					_ = integrity.CorruptFile(filepath.Join(outDir, "catalog.txt"), frac)
				}
			}
		}
	}
	if scr != nil {
		// Final full pass in commit order: whatever rot landed after the
		// last co-scheduled scrub window is caught and repaired here, so a
		// finished campaign always converges to a clean, fault-free-
		// identical product set.
		scr.SweepAll()
		rep.Integrity = scr.Stats
		rep.ScrubDecisions = scr.Decisions()
	}
	rep.Resume = stats
	return rep, nil
}

// rederiveProduct regenerates one product from its lineage record — the
// minimal-repair primitive. Per-step products come straight from the
// (seed, step) generators; the merged catalog re-runs only the merge over
// its (already verified) inputs.
func rederiveProduct(outDir string, seed int64, p integrity.Product) ([]byte, error) {
	switch p.Producer {
	case "sim-step":
		return l2Product(seed, p.Step), nil
	case "post-step":
		return centersProduct(seed, p.Step), nil
	case "merge":
		paths := make([]string, len(p.Inputs))
		for i, in := range p.Inputs {
			paths[i] = filepath.Join(outDir, in)
		}
		merged, err := catalog.MergeFiles(paths)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := catalog.Write(&buf, merged); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("core: no re-derivation for producer %q (%s)", p.Producer, p.Path)
}

// backfillLedger gives journaled products from pre-ledger incarnations a
// lineage record. The expected content is regenerated from (seed, step) —
// never read back from disk, which may have rotted in the meantime — so a
// backfilled record carries the true fault-free content address. Records
// land in deterministic order: steps, then posts, then the merge.
func backfillLedger(led *integrity.Ledger, m *ckpt.Manifest, seed int64) error {
	steps := make([]int, 0, len(m.Steps))
	for step := range m.Steps {
		steps = append(steps, step)
	}
	sort.Ints(steps)
	for _, step := range steps {
		r := m.Steps[step]
		if _, ok := led.Lookup(r.Path); ok {
			continue
		}
		data := l2Product(seed, step)
		if err := led.Append(integrity.Product{Path: r.Path, Bytes: int64(len(data)),
			Sum: integrity.Sum(data), Step: step, Producer: "sim-step",
			Params: fmt.Sprintf("seed=%d", seed)}); err != nil {
			return err
		}
	}
	posts := make([]int, 0, len(m.Posts))
	for step := range m.Posts {
		posts = append(posts, step)
	}
	sort.Ints(posts)
	for _, step := range posts {
		r := m.Posts[step]
		if _, ok := led.Lookup(r.Path); ok {
			continue
		}
		data := centersProduct(seed, step)
		if err := led.Append(integrity.Product{Path: r.Path, Bytes: int64(len(data)),
			Sum: integrity.Sum(data), Step: step, Producer: "post-step",
			Inputs: []string{l2RelPath(step)},
			Params: fmt.Sprintf("seed=%d", seed)}); err != nil {
			return err
		}
	}
	if m.Merge != nil && m.Meta != nil {
		if _, ok := led.Lookup(m.Merge.Path); !ok {
			data := mergedProduct(seed, m.Meta.Timesteps)
			inputs := make([]string, 0, m.Meta.Timesteps)
			for step := 1; step <= m.Meta.Timesteps; step++ {
				inputs = append(inputs, centersRelPath(step))
			}
			if err := led.Append(integrity.Product{Path: m.Merge.Path, Bytes: int64(len(data)),
				Sum: integrity.Sum(data), Producer: "merge", Inputs: inputs,
				Params: fmt.Sprintf("seed=%d", seed)}); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergedProduct computes the merged catalog purely from (seed, timesteps)
// — the in-memory equivalent of catalog.MergeFiles over pristine per-step
// center products, used to backfill the merge's lineage record without
// trusting possibly-rotted disk bytes.
func mergedProduct(seed int64, timesteps int) []byte {
	byTag := map[int64]cosmotools.CenterRecord{}
	for step := 1; step <= timesteps; step++ {
		recs, err := catalog.Read(bytes.NewReader(centersProduct(seed, step)))
		if err != nil {
			panic(err) // in-memory parse of our own generator output cannot fail
		}
		for _, r := range recs {
			byTag[r.HaloTag] = r
		}
	}
	tags := make([]int64, 0, len(byTag))
	for tag := range byTag {
		tags = append(tags, tag)
	}
	sort.Slice(tags, func(a, b int) bool { return tags[a] < tags[b] })
	recs := make([]cosmotools.CenterRecord, 0, len(tags))
	for _, tag := range tags {
		recs = append(recs, byTag[tag])
	}
	var buf bytes.Buffer
	if err := catalog.Write(&buf, recs); err != nil {
		panic(err) // in-memory write cannot fail
	}
	return buf.Bytes()
}

// reconcileDir brings the campaign directory back in line with the journal
// after a crash: stale commit temps (and quarantine leftovers) are
// deleted, files without a journal record (a crash struck between write
// and commit) are salvage-counted and removed so their work is redone,
// and journaled files are verified against their recorded size and
// checksum — in deterministic order (steps, posts, merge). A checksum
// mismatch is silent corruption, not a crash artifact: with a scrubber
// attached the file is quarantined and repaired from its lineage; without
// one it is a hard error.
func reconcileDir(outDir string, m *ckpt.Manifest, stats *ResumeStats, scr *integrity.Scrubber) error {
	journaled := map[string]ckpt.Record{}
	for _, r := range m.Steps {
		journaled[r.Path] = r
	}
	for _, r := range m.Posts {
		journaled[r.Path] = r
	}
	if m.Merge != nil {
		journaled[m.Merge.Path] = *m.Merge
	}
	for _, sub := range []string{"", "l2", "centers"} {
		ckpt.RemoveStaleTemps(filepath.Join(outDir, sub))
	}
	for _, sub := range []string{"l2", "centers"} {
		entries, err := os.ReadDir(filepath.Join(outDir, sub))
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			if _, ok := journaled[sub+"/"+e.Name()]; ok {
				continue
			}
			stats.TornFiles++
			full := filepath.Join(outDir, sub, e.Name())
			if filepath.Ext(e.Name()) == ".gio" {
				if blocks, _ := gio.ReadSalvageFile(full); blocks != nil {
					stats.SalvagedBlocks += len(blocks)
				}
			}
			if err := os.Remove(full); err != nil {
				return err
			}
		}
	}
	if _, ok := journaled["catalog.txt"]; !ok {
		if _, err := os.Stat(filepath.Join(outDir, "catalog.txt")); err == nil {
			stats.TornFiles++
			if err := os.Remove(filepath.Join(outDir, "catalog.txt")); err != nil {
				return err
			}
		}
	}
	for _, r := range orderedRecords(m) {
		err := ckpt.VerifyFile(outDir, r)
		if err == nil {
			continue
		}
		if scr != nil && errors.Is(err, ckpt.ErrManifestChecksum) {
			if p, ok := scr.Ledger.Lookup(r.Path); ok && scr.CheckRepair(p) {
				continue
			}
		}
		return err
	}
	return nil
}

// orderedRecords lists the manifest's committed-file records in the
// deterministic verify order: steps ascending, posts ascending, merge
// last — so two reconciles of the same directory repair in the same order
// and log identical decisions.
func orderedRecords(m *ckpt.Manifest) []ckpt.Record {
	out := make([]ckpt.Record, 0, len(m.Steps)+len(m.Posts)+1)
	steps := make([]int, 0, len(m.Steps))
	for step := range m.Steps {
		steps = append(steps, step)
	}
	sort.Ints(steps)
	for _, step := range steps {
		out = append(out, m.Steps[step])
	}
	posts := make([]int, 0, len(m.Posts))
	for step := range m.Posts {
		posts = append(posts, step)
	}
	sort.Ints(posts)
	for _, step := range posts {
		out = append(out, m.Posts[step])
	}
	if m.Merge != nil {
		out = append(out, *m.Merge)
	}
	return out
}

// l2Product generates a step's Level 2 particle payload (gio format). The
// content is a pure function of (seed, step) — the property that lets a
// crashed-and-resumed campaign converge to byte-identical products no
// matter where the kills struck.
func l2Product(seed int64, step int) []byte {
	rng := rand.New(rand.NewSource(seed<<20 + int64(step)))
	n := 48 + (step*7)%16
	p := nbody.NewParticles(0)
	for i := 0; i < n; i++ {
		p.Append(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100,
			rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(),
			int64(step)*1_000_000+int64(i))
	}
	var buf bytes.Buffer
	if err := gio.Write(&buf, []gio.Block{{Rank: 0, Particles: p}}); err != nil {
		panic(err) // in-memory write cannot fail
	}
	return buf.Bytes()
}

// centersProduct generates a step's halo-center catalog, again purely from
// (seed, step).
func centersProduct(seed int64, step int) []byte {
	rng := rand.New(rand.NewSource(seed<<20 ^ int64(step)*2654435761))
	n := 3 + step%5
	recs := make([]cosmotools.CenterRecord, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, cosmotools.CenterRecord{
			HaloTag:   int64(step)*1000 + int64(i),
			MBPTag:    int64(step)*1000 + int64(rng.Intn(900)),
			Pos:       [3]float64{rng.Float64() * 100, rng.Float64() * 100, rng.Float64() * 100},
			Potential: -1e13 * (1 + rng.Float64()),
			Count:     300_000 + rng.Intn(2_000_000),
		})
	}
	var buf bytes.Buffer
	if err := catalog.Write(&buf, recs); err != nil {
		panic(err) // in-memory write cannot fail
	}
	return buf.Bytes()
}
