package core

import (
	"math"
	"testing"

	"repro/internal/cosmo"
	"repro/internal/platform"
)

func TestSynthesizePopulationValidation(t *testing.T) {
	p := cosmo.Default()
	bad := []SynthesisOptions{
		{BoxMpch: 0, NP: 64, MinSize: 40, SampleAbove: 1000},
		{BoxMpch: 100, NP: 0, MinSize: 40, SampleAbove: 1000},
		{BoxMpch: 100, NP: 64, MinSize: 0, SampleAbove: 1000},
		{BoxMpch: 100, NP: 64, MinSize: 100, SampleAbove: 50},
	}
	for i, o := range bad {
		if _, err := SynthesizePopulation(p, o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	if _, err := SynthesizePopulation(cosmo.Params{}, SynthesisOptions{BoxMpch: 100, NP: 64, MinSize: 40, SampleAbove: 1000}); err == nil {
		t.Error("expected cosmology error")
	}
}

// The Q Continuum-scale population must reproduce the paper's headline
// shape: ~1e8 halos, ~1e5 above 300k particles, largest in the
// tens of millions.
func TestQContinuumPopulationShape(t *testing.T) {
	s, err := QContinuumScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	pop := s.Population
	total := pop.TotalHalos()
	if total < 5e7 || total > 5e9 {
		t.Errorf("total halos = %.3g, paper has 1.7e8", total)
	}
	off := pop.CountAbove(300000)
	if off < 2e4 || off > 4e5 {
		t.Errorf("off-loaded = %.0f, paper has 84,719", off)
	}
	largest := pop.LargestSize()
	if largest < 8e6 || largest > 8e7 {
		t.Errorf("largest = %d, paper has ~25M", largest)
	}
	// Off-loaded halos are a vanishing fraction of the count...
	if off/total > 1e-2 {
		t.Errorf("off-load fraction = %.3g, should be tiny", off/total)
	}
	// ...but dominate the center-finding work.
	if pop.PairSum(300000, 0) < 3*pop.PairSum(0, 300000) {
		t.Error("large halos should dominate the pair work")
	}
}

func TestPopulationAccountingConsistency(t *testing.T) {
	s, err := DownscaledScenario(2)
	if err != nil {
		t.Fatal(err)
	}
	pop := s.Population
	// CountAbove(0) equals TotalHalos.
	if math.Abs(pop.CountAbove(0)-pop.TotalHalos()) > 1e-6*pop.TotalHalos() {
		t.Error("CountAbove(0) != TotalHalos")
	}
	// PairSum partitions at any threshold.
	all := pop.PairSum(0, 0)
	small := pop.PairSum(0, 300000)
	big := pop.PairSum(300000, 0)
	if math.Abs(all-(small+big)) > 1e-6*all {
		t.Errorf("pair sums don't partition: %g != %g + %g", all, small, big)
	}
	// ParticlesAbove decreases with threshold.
	if pop.ParticlesAbove(1000) < pop.ParticlesAbove(100000) {
		t.Error("ParticlesAbove not monotone")
	}
}

func TestNodeAssignmentConservesWork(t *testing.T) {
	s, err := DownscaledScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	pop := s.Population
	nodes := pop.NodeAssignment(32, 0, 0, 5)
	if len(nodes) != 32 {
		t.Fatalf("nodes = %d", len(nodes))
	}
	sum := 0.0
	for _, v := range nodes {
		sum += v
	}
	want := pop.PairSum(0, 0)
	if math.Abs(sum-want) > 1e-6*want {
		t.Errorf("node assignment total %g != pair sum %g", sum, want)
	}
	if pop.NodeAssignment(0, 0, 0, 5) != nil {
		t.Error("zero nodes should return nil")
	}
}

func TestComputeDataLevelsTable1(t *testing.T) {
	small, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := small.Levels()
	if err != nil {
		t.Fatal(err)
	}
	// Table 1: 1024³ -> ~40 GB Level 1, ~5 GB Level 2, Level 3 in the tens
	// of MB.
	if lv.Level1Bytes < 35e9 || lv.Level1Bytes > 45e9 {
		t.Errorf("L1 = %.3g, want ~40 GB", lv.Level1Bytes)
	}
	if lv.Level2Bytes < 1e9 || lv.Level2Bytes > 10e9 {
		t.Errorf("L2 = %.3g, want ~5 GB", lv.Level2Bytes)
	}
	if lv.Level3Bytes < 5e6 || lv.Level3Bytes > 500e6 {
		t.Errorf("L3 = %.3g, want tens of MB", lv.Level3Bytes)
	}
	if lv.Level2Fraction <= 0 || lv.Level2Fraction > 0.5 {
		t.Errorf("L2 fraction = %v", lv.Level2Fraction)
	}
	if _, err := ComputeDataLevels(0, small.Population, 300000); err == nil {
		t.Error("expected error for zero particles")
	}
}

func TestScenarioValidation(t *testing.T) {
	s, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	broken := *s
	broken.Population = nil
	if err := broken.Validate(); err == nil {
		t.Error("expected population error")
	}
	broken2 := *s
	broken2.Timesteps = 0
	if err := broken2.Validate(); err == nil {
		t.Error("expected timesteps error")
	}
}

// Table 3's central result: off-line > in-situ > combined in core hours,
// with combined saving ~30% over in-situ.
func TestWorkflowCoreHourOrdering(t *testing.T) {
	s, err := DownscaledScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	reports := map[Kind]*Report{}
	for _, k := range Kinds() {
		r, err := Run(s, k)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		reports[k] = r
	}
	inSitu := reports[InSitu].AnalysisCoreHours
	offline := reports[Offline].AnalysisCoreHours
	combined := reports[CombinedSimple].AnalysisCoreHours
	if !(offline > inSitu && inSitu > combined) {
		t.Errorf("ordering broken: offline=%v insitu=%v combined=%v", offline, inSitu, combined)
	}
	// Combined saves roughly 30% over in-situ (paper: 135 vs 193).
	saving := 1 - combined/inSitu
	if saving < 0.10 || saving > 0.60 {
		t.Errorf("combined saving = %.0f%%, paper shows ~30%%", saving*100)
	}
	// Off-line pays Level 1 I/O and redistribution; in-situ pays neither.
	if reports[Offline].RedistributeSeconds <= 0 || reports[InSitu].RedistributeSeconds != 0 {
		t.Error("redistribution accounting wrong")
	}
	// Combined redistribution is Level 2: much smaller than off-line's.
	if reports[CombinedSimple].RedistributeSeconds*2 > reports[Offline].RedistributeSeconds {
		t.Error("Level 2 redistribution should be under half of Level 1's")
	}
	// Co-scheduled core hours equal the simple variant ("would in theory be
	// equal ... if run on equivalent hardware", Table 3).
	if math.Abs(reports[CombinedCoScheduled].AnalysisCoreHours-combined) > 0.01*combined {
		t.Errorf("co-scheduled charge %v != simple %v", reports[CombinedCoScheduled].AnalysisCoreHours, combined)
	}
	// In-transit drops the Level 2 I/O but keeps the redistribution.
	it := reports[CombinedInTransit]
	if it.ReadSeconds != 0 || it.RedistributeSeconds <= 0 {
		t.Errorf("in-transit I/O accounting: read=%v redist=%v", it.ReadSeconds, it.RedistributeSeconds)
	}
}

// Table 4 magnitudes for the downscaled run.
func TestWorkflowTable4Magnitudes(t *testing.T) {
	s, err := DownscaledScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	inSitu, err := Run(s, InSitu)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: in-situ analysis 722 s (2x band for population randomness).
	if inSitu.AnalysisSeconds < 300 || inSitu.AnalysisSeconds > 1500 {
		t.Errorf("in-situ analysis = %v s, paper says 722", inSitu.AnalysisSeconds)
	}
	offline, err := Run(s, Offline)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: redistribute 435 s, read/write ~5 s.
	if offline.RedistributeSeconds < 200 || offline.RedistributeSeconds > 700 {
		t.Errorf("off-line redistribute = %v s, paper says 435", offline.RedistributeSeconds)
	}
	if offline.SimWriteSeconds < 2 || offline.SimWriteSeconds > 12 {
		t.Errorf("L1 write = %v s, paper says 5", offline.SimWriteSeconds)
	}
	combined, err := Run(s, CombinedSimple)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: combined in-situ phase 361 s; post analysis 1075 s on 4 nodes.
	if combined.AnalysisSeconds < 150 || combined.AnalysisSeconds > 700 {
		t.Errorf("combined in-situ analysis = %v s, paper says 361", combined.AnalysisSeconds)
	}
	if combined.PostAnalysisSeconds < 400 || combined.PostAnalysisSeconds > 2500 {
		t.Errorf("combined post analysis = %v s, paper says 1075", combined.PostAnalysisSeconds)
	}
	if combined.PostNodes != 4 {
		t.Errorf("post nodes = %d", combined.PostNodes)
	}
	// The off-line wall clock includes the multi-day queue wait.
	if offline.WallClock < s.OfflineQueueWait {
		t.Errorf("off-line wall clock %v ignores queueing", offline.WallClock)
	}
}

// Multi-timestep co-scheduling: analysis overlaps the running simulation,
// so the scientist's wall-clock wait beats the simple variant.
func TestCoSchedulingOverlapsAnalysis(t *testing.T) {
	s, err := DownscaledScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	s.Timesteps = 5
	s.PostQueueWait = 0
	simple, err := Run(s, CombinedSimple)
	if err != nil {
		t.Fatal(err)
	}
	co, err := Run(s, CombinedCoScheduled)
	if err != nil {
		t.Fatal(err)
	}
	if co.WallClock >= simple.WallClock {
		t.Errorf("co-scheduled wall %v should beat simple %v", co.WallClock, simple.WallClock)
	}
	if len(co.AnalysisJobStarts) != 5 {
		t.Fatalf("co-scheduled submitted %d analysis jobs, want 5", len(co.AnalysisJobStarts))
	}
	// All but the last analysis job start before the simulation ends.
	simEnd := simple.SimJobTotal()
	overlapped := 0
	for _, start := range co.AnalysisJobStarts {
		if start < simEnd {
			overlapped++
		}
	}
	if overlapped < 3 {
		t.Errorf("only %d of 5 analysis jobs overlapped the simulation", overlapped)
	}
}

func TestRunRejectsUnknownKind(t *testing.T) {
	s, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(s, Kind("bogus")); err == nil {
		t.Error("expected error")
	}
}

// The automated split rule (§4.1).
func TestAutoSplit(t *testing.T) {
	s, err := QContinuumScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := AutoSplit(s)
	if err != nil {
		t.Fatal(err)
	}
	if !d.OffloadNeeded {
		t.Fatal("Q Continuum must need off-loading")
	}
	// The paper chose 300k manually and notes the automated rule would
	// allow anything analyzable within t_io; with t_io ~20 minutes and the
	// quadratic center cost, m_max_io lands in the millions of particles —
	// above the manual threshold, below the largest halo.
	if d.Threshold < 300000 {
		t.Errorf("auto threshold = %d, should be no stricter than the manual 300,000", d.Threshold)
	}
	if d.Threshold >= d.LargestSimSize {
		t.Errorf("auto threshold %d should leave the largest halo (%d) off-loaded", d.Threshold, d.LargestSimSize)
	}
	if d.LargestSimSize <= d.MaxInSituSize {
		t.Error("inconsistent offload decision")
	}
	if d.CoScheduleRanks < 1 {
		t.Errorf("ranks = %d", d.CoScheduleRanks)
	}
	// T/t_max sizing: makespan-balanced, so ranks <= count of off-loaded
	// halos.
	if float64(d.CoScheduleRanks) > s.Population.CountAbove(d.Threshold) {
		t.Errorf("ranks %d exceed off-loaded halos", d.CoScheduleRanks)
	}
}

// A small box whose largest halo is analyzable within t_io needs no split.
func TestAutoSplitNoOffloadForSmallProblem(t *testing.T) {
	s, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	// Make I/O artificially expensive so everything fits in-situ.
	s.Costs.CenterPairSeconds = 1e-16
	d, err := AutoSplit(s)
	if err != nil {
		t.Fatal(err)
	}
	if d.OffloadNeeded {
		t.Error("cheap centers should not need off-loading")
	}
	if d.Threshold != 0 {
		t.Errorf("threshold = %d", d.Threshold)
	}
}

// §4.1 headline numbers.
func TestQContinuumStudyShape(t *testing.T) {
	r, err := QContinuumStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	// Moonlight node hours within 2x of 1770.
	if r.MoonlightNodeHours < 800 || r.MoonlightNodeHours > 3600 {
		t.Errorf("Moonlight node hours = %v, paper says 1770", r.MoonlightNodeHours)
	}
	// Titan equivalence factor.
	if math.Abs(r.TitanEquivalentNodeHours/r.MoonlightNodeHours-0.55) > 1e-9 {
		t.Error("Titan equivalence factor wrong")
	}
	// Combined beats monolithic by a large factor (paper: 6.5).
	if r.SavingFactor < 3 || r.SavingFactor > 25 {
		t.Errorf("saving factor = %v, paper says 6.5", r.SavingFactor)
	}
	if r.CombinedCoreHours >= r.MonolithicCoreHours {
		t.Error("combined must beat monolithic")
	}
	// Longest job > shortest job; longest block <= longest job.
	if r.LongestJobHours <= r.ShortestJobHours {
		t.Error("job spread missing")
	}
	if r.LongestBlockHours > r.LongestJobHours {
		t.Error("a block cannot exceed its job")
	}
	// I/O overhead ~0.16M core hours (2x band).
	if r.IOOverheadCoreHours < 8e4 || r.IOOverheadCoreHours > 4e5 {
		t.Errorf("I/O overhead = %v, paper says ~0.16M", r.IOOverheadCoreHours)
	}
	// In-situ small-halo centers take on the order of a minute.
	if r.SmallCenterSeconds < 5 || r.SmallCenterSeconds > 300 {
		t.Errorf("small centers = %v s, paper says ~1 minute", r.SmallCenterSeconds)
	}
	if len(r.String()) == 0 {
		t.Error("empty report string")
	}
}

// Table 2 shape: Find balanced and growing toward z=0; Center imbalance
// exploding toward z=0.
func TestTable2Shape(t *testing.T) {
	rows, err := Table2(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		// Find is well balanced: max/min < 1.5.
		if r.FindMax/r.FindMin > 1.5 {
			t.Errorf("slice %d: find imbalance %v", r.Slice, r.FindMax/r.FindMin)
		}
		// Center is badly balanced everywhere, worse later.
		if r.CenterMax/r.CenterMin < 2 {
			t.Errorf("slice %d: center imbalance only %v", r.Slice, r.CenterMax/r.CenterMin)
		}
		if i > 0 {
			if r.FindMax <= rows[i-1].FindMax {
				t.Errorf("find time should grow with structure: slice %d", r.Slice)
			}
			if r.CenterMax <= rows[i-1].CenterMax {
				t.Errorf("center max should grow with structure: slice %d", r.Slice)
			}
		}
	}
	last := rows[3]
	// z=0 center imbalance is extreme (paper: 21250 / 2.4 ~ 1e4).
	if last.CenterMax/last.CenterMin < 50 {
		t.Errorf("z=0 center imbalance = %v, paper shows ~1e4", last.CenterMax/last.CenterMin)
	}
	// Find max at z=0 within 2x of the paper's 2143.
	if last.FindMax < 1000 || last.FindMax > 4500 {
		t.Errorf("z=0 find max = %v, paper says 2143", last.FindMax)
	}
	// Center max at z=0 within ~2x of the paper's 21250.
	if last.CenterMax < 8000 || last.CenterMax > 45000 {
		t.Errorf("z=0 center max = %v, paper says 21250", last.CenterMax)
	}
}

// Figure 3 shape: steep decline, split at 300k, off-loaded counts tiny.
func TestFigure3Shape(t *testing.T) {
	bins, total, off, err := Figure3(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(bins) < 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	// Counts fall steeply: first bin dominates the last by orders of
	// magnitude.
	first, last := bins[0], bins[len(bins)-1]
	if first.Count < 1e5*last.Count {
		t.Errorf("mass function not steep: first %g last %g", first.Count, last.Count)
	}
	// Offloaded flag flips exactly at the threshold.
	for _, b := range bins {
		if (b.Particles > 300000) != b.Offloaded {
			t.Errorf("bin at %v particles misflagged", b.Particles)
		}
	}
	if off >= total/100 {
		t.Errorf("off-loaded %v of %v: fraction too high", off, total)
	}
	// Mass column consistent with particle column.
	if bins[0].MassMsun <= bins[0].Particles {
		t.Error("mass should exceed particle count (1e8 Msun particles)")
	}
}

// Figure 4 shape: strongly right-skewed node-time histogram with a lone
// extreme node.
func TestFigure4Shape(t *testing.T) {
	h, err := Figure4(1)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 16384 {
		t.Errorf("nodes binned = %d", h.Total())
	}
	// First bin holds the overwhelming majority of nodes.
	if float64(h.Counts[0]) < 0.5*16384 {
		t.Errorf("first bin = %d of 16384", h.Counts[0])
	}
	// The last occupied bin holds very few nodes.
	lastIdx := -1
	for i, c := range h.Counts {
		if c > 0 {
			lastIdx = i
		}
	}
	if lastIdx < 5 {
		t.Errorf("distribution not long-tailed: last bin %d", lastIdx)
	}
	if h.Counts[lastIdx] > 10 {
		t.Errorf("extreme bin holds %d nodes, want a handful", h.Counts[lastIdx])
	}
	// Paper's axis spans ~21 bins of 1000 s; ours lands in the same decade.
	if lastIdx < 8 || lastIdx > 60 {
		t.Errorf("histogram spans %d bins, paper spans ~21", lastIdx+1)
	}
}

func TestTable1Output(t *testing.T) {
	rows, err := Table1(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// 8192³ Level 1 ~20 TB; Level 2 a factor of several smaller.
	big := rows[1]
	if big.Level1Bytes < 15e12 || big.Level1Bytes > 25e12 {
		t.Errorf("8192³ L1 = %.3g, paper says ~20 TB", big.Level1Bytes)
	}
	if big.Level2Bytes >= big.Level1Bytes/3 {
		t.Errorf("L2 %.3g not well below L1 %.3g", big.Level2Bytes, big.Level1Bytes)
	}
	if big.Level3Bytes >= big.Level2Bytes/10 {
		t.Errorf("L3 %.3g not well below L2 %.3g", big.Level3Bytes, big.Level2Bytes)
	}
}

// §4.2 subhalo imbalance.
func TestSubhaloImbalanceShape(t *testing.T) {
	slow, fast, err := SubhaloImbalance(4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := slow / fast
	if ratio < 3 || ratio > 15 {
		t.Errorf("imbalance = %v, paper says >5 (8172/1457)", ratio)
	}
	// Magnitudes within ~2x of the paper's seconds.
	if slow < 3000 || slow > 17000 {
		t.Errorf("slowest = %v, paper says 8172", slow)
	}
	if fast < 500 || fast > 3500 {
		t.Errorf("fastest = %v, paper says 1457", fast)
	}
}

// A 100-snapshot co-scheduled campaign: nearly every analysis job overlaps
// the simulation, the trailing work after sim end is at most a couple of
// job lengths, and the co-scheduled finish beats the simple workflow.
func TestCampaignOverlapAndPileUp(t *testing.T) {
	s, err := DownscaledScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	s.PostQueueWait = 0
	rep, err := Campaign(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AnalysisJobs != 100 {
		t.Fatalf("analysis jobs = %d", rep.AnalysisJobs)
	}
	if rep.OverlapFraction < 0.9 {
		t.Errorf("overlap = %v, expected nearly all jobs co-scheduled", rep.OverlapFraction)
	}
	if rep.TotalWallClock >= rep.SimpleWallClock {
		t.Errorf("co-scheduled %v should beat simple %v", rep.TotalWallClock, rep.SimpleWallClock)
	}
	if rep.MaxPileUp < 1 {
		t.Errorf("pile-up = %d", rep.MaxPileUp)
	}
	// Trailing work after the sim is bounded by the pile-up drain.
	if rep.TrailingSeconds > rep.SimpleWallClock-rep.SimWallClock {
		t.Errorf("trailing %v exceeds serial analysis span", rep.TrailingSeconds)
	}
}

func TestCampaignValidation(t *testing.T) {
	s, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Campaign(s, 0); err == nil {
		t.Error("expected timesteps error")
	}
}

// When analysis is slower than the simulation cadence, jobs pile up — the
// §3.2 "pile-up in the analysis stack" regime.
func TestCampaignPileUpWhenAnalysisSlow(t *testing.T) {
	s, err := DownscaledScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	s.PostQueueWait = 0
	s.StepInterval = 10 // sim emits much faster than the post jobs drain
	// Constrain the post machine so only one job runs at a time.
	s.PostMachine.Nodes = s.PostNodes
	rep, err := Campaign(s, 20)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPileUp < 5 {
		t.Errorf("pile-up = %d, expected a deep queue", rep.MaxPileUp)
	}
	if rep.AnalysisJobs != 20 {
		t.Errorf("all jobs must still complete: %d", rep.AnalysisJobs)
	}
}

// §4.2's machine-choice trade-off: Rhea (no GPUs) is far slower for the
// center analysis than GPU machines; Titan is fastest but its queue policy
// penalizes the small analysis job.
func TestCompareAnalysisMachines(t *testing.T) {
	s, err := DownscaledScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	choices, err := CompareAnalysisMachines(s, []platform.Machine{
		platform.Titan(), platform.Rhea(), platform.Moonlight(),
	})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]MachineChoice{}
	for _, c := range choices {
		byName[c.Machine.Name] = c
	}
	titan, rhea, moon := byName["Titan"], byName["Rhea"], byName["Moonlight"]
	// "the lack of GPUs slowed down the center finding considerably":
	// Rhea is ~50x slower than Titan.
	if rhea.PostAnalysisSeconds < 20*titan.PostAnalysisSeconds {
		t.Errorf("Rhea %v not ≫ Titan %v", rhea.PostAnalysisSeconds, titan.PostAnalysisSeconds)
	}
	// Moonlight is slower than Titan by ~1/0.55.
	ratio := moon.PostAnalysisSeconds / titan.PostAnalysisSeconds
	if ratio < 1.5 || ratio > 2.5 {
		t.Errorf("Moonlight/Titan = %v, want ~1.8", ratio)
	}
	// Titan's queue penalizes the small analysis job; the others admit it.
	if !titan.SubjectToSmallJobPolicy {
		t.Error("Titan small-job policy should apply to a 4-node job")
	}
	if rhea.SubjectToSmallJobPolicy || moon.SubjectToSmallJobPolicy {
		t.Error("analysis clusters should have no small-job cap")
	}
	if titan.QueueWaitSeconds <= rhea.QueueWaitSeconds {
		t.Error("Titan's analysis-job wait should exceed Rhea's")
	}
}
