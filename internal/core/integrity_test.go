package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
	"repro/internal/integrity"
)

// bitRotScenario builds the downscaled campaign with seeded at-rest bit
// rot plus a co-scheduled background scrubber.
func bitRotScenario(t *testing.T, seed int64, crashes []fault.Crash) *Scenario {
	t.Helper()
	s := resumeScenario(t, seed, nil)
	s.Faults = &fault.Profile{Seed: seed, Crashes: crashes,
		BitRotProb: 0.5, BitRotDelaySecMin: 10, BitRotDelaySecMax: 1500}
	s.Scrub = &ScrubPolicy{Interval: 250, Batch: 3}
	return s
}

// runRotToCompletion re-runs a bit-rot campaign until it survives its
// crash schedule.
func runRotToCompletion(t *testing.T, seed int64, timesteps int, dir string, crashes []fault.Crash) (*CampaignReport, int) {
	t.Helper()
	crashCount := 0
	for gen := 0; gen <= len(crashes)+1; gen++ {
		rep, err := ResumableCampaign(bitRotScenario(t, seed, crashes), timesteps, dir, seed)
		if errors.Is(err, ErrCampaignCrashed) {
			crashCount++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		return rep, crashCount
	}
	t.Fatalf("campaign in %s never completed", dir)
	return nil, 0
}

// decisionLog renders a report's scrub decisions as the canonical text
// log (what cmd/workflow-sim prints and CI diffs between runs).
func decisionLog(rep *CampaignReport) string {
	out := ""
	for _, d := range rep.ScrubDecisions {
		out += d.String() + "\n"
	}
	return out
}

// The tentpole property: a campaign hammered by seeded bit rot, scrubbed
// and repaired in the background, must end with products byte-identical
// to a fault-free run of the same seed — the whole pipeline is a pure
// function of the seed. And the scrub/repair decision log must replay
// identically across executions.
func TestBitRotScrubRepairProperty(t *testing.T) {
	const steps = 6
	for _, seed := range []int64{5, 11} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cleanDir := t.TempDir()
			if _, err := ResumableCampaign(resumeScenario(t, seed, nil), steps, cleanDir, seed); err != nil {
				t.Fatal(err)
			}
			want := snapshotProducts(t, cleanDir)

			rotDir := t.TempDir()
			rep, err := ResumableCampaign(bitRotScenario(t, seed, nil), steps, rotDir, seed)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Integrity.Corruptions == 0 {
				t.Error("bit rot at prob 0.5 injected no corruption — injection is not wired")
			}
			if rep.Integrity.Repaired != rep.Integrity.Quarantined {
				t.Errorf("repaired %d of %d quarantined products", rep.Integrity.Repaired, rep.Integrity.Quarantined)
			}
			if rep.Integrity.Escalated != 0 {
				t.Errorf("%d products escalated; pure re-derivation must always converge", rep.Integrity.Escalated)
			}
			if rep.Integrity.ScrubJobs == 0 {
				t.Error("no co-scheduled scrub jobs ran")
			}
			sameProducts(t, want, snapshotProducts(t, rotDir), "bit-rot+scrub")

			// No quarantine leftovers may survive a converged campaign.
			for _, sub := range []string{"", "l2", "centers"} {
				entries, err := os.ReadDir(filepath.Join(rotDir, sub))
				if err != nil {
					t.Fatal(err)
				}
				for _, e := range entries {
					if filepath.Ext(e.Name()) == ".quarantine" {
						t.Errorf("leftover quarantine file %s/%s", sub, e.Name())
					}
				}
			}

			// Replay determinism: an identical execution logs identical
			// decisions and lands identical bytes.
			rotDir2 := t.TempDir()
			rep2, err := ResumableCampaign(bitRotScenario(t, seed, nil), steps, rotDir2, seed)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := decisionLog(rep2), decisionLog(rep); got != want {
				t.Errorf("scrub decision log not deterministic:\n--- run1 ---\n%s--- run2 ---\n%s", want, got)
			}
			if rep2.Integrity != rep.Integrity {
				t.Errorf("integrity stats differ across identical runs: %+v vs %+v", rep.Integrity, rep2.Integrity)
			}
			sameProducts(t, want, snapshotProducts(t, rotDir2), "bit-rot+scrub replay")
		})
	}
}

// Bit rot across crash/restart: the lineage ledger survives the kills,
// reconciliation repairs corruption found on resume, and the converged
// product set still matches the fault-free run byte for byte.
func TestBitRotSurvivesCrashResume(t *testing.T) {
	const seed, steps = 7, 6
	cleanDir := t.TempDir()
	if _, err := ResumableCampaign(resumeScenario(t, seed, nil), steps, cleanDir, seed); err != nil {
		t.Fatal(err)
	}
	want := snapshotProducts(t, cleanDir)

	stepDur := 775.0 + 120 // interval + in-situ/analysis work per step (approx)
	crashes := []fault.Crash{{AtTime: 2.5 * stepDur}, {AtStep: steps - 1}}
	dir := t.TempDir()
	rep, crashCount := runRotToCompletion(t, seed, steps, dir, crashes)
	if crashCount != 2 {
		t.Fatalf("crashed %d times, want 2", crashCount)
	}
	if rep.Resume.Generation != 2 {
		t.Errorf("final generation %d, want 2", rep.Resume.Generation)
	}
	if rep.Integrity.Escalated != 0 {
		t.Errorf("%d products escalated", rep.Integrity.Escalated)
	}
	sameProducts(t, want, snapshotProducts(t, dir), "bit-rot+crash+resume")

	// The whole crash-and-repair history replays identically.
	dir2 := t.TempDir()
	rep2, crashCount2 := runRotToCompletion(t, seed, steps, dir2, crashes)
	if crashCount2 != crashCount {
		t.Fatalf("replay crashed %d times, want %d", crashCount2, crashCount)
	}
	if got, wantLog := decisionLog(rep2), decisionLog(rep); got != wantLog {
		t.Errorf("decision log not deterministic across crash/resume replay:\n--- run1 ---\n%s--- run2 ---\n%s", wantLog, got)
	}
	sameProducts(t, want, snapshotProducts(t, dir2), "bit-rot+crash replay")
}

// Scrubbing with no injected faults must not perturb the campaign's
// products, and every verification must pass.
func TestScrubFaultFreeIsClean(t *testing.T) {
	const seed, steps = 3, 4
	cleanDir := t.TempDir()
	if _, err := ResumableCampaign(resumeScenario(t, seed, nil), steps, cleanDir, seed); err != nil {
		t.Fatal(err)
	}
	want := snapshotProducts(t, cleanDir)

	dir := t.TempDir()
	s := resumeScenario(t, seed, nil)
	s.Scrub = &ScrubPolicy{Interval: 300, Batch: 4}
	rep, err := ResumableCampaign(s, steps, dir, seed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Integrity.Corruptions != 0 || rep.Integrity.Quarantined != 0 {
		t.Errorf("fault-free scrub found corruption: %+v", rep.Integrity)
	}
	if rep.Integrity.Verified == 0 {
		t.Error("fault-free scrub verified nothing")
	}
	sameProducts(t, want, snapshotProducts(t, dir), "fault-free scrub")
}

// The lineage ledger records provenance: the merged catalog descends from
// every per-step centers product, which descend from their Level 2 files.
func TestLineageLedgerProvenance(t *testing.T) {
	const seed, steps = 3, 4
	dir := t.TempDir()
	s := resumeScenario(t, seed, nil)
	s.Scrub = &ScrubPolicy{}
	if _, err := ResumableCampaign(s, steps, dir, seed); err != nil {
		t.Fatal(err)
	}
	led, err := integrity.OpenLedger(filepath.Join(dir, "lineage.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer led.Close()
	if got := len(led.Products()); got != 2*steps+1 {
		t.Fatalf("%d lineage records, want %d", got, 2*steps+1)
	}
	for step := 1; step <= steps; step++ {
		down := led.Downstream(l2RelPath(step))
		if len(down) != 2 || down[0] != centersRelPath(step) || down[1] != "catalog.txt" {
			t.Errorf("downstream of %s = %v", l2RelPath(step), down)
		}
	}
	// Every ledger record matches its bytes on disk.
	for _, p := range led.Products() {
		data, err := os.ReadFile(filepath.Join(dir, p.Path))
		if err != nil {
			t.Fatal(err)
		}
		if integrity.Sum(data) != p.Sum || int64(len(data)) != p.Bytes {
			t.Errorf("ledger record for %s does not match disk", p.Path)
		}
	}
}
