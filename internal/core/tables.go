package core

import (
	"fmt"

	"repro/internal/cosmo"
	"repro/internal/stats"
)

// Table2Row is one row of the paper's Table 2: per-slice min/max node
// times for halo identification (Find) and center finding (Center), in
// seconds on Titan.
type Table2Row struct {
	Slice    int
	Redshift float64
	FindMax  float64
	FindMin  float64
	// CenterMax at the final slice is the projected large-halo time of the
	// slowest node (the paper adjusts its Moonlight measurement onto Titan
	// by 0.55; this model computes Titan directly). CenterMin at the final
	// slice is the fastest node's in-situ (≤ 300k) time, since the split
	// was active there.
	CenterMax float64
	CenterMin float64
}

// table2Slices are the paper's reported output slices and redshifts.
var table2Slices = []struct {
	slice int
	z     float64
}{
	{60, 1.680},
	{64, 1.433},
	{73, 0.959},
	{100, 0.0},
}

// findSpread is the modelled FOF load imbalance: Table 2 shows max/min
// ratios of 1.15-1.25 across all slices ("the identification is well
// balanced for each time step").
const findSpread = 0.10

// Table2 regenerates the per-slice timing table for the Q Continuum
// configuration. Populations are synthesized per redshift; the split
// (300k) is applied only at the final slice, as in the production run.
func Table2(seed int64) ([]Table2Row, error) {
	s, err := QContinuumScenario(seed)
	if err != nil {
		return nil, err
	}
	p := cosmo.Default()
	nLocal := int(s.TotalParticles() / float64(s.SimNodes))
	var rows []Table2Row
	for _, sl := range table2Slices {
		pop, err := SynthesizePopulation(p, SynthesisOptions{
			BoxMpch:     s.BoxMpch,
			NP:          s.NP,
			Z:           sl.z,
			MinSize:     40,
			SampleAbove: s.SplitThreshold,
			Seed:        seed + int64(sl.slice),
		})
		if err != nil {
			return nil, err
		}
		a := cosmo.ScaleFactor(sl.z)
		dRel := p.GrowthFactor(a)
		base := s.Costs.FOFSeconds(s.Machine, nLocal, dRel)
		row := Table2Row{
			Slice:    sl.slice,
			Redshift: sl.z,
			FindMin:  base * (1 - findSpread),
			FindMax:  base * (1 + findSpread),
		}
		pairGPU := s.Costs.CenterPairSeconds * s.Machine.KernelFactor(true)
		if sl.slice == 100 {
			// Split active: max is the slowest node's projected large-halo
			// time; min is the fastest node's small-halo in-situ time.
			nodesLarge := pop.NodeAssignment(s.SimNodes, s.SplitThreshold, 0, seed+9)
			row.CenterMax = maxOf(nodesLarge) * pairGPU
			nodesSmall := pop.NodeAssignment(s.SimNodes, 0, s.SplitThreshold, seed+9)
			row.CenterMin = minPositive(nodesSmall) * pairGPU
		} else {
			nodesAll := pop.NodeAssignment(s.SimNodes, 0, 0, seed+int64(sl.slice))
			row.CenterMax = maxOf(nodesAll) * pairGPU
			row.CenterMin = minPositive(nodesAll) * pairGPU
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func minPositive(vs []float64) float64 {
	m := -1.0
	for _, v := range vs {
		if v > 0 && (m < 0 || v < m) {
			m = v
		}
	}
	if m < 0 {
		return 0
	}
	return m
}

// MassFunctionBin is one Figure 3 histogram bar: halo counts per
// logarithmic mass bin, flagged by whether the bin was off-loaded (blue in
// the paper) or fully analyzed in-situ (red).
type MassFunctionBin struct {
	// Particles is the bin centre in particles per halo.
	Particles float64
	// MassMsun is the bin centre in Msun/h.
	MassMsun float64
	// Count of halos in the bin.
	Count float64
	// Offloaded marks bins above the 300k split.
	Offloaded bool
}

// Figure3 regenerates the z=0 halo mass function of the Q Continuum run
// with the 300k-particle split marked, plus the headline totals.
func Figure3(seed int64) (bins []MassFunctionBin, total, offloaded float64, err error) {
	s, err := QContinuumScenario(seed)
	if err != nil {
		return nil, 0, 0, err
	}
	pop := s.Population
	mp := cosmo.Default().ParticleMass(s.BoxMpch, s.NP)
	for _, b := range pop.Bins {
		bins = append(bins, MassFunctionBin{
			Particles: b.Size,
			MassMsun:  b.Size * mp,
			Count:     b.Count,
			Offloaded: b.Size > float64(s.SplitThreshold),
		})
	}
	// The individually sampled tail: histogram in half-decade bins.
	if len(pop.Large) > 0 {
		h, herr := stats.NewLogHistogram(float64(s.SplitThreshold), float64(pop.LargestSize())*1.01, 8)
		if herr != nil {
			return nil, 0, 0, herr
		}
		for _, n := range pop.Large {
			h.Add(float64(n))
		}
		centers := h.BinCenters()
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			bins = append(bins, MassFunctionBin{
				Particles: centers[i],
				MassMsun:  centers[i] * mp,
				Count:     float64(c),
				Offloaded: centers[i] > float64(s.SplitThreshold),
			})
		}
	}
	return bins, pop.TotalHalos(), pop.CountAbove(s.SplitThreshold), nil
}

// Figure4 regenerates the histogram of projected per-node center-finding
// times for the off-loaded (> 300k) halos across the 16,384 Titan nodes:
// bins of width 1000 s, node counts on a log scale when rendered.
func Figure4(seed int64) (*stats.Histogram, error) {
	s, err := QContinuumScenario(seed)
	if err != nil {
		return nil, err
	}
	pairGPU := s.Costs.CenterPairSeconds * s.Machine.KernelFactor(true)
	nodes := s.Population.NodeAssignment(s.SimNodes, s.SplitThreshold, 0, seed+9)
	maxT := 0.0
	for _, v := range nodes {
		if t := v * pairGPU; t > maxT {
			maxT = t
		}
	}
	nBins := int(maxT/1000) + 1
	h, err := stats.NewHistogram(0, float64(nBins)*1000, nBins)
	if err != nil {
		return nil, err
	}
	for _, v := range nodes {
		h.Add(v * pairGPU)
	}
	return h, nil
}

// Table1Row is one column of the paper's Table 1: the data hierarchy for
// one simulation size.
type Table1Row struct {
	Label       string
	Level1Bytes float64
	Level2Bytes float64
	Level3Bytes float64
}

// Table1 regenerates the Level 1/2/3 sizes for the paper's two
// configurations (1024³ and 8192³, last step only, split at 300k).
func Table1(seed int64) ([]Table1Row, error) {
	var rows []Table1Row
	small, err := DownscaledScenario(seed)
	if err != nil {
		return nil, err
	}
	big, err := QContinuumScenario(seed)
	if err != nil {
		return nil, err
	}
	for _, s := range []*Scenario{small, big} {
		lv, err := s.Levels()
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Label:       fmt.Sprintf("%d^3", s.NP),
			Level1Bytes: lv.Level1Bytes,
			Level2Bytes: lv.Level2Bytes,
			Level3Bytes: lv.Level3Bytes,
		})
	}
	return rows, nil
}

// SubhaloImbalance reproduces the §4.2 observation: subhalo finding for
// halos above 5000 particles on the downscaled run's 32 Titan CPU nodes
// showed "8172 secs for the slowest and 1457 secs for the fastest node, an
// imbalance of more than a factor of five". Returns the modelled per-node
// subhalo times.
func SubhaloImbalance(seed int64) (slowest, fastest float64, err error) {
	s, err := DownscaledScenario(seed)
	if err != nil {
		return 0, 0, err
	}
	// Per-node n·log n subhalo cost over halos > 5000 particles, CPU only.
	// NodeAssignment aggregates n², so assign sizes directly here.
	perNode := s.Population.NodeSubhaloSeconds(s.SimNodes, 5000, s.Costs, s.Machine, seed+3)
	sum, err2 := stats.Summarize(perNode)
	if err2 != nil {
		return 0, 0, err2
	}
	return sum.Max, sum.Min, nil
}
