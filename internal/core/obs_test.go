package core

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/supervise"
)

// campaignArtifacts runs a fresh campaign under an observer and returns
// every serialized observability artifact concatenated: Chrome trace
// JSON, span tree, metrics registry, and the cost table. Byte equality
// of this blob across runs is the determinism contract CI gates on.
func campaignArtifacts(t *testing.T, seed int64, steps int, gray bool) []byte {
	t.Helper()
	s, err := DownscaledScenario(seed)
	if err != nil {
		t.Fatal(err)
	}
	s.PostQueueWait = 0
	if gray {
		p := grayProfile(seed)
		s.Faults = &p
		pol := supervise.DefaultPolicy()
		s.Supervise = &pol
	}
	o := obs.New("campaign", nil)
	s.Obs = o
	if _, err := Campaign(s, steps); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.WriteTrace(&buf, o); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteSpanTree(&buf, o); err != nil {
		t.Fatal(err)
	}
	if err := o.Metrics().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.Cost(o, obs.TitanChargePolicy()).WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// Two identical campaigns must serialize to byte-identical artifacts —
// the observability layer's core guarantee, both on the quiet path and
// under gray weather (hedges, cancellations, degradation decisions).
func TestCampaignObservabilityDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		gray bool
	}{
		{"quiet", false},
		{"gray", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := campaignArtifacts(t, 7, 12, tc.gray)
			b := campaignArtifacts(t, 7, 12, tc.gray)
			if len(a) == 0 {
				t.Fatal("no artifact bytes produced")
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("artifacts differ between identical runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
			}
			for _, want := range []string{`"traceEvents"`, "span tree: campaign", "counter sched.attempts", "cost report: campaign"} {
				if !strings.Contains(string(a), want) {
					t.Errorf("artifact blob missing %q", want)
				}
			}
		})
	}
}

// The campaign trace must contain the full span hierarchy: one campaign
// root, one step span per snapshot, and at least one job span per
// analysis submission, with job spans charged to the machine.
func TestCampaignSpanHierarchy(t *testing.T) {
	const steps = 8
	s, err := DownscaledScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	s.PostQueueWait = 0
	o := obs.New("campaign", nil)
	s.Obs = o
	rep, err := Campaign(s, steps)
	if err != nil {
		t.Fatal(err)
	}
	var campaigns, stepSpans, jobs, charged int
	for _, sp := range o.Spans() {
		switch sp.Cat {
		case "campaign":
			campaigns++
		case "step":
			stepSpans++
		case "job":
			jobs++
			if sp.Nodes > 0 && sp.Machine != "" {
				charged++
			}
		}
	}
	if campaigns != 1 {
		t.Errorf("campaign spans = %d, want 1", campaigns)
	}
	if stepSpans != steps {
		t.Errorf("step spans = %d, want %d", stepSpans, steps)
	}
	if jobs < rep.AnalysisJobs {
		t.Errorf("job spans = %d, want >= %d analysis jobs", jobs, rep.AnalysisJobs)
	}
	if charged != jobs {
		t.Errorf("only %d of %d job spans carry a machine charge", charged, jobs)
	}
}

// The retroactive phase spans every workflow runner emits must price out
// to exactly the report's own accounting: the sim category reproduces
// SimCoreHours and everything else charged reproduces AnalysisCoreHours
// (Table 3's column). This pins the cost report to the paper numbers.
func TestPhaseSpanCostMatchesReport(t *testing.T) {
	for _, k := range Kinds() {
		s, err := DownscaledScenario(5)
		if err != nil {
			t.Fatal(err)
		}
		o := obs.New(string(k), nil)
		s.Obs = o
		r, err := Run(s, k)
		if err != nil {
			t.Fatal(err)
		}
		rep := obs.Cost(o, obs.TitanChargePolicy())
		var simCH, anaCH float64
		for _, l := range rep.Lines {
			if l.Category == "sim" {
				simCH += l.CoreHours
			} else {
				anaCH += l.CoreHours
			}
		}
		rel := func(got, want float64) float64 {
			return math.Abs(got-want) / (1 + math.Abs(want))
		}
		if rel(simCH, r.SimCoreHours) > 1e-9 {
			t.Errorf("%s: sim span core-hours %.6f, report %.6f", k, simCH, r.SimCoreHours)
		}
		if rel(anaCH, r.AnalysisCoreHours) > 1e-9 {
			t.Errorf("%s: analysis span core-hours %.6f, report %.6f", k, anaCH, r.AnalysisCoreHours)
		}
	}
}
