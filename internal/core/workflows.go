package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/sched"
	"repro/internal/supervise"
)

// Kind selects one of the paper's workflow strategies (Figure 1, Table 3).
type Kind string

// The five strategies of Table 3.
const (
	InSitu              Kind = "in-situ"
	Offline             Kind = "off-line"
	CombinedSimple      Kind = "in-situ/off-line simple"
	CombinedCoScheduled Kind = "in-situ/off-line co-scheduled"
	CombinedInTransit   Kind = "in-situ/off-line in-transit"
)

// Kinds lists every workflow in Table 3 order.
func Kinds() []Kind {
	return []Kind{InSitu, Offline, CombinedSimple, CombinedCoScheduled, CombinedInTransit}
}

// Report carries the phase timings and cost accounting of one workflow
// run — the rows of Tables 3 and 4.
type Report struct {
	Workflow Kind
	Scenario string

	// Simulation-job phases, seconds (Table 4 "Simulation" columns).
	SimSeconds      float64 // the physics time step(s) themselves
	AnalysisSeconds float64 // in-situ analysis inside the simulation job
	SimWriteSeconds float64 // Level 1/2/3 writes from the simulation job

	// Post-processing job phases (Table 4 "Post-processing" columns).
	PostQueueWait       float64
	ReadSeconds         float64
	RedistributeSeconds float64
	PostAnalysisSeconds float64
	PostWriteSeconds    float64

	// Node counts.
	SimNodes, PostNodes int

	// Core-hour accounting (Table 3): the analysis-attributable charge is
	// the sim job's analysis+write share plus the whole post job.
	AnalysisCoreHours float64
	SimCoreHours      float64

	// Wall clock from simulation start until all analysis products exist,
	// from the discrete-event run (includes queue waits and overlap).
	WallClock float64

	// Table 3 qualitative columns.
	IOLevel, RedistLevel, Queueing string

	// Co-scheduling detail: analysis job start times (virtual seconds).
	AnalysisJobStarts []float64

	// Resilience accounts failures and recoveries when the scenario has a
	// fault profile (all zero otherwise).
	Resilience Resilience

	// Decisions is the supervision decision log when the run was
	// supervised (nil otherwise) — a deterministic record of every watch,
	// suspect, hedge, degrade and rescue, identical across reruns of the
	// same seed.
	Decisions []supervise.Decision
}

// SimJobTotal is the simulation job's wall time per analysis step.
func (r *Report) SimJobTotal() float64 {
	return r.SimSeconds + r.AnalysisSeconds + r.SimWriteSeconds
}

// PostJobTotal is the post-processing job's execution time (excluding
// queueing).
func (r *Report) PostJobTotal() float64 {
	return r.ReadSeconds + r.RedistributeSeconds + r.PostAnalysisSeconds + r.PostWriteSeconds
}

// phases computes the deterministic per-step phase durations shared by
// all workflows of a scenario.
type phases struct {
	fof             float64 // per-node FOF (max node)
	centerAllMax    float64 // max-node in-situ centers, all halos
	centerSmallMax  float64 // max-node in-situ centers, halos <= threshold
	postCenter      float64 // makespan of off-line centers for large halos
	postSpillCenter float64 // off-line cost of spilled small-halo centers
	levels          DataLevels
	l1Write         float64
	l1Read          float64
	l1Redist        float64
	l2Write         float64
	l2Read          float64
	l2Redist        float64
	l3Write         float64
}

func computePhases(s *Scenario) (*phases, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	lv, err := s.Levels()
	if err != nil {
		return nil, err
	}
	ph := &phases{levels: lv}
	nLocal := int(s.TotalParticles() / float64(s.SimNodes))
	ph.fof = s.Costs.FOFSeconds(s.Machine, nLocal, 1.0)

	pairCostGPU := s.Costs.CenterPairSeconds * s.Machine.KernelFactor(true)
	nodesAll := s.Population.NodeAssignment(s.SimNodes, 0, 0, 7)
	nodesSmall := s.Population.NodeAssignment(s.SimNodes, 0, s.SplitThreshold, 7)
	ph.centerAllMax = maxOf(nodesAll) * pairCostGPU
	ph.centerSmallMax = maxOf(nodesSmall) * pairCostGPU

	// Off-line centers for large halos on the post machine: halos are
	// distributed "so that each rank has roughly the same workload"
	// (§4.1), so the makespan is the larger of the mean load and the
	// single largest halo.
	postPairCost := s.Costs.CenterPairSeconds * s.PostMachine.KernelFactor(true)
	totalLarge := s.Population.PairSum(s.SplitThreshold, 0) * postPairCost
	largest := float64(s.Population.LargestSize())
	tMax := largest * largest * postPairCost
	ph.postCenter = totalLarge / float64(s.PostNodes)
	if tMax > ph.postCenter {
		ph.postCenter = tMax
	}
	// A degraded step spills the small-halo center work to the off-line
	// job; well-balanced small halos amortize over the post nodes.
	if s.SplitThreshold > 0 {
		ph.postSpillCenter = s.Population.PairSum(0, s.SplitThreshold) * postPairCost / float64(s.PostNodes)
	}

	ph.l1Write = s.Machine.IOSeconds(lv.Level1Bytes, s.SimNodes)
	ph.l1Read = s.Machine.IOSeconds(lv.Level1Bytes, s.SimNodes)
	ph.l1Redist = s.Machine.RedistributeSeconds(lv.Level1Bytes, s.SimNodes)
	ph.l2Write = s.Machine.IOSeconds(lv.Level2Bytes, s.SimNodes)
	ph.l2Read = s.PostMachine.IOSeconds(lv.Level2Bytes, s.PostNodes)
	ph.l2Redist = s.PostMachine.RedistributeSeconds(lv.Level2Bytes, s.PostNodes)
	ph.l3Write = s.Machine.IOSeconds(lv.Level3Bytes, s.SimNodes)
	return ph, nil
}

func maxOf(vs []float64) float64 {
	m := 0.0
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}

// faultCluster attaches the scenario's injector, retry policy and drain
// windows to a cluster (no-op under a nil injector, preserving the
// failure-free event sequence exactly).
func faultCluster(c *sched.Cluster, inj *fault.Injector, retry sched.RetryPolicy) {
	if inj == nil {
		return
	}
	c.Faults = inj
	c.Retry = retry
	c.ApplyDrains(inj.NodeDrains())
}

// redriveLimit bounds write re-drives so a pathological profile (100%
// write failure) cannot loop forever; each re-drive draws an independent
// fault outcome, so under realistic rates the file always lands.
const redriveLimit = 8

// writeRedriveDelay is the virtual-seconds pause before a failed or
// truncated Level 2 write is re-driven.
const writeRedriveDelay = 5.0

// drainSweeps bounds the listener's post-run drain (Listener.Drain): a
// pathological profile refusing every submission cannot hang the run, and
// under realistic refusal rates every analysis is submitted well before
// the bound.
const drainSweeps = 40

// redriveWrite performs one Level 1/Level 2 write, verifies the landed
// size against the writer's intent, and re-drives the write after delay
// seconds when it failed outright or landed silently truncated — the
// workflow engine's recovery loop for storage faults. landed (may be nil)
// fires once the file is verified intact; the resumable campaign hangs its
// durable commit off it.
func redriveWrite(sim *des.Sim, storage *fs.System, res *Resilience, path string, bytes, delay float64, attempt int, landed func()) {
	storage.WriteChecked(path, bytes, 0, nil, func(err error) {
		if err == nil {
			if _, verr := storage.VerifySize(path, bytes); verr == nil {
				if landed != nil {
					landed()
				}
				return // landed intact
			}
			storage.Delete(path) // truncated: drop the short file
		}
		if attempt+1 >= redriveLimit {
			return // give up; the file is lost
		}
		res.WritesRedriven++
		sim.After(delay, func() {
			redriveWrite(sim, storage, res, path, bytes, delay, attempt+1, landed)
		})
	})
}

// Run executes the chosen workflow for the scenario on a discrete-event
// clock and returns its report. Timesteps > 1 exercises the co-scheduling
// pile-up behaviour; the Table 3/4 comparisons use Timesteps = 1.
func Run(s *Scenario, kind Kind) (*Report, error) {
	ph, err := computePhases(s)
	if err != nil {
		return nil, err
	}
	switch kind {
	case InSitu:
		return runInSitu(s, ph)
	case Offline:
		return runOffline(s, ph)
	case CombinedSimple, CombinedCoScheduled, CombinedInTransit:
		return runCombined(s, ph, kind)
	default:
		return nil, fmt.Errorf("core: unknown workflow kind %q", kind)
	}
}

// runInSitu: everything inside the simulation job; no I/O between
// simulation and analysis, no separate queueing.
func runInSitu(s *Scenario, ph *phases) (*Report, error) {
	r := &Report{
		Workflow: InSitu, Scenario: s.Name,
		SimNodes: s.SimNodes, PostNodes: 0,
		IOLevel: "none", RedistLevel: "none", Queueing: "none",
	}
	var sim des.Sim
	cluster, err := sched.NewCluster(&sim, s.Machine)
	if err != nil {
		return nil, err
	}
	faultCluster(cluster, s.injector(), s.retry())
	cluster.Supervise = s.supervision(&sim)
	analysis := ph.fof + ph.centerAllMax
	write := ph.l3Write
	stepDur := s.StepInterval + analysis + write
	job := &sched.Job{Name: "sim+insitu", Nodes: s.SimNodes, Duration: float64(s.Timesteps) * stepDur}
	if err := cluster.Submit(job); err != nil {
		return nil, err
	}
	sim.Run()
	r.Resilience.addCluster(cluster)
	r.Decisions = cluster.Supervise.Decisions()
	r.SimSeconds = float64(s.Timesteps) * s.StepInterval
	r.AnalysisSeconds = float64(s.Timesteps) * analysis
	r.SimWriteSeconds = float64(s.Timesteps) * write
	r.WallClock = sim.Now()
	r.AnalysisCoreHours = s.Machine.ChargeCoreHours(s.SimNodes, r.AnalysisSeconds+r.SimWriteSeconds)
	r.SimCoreHours = s.Machine.ChargeCoreHours(s.SimNodes, r.SimSeconds)
	emitPhaseSpans(s, r)
	return r, nil
}

// runOffline: the simulation writes Level 1 every step; a full-size
// analysis job queues after the simulation, reads everything back,
// redistributes, and analyzes.
func runOffline(s *Scenario, ph *phases) (*Report, error) {
	r := &Report{
		Workflow: Offline, Scenario: s.Name,
		SimNodes: s.SimNodes, PostNodes: s.SimNodes,
		IOLevel: "Level 1", RedistLevel: "Level 1", Queueing: "full",
	}
	var sim des.Sim
	cluster, err := sched.NewCluster(&sim, s.Machine)
	if err != nil {
		return nil, err
	}
	faultCluster(cluster, s.injector(), s.retry())
	cluster.Supervise = s.supervision(&sim)
	cluster.ExtraQueueWait = func(j *sched.Job) float64 {
		if j.Name == "offline-analysis" {
			return s.OfflineQueueWait
		}
		return 0
	}
	analysis := ph.fof + ph.centerAllMax
	perStepPost := ph.l1Read + ph.l1Redist + analysis + ph.l3Write
	simJob := &sched.Job{
		Name: "sim", Nodes: s.SimNodes,
		Duration: float64(s.Timesteps) * (s.StepInterval + ph.l1Write),
		OnComplete: func(*sched.Job) {
			post := &sched.Job{Name: "offline-analysis", Nodes: s.SimNodes,
				Duration: float64(s.Timesteps) * perStepPost}
			post.OnStart = func(j *sched.Job) { r.PostQueueWait = j.QueueWait() }
			_ = cluster.Submit(post)
		},
	}
	if err := cluster.Submit(simJob); err != nil {
		return nil, err
	}
	sim.Run()
	r.Resilience.addCluster(cluster)
	r.Decisions = cluster.Supervise.Decisions()
	steps := float64(s.Timesteps)
	r.SimSeconds = steps * s.StepInterval
	r.SimWriteSeconds = steps * ph.l1Write
	r.ReadSeconds = steps * ph.l1Read
	r.RedistributeSeconds = steps * ph.l1Redist
	r.PostAnalysisSeconds = steps * analysis
	r.PostWriteSeconds = steps * ph.l3Write
	r.WallClock = sim.Now()
	r.AnalysisCoreHours = s.Machine.ChargeCoreHours(s.SimNodes, r.SimWriteSeconds) +
		s.Machine.ChargeCoreHours(s.SimNodes, r.PostJobTotal())
	r.SimCoreHours = s.Machine.ChargeCoreHours(s.SimNodes, r.SimSeconds)
	emitPhaseSpans(s, r)
	return r, nil
}

// runCombined: halo finding plus small-halo centers in-situ; large-halo
// particles to Level 2; a small post job finishes the centers. The three
// variants differ in transport and scheduling of the post job:
//
//   - simple: Level 2 to disk; one post job queued after the simulation.
//   - co-scheduled: Level 2 to disk; the listener submits a post job per
//     timestep while the simulation runs.
//   - in-transit: Level 2 through shared external memory (no file I/O);
//     analysis resources are held concurrently, so no queue wait.
func runCombined(s *Scenario, ph *phases, kind Kind) (*Report, error) {
	r := &Report{
		Workflow: kind, Scenario: s.Name,
		SimNodes: s.SimNodes, PostNodes: s.PostNodes,
	}
	inTransit := kind == CombinedInTransit
	coSched := kind == CombinedCoScheduled

	analysisInSitu := ph.fof + ph.centerSmallMax
	l2Write, l2Read := ph.l2Write, ph.l2Read
	postQueueWait := s.PostQueueWait
	switch kind {
	case CombinedSimple:
		r.IOLevel, r.RedistLevel, r.Queueing = "Level 2", "Level 2", "partial"
	case CombinedCoScheduled:
		r.IOLevel, r.RedistLevel, r.Queueing = "Level 2", "Level 2", "partial simult"
	case CombinedInTransit:
		r.IOLevel, r.RedistLevel, r.Queueing = "none", "Level 2", "partial simult"
		l2Write, l2Read = 0, 0 // staged through shared memory
		postQueueWait = 0      // analysis partition held alongside the run
	}
	perStepPost := l2Read + ph.l2Redist + ph.postCenter + ph.l3Write

	var sim des.Sim
	inj := s.injector()
	storage := fs.New(&sim, "lustre")
	if !inTransit {
		// In-transit Level 2 never touches the file system, so storage
		// faults only apply to the disk-staged variants.
		storage.SetFaults(inj)
	}
	cluster, err := sched.NewCluster(&sim, s.Machine)
	if err != nil {
		return nil, err
	}
	faultCluster(cluster, inj, s.retry())
	// The post jobs run on the post machine's cluster (same machine in the
	// Table 4 set-up, Moonlight for Q Continuum).
	postCluster, err := sched.NewCluster(&sim, s.PostMachine)
	if err != nil {
		return nil, err
	}
	faultCluster(postCluster, inj, s.retry())
	postCluster.ExtraQueueWait = func(*sched.Job) float64 { return postQueueWait }

	// Gray-failure supervision: one supervisor watches both clusters so
	// the decision log is a single ordered record of the whole run.
	deg := s.degradePolicy()
	sup := s.supervision(&sim)
	cluster.Supervise = sup
	postCluster.Supervise = sup
	pl := newStepPlanner(s, ph, inj, deg, l2Write, perStepPost)

	newPostJob := func(step int) *sched.Job {
		j := &sched.Job{Name: fmt.Sprintf("post-%03d", step), Nodes: s.PostNodes, Duration: perStepPost}
		j.OnStart = func(j *sched.Job) { r.AnalysisJobStarts = append(r.AnalysisJobStarts, j.StartTime) }
		if deg.RescueLost {
			rescueOnLoss(postCluster, j, &r.Resilience, sup)
		}
		return j
	}

	var listener *sched.Listener
	if coSched {
		jobSeq := 0
		listener = &sched.Listener{
			Sim: &sim, FS: storage, Cluster: postCluster,
			Prefix:       "l2/step",
			PollInterval: s.ListenerPoll,
			Faults:       inj,
			MakeJob: func(path string, f *fs.File) *sched.Job {
				jobSeq++
				j := newPostJob(jobSeq)
				// Size the job for the step the file belongs to: a degraded
				// step's job carries the spilled center work.
				step := jobSeq
				fmt.Sscanf(path, "l2/step%d.gio", &step)
				j.Duration = pl.postDur(step)
				return j
			},
		}
		if sup != nil {
			listener.Breaker = supervise.NewBreaker(sim.Now)
		}
		if err := listener.Start(); err != nil {
			return nil, err
		}
	}

	// Per-step durations under gray slowdowns and the degrade policy; the
	// fault-free plan collapses to Timesteps * nominal stepDur exactly.
	offsets, simDur := pl.planEmissions(1, s.Timesteps, &r.Resilience, sup)
	wrapUp := func() {
		if listener != nil {
			// "an additional instance of the listener would run after
			// the job completes to catch the last output data" (§3.2):
			// sweep one tick later so the final step's Level 2 file —
			// whose visibility event shares this timestamp — is seen.
			// Drain keeps re-sweeping while submit refusals (or a
			// cooling breaker) hold back the last analyses.
			sim.After(1, func() {
				listener.Stop()
				listener.Drain(s.ListenerPoll, drainSweeps)
			})
			return
		}
		// Simple & in-transit: one post job covering all timesteps,
		// queued after the simulation ("One 4-node job covering all
		// timesteps ... queued after sim", Table 4).
		post := newPostJob(0)
		total := 0.0
		for step := 1; step <= s.Timesteps; step++ {
			total += pl.postDur(step)
		}
		post.Duration = total
		_ = postCluster.Submit(post)
	}
	simJob := &sched.Job{
		Name: "sim+insitu", Nodes: s.SimNodes,
		Duration: simDur,
		OnStart: func(j *sched.Job) {
			// Emit one Level 2 file per timestep as the run progresses.
			// Writes are verified and re-driven on failure or truncation;
			// outputs of an attempt that later dies never land (the gate on
			// j.Attempt below).
			attempt := j.Attempt
			for step := 1; step <= s.Timesteps; step++ {
				at := j.StartTime + offsets[step]
				step := step
				sim.At(at, func() {
					if j.Attempt != attempt {
						return // this attempt failed before reaching the step
					}
					redriveWrite(&sim, storage, &r.Resilience,
						fmt.Sprintf("l2/step%03d.gio", step), ph.levels.Level2Bytes, writeRedriveDelay, 0, nil)
				})
			}
		},
		OnComplete: func(*sched.Job) { wrapUp() },
		// Supervision may declare the sim job lost (hedging budget
		// exhausted): wrap up anyway so the listener stops and whatever
		// landed still gets analyzed — the run degrades, it never hangs.
		OnGiveUp: func(*sched.Job) { wrapUp() },
	}
	if err := cluster.Submit(simJob); err != nil {
		return nil, err
	}
	sim.Run()
	r.Resilience.addCluster(cluster)
	r.Resilience.addCluster(postCluster)
	r.Resilience.addFS(storage)
	if listener != nil {
		r.Resilience.addListener(listener)
	}
	r.Decisions = sup.Decisions()

	steps := float64(s.Timesteps)
	r.SimSeconds = steps * s.StepInterval
	r.AnalysisSeconds = steps * analysisInSitu
	r.SimWriteSeconds = steps * (l2Write + ph.l3Write)
	r.PostQueueWait = postQueueWait
	r.ReadSeconds = steps * l2Read
	r.RedistributeSeconds = steps * ph.l2Redist
	r.PostAnalysisSeconds = steps * ph.postCenter
	r.PostWriteSeconds = steps * ph.l3Write
	r.WallClock = sim.Now()
	r.AnalysisCoreHours = s.Machine.ChargeCoreHours(s.SimNodes, r.AnalysisSeconds+r.SimWriteSeconds) +
		s.PostMachine.ChargeCoreHours(s.PostNodes, r.PostJobTotal())
	r.SimCoreHours = s.Machine.ChargeCoreHours(s.SimNodes, r.SimSeconds)
	if inTransit {
		// Table 3 marks in-transit core hours "(n/a)" — the set-up did not
		// exist on accessible systems; the charge model above still
		// reports what it would cost on equivalent hardware.
		r.Queueing = "partial simult"
	}
	emitPhaseSpans(s, r)
	return r, nil
}
