package core

import (
	"fmt"

	"repro/internal/cosmo"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/sched"
	"repro/internal/supervise"
)

// Scenario fixes everything a workflow comparison needs: the machine, the
// simulation size, the synthesized halo population, the split threshold,
// and the calibrated kernel costs.
type Scenario struct {
	// Name for reports.
	Name string
	// Machine hosting the simulation (and, unless redirected, the post-
	// processing).
	Machine platform.Machine
	// PostMachine hosts the off-line analysis of Level 2 data (equal to
	// Machine for the paper's Table 4 runs; Moonlight for Q Continuum).
	PostMachine platform.Machine
	// Costs are the calibrated kernel coefficients for this scenario.
	Costs platform.AnalysisCosts
	// SimNodes is the simulation's node count; PostNodes the off-line
	// analysis job's.
	SimNodes, PostNodes int
	// NP is particles per dimension; BoxMpch the comoving box in Mpc/h.
	NP      int
	BoxMpch float64
	// Population is the halo catalog (synthesized or measured).
	Population *HaloPopulation
	// SplitThreshold is the in-situ/off-line cut in particles (300,000 in
	// the paper); 0 disables the split.
	SplitThreshold int
	// Timesteps is how many analysis steps the workflow covers (1 for the
	// Table 4 single-step comparison; 100 for a full campaign).
	Timesteps int
	// StepInterval is the simulated wall time between analysis steps when
	// Timesteps > 1 (the simulation segments between outputs).
	StepInterval float64
	// OfflineQueueWait models the facility wait for a full-size off-line
	// allocation ("This can add days to a week of wait time", §4.2).
	OfflineQueueWait float64
	// PostQueueWait models the (much shorter) wait for the small Level 2
	// analysis job.
	PostQueueWait float64
	// ListenerPoll is the co-scheduling listener's poll interval.
	ListenerPoll float64
	// Faults optionally injects deterministic failures (job death, node
	// drains, write faults, listener outages) into the workflow run. nil —
	// or a profile that injects nothing — reproduces the paper's
	// failure-free world exactly.
	Faults *fault.Profile
	// Retry governs resubmission of failed jobs when Faults are active;
	// the zero value means sched.DefaultRetry.
	Retry sched.RetryPolicy
	// Supervise optionally overrides the gray-failure supervision policy.
	// nil enables supervise.DefaultPolicy() exactly when Faults injects
	// gray failures (slowdowns, stalls, degraded windows, submit refusals)
	// — a stalled attempt can only be recovered by supervision — and
	// leaves fail-stop-only and failure-free runs unsupervised.
	Supervise *supervise.Policy
	// Degrade optionally overrides the adaptive degradation policy. nil
	// means rescue-only degradation when gray failures are injected, and
	// no degradation otherwise.
	Degrade *DegradePolicy
	// Scrub, when set, co-schedules a background integrity scrubber with
	// the analysis jobs: small periodic jobs on the post cluster re-verify
	// committed products against the lineage ledger and repair mismatches
	// by minimal re-derivation. Only ResumableCampaign honors it (plain
	// Campaign has no persisted products to scrub). nil disables scrubbing;
	// zero fields take defaults (see ScrubPolicy).
	Scrub *ScrubPolicy
	// Obs, when set, records the run's spans (campaign → step → job) and
	// metrics against the engine's DES clock; the campaign engine injects
	// its clock via Obs.SetClock at setup. nil disables observability at
	// zero cost (see internal/obs).
	Obs *obs.Observer
}

// ScrubPolicy shapes the co-scheduled background scrubber. The zero value
// of each field takes the default noted on it.
type ScrubPolicy struct {
	// Interval is the virtual seconds between scrub jobs (default 300).
	Interval float64
	// Batch is how many products one scrub job re-verifies (default 4).
	Batch int
	// Nodes is the job's node allocation on the post cluster (default 1 —
	// the scrubber rides along without displacing analysis).
	Nodes int
	// JobSeconds is the modelled duration of one scrub job (default 5).
	JobSeconds float64
}

// withDefaults resolves zero fields to the documented defaults.
func (p ScrubPolicy) withDefaults() ScrubPolicy {
	if p.Interval == 0 {
		p.Interval = 300
	}
	if p.Batch == 0 {
		p.Batch = 4
	}
	if p.Nodes == 0 {
		p.Nodes = 1
	}
	if p.JobSeconds == 0 {
		p.JobSeconds = 5
	}
	return p
}

// Validate reports scenario construction errors.
func (s *Scenario) Validate() error {
	switch {
	case s.Population == nil:
		return fmt.Errorf("core: scenario %q has no halo population", s.Name)
	case s.SimNodes <= 0 || s.PostNodes <= 0:
		return fmt.Errorf("core: scenario %q node counts %d/%d", s.Name, s.SimNodes, s.PostNodes)
	case s.NP <= 0 || s.BoxMpch <= 0:
		return fmt.Errorf("core: scenario %q size %d/%g", s.Name, s.NP, s.BoxMpch)
	case s.Timesteps <= 0:
		return fmt.Errorf("core: scenario %q timesteps %d", s.Name, s.Timesteps)
	}
	if err := s.Machine.Validate(); err != nil {
		return err
	}
	if err := s.PostMachine.Validate(); err != nil {
		return err
	}
	if s.Faults != nil {
		if err := s.Faults.Validate(); err != nil {
			return err
		}
	}
	if s.Degrade != nil && s.Degrade.StepBudget < 0 {
		return fmt.Errorf("core: scenario %q step budget %g", s.Name, s.Degrade.StepBudget)
	}
	if s.Scrub != nil {
		if s.Scrub.Interval < 0 || s.Scrub.Batch < 0 || s.Scrub.Nodes < 0 || s.Scrub.JobSeconds < 0 {
			return fmt.Errorf("core: scenario %q scrub policy has negative fields", s.Name)
		}
	}
	return nil
}

// TotalParticles returns NP³.
func (s *Scenario) TotalParticles() float64 {
	n := float64(s.NP)
	return n * n * n
}

// Levels computes the data hierarchy for the scenario's split threshold.
func (s *Scenario) Levels() (DataLevels, error) {
	return ComputeDataLevels(s.TotalParticles(), s.Population, s.SplitThreshold)
}

// DownscaledScenario builds the paper's §4.2 test problem: 1024³ particles
// in a (162.5 Mpc)³ box — 512x smaller than Q Continuum at the same mass
// resolution — on 32 Titan nodes, post-processing Level 2 on a 4-node job.
// The kernel coefficients are recalibrated to the Table 4 anchors: the
// combined in-situ phase (halo finding + centers ≤ 300k) measured 361 s,
// of which FOF is ~300 s; MaxSize caps the sampled population at the
// paper's reported largest halo (2,548,321 particles).
func DownscaledScenario(seed int64) (*Scenario, error) {
	p := cosmo.Default()
	const boxMpch = 115.4 // 162.5 Mpc at h = 0.71
	pop, err := SynthesizePopulation(p, SynthesisOptions{
		BoxMpch:     boxMpch,
		NP:          1024,
		Z:           0,
		MinSize:     40,
		SampleAbove: 300000,
		MaxSize:     2_600_000,
		Seed:        seed,
	})
	if err != nil {
		return nil, err
	}
	costs := platform.DefaultCosts()
	// Table 4 calibration: ~300 s of FOF per node for 1024³/32 nodes.
	costs.FOFParticleSeconds = 300.0 / (1024.0 * 1024 * 1024 / 32)
	return &Scenario{
		Name:             "downscaled-1024",
		Machine:          platform.Titan(),
		PostMachine:      platform.Titan(),
		Costs:            costs,
		SimNodes:         32,
		PostNodes:        4,
		NP:               1024,
		BoxMpch:          boxMpch,
		Population:       pop,
		SplitThreshold:   300000,
		Timesteps:        1,
		StepInterval:     775,
		OfflineQueueWait: 3 * 86400, // "days to a week"
		PostQueueWait:    1800,
		ListenerPoll:     30,
	}, nil
}

// QContinuumScenario builds the §4.1 study: 8192³ particles in a
// (1300 Mpc)³ box on 16,384 Titan nodes, Level 2 analysis off-loaded to
// Moonlight.
func QContinuumScenario(seed int64) (*Scenario, error) {
	p := cosmo.Default()
	const boxMpch = 923.0 // 1300 Mpc at h = 0.71
	pop, err := SynthesizePopulation(p, SynthesisOptions{
		BoxMpch:     boxMpch,
		NP:          8192,
		Z:           0,
		MinSize:     40,
		SampleAbove: 300000,
		Seed:        seed,
	})
	if err != nil {
		return nil, err
	}
	return &Scenario{
		Name:             "q-continuum-8192",
		Machine:          platform.Titan(),
		PostMachine:      platform.Moonlight(),
		Costs:            platform.DefaultCosts(),
		SimNodes:         16384,
		PostNodes:        128, // 128 single-node jobs' worth of Moonlight
		NP:               8192,
		BoxMpch:          boxMpch,
		Population:       pop,
		SplitThreshold:   300000,
		Timesteps:        1,
		StepInterval:     3600,
		OfflineQueueWait: 5 * 86400,
		PostQueueWait:    1800,
		ListenerPoll:     60,
	}, nil
}
