package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/fault"
	"repro/internal/sched"
	"repro/internal/supervise"
)

// DegradePolicy is the paper's escape hatch made adaptive: "If it turns
// out that the analysis tasks are too compute-intensive ... the data would
// be moved off to the analysis cluster" (§4.2). When a step's (slowed)
// in-situ analysis blows StepBudget, the step keeps only halo finding
// in-situ and spills the small-halo center work to the Level-2 off-line
// path — the campaign degrades instead of failing.
type DegradePolicy struct {
	// StepBudget is the in-situ analysis time budget per step in seconds;
	// 0 disables budget-based degradation.
	StepBudget float64
	// RescueLost resubmits one replacement analysis job when a supervised
	// post job is declared lost (one rescue deep — the rescue itself is
	// not rescued).
	RescueLost bool
}

// supervision builds the run's supervisor: the explicit policy when set,
// the default policy when the fault profile injects gray failures (a
// stalled job would otherwise hang the campaign forever), nil otherwise —
// keeping failure-free and fail-stop-only runs on their exact original
// event sequences.
func (s *Scenario) supervision(sim *des.Sim) *supervise.Supervisor {
	if s.Supervise != nil {
		return supervise.New(sim, *s.Supervise)
	}
	if s.Faults != nil && s.Faults.GrayEnabled() {
		return supervise.New(sim, supervise.DefaultPolicy())
	}
	return nil
}

// degradePolicy resolves the scenario's degradation behaviour: the
// explicit policy when set, rescue-only when gray failures are injected
// (so a lost analysis job degrades to a resubmission instead of a missing
// product), zero otherwise.
func (s *Scenario) degradePolicy() DegradePolicy {
	if s.Degrade != nil {
		return *s.Degrade
	}
	if s.Faults != nil && s.Faults.GrayEnabled() {
		return DegradePolicy{RescueLost: true}
	}
	return DegradePolicy{}
}

// stepPlanner derives each timestep's in-situ and post-job durations under
// gray in-situ slowdowns and the degrade policy. All decisions are pure
// functions of (profile seed, step), so two runs plan identically and a
// resumed campaign re-plans exactly what the crashed one planned.
type stepPlanner struct {
	interval  float64 // simulation segment between outputs
	insituNom float64 // nominal in-situ analysis (fof + small-halo centers)
	fof       float64 // irreducible in-situ part (halo finding feeds the split)
	writes    float64 // per-step writes inside the sim job (l2 + l3)
	postNom   float64 // nominal post-job duration
	spill     float64 // post-side cost of spilled small-halo centers
	budget    float64 // in-situ budget; 0 = never degrade
	inj       *fault.Injector
}

func newStepPlanner(s *Scenario, ph *phases, inj *fault.Injector, deg DegradePolicy, l2Write, perStepPost float64) *stepPlanner {
	return &stepPlanner{
		interval:  s.StepInterval,
		insituNom: ph.fof + ph.centerSmallMax,
		fof:       ph.fof,
		writes:    l2Write + ph.l3Write,
		postNom:   perStepPost,
		spill:     ph.postSpillCenter,
		budget:    deg.StepBudget,
		inj:       inj,
	}
}

// stepDur returns the step's full duration inside the simulation job and
// whether the step degraded (spilled its center work off-line).
func (pl *stepPlanner) stepDur(step int) (float64, bool) {
	f := pl.inj.StepSlowdown(step)
	insitu := pl.insituNom * f
	if pl.budget > 0 && insitu > pl.budget {
		return pl.interval + pl.fof*f + pl.writes, true
	}
	return pl.interval + insitu + pl.writes, false
}

// postDur returns the step's post-job duration (spill included when the
// step degraded).
func (pl *stepPlanner) postDur(step int) float64 {
	if _, degraded := pl.stepDur(step); degraded {
		return pl.postNom + pl.spill
	}
	return pl.postNom
}

// planEmissions walks steps first..last, accounting degraded steps into
// res and the supervisor log, and returns each step's cumulative
// end-offset within the simulation job plus the job's total duration.
func (pl *stepPlanner) planEmissions(first, last int, res *Resilience, sup *supervise.Supervisor) (map[int]float64, float64) {
	offsets := make(map[int]float64, last-first+1)
	cum := 0.0
	for step := first; step <= last; step++ {
		dur, degraded := pl.stepDur(step)
		cum += dur
		offsets[step] = cum
		if degraded {
			res.DegradedSteps++
			sup.Note(fmt.Sprintf("step%03d", step), "degrade",
				fmt.Sprintf("in-situ %.0fs over %.0fs budget; centers spill off-line", pl.insituNom*pl.inj.StepSlowdown(step), pl.budget))
		}
	}
	return offsets, cum
}

// rescueOnLoss arms a post job with a one-deep rescue: if supervision
// declares it lost, a replacement carrying the same callbacks is submitted
// (the replacement itself has no rescue).
func rescueOnLoss(cluster *sched.Cluster, j *sched.Job, res *Resilience, sup *supervise.Supervisor) {
	j.OnGiveUp = func(*sched.Job) {
		res.RescuedSteps++
		sup.Note(j.Name, "rescue", "lost analysis job resubmitted")
		rescue := &sched.Job{Name: j.Name + "~r", Nodes: j.Nodes, Duration: j.Duration,
			OnStart: j.OnStart, OnComplete: j.OnComplete}
		_ = cluster.Submit(rescue)
	}
}
