package core

import (
	"fmt"

	"repro/internal/gio"
)

// DataLevels models the paper's three-level data hierarchy (§3, Table 1):
// Level 1 is the raw particle output, Level 2 the reduced products still
// needing compute-intensive analysis (halo particles above the split
// threshold), Level 3 the final catalogs (halo centers and properties).
type DataLevels struct {
	// Level1Bytes: all particles at 36 bytes each.
	Level1Bytes float64
	// Level2Bytes: particles in halos above the split threshold.
	Level2Bytes float64
	// Level3Bytes: per-halo center records.
	Level3Bytes float64
	// Level2Fraction = Level2 / Level1.
	Level2Fraction float64
}

// Level3BytesPerHalo sizes one halo-center record: halo tag, MBP tag,
// three float64 coordinates, potential, count — 8·2 + 8·3 + 8 + 8 = 56,
// rounded up to 64 with catalog framing.
const Level3BytesPerHalo = 64

// ComputeDataLevels derives the hierarchy's sizes from a particle count
// and a halo population with the given split threshold.
func ComputeDataLevels(totalParticles float64, pop *HaloPopulation, splitThreshold int) (DataLevels, error) {
	if totalParticles <= 0 {
		return DataLevels{}, fmt.Errorf("core: total particles %g must be positive", totalParticles)
	}
	l1 := totalParticles * float64(gio.RecordSize)
	l2 := pop.ParticlesAbove(splitThreshold) * float64(gio.RecordSize)
	l3 := pop.TotalHalos() * Level3BytesPerHalo
	return DataLevels{
		Level1Bytes:    l1,
		Level2Bytes:    l2,
		Level3Bytes:    l3,
		Level2Fraction: l2 / l1,
	}, nil
}
