package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/fs"
	"repro/internal/integrity"
	"repro/internal/sched"
	"repro/internal/supervise"
)

// CampaignReport summarizes a full multi-snapshot analysis campaign under
// the co-scheduled combined workflow — the situation Table 4's caption
// gestures at ("the reader should keep in mind though that running the
// full analysis would involve 100 snapshots", §4.2) and the paper's
// pile-up discussion (§3.2).
type CampaignReport struct {
	// Timesteps analyzed.
	Timesteps int
	// SimWallClock is when the simulation job finishes; TotalWallClock
	// when the last analysis product lands.
	SimWallClock, TotalWallClock float64
	// SimpleWallClock is the equivalent simple (post-job-after-sim)
	// workflow's completion time for comparison.
	SimpleWallClock float64
	// OverlapFraction is the share of analysis jobs that started before
	// the simulation ended.
	OverlapFraction float64
	// MaxPileUp is the deepest analysis queue seen ("some level of
	// 'pile-up' in the analysis stack").
	MaxPileUp int
	// AnalysisJobs submitted and completed.
	AnalysisJobs int
	// TrailingSeconds is analysis work remaining after the simulation
	// finished.
	TrailingSeconds float64
	// Resilience accounts failures and recoveries when the scenario has a
	// fault profile (all zero otherwise).
	Resilience Resilience
	// Resume accounts checkpoint/restart activity when the campaign ran
	// through ResumableCampaign (all zero on a fresh, uncrashed run, so a
	// persisted campaign's report stays comparable to Campaign's).
	Resume ResumeStats
	// Decisions is the supervision decision log when the campaign was
	// supervised (nil otherwise).
	Decisions []supervise.Decision
	// Integrity accounts corruption detection and repair when the campaign
	// ran with bit-rot injection or scrubbing (all zero otherwise, so
	// reports stay comparable to integrity-free runs).
	Integrity integrity.Stats
	// ScrubDecisions is the scrub/repair decision log (nil when no
	// integrity machinery ran). Deterministic for a fixed seed.
	ScrubDecisions []integrity.Decision
}

// l2Path is the modelled storage path of one step's Level 2 file (also the
// relative on-disk product path under a persisted campaign's directory).
func l2Path(step int) string { return fmt.Sprintf("l2/step%03d.gio", step) }

// campaignHooks threads checkpoint/restart behaviour through the campaign
// engine without disturbing its event sequence: every hook fires
// synchronously inside an existing callback and schedules no virtual-time
// events, so a hooked run is event-for-event identical to a bare Campaign.
type campaignHooks struct {
	// startStep is the first step the simulation emits (resume skips the
	// journaled prefix); 0 or 1 means a full run.
	startStep int
	// preloadSteps lists steps whose Level 2 files survived a previous
	// incarnation and are restored into the modelled storage at t=0.
	preloadSteps []int
	// preSeenSteps lists steps whose analysis already completed; the
	// listener skips them. Preloaded steps *not* listed here are requeued.
	preSeenSteps []int
	// onStepLanded fires when a step's Level 2 write verifies intact;
	// onPostDone when a step's analysis job completes.
	onStepLanded func(step int)
	onPostDone   func(step int)
	// runUntil, when positive, stops the virtual clock at that time — the
	// injected process-crash point. runCampaign reports crashed=true if
	// events were still pending.
	runUntil float64
	// onSetup hands ResumableCampaign the engine's clock and modelled
	// storage before any event runs — the integrity layer schedules bit-rot
	// events and timestamps scrub decisions through them.
	onSetup func(sim *des.Sim, storage *fs.System)
	// scrub, when non-nil, co-schedules periodic scrubber jobs on the
	// analysis cluster (the paper's co-scheduling slot reused for
	// background verification).
	scrub *scrubDriver
}

// scrubDriver runs a Scrubber as co-scheduled jobs inside the campaign
// engine: every Interval a small job lands on the post cluster and, on
// completion, re-verifies the next Batch ledger products.
type scrubDriver struct {
	scr *integrity.Scrubber
	pol ScrubPolicy
	// jobs counts submissions, done completions (done is subtracted from
	// the report's AnalysisJobs — scrub jobs are not analysis).
	jobs, done int
	// stopped halts the ticker when the simulation job ends; products
	// landing after that are covered by the final sweep.
	stopped bool
}

// Campaign runs a co-scheduled combined-workflow campaign over the given
// number of timesteps on the discrete-event clock, with analysis jobs
// auto-submitted by the listener as each step's Level 2 file lands.
func Campaign(s *Scenario, timesteps int) (*CampaignReport, error) {
	rep, _, err := runCampaign(s, timesteps, campaignHooks{})
	return rep, err
}

// runCampaign is the campaign engine shared by Campaign (no hooks) and
// ResumableCampaign (persistence and crash injection via hooks).
func runCampaign(s *Scenario, timesteps int, h campaignHooks) (*CampaignReport, bool, error) {
	if timesteps <= 0 {
		return nil, false, fmt.Errorf("core: campaign needs timesteps > 0")
	}
	start := h.startStep
	if start < 1 {
		start = 1
	}
	ph, err := computePhases(s)
	if err != nil {
		return nil, false, err
	}
	perStepPost := ph.l2Read + ph.l2Redist + ph.postCenter + ph.l3Write

	var sim des.Sim
	inj := s.injector()
	// The observer's clock is the engine's clock: spans and metrics are
	// stamped with virtual time, so trace output for a fixed seed is
	// byte-identical across runs (the determinism contract in obs).
	s.Obs.SetClock(sim.Now)
	camp := s.Obs.Begin("campaign", s.Name)
	storage := fs.New(&sim, "lustre")
	storage.SetFaults(inj)
	if h.onSetup != nil {
		h.onSetup(&sim, storage)
	}
	for _, step := range h.preloadSteps {
		storage.Restore(l2Path(step), ph.levels.Level2Bytes)
	}
	simCluster, err := sched.NewCluster(&sim, s.Machine)
	if err != nil {
		return nil, false, err
	}
	faultCluster(simCluster, inj, s.retry())
	postCluster, err := sched.NewCluster(&sim, s.PostMachine)
	if err != nil {
		return nil, false, err
	}
	faultCluster(postCluster, inj, s.retry())
	// One supervisor watches both clusters: hedged re-execution and loss
	// declarations land in a single ordered decision log.
	deg := s.degradePolicy()
	sup := s.supervision(&sim)
	simCluster.Supervise = sup
	postCluster.Supervise = sup
	simCluster.Obs = s.Obs
	postCluster.Obs = s.Obs
	if sup != nil {
		sup.Obs = s.Obs
	}
	pl := newStepPlanner(s, ph, inj, deg, ph.l2Write, perStepPost)
	rep := &CampaignReport{Timesteps: timesteps}
	// Hedged backups re-run the primary's OnStart and rescued analysis
	// jobs re-fire completions, so the persistence hooks are deduplicated
	// per step — a product can land (and be journaled) at most once.
	landedOnce := map[int]bool{}
	postOnce := map[int]bool{}
	stepLanded := func(step int) {
		if landedOnce[step] {
			return
		}
		landedOnce[step] = true
		if s.Obs != nil {
			m := s.Obs.Metrics()
			m.Counter("core.l2_files_landed").Inc()
			m.Counter("core.l2_bytes_landed").Add(ph.levels.Level2Bytes)
		}
		if h.onStepLanded != nil {
			h.onStepLanded(step)
		}
	}
	postDone := func(step int) {
		if h.onPostDone == nil || postOnce[step] {
			return
		}
		postOnce[step] = true
		h.onPostDone(step)
	}
	var jobStarts []float64
	seq := 0
	listener := &sched.Listener{
		Sim: &sim, FS: storage, Cluster: postCluster,
		Prefix:       "l2/",
		PollInterval: s.ListenerPoll,
		Faults:       inj,
		Obs:          s.Obs,
		MakeJob: func(path string, f *fs.File) *sched.Job {
			seq++
			step := seq
			stepKnown := false
			if _, err := fmt.Sscanf(path, "l2/step%d.gio", &step); err == nil {
				stepKnown = true
			}
			j := &sched.Job{Name: fmt.Sprintf("post-%03d", seq), Nodes: s.PostNodes, Duration: pl.postDur(step)}
			j.OnStart = func(j *sched.Job) { jobStarts = append(jobStarts, j.StartTime) }
			if h.onPostDone != nil && stepKnown {
				j.OnComplete = func(*sched.Job) { postDone(step) }
			}
			if deg.RescueLost {
				rescueOnLoss(postCluster, j, &rep.Resilience, sup)
			}
			return j
		},
	}
	if sup != nil {
		listener.Breaker = supervise.NewBreaker(sim.Now)
	}
	if err := listener.Start(); err != nil {
		return nil, false, err
	}
	for _, step := range h.preSeenSteps {
		listener.MarkSeen(l2Path(step))
	}
	// Per-step durations under gray in-situ slowdowns and the degrade
	// policy; fault-free this is exactly remaining * nominal stepDur.
	offsets, simDur := pl.planEmissions(start, timesteps, &rep.Resilience, sup)
	simJob := &sched.Job{
		Name: "sim", Nodes: s.SimNodes,
		Duration: simDur,
		OnStart: func(j *sched.Job) {
			attempt := j.Attempt
			for step := start; step <= timesteps; step++ {
				at := j.StartTime + offsets[step]
				step := step
				sim.At(at, func() {
					if j.Attempt != attempt {
						return // this attempt failed before reaching the step
					}
					if s.Obs != nil {
						// The step's segment ends here; lay its span down
						// retroactively under the campaign root. Uncharged:
						// the sim job's span already carries these nodes.
						dur, degraded := pl.stepDur(step)
						sp := s.Obs.SpanAt(camp, "step", fmt.Sprintf("step-%03d", step), at-dur, at)
						if degraded {
							sp.Arg("degraded", "spilled centers off-line")
						}
					}
					redriveWrite(&sim, storage, &rep.Resilience,
						l2Path(step), ph.levels.Level2Bytes, writeRedriveDelay, 0, func() {
							stepLanded(step)
						})
				})
			}
		},
		OnComplete: func(j *sched.Job) {
			rep.SimWallClock = j.EndTime
			if h.scrub != nil {
				h.scrub.stopped = true
			}
			sim.After(1, func() {
				listener.Stop()
				listener.Drain(s.ListenerPoll, drainSweeps)
			})
		},
		// Supervision may declare the sim job lost: stop the listener and
		// sweep whatever landed so the campaign degrades instead of
		// spinning the poll loop forever.
		OnGiveUp: func(*sched.Job) {
			rep.SimWallClock = sim.Now()
			if h.scrub != nil {
				h.scrub.stopped = true
			}
			sim.After(1, func() {
				listener.Stop()
				listener.Drain(s.ListenerPoll, drainSweeps)
			})
		},
	}
	if err := simCluster.Submit(simJob); err != nil {
		return nil, false, err
	}
	// The background scrubber rides the co-scheduling allocation: small
	// periodic jobs on the analysis cluster re-verify committed products.
	// The ticker stops with the simulation job; products committed after
	// that are covered by the final full sweep.
	if h.scrub != nil {
		d := h.scrub
		d.scr.OnGiveUp = func(p integrity.Product) {
			sup.Note(p.Path, "integrity-give-up", "corrupt product could not be re-derived; escalating")
		}
		var tick func()
		tick = func() {
			if d.stopped {
				return
			}
			d.jobs++
			job := &sched.Job{Name: fmt.Sprintf("scrub-%03d", d.jobs), Nodes: d.pol.Nodes, Duration: d.pol.JobSeconds}
			job.OnComplete = func(*sched.Job) {
				d.done++
				d.scr.Stats.ScrubJobs++
				d.scr.SweepNext(d.pol.Batch)
			}
			if err := postCluster.Submit(job); err != nil {
				d.stopped = true
				return
			}
			sim.After(d.pol.Interval, tick)
		}
		sim.After(d.pol.Interval, tick)
	}
	if h.runUntil > 0 {
		sim.RunUntil(h.runUntil)
		if sim.Pending() > 0 {
			camp.Arg("crashed", "injected process crash").Done()
			return rep, true, nil // the injected crash struck mid-campaign
		}
	} else {
		sim.Run()
	}
	camp.Done()
	rep.Resilience.addCluster(simCluster)
	rep.Resilience.addCluster(postCluster)
	rep.Resilience.addFS(storage)
	rep.Resilience.addListener(listener)
	rep.Decisions = sup.Decisions()
	rep.TotalWallClock = sim.Now()
	rep.AnalysisJobs = len(postCluster.Finished())
	if h.scrub != nil {
		// Scrub jobs share the cluster but are not analysis.
		rep.AnalysisJobs -= h.scrub.done
	}
	rep.MaxPileUp = postCluster.MaxPendingSeen
	overlapped := 0
	for _, start := range jobStarts {
		if start < rep.SimWallClock {
			overlapped++
		}
	}
	if len(jobStarts) > 0 {
		rep.OverlapFraction = float64(overlapped) / float64(len(jobStarts))
	}
	rep.TrailingSeconds = rep.TotalWallClock - rep.SimWallClock
	rep.SimpleWallClock = rep.SimWallClock + float64(timesteps)*perStepPost
	return rep, false, nil
}
