package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/fs"
	"repro/internal/sched"
)

// CampaignReport summarizes a full multi-snapshot analysis campaign under
// the co-scheduled combined workflow — the situation Table 4's caption
// gestures at ("the reader should keep in mind though that running the
// full analysis would involve 100 snapshots", §4.2) and the paper's
// pile-up discussion (§3.2).
type CampaignReport struct {
	// Timesteps analyzed.
	Timesteps int
	// SimWallClock is when the simulation job finishes; TotalWallClock
	// when the last analysis product lands.
	SimWallClock, TotalWallClock float64
	// SimpleWallClock is the equivalent simple (post-job-after-sim)
	// workflow's completion time for comparison.
	SimpleWallClock float64
	// OverlapFraction is the share of analysis jobs that started before
	// the simulation ended.
	OverlapFraction float64
	// MaxPileUp is the deepest analysis queue seen ("some level of
	// 'pile-up' in the analysis stack").
	MaxPileUp int
	// AnalysisJobs submitted and completed.
	AnalysisJobs int
	// TrailingSeconds is analysis work remaining after the simulation
	// finished.
	TrailingSeconds float64
	// Resilience accounts failures and recoveries when the scenario has a
	// fault profile (all zero otherwise).
	Resilience Resilience
}

// Campaign runs a co-scheduled combined-workflow campaign over the given
// number of timesteps on the discrete-event clock, with analysis jobs
// auto-submitted by the listener as each step's Level 2 file lands.
func Campaign(s *Scenario, timesteps int) (*CampaignReport, error) {
	if timesteps <= 0 {
		return nil, fmt.Errorf("core: campaign needs timesteps > 0")
	}
	ph, err := computePhases(s)
	if err != nil {
		return nil, err
	}
	perStepPost := ph.l2Read + ph.l2Redist + ph.postCenter + ph.l3Write
	stepDur := s.StepInterval + ph.fof + ph.centerSmallMax + ph.l2Write + ph.l3Write

	var sim des.Sim
	inj := s.injector()
	storage := fs.New(&sim, "lustre")
	storage.SetFaults(inj)
	simCluster, err := sched.NewCluster(&sim, s.Machine)
	if err != nil {
		return nil, err
	}
	faultCluster(simCluster, inj, s.retry())
	postCluster, err := sched.NewCluster(&sim, s.PostMachine)
	if err != nil {
		return nil, err
	}
	faultCluster(postCluster, inj, s.retry())
	rep := &CampaignReport{Timesteps: timesteps}
	var jobStarts []float64
	seq := 0
	listener := &sched.Listener{
		Sim: &sim, FS: storage, Cluster: postCluster,
		Prefix:       "l2/",
		PollInterval: s.ListenerPoll,
		Faults:       inj,
		MakeJob: func(path string, f *fs.File) *sched.Job {
			seq++
			j := &sched.Job{Name: fmt.Sprintf("post-%03d", seq), Nodes: s.PostNodes, Duration: perStepPost}
			j.OnStart = func(j *sched.Job) { jobStarts = append(jobStarts, j.StartTime) }
			return j
		},
	}
	if err := listener.Start(); err != nil {
		return nil, err
	}
	simJob := &sched.Job{
		Name: "sim", Nodes: s.SimNodes,
		Duration: float64(timesteps) * stepDur,
		OnStart: func(j *sched.Job) {
			attempt := j.Attempt
			for step := 1; step <= timesteps; step++ {
				at := j.StartTime + float64(step)*stepDur
				step := step
				sim.At(at, func() {
					if j.Attempt != attempt {
						return // this attempt failed before reaching the step
					}
					redriveWrite(&sim, storage, &rep.Resilience,
						fmt.Sprintf("l2/step%03d.gio", step), ph.levels.Level2Bytes, writeRedriveDelay, 0)
				})
			}
		},
		OnComplete: func(j *sched.Job) {
			rep.SimWallClock = j.EndTime
			sim.After(1, func() {
				listener.Stop()
				listener.FinalSweep()
			})
		},
	}
	if err := simCluster.Submit(simJob); err != nil {
		return nil, err
	}
	sim.Run()
	rep.Resilience.addCluster(simCluster)
	rep.Resilience.addCluster(postCluster)
	rep.Resilience.addFS(storage)
	rep.Resilience.addListener(listener)
	rep.TotalWallClock = sim.Now()
	rep.AnalysisJobs = len(postCluster.Finished())
	rep.MaxPileUp = postCluster.MaxPendingSeen
	overlapped := 0
	for _, start := range jobStarts {
		if start < rep.SimWallClock {
			overlapped++
		}
	}
	if len(jobStarts) > 0 {
		rep.OverlapFraction = float64(overlapped) / float64(len(jobStarts))
	}
	rep.TrailingSeconds = rep.TotalWallClock - rep.SimWallClock
	rep.SimpleWallClock = rep.SimWallClock + float64(timesteps)*perStepPost
	return rep, nil
}
