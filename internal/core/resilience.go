package core

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/fs"
	"repro/internal/sched"
	"repro/internal/supervise"
)

// Resilience aggregates the failure/recovery accounting of one workflow
// run. All fields are zero when the scenario has no fault profile, so the
// failure path is strictly additive to the paper's ideal-world reports.
type Resilience struct {
	// JobAttempts counts every job attempt started (retries included);
	// JobFailures those that died mid-run; Resubmits the failed attempts
	// resubmitted under the retry policy; JobsLost the jobs whose retries
	// were exhausted.
	JobAttempts, JobFailures, Resubmits, JobsLost int
	// WriteFailures and TruncatedWrites count storage faults;
	// WritesRedriven counts lost or truncated files recovered by
	// re-driving the write.
	WriteFailures, TruncatedWrites, WritesRedriven int
	// MissedPolls counts listener polls lost to outage windows.
	MissedPolls int
	// TimeLostSeconds is execution time discarded by failed attempts;
	// LostCoreHours is the facility charge for that discarded time.
	TimeLostSeconds float64
	LostCoreHours   float64

	// Gray-failure supervision accounting (all zero when no gray faults
	// are injected and no supervisor is attached).
	//
	// Stalls counts attempts that hung mid-run without dying;
	// HedgesLaunched the backup attempts raced against suspects; HedgeWins
	// the races the backup won; DegradedSteps the timesteps whose center
	// work spilled to the off-line path under the step budget;
	// RescuedSteps the lost analysis jobs resubmitted by the degrade
	// policy.
	Stalls, HedgesLaunched, HedgeWins int
	DegradedSteps, RescuedSteps       int
	// StragglerNodeHours is node time reclaimed from cancelled straggler
	// attempts (the cost of running primaries and backups side by side).
	StragglerNodeHours float64
	// SubmitFaults counts listener job submissions refused by the gray
	// scheduler; BreakerOpens the listener circuit-breaker trips that
	// followed; BreakerSkips the polls skipped while the breaker was open.
	SubmitFaults, BreakerOpens, BreakerSkips int
}

// addCluster folds one cluster's failure counters into the summary.
func (res *Resilience) addCluster(c *sched.Cluster) {
	res.JobAttempts += c.Attempts
	res.JobFailures += c.FailedAttempts
	res.Resubmits += c.Resubmits
	res.JobsLost += c.LostJobs
	res.TimeLostSeconds += c.TimeLost
	res.LostCoreHours += c.LostNodeSeconds / 3600 * c.Machine.ChargeFactor
	res.Stalls += c.StalledAttempts
	res.HedgesLaunched += c.HedgesLaunched
	res.HedgeWins += c.HedgeWins
	res.StragglerNodeHours += c.StragglerNodeSeconds / 3600
}

// addFS folds one storage tier's fault counters into the summary.
func (res *Resilience) addFS(s *fs.System) {
	res.WriteFailures += s.WriteFailures
	res.TruncatedWrites += s.TruncatedWrites
}

// addListener folds the listener's outage and breaker counters into the
// summary.
func (res *Resilience) addListener(l *sched.Listener) {
	res.MissedPolls += l.MissedPolls
	res.SubmitFaults += l.SubmitFaults
	res.BreakerSkips += l.BreakerSkips
	if l.Breaker != nil {
		res.BreakerOpens += l.Breaker.Opens
	}
}

// injector builds the scenario's fault injector — nil when no profile is
// set or the profile injects nothing, which keeps the failure-free runs on
// the exact event sequence of the original model.
func (s *Scenario) injector() *fault.Injector {
	if s.Faults == nil || !s.Faults.Enabled() {
		return nil
	}
	in, err := fault.New(*s.Faults)
	if err != nil {
		// Scenario.Validate rejects malformed profiles before any run
		// reaches this point; treat the impossible case as "no faults".
		return nil
	}
	return in
}

// retry returns the scenario's retry policy, defaulting to
// sched.DefaultRetry when unset.
func (s *Scenario) retry() sched.RetryPolicy {
	if s.Retry.MaxAttempts > 0 {
		return s.Retry
	}
	return sched.DefaultRetry()
}

// ResilienceRow compares one workflow kind with and without faults.
type ResilienceRow struct {
	Workflow Kind
	// Baseline ran the zero-fault scenario; Faulted ran it under the
	// profile.
	Baseline, Faulted *Report
}

// WallInflation is the faulted wall clock relative to the baseline (1.0 =
// no degradation).
func (r *ResilienceRow) WallInflation() float64 {
	if r.Baseline.WallClock == 0 {
		return 1
	}
	return r.Faulted.WallClock / r.Baseline.WallClock
}

// CoreHourInflation is the faulted analysis charge (including the charge
// for discarded attempts) relative to the baseline.
func (r *ResilienceRow) CoreHourInflation() float64 {
	base := r.Baseline.AnalysisCoreHours
	if base == 0 {
		return 1
	}
	return (r.Faulted.AnalysisCoreHours + r.Faulted.Resilience.LostCoreHours) / base
}

// ResilienceStudy runs every workflow kind twice — once failure-free, once
// under the fault profile — and reports how gracefully each variant
// degrades: the "which workflow survives real facility conditions" question
// the paper's idealized Tables 3/4 cannot answer.
func ResilienceStudy(s *Scenario, p fault.Profile) ([]ResilienceRow, error) {
	var rows []ResilienceRow
	for _, k := range Kinds() {
		base := *s
		base.Faults = nil
		br, err := Run(&base, k)
		if err != nil {
			return nil, err
		}
		faulted := *s
		faulted.Faults = &p
		fr, err := Run(&faulted, k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ResilienceRow{Workflow: k, Baseline: br, Faulted: fr})
	}
	return rows, nil
}

// FormatResilience renders the study as the side-by-side degradation table
// printed by workflow-sim -resilience. The output is deterministic for a
// fixed scenario seed and fault profile.
func FormatResilience(rows []ResilienceRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-30s %9s %9s %8s | %8s %7s %5s %6s %7s %7s | %5s %5s %4s %4s %7s %8s | %9s %8s\n",
		"workflow", "wall[s]", "+faults", "inflate",
		"attempts", "jobfail", "lost", "wrfail", "wrtrunc", "redrive",
		"stall", "hedge", "wins", "degr", "rescue", "strag-nh",
		"t-lost[s]", "+corehrs")
	for _, row := range rows {
		res := row.Faulted.Resilience
		fmt.Fprintf(&b, "  %-30s %9.0f %9.0f %7.2fx | %8d %7d %5d %6d %7d %7d | %5d %5d %4d %4d %7d %8.2f | %9.0f %8.1f\n",
			row.Workflow, row.Baseline.WallClock, row.Faulted.WallClock, row.WallInflation(),
			res.JobAttempts, res.JobFailures, res.JobsLost,
			res.WriteFailures, res.TruncatedWrites, res.WritesRedriven,
			res.Stalls, res.HedgesLaunched, res.HedgeWins, res.DegradedSteps, res.RescuedSteps, res.StragglerNodeHours,
			res.TimeLostSeconds, res.LostCoreHours)
	}
	return b.String()
}

// FormatDecisions renders a supervision decision log as the per-event
// trace printed by workflow-sim -gray -decisions. The log is empty for
// unsupervised runs and identical across reruns of the same seed.
func FormatDecisions(ds []supervise.Decision) string {
	if len(ds) == 0 {
		return "  (no supervision decisions)\n"
	}
	var b strings.Builder
	for _, d := range ds {
		fmt.Fprintf(&b, "  %s\n", d.String())
	}
	return b.String()
}
