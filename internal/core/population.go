// Package core implements the paper's contribution: the combined in-situ
// and co-scheduling analysis workflow for large N-body simulations, plus
// the machinery to compare it against the purely in-situ and purely
// off-line alternatives (Figures 1, 3, 4 and Tables 1-4 of the paper).
//
// Real analysis kernels (internal/halo, internal/center, ...) run on real
// particle data from the bundled particle-mesh simulation at laptop scale;
// the paper-scale studies (8192³ particles on 16,384 Titan nodes) run on
// the calibrated platform model (internal/platform) over a halo population
// synthesized from the ΛCDM mass function, on a discrete-event clock
// (internal/des) with the batch scheduler and listener of internal/sched.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/cosmo"
	"repro/internal/platform"
)

// PopulationBin aggregates the many small halos in one logarithmic mass
// bin: their exact identities do not matter for workflow costs, only their
// count and representative size.
type PopulationBin struct {
	// Size is the representative particle count (geometric bin centre).
	Size float64
	// Count is the number of halos in the bin.
	Count float64
}

// HaloPopulation is a (possibly synthesized) halo catalog reduced to
// particle counts: aggregated bins for the abundant small halos and an
// explicit list for the rare large ones whose individual sizes drive the
// load imbalance.
type HaloPopulation struct {
	// Bins covers halos below the explicit-sampling threshold.
	Bins []PopulationBin
	// Large lists individually sampled halo sizes (particle counts),
	// descending.
	Large []int
	// MinSize is the smallest halo retained (the FOF discard floor; 40 in
	// the paper's catalogs).
	MinSize int
}

// SynthesisOptions controls population synthesis.
type SynthesisOptions struct {
	// BoxMpch is the comoving box side in Mpc/h.
	BoxMpch float64
	// NP is particles per dimension.
	NP int
	// Z is the redshift of the population.
	Z float64
	// MinSize is the smallest halo (particles) retained.
	MinSize int
	// SampleAbove: halos with more particles than this are sampled
	// individually (Poisson per bin); smaller ones stay aggregated.
	SampleAbove int
	// MaxSize caps the largest halo considered (particles); 0 selects
	// 100x SampleAbove.
	MaxSize int
	// BinsPerDecade sets mass resolution; 0 selects 16.
	BinsPerDecade int
	// Seed drives the Poisson sampling.
	Seed int64
}

// SynthesizePopulation builds the halo population of a ΛCDM box at
// redshift z from the Press-Schechter mass function — the projection tool
// that stands in for the 8192³ halo catalogs this reproduction cannot
// compute directly. The calibration targets are the paper's: a steeply
// falling mass function with ~1e8 halos in a Q Continuum-sized box, of
// which only tens of thousands exceed 300,000 particles (Figure 3), the
// largest reaching tens of millions of particles.
func SynthesizePopulation(p cosmo.Params, o SynthesisOptions) (*HaloPopulation, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if o.BoxMpch <= 0 || o.NP <= 0 {
		return nil, fmt.Errorf("core: invalid box %g / np %d", o.BoxMpch, o.NP)
	}
	if o.MinSize < 1 || o.SampleAbove < o.MinSize {
		return nil, fmt.Errorf("core: invalid sizes min %d sampleAbove %d", o.MinSize, o.SampleAbove)
	}
	binsPerDecade := o.BinsPerDecade
	if binsPerDecade <= 0 {
		binsPerDecade = 16
	}
	maxSize := o.MaxSize
	if maxSize <= 0 {
		maxSize = o.SampleAbove * 100
	}
	mp := p.ParticleMass(o.BoxMpch, o.NP)
	mMin := float64(o.MinSize) * mp
	mMax := float64(maxSize) * mp
	decades := math.Log10(mMax / mMin)
	nBins := int(math.Ceil(decades * float64(binsPerDecade)))
	ratio := math.Pow(10, decades/float64(nBins))
	counts := p.ExpectedHaloCounts(o.BoxMpch, mMin, ratio, nBins, o.Z)

	rng := rand.New(rand.NewSource(o.Seed))
	pop := &HaloPopulation{MinSize: o.MinSize}
	for b, expect := range counts {
		sizeLo := float64(o.MinSize) * math.Pow(ratio, float64(b))
		sizeHi := sizeLo * ratio
		sizeMid := math.Sqrt(sizeLo * sizeHi)
		if sizeMid <= float64(o.SampleAbove) {
			if expect > 0 {
				pop.Bins = append(pop.Bins, PopulationBin{Size: sizeMid, Count: expect})
			}
			continue
		}
		// Rare tail: Poisson-sample individual halos, sizes log-uniform
		// within the bin.
		n := poisson(rng, expect)
		for i := 0; i < n; i++ {
			s := sizeLo * math.Pow(ratio, rng.Float64())
			pop.Large = append(pop.Large, int(s))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(pop.Large)))
	return pop, nil
}

// poisson draws a Poisson variate; for large means it uses the normal
// approximation (exact identity of rare-tail counts is what matters, and
// those means are small).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(math.Round(v))
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// TotalHalos returns the expected total halo count.
func (hp *HaloPopulation) TotalHalos() float64 {
	total := float64(len(hp.Large))
	for _, b := range hp.Bins {
		total += b.Count
	}
	return total
}

// TotalParticlesInHalos returns the expected number of particles residing
// in halos.
func (hp *HaloPopulation) TotalParticlesInHalos() float64 {
	total := 0.0
	for _, n := range hp.Large {
		total += float64(n)
	}
	for _, b := range hp.Bins {
		total += b.Count * b.Size
	}
	return total
}

// LargestSize returns the largest halo's particle count (0 when none).
func (hp *HaloPopulation) LargestSize() int {
	if len(hp.Large) > 0 {
		return hp.Large[0]
	}
	best := 0
	for _, b := range hp.Bins {
		if b.Count >= 0.5 && int(b.Size) > best {
			best = int(b.Size)
		}
	}
	return best
}

// CountAbove returns how many halos exceed the threshold size.
func (hp *HaloPopulation) CountAbove(threshold int) float64 {
	c := 0.0
	for _, n := range hp.Large {
		if n > threshold {
			c++
		}
	}
	for _, b := range hp.Bins {
		if b.Size > float64(threshold) {
			c += b.Count
		}
	}
	return c
}

// ParticlesAbove returns the expected particles residing in halos larger
// than the threshold — the Level 2 data volume of the combined workflow.
func (hp *HaloPopulation) ParticlesAbove(threshold int) float64 {
	total := 0.0
	for _, n := range hp.Large {
		if n > threshold {
			total += float64(n)
		}
	}
	for _, b := range hp.Bins {
		if b.Size > float64(threshold) {
			total += b.Count * b.Size
		}
	}
	return total
}

// PairSum returns Σ n² over halos with size in (minSize, maxSize]; this is
// the O(n²) center-finder work integral. maxSize <= 0 means unbounded.
func (hp *HaloPopulation) PairSum(minSize, maxSize int) float64 {
	inRange := func(n float64) bool {
		if n <= float64(minSize) {
			return false
		}
		return maxSize <= 0 || n <= float64(maxSize)
	}
	total := 0.0
	for _, n := range hp.Large {
		if inRange(float64(n)) {
			total += float64(n) * float64(n)
		}
	}
	for _, b := range hp.Bins {
		if inRange(b.Size) {
			total += b.Count * b.Size * b.Size
		}
	}
	return total
}

// NodeAssignment distributes the population across nNodes and returns the
// per-node Σn² pair counts for halos in (minSize, maxSize]. Aggregated
// bins spread evenly (they are numerous enough for the law of large
// numbers); the rare Large halos land on rng-chosen nodes — exactly the
// mechanism that produces the paper's center-finding load imbalance.
func (hp *HaloPopulation) NodeAssignment(nNodes int, minSize, maxSize int, seed int64) []float64 {
	if nNodes <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, nNodes)
	base := 0.0
	for _, b := range hp.Bins {
		if b.Size > float64(minSize) && (maxSize <= 0 || b.Size <= float64(maxSize)) {
			base += b.Count * b.Size * b.Size
		}
	}
	for i := range out {
		out[i] = base / float64(nNodes)
	}
	for _, n := range hp.Large {
		if float64(n) <= float64(minSize) {
			continue
		}
		if maxSize > 0 && n > maxSize {
			continue
		}
		out[rng.Intn(nNodes)] += float64(n) * float64(n)
	}
	return out
}

// NodeSubhaloSeconds distributes the population across nNodes and returns
// the per-node subhalo-finding time for parent halos above minHaloSize
// (the §4.2 in-situ subhalo experiment: CPU-only, n·log n per halo).
func (hp *HaloPopulation) NodeSubhaloSeconds(nNodes, minHaloSize int, costs platform.AnalysisCosts, m platform.Machine, seed int64) []float64 {
	if nNodes <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, nNodes)
	// Aggregated bins spread evenly.
	base := 0.0
	for _, b := range hp.Bins {
		if b.Size > float64(minHaloSize) {
			base += b.Count * costs.SubhaloCost(b.Size)
		}
	}
	for i := range out {
		out[i] = base / float64(nNodes) * m.CPUFactor
	}
	for _, n := range hp.Large {
		if n <= minHaloSize {
			continue
		}
		out[rng.Intn(nNodes)] += costs.SubhaloCost(float64(n)) * m.CPUFactor
	}
	return out
}
