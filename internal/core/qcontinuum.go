package core

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/gio"
)

// QContinuumReport reproduces the §4.1 case study: the final-timestep
// analysis of the 8192³ Q Continuum run, split between Titan (halo
// finding, centers ≤ 300k) and Moonlight (centers of the 84,719 halos
// above 300k particles, shipped as 128 files of 128 blocks).
type QContinuumReport struct {
	// TotalHalos and Offloaded count the Figure 3 populations (paper:
	// 167,686,789 and 84,719).
	TotalHalos, Offloaded float64
	// LargestHaloParticles (paper: ~25M).
	LargestHaloParticles int
	// IdentificationHours: FOF on 16,384 Titan nodes (paper: ~1 h).
	IdentificationHours float64
	// SmallCenterSeconds: in-situ centers for halos ≤ 300k (paper: "just
	// over one minute").
	SmallCenterSeconds float64
	// MoonlightNodeHours for the off-loaded centers (paper: ~1770).
	MoonlightNodeHours float64
	// TitanEquivalentNodeHours = Moonlight × 0.55 (paper: 985).
	TitanEquivalentNodeHours float64
	// OffloadCoreHours charges the Titan-equivalent node hours (paper:
	// ~30,000).
	OffloadCoreHours float64
	// CombinedCoreHours: identification + small centers + off-load
	// (paper: 0.52M).
	CombinedCoreHours float64
	// MonolithicCoreHours: everything on Titan, gated by the slowest
	// block (paper: 3.4M).
	MonolithicCoreHours float64
	// SavingFactor = Monolithic / Combined (paper: 6.5).
	SavingFactor float64
	// Per-file job statistics on Moonlight (paper: longest 37.8 h,
	// shortest 6.0 h; longest single block 10.6 h).
	LongestJobHours, ShortestJobHours, LongestBlockHours float64
	// SlowestNodeHours: projected time of the slowest Titan node had all
	// center finding run in-situ (paper: 5.9 h).
	SlowestNodeHours float64
	// IOOverheadCoreHours: writing + reading + redistributing Level 1 for
	// one off-line analysis step (paper: ~0.16M).
	IOOverheadCoreHours float64
}

// QContinuumStudy runs the case study on a synthesized population.
func QContinuumStudy(seed int64) (*QContinuumReport, error) {
	s, err := QContinuumScenario(seed)
	if err != nil {
		return nil, err
	}
	pop := s.Population
	r := &QContinuumReport{
		TotalHalos:           pop.TotalHalos(),
		Offloaded:            pop.CountAbove(s.SplitThreshold),
		LargestHaloParticles: pop.LargestSize(),
	}
	nLocal := int(s.TotalParticles() / float64(s.SimNodes))
	r.IdentificationHours = s.Costs.FOFSeconds(s.Machine, nLocal, 1.0) / 3600

	titanGPUPair := s.Costs.CenterPairSeconds * s.Machine.KernelFactor(true)
	smallPerNode := pop.PairSum(0, s.SplitThreshold) / float64(s.SimNodes)
	r.SmallCenterSeconds = smallPerNode * titanGPUPair

	// Large halos land on the Titan node that found them; 128 consecutive
	// node blocks aggregate into one file; each file becomes one
	// single-node Moonlight job (§4.1).
	rng := rand.New(rand.NewSource(seed + 1))
	nodePairs := make([]float64, s.SimNodes)
	for _, n := range pop.Large {
		if n > s.SplitThreshold {
			nodePairs[rng.Intn(s.SimNodes)] += float64(n) * float64(n)
		}
	}
	moonPair := s.Costs.CenterPairSeconds * s.PostMachine.KernelFactor(true)
	plan, err := gio.AggregationPlan(s.SimNodes, 128)
	if err != nil {
		return nil, err
	}
	var jobHours []float64
	longestBlock := 0.0
	totalMoonHours := 0.0
	for _, group := range plan {
		jobSec := 0.0
		for _, node := range group {
			blockSec := nodePairs[node] * moonPair
			jobSec += blockSec
			if blockSec > longestBlock {
				longestBlock = blockSec
			}
		}
		jobHours = append(jobHours, jobSec/3600)
		totalMoonHours += jobSec / 3600
	}
	sort.Float64s(jobHours)
	r.LongestJobHours = jobHours[len(jobHours)-1]
	r.ShortestJobHours = jobHours[0]
	r.LongestBlockHours = longestBlock / 3600
	r.MoonlightNodeHours = totalMoonHours
	r.TitanEquivalentNodeHours = totalMoonHours * 0.55
	r.OffloadCoreHours = r.TitanEquivalentNodeHours * s.Machine.ChargeFactor

	// Combined: identification + small centers on 16,384 Titan nodes, plus
	// the off-load.
	titanSideHours := (r.IdentificationHours*3600 + r.SmallCenterSeconds) / 3600
	r.CombinedCoreHours = float64(s.SimNodes)*titanSideHours*s.Machine.ChargeFactor + r.OffloadCoreHours

	// Monolithic: the whole machine waits for the slowest node to finish
	// every center, plus identification.
	slowestPairs := 0.0
	for _, v := range nodePairs {
		if v > slowestPairs {
			slowestPairs = v
		}
	}
	// The slowest node also carries its share of small-halo work.
	slowestSec := (slowestPairs + smallPerNode) * titanGPUPair
	r.SlowestNodeHours = slowestSec / 3600
	r.MonolithicCoreHours = float64(s.SimNodes) * (r.SlowestNodeHours + r.IdentificationHours) * s.Machine.ChargeFactor
	if r.CombinedCoreHours > 0 {
		r.SavingFactor = r.MonolithicCoreHours / r.CombinedCoreHours
	}

	// I/O overhead of one off-line analysis step: write + read +
	// redistribute Level 1 on the full partition.
	lv, err := s.Levels()
	if err != nil {
		return nil, err
	}
	// The paper's ~0.16M figure corresponds to the ~10-minute read plus the
	// ~10-minute redistribution on the full partition (§4.1); the write is
	// folded into the simulation job.
	ioSec := s.Machine.IOSeconds(lv.Level1Bytes, s.SimNodes) +
		s.Machine.RedistributeSeconds(lv.Level1Bytes, s.SimNodes)
	r.IOOverheadCoreHours = s.Machine.ChargeCoreHours(s.SimNodes, ioSec)
	return r, nil
}

// String renders the report in the paper's §4.1 narrative order.
func (r *QContinuumReport) String() string {
	return fmt.Sprintf(`Q Continuum final-step analysis (paper values in parentheses):
  halos total / off-loaded:   %.0f / %.0f   (167,686,789 / 84,719)
  largest halo:               %d particles  (~25M)
  identification:             %.2f h on 16,384 nodes  (~1 h)
  in-situ centers <=300k:     %.0f s  ("just over one minute")
  Moonlight node hours:       %.0f  (1770)
  Titan-equivalent:           %.0f node hours -> %.0f core hours  (985 -> ~30,000)
  combined total:             %.3g core hours  (0.52M)
  monolithic in-situ:         %.3g core hours  (3.4M)
  saving factor:              %.1fx  (6.5x)
  longest/shortest job:       %.1f / %.1f h  (37.8 / 6.0)
  longest block:              %.1f h  (10.6)
  slowest in-situ node:       %.1f h  (5.9)
  L1 I/O overhead per step:   %.3g core hours  (~0.16M)`,
		r.TotalHalos, r.Offloaded, r.LargestHaloParticles,
		r.IdentificationHours, r.SmallCenterSeconds,
		r.MoonlightNodeHours, r.TitanEquivalentNodeHours, r.OffloadCoreHours,
		r.CombinedCoreHours, r.MonolithicCoreHours, r.SavingFactor,
		r.LongestJobHours, r.ShortestJobHours, r.LongestBlockHours,
		r.SlowestNodeHours, r.IOOverheadCoreHours)
}
