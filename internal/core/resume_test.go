package core

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"repro/internal/fault"
)

func resumeScenario(t *testing.T, seed int64, crashes []fault.Crash) *Scenario {
	t.Helper()
	s, err := DownscaledScenario(seed)
	if err != nil {
		t.Fatal(err)
	}
	s.PostQueueWait = 0
	if len(crashes) > 0 {
		s.Faults = &fault.Profile{Crashes: crashes}
	}
	return s
}

// runToCompletion re-runs the campaign until it survives its crash
// schedule, returning the final report and the number of crashes endured.
func runToCompletion(t *testing.T, seed int64, timesteps int, dir string, crashes []fault.Crash) (*CampaignReport, int) {
	t.Helper()
	crashCount := 0
	for gen := 0; gen <= len(crashes)+1; gen++ {
		rep, err := ResumableCampaign(resumeScenario(t, seed, crashes), timesteps, dir, seed)
		if errors.Is(err, ErrCampaignCrashed) {
			crashCount++
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		return rep, crashCount
	}
	t.Fatalf("campaign in %s never completed", dir)
	return nil, 0
}

// snapshotProducts reads every delivered product under dir, keyed by
// relative path.
func snapshotProducts(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, rel := range []string{"l2", "centers"} {
		entries, err := os.ReadDir(filepath.Join(dir, rel))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, rel, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			out[rel+"/"+e.Name()] = data
		}
	}
	data, err := os.ReadFile(filepath.Join(dir, "catalog.txt"))
	if err != nil {
		t.Fatal(err)
	}
	out["catalog.txt"] = data
	return out
}

func sameProducts(t *testing.T, want, got map[string][]byte, label string) {
	t.Helper()
	var keys []string
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(got) != len(want) {
		t.Errorf("%s: %d products, want %d", label, len(got), len(want))
	}
	for _, k := range keys {
		g, ok := got[k]
		if !ok {
			t.Errorf("%s: product %s missing", label, k)
			continue
		}
		if !reflect.DeepEqual(want[k], g) {
			t.Errorf("%s: product %s not byte-identical", label, k)
		}
	}
}

// A persisted campaign with no crashes must behave exactly like the plain
// in-memory Campaign: same report (ResumeStats zero), plus the full
// product set on disk.
func TestResumableZeroCrashMatchesCampaign(t *testing.T) {
	const seed, steps = 1, 4
	dir := t.TempDir()
	persisted, err := ResumableCampaign(resumeScenario(t, seed, nil), steps, dir, seed)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Campaign(resumeScenario(t, seed, nil), steps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(persisted, plain) {
		t.Errorf("persisted campaign report diverged from Campaign:\n%+v\nvs\n%+v", persisted, plain)
	}
	products := snapshotProducts(t, dir)
	if len(products) != 2*steps+1 {
		t.Errorf("%d products on disk, want %d", len(products), 2*steps+1)
	}
}

// The tentpole torn-run property: crash at a virtual time, resume, crash
// again mid-write of a step's Level 2 file (leaving a torn unjournaled
// file), resume again — and the delivered products converge byte-for-byte
// to those of a crash-free run. Runs under -race in CI.
func TestTornRunProperty(t *testing.T) {
	const seed, steps = 1, 5

	cleanDir := t.TempDir()
	clean, crashCount := runToCompletion(t, seed, steps, cleanDir, nil)
	if crashCount != 0 {
		t.Fatalf("crash-free run crashed %d times", crashCount)
	}
	want := snapshotProducts(t, cleanDir)

	stepDur := clean.SimWallClock / steps
	crashes := []fault.Crash{
		{AtTime: 2.5 * stepDur}, // generation 0: killed mid-campaign
		{AtStep: steps - 1},     // generation 1: killed mid-write (torn file)
	}
	tornDir := t.TempDir()
	rep, crashCount := runToCompletion(t, seed, steps, tornDir, crashes)
	if crashCount != 2 {
		t.Fatalf("endured %d crashes, want 2", crashCount)
	}
	if rep.Resume.Generation != 2 {
		t.Errorf("final generation %d, want 2", rep.Resume.Generation)
	}
	if rep.Resume.StepsSkipped == 0 {
		t.Error("final incarnation redid every step; expected journaled work to be skipped")
	}
	if rep.Resume.TornFiles == 0 {
		t.Error("the mid-write kill left no torn file to reconcile")
	}
	sameProducts(t, want, snapshotProducts(t, tornDir), "torn run")

	// Determinism: the same crash schedule replayed into a fresh directory
	// yields byte-identical products again.
	againDir := t.TempDir()
	if _, crashCount := runToCompletion(t, seed, steps, againDir, crashes); crashCount != 2 {
		t.Fatalf("replay endured %d crashes, want 2", crashCount)
	}
	sameProducts(t, want, snapshotProducts(t, againDir), "replayed torn run")
}

// Resuming a journal under different campaign parameters must be refused,
// not silently mixed.
func TestResumeRefusesParameterMismatch(t *testing.T) {
	const steps = 3
	dir := t.TempDir()
	if _, err := ResumableCampaign(resumeScenario(t, 1, nil), steps, dir, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumableCampaign(resumeScenario(t, 2, nil), steps, dir, 2); err == nil {
		t.Error("resume with a different seed was accepted")
	}
	if _, err := ResumableCampaign(resumeScenario(t, 1, nil), steps+1, dir, 1); err == nil {
		t.Error("resume with a different horizon was accepted")
	}
}

// A fully completed campaign resumes as a no-op: nothing is redone and the
// products are untouched.
func TestResumeCompletedCampaign(t *testing.T) {
	const seed, steps = 1, 3
	dir := t.TempDir()
	if _, err := ResumableCampaign(resumeScenario(t, seed, nil), steps, dir, seed); err != nil {
		t.Fatal(err)
	}
	want := snapshotProducts(t, dir)
	rep, err := ResumableCampaign(resumeScenario(t, seed, nil), steps, dir, seed)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resume.StepsSkipped != steps || rep.Resume.PostsSkipped != steps {
		t.Errorf("skipped %d/%d, want %d/%d",
			rep.Resume.StepsSkipped, rep.Resume.PostsSkipped, steps, steps)
	}
	if rep.Resume.Generation != 1 {
		t.Errorf("generation %d, want 1", rep.Resume.Generation)
	}
	sameProducts(t, want, snapshotProducts(t, dir), "no-op resume")
}
