package core

import "repro/internal/platform"

// MachineChoice reports what the combined workflow's post-processing costs
// on one candidate analysis machine — the §4.2 trade-off: "OLCF's
// designated analysis cluster, Rhea, has the capacity to ensure that
// enough nodes are available for smaller jobs to have short queue waits.
// However, Rhea does not currently have GPUs. The secondary job could be
// co-scheduled on Titan with the main job, and use Titan's GPUs. However,
// Titan's queue is designed to favor large jobs."
type MachineChoice struct {
	Machine platform.Machine
	// PostAnalysisSeconds is the Level 2 center-finding makespan on the
	// machine's best hardware (GPU when present).
	PostAnalysisSeconds float64
	// QueueWaitSeconds models the facility wait for the analysis job.
	QueueWaitSeconds float64
	// SubjectToSmallJobPolicy marks machines whose queue policy caps
	// concurrent small jobs (Titan's 2-job limit, §3.2).
	SubjectToSmallJobPolicy bool
	// CoreHours charges the post job.
	CoreHours float64
}

// CompareAnalysisMachines evaluates the scenario's post-processing on each
// candidate machine. Queue waits follow the paper's qualitative ranking:
// dedicated analysis clusters (no small-job cap) admit jobs quickly; the
// big machine's queue favours large jobs, so the small analysis job waits
// long there.
func CompareAnalysisMachines(s *Scenario, machines []platform.Machine) ([]MachineChoice, error) {
	ph, err := computePhases(s)
	if err != nil {
		return nil, err
	}
	totalPairs := s.Population.PairSum(s.SplitThreshold, 0)
	largest := float64(s.Population.LargestSize())
	var out []MachineChoice
	for _, m := range machines {
		pairCost := s.Costs.CenterPairSeconds * m.KernelFactor(m.HasGPU)
		total := totalPairs * pairCost
		tMax := largest * largest * pairCost
		makespan := total / float64(s.PostNodes)
		if tMax > makespan {
			makespan = tMax
		}
		choice := MachineChoice{
			Machine:                 m,
			PostAnalysisSeconds:     makespan,
			SubjectToSmallJobPolicy: m.SmallJobLimit > 0 && s.PostNodes < m.SmallJobNodes,
		}
		// Queue-wait model: capped small-job queues (Titan) make the
		// analysis job wait behind the large-job-favouring policy;
		// dedicated clusters admit it almost immediately.
		if choice.SubjectToSmallJobPolicy {
			choice.QueueWaitSeconds = 4 * 3600
		} else {
			choice.QueueWaitSeconds = 600
		}
		post := ph.l2Read + ph.l2Redist + makespan + ph.l3Write
		choice.CoreHours = m.ChargeCoreHours(s.PostNodes, post)
		out = append(out, choice)
	}
	return out, nil
}
