package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/fault"
)

// testProfile is the fault mix the resilience tests run under.
func testProfile(seed int64) fault.Profile {
	return fault.Profile{
		Seed:              seed,
		JobFailureProb:    0.3,
		WriteFailProb:     0.25,
		WriteTruncateProb: 0.15,
		ListenerOutages:   []fault.Window{{Start: 600, End: 1500}},
		NodeDrains:        []fault.Drain{{Window: fault.Window{Start: 500, End: 1000}, Nodes: 2}},
	}
}

// The failure path must be strictly additive: a zero-rate profile yields
// reports identical to no profile at all, for every workflow kind.
func TestZeroProfileReportsIdentical(t *testing.T) {
	s, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	s.Timesteps = 3
	s.PostQueueWait = 0
	for _, k := range Kinds() {
		plain := *s
		plain.Faults = nil
		base, err := Run(&plain, k)
		if err != nil {
			t.Fatal(err)
		}
		zeroed := *s
		zeroed.Faults = &fault.Profile{Seed: 99} // zero rates: injects nothing
		zr, err := Run(&zeroed, k)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, zr) {
			t.Errorf("%s: zero-rate profile changed the report:\n  base    %+v\n  zeroed  %+v", k, base, zr)
		}
		// JobAttempts counts successful attempts too; every fault-related
		// field must stay zero.
		res := zr.Resilience
		res.JobAttempts = 0
		if res != (Resilience{}) {
			t.Errorf("%s: zero-rate profile injected faults: %+v", k, zr.Resilience)
		}
	}
}

// Property (satellite): the same fault seed yields byte-identical Report
// output across runs — the injector is deterministic under the DES clock.
func TestSameFaultSeedYieldsIdenticalReports(t *testing.T) {
	s, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	s.Timesteps = 4
	s.PostQueueWait = 0
	for _, seed := range []int64{1, 2, 7} {
		p := testProfile(seed)
		render := func() string {
			rows, err := ResilienceStudy(s, p)
			if err != nil {
				t.Fatal(err)
			}
			out := FormatResilience(rows)
			// Fold the complete faulted reports in too, not just the
			// formatted table: every field must reproduce.
			for _, row := range rows {
				out += fmt.Sprintf("%+v\n", *row.Faulted)
			}
			return out
		}
		a, b := render(), render()
		if a != b {
			t.Errorf("seed %d: reports differ across runs:\n--- a ---\n%s--- b ---\n%s", seed, a, b)
		}
	}
}

func TestDifferentFaultSeedsDiffer(t *testing.T) {
	s, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	s.Timesteps = 4
	s.PostQueueWait = 0
	render := func(seed int64) string {
		rows, err := ResilienceStudy(s, testProfile(seed))
		if err != nil {
			t.Fatal(err)
		}
		return FormatResilience(rows)
	}
	if render(1) == render(2) {
		t.Error("fault seeds 1 and 2 produced identical studies")
	}
}

// Under faults the workflows must degrade (never speed up), recover work
// (retries, redriven writes), and account the damage.
func TestFaultedRunsDegradeAndRecover(t *testing.T) {
	s, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	s.Timesteps = 5
	s.PostQueueWait = 0
	rows, err := ResilienceStudy(s, testProfile(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(Kinds()) {
		t.Fatalf("rows = %d", len(rows))
	}
	anyFailures, anyWriteFaults := false, false
	for _, row := range rows {
		if row.Faulted.WallClock < row.Baseline.WallClock-1e-9 {
			t.Errorf("%s: faults sped the run up: %v < %v", row.Workflow, row.Faulted.WallClock, row.Baseline.WallClock)
		}
		res := row.Faulted.Resilience
		if res.JobFailures > 0 {
			anyFailures = true
			if res.JobFailures != res.Resubmits+res.JobsLost {
				t.Errorf("%s: failures %d != resubmits %d + lost %d", row.Workflow, res.JobFailures, res.Resubmits, res.JobsLost)
			}
			if res.TimeLostSeconds <= 0 || res.LostCoreHours <= 0 {
				t.Errorf("%s: failures with no time/charge accounted: %+v", row.Workflow, res)
			}
		}
		if res.WriteFailures > 0 || res.TruncatedWrites > 0 {
			anyWriteFaults = true
		}
		if row.Workflow == CombinedInTransit && (res.WriteFailures > 0 || res.TruncatedWrites > 0) {
			t.Errorf("in-transit saw storage faults despite bypassing the file system: %+v", res)
		}
	}
	if !anyFailures {
		t.Error("no job failures across any workflow at 30% rate")
	}
	if !anyWriteFaults {
		t.Error("no write faults across disk-staged workflows at 40% combined rate")
	}
}

// The co-scheduled workflow must not lose analysis products to write
// faults or listener outages: every timestep's post job still runs
// (re-driven writes + retried sweeps recover them).
func TestCoScheduledRecoversAllSteps(t *testing.T) {
	s, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	s.Timesteps = 6
	s.PostQueueWait = 0
	p := testProfile(5)
	p.JobFailureProb = 0 // isolate the storage/listener fault path
	s.Faults = &p
	r, err := Run(s, CombinedCoScheduled)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.AnalysisJobStarts) != s.Timesteps {
		t.Errorf("analysis jobs started = %d, want %d (files recovered by re-drive + final sweep)",
			len(r.AnalysisJobStarts), s.Timesteps)
	}
}

func TestCampaignWithFaultsRecoversAllJobs(t *testing.T) {
	s, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	s.PostQueueWait = 0
	p := fault.Profile{Seed: 2, WriteFailProb: 0.2, WriteTruncateProb: 0.1}
	s.Faults = &p
	rep, err := Campaign(s, 15)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AnalysisJobs != 15 {
		t.Errorf("analysis jobs = %d, want 15 despite %d write failures and %d truncations",
			rep.AnalysisJobs, rep.Resilience.WriteFailures, rep.Resilience.TruncatedWrites)
	}
	if rep.Resilience.WriteFailures+rep.Resilience.TruncatedWrites == 0 {
		t.Error("expected storage faults at 30% combined rate over 15 steps")
	}
	if rep.Resilience.WritesRedriven == 0 {
		t.Error("no writes re-driven despite storage faults")
	}
}
