package core

// Observability hooks for the workflow runners: after a Run() completes,
// emitPhaseSpans lays the report's calibrated phase durations down as
// retroactive spans, one category per column of the paper's Table 3/4
// breakdown. Priced under obs.TitanChargePolicy, the resulting cost
// report reproduces the paper's in-situ vs off-line vs co-scheduled
// comparison: sim/insitu-analysis/sim-write spans charge the simulation
// allocation, the post-* spans charge the post machine, and post-queue
// carries wall time at zero nodes — queueing costs time, never
// core-hours, exactly the paper's accounting.
//
// The campaign engine (campaign.go) instead records live spans
// (campaign → step → job) as events execute; the two instrumentations
// are complementary views, never mixed on one observer by the CLI.

// emitPhaseSpans records the workflow's phase breakdown on s.Obs as a
// sequential timeline: the simulation job's phases back-to-back from 0,
// then the post job's phases after its queue wait. No-op without an
// observer.
func emitPhaseSpans(s *Scenario, r *Report) {
	if s.Obs == nil {
		return
	}
	o := s.Obs
	root := o.SpanAt(nil, "workflow", string(r.Workflow), 0, r.WallClock)
	t := 0.0
	lay := func(cat string, dur float64, machine string, nodes int) {
		if dur <= 0 {
			return
		}
		o.SpanAt(root, cat, cat, t, t+dur).Charge(machine, nodes)
		t += dur
	}
	sim := s.Machine.Name
	lay("sim", r.SimSeconds, sim, r.SimNodes)
	lay("insitu-analysis", r.AnalysisSeconds, sim, r.SimNodes)
	lay("sim-write", r.SimWriteSeconds, sim, r.SimNodes)
	if r.PostNodes <= 0 {
		return // pure in-situ: no post job
	}
	// The off-line workflow re-queues on the simulation machine itself;
	// the combined variants post-process on the (possibly distinct) post
	// machine.
	post := s.PostMachine.Name
	if r.Workflow == Offline {
		post = s.Machine.Name
	}
	lay("post-queue", r.PostQueueWait, post, 0) // wall time, no charge
	lay("post-read", r.ReadSeconds, post, r.PostNodes)
	lay("post-redistribute", r.RedistributeSeconds, post, r.PostNodes)
	lay("post-analysis", r.PostAnalysisSeconds, post, r.PostNodes)
	lay("post-write", r.PostWriteSeconds, post, r.PostNodes)
}
