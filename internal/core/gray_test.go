package core

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/fault"
)

// grayProfile is the gray-failure mix the supervision tests run under:
// slowdowns, stalls, in-situ analysis slowdowns and submit refusals, but
// no fail-stop faults — every disruption here is one a conventional
// retry-on-failure scheduler would never notice.
func grayProfile(seed int64) fault.Profile {
	return fault.Profile{
		Seed:               seed,
		JobSlowdownProb:    0.3,
		JobStallProb:       0.3,
		InSituSlowdownProb: 0.4,
		SubmitFailProb:     0.2,
		TransitDelayProb:   0.2,
	}
}

func grayScenario(t *testing.T, seed int64) *Scenario {
	t.Helper()
	s, err := DownscaledScenario(seed)
	if err != nil {
		t.Fatal(err)
	}
	s.PostQueueWait = 0
	p := grayProfile(seed)
	s.Faults = &p
	return s
}

// Acceptance: the same seed reproduces the identical hedge/degrade
// decision log twice — the full campaign report, decision log included,
// is deterministic under gray injection.
func TestGrayCampaignDecisionLogReproducible(t *testing.T) {
	const steps = 6
	for _, seed := range []int64{3, 5, 11} {
		a, err := Campaign(grayScenario(t, seed), steps)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Campaign(grayScenario(t, seed), steps)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("seed %d: gray campaign not reproducible:\n  a %+v\n  b %+v", seed, a, b)
		}
		if len(a.Decisions) == 0 {
			t.Errorf("seed %d: supervised gray campaign recorded no decisions", seed)
		}
	}
}

// Acceptance: a supervised campaign under a gray profile completes every
// step — hedged re-execution recovers stalls, and hedged duplicates never
// double-count an analysis (AnalysisJobs stays exactly timesteps).
func TestGrayCampaignRecoversAllSteps(t *testing.T) {
	const steps = 6
	sawHedgeWin := false
	for _, seed := range []int64{3, 5, 7, 11, 13} {
		rep, err := Campaign(grayScenario(t, seed), steps)
		if err != nil {
			t.Fatal(err)
		}
		res := rep.Resilience
		if res.Stalls > 0 && rep.AnalysisJobs != steps {
			t.Errorf("seed %d: %d analysis jobs for %d steps under stalls %d (hedges %d wins %d lost %d)",
				seed, rep.AnalysisJobs, steps, res.Stalls, res.HedgesLaunched, res.HedgeWins, res.JobsLost)
		}
		if res.HedgeWins > res.HedgesLaunched {
			t.Errorf("seed %d: %d hedge wins from %d hedges", seed, res.HedgeWins, res.HedgesLaunched)
		}
		if res.HedgeWins > 0 {
			sawHedgeWin = true
		}
	}
	if !sawHedgeWin {
		t.Error("no seed exercised a hedge win; raise the stall rate")
	}
}

// Acceptance: a supervised gray campaign's durable products are
// bit-identical to a fault-free run's — stalls, hedges and rescues change
// the schedule, never the science.
func TestGrayCampaignProductsBitIdentical(t *testing.T) {
	const steps = 5
	for _, seed := range []int64{3, 5} {
		cleanDir, grayDir := t.TempDir(), t.TempDir()
		clean := resumeScenario(t, seed, nil)
		if _, err := ResumableCampaign(clean, steps, cleanDir, seed); err != nil {
			t.Fatal(err)
		}
		gray := grayScenario(t, seed)
		grayRep, err := ResumableCampaign(gray, steps, grayDir, seed)
		if err != nil {
			t.Fatal(err)
		}
		if grayRep.AnalysisJobs != steps {
			t.Errorf("seed %d: gray campaign analyzed %d of %d steps", seed, grayRep.AnalysisJobs, steps)
		}
		sameProducts(t, snapshotProducts(t, cleanDir), snapshotProducts(t, grayDir), "gray vs fault-free")
	}
}

// The degrade policy spills over-budget in-situ analysis to the off-line
// path: with every step slowed past the budget, all steps degrade, the
// campaign still analyzes every step, and each degrade decision is logged.
func TestDegradedStepsSpillOffline(t *testing.T) {
	const steps = 4
	s, err := DownscaledScenario(1)
	if err != nil {
		t.Fatal(err)
	}
	s.PostQueueWait = 0
	s.Faults = &fault.Profile{
		Seed:                    1,
		InSituSlowdownProb:      1,
		InSituSlowdownFactorMin: 3,
		InSituSlowdownFactorMax: 4,
	}
	s.Degrade = &DegradePolicy{StepBudget: 500, RescueLost: true}
	rep, err := Campaign(s, steps)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Resilience.DegradedSteps != steps {
		t.Errorf("degraded %d of %d steps with every step over budget", rep.Resilience.DegradedSteps, steps)
	}
	if rep.AnalysisJobs != steps {
		t.Errorf("analyzed %d of %d steps", rep.AnalysisJobs, steps)
	}
	degrades := 0
	for _, d := range rep.Decisions {
		if d.Event == "degrade" {
			degrades++
		}
	}
	if degrades != steps {
		t.Errorf("decision log records %d degrades, want %d", degrades, steps)
	}

	// The same scenario without a budget keeps everything in-situ.
	s.Degrade = nil
	s.Supervise = nil
	rep2, err := Campaign(s, steps)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Resilience.DegradedSteps != 0 {
		t.Errorf("budget-free run degraded %d steps", rep2.Resilience.DegradedSteps)
	}
	// Degrading trades sim-job time for post-job time: the degraded sim
	// finishes earlier.
	if rep.SimWallClock >= rep2.SimWallClock {
		t.Errorf("degraded sim wall %g not below in-situ sim wall %g", rep.SimWallClock, rep2.SimWallClock)
	}
}

// The degrade table renders the gray columns; the decision log renders
// one line per decision.
func TestFormatSupervisionOutput(t *testing.T) {
	const steps = 4
	s := grayScenario(t, 3)
	rep, err := Campaign(s, steps)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatDecisions(rep.Decisions)
	if len(rep.Decisions) > 0 && strings.Count(out, "\n") != len(rep.Decisions) {
		t.Errorf("FormatDecisions rendered %d lines for %d decisions", strings.Count(out, "\n"), len(rep.Decisions))
	}
	rows, err := ResilienceStudy(s, grayProfile(3))
	if err != nil {
		t.Fatal(err)
	}
	table := FormatResilience(rows)
	for _, col := range []string{"stall", "hedge", "wins", "degr", "rescue", "strag-nh"} {
		if !strings.Contains(table, col) {
			t.Errorf("resilience table missing column %q", col)
		}
	}
}
