package des

import (
	"testing"
)

func TestEventsRunInTimeOrder(t *testing.T) {
	var s Sim
	var order []int
	s.At(3, func() { order = append(order, 3) })
	s.At(1, func() { order = append(order, 1) })
	s.At(2, func() { order = append(order, 2) })
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 3 {
		t.Errorf("now = %v", s.Now())
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(5, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestAfterUsesCurrentTime(t *testing.T) {
	var s Sim
	var fired float64
	s.At(10, func() {
		s.After(5, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 15 {
		t.Errorf("fired at %v", fired)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	var s Sim
	var fired float64 = -1
	s.At(10, func() {
		s.At(3, func() { fired = s.Now() })
	})
	s.Run()
	if fired != 10 {
		t.Errorf("fired at %v", fired)
	}
}

func TestEventsCanScheduleMoreEvents(t *testing.T) {
	var s Sim
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			s.After(1, tick)
		}
	}
	s.After(1, tick)
	s.Run()
	if count != 100 {
		t.Errorf("count = %d", count)
	}
	if s.Now() != 100 {
		t.Errorf("now = %v", s.Now())
	}
}

func TestRunUntil(t *testing.T) {
	var s Sim
	var fired []float64
	for _, at := range []float64{1, 2, 3, 10} {
		at := at
		s.At(at, func() { fired = append(fired, at) })
	}
	s.RunUntil(5)
	if len(fired) != 3 {
		t.Errorf("fired = %v", fired)
	}
	if s.Now() != 5 {
		t.Errorf("now = %v", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run()
	if len(fired) != 4 || s.Now() != 10 {
		t.Errorf("final: fired=%v now=%v", fired, s.Now())
	}
}

func TestStepOnEmptyQueue(t *testing.T) {
	var s Sim
	if s.Step() {
		t.Error("Step on empty queue should return false")
	}
}
