// Package des is a minimal discrete-event simulation core: a virtual clock
// and an event queue. The batch-scheduler, file-system and workflow models
// (internal/sched, internal/fs, internal/core) advance this clock instead
// of wall time, which lets the benchmark harness replay Titan-scale
// workflows — 16,384-node jobs, multi-hour analysis queues — in
// milliseconds while preserving every ordering the paper's measurements
// depend on.
package des

import "container/heap"

// Sim is a discrete-event simulator. The zero value is ready to use.
type Sim struct {
	now    float64
	queue  eventHeap
	serial int64 // tie-break so same-time events run in schedule order
}

type event struct {
	at     float64
	serial int64
	fn     func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].serial < h[j].serial
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(v interface{}) { *h = append(*h, v.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// Now returns the current virtual time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute time t. Scheduling in the past runs the
// event at the current time (immediately next).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.serial++
	heap.Push(&s.queue, event{at: t, serial: s.serial, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Step runs the single earliest event, returning false when none remain.
func (s *Sim) Step() bool {
	if s.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(event)
	s.now = ev.at
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (s *Sim) Run() {
	for s.Step() {
	}
}

// RunUntil executes events with time <= t, then advances the clock to t
// (if it is ahead of the last event).
func (s *Sim) RunUntil(t float64) {
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return s.queue.Len() }
