// Package profile measures radial halo density profiles and NFW
// concentrations — the Level 3 "halo properties" the paper's workflow
// exists to compute, and the reason center accuracy matters: "The
// concentration is determined from the density profile of the halo as a
// function of radius — if the center is not exactly at the density
// maximum, the concentration will be underestimated" (§3.3.2).
package profile

import (
	"fmt"
	"math"
)

// Profile is a binned radial density profile around a center.
type Profile struct {
	// REdges are the nBins+1 logarithmic radial bin edges.
	REdges []float64
	// Rho is the density in each shell (mass / shell volume).
	Rho []float64
	// Count is the particles per shell.
	Count []int
	// MEnclosed is the cumulative mass inside each bin's outer edge.
	MEnclosed []float64
}

// Options configures profile measurement.
type Options struct {
	// ParticleMass is the equal particle mass (> 0).
	ParticleMass float64
	// RMin and RMax bound the logarithmic bins; RMin > 0.
	RMin, RMax float64
	// Bins is the number of radial bins.
	Bins int
}

func (o Options) validate() error {
	switch {
	case o.ParticleMass <= 0:
		return fmt.Errorf("profile: particle mass %g must be positive", o.ParticleMass)
	case o.RMin <= 0 || o.RMax <= o.RMin:
		return fmt.Errorf("profile: invalid radial range [%g, %g]", o.RMin, o.RMax)
	case o.Bins <= 0:
		return fmt.Errorf("profile: bins %d must be positive", o.Bins)
	}
	return nil
}

// Measure bins the given (unwrapped) member coordinates radially around
// (cx, cy, cz).
func Measure(x, y, z []float64, cx, cy, cz float64, o Options) (*Profile, error) {
	if err := o.validate(); err != nil {
		return nil, err
	}
	p := &Profile{
		REdges:    make([]float64, o.Bins+1),
		Rho:       make([]float64, o.Bins),
		Count:     make([]int, o.Bins),
		MEnclosed: make([]float64, o.Bins),
	}
	logMin := math.Log10(o.RMin)
	logMax := math.Log10(o.RMax)
	for i := 0; i <= o.Bins; i++ {
		p.REdges[i] = math.Pow(10, logMin+(logMax-logMin)*float64(i)/float64(o.Bins))
	}
	inner := 0 // particles inside RMin count toward enclosed mass
	for i := range x {
		dx, dy, dz := x[i]-cx, y[i]-cy, z[i]-cz
		r := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if r < o.RMin {
			inner++
			continue
		}
		if r >= o.RMax {
			continue
		}
		bin := int((math.Log10(r) - logMin) / (logMax - logMin) * float64(o.Bins))
		if bin >= o.Bins {
			bin = o.Bins - 1
		}
		p.Count[bin]++
	}
	cum := inner
	for b := 0; b < o.Bins; b++ {
		cum += p.Count[b]
		p.MEnclosed[b] = float64(cum) * o.ParticleMass
		rLo, rHi := p.REdges[b], p.REdges[b+1]
		vol := 4.0 / 3.0 * math.Pi * (rHi*rHi*rHi - rLo*rLo*rLo)
		p.Rho[b] = float64(p.Count[b]) * o.ParticleMass / vol
	}
	return p, nil
}

// NFW evaluates the Navarro-Frenk-White profile
// rho(r) = rho0 / ((r/rs)(1+r/rs)²).
func NFW(r, rho0, rs float64) float64 {
	if r <= 0 || rs <= 0 {
		return 0
	}
	q := r / rs
	return rho0 / (q * (1 + q) * (1 + q))
}

// FitNFW fits (rho0, rs) to the measured profile by scanning rs over the
// radial range and solving rho0 in closed form per rs (least squares in
// log density over non-empty bins). It returns the best-fit parameters
// and the rms log-residual.
func (p *Profile) FitNFW() (rho0, rs, residual float64, err error) {
	var rCenters, logRho []float64
	for b := range p.Rho {
		if p.Count[b] < 2 {
			continue
		}
		rc := math.Sqrt(p.REdges[b] * p.REdges[b+1])
		rCenters = append(rCenters, rc)
		logRho = append(logRho, math.Log(p.Rho[b]))
	}
	if len(rCenters) < 3 {
		return 0, 0, 0, fmt.Errorf("profile: only %d usable bins for NFW fit", len(rCenters))
	}
	rMin := p.REdges[0]
	rMax := p.REdges[len(p.REdges)-1]
	best := math.Inf(1)
	const scanSteps = 200
	for s := 0; s <= scanSteps; s++ {
		trialRs := rMin * math.Pow(rMax/rMin, float64(s)/scanSteps)
		// For fixed rs, log rho0 enters additively: solve by mean residual.
		sum := 0.0
		for i, rc := range rCenters {
			shape := math.Log(NFW(rc, 1, trialRs))
			sum += logRho[i] - shape
		}
		logRho0 := sum / float64(len(rCenters))
		ss := 0.0
		for i, rc := range rCenters {
			model := logRho0 + math.Log(NFW(rc, 1, trialRs))
			d := logRho[i] - model
			ss += d * d
		}
		if ss < best {
			best = ss
			rs = trialRs
			rho0 = math.Exp(logRho0)
		}
	}
	return rho0, rs, math.Sqrt(best / float64(len(rCenters))), nil
}

// Concentration returns c = rVir / rs for a virial radius and a fitted
// scale radius.
func Concentration(rVir, rs float64) (float64, error) {
	if rVir <= 0 || rs <= 0 {
		return 0, fmt.Errorf("profile: invalid radii rVir=%g rs=%g", rVir, rs)
	}
	return rVir / rs, nil
}

// SampleNFW generates n particle radii following an NFW profile with the
// given scale radius, truncated at rMax, using inverse-transform sampling
// of the enclosed-mass function m(r) ∝ ln(1+r/rs) - (r/rs)/(1+r/rs).
// The uniform variates are supplied by rand01 (pass rng.Float64).
func SampleNFW(n int, rs, rMax float64, rand01 func() float64) []float64 {
	mEnc := func(r float64) float64 {
		q := r / rs
		return math.Log(1+q) - q/(1+q)
	}
	total := mEnc(rMax)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		target := rand01() * total
		// Bisection on the monotone enclosed-mass function.
		lo, hi := 0.0, rMax
		for iter := 0; iter < 60; iter++ {
			mid := (lo + hi) / 2
			if mEnc(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		out[i] = (lo + hi) / 2
	}
	return out
}
