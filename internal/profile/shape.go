package profile

import (
	"fmt"
	"math"
)

// Shape describes a halo's triaxial shape from its mass-distribution
// inertia tensor: the sorted axis lengths a >= b >= c and the standard
// axis ratios. Halo shapes are among the Level 3 properties the paper's
// pipeline exists to produce ("properties of halos, including halo
// centers, shapes, and subhalo populations", §3).
type Shape struct {
	// A, B, C are the principal semi-axis lengths (rms, descending).
	A, B, C float64
	// BA = b/a and CA = c/a are the conventional shape ratios
	// (1,1 = sphere; CA << 1 = pancake; BA ≈ CA << 1 = filament).
	BA, CA float64
}

// MeasureShape computes the shape of the member distribution about the
// given center via the second-moment tensor's eigenvalues.
func MeasureShape(x, y, z []float64, cx, cy, cz float64) (Shape, error) {
	n := len(x)
	if len(y) != n || len(z) != n {
		return Shape{}, fmt.Errorf("profile: coordinate lengths differ")
	}
	if n < 4 {
		return Shape{}, fmt.Errorf("profile: need >= 4 particles for a shape, got %d", n)
	}
	// Second-moment tensor M_ij = <d_i d_j>.
	var m [3][3]float64
	for i := 0; i < n; i++ {
		d := [3]float64{x[i] - cx, y[i] - cy, z[i] - cz}
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				m[a][b] += d[a] * d[b]
			}
		}
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			m[a][b] /= float64(n)
		}
	}
	ev, err := jacobiEigenvalues(m)
	if err != nil {
		return Shape{}, err
	}
	// Descending; eigenvalues are squared axis lengths.
	if ev[0] < ev[1] {
		ev[0], ev[1] = ev[1], ev[0]
	}
	if ev[1] < ev[2] {
		ev[1], ev[2] = ev[2], ev[1]
	}
	if ev[0] < ev[1] {
		ev[0], ev[1] = ev[1], ev[0]
	}
	for i, v := range ev {
		if v < 0 {
			if v > -1e-12 {
				ev[i] = 0
			} else {
				return Shape{}, fmt.Errorf("profile: negative moment eigenvalue %g", v)
			}
		}
	}
	s := Shape{A: math.Sqrt(ev[0]), B: math.Sqrt(ev[1]), C: math.Sqrt(ev[2])}
	if s.A == 0 {
		return Shape{}, fmt.Errorf("profile: degenerate (point) distribution")
	}
	s.BA = s.B / s.A
	s.CA = s.C / s.A
	return s, nil
}

// jacobiEigenvalues diagonalizes a symmetric 3x3 matrix with cyclic Jacobi
// rotations, returning the eigenvalues (unsorted).
func jacobiEigenvalues(m [3][3]float64) ([3]float64, error) {
	a := m
	for sweep := 0; sweep < 64; sweep++ {
		// Off-diagonal magnitude.
		off := math.Abs(a[0][1]) + math.Abs(a[0][2]) + math.Abs(a[1][2])
		if off < 1e-14*(math.Abs(a[0][0])+math.Abs(a[1][1])+math.Abs(a[2][2])+1e-300) {
			return [3]float64{a[0][0], a[1][1], a[2][2]}, nil
		}
		for p := 0; p < 2; p++ {
			for q := p + 1; q < 3; q++ {
				if a[p][q] == 0 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply rotation R(p,q) on both sides.
				var r [3][3]float64
				for i := 0; i < 3; i++ {
					r[i][i] = 1
				}
				r[p][p], r[q][q] = c, c
				r[p][q], r[q][p] = s, -s
				a = matMul(matMul(transpose(r), a), r)
			}
		}
	}
	return [3]float64{a[0][0], a[1][1], a[2][2]}, nil
}

func matMul(a, b [3][3]float64) [3][3]float64 {
	var out [3][3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 3; k++ {
				out[i][j] += a[i][k] * b[k][j]
			}
		}
	}
	return out
}

func transpose(a [3][3]float64) [3][3]float64 {
	var out [3][3]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			out[i][j] = a[j][i]
		}
	}
	return out
}

// VelocityDispersion returns the 1-D velocity dispersion of the members:
// sigma = sqrt(<|v - <v>|²> / 3).
func VelocityDispersion(vx, vy, vz []float64) (float64, error) {
	n := len(vx)
	if len(vy) != n || len(vz) != n {
		return 0, fmt.Errorf("profile: velocity lengths differ")
	}
	if n < 2 {
		return 0, fmt.Errorf("profile: need >= 2 particles for a dispersion")
	}
	var mx, my, mz float64
	for i := 0; i < n; i++ {
		mx += vx[i]
		my += vy[i]
		mz += vz[i]
	}
	fn := float64(n)
	mx /= fn
	my /= fn
	mz /= fn
	var s2 float64
	for i := 0; i < n; i++ {
		dx, dy, dz := vx[i]-mx, vy[i]-my, vz[i]-mz
		s2 += dx*dx + dy*dy + dz*dz
	}
	return math.Sqrt(s2 / fn / 3), nil
}
