package profile

import (
	"math"
	"math/rand"
	"testing"
)

// ellipsoid samples n points uniformly inside an axis-aligned ellipsoid
// with semi-axes (a, b, c), optionally rotated 45° in the x-y plane.
func ellipsoid(n int, a, b, c float64, rotate bool, seed int64) (x, y, z []float64) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	for i := 0; i < n; i++ {
		for {
			u, v, w := 2*rng.Float64()-1, 2*rng.Float64()-1, 2*rng.Float64()-1
			if u*u+v*v+w*w <= 1 {
				px, py, pz := a*u, b*v, c*w
				if rotate {
					s := math.Sqrt2 / 2
					px, py = s*px-s*py, s*px+s*py
				}
				x[i], y[i], z[i] = px, py, pz
				break
			}
		}
	}
	return
}

func TestMeasureShapeValidation(t *testing.T) {
	if _, err := MeasureShape([]float64{1}, []float64{1, 2}, []float64{1}, 0, 0, 0); err == nil {
		t.Error("expected length error")
	}
	s3 := []float64{1, 2, 3}
	if _, err := MeasureShape(s3, s3, s3, 0, 0, 0); err == nil {
		t.Error("expected too-few error")
	}
	pt := []float64{1, 1, 1, 1}
	if _, err := MeasureShape(pt, pt, pt, 1, 1, 1); err == nil {
		t.Error("expected degenerate error")
	}
}

func TestShapeOfSphere(t *testing.T) {
	x, y, z := ellipsoid(20000, 2, 2, 2, false, 1)
	s, err := MeasureShape(x, y, z, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.BA < 0.97 || s.CA < 0.97 {
		t.Errorf("sphere ratios = %v / %v, want ~1", s.BA, s.CA)
	}
	// rms of a uniform ball of radius R along one axis is R/sqrt(5).
	want := 2.0 / math.Sqrt(5)
	if math.Abs(s.A-want)/want > 0.05 {
		t.Errorf("A = %v, want %v", s.A, want)
	}
}

func TestShapeOfTriaxialEllipsoid(t *testing.T) {
	// Axes 4 : 2 : 1.
	x, y, z := ellipsoid(40000, 4, 2, 1, false, 2)
	s, err := MeasureShape(x, y, z, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.BA-0.5) > 0.05 {
		t.Errorf("b/a = %v, want 0.5", s.BA)
	}
	if math.Abs(s.CA-0.25) > 0.05 {
		t.Errorf("c/a = %v, want 0.25", s.CA)
	}
}

// The shape must be rotation invariant: a rotated ellipsoid gives the same
// axis ratios.
func TestShapeRotationInvariant(t *testing.T) {
	x, y, z := ellipsoid(40000, 4, 2, 1, true, 3)
	s, err := MeasureShape(x, y, z, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.BA-0.5) > 0.05 || math.Abs(s.CA-0.25) > 0.05 {
		t.Errorf("rotated ratios = %v / %v, want 0.5 / 0.25", s.BA, s.CA)
	}
}

func TestShapeOrdering(t *testing.T) {
	x, y, z := ellipsoid(5000, 1, 3, 2, false, 4) // deliberately unsorted axes
	s, err := MeasureShape(x, y, z, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !(s.A >= s.B && s.B >= s.C) {
		t.Errorf("axes not sorted: %v >= %v >= %v", s.A, s.B, s.C)
	}
	if s.BA > 1 || s.CA > 1 || s.CA > s.BA {
		t.Errorf("ratios inconsistent: %v %v", s.BA, s.CA)
	}
}

func TestVelocityDispersion(t *testing.T) {
	if _, err := VelocityDispersion([]float64{1}, []float64{1}, []float64{1}); err == nil {
		t.Error("expected too-few error")
	}
	if _, err := VelocityDispersion([]float64{1, 2}, []float64{1}, []float64{1, 2}); err == nil {
		t.Error("expected length error")
	}
	// Bulk motion must not contribute.
	rng := rand.New(rand.NewSource(5))
	n := 50000
	vx := make([]float64, n)
	vy := make([]float64, n)
	vz := make([]float64, n)
	for i := 0; i < n; i++ {
		vx[i] = 100 + rng.NormFloat64()*3
		vy[i] = -50 + rng.NormFloat64()*3
		vz[i] = 7 + rng.NormFloat64()*3
	}
	sigma, err := VelocityDispersion(vx, vy, vz)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sigma-3) > 0.1 {
		t.Errorf("sigma = %v, want 3", sigma)
	}
}
