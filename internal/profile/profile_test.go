package profile

import (
	"math"
	"math/rand"
	"testing"
)

// nfwCloud builds a 3-D NFW-distributed particle cloud centred at c.
func nfwCloud(n int, rs, rMax float64, cx, cy, cz float64, seed int64) (x, y, z []float64) {
	rng := rand.New(rand.NewSource(seed))
	radii := SampleNFW(n, rs, rMax, rng.Float64)
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	for i, r := range radii {
		theta := math.Acos(2*rng.Float64() - 1)
		phi := 2 * math.Pi * rng.Float64()
		x[i] = cx + r*math.Sin(theta)*math.Cos(phi)
		y[i] = cy + r*math.Sin(theta)*math.Sin(phi)
		z[i] = cz + r*math.Cos(theta)
	}
	return
}

func TestOptionsValidation(t *testing.T) {
	x := []float64{1}
	bad := []Options{
		{ParticleMass: 0, RMin: 0.1, RMax: 1, Bins: 8},
		{ParticleMass: 1, RMin: 0, RMax: 1, Bins: 8},
		{ParticleMass: 1, RMin: 1, RMax: 0.5, Bins: 8},
		{ParticleMass: 1, RMin: 0.1, RMax: 1, Bins: 0},
	}
	for i, o := range bad {
		if _, err := Measure(x, x, x, 0, 0, 0, o); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMeasureCountsAndMass(t *testing.T) {
	// Two shells of known occupancy.
	var x, y, z []float64
	add := func(r float64, n int) {
		for i := 0; i < n; i++ {
			phi := 2 * math.Pi * float64(i) / float64(n)
			x = append(x, r*math.Cos(phi))
			y = append(y, r*math.Sin(phi))
			z = append(z, 0)
		}
	}
	add(0.05, 3) // inside RMin: enclosed only
	add(0.3, 10) // first decade bin [0.1, 1)
	add(3.0, 20) // second decade bin [1, 10)
	add(50.0, 5) // outside RMax: ignored
	o := Options{ParticleMass: 2, RMin: 0.1, RMax: 10, Bins: 2}
	p, err := Measure(x, y, z, 0, 0, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	if p.Count[0] != 10 || p.Count[1] != 20 {
		t.Errorf("counts = %v", p.Count)
	}
	if p.MEnclosed[0] != 26 { // (3+10)*2
		t.Errorf("MEnclosed[0] = %v", p.MEnclosed[0])
	}
	if p.MEnclosed[1] != 66 { // (3+10+20)*2
		t.Errorf("MEnclosed[1] = %v", p.MEnclosed[1])
	}
	// Density = count*mass/shell volume.
	vol0 := 4.0 / 3.0 * math.Pi * (1 - 0.001)
	if math.Abs(p.Rho[0]-20/vol0) > 1e-9 {
		t.Errorf("rho[0] = %v, want %v", p.Rho[0], 20/vol0)
	}
}

func TestNFWShape(t *testing.T) {
	if NFW(0, 1, 1) != 0 || NFW(1, 1, 0) != 0 {
		t.Error("degenerate NFW should be 0")
	}
	// At r = rs: rho0/4.
	if v := NFW(2, 8, 2); math.Abs(v-2) > 1e-12 {
		t.Errorf("NFW(rs) = %v, want rho0/4", v)
	}
	// Slope approaches -1 inside, -3 outside.
	inner := math.Log(NFW(0.02, 1, 1)/NFW(0.01, 1, 1)) / math.Log(2)
	outer := math.Log(NFW(200, 1, 1)/NFW(100, 1, 1)) / math.Log(2)
	if math.Abs(inner+1) > 0.1 {
		t.Errorf("inner slope = %v, want -1", inner)
	}
	if math.Abs(outer+3) > 0.1 {
		t.Errorf("outer slope = %v, want -3", outer)
	}
}

func TestSampleNFWEnclosedMass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	rs, rMax := 1.0, 10.0
	radii := SampleNFW(20000, rs, rMax, rng.Float64)
	// Fraction inside rs should match m(rs)/m(rMax).
	mEnc := func(r float64) float64 {
		q := r / rs
		return math.Log(1+q) - q/(1+q)
	}
	want := mEnc(rs) / mEnc(rMax)
	got := 0.0
	for _, r := range radii {
		if r > rMax {
			t.Fatalf("sample %v beyond rMax", r)
		}
		if r < rs {
			got++
		}
	}
	got /= float64(len(radii))
	if math.Abs(got-want) > 0.02 {
		t.Errorf("fraction inside rs = %v, want %v", got, want)
	}
}

// Fitting a profile measured from an NFW sample must recover rs.
func TestFitNFWRecoversScaleRadius(t *testing.T) {
	rs := 0.5
	x, y, z := nfwCloud(30000, rs, 5, 0, 0, 0, 2)
	p, err := Measure(x, y, z, 0, 0, 0, Options{ParticleMass: 1, RMin: 0.05, RMax: 5, Bins: 16})
	if err != nil {
		t.Fatal(err)
	}
	_, fitRs, resid, err := p.FitNFW()
	if err != nil {
		t.Fatal(err)
	}
	if fitRs < rs/1.5 || fitRs > rs*1.5 {
		t.Errorf("fit rs = %v, want ~%v (residual %v)", fitRs, rs, resid)
	}
	if resid > 0.5 {
		t.Errorf("fit residual = %v", resid)
	}
}

func TestFitNFWNeedsBins(t *testing.T) {
	p := &Profile{REdges: []float64{0.1, 1, 10}, Rho: []float64{0, 0}, Count: []int{0, 0}}
	if _, _, _, err := p.FitNFW(); err == nil {
		t.Error("expected error for empty profile")
	}
}

func TestConcentration(t *testing.T) {
	c, err := Concentration(10, 2)
	if err != nil || c != 5 {
		t.Errorf("c = %v, %v", c, err)
	}
	if _, err := Concentration(0, 1); err == nil {
		t.Error("expected error")
	}
}

// The paper's claim (§3.3.2): "if the center is not exactly at the density
// maximum, the concentration will be underestimated." Measure the same NFW
// halo around its true center and around an offset center: the offset fit
// must yield a larger rs (i.e. smaller concentration).
func TestOffsetCenterUnderestimatesConcentration(t *testing.T) {
	rs := 0.5
	rVir := 5.0
	x, y, z := nfwCloud(30000, rs, rVir, 0, 0, 0, 3)
	o := Options{ParticleMass: 1, RMin: 0.05, RMax: rVir, Bins: 16}

	pTrue, err := Measure(x, y, z, 0, 0, 0, o)
	if err != nil {
		t.Fatal(err)
	}
	_, rsTrue, _, err := pTrue.FitNFW()
	if err != nil {
		t.Fatal(err)
	}
	cTrue, err := Concentration(rVir, rsTrue)
	if err != nil {
		t.Fatal(err)
	}

	pOff, err := Measure(x, y, z, 0.6, 0, 0, o) // offset by ~rs
	if err != nil {
		t.Fatal(err)
	}
	_, rsOff, _, err := pOff.FitNFW()
	if err != nil {
		t.Fatal(err)
	}
	cOff, err := Concentration(rVir, rsOff)
	if err != nil {
		t.Fatal(err)
	}
	if cOff >= cTrue {
		t.Errorf("offset center concentration %v >= true-center %v; the paper says it must be underestimated", cOff, cTrue)
	}
	t.Logf("concentration: true center %.2f, offset center %.2f", cTrue, cOff)
}
