package supervise

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed passes every request (healthy).
	BreakerClosed BreakerState = iota
	// BreakerOpen refuses every request until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen passes exactly one probe; its outcome closes or
	// reopens the breaker.
	BreakerHalfOpen
)

// String names the state for reports.
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Breaker is a circuit breaker for the co-scheduling listener's submit
// path: repeated transient submit refusals (an overloaded batch front-end)
// open the breaker so the listener backs off instead of hot-looping, and a
// half-open probe rediscovers the front-end when it recovers. Cooldowns
// double on consecutive reopenings up to MaxCooldown.
//
// The breaker runs on virtual time through the Now func and is used only
// from single-threaded DES event callbacks; it needs no locking. A nil
// *Breaker allows everything.
type Breaker struct {
	// FailureThreshold consecutive failures open a closed breaker.
	FailureThreshold int
	// Cooldown is the initial open duration; it doubles per reopen up to
	// MaxCooldown.
	Cooldown    float64
	MaxCooldown float64
	// Now returns the current virtual time.
	Now func() float64

	state       BreakerState
	consecutive int
	openedAt    float64
	curCooldown float64
	probing     bool

	// Opens counts transitions to the open state; Skips counts requests
	// refused while open.
	Opens, Skips int
}

// NewBreaker builds a breaker on the given clock with the listener
// defaults: 3 consecutive failures to open, 60 s initial cooldown, 8x cap.
func NewBreaker(now func() float64) *Breaker {
	return &Breaker{
		FailureThreshold: 3,
		Cooldown:         60,
		MaxCooldown:      480,
		Now:              now,
	}
}

// State returns the breaker's current position, advancing open → half-open
// when the cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	if b.state == BreakerOpen && b.Now != nil && b.Now()-b.openedAt >= b.curCooldown {
		b.state = BreakerHalfOpen
		b.probing = false
	}
	return b.state
}

// Allow reports whether a request may proceed. While open it refuses
// (counting a skip); half-open it passes exactly one probe.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	switch b.State() {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probing {
			b.Skips++
			return false
		}
		b.probing = true
		return true
	default: // open
		b.Skips++
		return false
	}
}

// Success records a successful request: a half-open probe closes the
// breaker and resets the cooldown ladder.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	if b.State() == BreakerHalfOpen {
		b.curCooldown = 0
	}
	b.state = BreakerClosed
	b.consecutive = 0
	b.probing = false
}

// Failure records a failed request: a half-open probe reopens with a
// doubled cooldown; FailureThreshold consecutive failures open a closed
// breaker.
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.consecutive++
	switch b.State() {
	case BreakerHalfOpen:
		b.open(2 * b.curCooldown)
	case BreakerClosed:
		if b.consecutive >= b.FailureThreshold {
			b.open(b.Cooldown)
		}
	}
}

// open transitions to the open state with the given cooldown, clamped to
// [Cooldown, MaxCooldown].
func (b *Breaker) open(cooldown float64) {
	if cooldown < b.Cooldown {
		cooldown = b.Cooldown
	}
	if b.MaxCooldown > 0 && cooldown > b.MaxCooldown {
		cooldown = b.MaxCooldown
	}
	b.state = BreakerOpen
	b.curCooldown = cooldown
	if b.Now != nil {
		b.openedAt = b.Now()
	}
	b.probing = false
	b.Opens++
}
