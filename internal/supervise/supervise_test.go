package supervise

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/des"
)

// beatUntil models a job that beats its heart on the interval grid until
// virtual time horizon, then goes silent — the stall signature.
func beatUntil(sim *des.Sim, start, interval, horizon float64) func() float64 {
	return func() float64 {
		now := sim.Now()
		if now > horizon {
			now = horizon
		}
		if now <= start {
			return start
		}
		return start + math.Floor((now-start)/interval)*interval
	}
}

func TestHealthyJobNeverSuspected(t *testing.T) {
	sim := &des.Sim{}
	sv := New(sim, DefaultPolicy())
	var got []Reason
	hb := beatUntil(sim, 0, 30, math.Inf(1))
	sv.Watch("sim#0", 600, hb, func(r Reason) { got = append(got, r) })
	sim.At(600, func() { sv.Done("sim#0") })
	sim.Run()
	if len(got) != 0 {
		t.Errorf("healthy job suspected: %v", got)
	}
	if sv.Watching() != 0 {
		t.Errorf("still watching %d after Done", sv.Watching())
	}
	if sv.Suspects != 0 {
		t.Errorf("Suspects = %d", sv.Suspects)
	}
}

func TestStalledJobSuspectedByHeartbeat(t *testing.T) {
	sim := &des.Sim{}
	sv := New(sim, DefaultPolicy())
	var got []Reason
	var at float64
	// Beats stop at t=300; the job never completes.
	sv.Watch("sim#0", 10000, beatUntil(sim, 0, 30, 300), func(r Reason) {
		got = append(got, r)
		at = sim.Now()
	})
	sim.Run()
	if len(got) != 1 || got[0] != ReasonHeartbeatMissed {
		t.Fatalf("reasons = %v, want one heartbeat-missed", got)
	}
	// Suspect within one miss window (90 s) of the last beat, and not before.
	if at < 390 || at > 480 {
		t.Errorf("suspected at t=%v, want within [390, 480]", at)
	}
	if sv.Suspects != 1 {
		t.Errorf("Suspects = %d", sv.Suspects)
	}
}

func TestDeadlineCatchesSlowButBeatingJob(t *testing.T) {
	sim := &des.Sim{}
	sv := New(sim, DefaultPolicy())
	var got []Reason
	// Beats forever but never completes: only the deadline can catch it.
	sv.Watch("sim#0", 100, beatUntil(sim, 0, 30, math.Inf(1)), func(r Reason) { got = append(got, r) })
	sim.RunUntil(2000)
	if len(got) != 1 || got[0] != ReasonDeadlineExceeded {
		t.Fatalf("reasons = %v, want one deadline-exceeded", got)
	}
}

func TestStragglerDetectedAgainstPopulation(t *testing.T) {
	sim := &des.Sim{}
	sv := New(sim, DefaultPolicy())
	// Six peers complete on time, seeding the ratio population.
	for i := 0; i < 6; i++ {
		name := string(rune('a' + i))
		sv.Watch(name, 100, beatUntil(sim, 0, 30, math.Inf(1)), nil)
		sv.Done(name)
	}
	var got []Reason
	var at float64
	// The straggler beats forever; expected 100 s, deadline would fire at
	// 4x100+120 = 520 s, but the straggler test trips at ratio > 3.
	sv.Watch("lag", 100, beatUntil(sim, 0, 30, math.Inf(1)), func(r Reason) {
		got = append(got, r)
		at = sim.Now()
	})
	sim.RunUntil(519)
	if len(got) != 1 || got[0] != ReasonStraggler {
		t.Fatalf("reasons = %v, want one straggler before the deadline", got)
	}
	if at <= 300 || at >= 520 {
		t.Errorf("straggler declared at t=%v, want in (300, 520)", at)
	}
}

func TestDoneAndForgetDisarmPendingEvents(t *testing.T) {
	sim := &des.Sim{}
	sv := New(sim, DefaultPolicy())
	fired := 0
	sv.Watch("a", 10, nil, func(Reason) { fired++ }) // nil heartbeat: started time stands in
	sv.Done("a")
	sv.Watch("b", 10, nil, func(Reason) { fired++ })
	sv.Forget("b")
	// Re-watching a live name replaces the old watch.
	sv.Watch("c", 10, beatUntil(sim, 0, 30, math.Inf(1)), func(Reason) { fired++ })
	sim.At(1, func() {
		sv.Watch("c", 1e6, beatUntil(sim, 1, 30, math.Inf(1)), nil)
	})
	sim.RunUntil(5000)
	if fired != 0 {
		t.Errorf("%d suspect callbacks fired for resolved/replaced watches", fired)
	}
}

func TestDecisionLogIsDeterministic(t *testing.T) {
	run := func() []Decision {
		sim := &des.Sim{}
		sv := New(sim, DefaultPolicy())
		sv.Watch("sim#0", 500, beatUntil(sim, 0, 30, 200), func(Reason) {
			sv.Note("sim#0", "hedge", "backup launched")
		})
		sv.Watch("post#0", 100, beatUntil(sim, 0, 30, math.Inf(1)), nil)
		sim.At(100, func() { sv.Done("post#0") })
		sim.RunUntil(3000)
		return sv.Decisions()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("decision logs differ:\n%v\n%v", a, b)
	}
	if len(a) == 0 {
		t.Fatal("no decisions recorded")
	}
	var sawSuspect, sawHedge bool
	for _, d := range a {
		if d.Event == "suspect" && strings.Contains(d.Note, string(ReasonHeartbeatMissed)) {
			sawSuspect = true
		}
		if d.Event == "hedge" {
			sawHedge = true
		}
	}
	if !sawSuspect || !sawHedge {
		t.Errorf("log missing suspect/hedge entries: %v", a)
	}
}

func TestNilSupervisorIsInert(t *testing.T) {
	var sv *Supervisor
	sv.Watch("a", 10, nil, nil)
	sv.Done("a")
	sv.Forget("a")
	sv.Note("a", "x", "y")
	if sv.Decisions() != nil || sv.Watching() != 0 {
		t.Error("nil supervisor not inert")
	}
	if sv.Policy() != (Policy{}) {
		t.Error("nil supervisor policy nonzero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p, want float64
	}{{0.5, 5}, {0.95, 10}, {0.05, 1}, {1, 10}} {
		if got := percentile(xs, tc.p); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestBreakerStateMachine(t *testing.T) {
	now := 0.0
	b := NewBreaker(func() float64 { return now })
	// Closed: allows; failures below threshold keep it closed.
	if !b.Allow() {
		t.Fatal("closed breaker refused")
	}
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("opened below threshold")
	}
	// Third consecutive failure opens it.
	b.Failure()
	if b.State() != BreakerOpen || b.Opens != 1 {
		t.Fatalf("state %v opens %d after threshold", b.State(), b.Opens)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed")
	}
	if b.Skips != 1 {
		t.Errorf("Skips = %d", b.Skips)
	}
	// Cooldown elapses: half-open passes exactly one probe.
	now = 60
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after cooldown", b.State())
	}
	if !b.Allow() {
		t.Fatal("half-open refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open allowed a second concurrent probe")
	}
	// Probe fails: reopen with doubled cooldown.
	b.Failure()
	if b.State() != BreakerOpen || b.Opens != 2 {
		t.Fatalf("state %v opens %d after failed probe", b.State(), b.Opens)
	}
	now = 119 // 60 + 59 < doubled 120 s cooldown
	if b.State() != BreakerOpen {
		t.Fatal("reopened breaker half-opened before doubled cooldown")
	}
	now = 180
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	// Probe succeeds: closed, ladder reset.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe", b.State())
	}
	// Reopening after the reset uses the base cooldown again.
	b.Failure()
	b.Failure()
	b.Failure()
	now = 180 + 60
	if b.State() != BreakerHalfOpen {
		t.Error("cooldown ladder not reset by success")
	}
}

func TestBreakerCooldownCap(t *testing.T) {
	now := 0.0
	b := NewBreaker(func() float64 { return now })
	b.Failure()
	b.Failure()
	b.Failure()
	// Fail every probe: cooldown doubles 60, 120, 240, 480, then caps.
	for i := 0; i < 10; i++ {
		now += 1e6 // long past any cooldown
		if !b.Allow() {
			t.Fatalf("probe %d refused", i)
		}
		b.Failure()
		if b.curCooldown > b.MaxCooldown {
			t.Fatalf("cooldown %v above cap %v", b.curCooldown, b.MaxCooldown)
		}
	}
	if b.curCooldown != b.MaxCooldown {
		t.Errorf("cooldown %v never reached cap %v", b.curCooldown, b.MaxCooldown)
	}
}

func TestNilBreakerAllowsEverything(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Error("nil breaker refused")
	}
	b.Success()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Error("nil breaker not closed")
	}
}
