// Package supervise detects gray failures — stalls, slowdowns, stragglers
// — that fail-stop recovery (internal/fault + retry) cannot see. A stalled
// analysis job holds its nodes and never completes; a co-scheduled
// pipeline is throttled by its slowest co-resident component (Do et al.,
// 2022). The supervisor watches jobs through three independent detectors:
//
//   - heartbeats: a job reports its last progress time through a pure
//     function; a watchdog polls it once per miss window (NOT once per
//     beat, which keeps supervision overhead < 3% of the fault-free run).
//   - deadlines: an absolute limit of DeadlineFactor x expected duration
//     plus slack; blowing it declares the job suspect even if it still
//     beats its heart.
//   - stragglers: a relative test against the population — a job whose
//     running/expected ratio exceeds StragglerFactor x the 95th-percentile
//     ratio of completed peers is suspect long before its deadline.
//
// On suspicion the supervisor invokes the job's onSuspect callback exactly
// once; the scheduling layer decides the response (hedge a backup attempt,
// cancel, degrade the step off-line). Every decision is appended to a
// deterministic log: two runs with the same seed produce byte-identical
// logs, the property the resilience tests pin.
//
// All Supervisor methods are nil-receiver safe: a nil supervisor watches
// nothing and costs nothing, so unsupervised runs stay on the exact event
// sequence of the original model.
package supervise

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/obs"
)

// Policy tunes the three gray-failure detectors and the hedging budget.
type Policy struct {
	// HeartbeatInterval is the virtual-time spacing of job progress beats;
	// MissThreshold consecutive missed beats declare the job suspect. The
	// watchdog polls once per miss window (Interval x Threshold), not per
	// beat.
	HeartbeatInterval float64
	MissThreshold     int
	// A job is suspect when it runs past DeadlineFactor x its expected
	// duration plus DeadlineSlack seconds.
	DeadlineFactor float64
	DeadlineSlack  float64
	// A job is a straggler when its running/expected ratio exceeds
	// StragglerFactor x max(1, the StragglerPercentile ratio of completed
	// peers), once at least StragglerMinDone peers have completed.
	StragglerFactor     float64
	StragglerPercentile float64
	StragglerMinDone    int
	// MaxHedges caps backup attempts per job; past it a suspect job is
	// declared lost instead of hedged again.
	MaxHedges int
}

// DefaultPolicy returns the supervision tuning used by the resilience
// studies: 30 s beats, 3 missed beats to suspect, a deadline of 4x
// expected + 2 min, stragglers at 3x the population's p95 ratio after 5
// completions, and at most 2 backup attempts per job.
func DefaultPolicy() Policy {
	return Policy{
		HeartbeatInterval:   30,
		MissThreshold:       3,
		DeadlineFactor:      4,
		DeadlineSlack:       120,
		StragglerFactor:     3,
		StragglerPercentile: 0.95,
		StragglerMinDone:    5,
		MaxHedges:           2,
	}
}

// missWindow is the virtual time without a beat that declares a suspect.
func (p Policy) missWindow() float64 {
	iv := p.HeartbeatInterval
	if iv <= 0 {
		iv = 30
	}
	n := p.MissThreshold
	if n <= 0 {
		n = 3
	}
	return iv * float64(n)
}

// Reason classifies why a watched task was declared suspect.
type Reason string

const (
	// ReasonHeartbeatMissed: no progress beat for MissThreshold intervals
	// — the signature of a stalled job.
	ReasonHeartbeatMissed Reason = "heartbeat-missed"
	// ReasonDeadlineExceeded: running past the absolute per-job deadline.
	ReasonDeadlineExceeded Reason = "deadline-exceeded"
	// ReasonStraggler: running far behind the completed population.
	ReasonStraggler Reason = "straggler"
	// ReasonBackupFailed: a hedged backup attempt died with its retries
	// exhausted, escalating back to the primary.
	ReasonBackupFailed Reason = "backup-failed"
)

// Decision is one entry in the supervisor's deterministic decision log.
type Decision struct {
	// T is the virtual time of the decision.
	T float64
	// Task names the watched task (job name + attempt).
	Task string
	// Event is the decision kind: "watch", "done", "suspect", or a
	// caller-recorded event such as "hedge", "hedge-win", "degrade",
	// "rescue", "lost".
	Event string
	// Note carries the reason or detail.
	Note string
}

// String renders one decision log line.
func (d Decision) String() string {
	return fmt.Sprintf("t=%-9.1f %-10s %-22s %s", d.T, d.Event, d.Task, d.Note)
}

// watch is the supervisor's per-task state.
type watch struct {
	name      string
	expected  float64
	started   float64
	heartbeat func() float64
	onSuspect func(Reason)
	done      bool
	suspected bool
	epoch     int // invalidates queued watchdog/deadline events after Done/Forget
}

// Supervisor watches tasks on one virtual clock. The zero value is not
// usable; build one with New. A nil *Supervisor is valid and inert.
type Supervisor struct {
	sim    *des.Sim
	policy Policy

	tasks      map[string]*watch
	doneRatios []float64 // running/expected ratios of completed tasks
	decisions  []Decision

	// Suspects counts suspicion events; Watched counts Watch calls.
	Suspects int
	Watched  int

	// Obs mirrors every decision-log event into a per-event counter
	// (supervise.<event>); nil disables instrumentation.
	Obs *obs.Observer
}

// New builds a supervisor on the simulation clock. Zero policy fields fall
// back to DefaultPolicy values where a zero would disable the detector.
func New(sim *des.Sim, p Policy) *Supervisor {
	def := DefaultPolicy()
	if p.HeartbeatInterval <= 0 {
		p.HeartbeatInterval = def.HeartbeatInterval
	}
	if p.MissThreshold <= 0 {
		p.MissThreshold = def.MissThreshold
	}
	if p.DeadlineFactor <= 0 {
		p.DeadlineFactor = def.DeadlineFactor
	}
	if p.StragglerFactor <= 0 {
		p.StragglerFactor = def.StragglerFactor
	}
	if p.StragglerPercentile <= 0 || p.StragglerPercentile > 1 {
		p.StragglerPercentile = def.StragglerPercentile
	}
	if p.StragglerMinDone <= 0 {
		p.StragglerMinDone = def.StragglerMinDone
	}
	return &Supervisor{sim: sim, policy: p, tasks: make(map[string]*watch)}
}

// Policy returns the supervisor's resolved policy (zero when nil).
func (sv *Supervisor) Policy() Policy {
	if sv == nil {
		return Policy{}
	}
	return sv.policy
}

// Watch starts supervising a task. expected is its nominal duration;
// heartbeat is a pure function returning the virtual time of the task's
// last progress beat (the watchdog polls it — the task never schedules
// per-beat events); onSuspect fires at most once, on the first detector
// that trips. Re-watching a live name replaces the old watch.
func (sv *Supervisor) Watch(name string, expected float64, heartbeat func() float64, onSuspect func(Reason)) {
	if sv == nil {
		return
	}
	if old, ok := sv.tasks[name]; ok {
		old.epoch++ // orphan any queued events for the replaced watch
	}
	w := &watch{
		name:      name,
		expected:  expected,
		started:   sv.sim.Now(),
		heartbeat: heartbeat,
		onSuspect: onSuspect,
	}
	sv.tasks[name] = w
	sv.Watched++
	sv.record("watch", name, fmt.Sprintf("expected=%.0fs", expected))

	// Absolute deadline: one event, armed at watch time.
	deadline := w.started + sv.policy.DeadlineFactor*expected + sv.policy.DeadlineSlack
	epoch := w.epoch
	sv.sim.At(deadline, func() {
		if sv.live(name, w, epoch) {
			sv.suspect(w, ReasonDeadlineExceeded,
				fmt.Sprintf("ran %.0fs > %.0fs deadline", sv.sim.Now()-w.started, deadline-w.started))
		}
	})

	// Watchdog: poll the heartbeat once per miss window.
	sv.sim.At(w.started+sv.policy.missWindow(), func() { sv.check(name, w, epoch) })
}

// live reports whether the watch is still the active, unresolved watch for
// the name and the queued event's epoch is current.
func (sv *Supervisor) live(name string, w *watch, epoch int) bool {
	cur, ok := sv.tasks[name]
	return ok && cur == w && w.epoch == epoch && !w.done && !w.suspected
}

// check is one watchdog poll: verify the heartbeat is fresh, run the
// straggler test, and reschedule for the next possible miss time.
func (sv *Supervisor) check(name string, w *watch, epoch int) {
	if !sv.live(name, w, epoch) {
		return
	}
	now := sv.sim.Now()
	window := sv.policy.missWindow()
	last := w.started
	if w.heartbeat != nil {
		last = w.heartbeat()
	}
	if now-last >= window {
		sv.suspect(w, ReasonHeartbeatMissed,
			fmt.Sprintf("no beat for %.0fs (window %.0fs)", now-last, window))
		return
	}
	if reason, note, ok := sv.stragglerTest(w, now); ok {
		sv.suspect(w, reason, note)
		return
	}
	// Next possible miss: one window after the freshest beat.
	sv.sim.At(last+window, func() { sv.check(name, w, epoch) })
}

// stragglerTest compares the task's running/expected ratio to the
// completed population.
func (sv *Supervisor) stragglerTest(w *watch, now float64) (Reason, string, bool) {
	if len(sv.doneRatios) < sv.policy.StragglerMinDone || w.expected <= 0 {
		return "", "", false
	}
	ratio := (now - w.started) / w.expected
	p95 := percentile(sv.doneRatios, sv.policy.StragglerPercentile)
	if p95 < 1 {
		p95 = 1
	}
	if ratio > sv.policy.StragglerFactor*p95 {
		return ReasonStraggler,
			fmt.Sprintf("ratio %.2f > %.0fx p%.0f=%.2f of %d done",
				ratio, sv.policy.StragglerFactor, sv.policy.StragglerPercentile*100, p95, len(sv.doneRatios)),
			true
	}
	return "", "", false
}

// suspect fires the task's onSuspect callback exactly once and logs it.
func (sv *Supervisor) suspect(w *watch, r Reason, note string) {
	w.suspected = true
	sv.Suspects++
	sv.record("suspect", w.name, string(r)+": "+note)
	if w.onSuspect != nil {
		w.onSuspect(r)
	}
}

// Done resolves a watched task as completed, feeding its running/expected
// ratio into the straggler population.
func (sv *Supervisor) Done(name string) {
	if sv == nil {
		return
	}
	w, ok := sv.tasks[name]
	if !ok || w.done {
		return
	}
	w.done = true
	w.epoch++
	if w.expected > 0 {
		sv.doneRatios = append(sv.doneRatios, (sv.sim.Now()-w.started)/w.expected)
	}
	delete(sv.tasks, name)
	sv.record("done", name, fmt.Sprintf("after %.0fs", sv.sim.Now()-w.started))
}

// Forget drops a watch without recording a completion ratio (the task was
// cancelled or superseded, not finished).
func (sv *Supervisor) Forget(name string) {
	if sv == nil {
		return
	}
	if w, ok := sv.tasks[name]; ok {
		w.done = true
		w.epoch++
		delete(sv.tasks, name)
	}
}

// Note appends a caller decision (hedge launch, degrade, rescue, ...) to
// the log at the current virtual time.
func (sv *Supervisor) Note(task, event, note string) {
	if sv == nil {
		return
	}
	sv.record(event, task, note)
}

func (sv *Supervisor) record(event, task, note string) {
	sv.decisions = append(sv.decisions, Decision{T: sv.sim.Now(), Task: task, Event: event, Note: note})
	// record is the one choke point every supervision decision flows
	// through, so the metric mirror lives here and nowhere else.
	if sv.Obs != nil {
		sv.Obs.Metrics().Counter("supervise." + event).Inc()
	}
}

// Decisions returns the decision log in event order — deterministic for a
// fixed seed, the reproducibility property the resilience tests pin.
func (sv *Supervisor) Decisions() []Decision {
	if sv == nil {
		return nil
	}
	return sv.decisions
}

// Watching reports the number of currently watched tasks.
func (sv *Supervisor) Watching() int {
	if sv == nil {
		return 0
	}
	return len(sv.tasks)
}

// percentile returns the p-th percentile of xs (nearest-rank on a sorted
// copy). xs must be non-empty.
func percentile(xs []float64, p float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(p*float64(len(s))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
