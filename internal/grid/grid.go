// Package grid provides the uniform grids and Cloud-In-Cell (CIC)
// operations shared by the particle-mesh gravity solver and the in-situ
// power-spectrum analysis.
//
// HACC "uses uniform grids for calculating long-range forces" (§3), and the
// paper's canonical efficient in-situ task — the density fluctuation power
// spectrum — "requires a density estimation on a regular grid via, e.g., a
// Cloud-In-Cell (CIC) algorithm" (§1). The CIC kernel here is the standard
// trilinear assignment: each particle's mass is shared among the eight grid
// cells surrounding it with weights proportional to the overlap of a
// cell-sized cloud centred on the particle.
package grid

import (
	"fmt"
	"math"
)

// Scalar is a flattened n×n×n real-valued periodic field with cell (i,j,k)
// at i*n*n + j*n + k, covering a cubic box of physical side BoxSize.
type Scalar struct {
	N       int
	BoxSize float64
	Data    []float64
}

// NewScalar allocates an n³ field over a box of side boxSize.
func NewScalar(n int, boxSize float64) (*Scalar, error) {
	if n <= 0 {
		return nil, fmt.Errorf("grid: dimension %d must be positive", n)
	}
	if boxSize <= 0 {
		return nil, fmt.Errorf("grid: box size %g must be positive", boxSize)
	}
	return &Scalar{N: n, BoxSize: boxSize, Data: make([]float64, n*n*n)}, nil
}

// CellSize returns the physical side length of one cell.
func (g *Scalar) CellSize() float64 { return g.BoxSize / float64(g.N) }

// Index returns the flat index of cell (i, j, k), already wrapped.
func (g *Scalar) Index(i, j, k int) int { return (i*g.N+j)*g.N + k }

// At returns the value in cell (i, j, k) with periodic wrapping.
func (g *Scalar) At(i, j, k int) float64 {
	return g.Data[g.Index(wrap(i, g.N), wrap(j, g.N), wrap(k, g.N))]
}

// Set assigns cell (i, j, k) with periodic wrapping.
func (g *Scalar) Set(i, j, k int, v float64) {
	g.Data[g.Index(wrap(i, g.N), wrap(j, g.N), wrap(k, g.N))] = v
}

// Fill sets every cell to v.
func (g *Scalar) Fill(v float64) {
	for i := range g.Data {
		g.Data[i] = v
	}
}

// Total returns the sum over all cells.
func (g *Scalar) Total() float64 {
	sum := 0.0
	for _, v := range g.Data {
		sum += v
	}
	return sum
}

// Mean returns the mean cell value.
func (g *Scalar) Mean() float64 { return g.Total() / float64(len(g.Data)) }

func wrap(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// wrapPos folds a coordinate into [0, L).
func wrapPos(x, l float64) float64 {
	x = math.Mod(x, l)
	if x < 0 {
		x += l
	}
	return x
}

// cicWeights computes, for a position x in box units, the lower cell index
// and the pair of 1-D CIC weights along one axis.
func cicWeights(x float64, n int, l float64) (i0, i1 int, w0, w1 float64) {
	cell := float64(n) / l
	// Shift by half a cell so cell centres sit at (i+0.5)*dx.
	u := wrapPos(x, l)*cell - 0.5
	f := math.Floor(u)
	d := u - f
	i0 = wrap(int(f), n)
	i1 = wrap(int(f)+1, n)
	return i0, i1, 1 - d, d
}

// DepositCIC adds mass m at position (x, y, z) using Cloud-In-Cell
// weighting. Positions outside the box are wrapped periodically.
func (g *Scalar) DepositCIC(x, y, z, m float64) {
	i0, i1, wx0, wx1 := cicWeights(x, g.N, g.BoxSize)
	j0, j1, wy0, wy1 := cicWeights(y, g.N, g.BoxSize)
	k0, k1, wz0, wz1 := cicWeights(z, g.N, g.BoxSize)
	g.Data[g.Index(i0, j0, k0)] += m * wx0 * wy0 * wz0
	g.Data[g.Index(i0, j0, k1)] += m * wx0 * wy0 * wz1
	g.Data[g.Index(i0, j1, k0)] += m * wx0 * wy1 * wz0
	g.Data[g.Index(i0, j1, k1)] += m * wx0 * wy1 * wz1
	g.Data[g.Index(i1, j0, k0)] += m * wx1 * wy0 * wz0
	g.Data[g.Index(i1, j0, k1)] += m * wx1 * wy0 * wz1
	g.Data[g.Index(i1, j1, k0)] += m * wx1 * wy1 * wz0
	g.Data[g.Index(i1, j1, k1)] += m * wx1 * wy1 * wz1
}

// InterpolateCIC reads the field at position (x, y, z) with the same CIC
// weighting used for deposits, guaranteeing momentum-conserving force
// interpolation when used with DepositCIC.
func (g *Scalar) InterpolateCIC(x, y, z float64) float64 {
	i0, i1, wx0, wx1 := cicWeights(x, g.N, g.BoxSize)
	j0, j1, wy0, wy1 := cicWeights(y, g.N, g.BoxSize)
	k0, k1, wz0, wz1 := cicWeights(z, g.N, g.BoxSize)
	return g.Data[g.Index(i0, j0, k0)]*wx0*wy0*wz0 +
		g.Data[g.Index(i0, j0, k1)]*wx0*wy0*wz1 +
		g.Data[g.Index(i0, j1, k0)]*wx0*wy1*wz0 +
		g.Data[g.Index(i0, j1, k1)]*wx0*wy1*wz1 +
		g.Data[g.Index(i1, j0, k0)]*wx1*wy0*wz0 +
		g.Data[g.Index(i1, j0, k1)]*wx1*wy0*wz1 +
		g.Data[g.Index(i1, j1, k0)]*wx1*wy1*wz0 +
		g.Data[g.Index(i1, j1, k1)]*wx1*wy1*wz1
}

// ToDensityContrast converts a mass grid into the dimensionless density
// contrast delta = rho/rhoMean - 1. It returns an error when the grid holds
// no mass.
func (g *Scalar) ToDensityContrast() error {
	mean := g.Mean()
	if mean <= 0 {
		return fmt.Errorf("grid: cannot form density contrast of empty grid")
	}
	for i := range g.Data {
		g.Data[i] = g.Data[i]/mean - 1
	}
	return nil
}

// Gradient computes the central-difference gradient component along axis
// (0=x, 1=y, 2=z) into out, with periodic wrapping. out must have the same
// dimension as g.
func (g *Scalar) Gradient(axis int, out *Scalar) error {
	if out.N != g.N {
		return fmt.Errorf("grid: gradient output dimension %d != %d", out.N, g.N)
	}
	if axis < 0 || axis > 2 {
		return fmt.Errorf("grid: invalid axis %d", axis)
	}
	inv2dx := 1 / (2 * g.CellSize())
	n := g.N
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				var plus, minus float64
				switch axis {
				case 0:
					plus, minus = g.At(i+1, j, k), g.At(i-1, j, k)
				case 1:
					plus, minus = g.At(i, j+1, k), g.At(i, j-1, k)
				default:
					plus, minus = g.At(i, j, k+1), g.At(i, j, k-1)
				}
				out.Data[out.Index(i, j, k)] = (plus - minus) * inv2dx
			}
		}
	}
	return nil
}
