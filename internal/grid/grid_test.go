package grid

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewScalarValidation(t *testing.T) {
	if _, err := NewScalar(0, 1); err == nil {
		t.Error("expected error for n=0")
	}
	if _, err := NewScalar(4, 0); err == nil {
		t.Error("expected error for boxSize=0")
	}
	g, err := NewScalar(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Data) != 64 {
		t.Errorf("len = %d", len(g.Data))
	}
	if g.CellSize() != 2.5 {
		t.Errorf("cell size = %v", g.CellSize())
	}
}

func TestAtSetPeriodicWrap(t *testing.T) {
	g, _ := NewScalar(4, 1)
	g.Set(0, 0, 0, 7)
	if g.At(4, -4, 8) != 7 {
		t.Error("periodic wrap failed")
	}
	g.Set(-1, 5, 2, 3)
	if g.At(3, 1, 2) != 3 {
		t.Error("wrapped Set failed")
	}
}

func TestFillTotalMean(t *testing.T) {
	g, _ := NewScalar(2, 1)
	g.Fill(0.5)
	if g.Total() != 4 {
		t.Errorf("total = %v", g.Total())
	}
	if g.Mean() != 0.5 {
		t.Errorf("mean = %v", g.Mean())
	}
}

// CIC must conserve mass exactly regardless of particle position.
func TestDepositCICConservesMass(t *testing.T) {
	g, _ := NewScalar(8, 100)
	rng := rand.New(rand.NewSource(5))
	total := 0.0
	for i := 0; i < 100; i++ {
		m := rng.Float64() + 0.1
		// Include out-of-box positions to exercise wrapping.
		g.DepositCIC(rng.Float64()*300-100, rng.Float64()*300-100, rng.Float64()*300-100, m)
		total += m
	}
	if math.Abs(g.Total()-total) > 1e-9*total {
		t.Errorf("grid total = %v, deposited %v", g.Total(), total)
	}
}

// A particle exactly at a cell centre deposits all mass into that cell.
func TestDepositCICAtCellCentre(t *testing.T) {
	g, _ := NewScalar(4, 4) // cell size 1; centres at 0.5, 1.5, ...
	g.DepositCIC(1.5, 2.5, 3.5, 2.0)
	if v := g.At(1, 2, 3); math.Abs(v-2.0) > 1e-12 {
		t.Errorf("centre cell = %v, want 2", v)
	}
	if math.Abs(g.Total()-2.0) > 1e-12 {
		t.Errorf("total = %v", g.Total())
	}
}

// A particle midway between two centres splits mass 50/50 along that axis.
func TestDepositCICSplitsAtCellEdge(t *testing.T) {
	g, _ := NewScalar(4, 4)
	g.DepositCIC(2.0, 0.5, 0.5, 1.0) // x=2.0 is the edge between cells 1 and 2
	v1 := g.At(1, 0, 0)
	v2 := g.At(2, 0, 0)
	if math.Abs(v1-0.5) > 1e-12 || math.Abs(v2-0.5) > 1e-12 {
		t.Errorf("split = %v, %v, want 0.5, 0.5", v1, v2)
	}
}

// Interpolating a constant field returns the constant anywhere.
func TestInterpolateCICConstantField(t *testing.T) {
	g, _ := NewScalar(8, 10)
	g.Fill(3.25)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		x, y, z := rng.Float64()*10, rng.Float64()*10, rng.Float64()*10
		if v := g.InterpolateCIC(x, y, z); math.Abs(v-3.25) > 1e-12 {
			t.Fatalf("interp(%v,%v,%v) = %v", x, y, z, v)
		}
	}
}

// Interpolating a linear ramp field is exact at interior points (CIC is
// trilinear).
func TestInterpolateCICLinearField(t *testing.T) {
	g, _ := NewScalar(16, 16)
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			for k := 0; k < 16; k++ {
				g.Set(i, j, k, float64(i)) // value = x-index
			}
		}
	}
	// At x=5.5 (boundary-safe interior), value should be exactly 5.0 since
	// cell centres are at 5.5 -> index 5.
	if v := g.InterpolateCIC(5.5, 8.0, 8.0); math.Abs(v-5.0) > 1e-12 {
		t.Errorf("interp = %v, want 5", v)
	}
	// Halfway between cell centres 5.5 and 6.5 -> 5.5.
	if v := g.InterpolateCIC(6.0, 8.0, 8.0); math.Abs(v-5.5) > 1e-12 {
		t.Errorf("interp = %v, want 5.5", v)
	}
}

func TestToDensityContrast(t *testing.T) {
	g, _ := NewScalar(2, 1)
	g.Fill(2)
	g.Data[0] = 6
	if err := g.ToDensityContrast(); err != nil {
		t.Fatal(err)
	}
	// Mean was (6+7*2)/8 = 2.5
	if math.Abs(g.Data[0]-(6/2.5-1)) > 1e-12 {
		t.Errorf("delta[0] = %v", g.Data[0])
	}
	// Mean of delta must be 0.
	if math.Abs(g.Mean()) > 1e-12 {
		t.Errorf("mean delta = %v", g.Mean())
	}
	empty, _ := NewScalar(2, 1)
	if err := empty.ToDensityContrast(); err == nil {
		t.Error("expected error for empty grid")
	}
}

func TestGradientOfLinearRamp(t *testing.T) {
	n := 8
	g, _ := NewScalar(n, float64(n)) // cell size 1
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				g.Set(i, j, k, float64(j)*2) // df/dy = 2 in interior
			}
		}
	}
	out, _ := NewScalar(n, float64(n))
	if err := g.Gradient(1, out); err != nil {
		t.Fatal(err)
	}
	// Interior cells have exact gradient 2; wrap cells (j=0, j=n-1) differ.
	for j := 1; j < n-1; j++ {
		if v := out.At(4, j, 4); math.Abs(v-2) > 1e-12 {
			t.Errorf("grad y at j=%d: %v, want 2", j, v)
		}
	}
}

func TestGradientValidation(t *testing.T) {
	g, _ := NewScalar(4, 1)
	small, _ := NewScalar(2, 1)
	if err := g.Gradient(0, small); err == nil {
		t.Error("expected dimension error")
	}
	out, _ := NewScalar(4, 1)
	if err := g.Gradient(3, out); err == nil {
		t.Error("expected axis error")
	}
}

// Property: deposit + interpolate of a sinusoid agrees within second-order
// accuracy as the grid refines.
func TestCICConvergence(t *testing.T) {
	f := func(x float64) float64 { return math.Sin(2 * math.Pi * x / 10) }
	var errs []float64
	for _, n := range []int{16, 32} {
		g, _ := NewScalar(n, 10)
		for i := 0; i < n; i++ {
			x := (float64(i) + 0.5) * g.CellSize()
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					g.Set(i, j, k, f(x))
				}
			}
		}
		maxErr := 0.0
		for s := 0; s < 100; s++ {
			x := float64(s) / 100 * 10
			if e := math.Abs(g.InterpolateCIC(x, 5, 5) - f(x)); e > maxErr {
				maxErr = e
			}
		}
		errs = append(errs, maxErr)
	}
	if errs[1] > errs[0]/2.5 {
		t.Errorf("CIC interpolation not converging ~2nd order: %v", errs)
	}
}

// Property: mass conservation holds for arbitrary positions and masses.
func TestPropertyDepositConservesMass(t *testing.T) {
	f := func(xs [6]float64, masses [2]uint8) bool {
		g, _ := NewScalar(4, 7)
		want := 0.0
		for p := 0; p < 2; p++ {
			m := float64(masses[p]) + 1
			x := math.Mod(xs[3*p], 1e6)
			y := math.Mod(xs[3*p+1], 1e6)
			z := math.Mod(xs[3*p+2], 1e6)
			if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) {
				return true
			}
			g.DepositCIC(x, y, z, m)
			want += m
		}
		return math.Abs(g.Total()-want) < 1e-9*want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestScalarSerializationRoundTrip(t *testing.T) {
	g, _ := NewScalar(8, 25)
	rng := rand.New(rand.NewSource(8))
	for i := range g.Data {
		g.Data[i] = rng.NormFloat64()
	}
	var buf bytes.Buffer
	if err := g.WriteField(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScalar(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 8 || got.BoxSize != 25 {
		t.Errorf("header = %d/%v", got.N, got.BoxSize)
	}
	for i := range g.Data {
		if got.Data[i] != g.Data[i] {
			t.Fatalf("cell %d not bit-identical", i)
		}
	}
}

func TestScalarSerializationCorruption(t *testing.T) {
	g, _ := NewScalar(4, 10)
	g.Data[0] = 3
	var buf bytes.Buffer
	if err := g.WriteField(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[20] ^= 0xFF
	if _, err := ReadScalar(bytes.NewReader(data)); err == nil {
		t.Error("expected checksum error")
	}
	if _, err := ReadScalar(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("expected short-stream error")
	}
	if _, err := ReadScalar(bytes.NewReader(data[:len(data)-8])); err == nil {
		t.Error("expected truncation error")
	}
}
