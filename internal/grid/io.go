package grid

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Binary serialization for scalar fields: density grids are one of the
// paper's Level 2 data products (Table 1 lists "density fields" between
// halo particles and particle subsamples), written by the in-situ layer
// for downstream off-line analysis.

const fieldMagic = "HACCGRID"

// WriteField serializes the field: magic, dimension, box size, float64 cells,
// CRC32 trailer.
func (g *Scalar) WriteField(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString(fieldMagic)
	if err := binary.Write(&buf, binary.LittleEndian, uint32(g.N)); err != nil {
		return err
	}
	if err := binary.Write(&buf, binary.LittleEndian, g.BoxSize); err != nil {
		return err
	}
	if err := binary.Write(&buf, binary.LittleEndian, g.Data); err != nil {
		return err
	}
	payload := buf.Bytes()
	if _, err := w.Write(payload); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, crc32.ChecksumIEEE(payload))
}

// ReadScalar deserializes a field written by WriteField, verifying the
// checksum.
func ReadScalar(r io.Reader) (*Scalar, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("grid: reading field: %w", err)
	}
	if len(data) < len(fieldMagic)+4+8+4 {
		return nil, fmt.Errorf("grid: field stream too short (%d bytes)", len(data))
	}
	payload, trailer := data[:len(data)-4], data[len(data)-4:]
	if got, want := binary.LittleEndian.Uint32(trailer), crc32.ChecksumIEEE(payload); got != want {
		return nil, fmt.Errorf("grid: field checksum mismatch: %08x != %08x", got, want)
	}
	br := bytes.NewReader(payload)
	magic := make([]byte, len(fieldMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != fieldMagic {
		return nil, fmt.Errorf("grid: bad field magic %q", magic)
	}
	var n uint32
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	var box float64
	if err := binary.Read(br, binary.LittleEndian, &box); err != nil {
		return nil, err
	}
	g, err := NewScalar(int(n), box)
	if err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, g.Data); err != nil {
		return nil, fmt.Errorf("grid: field cells: %w", err)
	}
	return g, nil
}
