package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis/cfg"
)

// This file holds the shared value-consumption engine used by the
// flow-sensitive closecheck and errflow rules: given a variable and a
// function CFG, compute at every program point whether the variable's
// current value is read before being overwritten on the way to function
// exit — a backward dataflow ("liveness of this one value"). Two join
// modes: must (read on every path — errflow's bar for a captured write
// error) and may (read on some path — closecheck's bar for a captured
// close error, where the `if err == nil { err = cerr }` idiom
// deliberately reads it on one branch only).

// isNamedResult reports whether obj is one of fc's named result
// variables (a bare `return` then reads it).
func isNamedResult(info *types.Info, fc *FuncCFG, obj types.Object) bool {
	var results *ast.FieldList
	if fc.Decl != nil {
		results = fc.Decl.Type.Results
	} else if fc.Lit != nil {
		results = fc.Lit.Type.Results
	}
	if results == nil {
		return false
	}
	for _, field := range results.List {
		for _, id := range field.Names {
			if info.Defs[id] == obj {
				return true
			}
		}
	}
	return false
}

// nodeReadsWrites classifies one CFG node against obj: reads is true if
// the node reads obj's value anywhere (including inside function
// literals — a closure capturing the variable may consume it later);
// writes is true if a top-level assignment overwrites it. Compound
// read-write nodes (err = wrap(err)) count as reads: the previous value
// is consumed before being replaced.
func nodeReadsWrites(info *types.Info, n ast.Node, obj types.Object) (reads, writes bool) {
	// Top-level (non-closure) assignment LHS idents of obj are writes.
	writeIdents := map[*ast.Ident]bool{}
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		as, ok := x.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if info.Defs[id] == obj || info.Uses[id] == obj {
					writeIdents[id] = true
					writes = true
				}
			}
		}
		return true
	})
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && !writeIdents[id] && info.Uses[id] == obj {
			reads = true
		}
		return true
	})
	return reads, writes
}

// consumedAfter returns, for every CFG node of fc, whether obj's value
// immediately after that node executes is read before being overwritten
// on every (must=true) or some (must=false) path to exit.
func consumedAfter(info *types.Info, fc *FuncCFG, obj types.Object, must bool) map[ast.Node]bool {
	named := isNamedResult(info, fc, obj)
	step := func(n ast.Node, state bool) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok && named && len(ret.Results) == 0 {
			return true // bare return in a named-result function reads obj
		}
		reads, writes := nodeReadsWrites(info, n, obj)
		if reads {
			return true
		}
		if writes {
			return false
		}
		return state
	}
	transfer := func(b *cfg.Block, out bool) bool {
		state := out
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			state = step(b.Nodes[i], state)
		}
		return state
	}
	join := func(a, b bool) bool { return a || b }
	if must {
		join = func(a, b bool) bool { return a && b }
	}
	eq := func(a, b bool) bool { return a == b }
	sol := cfg.Backward(fc.G, false, transfer, join, eq)

	after := map[ast.Node]bool{}
	for _, b := range fc.G.Blocks {
		if !b.Live {
			continue
		}
		state, ok := sol.Out[b]
		if !ok {
			continue
		}
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			after[b.Nodes[i]] = state
			state = step(b.Nodes[i], state)
		}
	}
	return after
}

// errNonNilCond reports whether cond is an `x != nil` test of an
// error-typed x — the shape that guards error-path cleanup.
func errNonNilCond(info *types.Info, cond ast.Expr) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "!=" {
		return false
	}
	x, y := ast.Unparen(bin.X), ast.Unparen(bin.Y)
	if isNilIdent(y) {
		return isErrorType(typeOf(info, x))
	}
	if isNilIdent(x) {
		return isErrorType(typeOf(info, y))
	}
	return false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// guardedErrorNodes collects, over one function body, (1) the nodes
// syntactically inside an `if <err> != nil { ... }` body — the
// error-path cleanup region where a bare Close is acceptable — and
// (2) the ReturnStmts that definitely return a non-nil error: returns
// inside such a guard whose results include an error-typed expression
// other than the nil literal. Function literals are excluded (their
// bodies are separate CFGs).
func guardedErrorNodes(info *types.Info, body *ast.BlockStmt) (inGuard, errReturns map[ast.Node]bool) {
	inGuard = map[ast.Node]bool{}
	errReturns = map[ast.Node]bool{}
	bodyNodes(body, func(n ast.Node) {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || !errNonNilCond(info, ifs.Cond) {
			return
		}
		ast.Inspect(ifs.Body, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if x == nil {
				return true
			}
			inGuard[x] = true
			if ret, ok := x.(*ast.ReturnStmt); ok && returnsNonNilError(info, ret) {
				errReturns[ret] = true
			}
			return true
		})
	})
	return inGuard, errReturns
}

// returnsNonNilError reports whether ret's results include an
// error-typed expression that is not the nil literal.
func returnsNonNilError(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		e := ast.Unparen(res)
		if isNilIdent(e) {
			continue
		}
		if isErrorType(typeOf(info, e)) {
			return true
		}
	}
	return false
}
