// Package lint is the workflowlint suite: custom static analyzers that
// enforce the workflow invariants this repository's correctness
// arguments rest on and reviewers previously had to police by hand.
//
// The contract, in one paragraph: restarted runs must be bit-identical
// (so result-producing packages may not consult ambient nondeterminism —
// global RNGs, wall clocks, map iteration order); data products must be
// committed atomically with fsync-before-rename (so a crash can never
// tear a file a resume will trust); write-path Close errors must be
// propagated (a failed flush is data loss, not noise); locks must be
// released on every path and never held across channel operations (the
// in-process MPI mesh deadlocks otherwise); and sentinel errors must be
// matched with errors.Is and wrapped with %w (torn-file salvage keys off
// them).
//
// Each analyzer documents its precise rule. All of them honor
// suppression comments of the form
//
//	//lint:allow <analyzer> <reason>
//
// placed on, or on the line immediately above, the flagged code. A
// reason is required by convention: suppressions are audit points.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzers returns the full workflowlint suite in stable order: the
// five intraprocedural checks from the original gate, the three
// interprocedural analyzers built on the callgraph/facts platform, and
// the flow-sensitive lockorder deadlock analyzer built on the
// CFG/dataflow layer. CallGraph and CtrlFlow are infrastructure, pulled
// in via Requires, and are deliberately not listed.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Nondeterminism,
		AtomicWrite,
		CloseCheck,
		LockDiscipline,
		SentinelWrap,
		MPICollective,
		GoroutineLeak,
		ErrFlow,
		LockOrder,
		DetTaint,
		AllocBound,
		ShareCapture,
	}
}

// deterministicPkgs names the packages whose outputs must be a pure
// function of (inputs, seed): the simulation, analysis, and persistence
// kernel. Matched by package name so fixture packages participate.
var deterministicPkgs = map[string]bool{
	"nbody": true, "ic": true, "halo": true, "center": true,
	"subhalo": true, "so": true, "powerspec": true, "core": true,
	"gio": true, "ckpt": true, "cosmotools": true, "integrity": true,
}

func isDeterministicPkg(pkg *types.Package) bool {
	return pkg != nil && deterministicPkgs[pkg.Name()]
}

// isTestFile reports whether pos lies in a _test.go file. Test-only code
// is exempt from the product-path invariants (tests seed their own RNGs
// and write scratch files freely).
func isTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

var allowRe = regexp.MustCompile(`^//lint:allow\s+([a-z, ]+)`)

// allowedLines maps, for one file, source lines to the analyzer names
// suppressed on them. A //lint:allow comment applies to its own line and
// to the line below it (for comment-above-statement style).
func allowedLines(fset *token.FileSet, f *ast.File, analyzer string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := allowRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			names := strings.FieldsFunc(m[1], func(r rune) bool { return r == ',' || r == ' ' })
			hit := false
			for _, n := range names {
				if n == analyzer || n == "all" {
					hit = true
				}
			}
			if !hit {
				continue
			}
			line := fset.Position(c.Pos()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

// reporter wraps a Pass with //lint:allow suppression: diagnostics on an
// allowed line are swallowed.
type reporter struct {
	pass  *analysis.Pass
	allow map[*ast.File]map[int]bool
}

func newReporter(pass *analysis.Pass) *reporter {
	r := &reporter{pass: pass, allow: map[*ast.File]map[int]bool{}}
	for _, f := range pass.Files {
		r.allow[f] = allowedLines(pass.Fset, f, pass.Analyzer.Name)
	}
	return r
}

func (r *reporter) reportf(pos token.Pos, format string, args ...any) {
	r.report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// report delivers a full diagnostic (suggested fixes included) through
// the same //lint:allow suppression as reportf.
func (r *reporter) report(d analysis.Diagnostic) {
	line := r.pass.Fset.Position(d.Pos).Line
	for f, lines := range r.allow {
		if f.FileStart <= d.Pos && d.Pos < f.FileEnd {
			if lines[line] {
				return
			}
			break
		}
	}
	r.pass.Report(d)
}

// calleeFunc resolves a call expression to the *types.Func it invokes
// (method or function), or nil for indirect/builtin calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name
// (not a method).
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// funcBodies yields every function body in the files — declarations and
// literals, nested literals included as their own entries. Pair with
// bodyNodes, which does not descend into nested literals, so each body
// is scanned exactly once and in its own scope.
func funcBodies(files []*ast.File, visit func(name string, body *ast.BlockStmt)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn.Name.Name, fn.Body)
				}
			case *ast.FuncLit:
				visit("func literal", fn.Body)
			}
			return true
		})
	}
}

// bodyNodes visits the nodes of one function body in preorder, skipping
// nested function literals (funcBodies yields those separately).
func bodyNodes(body *ast.BlockStmt, visit func(n ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// exprString renders a (small) expression back to source, used to key
// lock receivers like "s.mu" or "w.reduceMu".
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[...]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	default:
		return "?"
	}
}

// typeHasMutex reports whether t (after following named types) is or
// contains a sync.Mutex/RWMutex by value, recursively through struct
// fields and arrays.
func typeHasMutex(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "WaitGroup" || obj.Name() == "Cond" || obj.Name() == "Once" || obj.Name() == "Pool") {
			return true
		}
		return typeHasMutex(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if typeHasMutex(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return typeHasMutex(u.Elem(), seen)
	}
	return false
}

// isErrorType reports whether t implements the error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, errorInterface) ||
		types.Implements(types.NewPointer(t), errorInterface)
}

var errorInterface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
