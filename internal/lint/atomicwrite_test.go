package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestAtomicWrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.AtomicWrite,
		"atomicwrite_flagged", "atomicwrite_clean", "atomicwrite_allow")
}
