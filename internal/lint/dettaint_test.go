package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestDetTaint(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.DetTaint,
		"dettaint_flagged", "dettaint_clean", "dettaint_allow", "dettaint_xpkg",
		"dettaint_obs_flagged", "dettaint_obs_clean")
}
