package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestSentinelWrap(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.SentinelWrap,
		"sentinelwrap_flagged", "sentinelwrap_clean", "sentinelwrap_allow")
}

func TestSentinelWrapFix(t *testing.T) {
	analysistest.RunWithFixes(t, analysistest.TestData(), lint.SentinelWrap,
		"sentinelwrap_fix")
}
