// Package analysistest runs analyzers over fixture packages and checks
// their diagnostics against // want comments — a stdlib-only equivalent
// of golang.org/x/tools/go/analysis/analysistest, with the same fixture
// layout (testdata/src/<pkg>/*.go) and expectation syntax:
//
//	rand.Int() // want `global math/rand`
//	bad()      // want "first" "second"
//
// Each // want comment holds one or more Go string literals, each a
// regular expression that must match a diagnostic reported on that line.
// Every diagnostic must be matched by a want, and every want must be
// matched by a diagnostic, else the test fails.
//
// Fixture packages may import the standard library — type-checked from
// GOROOT source (go/importer's "source" compiler), so tests need no
// pre-built export data and no network — and other fixture packages,
// GOPATH-style: `import "mpistub"` resolves to testdata/src/mpistub.
// Fixture dependencies are themselves analyzed first (facts only,
// diagnostics ignored) so cross-package facts flow exactly as they do
// under the real drivers. Analyzer Requires are honored via the shared
// analysis.Execute scheduler.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/lint/analysis"
)

// The source importer re-type-checks stdlib dependencies from GOROOT
// source; share one instance (and its package cache) across every test
// in the binary so each dependency is checked once.
var (
	sharedFset     = token.NewFileSet()
	sharedImporter = importer.ForCompiler(sharedFset, "source", nil)
	importerMu     sync.Mutex
)

// TestData returns the absolute path of the calling test's testdata
// directory, mirroring the upstream helper.
func TestData() string {
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		panic(err)
	}
	return testdata
}

// Run applies an analyzer to each fixture package (a directory name
// under dir/src) and checks the reported diagnostics against the
// fixtures' // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkgdir := filepath.Join(dir, "src", pkg)
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			runOne(t, pkgdir, a)
		})
	}
}

// fixtureImporter resolves fixture-local imports from dir/src (running
// the analyzer over them first so their facts exist) and falls back to
// the shared GOROOT source importer for the standard library.
type fixtureImporter struct {
	dir      string // testdata root
	analyzer *analysis.Analyzer
	store    *analysis.FactStore
	pkgs     map[string]*types.Package
}

func (imp *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := imp.pkgs[path]; ok {
		return pkg, nil
	}
	pkgdir := filepath.Join(imp.dir, "src", path)
	if st, err := os.Stat(pkgdir); err != nil || !st.IsDir() {
		return sharedImporter.Import(path)
	}
	files, err := parseFixtureFiles(pkgdir)
	if err != nil {
		return nil, err
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: imp, Error: func(error) {}}
	pkg, err := conf.Check(path, sharedFset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check fixture dependency %s: %w", path, err)
	}
	// Analyze the dependency for its facts; its diagnostics are not under
	// test here (list the package in Run to test them directly).
	base := &analysis.Pass{Fset: sharedFset, Files: files, Pkg: pkg, TypesInfo: info}
	if err := analysis.Execute([]*analysis.Analyzer{imp.analyzer}, base, imp.store, nil); err != nil {
		return nil, fmt.Errorf("analyzing fixture dependency %s: %w", path, err)
	}
	imp.pkgs[path] = pkg
	return pkg, nil
}

func parseFixtureFiles(pkgdir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		return nil, fmt.Errorf("fixture dir: %w", err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		names = append(names, filepath.Join(pkgdir, e.Name()))
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no fixture files in %s", pkgdir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(sharedFset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse fixture: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// RunWithFixes applies an analyzer to each fixture package like Run
// (// want comments are still enforced), then applies the diagnostics'
// suggested fixes and compares each changed file against its golden
// sibling (<file>.golden). A fixture file with a golden sibling MUST be
// changed by the fixes, so golden files can't silently go stale.
func RunWithFixes(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	for _, pkg := range pkgs {
		pkgdir := filepath.Join(dir, "src", pkg)
		t.Run(pkg, func(t *testing.T) {
			t.Helper()
			diags := runOne(t, pkgdir, a)
			fixed, err := analysis.ApplyFixes(sharedFset, diags, os.ReadFile)
			if err != nil {
				t.Fatalf("applying fixes: %v", err)
			}
			goldens, err := filepath.Glob(filepath.Join(pkgdir, "*.golden"))
			if err != nil {
				t.Fatal(err)
			}
			checked := map[string]bool{}
			for _, golden := range goldens {
				src := strings.TrimSuffix(golden, ".golden")
				wantSrc, err := os.ReadFile(golden)
				if err != nil {
					t.Fatal(err)
				}
				got, ok := fixed[src]
				if !ok {
					t.Errorf("%s: fixes did not change the file, but a golden exists", src)
					continue
				}
				if string(got) != string(wantSrc) {
					t.Errorf("%s: fixed output differs from golden:\n%s",
						src, analysis.Diff(src, wantSrc, got))
				}
				checked[src] = true
			}
			for file := range fixed {
				if !checked[file] {
					t.Errorf("%s: fixes changed the file but no %s.golden exists", file, filepath.Base(file))
				}
			}
		})
	}
}

func runOne(t *testing.T, pkgdir string, a *analysis.Analyzer) []analysis.Diagnostic {
	t.Helper()
	importerMu.Lock()
	defer importerMu.Unlock()
	files, err := parseFixtureFiles(pkgdir)
	if err != nil {
		t.Fatal(err)
	}
	store := analysis.NewFactStore()
	imp := &fixtureImporter{
		dir:      filepath.Dir(filepath.Dir(pkgdir)), // testdata root (pkgdir = testdata/src/<pkg>)
		analyzer: a,
		store:    store,
		pkgs:     map[string]*types.Package{},
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) {}, // collected via the returned error
	}
	pkg, err := conf.Check(files[0].Name.Name, sharedFset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", pkgdir, err)
	}

	var diags []analysis.Diagnostic
	base := &analysis.Pass{Fset: sharedFset, Files: files, Pkg: pkg, TypesInfo: info}
	err = analysis.Execute([]*analysis.Analyzer{a}, base, store,
		func(_ *analysis.Analyzer, d analysis.Diagnostic) { diags = append(diags, d) })
	if err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	wants := collectWants(t, files)
	// Match each diagnostic against an unconsumed want on its line.
	for _, d := range diags {
		posn := sharedFset.Position(d.Pos)
		key := lineKey{filepath.Base(posn.Filename), posn.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.rx.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", posn, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", key.file, key.line, w.rx)
			}
		}
	}
	return diags
}

type lineKey struct {
	file string
	line int
}

type want struct {
	rx   *regexp.Regexp
	used bool
}

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// collectWants parses // want comments into per-line expectations.
func collectWants(t *testing.T, files []*ast.File) map[lineKey][]*want {
	t.Helper()
	wants := map[lineKey][]*want{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				posn := sharedFset.Position(c.Pos())
				key := lineKey{filepath.Base(posn.Filename), posn.Line}
				for _, lit := range splitLiterals(m[1]) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s: bad want literal %s: %v", posn, lit, err)
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", posn, pat, err)
					}
					wants[key] = append(wants[key], &want{rx: rx})
				}
			}
		}
	}
	return wants
}

// splitLiterals slices `"a" "b"`-style want payloads into individual Go
// string/backquote literals.
func splitLiterals(s string) []string {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		quote := s[0]
		if quote != '"' && quote != '`' {
			break
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == quote && (quote == '`' || s[i-1] != '\\') {
				end = i
				break
			}
		}
		if end < 0 {
			break
		}
		out = append(out, s[:end+1])
		s = strings.TrimSpace(s[end+1:])
	}
	if len(out) == 0 {
		// Tolerate a bare pattern with no quotes (not used by our
		// fixtures, but cheap insurance against typos).
		out = append(out, fmt.Sprintf("%q", s))
	}
	return out
}
