package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// MPICollective enforces the SPMD contract every collective in this
// codebase assumes: all ranks of a communicator reach the same
// collectives in the same order. A single rank-dependent Barrier or
// AllReduce is a silent whole-allocation deadlock — the guarded ranks
// wait in the collective while the others never arrive (or arrive in a
// different one). The analyzer is interprocedural: a transitive
// "calls a collective" fact is computed over the call graph and exported
// across package boundaries (through vetx files under go vet), so a
// collective reached through helpers — any number of calls deep, in
// other packages — is still seen under a rank guard.
//
// Collectives are the mpi.Comm methods Barrier, AllReduce*, AllGather,
// AllToAll, Bcast, Gather, and Scatter. A condition is rank-dependent if
// it reads Comm.Rank() (or the rank field inside package mpi), directly
// or through a local variable assigned from it. Four rules:
//
//  1. a collective-reaching call under a rank-dependent `if` with no
//     else is flagged (only the guarded ranks reach it);
//  2. a rank-dependent `if`/`else` whose two arms reach different
//     collective sequences is flagged (identical sequences are fine —
//     the classic "root does extra work, everyone synchronizes" shape);
//  3. a collective-reaching call inside a loop whose condition or range
//     operand is rank-dependent is flagged (ranks disagree on the trip
//     count, so they disagree on the number of collective calls);
//  4. a `return` under a rank-dependent guard with collective-reaching
//     calls later in the function is flagged (the returning ranks skip
//     collectives the rest still enter).
//
// Results of AllReduce*, AllGather, and Bcast are rank-uniform by
// definition and do not carry taint — branching on an AllReduce result
// is the canonical rank-uniform decision.
//
// Rank-dependence is a function-local taint over assignments, and rules
// 1/4 are syntactic over the enclosing function — a collective guarded
// across a function boundary (helper takes a bool computed from Rank())
// is out of scope. Deliberate rank-guarded collectives must carry a
// //lint:allow mpicollective comment with justification.
var MPICollective = &analysis.Analyzer{
	Name:      "mpicollective",
	Doc:       "forbid MPI collectives reachable under rank-dependent control flow (SPMD collective-ordering)",
	Run:       runMPICollective,
	Requires:  []*analysis.Analyzer{CallGraph},
	FactTypes: []analysis.Fact{(*CallsCollective)(nil)},
}

// CallsCollective is the transitive fact: the function (or a function it
// calls, to any depth, across packages) executes these collective
// operations.
type CallsCollective struct {
	Collectives []string // sorted unique mpi.Comm method names
}

func (*CallsCollective) AFact() {}

func init() { analysis.RegisterFactType(&CallsCollective{}) }

// collectiveNames are the mpi.Comm methods that are collectives: every
// rank must call them, in the same order.
var collectiveNames = map[string]bool{
	"Barrier": true, "AllGather": true, "AllToAll": true, "Bcast": true,
	"Gather": true, "Scatter": true,
	"AllReduceFloat64": true, "AllReduceSum": true, "AllReduceMax": true,
	"AllReduceMin": true, "AllReduceSumInt": true,
}

// uniformCollective reports whether the named collective returns the
// same value on every rank by definition: AllReduce* and AllGather
// deliver the full reduction/gather everywhere, Bcast delivers root's
// value everywhere. Their results therefore do NOT carry rank taint,
// even when computed from rank-dependent inputs — branching on an
// AllReduce result is the canonical way to make a rank-uniform
// decision. Gather (nil off-root), Scatter, and AllToAll return
// per-rank values and stay tainting.
func uniformCollective(name string) bool {
	return strings.HasPrefix(name, "AllReduce") || name == "AllGather" || name == "Bcast"
}

// isMPIComm matches *T or T where T is the type Comm declared in a
// package named mpi (name-matched so fixture stubs participate).
func isMPIComm(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Comm" && obj.Pkg() != nil && obj.Pkg().Name() == "mpi"
}

// directCollective returns the collective's method name if fn is one of
// the mpi.Comm collective methods.
func directCollective(fn *types.Func) (string, bool) {
	if fn == nil || !collectiveNames[fn.Name()] {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !isMPIComm(sig.Recv().Type()) {
		return "", false
	}
	return fn.Name(), true
}

func runMPICollective(pass *analysis.Pass) (any, error) {
	cg := pass.ResultOf[CallGraph].(*CallGraphResult)
	r := newReporter(pass)

	// Phase 1: transitive "reaches collectives" sets for every function
	// declared in this package. Seeds are direct collective calls and
	// imported facts on cross-package callees; a fixpoint closes over
	// same-package edges (handles recursion and mutual recursion).
	reaches := map[*types.Func]map[string]bool{}
	calleeSet := func(fn *types.Func) map[string]bool {
		if name, ok := directCollective(fn); ok {
			return map[string]bool{name: true}
		}
		if set, ok := reaches[fn]; ok {
			return set
		}
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			var fact CallsCollective
			if pass.ImportObjectFact(fn, &fact) {
				set := map[string]bool{}
				for _, c := range fact.Collectives {
					set[c] = true
				}
				return set
			}
		}
		return nil
	}
	for _, fn := range cg.Order {
		reaches[fn] = map[string]bool{}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.Order {
			set := reaches[fn]
			for _, edge := range cg.Nodes[fn].Calls {
				for c := range calleeSet(edge.Callee) {
					if !set[c] {
						set[c] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fn := range cg.Order {
		if len(reaches[fn]) > 0 {
			pass.ExportObjectFact(fn, &CallsCollective{Collectives: sortedKeys(reaches[fn])})
		}
	}

	// siteCollectives resolves one call site to the collectives it
	// reaches, and a label for diagnostics.
	siteCollectives := func(call *ast.CallExpr) ([]string, string) {
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return nil, ""
		}
		if name, ok := directCollective(fn); ok {
			return []string{name}, name
		}
		set := calleeSet(fn)
		if len(set) == 0 {
			return nil, ""
		}
		names := sortedKeys(set)
		return names, fmt.Sprintf("%s (reaches %s)", fn.Name(), strings.Join(names, ", "))
	}

	// Phase 2: rank-dependent control flow, per declared function.
	for _, fn := range cg.Order {
		checkRankFlow(pass, r, cg.Nodes[fn].Decl, siteCollectives)
	}
	return nil, nil
}

// isRankField matches a selector for the rank field of mpi.Comm — the
// form the collectives' own implementation package uses.
func isRankField(info *types.Info, sel *ast.SelectorExpr) bool {
	obj, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || obj.Name() != "rank" || !obj.IsField() {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Name() == "mpi"
}

// rankTaint computes the set of local objects derived from Comm.Rank()
// within one function body: a fixpoint over assignments and short
// variable declarations.
func rankTaint(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	isTaintedExpr := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(info, n); fn != nil {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isMPIComm(sig.Recv().Type()) {
						if fn.Name() == "Rank" {
							found = true
						} else if uniformCollective(fn.Name()) {
							// Rank-uniform result: prune so tainted
							// arguments do not taint it.
							return false
						}
					}
				}
			case *ast.SelectorExpr:
				if isRankField(info, n) {
					found = true
				}
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				var rhs ast.Expr
				if len(as.Rhs) == len(as.Lhs) {
					rhs = as.Rhs[i]
				} else if len(as.Rhs) == 1 {
					rhs = as.Rhs[0]
				} else {
					continue
				}
				if !isTaintedExpr(rhs) {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}
	// Close over the map so condition checks can reuse the walker.
	return tainted
}

// checkRankFlow applies rules 1–4 to one function declaration.
func checkRankFlow(pass *analysis.Pass, r *reporter, decl *ast.FuncDecl, siteCollectives func(*ast.CallExpr) ([]string, string)) {
	info := pass.TypesInfo
	tainted := rankTaint(info, decl.Body)

	rankDependent := func(e ast.Expr) bool {
		if e == nil {
			return false
		}
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if fn := calleeFunc(info, n); fn != nil {
					if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && isMPIComm(sig.Recv().Type()) {
						if fn.Name() == "Rank" {
							found = true
						} else if uniformCollective(fn.Name()) {
							// Rank-uniform result: prune so tainted
							// arguments do not taint it.
							return false
						}
					}
				}
			case *ast.SelectorExpr:
				if isRankField(info, n) {
					found = true
				}
			case *ast.Ident:
				if obj := info.Uses[n]; obj != nil && tainted[obj] {
					found = true
				}
			}
			return !found
		})
		return found
	}

	// collectiveSeq flattens the ordered collective "events" under a
	// node: one label per collective-reaching call site.
	var collectiveSeq func(n ast.Node) []string
	collectiveSeq = func(n ast.Node) []string {
		var seq []string
		if n == nil {
			return nil
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if _, label := siteCollectives(call); label != "" {
					seq = append(seq, label)
					return false // the helper's internals are its fact
				}
			}
			return true
		})
		return seq
	}

	// collectiveSites yields each collective-reaching call under n with
	// its label.
	collectiveSites := func(n ast.Node, visit func(call *ast.CallExpr, label string)) {
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if _, label := siteCollectives(call); label != "" {
					visit(call, label)
					return false
				}
			}
			return true
		})
	}

	reported := map[token.Pos]bool{}
	reportOnce := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			r.reportf(pos, format, args...)
		}
	}

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			if !rankDependent(n.Cond) {
				return true
			}
			if n.Else != nil {
				thenSeq, elseSeq := collectiveSeq(n.Body), collectiveSeq(n.Else)
				if len(thenSeq) == 0 && len(elseSeq) == 0 {
					return true
				}
				if !equalSeq(thenSeq, elseSeq) {
					reportOnce(n.Pos(),
						"mismatched collective sequences across rank-dependent branches: then reaches [%s], else reaches [%s]; every rank must execute the same collectives in the same order",
						strings.Join(thenSeq, " "), strings.Join(elseSeq, " "))
				}
				// Matched sequences are the sanctioned shape; either way
				// the arms have been accounted for at this level. Nested
				// rank-dependent flow inside the arms is still visited.
				return true
			}
			collectiveSites(n.Body, func(call *ast.CallExpr, label string) {
				reportOnce(call.Pos(),
					"collective %s under rank-dependent condition with no else: only the guarded ranks reach it, deadlocking the rest",
					label)
			})
			// Rule 4: a guarded return skips any collectives below.
			ast.Inspect(n.Body, func(m ast.Node) bool {
				ret, ok := m.(*ast.ReturnStmt)
				if !ok {
					return true
				}
				var after []string
				collectiveSites(decl.Body, func(call *ast.CallExpr, label string) {
					if call.Pos() > n.End() {
						after = append(after, label)
					}
				})
				if len(after) > 0 {
					reportOnce(ret.Pos(),
						"rank-dependent early return skips collective(s) [%s] later in this function; the returning ranks never arrive",
						strings.Join(after, " "))
				}
				return true
			})
		case *ast.ForStmt:
			if rankDependent(n.Cond) {
				collectiveSites(n.Body, func(call *ast.CallExpr, label string) {
					reportOnce(call.Pos(),
						"collective %s inside a loop with rank-dependent condition: ranks disagree on the trip count and desynchronize",
						label)
				})
			}
		case *ast.RangeStmt:
			if rankDependent(n.X) {
				collectiveSites(n.Body, func(call *ast.CallExpr, label string) {
					reportOnce(call.Pos(),
						"collective %s inside a range over a rank-dependent value: ranks disagree on the trip count and desynchronize",
						label)
				})
			}
		}
		return true
	})
}

func equalSeq(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
