package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/cfg"
)

// ShareCapture flags two racy goroutine-capture shapes around `go
// func() { ... }()` literals:
//
//  1. Loop spawn: a goroutine launched inside a loop writes a captured
//     variable declared *outside* the loop. Every iteration's goroutine
//     writes the same slot concurrently. The idiomatic parallel fill —
//     `s[i] = ...` where the index derives from a per-iteration loop
//     variable (or a closure parameter fed per-iteration) — is allowed
//     for slices and arrays; map writes always race regardless of key.
//  2. Unjoined read: the closure writes a captured variable and the
//     enclosing function accesses it at a point reachable from the go
//     statement with no intervening join — no Wait call, channel
//     operation, or select on any path between spawn and access (CFG
//     reachability, not syntax order).
//
// go.mod says go 1.22, so loop variables are per-iteration: capturing
// `i` itself is fine, which is exactly why this analyzer targets writes
// to *outer* state rather than loop-variable capture per se. Closures
// that synchronize internally (mutex lock, sync/atomic calls, channel
// send/receive) are skipped wholesale — the guard may cover the write,
// and guessing produces noise. Scheduler workers that batch results
// under a lock stay clean; the fork-join compute fills this repo's
// dparallel package exists for stay clean via rule 1's index
// exemption; the drive-by `go logStats()` mutating a shared counter
// does not.
var ShareCapture = &analysis.Analyzer{
	Name:     "sharecapture",
	Doc:      "flag goroutine closures whose captured-variable writes race: loop-shared writes and unjoined post-spawn reads",
	Run:      runShareCapture,
	Requires: []*analysis.Analyzer{CtrlFlow},
}

func runShareCapture(pass *analysis.Pass) (any, error) {
	flow := pass.ResultOf[CtrlFlow].(*CFGResult)
	r := newReporter(pass)
	for _, fc := range flow.Order {
		if isTestFile(pass.Fset, fc.Body.Pos()) {
			continue
		}
		checkShareCapture(pass, r, fc)
	}
	return nil, nil
}

// capturedWrite describes one write inside a goroutine closure to a
// variable declared outside it.
type capturedWrite struct {
	obj types.Object
	pos token.Pos
	// indexed is true for `base[idx] = ...`; index holds the idx
	// expression and mapWrite whether base is a map.
	indexed  bool
	index    ast.Expr
	mapWrite bool
}

func checkShareCapture(pass *analysis.Pass, r *reporter, fc *FuncCFG) {
	// Walk this body without descending into nested literals: a nested
	// literal's own go statements belong to its own FuncCFG. Loop
	// ancestry within this body is tracked on the way down.
	var loops []ast.Stmt
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != fc.Body {
				return false
			}
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			for _, c := range children(n) {
				ast.Inspect(c, walk)
			}
			loops = loops[:len(loops)-1]
			return false
		case *ast.GoStmt:
			lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoLiteral(pass, r, fc, n, lit, append([]ast.Stmt(nil), loops...))
			// Still descend: the literal may itself contain go stmts —
			// but those belong to the literal's FuncCFG, and walk stops
			// at FuncLit anyway.
		}
		return true
	}
	ast.Inspect(fc.Body, walk)
}

// children returns a loop statement's direct sub-nodes (used to
// recurse while keeping the ancestry stack accurate).
func children(n ast.Node) []ast.Node {
	var out []ast.Node
	switch n := n.(type) {
	case *ast.ForStmt:
		for _, c := range []ast.Node{n.Init, n.Cond, n.Post, n.Body} {
			if c != nil {
				out = append(out, c)
			}
		}
	case *ast.RangeStmt:
		for _, c := range []ast.Node{n.Key, n.Value, n.X, n.Body} {
			if c != nil {
				out = append(out, c)
			}
		}
	}
	return out
}

func checkGoLiteral(pass *analysis.Pass, r *reporter, fc *FuncCFG, g *ast.GoStmt, lit *ast.FuncLit, loops []ast.Stmt) {
	info := pass.TypesInfo

	if closureSynchronizes(info, lit) {
		return
	}
	writes := capturedWrites(info, lit)
	if len(writes) == 0 {
		return
	}

	// Rule 1: loop spawn writing state shared across iterations.
	if len(loops) > 0 {
		loop := loops[len(loops)-1]
		for _, w := range writes {
			if w.obj.Pos() >= loop.Pos() && w.obj.Pos() <= loop.End() {
				continue // declared inside the loop: per-iteration state
			}
			if w.indexed && !w.mapWrite && indexIsPerIteration(info, w.index, loop, lit) {
				continue // s[i] = ... parallel fill
			}
			r.reportf(g.Pos(),
				"goroutine launched in a loop writes captured %q declared outside the loop; every iteration's goroutine writes it concurrently — use a per-iteration slot (s[i] = ...), a channel, or a mutex",
				w.obj.Name())
			break // one report per go statement is enough
		}
	}

	// Rule 2: the enclosing function touches a written variable after
	// the spawn with no join in between. One report per variable.
	reported := map[types.Object]bool{}
	for _, w := range writes {
		if reported[w.obj] {
			continue
		}
		if pos, ok := unjoinedAccess(info, fc, g, lit, w.obj); ok {
			reported[w.obj] = true
			r.reportf(pos,
				"%q is accessed here while a goroutine launched at line %d writes it, with no synchronization (Wait, channel, or select) between spawn and access",
				w.obj.Name(), pass.Fset.Position(g.Pos()).Line)
		}
	}
}

// capturedWrites collects writes inside lit to function-local variables
// declared outside it.
func capturedWrites(info *types.Info, lit *ast.FuncLit) []capturedWrite {
	var out []capturedWrite
	captured := func(id *ast.Ident) types.Object {
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return nil
		}
		// Package-level variables are out of scope here (globals have
		// their own discipline); fields and channels likewise.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return nil
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return nil // declared inside the closure (params included)
		}
		return v
	}
	note := func(target ast.Expr, pos token.Pos) {
		switch t := ast.Unparen(target).(type) {
		case *ast.Ident:
			if obj := captured(t); obj != nil {
				out = append(out, capturedWrite{obj: obj, pos: pos})
			}
		case *ast.IndexExpr:
			if base, ok := ast.Unparen(t.X).(*ast.Ident); ok {
				if obj := captured(base); obj != nil {
					isMap := false
					if tv, ok := info.Types[t.X]; ok && tv.Type != nil {
						_, isMap = tv.Type.Underlying().(*types.Map)
					}
					out = append(out, capturedWrite{obj: obj, pos: pos, indexed: true, index: t.Index, mapWrite: isMap})
				}
			}
		case *ast.SelectorExpr:
			if base, ok := ast.Unparen(t.X).(*ast.Ident); ok {
				if obj := captured(base); obj != nil {
					out = append(out, capturedWrite{obj: obj, pos: pos})
				}
			}
		case *ast.StarExpr:
			// *p = ... through a captured pointer: the pointee is
			// outside our aliasing model; stay quiet.
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, l := range n.Lhs {
				note(l, n.Pos())
			}
		case *ast.IncDecStmt:
			note(n.X, n.Pos())
		}
		return true
	})
	return out
}

// indexIsPerIteration reports whether idx mentions a variable declared
// by the loop statement itself or a parameter of the closure (the
// per-iteration value is then passed at the call site).
func indexIsPerIteration(info *types.Info, idx ast.Expr, loop ast.Stmt, lit *ast.FuncLit) bool {
	if idx == nil {
		return false
	}
	perIter := false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return true
		}
		if obj.Pos() >= loop.Pos() && obj.Pos() <= loop.End() && obj.Pos() < lit.Pos() {
			perIter = true // loop-declared variable
		}
		if lit.Type != nil && lit.Type.Params != nil &&
			obj.Pos() >= lit.Type.Params.Pos() && obj.Pos() <= lit.Type.Params.End() {
			perIter = true // closure parameter, fed per call
		}
		return true
	})
	return perIter
}

// closureSynchronizes reports whether the closure body contains its own
// synchronization — mutex/atomic calls or channel operations — in which
// case the write may be guarded and the analyzer stays quiet.
func closureSynchronizes(info *types.Info, lit *ast.FuncLit) bool {
	sync := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			sync = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				sync = true
			}
		case *ast.SelectStmt:
			sync = true
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "RLock", "Add", "Store", "Swap", "CompareAndSwap", "Load":
					// Mutex methods, or sync/atomic value methods. "Add"
					// also matches WaitGroup.Add — harmlessly quiet.
					if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil {
						switch fn.Pkg().Path() {
						case "sync", "sync/atomic":
							sync = true
						}
					} else {
						sync = true // unresolved: assume guarded
					}
				}
			} else if fn := calleeFunc(info, n); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
				sync = true
			}
		}
		return true
	})
	return sync
}

// unjoinedAccess looks for an access to obj reachable from the go
// statement with no join node in between, using the enclosing
// function's CFG. Returns the first such access position in block
// order.
func unjoinedAccess(info *types.Info, fc *FuncCFG, g *ast.GoStmt, lit *ast.FuncLit, obj types.Object) (token.Pos, bool) {
	// Locate the go statement's block and offset.
	var start *cfg.Block
	startIdx := -1
	for _, b := range fc.G.Blocks {
		if !b.Live {
			continue
		}
		for i, n := range b.Nodes {
			if n == g {
				start, startIdx = b, i
				break
			}
		}
		if start != nil {
			break
		}
	}
	if start == nil {
		return token.NoPos, false
	}

	accessIn := func(n ast.Node) (token.Pos, bool) {
		found := token.NoPos
		ast.Inspect(n, func(m ast.Node) bool {
			if found != token.NoPos {
				return false
			}
			// The spawning statement itself (and its closure) is not a
			// post-spawn access.
			if m == g || m == lit {
				return false
			}
			if id, ok := m.(*ast.Ident); ok {
				if o := info.Uses[id]; o == obj {
					found = id.Pos()
					return false
				}
			}
			return true
		})
		return found, found != token.NoPos
	}

	type item struct {
		b    *cfg.Block
		from int
	}
	seen := map[*cfg.Block]bool{}
	queue := []item{{start, startIdx + 1}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		joined := false
		for i := it.from; i < len(it.b.Nodes) && !joined; i++ {
			n := it.b.Nodes[i]
			// Join checked first: a statement that both joins and
			// reads (results := <-done; use in one call) evaluates the
			// join before the read.
			if joinNode(n) {
				joined = true
				continue
			}
			if pos, ok := accessIn(n); ok {
				return pos, true
			}
		}
		if joined {
			continue
		}
		for _, s := range it.b.Succs {
			if !s.Live || seen[s] {
				continue
			}
			seen[s] = true
			queue = append(queue, item{s, 0})
		}
	}
	return token.NoPos, false
}

// joinNode reports whether a CFG node synchronizes with spawned
// goroutines: a Wait call, any channel operation, or a select.
func joinNode(n ast.Node) bool {
	join := false
	ast.Inspect(n, func(m ast.Node) bool {
		if join {
			return false
		}
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt, *ast.SelectStmt:
			join = true
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				join = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(m.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				join = true
			}
		}
		return !join
	})
	return join
}
