package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestAllocBound(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.AllocBound,
		"allocbound_flagged", "allocbound_clean", "allocbound_allow")
}
