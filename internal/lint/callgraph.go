package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// CallGraph is shared infrastructure, not a check: it builds the static
// (type-resolved) call graph of one package once, and every
// interprocedural analyzer declares it in Requires instead of re-walking
// the ASTs. It reports no diagnostics; its result is a *CallGraphResult.
//
// Resolution is type-based and static only: a call site contributes an
// edge when the callee identifier resolves to a *types.Func (direct
// function calls and method calls with a statically known receiver
// type). Calls through function values and interface methods produce no
// edge — the analyzers built on top are deliberately conservative in the
// other direction (absence of an edge means absence of a finding, never
// a spurious one).
//
// Calls made inside a function literal are attributed to the enclosing
// declared function: for the transitive properties computed over this
// graph ("reaches a collective", "propagates a write error") a call made
// by a closure the function creates is still a call the function's
// callers must account for.
var CallGraph = &analysis.Analyzer{
	Name: "callgraph",
	Doc:  "build the package's type-resolved static call graph (infrastructure for interprocedural analyzers)",
	Run:  runCallGraph,
}

// CallGraphResult is the per-package call graph.
type CallGraphResult struct {
	// Nodes maps each function or method declared in this package (with
	// a body) to its outgoing edges, in declaration order per file.
	Nodes map[*types.Func]*CallNode
	// Order lists the declared functions in source order, for
	// deterministic iteration.
	Order []*types.Func
}

// CallNode is one declared function and the static calls it makes.
type CallNode struct {
	Fn    *types.Func
	Decl  *ast.FuncDecl
	Calls []CallEdge
}

// CallEdge is one resolved call site.
type CallEdge struct {
	Callee *types.Func
	Site   *ast.CallExpr
}

func runCallGraph(pass *analysis.Pass) (any, error) {
	result := &CallGraphResult{Nodes: map[*types.Func]*CallNode{}}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &CallNode{Fn: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeFunc(pass.TypesInfo, call); callee != nil {
					node.Calls = append(node.Calls, CallEdge{Callee: callee, Site: call})
				}
				return true
			})
			result.Nodes[fn] = node
			result.Order = append(result.Order, fn)
		}
	}
	return result, nil
}
