package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/ssa"
	"repro/internal/lint/analysis/taint"
)

// DetTaint is the interprocedural complement to the syntactic
// Nondeterminism analyzer: instead of flagging every nondeterministic
// construct inside the deterministic kernel, it tracks the *values*
// those constructs produce — time.Now results, global math/rand draws,
// map-iteration keys and values, goroutine/process identity — along
// SSA-lite def-use chains and across function boundaries via taint
// summaries, and reports only when such a value reaches a product
// write: an exported Write*/Commit*/Append*/Save*/Put*/Merge* call in
// the gio, catalog, ckpt, or fs packages (matched by package name so
// fixtures participate) — or a span timestamp in the obs package
// (BeginAt/EndAt/SpanAt), whose traces the determinism CI gate
// byte-compares across runs.
//
// The paper's premise is that in-situ reductions replace raw dumps as
// the analysis record; a product whose bytes depend on wall-clock time,
// RNG state, or map order cannot be byte-compared across the re-run
// that gray-failure degradation (PR 6) or re-derivation repair (PR 7)
// triggers. Every diagnostic carries a witness path — the variable and
// call hops the value took — so the fix site is visible without
// re-tracing by hand.
//
// Seeded *rand.Rand draws are deterministic and do not taint; sorting
// (sort.*/slices.Sort*) canonicalizes map-derived data and kills the
// taint; time.Since produces durations for telemetry, not products,
// and is treated as clean. Test files get findings suppressed (tests
// write scratch), but their summaries still feed the fixpoint.
var DetTaint = &analysis.Analyzer{
	Name:      "dettaint",
	Doc:       "track nondeterministic values (time, rand, map order) interprocedurally into product writes",
	Run:       runDetTaint,
	Requires:  []*analysis.Analyzer{SSAFlow},
	FactTypes: []analysis.Fact{(*DetTaintSummary)(nil)},
}

// DetTaintSummary carries one function's taint summary across package
// boundaries.
type DetTaintSummary struct {
	S taint.Summary
}

func (*DetTaintSummary) AFact() {}

func init() { analysis.RegisterFactType(&DetTaintSummary{}) }

// detSinkPkgs are the product-writing packages, matched by name.
var detSinkPkgs = map[string]bool{
	"gio": true, "catalog": true, "ckpt": true, "fs": true,
}

// detSinkPrefixes name the write entry points within those packages.
var detSinkPrefixes = []string{"Write", "Commit", "Append", "Save", "Put", "Merge"}

func hasAnyPrefix(name string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// detSource classifies a register as a nondeterminism source.
func detSource(info *types.Info) func(v *ssa.Value) (string, bool) {
	return func(v *ssa.Value) (string, bool) {
		switch v.Op {
		case ssa.OpCall:
			fn := v.Callee
			if fn == nil {
				return "", false
			}
			if isPkgFunc(fn, "time", "Now") {
				return "time.Now", true
			}
			if isPkgFunc(fn, "runtime", "NumGoroutine") {
				return "runtime.NumGoroutine", true
			}
			if isPkgFunc(fn, "os", "Getpid") {
				return "os.Getpid", true
			}
			// Package-level math/rand draws read the shared global
			// source; methods on a seeded *rand.Rand are reproducible.
			if fn.Pkg() != nil && (fn.Pkg().Path() == "math/rand" || fn.Pkg().Path() == "math/rand/v2") {
				sig, _ := fn.Type().(*types.Signature)
				if sig != nil && sig.Recv() == nil && fn.Exported() && !strings.HasPrefix(fn.Name(), "New") {
					return "math/rand." + fn.Name(), true
				}
			}
		case ssa.OpRange:
			if v.Expr == nil {
				return "", false
			}
			if tv, ok := info.Types[v.Expr]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return "map iteration order", true
				}
			}
		}
		return "", false
	}
}

// detSinks lists the product-write operands of one instruction.
func detSinks(v *ssa.Value) []taint.SinkUse {
	if v.Op != ssa.OpCall || v.Callee == nil {
		return nil
	}
	fn := v.Callee
	if fn.Pkg() == nil || !detSinkPkgs[fn.Pkg().Name()] || !fn.Exported() {
		return nil
	}
	if !hasAnyPrefix(fn.Name(), detSinkPrefixes) {
		return nil
	}
	var uses []taint.SinkUse
	for i, a := range v.Args {
		if v.RecvArg && i == 0 {
			continue // the receiver is the writer, not the written value
		}
		argNo := i + 1
		if v.RecvArg {
			argNo = i
		}
		uses = append(uses, taint.SinkUse{
			Arg:  a,
			Sink: fmt.Sprintf("%s.%s (arg %d)", fn.Pkg().Name(), fn.Name(), argNo),
		})
	}
	return uses
}

// detObsTimeArgs maps obs-package span methods to their timestamp
// parameter positions (receiver excluded). Span times must come from
// the injected DES clock; a wall-clock value here makes the trace
// non-reproducible across the re-runs the determinism CI gate compares.
// Passing time.Now *as the clock function* to New/SetClock is the
// sanctioned injection point and is not a sink — only sampled values
// flowing into timestamps are.
var detObsTimeArgs = map[string][]int{
	"BeginAt": {2},    // (cat, name, t)
	"EndAt":   {0},    // (t)
	"SpanAt":  {3, 4}, // (parent, cat, name, start, end)
}

// detObsSinks lists the span-timestamp operands of one instruction.
func detObsSinks(v *ssa.Value) []taint.SinkUse {
	if v.Op != ssa.OpCall || v.Callee == nil {
		return nil
	}
	fn := v.Callee
	if fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
		return nil
	}
	params, ok := detObsTimeArgs[fn.Name()]
	if !ok {
		return nil
	}
	var uses []taint.SinkUse
	for _, p := range params {
		i := p
		if v.RecvArg {
			i = p + 1
		}
		if i >= len(v.Args) {
			continue
		}
		uses = append(uses, taint.SinkUse{
			Arg:  v.Args[i],
			Sink: fmt.Sprintf("obs.%s (time arg %d)", fn.Name(), p),
		})
	}
	return uses
}

// detSanitizer: calls whose results are clean regardless of arguments.
func detSanitizer(v *ssa.Value) bool {
	return v.Op == ssa.OpCall && v.Callee != nil && isPkgFunc(v.Callee, "time", "Since")
}

// detInPlace: sorting canonicalizes an order-tainted collection.
func detInPlace(v *ssa.Value) bool {
	if v.Op != ssa.OpCall || v.Callee == nil || v.Callee.Pkg() == nil {
		return false
	}
	switch v.Callee.Pkg().Path() {
	case "sort":
		switch v.Callee.Name() {
		case "Sort", "Stable", "Slice", "SliceStable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		return strings.HasPrefix(v.Callee.Name(), "Sort")
	}
	return false
}

func runDetTaint(pass *analysis.Pass) (any, error) {
	res := pass.ResultOf[SSAFlow].(*SSAResult)
	engine := &taint.Engine{
		Spec: taint.Spec{
			Source:           detSource(pass.TypesInfo),
			Sinks:            func(v *ssa.Value) []taint.SinkUse { return append(detSinks(v), detObsSinks(v)...) },
			Sanitizer:        detSanitizer,
			InPlaceSanitizer: detInPlace,
		},
		External: func(fn *types.Func) (*taint.Summary, bool) {
			var fact DetTaintSummary
			if pass.ImportObjectFact(fn, &fact) {
				return &fact.S, true
			}
			return nil, false
		},
	}

	fns := make([]taint.FuncInfo, 0, len(res.Order))
	for _, sf := range res.Order {
		fns = append(fns, taint.FuncInfo{Fn: sf.FC.Fn, SSA: sf.F})
	}
	result := engine.AnalyzePackage(fns)

	for fn, sum := range result.Summaries {
		if fn.Pkg() == pass.Pkg && !sum.Empty() {
			pass.ExportObjectFact(fn, &DetTaintSummary{S: *sum})
		}
	}

	r := newReporter(pass)
	for _, f := range result.Findings {
		pos := token.Pos(f.Pos)
		if isTestFile(pass.Fset, pos) {
			continue
		}
		r.reportf(pos,
			"nondeterministic value from %s reaches %s (witness: %s); the product cannot be byte-compared across re-runs — derive it deterministically or canonicalize (sort) before writing",
			f.Source, f.Sink, strings.Join(f.Path, " → "))
	}
	return nil, nil
}
