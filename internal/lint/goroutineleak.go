package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// GoroutineLeak guards the concurrency layers (dparallel, transit,
// sched, mpi — the packages whose goroutines outlive a bug silently)
// against orphaned goroutines. Two rules:
//
//  1. a `go func(){...}()` literal must carry completion evidence inside
//     the literal: a sync.WaitGroup Done (the Add/Wait pair lives in the
//     spawner), a send or close on a channel (someone joins by
//     receiving), a receive or range over a channel (the goroutine is
//     drained by channel close), or a select (stop-channel / context
//     patterns). A literal with none of these can never be joined — it
//     either leaks or races with process exit;
//  2. a send on an unbuffered channel from inside a spawned goroutine is
//     flagged when the enclosing function can return before any receive
//     on that channel: either there is no receive at all, or a `return`
//     sits between the `go` statement and the first receive in source
//     order. The goroutine blocks on the send forever once the only
//     receiver has left. Buffer the channel (the result-slot idiom) or
//     receive on every path.
//
// Rule 2 is a token-order approximation in the lockdiscipline tradition,
// not a CFG analysis; channels that escape the function (passed to a
// call, stored in a struct, returned) are not tracked. Deliberate
// fire-and-forget goroutines take //lint:allow goroutineleak with a
// justification.
var GoroutineLeak = &analysis.Analyzer{
	Name: "goroutineleak",
	Doc:  "forbid unjoined goroutines and unbuffered sends that outlive their receiver in the concurrency packages",
	Run:  runGoroutineLeak,
}

// leakPkgs are the packages rule 1 and 2 apply to — the same
// rank-exchange set as lockdiscipline's channel rule.
var leakPkgs = map[string]bool{
	"mpi": true, "transit": true, "sched": true, "dparallel": true,
}

func runGoroutineLeak(pass *analysis.Pass) (any, error) {
	if !leakPkgs[pass.Pkg.Name()] {
		return nil, nil
	}
	r := newReporter(pass)
	for _, f := range pass.Files {
		funcBodies([]*ast.File{f}, func(name string, body *ast.BlockStmt) {
			checkGoStmts(pass, r, body)
			checkUnbufferedSends(pass, r, body)
		})
	}
	return nil, nil
}

// --- rule 1: join evidence inside go func literals ---

func checkGoStmts(pass *analysis.Pass, r *reporter, body *ast.BlockStmt) {
	bodyNodes(body, func(n ast.Node) {
		gs, ok := n.(*ast.GoStmt)
		if !ok {
			return
		}
		lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit)
		if !ok {
			// go m.run() — the body is elsewhere; out of scope for this
			// syntactic rule (the literal form is where leaks are written).
			return
		}
		if hasJoinEvidence(pass.TypesInfo, lit.Body) {
			return
		}
		r.reportf(gs.Pos(),
			"goroutine has no completion signal: tie it to a sync.WaitGroup Done, a channel send/close, or a stop-channel select so it can be joined")
	})
}

// hasJoinEvidence scans a goroutine body (nested literals included) for
// any construct that ties its lifetime to the outside.
func hasJoinEvidence(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.Types[n.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if fn := calleeFunc(info, n); fn != nil && fn.Name() == "Done" &&
				fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				found = true
			}
			if fn, ok := info.Uses[funIdent(n)].(*types.Builtin); ok && fn.Name() == "close" {
				found = true
			}
		}
		return !found
	})
	return found
}

func funIdent(call *ast.CallExpr) *ast.Ident {
	id, _ := ast.Unparen(call.Fun).(*ast.Ident)
	return id
}

// --- rule 2: unbuffered sends vs early returns ---

func checkUnbufferedSends(pass *analysis.Pass, r *reporter, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Unbuffered channels created and used only locally in this body.
	type chanInfo struct {
		name    string
		escapes bool
		sends   []token.Pos // sends inside spawned goroutines
		recvs   []token.Pos // receives in the enclosing body (outside go literals)
		goPos   token.Pos   // the go statement whose goroutine sends on it
	}
	chans := map[types.Object]*chanInfo{}
	var order []*chanInfo // declaration order, for deterministic reports

	bodyNodes(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isUnbufferedMake(info, call) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj != nil {
				ci := &chanInfo{name: id.Name}
				chans[obj] = ci
				order = append(order, ci)
			}
		}
	})
	if len(chans) == 0 {
		return
	}

	lookup := func(e ast.Expr) *chanInfo {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		return chans[info.Uses[id]]
	}

	// Classify every use. Escape = any appearance that is not a send,
	// receive, range, close, or len/cap on the bare ident. goPos records
	// the go statement whose literal performs the send, so the early-
	// return window is measured from the actual spawn site.
	var scan func(n ast.Node, goPos token.Pos)
	scan = func(root ast.Node, goPos token.Pos) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					scan(lit.Body, n.Pos())
					// Arguments are evaluated in the spawning goroutine.
					for _, arg := range n.Call.Args {
						scan(arg, goPos)
					}
					return false
				}
			case *ast.SendStmt:
				if ci := lookup(n.Chan); ci != nil {
					if goPos != token.NoPos {
						ci.sends = append(ci.sends, n.Pos())
						if ci.goPos == token.NoPos {
							ci.goPos = goPos
						}
					}
					scan(n.Value, goPos)
					return false
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					if ci := lookup(n.X); ci != nil {
						if goPos == token.NoPos {
							ci.recvs = append(ci.recvs, n.Pos())
						}
						return false
					}
				}
			case *ast.RangeStmt:
				if ci := lookup(n.X); ci != nil {
					if goPos == token.NoPos {
						ci.recvs = append(ci.recvs, n.Pos())
					}
					// Visit the body but not X (a range is a receive, not
					// an escape).
					scan(n.Body, goPos)
					return false
				}
			case *ast.CallExpr:
				if fn, ok := info.Uses[funIdent(n)].(*types.Builtin); ok {
					switch fn.Name() {
					case "close", "len", "cap":
						if len(n.Args) == 1 && lookup(n.Args[0]) != nil {
							return false
						}
					}
				}
				for _, arg := range n.Args {
					if ci := lookup(arg); ci != nil {
						ci.escapes = true
					}
				}
			case *ast.Ident:
				// Bare mention outside the handled shapes (assignment to
				// another name, struct literal, return value…): escape.
				if ci := chans[info.Uses[n]]; ci != nil {
					ci.escapes = true
				}
			}
			return true
		})
	}
	scan(body, token.NoPos)

	// Returns in the enclosing body (outside literals). A return whose
	// own expression receives (`return <-ch`) is a receive, not an
	// escape hatch, so spans are kept to exclude those below.
	type retSpan struct{ pos, end token.Pos }
	var returns []retSpan
	bodyNodes(body, func(n ast.Node) {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, retSpan{ret.Pos(), ret.End()})
		}
	})

	for _, ci := range order {
		if ci.escapes || len(ci.sends) == 0 {
			continue
		}
		if len(ci.recvs) == 0 {
			for _, pos := range ci.sends {
				r.reportf(pos,
					"send on unbuffered channel %q from a goroutine with no receive in the spawning function: the send blocks forever; buffer the channel or receive the result",
					ci.name)
			}
			continue
		}
		firstRecv := ci.recvs[0]
		for _, rp := range ci.recvs[1:] {
			if rp < firstRecv {
				firstRecv = rp
			}
		}
		for _, ret := range returns {
			if ret.pos <= firstRecv && firstRecv < ret.end {
				continue // the return receives the value itself
			}
			if ci.goPos != token.NoPos && ret.pos > ci.goPos && ret.pos < firstRecv {
				for _, pos := range ci.sends {
					r.reportf(pos,
						"send on unbuffered channel %q can block forever: the spawning function may return (an early return precedes the first receive) and the goroutine leaks; buffer the channel or receive on every path",
						ci.name)
				}
				break
			}
		}
	}
}

// isUnbufferedMake matches make(chan T) and make(chan T, 0).
func isUnbufferedMake(info *types.Info, call *ast.CallExpr) bool {
	fn, ok := info.Uses[funIdent(call)].(*types.Builtin)
	if !ok || fn.Name() != "make" || len(call.Args) == 0 {
		return false
	}
	t := info.Types[call.Args[0]].Type
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Chan); !ok {
		return false
	}
	if len(call.Args) == 1 {
		return true
	}
	tv := info.Types[call.Args[1]]
	return tv.Value != nil && tv.Value.String() == "0"
}
