package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/cfg"
)

// CtrlFlow is shared infrastructure, not a check: it builds the CFG of
// every function body in the package once (declarations and function
// literals, each its own graph), and flow-sensitive analyzers declare it
// in Requires instead of re-building graphs. It reports no diagnostics;
// its result is a *CFGResult.
var CtrlFlow = &analysis.Analyzer{
	Name: "ctrlflow",
	Doc:  "build per-function control-flow graphs (infrastructure for flow-sensitive analyzers)",
	Run:  runCtrlFlow,
}

// CFGResult holds the package's control-flow graphs.
type CFGResult struct {
	// ByBody maps each function body to its graph (bodies are unique
	// AST nodes, so they key both declarations and literals).
	ByBody map[*ast.BlockStmt]*FuncCFG
	// Order lists the graphs in source order — declarations and
	// literals interleaved as they appear — for deterministic iteration.
	Order []*FuncCFG
}

// FuncCFG pairs one function body with its graph and declaration
// context.
type FuncCFG struct {
	Body *ast.BlockStmt
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declarations
	Fn   *types.Func   // declared object; nil for literals
	G    *cfg.CFG
}

// Name returns a human-readable label for diagnostics.
func (fc *FuncCFG) Name() string {
	if fc.Decl != nil {
		return fc.Decl.Name.Name
	}
	return "func literal"
}

func runCtrlFlow(pass *analysis.Pass) (any, error) {
	result := &CFGResult{ByBody: map[*ast.BlockStmt]*FuncCFG{}}
	add := func(fc *FuncCFG) {
		fc.G = cfg.Build(fc.Body)
		result.ByBody[fc.Body] = fc
		result.Order = append(result.Order, fc)
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					fn, _ := pass.TypesInfo.Defs[n.Name].(*types.Func)
					add(&FuncCFG{Body: n.Body, Decl: n, Fn: fn})
				}
			case *ast.FuncLit:
				add(&FuncCFG{Body: n.Body, Lit: n})
			}
			return true
		})
	}
	return result, nil
}
