package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.LockOrder,
		"lockorder_flagged", "lockorder_clean", "lockorder_allow",
		"lockorder_xa", "lockorder_xb")
}
