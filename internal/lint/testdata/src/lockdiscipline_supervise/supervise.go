// Fixture for rule 3 in package supervise: a supervisor or breaker that
// performs channel ops while holding its lock can deadlock the watchdog
// against the very consumers it is probing. Flagged cases carry want
// comments; the rest must stay clean.
package supervise

import "sync"

type Breaker struct {
	mu     sync.Mutex
	probes chan string
	opens  int
}

func (b *Breaker) ProbeUnderLock(target string) {
	b.mu.Lock()
	b.probes <- target // want `channel send while holding b.mu`
	b.mu.Unlock()
}

func (b *Breaker) AwaitUnderLock() string {
	b.mu.Lock()
	v := <-b.probes // want `channel receive while holding b.mu`
	b.mu.Unlock()
	return v
}

func (b *Breaker) LeakOnTrip() int {
	b.mu.Lock()    // want `b.mu.Lock\(\) without a matching Unlock before the function ends`
	return b.opens // want `return while b.mu is locked`
}

// ProbeOutsideLock snapshots state under the lock and touches the channel
// only after releasing it — the clean shape.
func (b *Breaker) ProbeOutsideLock(target string) {
	b.mu.Lock()
	b.opens++
	b.mu.Unlock()
	b.probes <- target
}

// DeferredUnlock is clean: defer releases on every path.
func (b *Breaker) DeferredUnlock() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
