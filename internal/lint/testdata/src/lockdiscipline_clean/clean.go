// Negative fixture: the disciplined forms — defer Unlock, unlock before
// channel ops, unlock-then-return, read locks, pointer passing.
package transit

import "sync"

type Stage struct {
	mu sync.RWMutex
	ch chan int
	n  int
}

func (s *Stage) Deferred() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *Stage) DeferredClosure() (n int) {
	s.mu.Lock()
	defer func() {
		s.mu.Unlock()
	}()
	return s.n
}

func (s *Stage) ReadLocked() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.n
}

func (s *Stage) UnlockBeforeSend(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.ch <- v
}

func (s *Stage) UnlockThenReturn(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		return
	}
	s.n++
	s.mu.Unlock()
}

func ByPointer(s *Stage) int {
	return s.n
}

func RangePointers(stages []*Stage) int {
	total := 0
	for _, st := range stages {
		total += st.n
	}
	return total
}
