// Package lockorder_flagged holds the defects the lockorder analyzer
// must catch: double locks (unconditional and path-sensitive),
// read/write self-deadlocks, unlocks of unheld locks, and an AB/BA
// lock-order inversion within one package.
package lockorder_flagged

import "sync"

type Server struct {
	mu    sync.Mutex
	state sync.RWMutex
}

func (s *Server) DoubleLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `second s\.mu\.Lock\(\) on a path where s\.mu is already held`
}

func (s *Server) MaybeDouble(c bool) {
	if c {
		s.mu.Lock()
	}
	s.mu.Lock() // want `second s\.mu\.Lock\(\) on a path where s\.mu is already held`
	s.mu.Unlock()
}

func (s *Server) Upgrade() {
	s.state.RLock()
	s.state.Lock() // want `s\.state\.Lock\(\) on a path where s\.state\.RLock\(\) is held`
	s.state.Unlock()
	s.state.RUnlock()
}

func (s *Server) ReadUnderWrite() {
	s.state.Lock()
	defer s.state.Unlock()
	s.state.RLock() // want `s\.state\.RLock\(\) on a path where s\.state\.Lock\(\) is held`
	s.state.RUnlock()
}

func (s *Server) UnlockCold() {
	s.mu.Unlock() // want `s\.mu\.Unlock\(\) but s\.mu is not held on any path`
}

func (s *Server) UnlockMaybe(c bool) {
	if c {
		s.mu.Lock()
	}
	s.mu.Unlock() // want `s\.mu\.Unlock\(\) but s\.mu is not held on every path`
}

var (
	muA sync.Mutex
	muB sync.Mutex
)

// ForwardOrder establishes muA before muB; BackwardOrder inverts it.
// Both acquisition sites are flagged — each closes the other's cycle.
func ForwardOrder() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock() // want `lock order inversion`
	muB.Unlock()
}

func BackwardOrder() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock() // want `lock order inversion`
	muA.Unlock()
}
