// Cross-package fixture for errflow: the wrappers live in the savers
// fixture package, so these findings exist only if the WriteErrorSource
// fact crossed the package boundary.
package pipeline

import "savers"

func discardCrossPackage() {
	savers.Save("x") // want `error of Save discarded: it propagates write errors from gio.WriteFile`
}

func discardTwoDeep() {
	_ = savers.SaveAll(nil) // want `error of SaveAll assigned to _: it propagates write errors from gio.WriteFile`
}

// A fact-free callee from the same dependency stays clean.
func cleanCrossPackage() int {
	return savers.Count(nil)
}
