// Allowlist fixture.
package gio

import "os"

func ScratchFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//lint:allow closecheck scratch file is re-read and verified by the caller
	defer f.Close()
	_, err = f.Write([]byte("scratch"))
	return err
}

func StillFlagged(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `discards the close error on a file opened for writing`
	_, err = f.Write([]byte("x"))
	return err
}
