// Clean fixtures for dettaint: canonicalized, seeded, or sanitized
// values may reach product writes.
package pipeline

import (
	"math/rand"
	"sort"
	"time"

	"giostub"
)

// Sorting canonicalizes map-derived order before the write.
func writeSortedKeys(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	_ = gio.WriteFile("keys", []byte(keys[0]))
}

// A seeded *rand.Rand is reproducible: method draws are not sources.
// The seed parameter's flow is summarized, not reported.
func writeSeeded(seed int64) {
	r := rand.New(rand.NewSource(seed))
	v := r.Intn(100)
	_ = gio.WriteFile("v", []byte{byte(v)})
}

// time.Since produces telemetry durations and is treated as clean.
func writeElapsed(start time.Time) {
	d := time.Since(start)
	_ = gio.WriteFile("elapsed", []byte(d.String()))
}

// Constant data is trivially deterministic.
func writeHeader() {
	_ = gio.WriteFile("header", []byte("v1"))
}
