// Positive fixture for errflow: write errors discarded at the call
// site, directly and through local wrappers.
package pipeline

import "giostub"

// Bare statement drops the root's error directly.
func bareRoot() {
	gio.WriteFile("x", nil) // want `error of WriteFile discarded`
}

// Blank assignment drops it.
func blankRoot() {
	_ = gio.WriteFile("x", nil) // want `error of WriteFile assigned to _`
}

// save carries the fact (returns error, calls the root)…
func save(path string) error {
	return gio.WriteFile(path, nil)
}

// …so discarding save's error is discarding a write error.
func bareWrapper() {
	save("x") // want `error of save discarded: it propagates write errors from gio.WriteFile`
}

// go/defer statements lose the error with no recourse at all.
func spawned() {
	go save("x")    // want `error of save discarded by go statement`
	defer save("x") // want `error of save discarded by defer`
}

// writeCount is two deep and mixes results.
func writeCount(paths []string) (int, error) {
	for _, p := range paths {
		if err := save(p); err != nil {
			return 0, err
		}
	}
	return len(paths), nil
}

func blankMixed() int {
	n, _ := writeCount(nil) // want `error of writeCount assigned to _`
	return n
}
