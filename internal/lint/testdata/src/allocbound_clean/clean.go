// Clean fixtures for allocbound: bound-checked, clamped, map-keyed, or
// constant sizes.
package parse

import "encoding/binary"

const maxRecord = 1 << 20

// An explicit comparison validates the decoded value.
func allocChecked(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	if n > maxRecord {
		return nil
	}
	return make([]byte, n)
}

// The min builtin clamps the decoded value.
func allocClamped(b []byte) []byte {
	n, _ := binary.Uvarint(b)
	return make([]byte, min(int(n), 4096))
}

// Map indexing with a decoded key cannot panic or over-allocate.
func mapKey(b []byte, m map[uint32]string) string {
	k := binary.LittleEndian.Uint32(b)
	return m[k]
}

// Constant sizes are trivially bounded.
func fixed() []byte {
	return make([]byte, 128)
}
