// Package detsource is a dependency fixture for dettaint: its taint
// summaries (Stamp's result carries time.Now) must cross the package
// boundary as facts for dettaint_xpkg's findings to exist.
package detsource

import "time"

// Stamp returns a wall-clock string; the exported summary records
// "result 0 ← time.Now".
func Stamp() string {
	return time.Now().String()
}

// Echo passes its argument through; the summary records param 0 →
// result 0.
func Echo(s string) string {
	return s
}
