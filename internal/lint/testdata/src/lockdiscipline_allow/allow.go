// Allowlist fixture: a hand-over-hand locking pattern the token-order
// heuristic cannot follow carries an explicit suppression.
package transit

import "sync"

type Node struct {
	mu   sync.Mutex
	next *Node
	v    int
}

func HandOverHand(n *Node) int {
	//lint:allow lockdiscipline hand-over-hand traversal; unlocked by the callee
	n.mu.Lock()
	//lint:allow lockdiscipline the lock is released inside crawl
	return crawl(n)
}

func crawl(n *Node) int {
	v := n.v
	n.mu.Unlock()
	return v
}

func StillFlagged(n *Node) int {
	n.mu.Lock() // want `n.mu.Lock\(\) without a matching Unlock before the function ends`
	return n.v  // want `return while n.mu is locked`
}
