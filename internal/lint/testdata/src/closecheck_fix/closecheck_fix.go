// Fix fixture for closecheck rule 1: `workflowlint -fix` rewrites a
// flagged `defer f.Close()` into the named-return capture when the
// enclosing function has a named error result `err`. The .golden
// sibling is the expected post-fix file.
package gio

import "os"

// WriteAll has the named error result the rewrite needs: fixable.
func WriteAll(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f\.Close\(\) discards the close error on a file opened for writing`
	_, err = f.Write(data)
	return err
}

// WriteAnon returns an unnamed error: the capture would not compile, so
// the diagnostic carries no fix and the golden keeps this line as is.
func WriteAnon(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f\.Close\(\) discards the close error on a file opened for writing`
	_, err = f.Write(data)
	return err
}
