// Negative fixture: errors.Is matching, %w wrapping, nil comparisons,
// and the deliberate sentinel-mapping pattern.
package gio

import (
	"errors"
	"fmt"
	"io"
)

var ErrTruncated = errors.New("gio: truncated stream")

func IsTorn(err error) bool {
	return errors.Is(err, ErrTruncated)
}

func NilChecksAreFine(err error) bool {
	return err == nil || err != nil
}

func Wrap(n int, err error) error {
	return fmt.Errorf("gio: block %d failed: %w", n, err)
}

// Mapping an io-level error onto a sentinel wraps the sentinel and
// deliberately formats the cause with %v — allowed because a %w is
// present.
func TornErr(err error) error {
	if errors.Is(err, io.EOF) {
		return fmt.Errorf("%w (%v)", ErrTruncated, err)
	}
	return err
}

// No error arguments at all: nothing to wrap.
func Plain(n int) error {
	return fmt.Errorf("gio: %d blocks missing", n)
}
