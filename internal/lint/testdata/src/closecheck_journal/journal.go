// Positive fixture: the crash-consistency journal's Close error is the
// final fsync's verdict; deferring it away is flagged by static type, no
// matter how the handle reached the function.
package ckpt

import "os"

type Journal struct{ f *os.File }

func (j *Journal) Close() error { return j.f.Close() }

func Open(path string) (*Journal, error) { return &Journal{}, nil }

func UseJournal(path string) error {
	j, err := Open(path)
	if err != nil {
		return err
	}
	defer j.Close() // want `defer j.Close\(\) discards the journal's close error`
	return nil
}

func UseJournalParam(j *Journal) {
	defer j.Close() // want `defer j.Close\(\) discards the journal's close error`
}
