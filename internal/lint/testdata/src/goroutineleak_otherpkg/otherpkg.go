// Out-of-scope fixture: package render is not in the concurrency set,
// so identical code draws no diagnostics.
package render

func work() int { return 1 }

func fireAndForget() {
	go func() {
		work()
	}()
}

func sendNoReceiver() {
	ch := make(chan int)
	go func() {
		ch <- work()
	}()
}
