// Package lockorder_xa is the base package of the cross-package
// lockorder fixtures. It establishes the order Store.Mu → Index.Mu
// (exported via the LockEdges package fact) and exposes Touch, whose
// LockSummary object fact says it acquires Store.Mu. No diagnostics
// here — the inversions live in lockorder_xb.
package lockorder_xa

import "sync"

type Store struct{ Mu sync.Mutex }
type Index struct{ Mu sync.Mutex }

var (
	S Store
	I Index
)

// Reindex establishes Store.Mu before Index.Mu.
func Reindex() {
	S.Mu.Lock()
	defer S.Mu.Unlock()
	I.Mu.Lock()
	I.Mu.Unlock()
}

// Touch acquires Store.Mu; importers that call it while holding their
// own locks extend the global order graph through its LockSummary fact.
func Touch() {
	S.Mu.Lock()
	S.Mu.Unlock()
}
