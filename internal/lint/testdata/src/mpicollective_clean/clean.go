// Negative fixture for mpicollective: the sanctioned SPMD shapes.
package workflow

import "mpistub"

// Collectives on the straight-line path: every rank reaches them.
func straightLine(c *mpi.Comm) float64 {
	c.Barrier()
	return c.AllReduceSum(float64(c.Rank()))
}

// Matched collective sequences across a rank guard: root does extra
// local work, both arms synchronize identically.
func matchedArms(c *mpi.Comm, merge func()) {
	if c.Rank() == 0 {
		merge()
		c.Barrier()
	} else {
		c.Barrier()
	}
}

// Size-dependent control flow is uniform across ranks — not flagged.
func sizeGuarded(c *mpi.Comm) {
	if c.Size() > 1 {
		c.Barrier()
	}
}

// Rank-guarded point-to-point messaging is the normal root pattern; only
// collectives are ordering-sensitive.
func rootSends(c *mpi.Comm) {
	if c.Rank() == 0 {
		for d := 1; d < c.Size(); d++ {
			c.Send(d, 1, nil)
		}
	} else {
		_ = c.Recv(0, 1)
	}
	c.Barrier()
}

// Uniform trip count: every rank loops Size() times.
func uniformLoop(c *mpi.Comm) {
	for i := 0; i < c.Size(); i++ {
		c.Barrier()
	}
}

// A helper that reaches no collective may be rank-guarded freely.
func guardedLocalWork(c *mpi.Comm) int {
	total := 0
	if c.Rank() == 0 {
		total = localWork(c)
	}
	return total
}

func localWork(c *mpi.Comm) int { return c.Rank() * 2 }

// A rank-guarded early return with no collectives below is fine.
func earlyOut(c *mpi.Comm) int {
	if c.Rank() != 0 {
		return 0
	}
	return 1
}

// AllReduce results are rank-uniform by definition, even when computed
// from rank-dependent inputs: every rank sees the same sum, so every
// rank takes the same branch. The canonical uniform-decision idiom.
func reduceDecides(c *mpi.Comm) {
	localErrs := c.Rank() % 2
	if c.AllReduceSumInt(localErrs) > 0 {
		c.Barrier()
	}
}

// Same for a value broadcast from root and a gathered slice.
func bcastDecides(c *mpi.Comm, flag any) {
	v := c.Bcast(0, flag)
	if v != nil {
		c.Barrier()
	}
	all := c.AllGather(c.Rank())
	for range all {
		c.Barrier()
	}
}
