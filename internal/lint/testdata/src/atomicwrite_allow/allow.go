// Allowlist fixture: deliberate non-atomic writes (fault injection
// tearing files on purpose) carry an explicit suppression.
package main

import "os"

func tearFileDeliberately(path string, data []byte) {
	// A crash-injection helper lands a torn prefix non-atomically: the
	// whole point is to violate the protocol.
	//lint:allow atomicwrite deliberate torn write for fault injection
	_ = os.WriteFile(path, data[:len(data)/2], 0o644)
}

func stillFlagged(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile bypasses internal/ckpt`
}

func main() {}
