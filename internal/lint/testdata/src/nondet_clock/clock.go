// Injectable-clock fixture: the sanctioned replacement for wall-clock
// reads whose values reach results. A deterministic package takes the
// clock as a nil-able field — nil means "no timings" and the output stays
// a pure function of the inputs; drivers that want real timings assign
// time.Now at the edge.
package cosmotools

import "time"

// Manager mirrors internal/cosmotools.Manager: timings are recorded only
// when a clock was injected.
type Manager struct {
	Clock   func() time.Time
	Timings map[string]time.Duration
}

func (m *Manager) Execute(name string, work func()) {
	var start time.Time
	if m.Clock != nil {
		start = m.Clock()
	}
	work()
	if m.Clock != nil {
		if m.Timings == nil {
			m.Timings = map[string]time.Duration{}
		}
		m.Timings[name] += m.Clock().Sub(start)
	}
}

// Referencing time.Now as a function value to inject it is fine — only
// calls inside the deterministic package are wall-clock reads.
func NewTimedManager() *Manager {
	return &Manager{Clock: time.Now}
}

// The pattern being replaced: an argless time.Now call whose value lands
// in results is still flagged.
func (m *Manager) stampResult() time.Time {
	return time.Now() // want `time.Now in deterministic package "cosmotools" may reach results`
}
