// Clean fixtures for sharecapture: per-iteration slots, internal
// synchronization, channels, and proper joins.
package workers

import "sync"

// The idiomatic parallel fill: each goroutine writes its own slot,
// indexed by the per-iteration loop variable (go 1.22 semantics).
func fill(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = i * i
		}()
	}
	wg.Wait()
	return out
}

// Same shape with the slot index fed through a closure parameter.
func fillParam(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			out[j] = j
		}(i)
	}
	wg.Wait()
	return out
}

// A mutex inside the closure guards the shared write.
func guarded(items []int) int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += it
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// Results flow over a channel: no captured write at all.
func viaChannel(items []int) int {
	ch := make(chan int)
	for _, it := range items {
		go func() {
			ch <- it * it
		}()
	}
	total := 0
	for range items {
		total += <-ch
	}
	return total
}

// A channel receive joins before the post-spawn read.
func joined() []int {
	var res []int
	done := make(chan struct{})
	go func() {
		res = append(res, 1)
		close(done)
	}()
	<-done
	return res
}
