// Flagged fixtures for dettaint's obs sinks: sampled wall-clock values
// reaching span timestamps, directly and through helpers.
package sim

import (
	"time"

	"obsstub"
)

// A wall-clock sample flowing straight into a span open/close.
func traceStep(o *obs.Observer) {
	t := float64(time.Now().UnixNano()) / 1e9
	sp := o.BeginAt("step", "step-001", t) // want `nondeterministic value from time\.Now reaches obs\.BeginAt \(time arg 2\)`
	sp.EndAt(t + 1)                        // want `nondeterministic value from time\.Now reaches obs\.EndAt \(time arg 0\)`
}

// wallSeconds carries the taint through a helper; the summary makes the
// caller's SpanAt site the finding — on both timestamp operands.
func wallSeconds() float64 {
	return float64(time.Now().Unix())
}

func retroSpan(o *obs.Observer) {
	w := wallSeconds()
	o.SpanAt(nil, "job", "j1", w, w+5) // want `nondeterministic value from time\.Now reaches obs\.SpanAt \(time arg 3\)` `nondeterministic value from time\.Now reaches obs\.SpanAt \(time arg 4\)`
}
