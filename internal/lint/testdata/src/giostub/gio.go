// Package gio is a fixture stub of the persistence kernel: errflow
// roots match by package name and Write*/Commit*/Append*/Save* prefix.
// Imported by other fixtures as `import "giostub"`.
package gio

import "errors"

var errShort = errors.New("gio: short write")

// WriteFile is a write entry point: exported, Write-prefixed, returns
// error.
func WriteFile(path string, data []byte) error {
	if path == "" {
		return errShort
	}
	return nil
}

// ReadFile is not a root (read side).
func ReadFile(path string) ([]byte, error) {
	return nil, nil
}
