// Rule 1 applies everywhere, including the exempt package: an unsynced
// rename is still flagged here.
package ckpt

import "os"

func renameWithoutSync(tmp, final string) error {
	return os.Rename(tmp, final) // want `os.Rename without a preceding File.Sync`
}
