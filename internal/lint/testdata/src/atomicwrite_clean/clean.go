// Negative fixture: package ckpt is the sanctioned atomic-commit layer,
// so its direct file handling is exempt from rule 2 — and its
// fsync-before-rename sequence satisfies rule 1.
package ckpt

import "os"

func WriteFileAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(".", "atomic*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Reads never need the atomic protocol.
func ReadProduct(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Read-only OpenFile is not a product write.
func OpenForRead(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_RDONLY, 0)
}
