// Flow-sensitivity fixture for closecheck, pinning both directions of
// the rewrite: the belt-and-braces idiom stops being flagged (a
// token-order checker false-positives on it), and closes whose error is
// dropped on some path start being flagged.
package gio

import "os"

// WriteBoth is the belt-and-braces idiom: deferred backstop close plus
// a checked close on the success path. Every path from the defer either
// consumes a Close error or exits through an error return — clean.
func WriteBoth(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Close()
}

// WriteSloppy drops the close error on the success path.
func WriteSloppy(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	f.Close() // want `f\.Close\(\) discards the close error on a file opened for writing`
	return werr
}

// WriteCapturedUnread captures the close error and then never reads it
// on any path.
func WriteCapturedUnread(path string, data []byte) (err error) {
	f, cerr := os.Create(path)
	if cerr != nil {
		return cerr
	}
	_, err = f.Write(data)
	cerr = f.Close() // want `close error of f captured into cerr but never checked`
	return err
}

// WriteCapturedChecked reads the captured error on one branch (the
// first-error-wins idiom) — clean under the may-consumed rule.
func WriteCapturedChecked(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	cerr := f.Close()
	if err == nil {
		err = cerr
	}
	return err
}

// DeferStillFlagged has no checked close anywhere and an unguarded
// return: the defer still drops the flush verdict.
func DeferStillFlagged(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f\.Close\(\) discards the close error on a file opened for writing`
	_, err = f.Write(data)
	return err
}
