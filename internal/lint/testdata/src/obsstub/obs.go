// Package obs is a fixture stub of the observability layer: dettaint
// matches its span methods by package name and method (BeginAt, EndAt,
// SpanAt) to keep wall-clock taint out of trace timestamps. Imported by
// other fixtures as `import "obsstub"`.
package obs

// Clock yields the current simulated time in seconds.
type Clock func() float64

// Observer records spans against an injected clock.
type Observer struct {
	clock Clock
}

// New returns an observer; passing time-derived *functions* here is the
// sanctioned injection point (the engine wires the DES clock).
func New(name string, clock Clock) *Observer { return &Observer{clock: clock} }

// SetClock injects the time source.
func (o *Observer) SetClock(c Clock) {
	if o != nil {
		o.clock = c
	}
}

// Span is one timed interval.
type Span struct {
	Start, End float64
}

// BeginAt opens a span at an explicit timestamp (a dettaint sink).
func (o *Observer) BeginAt(cat, name string, t float64) *Span { return &Span{Start: t} }

// SpanAt records a retroactive complete span (timestamps are sinks).
func (o *Observer) SpanAt(parent *Span, cat, name string, start, end float64) *Span {
	return &Span{Start: start, End: end}
}

// EndAt closes the span at an explicit timestamp (a dettaint sink).
func (sp *Span) EndAt(t float64) {
	if sp != nil {
		sp.End = t
	}
}

// Done closes the span at the observer clock (no explicit timestamp).
func (sp *Span) Done() {}
