// Package lockorder_clean holds correct locking patterns the lockorder
// analyzer must not flag: consistent nesting, locks taken on every arm
// of a branch before a shared unlock, lock/unlock inside loops, and
// defer-based early returns. These pin the flow-sensitive joins — a
// token-order checker would false-positive on several of them.
package lockorder_clean

import "sync"

type Pool struct{ mu sync.Mutex }

var (
	big   sync.Mutex
	small sync.Mutex
)

// Nested and NestedAgain acquire in the same order: no inversion.
func Nested() {
	big.Lock()
	defer big.Unlock()
	small.Lock()
	defer small.Unlock()
}

func NestedAgain() {
	big.Lock()
	small.Lock()
	small.Unlock()
	big.Unlock()
}

// BothArms locks on every path into the unlock: must-held at the join.
func BothArms(c bool, p *Pool) {
	if c {
		p.mu.Lock()
	} else {
		p.mu.Lock()
	}
	p.mu.Unlock()
}

// SplitUnlock unlocks exactly once on each path.
func SplitUnlock(c bool, p *Pool) {
	p.mu.Lock()
	if c {
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
}

// Loop pairs lock/unlock per iteration; the back edge joins clean.
func Loop(p *Pool, n int) {
	for i := 0; i < n; i++ {
		p.mu.Lock()
		p.mu.Unlock()
	}
}

// Early releases via defer on both the early and the normal return.
func Early(p *Pool, c bool) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	if c {
		return 1
	}
	return 0
}

// TwoInstances locks two values of the same type; their global keys
// coincide, so no self-edge (instance order is not checkable).
func TwoInstances(p, q *Pool) {
	p.mu.Lock()
	q.mu.Lock()
	q.mu.Unlock()
	p.mu.Unlock()
}
