// Flagged fixtures for dettaint: nondeterministic values reaching
// product writes through copies, conversions, and helper calls.
package pipeline

import (
	"math/rand"
	"time"

	"giostub"
)

// stamp carries time.Now taint to its result; the summary makes the
// caller's write site the finding.
func stamp() string {
	t := time.Now()
	return t.String()
}

func writeStamp() {
	s := stamp()
	_ = gio.WriteFile("out", []byte(s)) // want `nondeterministic value from time\.Now reaches gio\.WriteFile \(arg 2\)`
}

func writeKeys(m map[string]int) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	_ = gio.WriteFile("keys", []byte(keys[0])) // want `nondeterministic value from map iteration order reaches gio\.WriteFile \(arg 2\)`
}

func writeSample() {
	v := rand.Int()
	buf := []byte{byte(v)}
	_ = gio.WriteFile("sample", buf) // want `nondeterministic value from math/rand\.Int reaches gio\.WriteFile \(arg 2\)`
}
