// Suppression fixture for goroutineleak.
package dparallel

func work() int { return 1 }

func deliberateDetach() {
	//lint:allow goroutineleak best-effort cache warmer; process lifetime bounds it
	go func() {
		work()
	}()
}
