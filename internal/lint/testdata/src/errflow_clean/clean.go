// Negative fixture for errflow: handled write errors and non-write
// calls draw no diagnostics.
package pipeline

import "giostub"

func handled() error {
	if err := gio.WriteFile("x", nil); err != nil {
		return err
	}
	return nil
}

func save(path string) error {
	return gio.WriteFile(path, nil)
}

func returned() error {
	return save("x")
}

func inspected() {
	err := save("x")
	if err != nil {
		panic(err)
	}
}

// Read-side errors are outside this analyzer's contract (closecheck and
// sentinelwrap police other halves); a discarded read is not flagged.
func readDiscard() {
	_, _ = gio.ReadFile("x")
}

// A function with no write ancestry may be called bare.
func pureWork() int { return 42 }

func barePure() {
	pureWork()
}
