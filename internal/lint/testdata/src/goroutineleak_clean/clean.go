// Negative fixture for goroutineleak: the sanctioned join shapes.
package transit

import (
	"context"
	"sync"
)

func work() int { return 1 }

// WaitGroup join: Done inside, Add/Wait in the spawner.
func waitGroupJoin(n int) {
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// Result over an unbuffered channel, received on every path.
func resultChannel() int {
	ch := make(chan int)
	go func() {
		ch <- work()
	}()
	return <-ch
}

// A buffered channel tolerates the early return: the send completes and
// the goroutine exits even if nobody receives.
func bufferedResult(fail bool) int {
	ch := make(chan int, 1)
	go func() {
		ch <- work()
	}()
	if fail {
		return 0
	}
	return <-ch
}

// Worker drained by channel close.
func drainWorker(in chan int) {
	done := make(chan struct{})
	go func() {
		for range in {
			work()
		}
		close(done)
	}()
	<-done
}

// Stop-channel select ties the goroutine to its stopper.
func stoppable(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
				work()
			}
		}
	}()
}

// A channel that escapes into a helper is not tracked (the helper may
// receive); no diagnostic.
func escapes(consume func(chan int)) {
	ch := make(chan int)
	go func() {
		ch <- work()
	}()
	consume(ch)
}
