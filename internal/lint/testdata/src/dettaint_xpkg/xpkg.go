// Cross-package fixture for dettaint: the source lives in the
// detsource fixture package, so these findings exist only if the taint
// summary crossed the package boundary as a fact.
package pipeline

import (
	"detsource"

	"giostub"
)

func writeCross() {
	_ = gio.WriteFile("stamp", []byte(detsource.Stamp())) // want `nondeterministic value from time\.Now reaches gio\.WriteFile \(arg 2\)`
}

// A pass-through summary chains: Echo(Stamp()) keeps the taint alive.
func writeChained() {
	s := detsource.Echo(detsource.Stamp())
	_ = gio.WriteFile("stamp2", []byte(s)) // want `nondeterministic value from time\.Now reaches gio\.WriteFile \(arg 2\)`
}

// Clean data through the same pass-through stays clean.
func writeEcho() {
	_ = gio.WriteFile("echo", []byte(detsource.Echo("const")))
}
