// Positive fixture: identity comparison of sentinels and chain-severing
// fmt.Errorf.
package gio

import (
	"errors"
	"fmt"
	"io"
)

var ErrTruncated = errors.New("gio: truncated stream")
var ErrChecksum = errors.New("gio: block checksum mismatch")

func IsTorn(err error) bool {
	return err == ErrTruncated // want `sentinel error gio.ErrTruncated compared with ==`
}

func IsIntact(err error) bool {
	return err != ErrChecksum // want `sentinel error gio.ErrChecksum compared with !=`
}

func AtEOF(err error) bool {
	return err == io.EOF // want `sentinel error io.EOF compared with ==`
}

func Classify(err error) string {
	switch err {
	case ErrTruncated: // want `switch matches sentinel error gio.ErrTruncated by identity`
		return "torn"
	case ErrChecksum: // want `switch matches sentinel error gio.ErrChecksum by identity`
		return "corrupt"
	}
	return "other"
}

func ReadBlock(n int, err error) error {
	return fmt.Errorf("gio: block %d failed: %v", n, err) // want `fmt.Errorf formats an error without %w`
}
