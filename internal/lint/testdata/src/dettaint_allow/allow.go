// Suppression fixture for dettaint.
package pipeline

import (
	"time"

	"giostub"
)

func debugDump() {
	//lint:allow dettaint timestamped debug artifact; excluded from byte-compare
	_ = gio.WriteFile("debug", []byte(time.Now().String()))
}
