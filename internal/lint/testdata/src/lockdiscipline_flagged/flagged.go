// Positive fixture: leaked locks, channel ops under locks (package
// transit is in the rank-exchange set), and lock values copied.
package transit

import "sync"

type Stage struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (s *Stage) LeakOnFallthrough() int {
	s.mu.Lock() // want `s.mu.Lock\(\) without a matching Unlock before the function ends`
	return s.n  // want `return while s.mu is locked`
}

func (s *Stage) LeakOnEarlyReturn(cond bool) {
	s.mu.Lock()
	if cond {
		return // want `return while s.mu is locked`
	}
	s.mu.Unlock()
}

func (s *Stage) SendUnderLock(v int) {
	s.mu.Lock()
	s.ch <- v // want `channel send while holding s.mu`
	s.mu.Unlock()
}

func (s *Stage) ReceiveUnderLock() int {
	s.mu.Lock()
	v := <-s.ch // want `channel receive while holding s.mu`
	s.mu.Unlock()
	return v
}

func ByValue(s Stage) int { // want `parameter "s" copies a lock`
	return s.n
}

func (s Stage) ValueReceiver() int { // want `receiver "s" copies a lock`
	return s.n
}

func CopyAssign(s *Stage) {
	local := *s // want `assignment copies a lock`
	_ = local
}

func RangeCopy(stages []Stage) int {
	total := 0
	for _, st := range stages { // want `range variable "st" copies a lock per iteration`
		total += st.n
	}
	return total
}
