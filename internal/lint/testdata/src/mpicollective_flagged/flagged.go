// Positive fixture for mpicollective: collectives under rank-dependent
// control flow, including ones reached only through helpers two calls
// deep — provably beyond any intraprocedural checker.
package workflow

import "mpistub"

// Direct collective under a rank guard with no else.
func directGuarded(c *mpi.Comm) {
	if c.Rank() == 0 {
		c.Barrier() // want `collective Barrier under rank-dependent condition`
	}
}

// The collective is two helper calls away from the guard: only the
// transitive CallsCollective fact over the call graph can see it.
func helperGuarded(c *mpi.Comm) {
	if c.Rank() == 0 {
		stepOne(c) // want `collective stepOne \(reaches Barrier\) under rank-dependent condition`
	}
}

func stepOne(c *mpi.Comm) { stepTwo(c) }

func stepTwo(c *mpi.Comm) { c.Barrier() }

// Mismatched collective sequences across the arms: rank 0 reduces, the
// rest only synchronize — the reduce deadlocks against the barrier.
func mismatchedArms(c *mpi.Comm) {
	if c.Rank() == 0 { // want `mismatched collective sequences across rank-dependent branches`
		c.AllReduceSum(1)
		c.Barrier()
	} else {
		c.Barrier()
	}
}

// Rank-dependent trip count: rank r calls the collective r times.
func rankBoundedLoop(c *mpi.Comm) {
	for i := 0; i < c.Rank(); i++ {
		c.Barrier() // want `collective Barrier inside a loop with rank-dependent condition`
	}
}

// A guarded early return makes the ranks that return skip the barrier
// below.
func earlyReturn(c *mpi.Comm) {
	if c.Rank() != 0 {
		return // want `rank-dependent early return skips collective`
	}
	c.Barrier()
}

// Taint flows through a local variable.
func taintedLocal(c *mpi.Comm) {
	rank := c.Rank()
	root := rank == 0
	if root {
		c.AllGather(nil) // want `collective AllGather under rank-dependent condition`
	}
}
