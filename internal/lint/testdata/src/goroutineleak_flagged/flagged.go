// Positive fixture for goroutineleak (package sched is in the
// concurrency set): unjoined goroutines and unbuffered sends that can
// outlive their receiver.
package sched

func work() int { return 1 }

// No completion signal at all: nothing outside can ever join this.
func fireAndForget() {
	go func() { // want `goroutine has no completion signal`
		work()
	}()
}

// The goroutine sends, but the spawning function never receives.
func sendNoReceiver() {
	ch := make(chan int)
	go func() {
		ch <- work() // want `no receive in the spawning function`
	}()
}

// An early return sits between the spawn and the only receive: on that
// path the send blocks forever and the goroutine leaks.
func sendPastEarlyReturn(fail bool) int {
	ch := make(chan int)
	go func() {
		ch <- work() // want `can block forever`
	}()
	if fail {
		return 0
	}
	return <-ch
}
