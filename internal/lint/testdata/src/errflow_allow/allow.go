// Suppression fixture for errflow.
package pipeline

import "giostub"

func bestEffort() {
	//lint:allow errflow best-effort debug dump; the journal is the durable copy
	_ = gio.WriteFile("debug.dump", nil)
}
