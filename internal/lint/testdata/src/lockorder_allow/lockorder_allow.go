// Package lockorder_allow pins //lint:allow suppression for lockorder:
// a deliberate inversion with justification comments is not reported.
package lockorder_allow

import "sync"

var (
	a sync.Mutex
	b sync.Mutex
)

func AB() {
	a.Lock()
	defer a.Unlock()
	//lint:allow lockorder shutdown path runs single-threaded
	b.Lock()
	b.Unlock()
}

func BA() {
	b.Lock()
	defer b.Unlock()
	//lint:allow lockorder shutdown path runs single-threaded
	a.Lock()
	a.Unlock()
}
