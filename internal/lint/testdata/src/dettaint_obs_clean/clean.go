// Clean fixtures for dettaint's obs sinks: timestamps drawn from the
// injected simulation clock, and the sanctioned clock-injection points
// themselves.
package sim

import (
	"time"

	"obsstub"
)

// The DES pattern: the engine injects its virtual clock, and every
// timestamp is a draw from that injected function — deterministic by
// construction.
func wire(o *obs.Observer, simNow func() float64) {
	o.SetClock(simNow)
	sp := o.BeginAt("step", "s", simNow())
	sp.EndAt(simNow() + 10)
	o.SpanAt(nil, "job", "j", simNow(), simNow()+5)
}

// Passing time.Now as the *clock function* (not a sampled value) is the
// sanctioned injection point for callers outside the simulation: the
// function reference itself carries no taint.
func wireWall() *obs.Observer {
	o := obs.New("live", nil)
	o.SetClock(func() float64 { return float64(time.Now().UnixNano()) / 1e9 })
	return o
}

// Durations from time.Since are telemetry, sanitized as in the product
// write rules.
func telemetry(o *obs.Observer, started time.Time) {
	d := time.Since(started).Seconds()
	o.BeginAt("step", "s", d).Done()
}
