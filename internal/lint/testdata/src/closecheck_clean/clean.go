// Negative fixture: read-side defers and the named-return capture idiom
// draw no diagnostics.
package gio

import "os"

func ReadProduct(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close() // read-only handle: close error carries no data risk
	buf := make([]byte, 16)
	_, err = f.Read(buf)
	return buf, err
}

func WriteCaptured(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	_, err = f.Write(data)
	return err
}

func WriteExplicit(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
