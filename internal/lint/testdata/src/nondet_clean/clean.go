// Negative fixture: the sanctioned forms of randomness, clocks, and map
// iteration in a deterministic package draw no diagnostics.
package halo

import (
	"math/rand"
	"sort"
	"time"
)

// Seeded generators threaded from configuration are the replacement for
// the global RNG.
func MassSeeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64() * 100
}

// Wall-clock reads whose value only feeds duration telemetry are fine.
func Timed(work func()) time.Duration {
	start := time.Now()
	work()
	return time.Since(start)
}

// Direct time.Since(time.Now()) style telemetry.
func TimedInline(work func()) time.Duration {
	t0 := time.Now()
	work()
	elapsed := time.Since(t0)
	return elapsed
}

// Map iteration is fine when the collected slice is sorted before use.
func TagsSorted(m map[int64]float64) []int64 {
	out := make([]int64, 0, len(m))
	for tag := range m {
		out = append(out, tag)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Order-insensitive reductions over maps are fine.
func Total(m map[int64]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}
