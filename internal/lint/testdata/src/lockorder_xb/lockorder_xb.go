// Package lockorder_xb seeds AB/BA inversions against lockorder_xa,
// exercising both fact channels: Inverted/Straight close a cycle
// through lockorder_xa.Touch's LockSummary object fact, and Backwards
// inverts the Store.Mu → Index.Mu order imported via lockorder_xa's
// LockEdges package fact.
package lockorder_xb

import (
	"sync"

	"lockorder_xa"
)

type Pool struct{ mu sync.Mutex }

var P Pool

// Inverted holds Pool.mu and calls into lockorder_xa, which acquires
// Store.Mu: edge Pool.mu → Store.Mu.
func Inverted() {
	P.mu.Lock()
	defer P.mu.Unlock()
	lockorder_xa.Touch() // want `lock order inversion`
}

// Straight acquires Store.Mu directly, then Pool.mu: the reverse edge,
// closing the AB/BA cycle with Inverted.
func Straight() {
	lockorder_xa.S.Mu.Lock()
	P.mu.Lock() // want `lock order inversion`
	P.mu.Unlock()
	lockorder_xa.S.Mu.Unlock()
}

// Backwards acquires Index.Mu then Store.Mu — inverting the order
// established inside lockorder_xa itself.
func Backwards() {
	lockorder_xa.I.Mu.Lock()
	lockorder_xa.S.Mu.Lock() // want `lock order inversion`
	lockorder_xa.S.Mu.Unlock()
	lockorder_xa.I.Mu.Unlock()
}
