// Positive fixture: a command main (a product-producing package) writing
// files directly, and a rename that never fsyncs.
package main

import "os"

func writeProduct(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `os.WriteFile bypasses internal/ckpt`
}

func createProduct(path string) error {
	f, err := os.Create(path) // want `os.Create bypasses internal/ckpt`
	if err != nil {
		return err
	}
	return f.Close()
}

func stageProduct(dir string) error {
	f, err := os.CreateTemp(dir, "product*") // want `os.CreateTemp bypasses internal/ckpt`
	if err != nil {
		return err
	}
	return f.Close()
}

func appendLog(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644) // want `writable os.OpenFile bypasses internal/ckpt`
}

func publish(tmp, final string) error {
	return os.Rename(tmp, final) // want `os.Rename without a preceding File.Sync`
}

func main() {}
