// Positive fixture: deferred Close on write-opened files drops the
// flush error.
package gio

import "os"

func WriteProduct(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close\(\) discards the close error on a file opened for writing`
	_, err = f.Write(data)
	return err
}

func AppendRecord(path string, rec []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	defer f.Close() // want `defer f.Close\(\) discards the close error on a file opened for writing`
	_, err = f.Write(rec)
	return err
}
