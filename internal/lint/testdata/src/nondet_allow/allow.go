// Allowlist fixture: an explicit //lint:allow suppression silences the
// diagnostic on its own line and on the line below.
package halo

import "math/rand"

func JitterSameLine() float64 {
	return rand.Float64() //lint:allow nondeterminism decorrelation jitter, not a result
}

func JitterLineAbove() float64 {
	//lint:allow nondeterminism decorrelation jitter, not a result
	return rand.Float64()
}

func StillFlagged() float64 {
	return rand.Float64() // want `global math/rand call rand.Float64`
}
