// Scope fixture: package render is not in the deterministic set, so the
// analyzer stays silent even on patterns it would flag elsewhere.
package render

import (
	"math/rand"
	"time"
)

func Jitter() float64 {
	return rand.Float64()
}

func Stamp() int64 {
	return time.Now().UnixNano()
}
