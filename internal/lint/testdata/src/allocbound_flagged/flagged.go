// Flagged fixtures for allocbound: decoded lengths reaching make
// sizes, index expressions, and slice bounds with no bound check.
package parse

import (
	"encoding/binary"
	"strconv"
)

func alloc(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	return make([]byte, n) // want `length decoded by binary\.Uint32 reaches make size unvalidated`
}

func pick(raw string, s []string) string {
	i, _ := strconv.Atoi(raw)
	return s[i] // want `length decoded by strconv\.Atoi reaches index expression unvalidated`
}

func window(b []byte) []byte {
	off, _ := binary.Uvarint(b)
	return b[:off] // want `length decoded by binary\.Uvarint reaches slice bound unvalidated`
}

// Decode here, allocate there: the flow is summary-mediated.
func header(b []byte) int {
	n := binary.LittleEndian.Uint32(b)
	return int(n)
}

func allocHeader(b []byte) []byte {
	return make([]byte, header(b)) // want `length decoded by binary\.Uint32 reaches make size unvalidated`
}
