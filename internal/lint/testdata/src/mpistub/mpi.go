// Package mpi is a fixture stub of the real communicator: the analyzers
// match mpi.Comm by package and type name, so this stands in for
// repro/internal/mpi inside the hermetic fixture universe. Imported by
// other fixtures as `import "mpistub"`.
package mpi

// Comm mirrors the real communicator's collective surface.
type Comm struct {
	rank int
	size int
}

func (c *Comm) Rank() int { return c.rank }
func (c *Comm) Size() int { return c.size }

func (c *Comm) Send(dst, tag int, payload any) {}
func (c *Comm) Recv(src, tag int) any          { return nil }

func (c *Comm) Barrier()                                                  {}
func (c *Comm) AllGather(val any) []any                                   { return nil }
func (c *Comm) AllToAll(out []any) []any                                  { return out }
func (c *Comm) Bcast(root int, val any) any                               { return val }
func (c *Comm) Gather(root int, val any) []any                            { return nil }
func (c *Comm) Scatter(root int, vals []any) any                          { return nil }
func (c *Comm) AllReduceFloat64(v float64, op func(a, b float64) float64) float64 { return v }
func (c *Comm) AllReduceSum(v float64) float64                            { return v }
func (c *Comm) AllReduceMax(v float64) float64                            { return v }
func (c *Comm) AllReduceMin(v float64) float64                            { return v }
func (c *Comm) AllReduceSumInt(v int) int                                 { return v }
