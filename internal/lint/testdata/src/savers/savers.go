// Package savers is a fixture dependency for errflow: it wraps the gio
// write entry point, so its exported functions must carry the
// WriteErrorSource fact across the package boundary.
package savers

import "giostub"

// Save propagates gio.WriteFile's error one package away.
func Save(path string) error {
	return gio.WriteFile(path, nil)
}

// SaveAll is two calls deep on top of that.
func SaveAll(paths []string) error {
	for _, p := range paths {
		if err := Save(p); err != nil {
			return err
		}
	}
	return nil
}

// Count returns no error: no fact.
func Count(paths []string) int {
	return len(paths)
}
