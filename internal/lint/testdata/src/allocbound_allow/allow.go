// Suppression fixture for allocbound.
package parse

import "encoding/binary"

func preallocated(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	//lint:allow allocbound length is validated by the caller's checksum gate
	return make([]byte, n)
}
