// Flow-sensitivity fixture for errflow, pinning both directions of the
// rewrite: a captured write error checked on every path is clean, and
// one dropped (unread or clobbered) on any path is flagged.
package pipeline

import "giostub"

func save(path string) error {
	return gio.WriteFile(path, nil)
}

// lostOnAPath checks the error only when c holds: the !c path drops it.
func lostOnAPath(c bool) error {
	err := save("x") // want `error of save assigned to err but not checked on every path`
	if c {
		return err
	}
	return nil
}

// clobbered overwrites the "b" error before any read.
func clobbered() error {
	err := save("a")
	if err != nil {
		return err
	}
	err = save("b") // want `error of save assigned to err but not checked on every path`
	err = save("c")
	return err
}

// checkedEverywhere returns the error on both branches: clean.
func checkedEverywhere(c bool) error {
	err := save("x")
	if c {
		return err
	}
	return err
}

// condChecked reads the error immediately in the condition — the read
// dominates every path, so later ignoring it is fine.
func condChecked() {
	err := save("x")
	if err != nil {
		panic(err)
	}
}

// loopChecked re-checks per iteration (init-statement capture): clean.
func loopChecked(paths []string) error {
	for _, p := range paths {
		if err := save(p); err != nil {
			return err
		}
	}
	return nil
}

// namedBareReturn funnels the error out through a bare return: clean.
func namedBareReturn() (err error) {
	err = save("x")
	return
}
