// Package collectivehelpers is a fixture dependency: its helpers reach
// collectives, so the mpicollective analyzer must export CallsCollective
// facts for them — the cross-package half of the interprocedural test.
package collectivehelpers

import "mpistub"

// SyncAll reaches a collective directly.
func SyncAll(c *mpi.Comm) {
	c.Barrier()
}

// ReduceAll reaches collectives one call deeper.
func ReduceAll(c *mpi.Comm, v float64) float64 {
	return reduce(c, v)
}

func reduce(c *mpi.Comm, v float64) float64 {
	return c.AllReduceSum(v)
}

// NoCollectives must NOT carry a fact.
func NoCollectives(c *mpi.Comm) int {
	return c.Rank() + c.Size()
}
