// Scope fixture: outside the rank-exchange packages, channel ops under a
// lock are tolerated (rule 3 is scoped), but leaked locks are still
// flagged everywhere (rule 2 is global).
package stats

import "sync"

type Counter struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (c *Counter) SendUnderLockTolerated(v int) {
	c.mu.Lock()
	c.ch <- v
	c.mu.Unlock()
}

func (c *Counter) LeakStillFlagged() int {
	c.mu.Lock() // want `c.mu.Lock\(\) without a matching Unlock before the function ends`
	return c.n  // want `return while c.mu is locked`
}
