// Positive fixture: package halo is in the deterministic set, so every
// ambient-entropy pattern below must be diagnosed.
package halo

import (
	"fmt"
	"math/rand"
	"time"
)

func Mass() float64 {
	return rand.Float64() * 100 // want `global math/rand call rand.Float64`
}

func Pick(n int) int {
	return rand.Intn(n) // want `global math/rand call rand.Intn`
}

func Stamp() int64 {
	return time.Now().UnixNano() // want `time.Now in deterministic package "halo"`
}

func StampVar() int64 {
	t := time.Now() // want `time.Now in deterministic package "halo"`
	return t.Unix()
}

func Tags(m map[int64]float64) []int64 {
	var out []int64
	for tag := range m { // want `map iteration appends to "out"`
		out = append(out, tag)
	}
	return out
}

func Dump(m map[string]int) {
	for k, v := range m { // want `map iteration order reaches output`
		fmt.Println(k, v)
	}
}
