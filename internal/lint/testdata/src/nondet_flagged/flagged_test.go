// Test files are exempt: the same patterns draw no diagnostics here.
package halo

import (
	"math/rand"
	"testing"
)

func TestUsesGlobalRand(t *testing.T) {
	if rand.Float64() < 0 {
		t.Fatal("impossible")
	}
}
