// Cross-package fixture for mpicollective: the collective lives in a
// different fixture package (collectivehelpers), so the finding exists
// only if the CallsCollective fact crossed the package boundary.
package workflow

import (
	"collectivehelpers"
	"mpistub"
)

func guardedCrossPackage(c *mpi.Comm) {
	if c.Rank() == 0 {
		collectivehelpers.SyncAll(c) // want `collective SyncAll \(reaches Barrier\) under rank-dependent condition`
	}
}

// Two packages AND two calls deep: ReduceAll -> reduce -> AllReduceSum.
func deepCrossPackage(c *mpi.Comm) {
	if c.Rank() == 0 {
		_ = collectivehelpers.ReduceAll(c, 1) // want `collective ReduceAll \(reaches AllReduceSum\) under rank-dependent condition`
	}
}

// A fact-free helper under a guard stays clean.
func cleanCrossPackage(c *mpi.Comm) {
	if c.Rank() == 0 {
		_ = collectivehelpers.NoCollectives(c)
	}
}
