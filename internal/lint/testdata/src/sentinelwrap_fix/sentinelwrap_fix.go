// Fix fixture for sentinelwrap rule 2: `workflowlint -fix` rewrites the
// verb that formats the error operand from %v/%s to %w. The .golden
// sibling is the expected post-fix file; RunWithFixes compares bytes.
package gio

import (
	"errors"
	"fmt"
)

var ErrChecksum = errors.New("gio: block checksum mismatch")

// readBlock: the error is the second operand; only its verb changes.
func readBlock(path string) error {
	return fmt.Errorf("read %s: %v", path, ErrChecksum) // want `fmt\.Errorf formats an error without %w`
}

// flush: %s on an error rewrites to %w just the same.
func flush(err error) error {
	return fmt.Errorf("flush failed: %s", err) // want `fmt\.Errorf formats an error without %w`
}

// flagged: flags and width stick to the verb; the edit lands on the
// verb byte only.
func padded(err error) error {
	return fmt.Errorf("op: %-10v (retrying)", err) // want `fmt\.Errorf formats an error without %w`
}

// quoted: %q has no safe rewrite — diagnostic only, no fix, so the
// golden keeps this line unchanged.
func quoted(err error) error {
	return fmt.Errorf("op: %q", err) // want `fmt\.Errorf formats an error without %w`
}

// starWidth: `*` consumes an operand and breaks the mapping — no fix.
func starWidth(w int, err error) error {
	return fmt.Errorf("op: %*d %v", w, w, err) // want `fmt\.Errorf formats an error without %w`
}
