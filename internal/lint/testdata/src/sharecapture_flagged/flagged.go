// Flagged fixtures for sharecapture: loop-spawned goroutines writing
// shared state, and post-spawn reads with no join.
package workers

import "sync"

// Every iteration's goroutine writes the same accumulator.
func sumRace(items []int) int {
	total := 0
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() { // want `goroutine launched in a loop writes captured "total" declared outside the loop`
			defer wg.Done()
			total += it
		}()
	}
	wg.Wait()
	return total
}

// Map writes race regardless of key distinctness.
func collect(keys []string) map[string]bool {
	out := map[string]bool{}
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func() { // want `goroutine launched in a loop writes captured "out" declared outside the loop`
			defer wg.Done()
			out[k] = true
		}()
	}
	wg.Wait()
	return out
}

// The return races with the goroutine's append: no join in between.
func unjoined() []int {
	var res []int
	go func() {
		res = append(res, 1)
	}()
	return res // want `"res" is accessed here while a goroutine launched at line \d+ writes it`
}
