// Allowlist fixture: a deliberate identity check at an API boundary.
package gio

import (
	"errors"
	"fmt"
)

var ErrClosed = errors.New("gio: closed")

func ExactlyClosed(err error) bool {
	//lint:allow sentinelwrap boundary check must not match wrapped copies
	return err == ErrClosed
}

func BoundaryError(err error) error {
	//lint:allow sentinelwrap boundary: the cause is logged, not propagated
	return fmt.Errorf("gio: giving up: %v", err)
}

func StillFlagged(err error) bool {
	return err == ErrClosed // want `sentinel error gio.ErrClosed compared with ==`
}
