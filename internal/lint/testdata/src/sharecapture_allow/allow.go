// Suppression fixture for sharecapture.
package workers

import "sync"

func tally(items []int) int {
	total := 0
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		//lint:allow sharecapture GOMAXPROCS is pinned to 1 in this harness; writes serialize
		go func() {
			defer wg.Done()
			total += it
		}()
	}
	wg.Wait()
	return total
}
