// Suppression fixture for mpicollective: a deliberate rank-guarded
// collective carries //lint:allow with justification and is not flagged.
package workflow

import "mpistub"

func deliberate(c *mpi.Comm) {
	if c.Rank() == 0 {
		//lint:allow mpicollective exercised by a single-rank world in this code path
		c.Barrier()
	}
}
