package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/ssa"
)

// SSAFlow is shared infrastructure, not a check: it lowers every
// function body's CFG to the SSA-lite register IR of package ssa once,
// so value-flow analyzers (dettaint, allocbound) walk def-use chains
// instead of re-deriving reaching definitions from the AST. It reports
// no diagnostics; its result is a *SSAResult.
var SSAFlow = &analysis.Analyzer{
	Name:     "ssaflow",
	Doc:      "lower per-function CFGs to SSA-lite registers (infrastructure for value-flow analyzers)",
	Run:      runSSAFlow,
	Requires: []*analysis.Analyzer{CtrlFlow},
}

// SSAResult holds the package's lowered functions.
type SSAResult struct {
	// ByBody maps each function body to its lowered form.
	ByBody map[*ast.BlockStmt]*ssa.Func
	// Order pairs graphs with lowered bodies in source order.
	Order []SSAFunc
}

// SSAFunc pairs one CFG (with its declaration context) with its
// SSA-lite lowering.
type SSAFunc struct {
	FC *FuncCFG
	F  *ssa.Func
}

func runSSAFlow(pass *analysis.Pass) (any, error) {
	flow := pass.ResultOf[CtrlFlow].(*CFGResult)
	result := &SSAResult{ByBody: map[*ast.BlockStmt]*ssa.Func{}}
	for _, fc := range flow.Order {
		var sig *types.Signature
		switch {
		case fc.Fn != nil:
			sig, _ = fc.Fn.Type().(*types.Signature)
		case fc.Lit != nil:
			if tv, ok := pass.TypesInfo.Types[fc.Lit]; ok {
				sig, _ = tv.Type.(*types.Signature)
			}
		}
		f := ssa.Lower(fc.Name(), fc.Body, fc.G, sig, pass.TypesInfo)
		result.ByBody[fc.Body] = f
		result.Order = append(result.Order, SSAFunc{FC: fc, F: f})
	}
	return result, nil
}
