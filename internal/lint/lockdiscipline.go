package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/analysis"
)

// LockDiscipline enforces the concurrency rules the in-process MPI mesh
// and the transit/sched layers rely on. Three rules:
//
//  1. locks are never copied by value — function receivers, parameters,
//     results, plain assignments, and range variables of types that
//     contain a sync.Mutex/RWMutex (or Cond/WaitGroup/Once/Pool) by
//     value are flagged;
//  2. every Lock has an Unlock on every path — within a function body,
//     a return reached while a lock is held with no matching
//     defer Unlock pending is flagged, as is a lock still held when the
//     body ends;
//  3. in the rank-exchange packages (mpi, transit, sched, dparallel):
//     no channel operation (send, receive, select) while holding a lock
//     — a blocked channel op under a lock stalls every rank that next
//     contends that lock, deadlocking the mesh.
//
// Rule 2 is a token-order approximation, not a CFG analysis: an early
// `return` between Lock and Unlock is exactly the leak it exists to
// catch, and `mu.Unlock(); return` sequences pass. Conditional
// lock/unlock pairs that confuse it should switch to defer or carry a
// //lint:allow lockdiscipline comment with justification.
var LockDiscipline = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "forbid lock copies, leaked locks on return paths, and channel ops under locks",
	Run:  runLockDiscipline,
}

// chanPkgs are the packages where rule 3 (no channel ops under a lock)
// applies.
var chanPkgs = map[string]bool{
	"mpi": true, "transit": true, "sched": true, "dparallel": true,
	"supervise": true,
}

var lockMethods = map[string]bool{"Lock": true, "RLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

func runLockDiscipline(pass *analysis.Pass) (any, error) {
	r := newReporter(pass)
	for _, f := range pass.Files {
		checkLockCopies(pass, r, f)
		funcBodies([]*ast.File{f}, func(name string, body *ast.BlockStmt) {
			checkLockPaths(pass, r, body)
		})
	}
	return nil, nil
}

// --- rule 1: lock values copied ---

func checkLockCopies(pass *analysis.Pass, r *reporter, f *ast.File) {
	info := pass.TypesInfo
	flagIdent := func(id *ast.Ident, what string) {
		obj := info.Defs[id]
		if obj == nil || obj.Type() == nil {
			return
		}
		if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
			return
		}
		if typeHasMutex(obj.Type(), map[types.Type]bool{}) {
			r.reportf(id.Pos(), "%s %q copies a lock: %s contains a sync primitive; pass a pointer",
				what, id.Name, types.TypeString(obj.Type(), types.RelativeTo(pass.Pkg)))
		}
	}
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, id := range field.Names {
				flagIdent(id, what)
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(n.Recv, "receiver")
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.FuncLit:
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if lhs, ok := n.Lhs[i].(*ast.Ident); ok && lhs.Name == "_" {
					continue // discard, not a live copy
				}
				if !copiesExistingValue(rhs) {
					continue
				}
				t := info.Types[rhs].Type
				if t == nil {
					continue
				}
				if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
					continue
				}
				if typeHasMutex(t, map[types.Type]bool{}) {
					r.reportf(rhs.Pos(), "assignment copies a lock: %s contains a sync primitive; use a pointer",
						types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			}
		case *ast.RangeStmt:
			if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
				if obj := info.Defs[id]; obj != nil && obj.Type() != nil &&
					typeHasMutex(obj.Type(), map[types.Type]bool{}) {
					r.reportf(id.Pos(), "range variable %q copies a lock per iteration: %s contains a sync primitive; range over indices or pointers",
						id.Name, types.TypeString(obj.Type(), types.RelativeTo(pass.Pkg)))
				}
			}
		}
		return true
	})
}

// copiesExistingValue reports whether an expression re-reads an existing
// value (and so copies it), as opposed to constructing a fresh one.
func copiesExistingValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name != "nil"
	case *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		return true
	default:
		return false
	}
}

// --- rules 2 and 3: token-order lock simulation ---

type lockEvent struct {
	pos  token.Pos
	kind int // 0 lock, 1 unlock, 2 return, 3 chanop
	key  string
	desc string // chanop description
}

func checkLockPaths(pass *analysis.Pass, r *reporter, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// syncMethod resolves a call to (receiverKey, methodName) when the
	// callee is a sync package Lock/Unlock family method.
	syncMethod := func(call *ast.CallExpr) (string, string, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return "", "", false
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return "", "", false
		}
		name := fn.Name()
		if !lockMethods[name] && !unlockMethods[name] {
			return "", "", false
		}
		key := exprString(sel.X)
		if name == "RLock" || name == "RUnlock" {
			key += " (read)"
		}
		return key, name, true
	}

	// Pass 1: deferred unlocks, direct or inside a deferred closure. The
	// deferred calls themselves are excluded from the pass-2 event stream
	// (they run at function exit, not at their source position).
	deferred := map[string]bool{}
	deferredCalls := map[*ast.CallExpr]bool{}
	bodyNodes(body, func(n ast.Node) {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		deferredCalls[def.Call] = true
		if key, name, ok := syncMethod(def.Call); ok && unlockMethods[name] {
			deferred[key] = true
			return
		}
		if lit, ok := def.Call.Fun.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if key, name, ok := syncMethod(call); ok && unlockMethods[name] {
						deferred[key] = true
					}
				}
				return true
			})
		}
	})

	// Pass 2: the event stream in source order.
	var events []lockEvent
	bodyNodes(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if deferredCalls[n] {
				return
			}
			if key, name, ok := syncMethod(n); ok {
				kind := 0
				if unlockMethods[name] {
					kind = 1
				}
				events = append(events, lockEvent{pos: n.Pos(), kind: kind, key: key})
			}
		case *ast.ReturnStmt:
			events = append(events, lockEvent{pos: n.Pos(), kind: 2})
		case *ast.SendStmt:
			events = append(events, lockEvent{pos: n.Pos(), kind: 3, desc: "send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				events = append(events, lockEvent{pos: n.Pos(), kind: 3, desc: "receive"})
			}
		case *ast.SelectStmt:
			events = append(events, lockEvent{pos: n.Pos(), kind: 3, desc: "select"})
		}
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]token.Pos{}
	checkChans := chanPkgs[pass.Pkg.Name()]
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.key] = ev.pos
		case 1:
			delete(held, ev.key)
		case 2:
			for key := range held {
				if !deferred[key] {
					r.reportf(ev.pos, "return while %s is locked and no defer %s.Unlock() is pending; unlock on every path or defer the unlock",
						key, trimReadSuffix(key))
				}
			}
			// The flagged locks stay notionally held: one diagnostic per
			// escaping return, plus the end-of-function check, mirrors how
			// a reviewer reads the leak.
		case 3:
			if checkChans {
				for key := range held {
					r.reportf(ev.pos, "channel %s while holding %s can deadlock the rank mesh; release the lock around channel operations",
						ev.desc, key)
				}
			}
		}
	}
	for key, pos := range held {
		if !deferred[key] {
			r.reportf(pos, "%s.Lock() without a matching Unlock before the function ends", trimReadSuffix(key))
		}
	}
}

func trimReadSuffix(key string) string {
	const suffix = " (read)"
	if len(key) > len(suffix) && key[len(key)-len(suffix):] == suffix {
		return key[:len(key)-len(suffix)]
	}
	return key
}
