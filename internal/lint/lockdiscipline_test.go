package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.LockDiscipline,
		"lockdiscipline_flagged", "lockdiscipline_clean", "lockdiscipline_otherpkg", "lockdiscipline_allow", "lockdiscipline_supervise")
}
