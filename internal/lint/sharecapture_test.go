package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestShareCapture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.ShareCapture,
		"sharecapture_flagged", "sharecapture_clean", "sharecapture_allow")
}
