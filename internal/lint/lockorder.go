package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/cfg"
)

// LockOrder is the flow-sensitive deadlock analyzer. Per function it
// computes the set of locks held at every program point (a forward
// may/must dataflow over the CFG from ctrlflow) and derives
// acquired-before relations; across functions and packages it assembles
// those relations into a global lock-order graph and reports:
//
//   - lock-order inversion: lock B acquired while A is held somewhere,
//     and A acquired while B is held (directly or through a chain)
//     somewhere else — the classic AB/BA deadlock, including when one
//     side of the cycle lives in another package (sched holding its
//     mutex while calling into transit, say);
//   - double lock: a second mu.Lock() on a path where mu may already be
//     held (self-deadlock), including read-to-write upgrades;
//   - unlock while not held: mu.Unlock() on a path where mu is not held
//     (not on any path, or not on every path into the point).
//
// Two fact types carry the analysis across package boundaries: a
// LockSummary object fact per function (the global lock keys the
// function may acquire, transitively), and a LockEdges package fact (the
// acquired-before pairs established by the package and everything it
// imports). A package's analysis therefore sees the full ordering
// established below it in the import DAG; inversions between packages
// with no import relation in either direction are out of scope (no
// compilation unit ever sees both sides).
//
// Lock identity is two-level. Within a function, locks are tracked by
// receiver expression ("s.mu", "w.reduceMu"), which distinguishes
// instances precisely enough for double-lock/unlock checks. In the
// global graph, locks are keyed by declaration — "pkg.Type.field" for
// struct-field mutexes, "pkg.var" for package-level mutexes — which
// conflates instances of one type. Edges between two locks with the
// same global key are therefore skipped (two instances of one type may
// be locked in either order legitimately, e.g. ordered by index);
// deferred unlocks leave the lock held for ordering purposes, which is
// exactly the window a nested acquisition happens in.
var LockOrder = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "detect AB/BA lock-order inversions, double locks, and unlocks of unheld locks across the workflow packages",
	Run:       runLockOrder,
	Requires:  []*analysis.Analyzer{CallGraph, CtrlFlow},
	FactTypes: []analysis.Fact{(*LockSummary)(nil), (*LockEdges)(nil)},
}

// LockSummary is the object fact on a function: the global lock keys it
// may acquire, directly or through its (transitive) callees.
type LockSummary struct {
	Acquires []string // sorted unique global lock keys
}

func (*LockSummary) AFact() {}

// LockPair is one acquired-before relation: Before was held when After
// was acquired.
type LockPair struct {
	Before, After string
}

// LockEdges is the package fact: every acquired-before pair established
// by this package and the packages it imports (the union makes each
// fact self-contained, so readers need only direct imports).
type LockEdges struct {
	Pairs []LockPair // sorted by (Before, After), unique
}

func (*LockEdges) AFact() {}

func init() {
	analysis.RegisterFactType(&LockSummary{})
	analysis.RegisterFactType(&LockEdges{})
}

// heldBits is the per-lock lattice: may (held on some path) and must
// (held on every path) bits. Join is may-OR / must-AND.
type heldBits uint8

const (
	mayHeld  heldBits = 1
	mustHeld heldBits = 2
)

type lockState map[string]heldBits

func cloneLockState(s lockState) lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinLockState(a, b lockState) lockState {
	out := make(lockState, len(a)+len(b))
	for k, ab := range a {
		nb := ab & mayHeld
		if bb, ok := b[k]; ok {
			nb |= bb & mayHeld
			if ab&mustHeld != 0 && bb&mustHeld != 0 {
				nb |= mustHeld
			}
		}
		out[k] = nb
	}
	for k, bb := range b {
		if _, ok := a[k]; !ok {
			out[k] = bb & mayHeld
		}
	}
	return out
}

func equalLockState(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// lockOp classifies one lock-relevant event inside a CFG node.
type lockOp int

const (
	opAcquire lockOp = iota
	opRelease
	opCall
)

type lockEvt struct {
	op     lockOp
	key    string // local key, " (read)" suffixed for RLock/RUnlock
	global string // global key of the base mutex; "" if local-only
	method string // Lock/RLock/Unlock/RUnlock
	read   bool
	pos    token.Pos
	callee *types.Func // opCall only
}

// globalLockKey derives the declaration-level identity of a lock from
// its receiver expression: "pkg.Type.field" for struct fields,
// "pkg.var" for package-level variables, "pkg.Type" for embedded
// mutexes (receiver is the outer value), "" for purely local locks.
func globalLockKey(info *types.Info, recv ast.Expr) string {
	e := ast.Unparen(recv)
	switch e := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
	case *ast.SelectorExpr:
		// Package-qualified package-level var: pkg.Mu.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Name() + "." + v.Name()
		}
		// Struct field: keyed by the (dereferenced) named type of x.
		if tv, ok := info.Types[e.X]; ok && tv.Type != nil {
			if n := namedOf(tv.Type); n != nil {
				return n.Obj().Pkg().Name() + "." + n.Obj().Name() + "." + e.Sel.Name
			}
		}
		return ""
	}
	// Embedded mutex (s.Lock() with s a struct embedding sync.Mutex):
	// the receiver value itself names the lock.
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		if n := namedOf(tv.Type); n != nil && n.Obj().Pkg().Path() != "sync" {
			return n.Obj().Pkg().Name() + "." + n.Obj().Name()
		}
	}
	return ""
}

// namedOf unwraps pointers and returns the named type with a packaged
// object, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return nil
	}
	return n
}

// orderedPair is one acquired-before observation with the source
// position of the acquisition (for reporting).
type orderedPair struct {
	before, after string
	pos           token.Pos
}

func runLockOrder(pass *analysis.Pass) (any, error) {
	cg := pass.ResultOf[CallGraph].(*CallGraphResult)
	flow := pass.ResultOf[CtrlFlow].(*CFGResult)
	r := newReporter(pass)
	info := pass.TypesInfo

	// --- Phase A: per-function may-acquire summaries (callgraph
	// fixpoint, exported as LockSummary facts) ---

	acquires := map[*types.Func]map[string]bool{}
	for _, fn := range cg.Order {
		node := cg.Nodes[fn]
		if node.Decl == nil || node.Decl.Body == nil || isTestFile(pass.Fset, node.Decl.Pos()) {
			continue
		}
		set := map[string]bool{}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if ev, ok := syncMethodEvt(info, n); ok && ev.op == opAcquire && ev.global != "" {
				set[ev.global] = true
			}
			return true
		})
		acquires[fn] = set
	}
	calleeAcquires := func(fn *types.Func) []string {
		if fn == nil {
			return nil
		}
		if set, ok := acquires[fn]; ok {
			return sortedKeys(set)
		}
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			var fact LockSummary
			if pass.ImportObjectFact(fn, &fact) {
				return fact.Acquires
			}
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.Order {
			set, ok := acquires[fn]
			if !ok {
				continue
			}
			for _, edge := range cg.Nodes[fn].Calls {
				if edge.Callee == fn {
					continue
				}
				for _, key := range calleeAcquires(edge.Callee) {
					if !set[key] {
						set[key] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fn := range cg.Order {
		if set := acquires[fn]; len(set) > 0 {
			pass.ExportObjectFact(fn, &LockSummary{Acquires: sortedKeys(set)})
		}
	}

	// --- Phase B: flow-sensitive per-function walk — held-lock states,
	// local diagnostics, acquired-before pairs ---

	var pairs []orderedPair
	seenPair := map[LockPair]bool{}
	addPair := func(before, after string, pos token.Pos) {
		if before == "" || after == "" || before == after {
			return
		}
		p := LockPair{before, after}
		if seenPair[p] {
			return
		}
		seenPair[p] = true
		pairs = append(pairs, orderedPair{before, after, pos})
	}

	for _, fc := range flow.Order {
		if isTestFile(pass.Fset, fc.Body.Pos()) {
			continue
		}
		// Events per CFG node, cached so the solver's repeated transfer
		// applications don't re-walk subtrees. globals maps a local base
		// key to its global key within this function only (the same
		// receiver text can name different types in other functions).
		evCache := map[ast.Node][]lockEvt{}
		globals := map[string]string{}
		events := func(n ast.Node) []lockEvt {
			if evts, ok := evCache[n]; ok {
				return evts
			}
			evts := nodeLockEvents(info, n)
			for _, ev := range evts {
				if ev.op != opCall && ev.global != "" {
					globals[trimReadSuffix(ev.key)] = ev.global
				}
			}
			evCache[n] = evts
			return evts
		}
		// Pre-scan: most functions touch no locks at all, and a function
		// with no acquire/release and no call into lock-acquiring code
		// can produce neither a diagnostic nor a pair — skip the
		// dataflow solve entirely.
		any := false
		for _, blk := range fc.G.Blocks {
			if !blk.Live || any {
				continue
			}
			for _, n := range blk.Nodes {
				for _, ev := range events(n) {
					if ev.op != opCall || len(calleeAcquires(ev.callee)) > 0 {
						any = true
						break
					}
				}
			}
		}
		if !any {
			continue
		}
		transfer := func(b *cfg.Block, in lockState) lockState {
			out := cloneLockState(in)
			for _, n := range b.Nodes {
				for _, ev := range events(n) {
					switch ev.op {
					case opAcquire:
						out[ev.key] = mayHeld | mustHeld
					case opRelease:
						delete(out, ev.key)
					}
				}
			}
			return out
		}
		sol := cfg.Forward(fc.G, lockState{}, transfer, joinLockState, equalLockState)

		for _, blk := range fc.G.Blocks {
			if !blk.Live {
				continue
			}
			st, ok := sol.In[blk]
			if !ok {
				continue
			}
			st = cloneLockState(st)
			for _, n := range blk.Nodes {
				for _, ev := range events(n) {
					base := trimReadSuffix(ev.key)
					switch ev.op {
					case opAcquire:
						if !ev.read {
							if st[ev.key]&mayHeld != 0 {
								r.reportf(ev.pos, "second %s.Lock() on a path where %s is already held (self-deadlock)", base, base)
							} else if st[base+" (read)"]&mayHeld != 0 {
								r.reportf(ev.pos, "%s.Lock() on a path where %s.RLock() is held (read-to-write upgrade self-deadlocks)", base, base)
							}
						} else if st[base]&mayHeld != 0 {
							r.reportf(ev.pos, "%s.RLock() on a path where %s.Lock() is held (self-deadlock)", base, base)
						}
						for _, h := range sortedStateKeys(st) {
							hb := trimReadSuffix(h)
							if hb == base {
								continue
							}
							addPair(globals[hb], ev.global, ev.pos)
						}
						st[ev.key] = mayHeld | mustHeld
					case opRelease:
						if st[ev.key]&mayHeld == 0 {
							r.reportf(ev.pos, "%s.%s() but %s is not held on any path to this point", base, ev.method, base)
						} else if st[ev.key]&mustHeld == 0 {
							r.reportf(ev.pos, "%s.%s() but %s is not held on every path to this point (lock missing on some branch)", base, ev.method, base)
						}
						delete(st, ev.key)
					case opCall:
						acq := calleeAcquires(ev.callee)
						if len(acq) == 0 {
							continue
						}
						for _, h := range sortedStateKeys(st) {
							hg := globals[trimReadSuffix(h)]
							for _, a := range acq {
								addPair(hg, a, ev.pos)
							}
						}
					}
				}
			}
		}
	}

	// --- Phase C: the global lock-order graph (own pairs + imported
	// LockEdges), cycle detection, fact export ---

	adj := map[string]map[string]bool{}
	addEdge := func(before, after string) {
		if adj[before] == nil {
			adj[before] = map[string]bool{}
		}
		adj[before][after] = true
	}
	allPairs := map[LockPair]bool{}
	for _, p := range pairs {
		addEdge(p.before, p.after)
		allPairs[LockPair{p.before, p.after}] = true
	}
	for _, imp := range pass.Pkg.Imports() {
		var fact LockEdges
		if pass.ImportPackageFact(imp, &fact) {
			for _, p := range fact.Pairs {
				addEdge(p.Before, p.After)
				allPairs[p] = true
			}
		}
	}

	reported := map[LockPair]bool{}
	for _, p := range pairs {
		key := LockPair{p.before, p.after}
		if reported[key] {
			continue
		}
		if path := lockPath(adj, p.after, p.before); path != nil {
			reported[key] = true
			r.reportf(p.pos, "lock order inversion: %s acquired while %s is held, but the order %s is established elsewhere (AB/BA deadlock risk)",
				p.after, p.before, strings.Join(path, " → "))
		}
	}

	if len(allPairs) > 0 {
		out := make([]LockPair, 0, len(allPairs))
		for p := range allPairs {
			out = append(out, p)
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Before != out[j].Before {
				return out[i].Before < out[j].Before
			}
			return out[i].After < out[j].After
		})
		pass.ExportPackageFact(&LockEdges{Pairs: out})
	}
	return nil, nil
}

// syncMethodEvt classifies n as a sync.(RW)Mutex Lock/Unlock-family call.
func syncMethodEvt(info *types.Info, n ast.Node) (lockEvt, bool) {
	call, ok := n.(*ast.CallExpr)
	if !ok {
		return lockEvt{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockEvt{}, false
	}
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockEvt{}, false
	}
	name := fn.Name()
	if !lockMethods[name] && !unlockMethods[name] {
		return lockEvt{}, false
	}
	read := name == "RLock" || name == "RUnlock"
	key := exprString(sel.X)
	if read {
		key += " (read)"
	}
	op := opAcquire
	if unlockMethods[name] {
		op = opRelease
	}
	return lockEvt{
		op:     op,
		key:    key,
		global: globalLockKey(info, sel.X),
		method: name,
		read:   read,
		pos:    call.Pos(),
	}, true
}

// nodeLockEvents extracts the lock events of one CFG node in source
// order: mutex acquire/release calls and calls to functions with lock
// summaries. Function literals are their own CFGs; deferred and go'd
// calls do not execute at their registration point (a deferred unlock
// deliberately leaves the lock held for ordering purposes — the nested
// acquisitions really do happen under it).
func nodeLockEvents(info *types.Info, n ast.Node) []lockEvt {
	var evts []lockEvt
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if ev, ok := syncMethodEvt(info, x); ok {
				evts = append(evts, ev)
				return true
			}
			if fn := calleeFunc(info, x); fn != nil {
				evts = append(evts, lockEvt{op: opCall, pos: x.Pos(), callee: fn})
			}
		}
		return true
	})
	return evts
}

// sortedStateKeys returns the may-held keys of a lock state, sorted.
func sortedStateKeys(st lockState) []string {
	keys := make([]string, 0, len(st))
	for k, bits := range st {
		if bits&mayHeld != 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// lockPath finds a path from → ... → to in the lock-order graph (BFS,
// deterministic neighbor order), returning the node sequence, or nil.
func lockPath(adj map[string]map[string]bool, from, to string) []string {
	if from == to || adj[from] == nil {
		return nil
	}
	prev := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range sortedKeys(adj[cur]) {
			if _, seen := prev[next]; seen {
				continue
			}
			prev[next] = cur
			if next == to {
				var path []string
				for n := to; n != ""; n = prev[n] {
					path = append(path, n)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, next)
		}
	}
	return nil
}
