package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/cfg"
)

// CloseCheck polices the error of Close on write-side handles. For
// buffered or journaled writers the error surfaced at Close is the one
// that says the final flush reached the kernel; discarding it converts
// write failure into silent data loss. Tracked handles, non-test files
// only:
//
//   - *os.File values obtained in the same function from os.Create,
//     os.CreateTemp, or a writable os.OpenFile;
//   - any value whose static type is the crash-consistency journal
//     (*ckpt.Journal) — its Close error reports the final fsync's fate.
//
// The rules are flow-sensitive (CFG + dataflow over the ctrlflow pass):
//
//  1. `defer f.Close()` is flagged unless every path from the defer to
//     function exit either consumes a Close error (return f.Close(),
//     cerr := f.Close(), ...) or exits through an `if err != nil`
//     error return — so the belt-and-braces idiom (deferred backstop
//     close plus a checked close on the success path) is clean;
//  2. a bare `f.Close()` statement (or `_ = f.Close()`) is flagged
//     unless it sits inside an `if err != nil` cleanup block — the
//     error path already reports a failure, best-effort close is fine
//     there;
//  3. a captured close error (cerr := f.Close()) is flagged when no
//     path reads it afterwards; the `if err == nil { err = cerr }`
//     idiom reads it on one branch and is clean.
//
// The canonical fix is the named-return capture:
//
//	defer func() {
//		if cerr := f.Close(); err == nil {
//			err = cerr
//		}
//	}()
//
// Diagnostics on rule 1 carry a suggested fix rewriting the defer to
// that idiom when the enclosing function has a named error result
// `err` (applied by `workflowlint -fix`).
var CloseCheck = &analysis.Analyzer{
	Name:     "closecheck",
	Doc:      "forbid dropping the Close error of write-opened files and journals on any path",
	Run:      runCloseCheck,
	Requires: []*analysis.Analyzer{CtrlFlow},
}

func runCloseCheck(pass *analysis.Pass) (any, error) {
	flow := pass.ResultOf[CtrlFlow].(*CFGResult)
	r := newReporter(pass)
	for _, fc := range flow.Order {
		if isTestFile(pass.Fset, fc.Body.Pos()) {
			continue
		}
		checkCloses(pass, r, fc)
	}
	return nil, nil
}

// closeKind distinguishes the two tracked handle classes for messages.
type closeKind int

const (
	closeFile closeKind = iota
	closeJournal
)

// closeCall is one recv.Close() on a tracked handle.
type closeCall struct {
	call *ast.CallExpr
	recv ast.Expr
	key  string // exprString(recv): handle identity within the function
	kind closeKind
}

func checkCloses(pass *analysis.Pass, r *reporter, fc *FuncCFG) {
	info := pass.TypesInfo
	body := fc.Body

	// Objects bound from write-opening calls in this body.
	writeOpened := map[types.Object]bool{}
	bodyNodes(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(info, call)
		opensForWrite := isPkgFunc(fn, "os", "Create") || isPkgFunc(fn, "os", "CreateTemp") ||
			(isPkgFunc(fn, "os", "OpenFile") && openFileWritable(call))
		if !opensForWrite {
			return
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				writeOpened[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				writeOpened[obj] = true
			}
		}
	})

	// trackedClose classifies a call as recv.Close() on a tracked handle.
	trackedClose := func(call *ast.CallExpr) (closeCall, bool) {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" || len(call.Args) != 0 {
			return closeCall{}, false
		}
		recv := ast.Unparen(sel.X)
		if isCkptJournal(info.Types[recv].Type) {
			return closeCall{call: call, recv: recv, key: exprString(recv), kind: closeJournal}, true
		}
		if id, ok := recv.(*ast.Ident); ok {
			if obj := info.Uses[id]; obj != nil && writeOpened[obj] {
				return closeCall{call: call, recv: recv, key: id.Name, kind: closeFile}, true
			}
		}
		return closeCall{}, false
	}

	// nodeCloses finds the tracked closes inside one CFG node, skipping
	// function-literal bodies (their closes belong to their own CFGs).
	nodeCloses := func(n ast.Node) []closeCall {
		var out []closeCall
		ast.Inspect(n, func(x ast.Node) bool {
			if _, ok := x.(*ast.FuncLit); ok {
				return false
			}
			if call, ok := x.(*ast.CallExpr); ok {
				if cc, ok := trackedClose(call); ok {
					out = append(out, cc)
				}
			}
			return true
		})
		return out
	}

	// Classify a node's syntactic relationship to a close it contains.
	isBareClose := func(n ast.Node, cc closeCall) bool {
		if es, ok := n.(*ast.ExprStmt); ok {
			return ast.Unparen(es.X) == cc.call
		}
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && ast.Unparen(as.Rhs[0]) == cc.call {
			allBlank := true
			for _, lhs := range as.Lhs {
				if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
					allBlank = false
				}
			}
			return allBlank
		}
		return false
	}
	isDeferredClose := func(n ast.Node, cc closeCall) bool {
		def, ok := n.(*ast.DeferStmt)
		return ok && def.Call == cc.call
	}

	inGuard, errReturns := guardedErrorNodes(info, body)

	// okAfter solves, per handle key, the backward must-analysis "every
	// path from here consumes a Close error of this handle or exits
	// through a guarded error return", and returns ok-ness after each
	// node. Solutions are computed lazily, once per key.
	okAfterByKey := map[string]map[ast.Node]bool{}
	okAfter := func(key string) map[ast.Node]bool {
		if m, ok := okAfterByKey[key]; ok {
			return m
		}
		step := func(n ast.Node, state bool) bool {
			if errReturns[n] {
				return true
			}
			for _, cc := range nodeCloses(n) {
				if cc.key == key && !isBareClose(n, cc) && !isDeferredClose(n, cc) {
					return true
				}
			}
			return state
		}
		transfer := func(b *cfg.Block, out bool) bool {
			state := out
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				state = step(b.Nodes[i], state)
			}
			return state
		}
		and := func(a, b bool) bool { return a && b }
		eq := func(a, b bool) bool { return a == b }
		sol := cfg.Backward(fc.G, false, transfer, and, eq)
		m := map[ast.Node]bool{}
		for _, b := range fc.G.Blocks {
			if !b.Live {
				continue
			}
			state, ok := sol.Out[b]
			if !ok {
				continue
			}
			for i := len(b.Nodes) - 1; i >= 0; i-- {
				m[b.Nodes[i]] = state
				state = step(b.Nodes[i], state)
			}
		}
		okAfterByKey[key] = m
		return m
	}

	message := func(cc closeCall, how string) string {
		if cc.kind == closeJournal {
			return how + " discards the journal's close error (the final fsync's verdict); capture it into a named return or log it"
		}
		return how + " discards the close error on a file opened for writing; a failed flush is silent data loss — capture it into a named return"
	}

	for _, blk := range fc.G.Blocks {
		if !blk.Live {
			continue
		}
		for _, n := range blk.Nodes {
			for _, cc := range nodeCloses(n) {
				switch {
				case isDeferredClose(n, cc):
					if !okAfter(cc.key)[n] {
						d := analysis.Diagnostic{
							Pos:     n.Pos(),
							Message: message(cc, "defer "+cc.key+".Close()"),
						}
						if fix, ok := deferCloseFix(pass, fc, n.(*ast.DeferStmt), cc); ok {
							d.SuggestedFixes = []analysis.SuggestedFix{fix}
						}
						r.report(d)
					}
				case isBareClose(n, cc):
					if !inGuard[n] {
						r.reportf(n.Pos(), "%s", message(cc, cc.key+".Close()"))
					}
				default:
					// Captured close: flagged when no path reads the
					// captured error afterwards.
					if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && ast.Unparen(as.Rhs[0]) == cc.call && len(as.Lhs) == 1 {
						if id, ok := ast.Unparen(as.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
							obj := info.Defs[id]
							if obj == nil {
								obj = info.Uses[id]
							}
							if obj != nil && !consumedAfter(info, fc, obj, false)[n] {
								r.reportf(n.Pos(), "close error of %s captured into %s but never checked afterwards; a failed flush is silent data loss",
									cc.key, id.Name)
							}
						}
					}
				}
			}
		}
	}
}

// deferCloseFix builds the named-return capture rewrite for a flagged
// `defer f.Close()`: it applies only when the enclosing function has a
// named error result `err` (so the capture compiles) and the receiver
// renders cleanly.
func deferCloseFix(pass *analysis.Pass, fc *FuncCFG, def *ast.DeferStmt, cc closeCall) (analysis.SuggestedFix, bool) {
	recv := exprString(cc.recv)
	if recv == "?" || !hasNamedErrResult(pass.TypesInfo, fc) {
		return analysis.SuggestedFix{}, false
	}
	newText := "defer func() { cerr := " + recv + ".Close(); if err == nil { err = cerr } }()"
	return analysis.SuggestedFix{
		Message: "capture the close error into the named error return",
		TextEdits: []analysis.TextEdit{{
			Pos:     def.Pos(),
			End:     def.End(),
			NewText: []byte(newText),
		}},
	}, true
}

// hasNamedErrResult reports whether fc's result list includes an
// error-typed result named exactly "err".
func hasNamedErrResult(info *types.Info, fc *FuncCFG) bool {
	var results *ast.FieldList
	if fc.Decl != nil {
		results = fc.Decl.Type.Results
	} else if fc.Lit != nil {
		results = fc.Lit.Type.Results
	}
	if results == nil {
		return false
	}
	for _, field := range results.List {
		for _, id := range field.Names {
			if id.Name == "err" {
				if obj := info.Defs[id]; obj != nil && isErrorType(obj.Type()) {
					return true
				}
			}
		}
	}
	return false
}

// isCkptJournal matches *T or T where T is a type named Journal declared
// in a package named ckpt (name-matched so fixtures participate).
func isCkptJournal(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Journal" && obj.Pkg() != nil && obj.Pkg().Name() == "ckpt"
}
