package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// CloseCheck flags `defer f.Close()` that drops the error on a handle
// opened for writing. For buffered or journaled writers the error
// surfaced at Close is the one that says the final flush reached the
// kernel; discarding it converts write failure into silent data loss.
// Two triggers, non-test files only:
//
//  1. the deferred receiver is an *os.File obtained in the same function
//     from os.Create, os.CreateTemp, or a writable os.OpenFile;
//  2. the deferred receiver's static type is the crash-consistency
//     journal (*ckpt.Journal) — its Close error reports the final
//     fsync's fate.
//
// Read-side defers (os.Open) are fine and not flagged. The fix is the
// named-return capture idiom:
//
//	defer func() {
//		if cerr := f.Close(); err == nil {
//			err = cerr
//		}
//	}()
var CloseCheck = &analysis.Analyzer{
	Name: "closecheck",
	Doc:  "forbid defer f.Close() that drops the error on write-opened files and journals",
	Run:  runCloseCheck,
}

func runCloseCheck(pass *analysis.Pass) (any, error) {
	r := newReporter(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		funcBodies([]*ast.File{f}, func(name string, body *ast.BlockStmt) {
			checkDeferredCloses(pass, r, body)
		})
	}
	return nil, nil
}

func checkDeferredCloses(pass *analysis.Pass, r *reporter, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Objects bound from write-opening calls in this body.
	writeOpened := map[types.Object]bool{}
	bodyNodes(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(info, call)
		opensForWrite := isPkgFunc(fn, "os", "Create") || isPkgFunc(fn, "os", "CreateTemp") ||
			(isPkgFunc(fn, "os", "OpenFile") && openFileWritable(call))
		if !opensForWrite {
			return
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := info.Defs[id]; obj != nil {
				writeOpened[obj] = true
			} else if obj := info.Uses[id]; obj != nil {
				writeOpened[obj] = true
			}
		}
	})

	bodyNodes(body, func(n ast.Node) {
		def, ok := n.(*ast.DeferStmt)
		if !ok {
			return
		}
		sel, ok := ast.Unparen(def.Call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" || len(def.Call.Args) != 0 {
			return
		}
		recv := ast.Unparen(sel.X)

		// Trigger 2: journal handles, by static type.
		if isCkptJournal(info.Types[recv].Type) {
			r.reportf(def.Pos(),
				"defer %s.Close() discards the journal's close error (the final fsync's verdict); capture it into a named return or log it",
				exprString(recv))
			return
		}

		// Trigger 1: same-function write-opened os.File.
		id, ok := recv.(*ast.Ident)
		if !ok {
			return
		}
		if obj := info.Uses[id]; obj != nil && writeOpened[obj] {
			r.reportf(def.Pos(),
				"defer %s.Close() discards the close error on a file opened for writing; a failed flush is silent data loss — capture it into a named return",
				id.Name)
		}
	})
}

// isCkptJournal matches *T or T where T is a type named Journal declared
// in a package named ckpt (name-matched so fixtures participate).
func isCkptJournal(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Journal" && obj.Pkg() != nil && obj.Pkg().Name() == "ckpt"
}
