package lint

import (
	"go/ast"
	"go/token"

	"repro/internal/lint/analysis"
)

// AtomicWrite enforces the crash-consistency protocol from DESIGN.md §9:
// data products are published with write-temp → fsync → rename, and
// everything above the ckpt layer goes through its helpers rather than
// hand-rolling file writes. Two rules, non-test files only:
//
//  1. everywhere: an os.Rename call must be preceded (in the same
//     function) by a Sync call — renaming an unflushed file publishes
//     bytes the kernel may not have; a crash then leaves a torn or empty
//     "committed" product;
//  2. in product-producing packages (gio, catalog, core, cosmotools and
//     the command mains): direct os.Create / os.WriteFile /
//     os.CreateTemp / writable os.OpenFile calls are flagged — product
//     files must be committed via internal/ckpt (WriteFileAtomic or
//     Journal.Commit) so a crash can never tear them. Package ckpt
//     itself (the helper layer) is exempt, as are reads (os.Open).
var AtomicWrite = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc:  "require fsync-before-rename and route product writes through internal/ckpt's atomic helpers",
	Run:  runAtomicWrite,
}

// productPkgs are the packages that land data products on disk.
var productPkgs = map[string]bool{
	"gio": true, "catalog": true, "core": true, "cosmotools": true,
	"main": true,
}

// writeOpenFlags are the os.OpenFile flag names that make a handle
// writable.
var writeOpenFlags = map[string]bool{
	"O_WRONLY": true, "O_RDWR": true, "O_APPEND": true,
	"O_CREATE": true, "O_TRUNC": true,
}

func runAtomicWrite(pass *analysis.Pass) (any, error) {
	r := newReporter(pass)
	inProductPkg := productPkgs[pass.Pkg.Name()] && pass.Pkg.Name() != "ckpt"
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		funcBodies([]*ast.File{f}, func(name string, body *ast.BlockStmt) {
			checkRenameSync(pass, r, body)
		})
		if !inProductPkg {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			switch {
			case isPkgFunc(fn, "os", "Create"), isPkgFunc(fn, "os", "WriteFile"),
				isPkgFunc(fn, "os", "CreateTemp"):
				r.reportf(call.Pos(),
					"os.%s bypasses internal/ckpt's atomic commit: write data products with ckpt.WriteFileAtomic or Journal.Commit so a crash cannot tear the file",
					fn.Name())
			case isPkgFunc(fn, "os", "OpenFile"):
				if openFileWritable(call) {
					r.reportf(call.Pos(),
						"writable os.OpenFile bypasses internal/ckpt's atomic commit: write data products with ckpt.WriteFileAtomic or Journal.Commit")
				}
			}
			return true
		})
	}
	return nil, nil
}

// openFileWritable reports whether an os.OpenFile call's flag argument
// mentions a write-mode flag.
func openFileWritable(call *ast.CallExpr) bool {
	if len(call.Args) < 2 {
		return false
	}
	writable := false
	ast.Inspect(call.Args[1], func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if writeOpenFlags[e.Sel.Name] {
				writable = true
			}
		case *ast.Ident:
			if writeOpenFlags[e.Name] {
				writable = true
			}
		}
		return !writable
	})
	return writable
}

// checkRenameSync flags os.Rename calls with no Sync call earlier in the
// same function body.
func checkRenameSync(pass *analysis.Pass, r *reporter, body *ast.BlockStmt) {
	var syncs []token.Pos
	var renames []*ast.CallExpr
	bodyNodes(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return
		}
		if fn.Name() == "Sync" {
			syncs = append(syncs, call.Pos())
		}
		if isPkgFunc(fn, "os", "Rename") {
			renames = append(renames, call)
		}
	})
	for _, rename := range renames {
		synced := false
		for _, s := range syncs {
			if s < rename.Pos() {
				synced = true
				break
			}
		}
		if !synced {
			r.reportf(rename.Pos(),
				"os.Rename without a preceding File.Sync in this function: a crash can publish unflushed bytes; fsync the temp file first (see ckpt.WriteFileAtomic)")
		}
	}
}
