package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestGoroutineLeak(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.GoroutineLeak,
		"goroutineleak_flagged", "goroutineleak_clean", "goroutineleak_allow", "goroutineleak_otherpkg")
}
