package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.CloseCheck,
		"closecheck_flagged", "closecheck_journal", "closecheck_clean", "closecheck_allow",
		"closecheck_flow")
}

func TestCloseCheckFix(t *testing.T) {
	analysistest.RunWithFixes(t, analysistest.TestData(), lint.CloseCheck,
		"closecheck_fix")
}
