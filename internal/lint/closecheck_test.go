package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestCloseCheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.CloseCheck,
		"closecheck_flagged", "closecheck_journal", "closecheck_clean", "closecheck_allow")
}
