package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// ErrFlow tracks write/IO errors interprocedurally from the persistence
// kernel outward and forbids discarding them. The roots are the write
// entry points of the packages that commit workflow products — fs, gio,
// ckpt, catalog: exported functions returning an error whose name starts
// with Write, Commit, Append, or Save. Any function, in any package,
// that (transitively) calls a root and itself returns an error carries
// the "propagates write errors" fact; the fact crosses package
// boundaries through the driver's fact store (vetx files under go vet).
//
// A call site discards such an error when the call is a bare statement,
// a `go`/`defer` statement, or an assignment with `_` in every
// error-typed result position. Additionally — flow-sensitively, over
// the ctrlflow CFGs — an error captured into a variable is flagged when
// some path to function exit neither reads it nor overwrites-after-
// reading it (a write error checked on every path is clean; one
// dropped on any path is not). A dropped write error is silent data
// loss: the campaign resumes trusting a product that never reached the
// disk. Deliberate discards (best-effort cleanup) take
// //lint:allow errflow with justification.
//
// Test files are exempt — tests write scratch data and assert through
// other means.
var ErrFlow = &analysis.Analyzer{
	Name:      "errflow",
	Doc:       "forbid discarding errors that propagate from the fs/gio/ckpt/catalog write entry points",
	Run:       runErrFlow,
	Requires:  []*analysis.Analyzer{CallGraph, CtrlFlow},
	FactTypes: []analysis.Fact{(*WriteErrorSource)(nil)},
}

// WriteErrorSource is the transitive fact: errors returned by this
// function originate (at least in part) at these write entry points.
type WriteErrorSource struct {
	Roots []string // sorted unique "pkg.Func" root names
}

func (*WriteErrorSource) AFact() {}

func init() { analysis.RegisterFactType(&WriteErrorSource{}) }

// errflowRootPkgs are the persistence packages whose write entry points
// seed the analysis (matched by package name so fixtures participate).
var errflowRootPkgs = map[string]bool{
	"fs": true, "gio": true, "ckpt": true, "catalog": true,
}

var errflowRootPrefixes = []string{"Write", "Commit", "Append", "Save"}

// errflowRoot reports whether fn is a write entry point, and its label.
func errflowRoot(fn *types.Func) (string, bool) {
	if fn == nil || fn.Pkg() == nil || !errflowRootPkgs[fn.Pkg().Name()] || !fn.Exported() {
		return "", false
	}
	named := false
	for _, p := range errflowRootPrefixes {
		if strings.HasPrefix(fn.Name(), p) {
			named = true
			break
		}
	}
	if !named || !returnsError(fn) {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

// returnsError reports whether fn's signature includes an error result.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

func runErrFlow(pass *analysis.Pass) (any, error) {
	cg := pass.ResultOf[CallGraph].(*CallGraphResult)
	r := newReporter(pass)

	// Phase 1: transitive write-error sources for this package's
	// functions. A function propagates iff it returns an error and calls
	// a root or a propagator.
	sources := map[*types.Func]map[string]bool{}
	calleeRoots := func(fn *types.Func) map[string]bool {
		if label, ok := errflowRoot(fn); ok {
			return map[string]bool{label: true}
		}
		if set, ok := sources[fn]; ok {
			return set
		}
		if fn.Pkg() != nil && fn.Pkg() != pass.Pkg {
			var fact WriteErrorSource
			if pass.ImportObjectFact(fn, &fact) {
				set := map[string]bool{}
				for _, root := range fact.Roots {
					set[root] = true
				}
				return set
			}
		}
		return nil
	}
	for _, fn := range cg.Order {
		if returnsError(fn) {
			sources[fn] = map[string]bool{}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range cg.Order {
			set, ok := sources[fn]
			if !ok {
				continue
			}
			for _, edge := range cg.Nodes[fn].Calls {
				for root := range calleeRoots(edge.Callee) {
					if !set[root] {
						set[root] = true
						changed = true
					}
				}
			}
		}
	}
	for _, fn := range cg.Order {
		if set := sources[fn]; len(set) > 0 {
			pass.ExportObjectFact(fn, &WriteErrorSource{Roots: sortedKeys(set)})
		}
	}

	// siteRoots resolves a call expression to the write roots whose
	// errors it can return.
	siteRoots := func(call *ast.CallExpr) (*types.Func, []string) {
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return nil, nil
		}
		set := calleeRoots(fn)
		if len(set) == 0 {
			return nil, nil
		}
		return fn, sortedKeys(set)
	}

	// Phase 2: discarded-error call sites, non-test files only.
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					reportDiscard(pass, r, call, "discarded", siteRoots)
				}
				return false
			case *ast.GoStmt:
				reportDiscard(pass, r, n.Call, "discarded by go statement", siteRoots)
			case *ast.DeferStmt:
				reportDiscard(pass, r, n.Call, "discarded by defer", siteRoots)
			case *ast.AssignStmt:
				checkBlankError(pass, r, n, siteRoots)
			}
			return true
		})
	}

	// Phase 3 (flow-sensitive): write errors captured into variables
	// must be consumed on every path to exit.
	flow := pass.ResultOf[CtrlFlow].(*CFGResult)
	for _, fc := range flow.Order {
		if isTestFile(pass.Fset, fc.Body.Pos()) {
			continue
		}
		checkCapturedErrors(pass, r, fc, siteRoots)
	}
	return nil, nil
}

// checkCapturedErrors flags assignments that capture a write error into
// a variable some path then drops: the variable is not read (before
// being overwritten) on every path from the assignment to exit. Bare
// returns in named-result functions count as reads of the result.
func checkCapturedErrors(pass *analysis.Pass, r *reporter, fc *FuncCFG, siteRoots func(*ast.CallExpr) (*types.Func, []string)) {
	info := pass.TypesInfo
	for _, blk := range fc.G.Blocks {
		if !blk.Live {
			continue
		}
		for _, n := range blk.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn, roots := siteRoots(call)
			if fn == nil {
				continue
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() != len(as.Lhs) {
				continue
			}
			for i := 0; i < sig.Results().Len(); i++ {
				if !isErrorType(sig.Results().At(i).Type()) {
					continue
				}
				id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if !consumedAfter(info, fc, obj, true)[n] {
					r.reportf(as.Pos(),
						"error of %s assigned to %s but not checked on every path: it propagates write errors from %s; a dropped write error is silent data loss",
						fn.Name(), id.Name, strings.Join(roots, ", "))
				}
			}
		}
	}
}

// reportDiscard flags a call whose error results all vanish (statement
// position: nothing is assigned).
func reportDiscard(pass *analysis.Pass, r *reporter, call *ast.CallExpr, how string, siteRoots func(*ast.CallExpr) (*types.Func, []string)) {
	fn, roots := siteRoots(call)
	if fn == nil || !returnsError(fn) {
		return
	}
	r.reportf(call.Pos(),
		"error of %s %s: it propagates write errors from %s; a dropped write error is silent data loss — handle or return it",
		fn.Name(), how, strings.Join(roots, ", "))
}

// checkBlankError flags assignments that route every error result of a
// write-error-propagating call into the blank identifier.
func checkBlankError(pass *analysis.Pass, r *reporter, as *ast.AssignStmt, siteRoots func(*ast.CallExpr) (*types.Func, []string)) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn, roots := siteRoots(call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	// Multi-value form: len(Lhs) == results. Single error result with
	// `_ = f()` is the len==1 case of the same loop.
	if sig.Results().Len() != len(as.Lhs) {
		return
	}
	anyError := false
	allBlank := true
	for i := 0; i < sig.Results().Len(); i++ {
		if !isErrorType(sig.Results().At(i).Type()) {
			continue
		}
		anyError = true
		if id, ok := as.Lhs[i].(*ast.Ident); !ok || id.Name != "_" {
			allBlank = false
		}
	}
	if anyError && allBlank {
		r.reportf(as.Pos(),
			"error of %s assigned to _: it propagates write errors from %s; a dropped write error is silent data loss — handle or return it",
			fn.Name(), strings.Join(roots, ", "))
	}
}
