package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestNondeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.Nondeterminism,
		"nondet_flagged", "nondet_clean", "nondet_otherpkg", "nondet_allow", "nondet_clock")
}
