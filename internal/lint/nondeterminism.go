package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// Nondeterminism enforces PR 2's bit-identical-restart contract on the
// deterministic packages (nbody, ic, halo, center, subhalo, so,
// powerspec, core, gio, ckpt): product bytes must be a pure function of
// (inputs, seed), so ambient entropy may not reach result-producing
// code. Three rules, non-test files only:
//
//  1. no global math/rand calls (rand.Int, rand.Float64, …) — the
//     process-global RNG is shared across goroutines and unseeded;
//     constructors (rand.New, rand.NewSource, rand.NewZipf) for
//     explicitly seeded *rand.Rand instances are the sanctioned
//     replacement and are allowed;
//  2. no argless time.Now except pure telemetry — a time.Now result may
//     only flow into time.Since / Time.Sub (duration logging); anything
//     else can reach output and varies per run;
//  3. no map iteration whose order can reach output — ranging over a map
//     while appending to an outer slice is flagged unless the slice is
//     sorted later in the same function, and ranging while printing or
//     writing to a stream is always flagged.
var Nondeterminism = &analysis.Analyzer{
	Name: "nondeterminism",
	Doc:  "forbid ambient entropy (global rand, wall clock, map order) in result-producing packages",
	Run:  runNondeterminism,
}

// rand constructors that *produce* seeded generators rather than drawing
// from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runNondeterminism(pass *analysis.Pass) (any, error) {
	if !isDeterministicPkg(pass.Pkg) {
		return nil, nil
	}
	r := newReporter(pass)
	for _, f := range pass.Files {
		if isTestFile(pass.Fset, f.Pos()) {
			continue
		}
		parents := parentMap(f)

		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			sig, _ := fn.Type().(*types.Signature)
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
				if sig != nil && sig.Recv() == nil && !randConstructors[fn.Name()] {
					r.reportf(call.Pos(),
						"global math/rand call rand.%s is nondeterministic; draw from a seeded *rand.Rand threaded from the scenario/config",
						fn.Name())
				}
			case "time":
				if fn.Name() == "Now" && sig != nil && sig.Recv() == nil &&
					!telemetryOnlyNow(pass.TypesInfo, call, parents) {
					r.reportf(call.Pos(),
						"time.Now in deterministic package %q may reach results; keep wall-clock reads to telemetry (time.Since) or inject the clock",
						pass.Pkg.Name())
				}
			}
			return true
		})

		checkMapRangeOrder(pass, r, f)
	}
	return nil, nil
}

// parentMap records each node's syntactic parent within one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// telemetryOnlyNow reports whether a time.Now() call's value is consumed
// exclusively by duration telemetry: passed directly to time.Since, or
// bound to a variable whose every use is an operand of time.Since or
// Time.Sub.
func telemetryOnlyNow(info *types.Info, call *ast.CallExpr, parents map[ast.Node]ast.Node) bool {
	parent := parents[call]
	if p, ok := parent.(*ast.ParenExpr); ok {
		parent = parents[p]
	}
	switch p := parent.(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(info, p); isPkgFunc(fn, "time", "Since") {
			return true
		}
	case *ast.AssignStmt:
		obj := assignedObject(info, p, call)
		if obj == nil {
			return false
		}
		// Find the whole file the object lives in via any parent chain,
		// then audit every use.
		root := parent
		for parents[root] != nil {
			root = parents[root]
		}
		file, ok := root.(*ast.File)
		if !ok {
			return false
		}
		return usesAreTelemetry(info, file, obj, parents)
	}
	return false
}

// assignedObject returns the variable object an assignment binds rhs to,
// or nil for multi-value or non-identifier destinations.
func assignedObject(info *types.Info, as *ast.AssignStmt, rhs ast.Expr) types.Object {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	for i, r := range as.Rhs {
		if ast.Unparen(r) != rhs {
			continue
		}
		id, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := info.Defs[id]; obj != nil {
			return obj
		}
		return info.Uses[id]
	}
	return nil
}

// usesAreTelemetry checks that every use of obj in the file is an
// operand of time.Since or Time.Sub.
func usesAreTelemetry(info *types.Info, file *ast.File, obj types.Object, parents map[ast.Node]ast.Node) bool {
	ok := true
	ast.Inspect(file, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent || info.Uses[id] != obj {
			return true
		}
		if !telemetryUse(info, id, parents) {
			ok = false
		}
		return true
	})
	return ok
}

func telemetryUse(info *types.Info, id *ast.Ident, parents map[ast.Node]ast.Node) bool {
	switch p := parents[id].(type) {
	case *ast.CallExpr:
		// time.Since(t) or x.Sub(t)
		fn := calleeFunc(info, p)
		if isPkgFunc(fn, "time", "Since") {
			return true
		}
		return fn != nil && fn.Name() == "Sub" && fn.Pkg() != nil && fn.Pkg().Path() == "time"
	case *ast.SelectorExpr:
		// t.Sub(x): the receiver position of a Sub call.
		if p.Sel.Name != "Sub" {
			return false
		}
		call, ok := parents[p].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn := calleeFunc(info, call)
		return fn != nil && fn.Name() == "Sub" && fn.Pkg() != nil && fn.Pkg().Path() == "time"
	case *ast.AssignStmt:
		// Reassignment like t = time.Now() — fine in itself; the other
		// uses decide.
		return true
	}
	return false
}

// checkMapRangeOrder flags map-range loops whose iteration order can
// reach output.
func checkMapRangeOrder(pass *analysis.Pass, r *reporter, f *ast.File) {
	funcBodies([]*ast.File{f}, func(name string, body *ast.BlockStmt) {
		bodyNodes(body, func(n ast.Node) {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			tv, ok := pass.TypesInfo.Types[rng.X]
			if !ok {
				return
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return
			}
			auditMapRangeBody(pass, r, body, rng)
		})
	})
}

func auditMapRangeBody(pass *analysis.Pass, r *reporter, enclosing *ast.BlockStmt, rng *ast.RangeStmt) {
	info := pass.TypesInfo
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Streaming output inside the loop: order reaches the stream.
		if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil {
			if fn.Pkg().Path() == "fmt" && (fn.Name() == "Fprintf" || fn.Name() == "Fprintln" ||
				fn.Name() == "Fprint" || fn.Name() == "Printf" || fn.Name() == "Println" || fn.Name() == "Print") {
				r.reportf(rng.Pos(),
					"map iteration order reaches output: %s inside the range writes in nondeterministic order; sort the keys first", "fmt."+fn.Name())
				return false
			}
			if fn.Name() == "Write" || fn.Name() == "WriteString" || fn.Name() == "WriteByte" {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					r.reportf(rng.Pos(),
						"map iteration order reaches output: %s inside the range writes in nondeterministic order; sort the keys first", fn.Name())
					return false
				}
			}
		}
		// append to a slice declared outside the loop.
		if isBuiltinAppend(info, call) && len(call.Args) > 0 {
			target, obj := appendTarget(info, call)
			if obj == nil || obj.Pos() >= rng.Pos() {
				return true
			}
			if !sortedLater(info, enclosing, rng, obj) {
				r.reportf(rng.Pos(),
					"map iteration appends to %q in nondeterministic order; sort the keys first or sort %q before it is used", target, target)
			}
			return false
		}
		return true
	})
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// appendTarget returns the identifier (and its object) that an
// append(x, ...) call grows, when x is a plain identifier.
func appendTarget(info *types.Info, call *ast.CallExpr) (string, types.Object) {
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return "", nil
	}
	return id.Name, info.Uses[id]
}

// sortedLater reports whether, after the range loop, the enclosing body
// contains a sort.* or slices.Sort* call that mentions obj.
func sortedLater(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil || n.Pos() <= rng.End() {
			return !found
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && info.Uses[id] == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}
