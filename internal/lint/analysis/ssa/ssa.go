// Package ssa lowers the per-function control-flow graphs of package
// cfg into an SSA-lite intermediate representation: every expression
// and every version of every local variable becomes a virtual register
// (*Value), phi registers are placed at join blocks via dominance
// frontiers, and def-use chains link each register to the instructions
// that consume it. It is the value-flow substrate under workflowlint's
// taint analyzers (dettaint, allocbound): an interprocedural engine can
// walk def-use edges instead of re-deriving reaching definitions from
// the AST per query.
//
// "Lite" is a precise qualifier, not modesty:
//
//   - Local variables that are never address-taken and never referenced
//     by a nested function literal get true SSA form — one register per
//     version, phis at the iterated dominance frontier of their
//     definition blocks (classic Cytron placement over cfg.Dominance).
//   - Address-taken or closure-shared variables degrade to memory:
//     OpVarLoad/OpVarStore against the variable's object, deliberately
//     flow-insensitive (a store anywhere reaches a load anywhere in the
//     same function). Sound for taint: over-approximation only.
//   - Function literals are separate Funcs (their bodies are separate
//     CFGs); an OpClosure register marks the creation site. Value flow
//     does not cross the closure boundary.
//
// The instruction set is the subset value-flow analyses need: calls
// (with static callees resolved), field/index/deref loads, stores,
// make/append, conversions, multi-value extraction, range headers, and
// returns. Everything else lowers to a conservative OpUnknown register
// that still participates in def-use propagation.
package ssa

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/lint/analysis/cfg"
)

// Op is the kind of one instruction/register.
type Op uint8

const (
	OpParam   Op = iota // function parameter (receiver first for methods)
	OpConst             // literal, nil, named constant, or type expression
	OpGlobal            // package-level or imported variable/function
	OpPhi               // SSA phi at a join block
	OpCopy              // named rebinding: x := y (keeps witness names)
	OpCall              // function or method call
	OpBinOp             // binary operator (Tok)
	OpUnOp              // unary operator (Tok; includes <-ch receives)
	OpDeref             // *p load
	OpAddr              // &x
	OpField             // x.f load
	OpIndex             // x[i] load (slice, array, map, string)
	OpSlice             // x[i:j:k]
	OpMake              // make(T, n, ...) — Args are the size operands
	OpLen               // len(x)/cap(x): results carry no content taint
	OpAppend            // append(s, ...)
	OpComposite         // composite literal; Args are the elements
	OpConvert           // T(x) and type assertions
	OpExtract           // Index'th component of a multi-value register
	OpRange             // range header over Args[0]; extracts = key/val
	OpClosure           // function literal creation site
	OpStore             // *no result*: store Args[1] into base Args[0]
	OpVarLoad           // load of a memory-degraded variable (Var)
	OpVarStore          // *no result*: store Args[0] into variable Var
	OpReturn            // *no result*: Args are the returned values
	OpUnknown           // conservative fallback register
)

var opNames = [...]string{
	OpParam: "param", OpConst: "const", OpGlobal: "global", OpPhi: "phi",
	OpCopy: "copy", OpCall: "call", OpBinOp: "binop", OpUnOp: "unop",
	OpDeref: "deref", OpAddr: "addr", OpField: "field", OpIndex: "index",
	OpSlice: "slice", OpMake: "make", OpLen: "len", OpAppend: "append",
	OpComposite: "composite", OpConvert: "convert", OpExtract: "extract",
	OpRange: "range", OpClosure: "closure", OpStore: "store",
	OpVarLoad: "varload", OpVarStore: "varstore", OpReturn: "return",
	OpUnknown: "unknown",
}

func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", int(op))
}

// A Value is one virtual register (for ops that produce a result) or
// effect instruction (OpStore/OpVarStore/OpReturn, which produce none).
type Value struct {
	ID    int
	Op    Op
	Args  []*Value
	Uses  []*Value // instructions consuming this register (def-use chain)
	Block *Block
	Pos   token.Pos

	// Name is the local variable this register (re)defines, or a detail
	// string ("f" for OpField's field, "len" vs "cap" for OpLen).
	Name string
	// Var is the source-level object for OpParam, OpGlobal,
	// OpVarLoad/OpVarStore, and var-targeted OpStore.
	Var types.Object
	// Callee is the statically resolved target of OpCall, nil for
	// indirect calls (the function value is then Args[0]).
	Callee *types.Func
	// RecvArg marks a static method OpCall whose Args[0] is the
	// receiver; engines use it to map Args to summary param indices.
	RecvArg bool
	// Expr is the originating expression, when one exists (type
	// information lives in TypesInfo keyed by it).
	Expr ast.Expr
	// Index is OpExtract's component index.
	Index int
	// Tok is OpBinOp/OpUnOp's operator.
	Tok token.Token
}

// IsComparison reports whether v is a comparison operator register —
// the shape bound-check sanitizers look for.
func (v *Value) IsComparison() bool {
	if v.Op != OpBinOp {
		return false
	}
	switch v.Tok {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// A Block mirrors one live cfg.Block: phis first, then instructions in
// lowering order.
type Block struct {
	CFG    *cfg.Block
	Phis   []*Value
	Instrs []*Value
}

// A Func is the SSA-lite form of one function body.
type Func struct {
	// Name labels the function for diagnostics ("Run", "func literal").
	Name string
	// Params are the OpParam registers: receiver first for methods, then
	// the declared parameters, in signature order.
	Params []*Value
	// NumResults is the signature's result count, so summaries can map
	// OpReturn args to result indices.
	NumResults int
	// Blocks holds the live blocks in cfg index order; Blocks[0] is
	// entry.
	Blocks []*Block
	// Values lists every register in creation order — the deterministic
	// iteration order for engines.
	Values []*Value
	// ByBlock maps cfg blocks to their SSA blocks.
	ByBlock map[*cfg.Block]*Block
}

// String renders the function for tests and debugging.
func (f *Func) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s (%d params, %d results)\n", f.Name, len(f.Params), f.NumResults)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "b%d:\n", b.CFG.Index)
		for _, v := range b.Phis {
			sb.WriteString("\t" + formatValue(v) + "\n")
		}
		for _, v := range b.Instrs {
			sb.WriteString("\t" + formatValue(v) + "\n")
		}
	}
	return sb.String()
}

func formatValue(v *Value) string {
	var sb strings.Builder
	switch v.Op {
	case OpStore, OpVarStore, OpReturn:
		sb.WriteString(v.Op.String())
	default:
		fmt.Fprintf(&sb, "v%d = %s", v.ID, v.Op)
	}
	if v.Name != "" {
		fmt.Fprintf(&sb, " [%s]", v.Name)
	}
	if v.Callee != nil {
		fmt.Fprintf(&sb, " %s", v.Callee.Name())
	}
	if v.Tok != token.ILLEGAL {
		fmt.Fprintf(&sb, " %q", v.Tok.String())
	}
	if v.Op == OpExtract {
		fmt.Fprintf(&sb, " #%d", v.Index)
	}
	for _, a := range v.Args {
		if a == nil {
			sb.WriteString(" v?")
			continue
		}
		fmt.Fprintf(&sb, " v%d", a.ID)
	}
	return sb.String()
}

// Lower builds the SSA-lite form of one function body over its CFG.
// decl carries the declaration when the body belongs to a declared
// function (nil for literals); info must cover the body's file.
func Lower(name string, body *ast.BlockStmt, g *cfg.CFG, sig *types.Signature, info *types.Info) *Func {
	lw := &lowerer{
		fn:      &Func{Name: name, ByBlock: map[*cfg.Block]*Block{}},
		g:       g,
		info:    info,
		defsOut: map[*cfg.Block]map[types.Object]*Value{},
		memVars: map[types.Object]bool{},
		phiVar:  map[*Value]types.Object{},
		rangeByX: map[ast.Expr]*ast.RangeStmt{},
	}
	if sig != nil {
		lw.fn.NumResults = sig.Results().Len()
	}
	lw.collectContext(body)
	lw.scanDefs(sig)
	lw.dom = g.Dominance()
	lw.placePhis()
	lw.renameAll(sig)
	lw.fillPhiOperands()
	return lw.fn
}

type lowerer struct {
	fn   *Func
	g    *cfg.CFG
	info *types.Info
	dom  *cfg.DomTree

	// memVars holds locals degraded to memory (address-taken or shared
	// with a nested function literal).
	memVars map[types.Object]bool
	// defBlocks records, per SSA-tracked local, the live blocks that
	// (re)define it.
	defBlocks map[types.Object]map[*cfg.Block]bool
	// phisByBlock and phiVar record placed phis before operand filling.
	phisByBlock map[*cfg.Block]map[types.Object]*Value
	phiVar      map[*Value]types.Object
	// defsOut snapshots the reaching definition of every SSA local at
	// each block's end, for phi operand filling.
	defsOut map[*cfg.Block]map[types.Object]*Value
	// resultVars are the named result objects (for bare returns).
	resultVars []types.Object
	// rangeByX maps a range statement's X expression to the statement,
	// because cfg blocks carry only X for range headers.
	rangeByX map[ast.Expr]*ast.RangeStmt
}

func (lw *lowerer) newValue(op Op, pos token.Pos, args ...*Value) *Value {
	v := &Value{ID: len(lw.fn.Values), Op: op, Pos: pos, Tok: token.ILLEGAL}
	for _, a := range args {
		if a != nil {
			v.Args = append(v.Args, a)
			a.Uses = append(a.Uses, v)
		}
	}
	lw.fn.Values = append(lw.fn.Values, v)
	return v
}

func (v *Value) addArg(a *Value) {
	if a == nil {
		return
	}
	v.Args = append(v.Args, a)
	a.Uses = append(a.Uses, v)
}

// collectContext walks the whole body once: range headers are keyed by
// their X expression, and variables referenced under & or inside nested
// function literals are degraded to memory.
func (lw *lowerer) collectContext(body *ast.BlockStmt) {
	var litDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			litDepth++
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := lw.objectOf(id); obj != nil && lw.isLocalVar(obj) {
						lw.memVars[obj] = true
					}
				}
				return true
			})
			litDepth--
			return false // nested bodies handled above; don't descend twice
		case *ast.RangeStmt:
			lw.rangeByX[n.X] = n
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := lw.objectOf(id); obj != nil && lw.isLocalVar(obj) {
						lw.memVars[obj] = true
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
}

// objectOf resolves an identifier to its variable object.
func (lw *lowerer) objectOf(id *ast.Ident) types.Object {
	if obj := lw.info.Defs[id]; obj != nil {
		return obj
	}
	return lw.info.Uses[id]
}

// isLocalVar reports whether obj is a function-local variable (not a
// package-level one, not a field, not a constant).
func (lw *lowerer) isLocalVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	// Package-level vars have the package scope as parent.
	if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		return false
	}
	return true
}

// trackable reports whether obj gets SSA registers (vs memory ops).
func (lw *lowerer) trackable(obj types.Object) bool {
	return obj != nil && lw.isLocalVar(obj) && !lw.memVars[obj]
}

// scanDefs records which live blocks define each SSA-tracked local.
func (lw *lowerer) scanDefs(sig *types.Signature) {
	lw.defBlocks = map[types.Object]map[*cfg.Block]bool{}
	note := func(obj types.Object, b *cfg.Block) {
		if !lw.trackable(obj) {
			return
		}
		set := lw.defBlocks[obj]
		if set == nil {
			set = map[*cfg.Block]bool{}
			lw.defBlocks[obj] = set
		}
		set[b] = true
	}
	entry := lw.g.Entry()
	if sig != nil {
		if recv := sig.Recv(); recv != nil {
			note(recv, entry)
		}
		for i := 0; i < sig.Params().Len(); i++ {
			note(sig.Params().At(i), entry)
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if r := sig.Results().At(i); r.Name() != "" && r.Name() != "_" {
				lw.resultVars = append(lw.resultVars, r)
				note(r, entry)
			} else {
				lw.resultVars = append(lw.resultVars, nil)
			}
		}
	}
	for _, b := range lw.g.Blocks {
		if !b.Live {
			continue
		}
		for _, n := range b.Nodes {
			lw.scanNodeDefs(n, b, note)
		}
	}
}

func (lw *lowerer) scanNodeDefs(n ast.Node, b *cfg.Block, note func(types.Object, *cfg.Block)) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, l := range n.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
				note(lw.objectOf(id), b)
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			note(lw.objectOf(id), b)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, id := range vs.Names {
				if id.Name != "_" {
					note(lw.objectOf(id), b)
				}
			}
		}
	case ast.Expr:
		if rng, ok := lw.rangeByX[n]; ok {
			for _, e := range []ast.Expr{rng.Key, rng.Value} {
				if e == nil {
					continue
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
					note(lw.objectOf(id), b)
				}
			}
		}
	}
}

// placePhis inserts phi registers at the iterated dominance frontier of
// each variable's definition blocks (only at blocks with >= 2 live
// preds). Deterministic: variables processed in first-definition order.
func (lw *lowerer) placePhis() {
	lw.phisByBlock = map[*cfg.Block]map[types.Object]*Value{}

	vars := make([]types.Object, 0, len(lw.defBlocks))
	for obj := range lw.defBlocks {
		vars = append(vars, obj)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i].Pos() < vars[j].Pos() })

	for _, obj := range vars {
		defs := lw.defBlocks[obj]
		if len(defs) < 2 {
			continue
		}
		work := make([]*cfg.Block, 0, len(defs))
		for b := range defs {
			work = append(work, b)
		}
		sort.Slice(work, func(i, j int) bool { return work[i].Index < work[j].Index })
		placed := map[*cfg.Block]bool{}
		for len(work) > 0 {
			b := work[0]
			work = work[1:]
			for _, f := range lw.dom.Frontier[b] {
				if placed[f] {
					continue
				}
				placed[f] = true
				phi := lw.newValue(OpPhi, nodesPos(f))
				phi.Name = obj.Name()
				phi.Var = obj
				set := lw.phisByBlock[f]
				if set == nil {
					set = map[types.Object]*Value{}
					lw.phisByBlock[f] = set
				}
				set[obj] = phi
				lw.phiVar[phi] = obj
				if !defs[f] {
					defs[f] = true
					work = append(work, f)
				}
			}
		}
	}
}

// renameAll lowers every live block in dominator-tree DFS order,
// threading the current definition of each SSA local.
func (lw *lowerer) renameAll(sig *types.Signature) {
	entry := lw.g.Entry()
	defs := map[types.Object]*Value{}

	// Materialize blocks in cfg index order first so Blocks is stable
	// regardless of dom-tree shape.
	for _, cb := range lw.g.Blocks {
		if !cb.Live {
			continue
		}
		sb := &Block{CFG: cb}
		lw.fn.Blocks = append(lw.fn.Blocks, sb)
		lw.fn.ByBlock[cb] = sb
	}

	// Parameters (receiver first), then named results zero-initialized.
	if sig != nil {
		addParam := func(obj types.Object, pos token.Pos) {
			p := lw.newValue(OpParam, pos)
			p.Var = obj
			if obj != nil {
				p.Name = obj.Name()
			}
			p.Block = lw.fn.ByBlock[entry]
			lw.fn.Params = append(lw.fn.Params, p)
			if lw.trackable(obj) {
				defs[obj] = p
			} else if obj != nil && lw.memVars[obj] {
				st := lw.newValue(OpVarStore, pos, p)
				st.Var = obj
				st.Name = obj.Name()
				lw.appendInstr(lw.fn.ByBlock[entry], st)
			}
		}
		if recv := sig.Recv(); recv != nil {
			addParam(recv, recv.Pos())
		}
		for i := 0; i < sig.Params().Len(); i++ {
			p := sig.Params().At(i)
			addParam(p, p.Pos())
		}
		for _, r := range lw.resultVars {
			if r == nil {
				continue
			}
			zero := lw.newValue(OpConst, r.Pos())
			zero.Name = r.Name()
			lw.appendInstr(lw.fn.ByBlock[entry], zero)
			if lw.trackable(r) {
				defs[r] = zero
			}
		}
	}

	var visit func(cb *cfg.Block, defs map[types.Object]*Value)
	visit = func(cb *cfg.Block, defs map[types.Object]*Value) {
		sb := lw.fn.ByBlock[cb]
		// Phis redefine their variables at block start.
		if phis := lw.phisByBlock[cb]; len(phis) > 0 {
			objs := make([]types.Object, 0, len(phis))
			for obj := range phis {
				objs = append(objs, obj)
			}
			sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
			for _, obj := range objs {
				phi := phis[obj]
				phi.Block = sb
				sb.Phis = append(sb.Phis, phi)
				defs[obj] = phi
			}
		}
		st := &blockState{lw: lw, sb: sb, defs: defs}
		for _, n := range cb.Nodes {
			st.lowerNode(n)
		}
		// The block is done mutating defs: freeze it as the block's
		// out-state and clone only for the children (leaves and chain
		// blocks are the common case, so this halves the map copying).
		lw.defsOut[cb] = defs
		for _, child := range lw.dom.Children[cb] {
			visit(child, cloneDefs(defs))
		}
	}
	visit(entry, defs)
}

func cloneDefs(m map[types.Object]*Value) map[types.Object]*Value {
	out := make(map[types.Object]*Value, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (lw *lowerer) appendInstr(sb *Block, v *Value) {
	v.Block = sb
	sb.Instrs = append(sb.Instrs, v)
}

// fillPhiOperands wires each phi to its variable's reaching definition
// at the end of every live predecessor.
func (lw *lowerer) fillPhiOperands() {
	for cb, phis := range lw.phisByBlock {
		for _, phi := range phis {
			obj := lw.phiVar[phi]
			for _, p := range cb.Preds {
				if !p.Live {
					continue
				}
				if def, ok := lw.defsOut[p][obj]; ok {
					phi.addArg(def)
				}
			}
		}
	}
}

// nodesPos returns a stable position for synthetic block-level values:
// the first node's position, or NoPos for empty blocks.
func nodesPos(b *cfg.Block) token.Pos {
	if len(b.Nodes) > 0 {
		return b.Nodes[0].Pos()
	}
	return token.NoPos
}
