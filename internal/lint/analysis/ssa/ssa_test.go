package ssa_test

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"repro/internal/lint/analysis/cfg"
	"repro/internal/lint/analysis/ssa"
)

// lowerAll parses src (one file), type-checks it leniently, and lowers
// every function body, returning the Funcs keyed by name.
func lowerAll(t *testing.T, src string) map[string]*ssa.Func {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil), Error: func(error) {}}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	_ = pkg

	out := map[string]*ssa.Func{}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		g := cfg.Build(fd.Body)
		var sig *types.Signature
		if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
			sig = fn.Type().(*types.Signature)
		}
		fn := ssa.Lower(fd.Name.Name, fd.Body, g, sig, info)
		if err := wellFormed(fn); err != nil {
			t.Fatalf("%s: ill-formed IR: %v\n%s", fd.Name.Name, err, fn)
		}
		out[fd.Name.Name] = fn
	}
	return out
}

// wellFormed checks the IR invariants the fuzz target also enforces:
// dense IDs, every value parked in exactly one place, def-use edges
// symmetric, phis only at blocks with multiple live predecessors.
func wellFormed(f *ssa.Func) error {
	seen := map[*ssa.Value]string{}
	park := func(v *ssa.Value, where string) error {
		if prev, dup := seen[v]; dup {
			return fmt.Errorf("v%d parked twice: %s and %s", v.ID, prev, where)
		}
		seen[v] = where
		return nil
	}
	for _, p := range f.Params {
		if err := park(p, "params"); err != nil {
			return err
		}
	}
	for _, b := range f.Blocks {
		for _, v := range b.Phis {
			if v.Op != ssa.OpPhi {
				return fmt.Errorf("non-phi v%d in phi list", v.ID)
			}
			if err := park(v, "phis"); err != nil {
				return err
			}
			if v.Block != b {
				return fmt.Errorf("phi v%d block mismatch", v.ID)
			}
		}
		for _, v := range b.Instrs {
			if err := park(v, "instrs"); err != nil {
				return err
			}
			if v.Block != b {
				return fmt.Errorf("instr v%d block mismatch", v.ID)
			}
		}
	}
	for i, v := range f.Values {
		if v.ID != i {
			return fmt.Errorf("value %d has ID %d", i, v.ID)
		}
		if _, ok := seen[v]; !ok {
			return fmt.Errorf("v%d (%s) not parked in any block", v.ID, v.Op)
		}
		for _, a := range v.Args {
			if a == nil {
				return fmt.Errorf("v%d has nil arg", v.ID)
			}
			found := false
			for _, u := range a.Uses {
				if u == v {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("def-use asymmetry: v%d uses v%d but is not in its Uses", v.ID, a.ID)
			}
		}
	}
	return nil
}

func TestPhiPlacementAtJoin(t *testing.T) {
	fns := lowerAll(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	} else {
		x = 3
	}
	return x
}`)
	f := fns["f"]
	var phis []*ssa.Value
	for _, b := range f.Blocks {
		phis = append(phis, b.Phis...)
	}
	if len(phis) != 1 {
		t.Fatalf("want exactly 1 phi (for x at the if-join), got %d\n%s", len(phis), f)
	}
	phi := phis[0]
	if phi.Name != "x" {
		t.Errorf("phi is for %q, want x", phi.Name)
	}
	if len(phi.Args) != 2 {
		t.Errorf("phi has %d operands, want 2 (one per arm)\n%s", len(phi.Args), f)
	}
	// The return must consume the phi, not either arm's def.
	var ret *ssa.Value
	for _, v := range f.Values {
		if v.Op == ssa.OpReturn {
			ret = v
		}
	}
	if ret == nil || len(ret.Args) != 1 {
		t.Fatalf("missing return\n%s", f)
	}
	if ret.Args[0].Op != ssa.OpPhi {
		t.Errorf("return consumes %s, want the phi\n%s", ret.Args[0].Op, f)
	}
}

func TestLoopPhi(t *testing.T) {
	fns := lowerAll(t, `package p
func sum(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`)
	f := fns["sum"]
	phiVars := map[string]int{}
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			phiVars[phi.Name]++
		}
	}
	// Both s and i are assigned in multiple blocks; each needs a phi at
	// the loop head.
	if phiVars["s"] == 0 || phiVars["i"] == 0 {
		t.Errorf("want phis for s and i at the loop head, got %v\n%s", phiVars, f)
	}
}

func TestAddressTakenDegradesToMemory(t *testing.T) {
	fns := lowerAll(t, `package p
func g(p *int) {}
func f() int {
	x := 1
	g(&x)
	return x
}`)
	f := fns["f"]
	hasVarLoad := false
	for _, v := range f.Values {
		if v.Op == ssa.OpPhi && v.Name == "x" {
			t.Errorf("address-taken x must not get SSA phis")
		}
		if v.Op == ssa.OpVarLoad && v.Name == "x" {
			hasVarLoad = true
		}
	}
	if !hasVarLoad {
		t.Errorf("address-taken x must be read through OpVarLoad\n%s", f)
	}
}

func TestCallLoweringResolvesStaticCallee(t *testing.T) {
	fns := lowerAll(t, `package p
import "strconv"
func f(s string) (int, error) {
	n, err := strconv.Atoi(s)
	return n, err
}`)
	f := fns["f"]
	var call *ssa.Value
	extracts := 0
	for _, v := range f.Values {
		switch v.Op {
		case ssa.OpCall:
			call = v
		case ssa.OpExtract:
			extracts++
		}
	}
	if call == nil || call.Callee == nil || call.Callee.Name() != "Atoi" {
		t.Fatalf("Atoi call not resolved\n%s", f)
	}
	if extracts != 2 {
		t.Errorf("want 2 extracts for (n, err), got %d\n%s", extracts, f)
	}
	if len(call.Args) != 1 || call.Args[0].Op != ssa.OpParam {
		t.Errorf("Atoi should consume the parameter register\n%s", f)
	}
}

func TestRangeOverMapExtracts(t *testing.T) {
	fns := lowerAll(t, `package p
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}`)
	f := fns["keys"]
	var rng *ssa.Value
	for _, v := range f.Values {
		if v.Op == ssa.OpRange {
			rng = v
		}
	}
	if rng == nil {
		t.Fatalf("no OpRange\n%s", f)
	}
	// The key extract must feed (through the copy that names k) the
	// append.
	foundAppend := false
	var walk func(v *ssa.Value, depth int) bool
	walk = func(v *ssa.Value, depth int) bool {
		if depth > 6 {
			return false
		}
		for _, u := range v.Uses {
			if u.Op == ssa.OpAppend {
				return true
			}
			if walk(u, depth+1) {
				return true
			}
		}
		return false
	}
	for _, u := range rng.Uses {
		if u.Op == ssa.OpExtract && walk(u, 0) {
			foundAppend = true
		}
	}
	if !foundAppend {
		t.Errorf("range key does not reach the append via def-use\n%s", f)
	}
}

func TestNamedResultBareReturn(t *testing.T) {
	fns := lowerAll(t, `package p
func f(c bool) (err error) {
	if c {
		return
	}
	return nil
}`)
	f := fns["f"]
	for _, v := range f.Values {
		if v.Op == ssa.OpReturn && len(v.Args) != 1 {
			t.Errorf("return carries %d args, want 1 (named result err)\n%s", len(v.Args), f)
		}
	}
}

func TestMakeAndLenOps(t *testing.T) {
	fns := lowerAll(t, `package p
func f(n int, s []byte) []byte {
	b := make([]byte, n, n*2)
	_ = len(s)
	return b
}`)
	f := fns["f"]
	var mk, ln *ssa.Value
	for _, v := range f.Values {
		switch v.Op {
		case ssa.OpMake:
			mk = v
		case ssa.OpLen:
			ln = v
		}
	}
	if mk == nil || len(mk.Args) != 2 {
		t.Fatalf("make not lowered with 2 size args\n%s", f)
	}
	if ln == nil || ln.Name != "len" {
		t.Errorf("len not lowered to OpLen\n%s", f)
	}
}

func TestDominanceTree(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", `package p
func f(c bool) {
	if c {
		println(1)
	} else {
		println(2)
	}
	println(3)
	for c {
		println(4)
	}
}`, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := f.Decls[0].(*ast.FuncDecl).Body
	g := cfg.Build(body)
	dom := g.Dominance()

	entry := g.Entry()
	if _, hasIdom := dom.Idom[entry]; hasIdom {
		t.Errorf("entry must have no immediate dominator")
	}
	for _, b := range g.Blocks {
		if !b.Live || b == entry {
			continue
		}
		id, ok := dom.Idom[b]
		if !ok {
			t.Errorf("live block %d has no idom", b.Index)
			continue
		}
		if !dom.Dominates(id, b) {
			t.Errorf("idom(%d)=%d does not dominate it", b.Index, id.Index)
		}
		if !dom.Dominates(entry, b) {
			t.Errorf("entry does not dominate live block %d", b.Index)
		}
	}
	// The if-join (two live preds) must be in the frontier of both arms.
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		livePreds := 0
		for _, p := range b.Preds {
			if p.Live {
				livePreds++
			}
		}
		if livePreds < 2 {
			continue
		}
		for _, p := range b.Preds {
			if !p.Live || dom.Dominates(p, b) && p != b {
				continue
			}
			found := false
			for _, fr := range dom.Frontier[p] {
				if fr == b {
					found = true
				}
			}
			if !found && !strings.Contains(b.Comment, "loop") {
				t.Errorf("join block %d missing from frontier of pred %d", b.Index, p.Index)
			}
		}
	}
}
