package ssa

import (
	"go/ast"
	"go/token"
	"go/types"
)

// blockState lowers the atomic nodes of one cfg block, threading the
// current SSA definition of every tracked local.
type blockState struct {
	lw   *lowerer
	sb   *Block
	defs map[types.Object]*Value
}

// lowerNode dispatches one atomic cfg node: a simple statement or the
// controlling expression of a compound statement.
func (st *blockState) lowerNode(n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		st.lowerAssign(n)
	case *ast.DeclStmt:
		st.lowerDecl(n)
	case *ast.IncDecStmt:
		st.lowerIncDec(n)
	case *ast.ReturnStmt:
		st.lowerReturn(n)
	case *ast.ExprStmt:
		st.lowerExpr(n.X)
	case *ast.GoStmt:
		st.lowerExpr(n.Call)
	case *ast.DeferStmt:
		st.lowerExpr(n.Call)
	case *ast.SendStmt:
		ch := st.lowerExpr(n.Chan)
		val := st.lowerExpr(n.Value)
		send := st.emit(OpUnknown, n.Pos(), ch, val)
		send.Name = "send"
	case *ast.BranchStmt, *ast.EmptyStmt, *ast.LabeledStmt:
		// control only — no values
	case ast.Stmt:
		st.emit(OpUnknown, n.Pos())
	case ast.Expr:
		if rng, ok := st.lw.rangeByX[n]; ok {
			st.lowerRange(rng)
			return
		}
		st.lowerExpr(n)
	}
}

func (st *blockState) emit(op Op, pos token.Pos, args ...*Value) *Value {
	v := st.lw.newValue(op, pos, args...)
	st.lw.appendInstr(st.sb, v)
	return v
}

// define binds obj's current SSA definition, or degrades to a memory
// store for untracked locals / package-level vars.
func (st *blockState) define(id *ast.Ident, val *Value, pos token.Pos) {
	if id.Name == "_" || val == nil {
		return
	}
	obj := st.lw.objectOf(id)
	if obj == nil {
		return
	}
	if st.lw.trackable(obj) {
		// Rebind through an OpCopy so the register records the variable
		// name it now carries (witness paths read these).
		cp := st.emit(OpCopy, pos, val)
		cp.Name = obj.Name()
		cp.Var = obj
		st.defs[obj] = cp
		return
	}
	store := st.emit(OpVarStore, pos, val)
	store.Var = obj
	store.Name = obj.Name()
}

// use returns obj's reaching definition, synthesizing a conservative
// OpUnknown for locals without one (use-before-def only arises in dead
// or goto-heavy code).
func (st *blockState) use(id *ast.Ident) *Value {
	obj := st.lw.objectOf(id)
	if obj == nil {
		u := st.emit(OpUnknown, id.Pos())
		u.Name = id.Name
		return u
	}
	if st.lw.trackable(obj) {
		if def, ok := st.defs[obj]; ok {
			return def
		}
		u := st.emit(OpUnknown, id.Pos())
		u.Name = id.Name
		u.Var = obj
		st.defs[obj] = u
		return u
	}
	if v, ok := obj.(*types.Var); ok {
		if st.lw.memVars[obj] || !st.lw.isLocalVar(obj) {
			ld := st.emit(OpVarLoad, id.Pos())
			ld.Var = v
			ld.Name = id.Name
			ld.Expr = id
			return ld
		}
	}
	g := st.emit(OpGlobal, id.Pos())
	g.Var = obj
	g.Name = id.Name
	g.Expr = id
	return g
}

func (st *blockState) lowerAssign(as *ast.AssignStmt) {
	// Multi-value RHS: one call/index/assert/receive fanned out through
	// extracts.
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		tuple := st.lowerExpr(as.Rhs[0])
		for i, l := range as.Lhs {
			ext := st.emit(OpExtract, as.Pos(), tuple)
			ext.Index = i
			st.assignTo(l, ext, as.Pos())
		}
		return
	}
	if len(as.Lhs) == len(as.Rhs) {
		// Evaluate all RHS first (Go's tuple-assignment semantics), then
		// bind.
		vals := make([]*Value, len(as.Rhs))
		for i, r := range as.Rhs {
			vals[i] = st.lowerExpr(r)
		}
		for i, l := range as.Lhs {
			val := vals[i]
			// Compound assignment (x += y) reads the old value too.
			if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
				old := st.lowerExpr(as.Lhs[i])
				bin := st.emit(OpBinOp, as.Pos(), old, val)
				bin.Tok = compoundOp(as.Tok)
				val = bin
			}
			st.assignTo(l, val, as.Pos())
		}
	}
}

// compoundOp maps an assignment operator (+=) to its binary operator.
func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_NOT_ASSIGN:
		return token.AND_NOT
	}
	return tok
}

// assignTo routes one assigned value to its destination: an SSA
// rebinding for plain locals, an OpStore against the base register for
// fields/indexes/derefs.
func (st *blockState) assignTo(dst ast.Expr, val *Value, pos token.Pos) {
	if val == nil {
		return
	}
	switch dst := ast.Unparen(dst).(type) {
	case *ast.Ident:
		st.define(dst, val, pos)
	case *ast.IndexExpr:
		base := st.lowerExpr(dst.X)
		idx := st.lowerExpr(dst.Index)
		store := st.emit(OpStore, pos, base, val, idx)
		store.Expr = dst
		if id, ok := ast.Unparen(dst.X).(*ast.Ident); ok {
			store.Var = st.lw.objectOf(id)
		}
	case *ast.SelectorExpr:
		base := st.lowerExpr(dst.X)
		store := st.emit(OpStore, pos, base, val)
		store.Name = dst.Sel.Name
		store.Expr = dst
		if id, ok := ast.Unparen(dst.X).(*ast.Ident); ok {
			store.Var = st.lw.objectOf(id)
		}
	case *ast.StarExpr:
		base := st.lowerExpr(dst.X)
		store := st.emit(OpStore, pos, base, val)
		store.Expr = dst
	default:
		st.emit(OpUnknown, pos, val)
	}
}

func (st *blockState) lowerDecl(ds *ast.DeclStmt) {
	gd, ok := ds.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if len(vs.Values) == 1 && len(vs.Names) > 1 {
			tuple := st.lowerExpr(vs.Values[0])
			for i, id := range vs.Names {
				ext := st.emit(OpExtract, id.Pos(), tuple)
				ext.Index = i
				st.define(id, ext, id.Pos())
			}
			continue
		}
		for i, id := range vs.Names {
			var val *Value
			if i < len(vs.Values) {
				val = st.lowerExpr(vs.Values[i])
			} else {
				val = st.emit(OpConst, id.Pos()) // zero value
			}
			st.define(id, val, id.Pos())
		}
	}
}

func (st *blockState) lowerIncDec(n *ast.IncDecStmt) {
	old := st.lowerExpr(n.X)
	one := st.emit(OpConst, n.Pos())
	bin := st.emit(OpBinOp, n.Pos(), old, one)
	if n.Tok == token.INC {
		bin.Tok = token.ADD
	} else {
		bin.Tok = token.SUB
	}
	st.assignTo(n.X, bin, n.Pos())
}

func (st *blockState) lowerReturn(n *ast.ReturnStmt) {
	ret := st.emit(OpReturn, n.Pos())
	if len(n.Results) == 0 {
		// Bare return in a named-result function returns the current
		// definitions of the result variables.
		for _, obj := range st.lw.resultVars {
			if obj == nil {
				ret.addArg(st.emit(OpConst, n.Pos()))
				continue
			}
			if st.lw.trackable(obj) {
				if def, ok := st.defs[obj]; ok {
					ret.addArg(def)
					continue
				}
			}
			if st.lw.memVars[obj] {
				ld := st.emit(OpVarLoad, n.Pos())
				ld.Var = obj
				ld.Name = obj.Name()
				ret.addArg(ld)
				continue
			}
			ret.addArg(st.emit(OpConst, n.Pos()))
		}
		return
	}
	if len(n.Results) == 1 && st.lw.fn.NumResults > 1 {
		// return f(): fan the tuple out so result indices line up.
		tuple := st.lowerExpr(n.Results[0])
		for i := 0; i < st.lw.fn.NumResults; i++ {
			ext := st.emit(OpExtract, n.Pos(), tuple)
			ext.Index = i
			ret.addArg(ext)
		}
		return
	}
	for _, r := range n.Results {
		ret.addArg(st.lowerExpr(r))
	}
}

func (st *blockState) lowerRange(rng *ast.RangeStmt) {
	x := st.lowerExpr(rng.X)
	r := st.emit(OpRange, rng.Pos(), x)
	r.Expr = rng.X
	bind := func(e ast.Expr, idx int) {
		if e == nil {
			return
		}
		ext := st.emit(OpExtract, rng.Pos(), r)
		ext.Index = idx
		ext.Expr = rng.X
		st.assignTo(e, ext, rng.Pos())
	}
	bind(rng.Key, 0)
	bind(rng.Value, 1)
}

// lowerExpr lowers one expression to a register. It never returns nil.
func (st *blockState) lowerExpr(e ast.Expr) *Value {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		return st.use(e)

	case *ast.BasicLit:
		c := st.emit(OpConst, e.Pos())
		c.Expr = e
		return c

	case *ast.CallExpr:
		return st.lowerCall(e)

	case *ast.SelectorExpr:
		return st.lowerSelector(e)

	case *ast.IndexExpr:
		// Generic instantiation parses as IndexExpr; a function-typed
		// result means this is not an element load.
		if tv, ok := st.lw.info.Types[e]; ok {
			if _, isSig := tv.Type.Underlying().(*types.Signature); isSig {
				return st.lowerExpr(e.X)
			}
		}
		base := st.lowerExpr(e.X)
		idx := st.lowerExpr(e.Index)
		v := st.emit(OpIndex, e.Pos(), base, idx)
		v.Expr = e
		return v

	case *ast.IndexListExpr:
		return st.lowerExpr(e.X)

	case *ast.SliceExpr:
		args := []*Value{st.lowerExpr(e.X)}
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				args = append(args, st.lowerExpr(idx))
			}
		}
		v := st.emit(OpSlice, e.Pos(), args...)
		v.Expr = e
		return v

	case *ast.StarExpr:
		v := st.emit(OpDeref, e.Pos(), st.lowerExpr(e.X))
		v.Expr = e
		return v

	case *ast.UnaryExpr:
		switch e.Op {
		case token.AND:
			v := st.emit(OpAddr, e.Pos(), st.lowerExpr(e.X))
			v.Expr = e
			return v
		default:
			v := st.emit(OpUnOp, e.Pos(), st.lowerExpr(e.X))
			v.Tok = e.Op
			v.Expr = e
			return v
		}

	case *ast.BinaryExpr:
		x := st.lowerExpr(e.X)
		y := st.lowerExpr(e.Y)
		v := st.emit(OpBinOp, e.Pos(), x, y)
		v.Tok = e.Op
		v.Expr = e
		return v

	case *ast.CompositeLit:
		var args []*Value
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				// Map keys are values too; struct field names are not.
				if _, isIdent := kv.Key.(*ast.Ident); !isIdent {
					args = append(args, st.lowerExpr(kv.Key))
				} else if tv, ok := st.lw.info.Types[e]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						args = append(args, st.lowerExpr(kv.Key))
					}
				}
				args = append(args, st.lowerExpr(kv.Value))
				continue
			}
			args = append(args, st.lowerExpr(elt))
		}
		v := st.emit(OpComposite, e.Pos(), args...)
		v.Expr = e
		return v

	case *ast.FuncLit:
		v := st.emit(OpClosure, e.Pos())
		v.Expr = e
		return v

	case *ast.TypeAssertExpr:
		v := st.emit(OpConvert, e.Pos(), st.lowerExpr(e.X))
		v.Expr = e
		return v

	default:
		// Types in expression position, ellipses, channel types, ...
		v := st.emit(OpConst, e.Pos())
		if ex, ok := e.(ast.Expr); ok {
			v.Expr = ex
		}
		return v
	}
}

// lowerSelector distinguishes field loads, qualified identifiers, and
// method values.
func (st *blockState) lowerSelector(e *ast.SelectorExpr) *Value {
	if sel, ok := st.lw.info.Selections[e]; ok {
		base := st.lowerExpr(e.X)
		switch sel.Kind() {
		case types.FieldVal:
			v := st.emit(OpField, e.Pos(), base)
			v.Name = e.Sel.Name
			v.Expr = e
			return v
		default: // method value/expr
			v := st.emit(OpUnknown, e.Pos(), base)
			v.Name = e.Sel.Name
			v.Expr = e
			return v
		}
	}
	// Qualified identifier: pkg.Name.
	obj := st.lw.objectOf(e.Sel)
	v := st.emit(OpGlobal, e.Pos())
	v.Var = obj
	v.Name = e.Sel.Name
	v.Expr = e
	return v
}

func (st *blockState) lowerCall(call *ast.CallExpr) *Value {
	info := st.lw.info

	// Conversion: T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		v := st.emit(OpConvert, call.Pos(), st.lowerExpr(call.Args[0]))
		v.Expr = call
		return v
	}

	// Builtins with special value-flow shapes.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				var sizes []*Value
				for _, a := range call.Args[1:] { // Args[0] is the type
					sizes = append(sizes, st.lowerExpr(a))
				}
				v := st.emit(OpMake, call.Pos(), sizes...)
				v.Expr = call
				return v
			case "len", "cap":
				var arg *Value
				if len(call.Args) == 1 {
					arg = st.lowerExpr(call.Args[0])
				}
				v := st.emit(OpLen, call.Pos(), arg)
				v.Name = id.Name
				v.Expr = call
				return v
			case "append":
				var args []*Value
				for _, a := range call.Args {
					args = append(args, st.lowerExpr(a))
				}
				v := st.emit(OpAppend, call.Pos(), args...)
				v.Expr = call
				return v
			case "new":
				v := st.emit(OpComposite, call.Pos())
				v.Expr = call
				return v
			default:
				var args []*Value
				for _, a := range call.Args {
					args = append(args, st.lowerExpr(a))
				}
				v := st.emit(OpCall, call.Pos(), args...)
				v.Name = id.Name
				v.Expr = call
				return v
			}
		}
	}

	// Resolve a static callee (function or method).
	var callee *types.Func
	var recv *Value
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = info.Uses[fun.Sel].(*types.Func)
		if callee != nil {
			if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
				recv = st.lowerExpr(fun.X)
			}
		}
	}

	var args []*Value
	recvArg := false
	if callee == nil {
		// Indirect call: the function value participates as Args[0].
		args = append(args, st.lowerExpr(call.Fun))
	} else if recv != nil {
		args = append(args, recv)
		recvArg = true
	}
	for _, a := range call.Args {
		args = append(args, st.lowerExpr(a))
	}
	v := st.emit(OpCall, call.Pos(), args...)
	v.Callee = callee
	v.RecvArg = recvArg
	v.Expr = call
	if callee != nil {
		v.Name = callee.Name()
	}
	return v
}
