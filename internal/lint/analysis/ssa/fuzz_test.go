package ssa_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"repro/internal/lint/analysis/cfg"
	"repro/internal/lint/analysis/ssa"
)

// fuzzSeeds is the seed corpus: the statement shapes the CFG builder
// decomposes (labeled loops, goto, switch fallthrough, select, defer,
// range, panic) plus value shapes the lowerer special-cases
// (multi-assign, compound ops, closures, address-of, bare returns).
var fuzzSeeds = []string{
	`package p
func f(c bool) int { x := 1; if c { x = 2 }; return x }`,
	`package p
func f(n int) int {
	s := 0
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if j == 3 {
				continue outer
			}
			if j == 4 {
				break outer
			}
			s += j
		}
	}
	return s
}`,
	`package p
func f(m map[string][]int) (out []int) {
	for k, vs := range m {
		_ = k
		out = append(out, vs...)
	}
	return
}`,
	`package p
func f(x int) string {
	switch x {
	case 1:
		return "a"
	case 2:
		fallthrough
	case 3:
		return "b"
	default:
		panic("bad")
	}
}`,
	`package p
func f(ch chan int, done chan struct{}) int {
	total := 0
	for {
		select {
		case v := <-ch:
			total += v
		case <-done:
			return total
		}
	}
}`,
	`package p
func f() (err error) {
	defer func() {
		if err != nil {
			err = nil
		}
	}()
	goto end
end:
	return
}`,
	`package p
func f(a, b int) (int, int) { a, b = b, a; a += b; b *= 2; return a, b }`,
	`package p
func f() *int { x := 0; p := &x; *p = 1; return p }`,
	`package p
func f(s []int) {
	g := func(i int) int { return s[i] }
	_ = g(0)
}`,
	`package p
func f(n uint64) []byte {
	if n > 1<<20 {
		return nil
	}
	buf := make([]byte, n, n+8)
	buf = buf[1:n]
	return buf
}`,
}

// FuzzLower drives the whole front half of the analysis kernel —
// parse, CFG construction, dominance, SSA lowering — over arbitrary
// function bodies, and requires two invariants: no panics, and
// well-formed IR (dense IDs, symmetric def-use edges, every register
// parked in exactly one block). Inputs that do not parse are skipped;
// inputs that do not type-check are still lowered (the lowerer must be
// robust to partial type information, since drivers analyze packages
// with missing dependencies during fixture bring-up).
func FuzzLower(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			return // keep the mutator honest; giant inputs only slow the run
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
		if err != nil {
			return
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		}
		// No importer: imports fail to resolve, exercising the
		// partial-information paths. Type errors are expected and ignored.
		conf := types.Config{Error: func(error) {}}
		conf.Check("fuzz", fset, []*ast.File{file}, info) //nolint:errcheck

		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var sig *types.Signature
			name := "fuzz"
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				body = n.Body
				name = n.Name.Name
				if fn, ok := info.Defs[n.Name].(*types.Func); ok {
					sig, _ = fn.Type().(*types.Signature)
				}
			case *ast.FuncLit:
				body = n.Body
				if tv, ok := info.Types[n]; ok {
					sig, _ = tv.Type.(*types.Signature)
				}
			default:
				return true
			}
			g := cfg.Build(body)
			// CFG invariants: entry live, edges symmetric.
			for _, b := range g.Blocks {
				for _, s := range b.Succs {
					found := false
					for _, p := range s.Preds {
						if p == b {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s: asymmetric edge b%d->b%d", name, b.Index, s.Index)
					}
				}
			}
			fn := ssa.Lower(name, body, g, sig, info)
			if err := wellFormed(fn); err != nil {
				t.Fatalf("%s: ill-formed IR: %v\nsource:\n%s", name, err, src)
			}
			return true
		})
	})
}
