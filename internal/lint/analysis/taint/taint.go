// Package taint is a generic interprocedural taint engine over the
// SSA-lite IR of package ssa. An analyzer instantiates it with a Spec —
// which registers originate taint (sources), which instruction operands
// must never receive it (sinks), and which calls launder it
// (sanitizers) — and the engine computes, per function, where taint
// flows along def-use chains, through phis, stores, and call sites.
//
// Call sites are resolved through per-function Summaries: compact,
// gob-serializable descriptions of how taint crosses one function
// boundary (param-to-result pass-through, results carrying internal
// source taint, params reaching internal sinks). Within a package the
// engine iterates to a fixpoint over all function bodies; across
// packages, summaries travel as analysis Facts — the External hook
// looks them up for imported callees. Witness paths are k-bounded
// (MaxPath hops, "…" marks truncation) so summaries stay small and the
// fixpoint terminates even on recursive call chains.
//
// The engine is deliberately conservative where the IR is: calls with
// no summary pass taint from every argument to their results,
// address-taken variables are flow-insensitive, and value flow never
// crosses a closure boundary.
package taint

import (
	"go/types"
	"sort"

	"repro/internal/lint/analysis/ssa"
)

// An Elem is one unit of taint on a register: either "derives from
// source <Source>" (Param < 0) or "derives from parameter Param" (the
// element summaries are built from).
type Elem struct {
	// Source labels the originating source ("time.Now", "map iteration
	// order"). Empty for parameter elements.
	Source string
	// Param is the originating parameter index (receiver first for
	// methods), or -1 for source elements.
	Param int
	// Path is the k-bounded witness: one hop per variable rebinding or
	// call boundary the taint crossed, "…" if truncated.
	Path []string
}

// elemKey is the identity of an element — everything but the witness
// path. A comparable struct (not a formatted string) because it is the
// map key on every register of every function: the propagation inner
// loops hash it constantly.
type elemKey struct {
	source string
	param  int
}

func (e Elem) key() elemKey {
	return elemKey{e.Source, e.Param}
}

// A SinkUse names one operand of a sink instruction. Spec.Sinks returns
// one per (operand, description) pair.
type SinkUse struct {
	// Arg is the operand register that must not be tainted.
	Arg *ssa.Value
	// Sink describes the sink for diagnostics ("gio.WriteState arg 2",
	// "make size").
	Sink string
}

// A Spec instantiates the engine for one analyzer. All hooks may be
// nil.
type Spec struct {
	// Source classifies a register as originating taint, returning its
	// label. Called once per register before propagation.
	Source func(v *ssa.Value) (label string, ok bool)
	// Sinks lists the sink operands of one instruction. Evaluated after
	// the fixpoint: a tainted operand is a finding (source taint) or a
	// summary entry (parameter taint).
	Sinks func(v *ssa.Value) []SinkUse
	// Sanitizer reports a call whose results are clean regardless of
	// arguments (time.Since, strconv.Quote, ...).
	Sanitizer func(v *ssa.Value) bool
	// InPlaceSanitizer reports a call that cleanses its argument
	// registers in place (sort.Slice canonicalizes an order-tainted
	// slice). Sanitized registers neither receive nor propagate taint.
	InPlaceSanitizer func(v *ssa.Value) bool
	// BoundCheckSanitizes treats any comparison of a register as
	// validating it (the allocbound idiom: a length checked against a
	// bound is no longer unvalidated).
	BoundCheckSanitizes bool
}

// A Summary is the boundary behavior of one function — the unit carried
// across packages as an analysis Fact. All fields are sorted, so gob
// encodings are deterministic.
type Summary struct {
	// Flows are param-to-result pass-throughs.
	Flows []ParamFlow
	// Results are results carrying taint from a source inside the
	// function (or its callees).
	Results []ResultTaint
	// Sinks are parameters that reach a sink inside the function (or
	// its callees).
	Sinks []ParamSink
}

// ParamFlow records that taint on parameter Param flows to result
// Result.
type ParamFlow struct {
	Param, Result int
	Path          []string
}

// ResultTaint records that result Result carries taint from Source.
type ResultTaint struct {
	Result int
	Source string
	Path   []string
}

// ParamSink records that parameter Param reaches sink Sink.
type ParamSink struct {
	Param int
	Sink  string
	Path  []string
}

// Empty reports whether the summary says nothing.
func (s *Summary) Empty() bool {
	return s == nil || len(s.Flows) == 0 && len(s.Results) == 0 && len(s.Sinks) == 0
}

// A Finding is one source-reaches-sink violation.
type Finding struct {
	// Pos is the sink position (the call site, for sinks inside
	// callees).
	Pos    int // token.Pos widened; kept as int for painless sorting
	Sink   string
	Source string
	Path   []string
}

// A FuncInfo pairs one lowered body with its declared object (nil for
// function literals, which get findings but no summary).
type FuncInfo struct {
	Fn  *types.Func
	SSA *ssa.Func
}

// A Result is the package-level outcome.
type Result struct {
	// Summaries holds the stabilized summary of every declared function.
	Summaries map[*types.Func]*Summary
	// Findings are source-reaches-sink violations, sorted by position.
	Findings []Finding
}

// An Engine runs one Spec over package function bodies.
type Engine struct {
	Spec Spec
	// MaxPath bounds witness paths and call-context composition
	// (default 8 hops).
	MaxPath int
	// External resolves summaries for callees outside the analyzed
	// set — typically via Pass.ImportObjectFact. May be nil.
	External func(fn *types.Func) (*Summary, bool)
}

func (e *Engine) maxPath() int {
	if e.MaxPath > 0 {
		return e.MaxPath
	}
	return 8
}

// maxIters bounds the package-level fixpoint; summaries grow
// monotonically so convergence is fast, but recursion plus path churn
// must not spin forever.
const maxIters = 12

// AnalyzePackage computes summaries and findings for a set of function
// bodies, iterating until summaries stabilize so intra-package call
// chains resolve in any declaration order. The fixpoint is driven by
// the intra-package caller graph: a function re-analyzes only when a
// callee's summary materializes or changes, so the common function —
// calling nothing whose summary moved — is analyzed exactly once
// rather than once per whole-package round.
func (e *Engine) AnalyzePackage(fns []FuncInfo) *Result {
	summaries := map[*types.Func]*Summary{}

	// callersOf[g] lists the fns indexes that contain a call to g.
	callersOf := map[*types.Func][]int{}
	for i, fi := range fns {
		if fi.SSA == nil {
			continue
		}
		seen := map[*types.Func]bool{}
		for _, v := range fi.SSA.Values {
			if v.Op == ssa.OpCall && v.Callee != nil && !seen[v.Callee] {
				seen[v.Callee] = true
				callersOf[v.Callee] = append(callersOf[v.Callee], i)
			}
		}
	}

	findingsPer := make([][]Finding, len(fns))
	rounds := make([]int, len(fns)) // re-analysis cap per function
	queued := make([]bool, len(fns))
	var queue []int
	for i := range fns {
		if fns[i].SSA != nil {
			queue = append(queue, i)
			queued[i] = true
		}
	}
	for head := 0; head < len(queue); head++ {
		i := queue[head]
		queued[i] = false
		if rounds[i] >= maxIters {
			continue
		}
		rounds[i]++
		fi := fns[i]
		sum, fs := e.analyzeFunc(fi, summaries)
		findingsPer[i] = fs
		if fi.Fn == nil {
			continue
		}
		prev, existed := summaries[fi.Fn]
		summaries[fi.Fn] = sum
		if existed && sameSummary(prev, sum) {
			continue
		}
		// First materialization or structural change: callers saw the
		// conservative (or stale) transfer and must recompute.
		for _, c := range callersOf[fi.Fn] {
			if !queued[c] {
				queued[c] = true
				queue = append(queue, c)
			}
		}
	}

	var findings []Finding
	for _, fs := range findingsPer {
		findings = append(findings, fs...)
	}
	return &Result{Summaries: summaries, Findings: dedupFindings(findings)}
}

func dedupFindings(fs []Finding) []Finding {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		if a.Sink != b.Sink {
			return a.Sink < b.Sink
		}
		return a.Source < b.Source
	})
	out := fs[:0]
	for i, f := range fs {
		if i > 0 && f.Pos == fs[i-1].Pos && f.Sink == fs[i-1].Sink && f.Source == fs[i-1].Source {
			continue
		}
		out = append(out, f)
	}
	return out
}

// sameSummary compares two summaries structurally, ignoring witness
// paths (paths may keep reshaping under recursion; the flow facts are
// what must stabilize).
func sameSummary(a, b *Summary) bool {
	if a == nil || b == nil {
		return a.Empty() && b.Empty()
	}
	if len(a.Flows) != len(b.Flows) || len(a.Results) != len(b.Results) || len(a.Sinks) != len(b.Sinks) {
		return false
	}
	for i := range a.Flows {
		if a.Flows[i].Param != b.Flows[i].Param || a.Flows[i].Result != b.Flows[i].Result {
			return false
		}
	}
	for i := range a.Results {
		if a.Results[i].Result != b.Results[i].Result || a.Results[i].Source != b.Results[i].Source {
			return false
		}
	}
	for i := range a.Sinks {
		if a.Sinks[i].Param != b.Sinks[i].Param || a.Sinks[i].Sink != b.Sinks[i].Sink {
			return false
		}
	}
	return true
}

// state is the per-function propagation state. Register state is
// indexed by the dense Value.ID and element sets are small slices with
// linear-scan insertion: almost every tainted register carries one or
// two elements, so hashing and per-register map headers cost more than
// the scan they avoid — this layout is what keeps the whole-repo pass
// inside its benchmark budget.
type state struct {
	e         *Engine
	f         *ssa.Func
	summaries map[*types.Func]*Summary

	elems    [][]Elem // by Value.ID
	varElems map[types.Object][]Elem
	varLoads map[types.Object][]*ssa.Value

	sanitizedReg []bool // by Value.ID
	sanitizedVar map[types.Object]bool

	work   []*ssa.Value
	inWork []bool // by Value.ID

	// scratch backs the transient element sets built by unionArgs and
	// applyCall; merge copies out of them immediately, so one buffer
	// (reused across every transfer in the function) is safe and spares
	// an allocation per instruction visit.
	scratch []Elem
}

// hasElem reports whether set already carries an element with el's
// identity (source, param) — witness paths do not participate.
func hasElem(set []Elem, k elemKey) bool {
	for _, have := range set {
		if have.key() == k {
			return true
		}
	}
	return false
}

func (e *Engine) analyzeFunc(fi FuncInfo, summaries map[*types.Func]*Summary) (*Summary, []Finding) {
	n := len(fi.SSA.Values)
	st := &state{
		e: e, f: fi.SSA, summaries: summaries,
		elems:        make([][]Elem, n),
		varElems:     map[types.Object][]Elem{},
		varLoads:     map[types.Object][]*ssa.Value{},
		sanitizedReg: make([]bool, n),
		sanitizedVar: map[types.Object]bool{},
		inWork:       make([]bool, n),
	}
	st.preScan()
	st.seed()
	st.propagate()
	return st.harvest(fi)
}

// preScan indexes var loads and computes the sanitized sets: registers
// (and memory variables) that an in-place sanitizer or — under
// BoundCheckSanitizes — a comparison touches never carry taint.
func (st *state) preScan() {
	spec := &st.e.Spec
	for _, v := range st.f.Values {
		if v.Op == ssa.OpVarLoad && v.Var != nil {
			st.varLoads[v.Var] = append(st.varLoads[v.Var], v)
		}
		if v.Op == ssa.OpCall && spec.InPlaceSanitizer != nil && spec.InPlaceSanitizer(v) {
			st.sanitizeArgs(v)
		}
		if spec.BoundCheckSanitizes && v.IsComparison() {
			st.sanitizeArgs(v)
		}
	}
}

func (st *state) sanitizeArgs(v *ssa.Value) {
	for _, a := range v.Args {
		st.sanitizedReg[a.ID] = true
		// A memory-degraded variable dies everywhere: every load
		// aliases the same flow-insensitive cell.
		if a.Op == ssa.OpVarLoad && a.Var != nil {
			st.sanitizedVar[a.Var] = true
		}
	}
}

// seed assigns initial elements: one Param element per parameter, one
// Source element per register the Spec classifies as a source.
func (st *state) seed() {
	var one [1]Elem
	for i, p := range st.f.Params {
		one[0] = Elem{Param: i}
		st.merge(p, one[:])
	}
	if src := st.e.Spec.Source; src != nil {
		for _, v := range st.f.Values {
			if label, ok := src(v); ok {
				one[0] = Elem{Source: label, Param: -1, Path: []string{label}}
				st.merge(v, one[:])
			}
		}
	}
	// Calls whose summaries taint a result independently of arguments
	// (zero-arg sources-by-transitivity) never see an operand change,
	// so transfer each call once up front.
	for _, v := range st.f.Values {
		if v.Op == ssa.OpCall {
			st.applyCall(v)
		}
	}
}

// merge adds elements to a register, queueing its uses on change.
func (st *state) merge(v *ssa.Value, add []Elem) {
	if v == nil || len(add) == 0 || st.sanitizedReg[v.ID] {
		return
	}
	cur := st.elems[v.ID]
	changed := false
	for _, el := range add {
		if hasElem(cur, el.key()) {
			continue
		}
		cur = append(cur, el)
		changed = true
	}
	st.elems[v.ID] = cur
	if changed && !st.inWork[v.ID] {
		st.inWork[v.ID] = true
		st.work = append(st.work, v)
	}
}

// mergeVar adds elements to a memory variable and re-seeds its loads.
func (st *state) mergeVar(obj types.Object, add []Elem) {
	if obj == nil || len(add) == 0 || st.sanitizedVar[obj] {
		return
	}
	cur := st.varElems[obj]
	changed := false
	for _, el := range add {
		if hasElem(cur, el.key()) {
			continue
		}
		cur = append(cur, el)
		changed = true
	}
	if !changed {
		return
	}
	st.varElems[obj] = cur
	for _, ld := range st.varLoads[obj] {
		st.merge(ld, cur)
	}
}

func (st *state) propagate() {
	for len(st.work) > 0 {
		v := st.work[len(st.work)-1]
		st.work = st.work[:len(st.work)-1]
		st.inWork[v.ID] = false
		for _, u := range v.Uses {
			st.apply(u)
		}
	}
}

// apply recomputes one instruction's incoming taint from its operands.
// Monotone: only adds elements.
func (st *state) apply(u *ssa.Value) {
	switch u.Op {
	case ssa.OpLen, ssa.OpMake, ssa.OpReturn, ssa.OpClosure:
		// len/cap strips content taint; make sizes do not taint the
		// fresh zeroed object (the size itself is the allocbound sink,
		// checked separately); returns are read at harvest; closures
		// do not carry operand flow.
		return
	case ssa.OpBinOp:
		if u.IsComparison() {
			return // a comparison result is a bool, not the data
		}
		st.merge(u, st.unionArgs(u, ""))
	case ssa.OpCopy:
		st.merge(u, st.unionArgs(u, u.Name))
	case ssa.OpStore:
		// store base, val[, idx]: the value taints the base register
		// and — through pointers and memory-degraded bases — the
		// variable behind it.
		if len(u.Args) < 2 {
			return
		}
		val := st.elems[u.Args[1].ID]
		base := u.Args[0]
		st.merge(base, val)
		if u.Var != nil {
			st.mergeVar(u.Var, val)
		}
		if base.Op == ssa.OpAddr && len(base.Args) == 1 && base.Args[0].Var != nil {
			st.mergeVar(base.Args[0].Var, val)
		}
	case ssa.OpVarStore:
		if u.Var != nil && len(u.Args) == 1 {
			st.mergeVar(u.Var, st.elems[u.Args[0].ID])
		}
	case ssa.OpCall:
		st.applyCall(u)
	default:
		// Phi, convert, extract, field, index, slice, append,
		// composite, unop, deref, addr, range, unknown: union of
		// operands.
		st.merge(u, st.unionArgs(u, ""))
	}
}

// unionArgs unions the operand elements, appending hop to each witness
// path when non-empty.
func (st *state) unionArgs(u *ssa.Value, hop string) []Elem {
	out := st.scratch[:0]
	var hops []string
	if hop != "" {
		hops = []string{hop}
	}
	for _, a := range u.Args {
		for _, el := range st.elems[a.ID] {
			if hasElem(out, el.key()) {
				continue
			}
			if hops != nil {
				el.Path = appendPath(el.Path, hops, st.e.maxPath())
			}
			out = append(out, el)
		}
	}
	st.scratch = out
	return out
}

// applyCall transfers taint through a call site: sanitizers stop it,
// summaries route it precisely, and unresolved callees pass every
// argument to the result (conservative).
func (st *state) applyCall(u *ssa.Value) {
	spec := &st.e.Spec
	if spec.Sanitizer != nil && spec.Sanitizer(u) {
		return
	}
	if spec.InPlaceSanitizer != nil && spec.InPlaceSanitizer(u) {
		return
	}
	sum := st.summaryFor(u.Callee)
	if sum == nil {
		hop := ""
		if u.Name != "" {
			hop = u.Name + "()"
		}
		st.merge(u, st.unionArgs(u, hop))
		return
	}
	if sum.Empty() {
		return
	}
	hop := []string{u.Callee.Name() + "()"}
	add := st.scratch[:0]
	for _, flow := range sum.Flows {
		for _, a := range st.argsForParam(u, flow.Param) {
			for _, el := range st.elems[a.ID] {
				if hasElem(add, el.key()) {
					continue
				}
				el.Path = appendPath(el.Path, hop, st.e.maxPath())
				add = append(add, el)
			}
		}
	}
	for _, rt := range sum.Results {
		el := Elem{
			Source: rt.Source,
			Param:  -1,
			Path:   appendPath(rt.Path, hop, st.e.maxPath()),
		}
		if !hasElem(add, el.key()) {
			add = append(add, el)
		}
	}
	st.scratch = add
	st.merge(u, add)
}

// summaryFor resolves a callee's summary: the in-flight package map
// first, then the External hook (imported facts).
func (st *state) summaryFor(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	if s, ok := st.summaries[fn]; ok {
		return s
	}
	if st.e.External != nil {
		if s, ok := st.e.External(fn); ok {
			return s
		}
	}
	return nil
}

// argsForParam maps a callee parameter index to the call-site argument
// registers feeding it (several, for the variadic tail). Receiver-first
// indexing matches both OpCall layouts: method values carry the
// receiver as Args[0] (RecvArg), and method expressions pass it as the
// explicit first argument.
func (st *state) argsForParam(u *ssa.Value, param int) []*ssa.Value {
	if param < 0 || param >= len(u.Args) {
		return nil
	}
	pc := paramCount(u.Callee)
	if pc > 0 && param == pc-1 && isVariadic(u.Callee) {
		return u.Args[param:]
	}
	return u.Args[param : param+1]
}

func paramCount(fn *types.Func) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return 0
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	return n
}

func isVariadic(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Variadic()
}

// harvest reads the stabilized state: sink hits become findings (source
// elements) or summary sink entries (param elements); returns become
// flows and result taints; callee summary sinks compose at call sites.
func (st *state) harvest(fi FuncInfo) (*Summary, []Finding) {
	sum := &Summary{}
	var findings []Finding
	max := st.e.maxPath()

	record := func(pos int, sink string, elems []Elem) {
		for _, el := range sortedElems(elems) {
			if el.Param >= 0 {
				sum.Sinks = append(sum.Sinks, ParamSink{Param: el.Param, Sink: sink, Path: el.Path})
				continue
			}
			findings = append(findings, Finding{
				Pos: pos, Sink: sink, Source: el.Source, Path: el.Path,
			})
		}
	}

	for _, v := range st.f.Values {
		// Direct sinks declared by the Spec.
		if st.e.Spec.Sinks != nil {
			for _, su := range st.e.Spec.Sinks(v) {
				if su.Arg == nil {
					continue
				}
				record(int(v.Pos), su.Sink, st.elems[su.Arg.ID])
			}
		}
		// Sinks inside callees, composed through summaries.
		if v.Op == ssa.OpCall && v.Callee != nil {
			if cs := st.summaryFor(v.Callee); cs != nil {
				for _, ps := range cs.Sinks {
					for _, a := range st.argsForParam(v, ps.Param) {
						for _, el := range sortedElems(st.elems[a.ID]) {
							path := appendPath(el.Path, append([]string{v.Callee.Name() + "()"}, ps.Path...), max)
							if el.Param >= 0 {
								sum.Sinks = append(sum.Sinks, ParamSink{Param: el.Param, Sink: ps.Sink, Path: path})
								continue
							}
							findings = append(findings, Finding{
								Pos: int(v.Pos), Sink: ps.Sink, Source: el.Source, Path: path,
							})
						}
					}
				}
			}
		}
		// Returns: param elements become flows, source elements become
		// result taints.
		if v.Op == ssa.OpReturn {
			for i, a := range v.Args {
				if i >= st.f.NumResults && st.f.NumResults > 0 {
					break
				}
				for _, el := range sortedElems(st.elems[a.ID]) {
					if el.Param >= 0 {
						sum.Flows = append(sum.Flows, ParamFlow{Param: el.Param, Result: i, Path: el.Path})
					} else {
						sum.Results = append(sum.Results, ResultTaint{Result: i, Source: el.Source, Path: el.Path})
					}
				}
			}
		}
	}

	normalizeSummary(sum)
	return sum, findings
}

// normalizeSummary sorts and dedups every summary list so encodings are
// deterministic and fixpoint comparison is positional.
func normalizeSummary(s *Summary) {
	sort.Slice(s.Flows, func(i, j int) bool {
		if s.Flows[i].Param != s.Flows[j].Param {
			return s.Flows[i].Param < s.Flows[j].Param
		}
		return s.Flows[i].Result < s.Flows[j].Result
	})
	s.Flows = dedup(s.Flows, func(a, b ParamFlow) bool { return a.Param == b.Param && a.Result == b.Result })
	sort.Slice(s.Results, func(i, j int) bool {
		if s.Results[i].Result != s.Results[j].Result {
			return s.Results[i].Result < s.Results[j].Result
		}
		return s.Results[i].Source < s.Results[j].Source
	})
	s.Results = dedup(s.Results, func(a, b ResultTaint) bool { return a.Result == b.Result && a.Source == b.Source })
	sort.Slice(s.Sinks, func(i, j int) bool {
		if s.Sinks[i].Param != s.Sinks[j].Param {
			return s.Sinks[i].Param < s.Sinks[j].Param
		}
		return s.Sinks[i].Sink < s.Sinks[j].Sink
	})
	s.Sinks = dedup(s.Sinks, func(a, b ParamSink) bool { return a.Param == b.Param && a.Sink == b.Sink })
}

func dedup[T any](list []T, eq func(a, b T) bool) []T {
	out := list[:0]
	for i, x := range list {
		if i > 0 && eq(x, list[i-1]) {
			continue
		}
		out = append(out, x)
	}
	return out
}

// sortedElems returns a copy of the element set in canonical (source,
// param) order — harvest iterates these, and summary/finding order must
// not depend on insertion order.
func sortedElems(set []Elem) []Elem {
	if len(set) == 0 {
		return nil
	}
	out := append([]Elem(nil), set...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Source != out[j].Source {
			return out[i].Source < out[j].Source
		}
		return out[i].Param < out[j].Param
	})
	return out
}

// appendPath appends hops to a copied witness path, collapsing
// consecutive duplicates and truncating with "…" once the k-bound is
// hit.
func appendPath(path []string, hops []string, max int) []string {
	out := make([]string, len(path), len(path)+len(hops))
	copy(out, path)
	for _, h := range hops {
		if h == "" {
			continue
		}
		if len(out) > 0 && out[len(out)-1] == h {
			continue // collapse consecutive identical hops
		}
		if len(out) >= max {
			if out[len(out)-1] != "…" {
				out = append(out, "…")
			}
			return out
		}
		out = append(out, h)
	}
	return out
}
