package taint_test

import (
	"bytes"
	"encoding/gob"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"testing"

	"repro/internal/lint/analysis/cfg"
	"repro/internal/lint/analysis/ssa"
	"repro/internal/lint/analysis/taint"
)

// testSpec wires the engine to marker functions: src() originates
// taint, sink(...) must not receive it, clean(x) launders, scrub(x)
// sanitizes its argument in place.
func testSpec(boundCheck bool) taint.Spec {
	calleeNamed := func(v *ssa.Value, name string) bool {
		return v.Op == ssa.OpCall && v.Callee != nil && v.Callee.Name() == name
	}
	return taint.Spec{
		Source: func(v *ssa.Value) (string, bool) {
			if calleeNamed(v, "src") {
				return "src()", true
			}
			return "", false
		},
		Sinks: func(v *ssa.Value) []taint.SinkUse {
			if calleeNamed(v, "sink") {
				var uses []taint.SinkUse
				for _, a := range v.Args {
					uses = append(uses, taint.SinkUse{Arg: a, Sink: "sink()"})
				}
				return uses
			}
			if v.Op == ssa.OpMake {
				var uses []taint.SinkUse
				for _, a := range v.Args {
					uses = append(uses, taint.SinkUse{Arg: a, Sink: "make size"})
				}
				return uses
			}
			return nil
		},
		Sanitizer: func(v *ssa.Value) bool {
			return calleeNamed(v, "clean")
		},
		InPlaceSanitizer: func(v *ssa.Value) bool {
			return calleeNamed(v, "scrub")
		},
		BoundCheckSanitizes: boundCheck,
	}
}

// analyze lowers every function in src and runs the engine over the
// package.
func analyze(t *testing.T, src string, spec taint.Spec) (*taint.Result, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Error: func(error) {}}
	conf.Check("p", fset, []*ast.File{f}, info) //nolint:errcheck

	var fns []taint.FuncInfo
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		g := cfg.Build(fd.Body)
		var fn *types.Func
		var sig *types.Signature
		if tf, ok := info.Defs[fd.Name].(*types.Func); ok {
			fn = tf
			sig, _ = tf.Type().(*types.Signature)
		}
		fns = append(fns, taint.FuncInfo{Fn: fn, SSA: ssa.Lower(fd.Name.Name, fd.Body, g, sig, info)})
	}
	e := &taint.Engine{Spec: spec}
	return e.AnalyzePackage(fns), fset
}

const markers = `
func src() int { return 0 }
func sink(vs ...int) {}
func clean(v int) int { return v }
func scrub(v []int) {}
`

func findingLines(fset *token.FileSet, r *taint.Result) []string {
	var out []string
	for _, f := range r.Findings {
		out = append(out, fset.Position(token.Pos(f.Pos)).String()+" "+f.Source+" -> "+f.Sink)
	}
	return out
}

func TestDirectFlow(t *testing.T) {
	r, _ := analyze(t, `package p
`+markers+`
func f() {
	x := src()
	y := x + 1
	sink(y)
}`, testSpec(false))
	if len(r.Findings) != 1 {
		t.Fatalf("want 1 finding, got %+v", r.Findings)
	}
	f := r.Findings[0]
	if f.Source != "src()" || f.Sink != "sink()" {
		t.Errorf("bad finding %+v", f)
	}
	// Witness path records the variable hops.
	joined := strings.Join(f.Path, " ")
	if !strings.Contains(joined, "x") || !strings.Contains(joined, "y") {
		t.Errorf("witness path missing variable hops: %q", f.Path)
	}
}

func TestSanitizerStopsFlow(t *testing.T) {
	r, _ := analyze(t, `package p
`+markers+`
func f() {
	x := src()
	sink(clean(x))
}`, testSpec(false))
	if len(r.Findings) != 0 {
		t.Fatalf("sanitized flow reported: %+v", r.Findings)
	}
}

func TestInPlaceSanitizer(t *testing.T) {
	r, _ := analyze(t, `package p
`+markers+`
func keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}
func f(m map[int]int) {
	xs := keys(m)
	scrub(xs)
	sink(xs...)
}`, taint.Spec{
		Source: func(v *ssa.Value) (string, bool) {
			if v.Op == ssa.OpRange {
				return "map range", true
			}
			return "", false
		},
		Sinks: testSpec(false).Sinks,
		InPlaceSanitizer: func(v *ssa.Value) bool {
			return v.Op == ssa.OpCall && v.Callee != nil && v.Callee.Name() == "scrub"
		},
	})
	if len(r.Findings) != 0 {
		t.Fatalf("scrubbed flow reported: %+v", r.Findings)
	}
}

func TestPhiJoinFlow(t *testing.T) {
	r, _ := analyze(t, `package p
`+markers+`
func f(c bool) {
	x := 0
	if c {
		x = src()
	}
	sink(x)
}`, testSpec(false))
	if len(r.Findings) != 1 {
		t.Fatalf("want 1 finding through the phi, got %+v", r.Findings)
	}
}

func TestInterprocResultTaint(t *testing.T) {
	// Declaration order is deliberately caller-first: the package
	// fixpoint must still resolve mk's summary.
	r, fset := analyze(t, `package p
`+markers+`
func use() {
	sink(mk())
}
func mk() int {
	return src()
}`, testSpec(false))
	lines := findingLines(fset, r)
	if len(r.Findings) != 1 {
		t.Fatalf("want 1 finding in use(), got %v", lines)
	}
	if !strings.Contains(lines[0], "src.go:9") {
		t.Errorf("finding not at the sink call in use(): %v", lines)
	}
	joined := strings.Join(r.Findings[0].Path, " ")
	if !strings.Contains(joined, "mk()") {
		t.Errorf("witness path missing call hop: %q", r.Findings[0].Path)
	}
}

func TestInterprocParamSink(t *testing.T) {
	r, _ := analyze(t, `package p
`+markers+`
func pass(v int) {
	sink(v)
}
func drive() {
	pass(src())
}`, testSpec(false))
	if len(r.Findings) != 1 {
		t.Fatalf("want 1 finding at the pass() call site, got %+v", r.Findings)
	}
	// The summary for pass must record param 0 reaching the sink.
	var passSum *taint.Summary
	for fn, s := range r.Summaries {
		if fn.Name() == "pass" {
			passSum = s
		}
	}
	if passSum == nil || len(passSum.Sinks) != 1 || passSum.Sinks[0].Param != 0 {
		t.Errorf("pass summary missing param sink: %+v", passSum)
	}
}

func TestParamFlowChains(t *testing.T) {
	r, _ := analyze(t, `package p
`+markers+`
func id(v int) int { return v }
func f() {
	sink(id(id(src())))
}`, testSpec(false))
	if len(r.Findings) != 1 {
		t.Fatalf("want 1 finding through chained id(), got %+v", r.Findings)
	}
	var idSum *taint.Summary
	for fn, s := range r.Summaries {
		if fn.Name() == "id" {
			idSum = s
		}
	}
	if idSum == nil || len(idSum.Flows) != 1 || idSum.Flows[0].Param != 0 || idSum.Flows[0].Result != 0 {
		t.Errorf("id summary missing 0->0 flow: %+v", idSum)
	}
}

func TestBoundCheckSanitizes(t *testing.T) {
	checked := `package p
` + markers + `
func f() {
	n := src()
	if n > 10 {
		return
	}
	_ = make([]int, n)
}`
	unchecked := `package p
` + markers + `
func f() {
	n := src()
	_ = make([]int, n)
}`
	if r, _ := analyze(t, checked, testSpec(true)); len(r.Findings) != 0 {
		t.Errorf("bound-checked size reported: %+v", r.Findings)
	}
	if r, _ := analyze(t, unchecked, testSpec(true)); len(r.Findings) != 1 {
		t.Errorf("unchecked size not reported")
	}
}

func TestUnknownCalleePassesThrough(t *testing.T) {
	// wrap has no body in this package and no summary: conservative
	// arg-to-result pass-through must keep the flow alive.
	r, _ := analyze(t, `package p
`+markers+`
func wrap(v int) int
func f() {
	sink(wrap(src()))
}`, testSpec(false))
	if len(r.Findings) != 1 {
		t.Fatalf("unknown callee dropped taint: %+v", r.Findings)
	}
}

func TestLenStripsTaint(t *testing.T) {
	r, _ := analyze(t, `package p
`+markers+`
func f(vs []int) {
	x := src()
	s := []int{x}
	sink(len(s))
}`, testSpec(false))
	if len(r.Findings) != 0 {
		t.Fatalf("len() result must not carry content taint: %+v", r.Findings)
	}
}

func TestMemoryDegradedVariable(t *testing.T) {
	// x is address-taken: stores and loads go through the
	// flow-insensitive memory cell, which must still carry taint.
	r, _ := analyze(t, `package p
`+markers+`
func g(p *int) {}
func f() {
	x := 0
	g(&x)
	x = src()
	sink(x)
}`, testSpec(false))
	if len(r.Findings) != 1 {
		t.Fatalf("memory-degraded flow lost: %+v", r.Findings)
	}
}

func TestSummaryGobRoundTrip(t *testing.T) {
	s := &taint.Summary{
		Flows:   []taint.ParamFlow{{Param: 0, Result: 1, Path: []string{"v", "out"}}},
		Results: []taint.ResultTaint{{Result: 0, Source: "time.Now", Path: []string{"time.Now", "stamp()"}}},
		Sinks:   []taint.ParamSink{{Param: 2, Sink: "gio.WriteState arg 1", Path: []string{"…"}}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatalf("encode: %v", err)
	}
	var got taint.Summary
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(s, &got) {
		t.Errorf("round trip mismatch:\n%+v\n%+v", s, &got)
	}
	// Two encodings of the same summary must be byte-identical (the
	// vet action cache hashes vetx files).
	var buf2 bytes.Buffer
	if err := gob.NewEncoder(&buf2).Encode(s); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Errorf("gob encoding not deterministic")
	}
}

func TestTwoRunDeterminism(t *testing.T) {
	src := `package p
` + markers + `
func a() int { return src() }
func b(v int) int { return v + a() }
func c() {
	x := b(src())
	y := x * 2
	sink(y, x)
}`
	run := func() ([]taint.Finding, map[string]*taint.Summary) {
		r, _ := analyze(t, src, testSpec(false))
		sums := map[string]*taint.Summary{}
		for fn, s := range r.Summaries {
			sums[fn.Name()] = s
		}
		return r.Findings, sums
	}
	f1, s1 := run()
	f2, s2 := run()
	if !reflect.DeepEqual(f1, f2) {
		t.Errorf("findings differ across runs:\n%+v\n%+v", f1, f2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Errorf("summaries differ across runs:\n%+v\n%+v", s1, s2)
	}
}
