package analysis

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"sync"
)

// A Fact is a serializable observation about an object or a package,
// exported by an analyzer while analyzing one package and importable by
// the same analyzer while analyzing a dependent package. Concrete fact
// types must be pointers to structs, must be gob-encodable, and must be
// registered with RegisterFactType. The AFact marker method mirrors the
// upstream interface.
type Fact interface {
	AFact()
}

// RegisterFactType registers a fact's concrete type with gob so it can
// cross the vetx serialization boundary. Call it from the defining
// package's init (or var initializer).
func RegisterFactType(f Fact) {
	gob.Register(f)
}

// ObjectKey returns a driver-stable key for an object facts can attach
// to, unique within the object's package: "F" for a package-level
// function, "T.M" for a method (pointer receivers are stripped). The
// upstream implementation uses go/types objectpath; this mirror only
// needs keys for functions and methods, which is what the workflowlint
// fact producers export. ok is false for objects facts cannot attach to.
//
// The key is computed from names only, so it is identical whether the
// object came from type-checking the package's source or from reading
// its export data — the property that lets facts recorded under one view
// be found under the other.
func ObjectKey(obj types.Object) (string, bool) {
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", false
	}
	recv := sig.Recv()
	if recv == nil {
		return fn.Name(), true
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	return named.Obj().Name() + "." + fn.Name(), true
}

// factKey identifies one fact slot: a package, an object within it (""
// for package-level facts), and the fact's concrete type.
type factKey struct {
	pkg string
	obj string
	typ reflect.Type
}

// A FactStore accumulates facts across the packages of one driver run
// and moves them across process boundaries: the standalone driver keeps
// one store for the whole dependency-ordered walk, while the unitchecker
// decodes the stores serialized into dependency vetx files, analyzes one
// package, and serializes the union back out for its dependents.
type FactStore struct {
	mu    sync.Mutex
	facts map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{facts: map[factKey]Fact{}}
}

// Bind installs the store's fact accessors on a pass. Exported facts are
// keyed under the pass's own package; imports may name any package seen
// earlier in the run (or decoded from vetx files).
func (s *FactStore) Bind(pass *Pass) {
	pass.ExportObjectFact = func(obj types.Object, fact Fact) {
		if obj == nil || obj.Pkg() == nil {
			return
		}
		if pass.Pkg != nil && obj.Pkg() != pass.Pkg {
			panic(fmt.Sprintf("analysis: %s: ExportObjectFact for object %s of foreign package %s",
				pass.Analyzer.Name, obj.Name(), obj.Pkg().Path()))
		}
		key, ok := ObjectKey(obj)
		if !ok {
			return
		}
		s.put(factKey{obj.Pkg().Path(), key, reflect.TypeOf(fact)}, fact)
	}
	pass.ImportObjectFact = func(obj types.Object, fact Fact) bool {
		if obj == nil || obj.Pkg() == nil {
			return false
		}
		key, ok := ObjectKey(obj)
		if !ok {
			return false
		}
		return s.get(factKey{obj.Pkg().Path(), key, reflect.TypeOf(fact)}, fact)
	}
	pass.ExportPackageFact = func(fact Fact) {
		if pass.Pkg == nil {
			return
		}
		s.put(factKey{pass.Pkg.Path(), "", reflect.TypeOf(fact)}, fact)
	}
	pass.ImportPackageFact = func(pkg *types.Package, fact Fact) bool {
		if pkg == nil {
			return false
		}
		return s.get(factKey{pkg.Path(), "", reflect.TypeOf(fact)}, fact)
	}
}

func (s *FactStore) put(key factKey, fact Fact) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.facts[key] = fact
}

// get copies the stored fact (if any) into the caller's pointer.
func (s *FactStore) get(key factKey, fact Fact) bool {
	s.mu.Lock()
	stored, ok := s.facts[key]
	s.mu.Unlock()
	if !ok {
		return false
	}
	dst := reflect.ValueOf(fact)
	src := reflect.ValueOf(stored)
	if dst.Kind() != reflect.Pointer || src.Kind() != reflect.Pointer || dst.Type() != src.Type() {
		return false
	}
	dst.Elem().Set(src.Elem())
	return true
}

// wireFact is the serialized form of one fact. The concrete fact value
// rides as a gob interface payload, which is why fact types register
// with RegisterFactType.
type wireFact struct {
	Pkg  string
	Obj  string // "" for a package-level fact
	Fact Fact
}

// Encode serializes every fact in the store, deterministically ordered
// so identical analyses produce byte-identical vetx payloads (the vetx
// content participates in go vet's action-cache hashing; nondeterminism
// there would defeat the cache). The encoding is self-contained: a
// package's vetx carries its dependencies' facts too, so readers need
// only their direct imports' files.
func (s *FactStore) Encode() ([]byte, error) {
	s.mu.Lock()
	wire := make([]wireFact, 0, len(s.facts))
	for key, fact := range s.facts {
		wire = append(wire, wireFact{Pkg: key.pkg, Obj: key.obj, Fact: fact})
	}
	s.mu.Unlock()
	sort.Slice(wire, func(i, j int) bool {
		if wire[i].Pkg != wire[j].Pkg {
			return wire[i].Pkg < wire[j].Pkg
		}
		if wire[i].Obj != wire[j].Obj {
			return wire[i].Obj < wire[j].Obj
		}
		return reflect.TypeOf(wire[i].Fact).String() < reflect.TypeOf(wire[j].Fact).String()
	})
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(wire); err != nil {
		return nil, fmt.Errorf("analysis: encoding facts: %w", err)
	}
	return buf.Bytes(), nil
}

// Decode merges serialized facts into the store. Empty payloads are
// valid (a package with nothing to export writes an empty vetx).
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var wire []wireFact
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&wire); err != nil {
		return fmt.Errorf("analysis: decoding facts: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, w := range wire {
		if w.Fact == nil {
			continue
		}
		s.facts[factKey{w.Pkg, w.Obj, reflect.TypeOf(w.Fact)}] = w.Fact
	}
	return nil
}

// Len reports the number of facts held.
func (s *FactStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.facts)
}
