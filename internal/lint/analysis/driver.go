package analysis

import (
	"fmt"
	"go/types"
)

// Execute applies analyzers — plus the transitive closure of their
// Requires, scheduled dependency-first — to the single package described
// by base (Fset, Files, Pkg, TypesInfo; its other fields are ignored).
// Every driver (the standalone CLI, the vet unitchecker, analysistest)
// funnels through here so scheduling, result plumbing, and fact binding
// behave identically.
//
// store binds the cross-package fact API on every pass; pass nil to run
// without facts (imports all miss, exports are dropped). report receives
// each diagnostic together with the analyzer that produced it — only for
// the analyzers explicitly requested, not for Requires-only
// prerequisites, mirroring upstream driver behavior.
func Execute(analyzers []*Analyzer, base *Pass, store *FactStore, report func(*Analyzer, Diagnostic)) error {
	order, err := schedule(analyzers)
	if err != nil {
		return err
	}
	requested := map[*Analyzer]bool{}
	for _, a := range analyzers {
		requested[a] = true
	}
	results := map[*Analyzer]any{}
	for _, a := range order {
		resultOf := map[*Analyzer]any{}
		for _, req := range a.Requires {
			resultOf[req] = results[req]
		}
		a := a // report closure captures per-iteration analyzer
		pass := &Pass{
			Analyzer:  a,
			Fset:      base.Fset,
			Files:     base.Files,
			Pkg:       base.Pkg,
			TypesInfo: base.TypesInfo,
			ResultOf:  resultOf,
			Report: func(d Diagnostic) {
				if requested[a] && report != nil {
					report(a, d)
				}
			},
		}
		if store != nil {
			store.Bind(pass)
		} else {
			bindNoFacts(pass)
		}
		res, err := a.Run(pass)
		if err != nil {
			return fmt.Errorf("%s: %w", a.Name, err)
		}
		results[a] = res
	}
	return nil
}

// FactProducers filters analyzers to those that export or import facts
// (FactTypes non-empty). Drivers run only these over dependency packages:
// fact-free analyzers cannot influence downstream analysis, so skipping
// them keeps dependency (VetxOnly) passes cheap.
func FactProducers(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	for _, a := range analyzers {
		if len(a.FactTypes) > 0 {
			out = append(out, a)
		}
	}
	return out
}

// schedule returns analyzers plus transitive Requires in an order where
// every prerequisite precedes its dependents, rejecting cycles.
func schedule(analyzers []*Analyzer) ([]*Analyzer, error) {
	var order []*Analyzer
	state := map[*Analyzer]int{} // 0 unseen, 1 visiting, 2 done
	var visit func(a *Analyzer) error
	visit = func(a *Analyzer) error {
		switch state[a] {
		case 1:
			return fmt.Errorf("analysis: Requires cycle through %s", a.Name)
		case 2:
			return nil
		}
		state[a] = 1
		for _, req := range a.Requires {
			if err := visit(req); err != nil {
				return err
			}
		}
		state[a] = 2
		order = append(order, a)
		return nil
	}
	for _, a := range analyzers {
		if err := visit(a); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// bindNoFacts installs inert fact accessors so analyzers can call the
// fact API unconditionally.
func bindNoFacts(pass *Pass) {
	pass.ExportObjectFact = func(types.Object, Fact) {}
	pass.ImportObjectFact = func(types.Object, Fact) bool { return false }
	pass.ExportPackageFact = func(Fact) {}
	pass.ImportPackageFact = func(*types.Package, Fact) bool { return false }
}
