package cfg

import "sort"

// A DomTree holds the dominator tree and dominance frontiers of a CFG's
// live blocks — the substrate for SSA-lite phi placement (package ssa):
// a variable assigned in several blocks needs a phi exactly at the
// iterated dominance frontier of its definition blocks.
//
// Only live blocks participate; dead blocks (unreachable code) have no
// entries in any map.
type DomTree struct {
	// Idom maps each live block (except entry) to its immediate
	// dominator.
	Idom map[*Block]*Block
	// Children inverts Idom, each slice sorted by block index so
	// dominator-tree walks are deterministic.
	Children map[*Block][]*Block
	// Frontier maps each live block to its dominance frontier, sorted by
	// block index.
	Frontier map[*Block][]*Block
}

// Dominance computes the dominator tree and dominance frontiers of g's
// live blocks with the Cooper–Harvey–Kennedy iterative algorithm over a
// reverse postorder.
func (g *CFG) Dominance() *DomTree {
	entry := g.Entry()
	rpo := g.reversePostorder()
	rpoNum := make(map[*Block]int, len(rpo))
	for i, b := range rpo {
		rpoNum[b] = i
	}

	idom := map[*Block]*Block{entry: entry}
	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if !p.Live || idom[p] == nil {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != nil && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	delete(idom, entry) // entry has no immediate dominator

	t := &DomTree{Idom: idom, Children: map[*Block][]*Block{}, Frontier: map[*Block][]*Block{}}
	for b, d := range idom {
		t.Children[d] = append(t.Children[d], b)
	}
	for _, kids := range t.Children {
		sort.Slice(kids, func(i, j int) bool { return kids[i].Index < kids[j].Index })
	}

	// Frontiers: a join block (>= 2 live preds) is in the frontier of
	// every block on a pred-to-idom walk that does not dominate it.
	inFrontier := map[*Block]map[*Block]bool{}
	for _, b := range rpo {
		preds := liveBlocks(b.Preds)
		if len(preds) < 2 {
			continue
		}
		for _, p := range preds {
			runner := p
			for runner != nil && runner != idom[b] && runner != b {
				set := inFrontier[runner]
				if set == nil {
					set = map[*Block]bool{}
					inFrontier[runner] = set
				}
				if set[b] {
					break
				}
				set[b] = true
				runner = idom[runner]
			}
		}
	}
	for b, set := range inFrontier {
		fr := make([]*Block, 0, len(set))
		for f := range set {
			fr = append(fr, f)
		}
		sort.Slice(fr, func(i, j int) bool { return fr[i].Index < fr[j].Index })
		t.Frontier[b] = fr
	}
	return t
}

// Dominates reports whether a dominates b (reflexively).
func (t *DomTree) Dominates(a, b *Block) bool {
	for b != nil {
		if a == b {
			return true
		}
		b = t.Idom[b]
	}
	return false
}

// reversePostorder lists live blocks, entry first.
func (g *CFG) reversePostorder() []*Block {
	seen := map[*Block]bool{}
	var post []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] || !b.Live {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
		post = append(post, b)
	}
	visit(g.Entry())
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}
