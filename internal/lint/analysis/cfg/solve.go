package cfg

// A Solution holds the fixpoint states of one dataflow problem: for
// every live block, the state at its beginning (In) and end (Out).
// Dead blocks are absent from both maps.
type Solution[S any] struct {
	In  map[*Block]S
	Out map[*Block]S
}

// Forward solves a forward dataflow problem with a worklist: entry
// starts with the boundary state, every other live block's In is the
// join of its live predecessors' Outs, and Out = transfer(block, In).
//
// join must be commutative and associative; transfer must be monotone
// over the implied lattice and must not mutate its argument (return a
// fresh state). equal decides convergence. The worklist iterates until
// no block's Out changes, so loops (back edges) reach their fixpoint.
func Forward[S any](g *CFG, boundary S, transfer func(*Block, S) S, join func(S, S) S, equal func(a, b S) bool) Solution[S] {
	return solve(g, boundary, transfer, join, equal, forwardDir{})
}

// Backward solves a backward dataflow problem: Exit starts with the
// boundary state, every other live block's Out is the join of its live
// successors' Ins, and In = transfer(block, Out) (transfer functions
// scan their block's nodes in reverse).
func Backward[S any](g *CFG, boundary S, transfer func(*Block, S) S, join func(S, S) S, equal func(a, b S) bool) Solution[S] {
	return solve(g, boundary, transfer, join, equal, backwardDir{})
}

// direction abstracts the two orientations so one worklist serves both.
type direction interface {
	start(g *CFG) *Block
	inputs(b *Block) []*Block  // blocks whose results feed b
	outputs(b *Block) []*Block // blocks that consume b's result
}

type forwardDir struct{}

func (forwardDir) start(g *CFG) *Block       { return g.Entry() }
func (forwardDir) inputs(b *Block) []*Block  { return b.Preds }
func (forwardDir) outputs(b *Block) []*Block { return b.Succs }

type backwardDir struct{}

func (backwardDir) start(g *CFG) *Block       { return g.Exit }
func (backwardDir) inputs(b *Block) []*Block  { return b.Succs }
func (backwardDir) outputs(b *Block) []*Block { return b.Preds }

func solve[S any](g *CFG, boundary S, transfer func(*Block, S) S, join func(S, S) S, equal func(a, b S) bool, dir direction) Solution[S] {
	// pre and post are the states at a block's input and output side in
	// the direction of flow: forward pre=In/post=Out, backward
	// pre=Out/post=In.
	pre := map[*Block]S{}
	post := map[*Block]S{}

	start := dir.start(g)
	// The backward start (Exit) can be dead when a function cannot
	// return (infinite loop); fall back to seeding every live block
	// that has no live inputs, so the worklist still drains.
	var work []*Block
	seed := func(b *Block, s S) {
		pre[b] = s
		post[b] = transfer(b, s)
		work = append(work, b)
	}
	if start.Live {
		seed(start, boundary)
	} else {
		for _, b := range g.Blocks {
			if b.Live && len(liveBlocks(dir.inputs(b))) == 0 {
				seed(b, boundary)
			}
		}
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		for _, next := range dir.outputs(b) {
			if !next.Live {
				continue
			}
			// Join every available input state.
			var state S
			first := true
			for _, in := range liveBlocks(dir.inputs(next)) {
				s, ok := post[in]
				if !ok {
					continue // not yet computed; a later pass revisits
				}
				if first {
					state = s
					first = false
				} else {
					state = join(state, s)
				}
			}
			if next == start {
				if first {
					state = boundary
				} else {
					state = join(state, boundary)
				}
				first = false
			}
			if first {
				continue
			}
			oldPre, seen := pre[next]
			if seen && equal(oldPre, state) {
				continue
			}
			pre[next] = state
			newPost := transfer(next, state)
			if oldPost, ok := post[next]; ok && equal(oldPost, newPost) {
				continue
			}
			post[next] = newPost
			work = append(work, next)
		}
	}

	sol := Solution[S]{In: map[*Block]S{}, Out: map[*Block]S{}}
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		switch dir.(type) {
		case forwardDir:
			if s, ok := pre[b]; ok {
				sol.In[b] = s
			}
			if s, ok := post[b]; ok {
				sol.Out[b] = s
			}
		default:
			if s, ok := post[b]; ok {
				sol.In[b] = s
			}
			if s, ok := pre[b]; ok {
				sol.Out[b] = s
			}
		}
	}
	return sol
}

func liveBlocks(blocks []*Block) []*Block {
	var out []*Block
	for _, b := range blocks {
		if b.Live {
			out = append(out, b)
		}
	}
	return out
}
