package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses src as a file, finds the function named name, and
// builds its CFG.
func buildFunc(t *testing.T, src, name string) (*token.FileSet, *CFG) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fset, Build(fd.Body)
		}
	}
	t.Fatalf("no function %q in src", name)
	return nil, nil
}

// blocksByComment indexes live blocks by comment (first wins).
func blocksByComment(g *CFG) map[string][]*Block {
	m := map[string][]*Block{}
	for _, b := range g.Blocks {
		if b.Live {
			m[b.Comment] = append(m[b.Comment], b)
		}
	}
	return m
}

func hasEdge(from, to *Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

func TestIfElseDiamond(t *testing.T) {
	fset, g := buildFunc(t, `package p
func f(a bool) int {
	x := 0
	if a {
		x = 1
	} else {
		x = 2
	}
	return x
}`, "f")
	m := blocksByComment(g)
	then, els, done := m["if.then"][0], m["if.else"][0], m["if.done"][0]
	entry := g.Entry()
	if !hasEdge(entry, then) || !hasEdge(entry, els) {
		t.Errorf("entry must branch to then and else:\n%s", g.Format(fset))
	}
	if !hasEdge(then, done) || !hasEdge(els, done) {
		t.Errorf("both arms must rejoin at if.done:\n%s", g.Format(fset))
	}
	if hasEdge(entry, done) {
		t.Errorf("two-armed if must not edge cond→done directly:\n%s", g.Format(fset))
	}
	if !hasEdge(done, g.Exit) {
		t.Errorf("if.done (containing return) must edge to exit:\n%s", g.Format(fset))
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	fset, g := buildFunc(t, `package p
func f(rows [][]int) int {
	total := 0
outer:
	for i := 0; i < len(rows); i++ {
		for _, v := range rows[i] {
			if v < 0 {
				break outer
			}
			if v == 0 {
				continue outer
			}
			total += v
		}
	}
	return total
}`, "f")
	m := blocksByComment(g)
	forDone := m["for.done"][0]
	forPost := m["for.post"][0]

	// The labeled break must leave BOTH loops: some block inside the
	// range body edges straight to the outer for.done.
	foundBreak, foundContinue := false, false
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		for _, n := range b.Nodes {
			br, ok := n.(*ast.BranchStmt)
			if !ok || br.Label == nil {
				continue
			}
			switch br.Tok {
			case token.BREAK:
				foundBreak = hasEdge(b, forDone)
			case token.CONTINUE:
				foundContinue = hasEdge(b, forPost)
			}
		}
	}
	if !foundBreak {
		t.Errorf("break outer must edge to the outer for.done:\n%s", g.Format(fset))
	}
	if !foundContinue {
		t.Errorf("continue outer must edge to the outer for.post:\n%s", g.Format(fset))
	}
}

func TestDeferInLoop(t *testing.T) {
	fset, g := buildFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		defer println(i)
	}
}`, "f")
	if len(g.Defers) != 1 {
		t.Fatalf("want 1 recorded defer, got %d:\n%s", len(g.Defers), g.Format(fset))
	}
	// The defer's registration point is inside the loop body, and the
	// body must carry the back edge to the loop head.
	m := blocksByComment(g)
	body := m["for.body"][0]
	if len(body.Nodes) != 1 {
		t.Fatalf("loop body should hold exactly the defer, got %d nodes:\n%s", len(body.Nodes), g.Format(fset))
	}
	if _, ok := body.Nodes[0].(*ast.DeferStmt); !ok {
		t.Errorf("loop body node is %T, want *ast.DeferStmt", body.Nodes[0])
	}
	post := m["for.post"][0]
	head := m["for.loop"][0]
	if !hasEdge(body, post) || !hasEdge(post, head) {
		t.Errorf("loop must carry the back edge body→post→head:\n%s", g.Format(fset))
	}
}

func TestEarlyReturnUnderSwitch(t *testing.T) {
	fset, g := buildFunc(t, `package p
func f(k int) int {
	switch k {
	case 0:
		return 10
	case 1:
		k++
	default:
		return 30
	}
	return k
}`, "f")
	m := blocksByComment(g)
	cases := m["switch.case"]
	if len(cases) != 3 {
		t.Fatalf("want 3 case blocks, got %d:\n%s", len(cases), g.Format(fset))
	}
	done := m["switch.done"][0]
	// case 0 and default return directly: edge to exit, no edge to done.
	// case 1 falls out of the switch: edge to done.
	exitEdges, doneEdges := 0, 0
	for _, c := range cases {
		if hasEdge(c, g.Exit) {
			exitEdges++
		}
		if hasEdge(c, done) {
			doneEdges++
		}
	}
	if exitEdges != 2 || doneEdges != 1 {
		t.Errorf("want 2 returning cases and 1 falling out, got %d/%d:\n%s", exitEdges, doneEdges, g.Format(fset))
	}
	// With a default clause the header must NOT edge to switch.done.
	if hasEdge(g.Entry(), done) {
		t.Errorf("switch with default must not edge header→done:\n%s", g.Format(fset))
	}
}

func TestSwitchFallthrough(t *testing.T) {
	fset, g := buildFunc(t, `package p
func f(k int) int {
	n := 0
	switch k {
	case 0:
		n++
		fallthrough
	case 1:
		n += 2
	}
	return n
}`, "f")
	m := blocksByComment(g)
	cases := m["switch.case"]
	if len(cases) != 2 {
		t.Fatalf("want 2 case blocks, got %d", len(cases))
	}
	if !hasEdge(cases[0], cases[1]) {
		t.Errorf("fallthrough must edge case 0 → case 1:\n%s", g.Format(fset))
	}
	// No default: the header keeps its edge to switch.done.
	if !hasEdge(g.Entry(), m["switch.done"][0]) {
		t.Errorf("defaultless switch must edge header→done:\n%s", g.Format(fset))
	}
}

func TestPanicPseudoEdge(t *testing.T) {
	fset, g := buildFunc(t, `package p
func f(ok bool) int {
	if !ok {
		panic("bad")
	}
	return 1
}`, "f")
	m := blocksByComment(g)
	then := m["if.then"][0]
	if !hasEdge(then, g.Exit) {
		t.Errorf("panic must pseudo-edge to exit:\n%s", g.Format(fset))
	}
	if hasEdge(then, m["if.done"][0]) {
		t.Errorf("panic block must not fall through to if.done:\n%s", g.Format(fset))
	}
}

func TestPanicRecoverDefer(t *testing.T) {
	// recover lives in a deferred closure: the defer is recorded, the
	// panic edges to exit, and the statement after the panic is dead.
	fset, g := buildFunc(t, `package p
func f() (err int) {
	defer func() {
		recover()
	}()
	panic("boom")
	err = 2
	return err
}`, "f")
	if len(g.Defers) != 1 {
		t.Fatalf("want the recover defer recorded, got %d", len(g.Defers))
	}
	dead := false
	for _, b := range g.Blocks {
		if b.Live {
			continue
		}
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "err" {
					dead = true
				}
			}
		}
	}
	if !dead {
		t.Errorf("assignment after panic must land in a dead block:\n%s", g.Format(fset))
	}
}

func TestGotoForwardAndBack(t *testing.T) {
	fset, g := buildFunc(t, `package p
func f(n int) int {
retry:
	n--
	if n > 0 {
		goto retry
	}
	goto done
done:
	return n
}`, "f")
	m := blocksByComment(g)
	retry := m["label.retry"][0]
	done := m["label.done"][0]
	backEdge, fwdEdge := false, false
	for _, b := range g.Blocks {
		if !b.Live {
			continue
		}
		if b != retry && hasEdge(b, retry) && b.Comment == "if.then" {
			backEdge = true
		}
		if hasEdge(b, done) && b.Comment != "exit" && b != done {
			fwdEdge = true
		}
	}
	if !backEdge {
		t.Errorf("goto retry must edge back to the label block:\n%s", g.Format(fset))
	}
	if !fwdEdge {
		t.Errorf("goto done must edge forward to the label block:\n%s", g.Format(fset))
	}
	if !hasEdge(done, g.Exit) {
		t.Errorf("labeled return must edge to exit:\n%s", g.Format(fset))
	}
}

func TestSelectClauses(t *testing.T) {
	fset, g := buildFunc(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case b <- 1:
	}
	return 0
}`, "f")
	m := blocksByComment(g)
	comms := m["select.comm"]
	if len(comms) != 2 {
		t.Fatalf("want 2 comm blocks, got %d:\n%s", len(comms), g.Format(fset))
	}
	done := m["select.done"][0]
	if !hasEdge(g.Entry(), comms[0]) || !hasEdge(g.Entry(), comms[1]) {
		t.Errorf("select header must branch to every comm clause:\n%s", g.Format(fset))
	}
	if hasEdge(g.Entry(), done) {
		t.Errorf("select must not edge header→done (it blocks until a case fires):\n%s", g.Format(fset))
	}
}

// --- solver tests ---

// TestForwardMustReach checks a forward must-analysis over the diamond:
// "x is definitely assigned" merges with AND.
func TestForwardMustReach(t *testing.T) {
	_, g := buildFunc(t, `package p
func f(a bool) int {
	var x int
	if a {
		x = 1
	}
	return x
}`, "f")
	// State: set of idents assigned on every path (here: just track a
	// bool for "x assigned").
	transfer := func(b *Block, in bool) bool {
		out := in
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
					out = true
				}
			}
		}
		return out
	}
	join := func(a, b bool) bool { return a && b }
	eq := func(a, b bool) bool { return a == b }
	sol := Forward(g, false, transfer, join, eq)
	m := blocksByComment(g)
	if sol.In[m["if.then"][0]] {
		t.Error("x must not be definitely-assigned entering if.then")
	}
	if sol.Out[m["if.then"][0]] != true {
		t.Error("x must be assigned leaving if.then")
	}
	if sol.In[m["if.done"][0]] {
		t.Error("x is not assigned on every path into if.done (the var decl does not count)")
	}
}

// TestBackwardLiveness checks a backward must-analysis over a loop:
// "v is read before being overwritten on every path to exit".
func TestBackwardLiveness(t *testing.T) {
	_, g := buildFunc(t, `package p
func f(n int) int {
	v := 0
	for i := 0; i < n; i++ {
		v = i
	}
	return v
}`, "f")
	reads := func(n ast.Node) bool {
		found := false
		ast.Inspect(n, func(x ast.Node) bool {
			if id, ok := x.(*ast.Ident); ok && id.Name == "v" {
				found = true
			}
			return true
		})
		return found
	}
	// Backward: In = transfer(block, Out); scan nodes in reverse.
	transfer := func(b *Block, out bool) bool {
		state := out
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			n := b.Nodes[i]
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "v" {
					state = false // overwritten before any later read
					continue
				}
			}
			if reads(n) {
				state = true
			}
		}
		return state
	}
	join := func(a, b bool) bool { return a && b }
	eq := func(a, b bool) bool { return a == b }
	sol := Backward(g, false, transfer, join, eq)
	m := blocksByComment(g)
	// Leaving the loop body, v was just written and the return reads
	// it on the only path out: v is "will be read" at body end...
	// no: out of the body flows to for.post → head → {body, done};
	// the body path overwrites v first. Join is AND, so at body Out
	// the value is false (the body path kills it before reading).
	if sol.Out[m["for.body"][0]] {
		t.Error("v at body end is not read-before-write on every path (loop re-entry overwrites it)")
	}
	// At the loop head's exit side, the done path reads v in the
	// return: on the done edge it is live; but the body edge kills it.
	if got := sol.In[m["for.done"][0]]; !got {
		t.Error("v entering for.done must be read before exit (the return)")
	}
	if !strings.Contains(g.Format(token.NewFileSet()), "for.body") {
		t.Error("Format must name loop blocks")
	}
}
