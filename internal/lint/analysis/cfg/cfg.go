// Package cfg builds per-function control-flow graphs from the AST and
// solves forward/backward dataflow problems over them — the
// flow-sensitive substrate under workflowlint's path-aware analyzers
// (lockorder, the rewritten closecheck/errflow). It is a deliberately
// small, stdlib-only sibling of golang.org/x/tools/go/cfg: the build is
// hermetic, so the upstream package cannot be imported.
//
// Shape of the graph: one CFG per function body. Blocks hold *atomic*
// nodes only — simple statements (assignments, expression statements,
// returns, defers, sends, incdec, declarations) and the controlling
// expressions of compound statements (if/for conditions, switch tags,
// range operands). Compound statements are decomposed into blocks and
// edges, so a transfer function may scan each node's subtree without
// ever seeing a nested statement (nested *ast.FuncLit bodies are their
// own CFGs and must be skipped by walkers, as everywhere else in the
// suite).
//
// Pseudo-edges, per the workflow invariants the analyzers prove:
//
//   - every return statement edges to the synthetic Exit block;
//   - a statement-position call to the builtin panic edges to Exit (the
//     deferred unlocks and closes still run, which is exactly why
//     lockorder and closecheck treat deferred calls as exit-time
//     events);
//   - defer statements stay in their block (their registration point)
//     and are additionally recorded in CFG.Defers in source order, so
//     analyzers can model their exit-time execution without re-walking.
//
// Unreachable code after a return/panic/branch parks in a fresh block
// with no predecessors; Block.Live distinguishes reachable blocks so
// solvers and reporting walks can skip dead code.
package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
)

// A CFG is the control-flow graph of one function body.
type CFG struct {
	// Blocks in creation order; Blocks[0] is the entry block.
	Blocks []*Block
	// Exit is the synthetic exit block every return, panic, and
	// fall-off-the-end path converges to. It holds no nodes.
	Exit *Block
	// Defers lists every defer statement in the body in source order
	// (function literals excluded — their defers belong to their own
	// CFGs). Deferred calls run at Exit, last registered first.
	Defers []*ast.DeferStmt
}

// A Block is a maximal straight-line sequence of atomic nodes.
type Block struct {
	Index int
	// Comment describes the block's role ("entry", "if.then",
	// "for.body", "switch.case", "select.comm", "label.retry", ...),
	// for tests and debug dumps.
	Comment string
	// Nodes are the block's atomic statements and controlling
	// expressions, in execution order.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
	// Live reports whether the block is reachable from the entry block
	// (computed once by Build; unreachable code parks in dead blocks).
	Live bool
}

// Entry returns the function's entry block.
func (g *CFG) Entry() *Block { return g.Blocks[0] }

// Build constructs the CFG of one function body.
func Build(body *ast.BlockStmt) *CFG {
	g := &CFG{}
	b := &builder{g: g, gotoTargets: map[string]*Block{}}
	entry := g.newBlock("entry")
	g.Exit = g.newBlock("exit")
	b.current = entry
	b.stmtList(body.List)
	b.jump(g.Exit) // falling off the end of the body reaches Exit
	g.markLive()
	return g
}

func (g *CFG) newBlock(comment string) *Block {
	blk := &Block{Index: len(g.Blocks), Comment: comment}
	g.Blocks = append(g.Blocks, blk)
	return blk
}

func (g *CFG) markLive() {
	var visit func(b *Block)
	visit = func(b *Block) {
		if b.Live {
			return
		}
		b.Live = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(g.Blocks[0])
}

type builder struct {
	g       *CFG
	current *Block // nil after a terminator (return/panic/branch)
	// breaks/continues are the enclosing breakable/continuable targets,
	// innermost last; an entry's label is "" for unlabeled statements.
	breaks      []targetEntry
	continues   []targetEntry
	gotoTargets map[string]*Block // label name → labeled statement's block
}

type targetEntry struct {
	label string
	block *Block
}

// add appends an atomic node to the current block.
func (b *builder) add(n ast.Node) {
	b.current.Nodes = append(b.current.Nodes, n)
}

// edge connects from → to.
func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jump terminates the current block with an unconditional edge to
// target; a nil current (already terminated) is a no-op.
func (b *builder) jump(target *Block) {
	if b.current != nil {
		edge(b.current, target)
	}
	b.current = nil
}

// ensureBlock guarantees an open current block (dead code after a
// terminator parks in a fresh, unreachable block).
func (b *builder) ensureBlock() {
	if b.current == nil {
		b.current = b.g.newBlock("unreachable")
	}
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt lowers one statement. label is the name the statement was
// declared under (via a LabeledStmt), or "".
func (b *builder) stmt(s ast.Stmt, label string) {
	b.ensureBlock()
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		target := b.gotoTarget(s.Label.Name)
		b.jump(target)
		b.current = target
		b.stmt(s.Stmt, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		condBlock := b.current
		after := b.g.newBlock("if.done")
		then := b.g.newBlock("if.then")
		edge(condBlock, then)
		b.current = then
		b.stmtList(s.Body.List)
		b.jump(after)
		if s.Else != nil {
			els := b.g.newBlock("if.else")
			edge(condBlock, els)
			b.current = els
			b.stmt(s.Else, "")
			b.jump(after)
		} else {
			edge(condBlock, after)
		}
		b.current = after

	case *ast.ForStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.g.newBlock("for.loop")
		b.jump(head)
		b.current = head
		if s.Cond != nil {
			b.add(s.Cond)
		}
		after := b.g.newBlock("for.done")
		continueTo := head
		var post *Block
		if s.Post != nil {
			post = b.g.newBlock("for.post")
			continueTo = post
		}
		body := b.g.newBlock("for.body")
		edge(head, body)
		if s.Cond != nil {
			edge(head, after)
		}
		b.pushLoop(label, after, continueTo)
		b.current = body
		b.stmtList(s.Body.List)
		if post != nil {
			b.jump(post)
			b.current = post
			b.add(s.Post)
			b.jump(head)
		} else {
			b.jump(head)
		}
		b.popLoop(label)
		b.current = after

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.g.newBlock("range.loop")
		b.jump(head)
		b.current = head
		after := b.g.newBlock("range.done")
		edge(head, after)
		body := b.g.newBlock("range.body")
		edge(head, body)
		b.pushLoop(label, after, head)
		b.current = body
		b.stmtList(s.Body.List)
		b.jump(head)
		b.popLoop(label)
		b.current = after

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body.List, true)

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, s.Body.List, false)

	case *ast.SelectStmt:
		header := b.current
		after := b.g.newBlock("select.done")
		b.pushBreakable(label, after)
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			blk := b.g.newBlock("select.comm")
			edge(header, blk)
			b.current = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm, "")
			}
			b.stmtList(cc.Body)
			b.jump(after)
		}
		b.popBreakable(label)
		// An empty select{} blocks forever: after then has no preds and
		// stays dead, which is the truth.
		b.current = after

	case *ast.ReturnStmt:
		b.add(s)
		b.jump(b.g.Exit)

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.GoStmt, *ast.ExprStmt, *ast.AssignStmt, *ast.IncDecStmt,
		*ast.SendStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.add(s)
		if isPanicStmt(s) {
			b.jump(b.g.Exit)
		}

	default:
		// Future statement kinds: record and continue (conservative).
		b.add(s)
	}
}

// caseClauses lowers switch/type-switch bodies: every clause branches
// from the header block; a clause without a trailing `fallthrough`
// edges to the after block; `fallthrough` edges to the next clause's
// body. When addExprs is set, a clause block is seeded with its case
// expressions (they are evaluated before the body runs).
func (b *builder) caseClauses(label string, clauses []ast.Stmt, addExprs bool) {
	header := b.current
	after := b.g.newBlock("switch.done")
	b.pushBreakable(label, after)
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cs := range clauses {
		blocks[i] = b.g.newBlock("switch.case")
		edge(header, blocks[i])
		if cc, ok := cs.(*ast.CaseClause); ok {
			if cc.List == nil {
				hasDefault = true
			}
			if addExprs {
				for _, e := range cc.List {
					blocks[i].Nodes = append(blocks[i].Nodes, e)
				}
			}
		}
	}
	if !hasDefault {
		edge(header, after)
	}
	for i, cs := range clauses {
		cc, ok := cs.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.current = blocks[i]
		body := cc.Body
		fallsThrough := false
		if n := len(body); n > 0 {
			if br, ok := body[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
				body = body[:n-1]
			}
		}
		b.stmtList(body)
		if fallsThrough && i+1 < len(blocks) {
			b.jump(blocks[i+1])
		} else {
			b.jump(after)
		}
	}
	b.popBreakable(label)
	b.current = after
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok {
	case token.BREAK:
		if t := findTarget(b.breaks, s.Label); t != nil {
			b.add(s)
			b.jump(t)
			return
		}
	case token.CONTINUE:
		if t := findTarget(b.continues, s.Label); t != nil {
			b.add(s)
			b.jump(t)
			return
		}
	case token.GOTO:
		if s.Label != nil {
			b.add(s)
			b.jump(b.gotoTarget(s.Label.Name))
			return
		}
	}
	// Unresolvable target or a fallthrough not in final position
	// (invalid Go): record and continue, conservative.
	b.add(s)
}

func findTarget(stack []targetEntry, label *ast.Ident) *Block {
	if len(stack) == 0 {
		return nil
	}
	if label == nil {
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return nil
}

// gotoTarget returns (creating on demand) the block a label names, so
// forward gotos resolve before their LabeledStmt is reached.
func (b *builder) gotoTarget(name string) *Block {
	if blk, ok := b.gotoTargets[name]; ok {
		return blk
	}
	blk := b.g.newBlock("label." + name)
	b.gotoTargets[name] = blk
	return blk
}

func (b *builder) pushLoop(label string, breakTo, continueTo *Block) {
	b.breaks = append(b.breaks, targetEntry{label, breakTo})
	b.continues = append(b.continues, targetEntry{label, continueTo})
}

func (b *builder) popLoop(string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *builder) pushBreakable(label string, breakTo *Block) {
	b.breaks = append(b.breaks, targetEntry{label, breakTo})
}

func (b *builder) popBreakable(string) {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

// isPanicStmt reports whether s is a statement-position call to the
// builtin panic.
func isPanicStmt(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic" && id.Obj == nil
}

// Format renders the CFG for tests and debugging: one line per block
// with its comment, rendered nodes, and successor indices.
func (g *CFG) Format(fset *token.FileSet) string {
	var buf bytes.Buffer
	for _, blk := range g.Blocks {
		live := ""
		if !blk.Live {
			live = " (dead)"
		}
		fmt.Fprintf(&buf, "block %d (%s)%s:\n", blk.Index, blk.Comment, live)
		for _, n := range blk.Nodes {
			var nb bytes.Buffer
			printer.Fprint(&nb, fset, n)
			line := nb.String()
			if i := bytes.IndexByte(nb.Bytes(), '\n'); i >= 0 {
				line = string(nb.Bytes()[:i]) + " ..."
			}
			fmt.Fprintf(&buf, "\t%s\n", line)
		}
		if len(blk.Succs) > 0 {
			fmt.Fprintf(&buf, "\tsuccs:")
			for _, s := range blk.Succs {
				fmt.Fprintf(&buf, " %d", s.Index)
			}
			fmt.Fprintln(&buf)
		}
	}
	return buf.String()
}
