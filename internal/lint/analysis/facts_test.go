package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

// testFact is a representative fact payload: a slice (order matters for
// the determinism check) plus a scalar.
type testFact struct {
	Names []string
	Depth int
}

func (*testFact) AFact() {}

type otherFact struct {
	Root string
}

func (*otherFact) AFact() {}

func init() {
	RegisterFactType(&testFact{})
	RegisterFactType(&otherFact{})
}

// checkPkg type-checks a tiny package and returns it with the object of
// its sole function.
func checkPkg(t *testing.T, path, src, fn string) (*types.Package, types.Object) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{}
	pkg, err := conf.Check(path, fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	obj := pkg.Scope().Lookup(fn)
	if obj == nil {
		t.Fatalf("no object %s in %s", fn, path)
	}
	return pkg, obj
}

// TestFactsRoundTrip drives a fact through the full vetx life cycle:
// export against one type-checked view of a package, gob-encode, decode
// into a fresh store (a new process, morally), and import against a
// *different* type-checked view of the same package — the cross-view
// identity the ObjectKey scheme exists to provide.
func TestFactsRoundTrip(t *testing.T) {
	const src = `package dep
func Helper() {}
`
	pkg1, obj1 := checkPkg(t, "dep", src, "Helper")
	_ = pkg1

	store := NewFactStore()
	pass := &Pass{Analyzer: &Analyzer{Name: "t"}, Pkg: pkg1}
	store.Bind(pass)
	want := &testFact{Names: []string{"Barrier", "AllGather"}, Depth: 2}
	pass.ExportObjectFact(obj1, want)
	pass.ExportPackageFact(&otherFact{Root: "gio.WriteFile"})

	data, err := store.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("encoded facts are empty")
	}

	// Decode into a fresh store and look the facts up through a second,
	// independent type-check of the same source (distinct types.Object
	// identities, same keys).
	store2 := NewFactStore()
	if err := store2.Decode(data); err != nil {
		t.Fatal(err)
	}
	pkg2, obj2 := checkPkg(t, "dep", src, "Helper")
	pass2 := &Pass{Analyzer: &Analyzer{Name: "t"}, Pkg: pkg2}
	store2.Bind(pass2)

	var got testFact
	if !pass2.ImportObjectFact(obj2, &got) {
		t.Fatal("object fact did not survive the round trip")
	}
	if !reflect.DeepEqual(&got, want) {
		t.Fatalf("object fact = %+v, want %+v", got, *want)
	}
	var gotPkg otherFact
	if !pass2.ImportPackageFact(pkg2, &gotPkg) {
		t.Fatal("package fact did not survive the round trip")
	}
	if gotPkg.Root != "gio.WriteFile" {
		t.Fatalf("package fact = %+v", gotPkg)
	}

	// Absent facts must miss, not fabricate.
	var missing otherFact
	if pass2.ImportObjectFact(obj2, &missing) {
		t.Fatal("imported a fact type that was never exported for the object")
	}
}

// TestFactsEncodeDeterministic asserts byte-identical encodings across
// stores populated in different orders — the property go vet's action
// cache hashing relies on.
func TestFactsEncodeDeterministic(t *testing.T) {
	const src = `package dep
func A() {}
func B() {}
`
	pkg, objA := checkPkg(t, "dep", src, "A")
	objB := pkg.Scope().Lookup("B")

	build := func(first, second types.Object) []byte {
		store := NewFactStore()
		pass := &Pass{Analyzer: &Analyzer{Name: "t"}, Pkg: pkg}
		store.Bind(pass)
		pass.ExportObjectFact(first, &testFact{Names: []string{"x"}})
		pass.ExportObjectFact(second, &testFact{Names: []string{"y"}})
		pass.ExportPackageFact(&otherFact{Root: "r"})
		data, err := store.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	ab := build(objA, objB)
	// Same facts, reversed insertion order. Fact values differ per object
	// so swapped ordering means swapped payloads unless sorting works.
	store := NewFactStore()
	pass := &Pass{Analyzer: &Analyzer{Name: "t"}, Pkg: pkg}
	store.Bind(pass)
	pass.ExportPackageFact(&otherFact{Root: "r"})
	pass.ExportObjectFact(objB, &testFact{Names: []string{"y"}})
	pass.ExportObjectFact(objA, &testFact{Names: []string{"x"}})
	ba, err := store.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(ab) != string(ba) {
		t.Fatal("fact encoding depends on insertion order")
	}
}

// TestObjectKey covers the function and method key forms.
func TestObjectKey(t *testing.T) {
	const src = `package dep
type T struct{}
func (t *T) M() {}
func F() {}
var V int
`
	pkg, objF := checkPkg(t, "dep", src, "F")
	if key, ok := ObjectKey(objF); !ok || key != "F" {
		t.Fatalf("ObjectKey(F) = %q, %v", key, ok)
	}
	tObj := pkg.Scope().Lookup("T").Type().(*types.Named)
	m, _, _ := types.LookupFieldOrMethod(tObj, true, pkg, "M")
	if key, ok := ObjectKey(m); !ok || key != "T.M" {
		t.Fatalf("ObjectKey(T.M) = %q, %v", key, ok)
	}
	if _, ok := ObjectKey(pkg.Scope().Lookup("V")); ok {
		t.Fatal("ObjectKey accepted a var; only funcs carry facts here")
	}
}
