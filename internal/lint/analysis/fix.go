package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// fileEdit is one TextEdit resolved to byte offsets within its file.
type fileEdit struct {
	start, end int
	newText    []byte
}

// ApplyFixes selects and applies suggested fixes from diags, returning
// the new content of every changed file. read loads a file's current
// bytes (called once per file).
//
// Selection is deterministic and greedy, mirroring the upstream driver:
// diagnostics are visited in position order, the first SuggestedFix of
// each is taken, and a fix is dropped entirely if any of its edits
// overlaps an edit already selected for the same file. Edits never span
// files in this suite, and a fix with an invalid span (unresolvable
// position, start after end) is dropped rather than corrupting output.
func ApplyFixes(fset *token.FileSet, diags []Diagnostic, read func(filename string) ([]byte, error)) (map[string][]byte, error) {
	type cand struct {
		file string
		edit fileEdit
	}
	var fixes [][]cand // one entry per selectable fix, in position order

	sorted := make([]Diagnostic, 0, len(diags))
	for _, d := range diags {
		if len(d.SuggestedFixes) > 0 {
			sorted = append(sorted, d)
		}
	}
	sort.SliceStable(sorted, func(i, j int) bool {
		pi, pj := fset.Position(sorted[i].Pos), fset.Position(sorted[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Offset < pj.Offset
	})

	for _, d := range sorted {
		fix := d.SuggestedFixes[0]
		ok := true
		var fixEdits []cand
		for _, e := range fix.TextEdits {
			if !e.Pos.IsValid() {
				ok = false
				break
			}
			end := e.End
			if !end.IsValid() {
				end = e.Pos
			}
			start, stop := fset.Position(e.Pos), fset.Position(end)
			if start.Filename == "" || start.Filename != stop.Filename || start.Offset > stop.Offset {
				ok = false
				break
			}
			fixEdits = append(fixEdits, cand{
				file: start.Filename,
				edit: fileEdit{start: start.Offset, end: stop.Offset, newText: e.NewText},
			})
		}
		if ok && len(fixEdits) > 0 {
			fixes = append(fixes, fixEdits)
		}
	}

	// Greedy all-or-nothing selection: a fix any of whose edits overlaps
	// an already-accepted edit in the same file is dropped whole. Two
	// pure insertions at the same offset would be order-dependent, so
	// the later fix is dropped too.
	perFile := map[string][]fileEdit{}
	for _, fixEdits := range fixes {
		clash := false
		for _, c := range fixEdits {
			for _, prev := range perFile[c.file] {
				overlaps := c.edit.start < prev.end && prev.start < c.edit.end
				sameInsert := prev.start == prev.end && c.edit.start == c.edit.end && c.edit.start == prev.start
				if overlaps || sameInsert {
					clash = true
					break
				}
			}
			if clash {
				break
			}
		}
		if clash {
			continue
		}
		for _, c := range fixEdits {
			perFile[c.file] = append(perFile[c.file], c.edit)
		}
	}

	out := map[string][]byte{}
	for file, edits := range perFile {
		if len(edits) == 0 {
			continue
		}
		src, err := read(file)
		if err != nil {
			return nil, fmt.Errorf("applying fixes: %w", err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		var buf []byte
		last := 0
		for _, e := range edits {
			if e.start < last || e.end > len(src) {
				return nil, fmt.Errorf("applying fixes: edit out of range in %s", file)
			}
			buf = append(buf, src[last:e.start]...)
			buf = append(buf, e.newText...)
			last = e.end
		}
		buf = append(buf, src[last:]...)
		out[file] = buf
	}
	return out, nil
}

// Diff renders a minimal line diff between old and new file content for
// -diff mode: common prefix and suffix lines are trimmed and the single
// changed region is shown with -/+ markers. Not a full LCS — fixes in
// this suite are local, and a one-hunk diff keeps the CI drift gate's
// output readable without pulling in a diff dependency.
func Diff(filename string, oldSrc, newSrc []byte) string {
	if string(oldSrc) == string(newSrc) {
		return ""
	}
	oldLines := strings.SplitAfter(string(oldSrc), "\n")
	newLines := strings.SplitAfter(string(newSrc), "\n")
	// Trim common prefix.
	p := 0
	for p < len(oldLines) && p < len(newLines) && oldLines[p] == newLines[p] {
		p++
	}
	// Trim common suffix (not crossing the prefix).
	so, sn := len(oldLines), len(newLines)
	for so > p && sn > p && oldLines[so-1] == newLines[sn-1] {
		so--
		sn--
	}
	var b strings.Builder
	fmt.Fprintf(&b, "--- %s\n+++ %s\n", filename, filename)
	fmt.Fprintf(&b, "@@ -%d,%d +%d,%d @@\n", p+1, so-p, p+1, sn-p)
	for _, l := range oldLines[p:so] {
		b.WriteString("-" + strings.TrimSuffix(l, "\n") + "\n")
	}
	for _, l := range newLines[p:sn] {
		b.WriteString("+" + strings.TrimSuffix(l, "\n") + "\n")
	}
	return b.String()
}
