// Package analysis is a self-contained, stdlib-only re-implementation of
// the core of golang.org/x/tools/go/analysis — just enough surface for
// the workflowlint suite (internal/lint) and its driver
// (cmd/workflowlint) to be written against the upstream API shape.
//
// The build environment for this repository is hermetic: no module
// downloads are possible, and x/tools is not vendored. Rather than give
// up machine-checked invariants, the checkers are written against this
// mirror of the upstream types; if x/tools ever becomes available the
// analyzers port with an import-path change only. Deliberately out of
// scope: facts (no cross-package analysis is needed by this suite),
// suggested fixes, and analyzer dependencies (`Requires`).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name, documentation, and a Run
// function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, //lint:allow
	// suppression comments, and driver flags. By convention a single
	// lower-case word.
	Name string

	// Doc is the analyzer's documentation: first line is a one-sentence
	// summary, the rest elaborates.
	Doc string

	// Run applies the analyzer to a package. It may report diagnostics
	// via the Pass and may return an error, which aborts the analysis of
	// the package (reserved for internal failures, not findings).
	Run func(*Pass) (any, error)
}

// A Pass provides one analyzer with the parsed, type-checked view of a
// single package, and collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is a finding: a position and a message. End and Category
// are optional, mirroring the upstream struct.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos
	Category string
	Message  string
}

// Preorder visits every node of every file in depth-first preorder —
// the moral equivalent of the upstream inspect.Analyzer's Preorder,
// without the shared-inspector machinery (package trees here are small
// enough that re-walking per analyzer is cheap).
func Preorder(files []*ast.File, visit func(ast.Node)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				visit(n)
			}
			return true
		})
	}
}

// NewTypesInfo returns a types.Info with every map the checkers consult
// allocated. Drivers (the CLI, analysistest) share it so passes always
// see fully populated type information.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
