// Package analysis is a self-contained, stdlib-only re-implementation of
// the core of golang.org/x/tools/go/analysis — just enough surface for
// the workflowlint suite (internal/lint) and its driver
// (cmd/workflowlint) to be written against the upstream API shape.
//
// The build environment for this repository is hermetic: no module
// downloads are possible, and x/tools is not vendored. Rather than give
// up machine-checked invariants, the checkers are written against this
// mirror of the upstream types; if x/tools ever becomes available the
// analyzers port with an import-path change only. The mirror covers
// analyzers, diagnostics, analyzer dependencies (`Requires`/`ResultOf`),
// object/package Facts with gob serialization (see facts.go) so
// interprocedural results survive the go vet action cache, and suggested
// fixes (textual edits attached to diagnostics, applied by the driver's
// -fix mode; see fix.go).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one static check: a name, documentation, and a Run
// function applied once per package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, //lint:allow
	// suppression comments, and driver flags. By convention a single
	// lower-case word.
	Name string

	// Doc is the analyzer's documentation: first line is a one-sentence
	// summary, the rest elaborates.
	Doc string

	// Run applies the analyzer to a package. It may report diagnostics
	// via the Pass and may return an error, which aborts the analysis of
	// the package (reserved for internal failures, not findings). The
	// returned value is exposed to dependent analyzers via Pass.ResultOf.
	Run func(*Pass) (any, error)

	// Requires lists analyzers that must run before this one on the same
	// package; their results appear in Pass.ResultOf. Drivers (Execute)
	// schedule the transitive closure in dependency order.
	Requires []*Analyzer

	// FactTypes lists the fact types this analyzer exports or imports,
	// one zero value per type. An analyzer with a non-empty FactTypes is
	// run over dependency packages too (facts-only, diagnostics
	// suppressed) so its cross-package facts exist when dependents are
	// analyzed. Each fact type must be registered with RegisterFactType.
	FactTypes []Fact
}

// A Pass provides one analyzer with the parsed, type-checked view of a
// single package, and collects its diagnostics.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ResultOf maps each analyzer in Analyzer.Requires to its Run result
	// for this package. Set by the driver.
	ResultOf map[*Analyzer]any

	// Report delivers one diagnostic. Set by the driver.
	Report func(Diagnostic)

	// The fact API, mirroring upstream go/analysis. Bound by the driver
	// (FactStore.bind); nil-safe no-ops otherwise. ExportObjectFact
	// attaches a fact to an object declared in this pass's package;
	// ImportObjectFact copies a previously exported fact (possibly from a
	// dependency package analyzed earlier, or deserialized from a vetx
	// file) into the pointer fact and reports whether one was found.
	ExportObjectFact  func(obj types.Object, fact Fact)
	ImportObjectFact  func(obj types.Object, fact Fact) bool
	ExportPackageFact func(fact Fact)
	ImportPackageFact func(pkg *types.Package, fact Fact) bool
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is a finding: a position and a message. End, Category,
// and SuggestedFixes are optional, mirroring the upstream struct.
type Diagnostic struct {
	Pos      token.Pos
	End      token.Pos
	Category string
	Message  string

	// SuggestedFixes are candidate machine-applicable repairs for the
	// finding. A driver in -fix mode applies at most one fix per
	// diagnostic (the first) and skips fixes whose edits overlap an
	// already-applied fix.
	SuggestedFixes []SuggestedFix
}

// A SuggestedFix is one self-contained repair: a message describing the
// change and the textual edits that perform it. Edits within one fix
// must not overlap each other.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// A TextEdit replaces the source in [Pos, End) with NewText. A pure
// insertion has End == Pos (or End == token.NoPos).
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// Preorder visits every node of every file in depth-first preorder —
// the moral equivalent of the upstream inspect.Analyzer's Preorder,
// without the shared-inspector machinery (package trees here are small
// enough that re-walking per analyzer is cheap).
func Preorder(files []*ast.File, visit func(ast.Node)) {
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				visit(n)
			}
			return true
		})
	}
}

// NewTypesInfo returns a types.Info with every map the checkers consult
// allocated. Drivers (the CLI, analysistest) share it so passes always
// see fully populated type information.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
