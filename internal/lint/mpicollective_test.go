package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestMPICollective(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.MPICollective,
		"mpicollective_flagged", "mpicollective_clean", "mpicollective_allow", "mpicollective_xpkg")
}
