package lint_test

import (
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysistest"
)

func TestErrFlow(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), lint.ErrFlow,
		"errflow_flagged", "errflow_clean", "errflow_allow", "errflow_xpkg",
		"errflow_flow")
}
