package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/analysis/ssa"
	"repro/internal/lint/analysis/taint"
)

// AllocBound tracks lengths and counts decoded from external bytes —
// binary.Uint16/32/64, varints, strconv parses — along SSA-lite
// def-use chains into allocation sizes (make), index expressions, and
// slice bounds, and reports when no bound check intervenes. The threat
// is not adversarial input so much as the corruption this repo already
// injects on purpose (PR 7's chaos harness): a flipped length prefix in
// a product or checkpoint header must fail validation, not drive a
// multi-gigabyte make or an out-of-range index panic in the middle of a
// campaign.
//
// Any comparison of the decoded value counts as validation (the engine
// treats compared registers as sanitized), as do the min/max builtins.
// Summaries cross function and package boundaries as Facts, so a
// decode-in-one-function, allocate-in-another split is still caught.
// Test files get findings suppressed; their summaries still feed the
// fixpoint.
var AllocBound = &analysis.Analyzer{
	Name:      "allocbound",
	Doc:       "flag unvalidated decoded lengths reaching make sizes, index expressions, or slice bounds",
	Run:       runAllocBound,
	Requires:  []*analysis.Analyzer{SSAFlow},
	FactTypes: []analysis.Fact{(*AllocBoundSummary)(nil)},
}

// AllocBoundSummary carries one function's taint summary across package
// boundaries.
type AllocBoundSummary struct {
	S taint.Summary
}

func (*AllocBoundSummary) AFact() {}

func init() { analysis.RegisterFactType(&AllocBoundSummary{}) }

// allocSource classifies decoded-from-bytes values.
func allocSource(v *ssa.Value) (string, bool) {
	if v.Op != ssa.OpCall || v.Callee == nil || v.Callee.Pkg() == nil {
		return "", false
	}
	fn := v.Callee
	switch fn.Pkg().Path() {
	case "encoding/binary":
		switch fn.Name() {
		case "Uint16", "Uint32", "Uint64", // ByteOrder methods
			"Uvarint", "Varint", "ReadUvarint", "ReadVarint":
			return "binary." + fn.Name(), true
		}
	case "strconv":
		switch fn.Name() {
		case "Atoi", "ParseInt", "ParseUint", "ParseFloat":
			return "strconv." + fn.Name(), true
		}
	}
	return "", false
}

// allocSinks lists size/index/bound operands. Map indexing is excluded:
// a decoded map key cannot panic or over-allocate.
func allocSinks(info *types.Info) func(v *ssa.Value) []taint.SinkUse {
	baseIndexable := func(v *ssa.Value) bool {
		ie, ok := v.Expr.(*ast.IndexExpr)
		if !ok {
			return true // no expression context: stay conservative
		}
		tv, ok := info.Types[ie.X]
		if !ok || tv.Type == nil {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			return false
		}
		return true
	}
	return func(v *ssa.Value) []taint.SinkUse {
		switch v.Op {
		case ssa.OpMake:
			var uses []taint.SinkUse
			for _, a := range v.Args {
				uses = append(uses, taint.SinkUse{Arg: a, Sink: "make size"})
			}
			return uses
		case ssa.OpIndex:
			if len(v.Args) == 2 && baseIndexable(v) {
				return []taint.SinkUse{{Arg: v.Args[1], Sink: "index expression"}}
			}
		case ssa.OpSlice:
			var uses []taint.SinkUse
			for _, a := range v.Args[1:] {
				uses = append(uses, taint.SinkUse{Arg: a, Sink: "slice bound"})
			}
			return uses
		}
		return nil
	}
}

// allocSanitizer: the min/max builtins clamp their operands.
func allocSanitizer(v *ssa.Value) bool {
	return v.Op == ssa.OpCall && v.Callee == nil && (v.Name == "min" || v.Name == "max")
}

func runAllocBound(pass *analysis.Pass) (any, error) {
	res := pass.ResultOf[SSAFlow].(*SSAResult)
	engine := &taint.Engine{
		Spec: taint.Spec{
			Source:              allocSource,
			Sinks:               allocSinks(pass.TypesInfo),
			Sanitizer:           allocSanitizer,
			BoundCheckSanitizes: true,
		},
		External: func(fn *types.Func) (*taint.Summary, bool) {
			var fact AllocBoundSummary
			if pass.ImportObjectFact(fn, &fact) {
				return &fact.S, true
			}
			return nil, false
		},
	}

	fns := make([]taint.FuncInfo, 0, len(res.Order))
	for _, sf := range res.Order {
		fns = append(fns, taint.FuncInfo{Fn: sf.FC.Fn, SSA: sf.F})
	}
	result := engine.AnalyzePackage(fns)

	for fn, sum := range result.Summaries {
		if fn.Pkg() == pass.Pkg && !sum.Empty() {
			pass.ExportObjectFact(fn, &AllocBoundSummary{S: *sum})
		}
	}

	r := newReporter(pass)
	for _, f := range result.Findings {
		pos := token.Pos(f.Pos)
		if isTestFile(pass.Fset, pos) {
			continue
		}
		r.reportf(pos,
			"length decoded by %s reaches %s unvalidated (witness: %s); a corrupt header becomes a huge allocation or an index panic — bound-check the value first",
			f.Source, f.Sink, strings.Join(f.Path, " → "))
	}
	return nil, nil
}
