package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// SentinelWrap enforces the error-matching contract the torn-file
// salvage path depends on: gio.ErrTruncated / gio.ErrChecksum (and every
// other exported sentinel) travel through wrapping layers, so identity
// comparison silently stops matching the moment anyone adds context.
// Two rules:
//
//  1. a sentinel error (a package-level error variable named Err* or
//     EOF) compared with == or != — or matched in a switch over an
//     error value — must use errors.Is instead;
//  2. fmt.Errorf with at least one error-typed argument must wrap with
//     %w somewhere in its format: a %v/%s-only Errorf severs the chain
//     and downstream errors.Is stops seeing the sentinel. (An Errorf
//     that does contain a %w may freely format other errors with %v —
//     that is how gio deliberately maps io.EOF onto ErrTruncated without
//     wrapping it.)
var SentinelWrap = &analysis.Analyzer{
	Name: "sentinelwrap",
	Doc:  "require errors.Is for sentinel comparison and %w when fmt.Errorf propagates an error",
	Run:  runSentinelWrap,
}

func runSentinelWrap(pass *analysis.Pass) (any, error) {
	r := newReporter(pass)
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, side := range []ast.Expr{n.X, n.Y} {
					if name, ok := sentinelErrorVar(info, side); ok {
						r.reportf(n.Pos(),
							"sentinel error %s compared with %s; wrapped errors will not match — use errors.Is",
							name, n.Op)
						break
					}
				}
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				tv, ok := info.Types[n.Tag]
				if !ok || !isErrorType(tv.Type) {
					return true
				}
				for _, stmt := range n.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					for _, e := range cc.List {
						if name, ok := sentinelErrorVar(info, e); ok {
							r.reportf(e.Pos(),
								"switch matches sentinel error %s by identity; wrapped errors will not match — use errors.Is",
								name)
						}
					}
				}
			case *ast.CallExpr:
				checkErrorfWrap(pass, r, n)
			}
			return true
		})
	}
	return nil, nil
}

// sentinelErrorVar reports whether e refers to a package-level error
// variable following the sentinel naming convention (Err* or EOF).
func sentinelErrorVar(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.IsField() || v.Pkg() == nil {
		return "", false
	}
	if v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !isErrorType(v.Type()) {
		return "", false
	}
	name := v.Name()
	if !strings.HasPrefix(name, "Err") && name != "EOF" {
		return "", false
	}
	if v.Pkg().Name() == "main" {
		return name, true
	}
	return v.Pkg().Name() + "." + name, true
}

// checkErrorfWrap applies rule 2 to one call.
func checkErrorfWrap(pass *analysis.Pass, r *reporter, call *ast.CallExpr) {
	fn := calleeFunc(pass.TypesInfo, call)
	if !isPkgFunc(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	if strings.Contains(lit.Value, "%w") {
		return
	}
	for i, arg := range call.Args[1:] {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if isErrorType(tv.Type) {
			d := analysis.Diagnostic{
				Pos:     call.Pos(),
				Message: "fmt.Errorf formats an error without %w: the chain is severed and errors.Is stops matching sentinels; use %w (or //lint:allow sentinelwrap at a deliberate boundary)",
			}
			if fix, ok := errorfWrapFix(lit, i); ok {
				d.SuggestedFixes = []analysis.SuggestedFix{fix}
			}
			r.report(d)
			return
		}
	}
}

// errorfWrapFix rewrites the verb that formats the error operand at
// index errIdx (0-based, among the operands after the format string)
// from %v or %s to %w. It walks the literal's source text so the edit
// lands on the exact verb byte; anything that complicates the
// operand↔verb mapping — `*` width/precision, explicit `%[n]` indexes,
// a verb other than v/s — means no fix, only the diagnostic.
func errorfWrapFix(lit *ast.BasicLit, errIdx int) (analysis.SuggestedFix, bool) {
	src := lit.Value
	operand := 0
	for i := 0; i < len(src); i++ {
		if src[i] != '%' {
			continue
		}
		i++
		if i >= len(src) {
			return analysis.SuggestedFix{}, false
		}
		if src[i] == '%' {
			continue
		}
		for i < len(src) && strings.ContainsRune("+-# 0", rune(src[i])) {
			i++
		}
		for i < len(src) && (src[i] >= '0' && src[i] <= '9' || src[i] == '.') {
			i++
		}
		if i >= len(src) {
			return analysis.SuggestedFix{}, false
		}
		switch c := src[i]; {
		case c == '*' || c == '[':
			return analysis.SuggestedFix{}, false
		case operand == errIdx:
			if c != 'v' && c != 's' {
				return analysis.SuggestedFix{}, false
			}
			pos := lit.Pos() + token.Pos(i)
			return analysis.SuggestedFix{
				Message: "wrap the error with %w so errors.Is keeps matching",
				TextEdits: []analysis.TextEdit{{
					Pos:     pos,
					End:     pos + 1,
					NewText: []byte("w"),
				}},
			}, true
		}
		operand++
	}
	return analysis.SuggestedFix{}, false
}
